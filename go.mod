module mecache

go 1.22
