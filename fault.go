package mecache

import (
	"mecache/internal/experiments"
	"mecache/internal/fault"
	"mecache/internal/testbed"
)

// Fault-injection and failover types: the resilience dimension grafted onto
// the paper's market, where cloudlets suffer outages, cached instances
// crash, and underlay switches and links fail mid-measurement.
type (
	// FaultConfig parameterizes the dynamic market's failure model
	// (cloudlet MTBF/MTTR, instance crashes, failover policy).
	FaultConfig = fault.Config
	// FailoverPolicy selects how providers recover from a cloudlet
	// failure.
	FailoverPolicy = fault.Policy
	// FaultOutage records one failure interval of one target.
	FaultOutage = fault.Outage
	// TestbedFaultConfig parameterizes mid-measurement underlay faults and
	// the flows' retry/backoff discipline.
	TestbedFaultConfig = testbed.FaultConfig
	// FaultMeasurement extends a test-bed Measurement with fault, retry,
	// and timeout counts.
	FaultMeasurement = testbed.FaultMeasurement
	// FigFConfig drives the resilience sweep (failure rate x policy).
	FigFConfig = experiments.FigFConfig
)

// The failover policies compared by the resilience experiments.
const (
	// PolicyRemoteFallback degrades affected providers to their remote
	// original (the paper's "not to cache" strategy) until departure.
	PolicyRemoteFallback = fault.PolicyRemoteFallback
	// PolicyReplace re-runs a capacity-aware best response over the
	// surviving cloudlets.
	PolicyReplace = fault.PolicyReplace
	// PolicyWaitForRepair serves remotely and returns to the repaired
	// cloudlet when the saving beats the re-instantiation cost.
	PolicyWaitForRepair = fault.PolicyWaitForRepair
)

// DefaultFaultConfig returns a moderate cloudlet failure model with
// remote-fallback failover.
func DefaultFaultConfig() FaultConfig { return fault.DefaultConfig() }

// FailoverPolicies lists every policy in display order.
func FailoverPolicies() []FailoverPolicy { return fault.Policies() }

// ParseFailoverPolicy parses a policy name ("remote-fallback", "re-place",
// "wait-for-repair").
func ParseFailoverPolicy(s string) (FailoverPolicy, error) { return fault.ParsePolicy(s) }

// DefaultTestbedFaultConfig returns an aggressive but bounded underlay
// fault scenario for MeasureUnderFaults.
func DefaultTestbedFaultConfig(seed uint64) TestbedFaultConfig {
	return testbed.DefaultFaultConfig(seed)
}

// DefaultFigF returns the standard resilience sweep (failure rates x all
// three failover policies).
func DefaultFigF(seed uint64) FigFConfig { return experiments.DefaultFigF(seed) }

// FigF runs the resilience sweep: availability, mean time-to-recover,
// SLA-violation fraction, and social cost under failures, per policy.
func FigF(cfg FigFConfig) (*Figure, error) { return experiments.FigF(cfg) }
