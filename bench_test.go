// Benchmarks regenerating every figure of the paper's evaluation section.
// Each BenchmarkFigN* target runs the corresponding experiment driver at a
// reduced-but-representative scale and reports the headline metric via
// b.ReportMetric, so `go test -bench=.` both times the pipeline and prints
// the figure's numbers. The full-scale sweeps are produced by cmd/mecbench.
package mecache_test

import (
	"testing"

	"mecache"
)

// benchMarket memoizes a mid-size market shared by the single-point
// benchmarks.
func benchMarket(b *testing.B, seed uint64, size, providers int) *mecache.Market {
	b.Helper()
	cfg := mecache.DefaultWorkload(seed)
	cfg.NumProviders = providers
	m, err := mecache.GenerateMarketGTITM(size, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// --- Figure 2: GT-ITM sweep, 1-xi = 0.3 -------------------------------

func benchFig2Metric(b *testing.B, metric func(mecache.AlgoOutcome) float64, unit string) {
	b.Helper()
	m := benchMarket(b, 2, 250, 100)
	var last float64
	for i := 0; i < b.N; i++ {
		out, err := mecache.RunAll(m, 0.7, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = metric(out[mecache.AlgoLCF])
	}
	b.ReportMetric(last, unit)
}

func BenchmarkFig2SocialCost(b *testing.B) {
	benchFig2Metric(b, func(o mecache.AlgoOutcome) float64 { return o.Social }, "social-cost")
}

func BenchmarkFig2SelfishCost(b *testing.B) {
	benchFig2Metric(b, func(o mecache.AlgoOutcome) float64 { return o.Selfish }, "selfish-cost")
}

func BenchmarkFig2CoordinatedCost(b *testing.B) {
	benchFig2Metric(b, func(o mecache.AlgoOutcome) float64 { return o.Coordinated }, "coordinated-cost")
}

func BenchmarkFig2RunningTime(b *testing.B) {
	benchFig2Metric(b, func(o mecache.AlgoOutcome) float64 { return o.Seconds * 1000 }, "lcf-ms")
}

// --- Figure 3: impact of 1-xi ------------------------------------------

func benchFig3AtFraction(b *testing.B, frac float64) {
	b.Helper()
	m := benchMarket(b, 3, 250, 100)
	var last float64
	for i := 0; i < b.N; i++ {
		out, err := mecache.RunAll(m, 1-frac, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = out[mecache.AlgoLCF].Social
	}
	b.ReportMetric(last, "social-cost")
}

func BenchmarkFig3SocialCostAllCoordinated(b *testing.B) { benchFig3AtFraction(b, 0) }

func BenchmarkFig3SocialCostHalfSelfish(b *testing.B) { benchFig3AtFraction(b, 0.5) }

func BenchmarkFig3SocialCostAllSelfish(b *testing.B) { benchFig3AtFraction(b, 1) }

func BenchmarkFig3RunningTime(b *testing.B) {
	m := benchMarket(b, 3, 250, 100)
	var last float64
	for i := 0; i < b.N; i++ {
		out, err := mecache.RunAll(m, 0.5, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = out[mecache.AlgoLCF].Seconds * 1000
	}
	b.ReportMetric(last, "lcf-ms")
}

// --- Figure 5: test-bed comparison --------------------------------------

func benchTestbed(b *testing.B, mutate func(*mecache.TestbedConfig)) (social, latency float64) {
	b.Helper()
	cfg := mecache.DefaultTestbedConfig(5)
	cfg.Workload.NumProviders = 60
	if mutate != nil {
		mutate(&cfg)
	}
	tb, err := mecache.NewTestbed(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := mecache.LCF(tb.Market, mecache.LCFOptions{Xi: 0.7, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		dep, err := tb.Deploy(res.Placement)
		if err != nil {
			b.Fatal(err)
		}
		meas, err := tb.Measure(dep, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		social, latency = meas.MeasuredSocialCost, meas.MeanLatencyMs
	}
	return social, latency
}

func BenchmarkFig5SocialCost(b *testing.B) {
	social, _ := benchTestbed(b, nil)
	b.ReportMetric(social, "social-cost")
}

func BenchmarkFig5RunningTime(b *testing.B) {
	// Times LCF + deployment on the AS1755 test-bed (the Fig 5(b) metric).
	_, _ = benchTestbed(b, nil)
}

// --- Figure 6: test-bed parameter studies -------------------------------

func BenchmarkFig6Xi(b *testing.B) {
	cfg := mecache.DefaultTestbedConfig(6)
	cfg.Workload.NumProviders = 60
	tb, err := mecache.NewTestbed(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := mecache.LCF(tb.Market, mecache.LCFOptions{Xi: 0.4, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		last = res.SocialCost
	}
	b.ReportMetric(last, "social-cost")
}

func BenchmarkFig6Requests(b *testing.B) {
	social, _ := benchTestbed(b, func(cfg *mecache.TestbedConfig) {
		cfg.Workload.NumProviders = 100
	})
	b.ReportMetric(social, "social-cost")
}

func BenchmarkFig6NetworkSize(b *testing.B) {
	social, _ := benchTestbed(b, func(cfg *mecache.TestbedConfig) {
		cfg.OverlaySize = 200
	})
	b.ReportMetric(social, "social-cost")
}

func BenchmarkFig6UpdateVolume(b *testing.B) {
	social, _ := benchTestbed(b, func(cfg *mecache.TestbedConfig) {
		cfg.Workload.UpdateRatio = 0.3
	})
	b.ReportMetric(social, "social-cost")
}

// --- Figure 7: impact of maximum demands --------------------------------

func BenchmarkFig7AMax(b *testing.B) {
	social, _ := benchTestbed(b, func(cfg *mecache.TestbedConfig) {
		cfg.Workload.ComputeDemand.Hi = 4
	})
	b.ReportMetric(social, "social-cost")
}

func BenchmarkFig7BMax(b *testing.B) {
	social, _ := benchTestbed(b, func(cfg *mecache.TestbedConfig) {
		cfg.Workload.BandwidthDemand.Hi = 140
	})
	b.ReportMetric(social, "social-cost")
}

// --- Theorem 1: Price of Anarchy ----------------------------------------

func BenchmarkPoA(b *testing.B) {
	cfg := mecache.DefaultPoA(7)
	cfg.NumProviders = 5
	cfg.XiValues = []float64{0.5}
	cfg.Restarts = 10
	cfg.Reps = 1
	var last float64
	for i := 0; i < b.N; i++ {
		fig, err := mecache.PoAStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = fig.Tables[0].Series[0].Y[0]
	}
	b.ReportMetric(last, "poa")
}

// --- Ablations: the design choices DESIGN.md calls out -------------------

// BenchmarkAblationCongestionBlind compares the literal Eq. 9
// congestion-blind reduction against the default marginal-congestion
// pricing inside Appro.
func BenchmarkAblationCongestionBlind(b *testing.B) {
	m := benchMarket(b, 11, 250, 100)
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := mecache.Appro(m, mecache.ApproOptions{
			Solver:          mecache.SolverTransport,
			CongestionBlind: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res.SocialCost
	}
	b.ReportMetric(last, "social-cost")
}

func BenchmarkAblationCongestionAware(b *testing.B) {
	m := benchMarket(b, 11, 250, 100)
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := mecache.Appro(m, mecache.ApproOptions{Solver: mecache.SolverTransport})
		if err != nil {
			b.Fatal(err)
		}
		last = res.SocialCost
	}
	b.ReportMetric(last, "social-cost")
}

// BenchmarkAblationSolverShmoysTardos times the LP-rounding path on a
// reduced instance where the dense LP is tractable.
func BenchmarkAblationSolverShmoysTardos(b *testing.B) {
	m := benchMarket(b, 13, 60, 15)
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := mecache.Appro(m, mecache.ApproOptions{Solver: mecache.SolverShmoysTardos})
		if err != nil {
			b.Fatal(err)
		}
		last = res.SocialCost
	}
	b.ReportMetric(last, "social-cost")
}
