package mecache

import (
	"io"
	"log/slog"

	"mecache/internal/obs"
)

// Observability types: decision tracing for the equilibrium algorithms and
// the daemon, structured-logging helpers, and build identity.
type (
	// Tracer receives decision events from the algorithms (best-response
	// candidates and choices, moves, rounds, epoch phases). Nil disables
	// tracing at zero cost on the hot paths.
	Tracer = obs.Tracer
	// TraceEvent is one decision record with the Eq. 3 cost terms broken
	// out.
	TraceEvent = obs.Event
	// TraceRecorder collects events in memory, capped at a limit.
	TraceRecorder = obs.Recorder
	// DecisionTrace is one completed admission or epoch decision as served
	// by the daemon's GET /v1/debug/trace.
	DecisionTrace = obs.Trace
	// BuildInfo identifies the running binary (module version, toolchain,
	// VCS revision).
	BuildInfo = obs.BuildInfo
)

// NewTraceRecorder returns a recorder holding at most limit events (<= 0
// selects the default cap).
func NewTraceRecorder(limit int) *TraceRecorder { return obs.NewRecorder(limit) }

// NewLogger builds a slog.Logger from conventional -log-level (debug, info,
// warn, error) and -log-format (text, json) flag values.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	return obs.NewLogger(w, level, format)
}

// Build reads the binary's identity from the embedded module build info.
func Build() BuildInfo { return obs.Build() }
