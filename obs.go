package mecache

import (
	"io"
	"log/slog"

	"mecache/internal/obs"
)

// Observability types: decision tracing for the equilibrium algorithms and
// the daemon, structured-logging helpers, and build identity.
type (
	// Tracer receives decision events from the algorithms (best-response
	// candidates and choices, moves, rounds, epoch phases). Nil disables
	// tracing at zero cost on the hot paths.
	Tracer = obs.Tracer
	// TraceEvent is one decision record with the Eq. 3 cost terms broken
	// out.
	TraceEvent = obs.Event
	// TraceRecorder collects events in memory, capped at a limit.
	TraceRecorder = obs.Recorder
	// DecisionTrace is one completed admission or epoch decision as served
	// by the daemon's GET /v1/debug/trace.
	DecisionTrace = obs.Trace
	// BuildInfo identifies the running binary (module version, toolchain,
	// VCS revision).
	BuildInfo = obs.BuildInfo
	// Span is one timed stage of a request lifecycle as served by the
	// daemon's GET /v1/debug/spans: queue wait, WAL append/fsync, apply,
	// best response, view publish, correlated by a W3C trace ID.
	Span = obs.Span
	// SpanAttr is one typed span attribute ({"key","value"} in JSON).
	SpanAttr = obs.Attr
	// SpanRing retains the last-N completed spans with lock-free reads.
	SpanRing = obs.SpanRing
)

// NewTraceRecorder returns a recorder holding at most limit events (<= 0
// selects the default cap).
func NewTraceRecorder(limit int) *TraceRecorder { return obs.NewRecorder(limit) }

// NewLogger builds a slog.Logger from conventional -log-level (debug, info,
// warn, error) and -log-format (text, json) flag values.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	return obs.NewLogger(w, level, format)
}

// Build reads the binary's identity from the embedded module build info.
func Build() BuildInfo { return obs.Build() }

// NewSpanRing returns a span ring retaining the last `capacity` completed
// spans (capacity <= 0 returns a disabled ring).
func NewSpanRing(capacity int) *SpanRing { return obs.NewSpanRing(capacity) }

// MintTraceID derives a 32-hex W3C trace ID from two words, as a pure
// function — a load generator minting from (seed, admission index) gets
// reproducible trace identity across runs.
func MintTraceID(hi, lo uint64) string { return obs.MintTraceID(hi, lo) }

// FormatTraceparent renders a W3C traceparent header value for the trace
// ID and parent span ID, suitable for stamping outbound requests.
func FormatTraceparent(trace string, parent uint64) string {
	return obs.FormatTraceparent(trace, parent)
}

// ParseTraceparent extracts the trace and parent IDs of a version-00 W3C
// traceparent header value; ok is false for anything malformed.
func ParseTraceparent(h string) (trace, parent string, ok bool) {
	return obs.ParseTraceparent(h)
}
