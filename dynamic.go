package mecache

import (
	"mecache/internal/dynamic"
	"mecache/internal/topology"
)

// Dynamic-market types: the temporal dimension of the paper's model, where
// services are cached temporarily and the market churns.
type (
	// DynamicConfig parameterizes a dynamic market run (arrival rate,
	// lifetimes, re-optimization epoch).
	DynamicConfig = dynamic.Config
	// DynamicMetrics summarizes a run (time-averaged social cost,
	// reconfiguration churn, cached fraction).
	DynamicMetrics = dynamic.Metrics
	// DynamicSimulator runs one dynamic market.
	DynamicSimulator = dynamic.Simulator
)

// DefaultDynamicConfig returns a moderately loaded dynamic market.
func DefaultDynamicConfig(seed uint64) DynamicConfig { return dynamic.DefaultConfig(seed) }

// NewDynamicSimulator builds a dynamic market simulator; a nil topology
// selects a default GT-ITM network.
func NewDynamicSimulator(topo *topology.Topology, cfg DynamicConfig) (*DynamicSimulator, error) {
	return dynamic.New(topo, cfg)
}
