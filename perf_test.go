package mecache_test

import (
	"strings"
	"testing"

	"mecache"
)

// TestFacadeLoadState drives the incremental engine through the facade: a
// sequence of arrivals placed by BestResponseWithLoads must match a fresh
// recomputation against the same placement, and every placement must be a
// legal strategy.
func TestFacadeLoadState(t *testing.T) {
	cfg := mecache.DefaultWorkload(11)
	cfg.NumProviders = 12
	m, err := mecache.GenerateMarketGTITM(60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ls := mecache.NewLoadState(m)
	pl := make(mecache.Placement, len(m.Providers))
	for l := range pl {
		pl[l] = mecache.Remote
	}
	nc := m.Net.NumCloudlets()
	for l := range pl {
		s := mecache.BestResponseWithLoads(ls, pl, l, nil, nil)
		if s != mecache.Remote && (s < 0 || s >= nc) {
			t.Fatalf("provider %d: strategy %d out of range", l, s)
		}
		if s != mecache.Remote {
			ls.Add(l, s)
		}
		pl[l] = s
	}
	// A state rebuilt from scratch over the final placement must agree with
	// the incrementally maintained one on the next decision.
	fresh := mecache.NewLoadState(m)
	fresh.Reset(pl)
	l := 0
	if pl[l] != mecache.Remote {
		fresh.Remove(l, pl[l])
		ls.Remove(l, pl[l])
	}
	sF := mecache.BestResponseWithLoads(fresh, pl, l, nil, nil)
	sI := mecache.BestResponseWithLoads(ls, pl, l, nil, nil)
	if sF != sI {
		t.Fatalf("rebuilt state answers %d, incremental state %d", sF, sI)
	}
}

// TestFacadeBenchHarness measures the smallest tracked case through the
// facade and sanity-checks the result fields.
func TestFacadeBenchHarness(t *testing.T) {
	cases := mecache.BenchCases()
	if len(cases) == 0 {
		t.Fatal("no tracked benchmark cases")
	}
	var small *mecache.BenchCase
	for i := range cases {
		if strings.HasPrefix(cases[i].Name, "BestResponseDynamics/") {
			small = &cases[i]
			break
		}
	}
	if small == nil {
		t.Fatal("no BestResponseDynamics case")
	}
	r, err := mecache.MeasureBench(*small, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != small.Name || r.Iterations < 1 || r.NsPerOp <= 0 {
		t.Fatalf("implausible result %+v", r)
	}
}
