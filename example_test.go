package mecache_test

import (
	"fmt"

	"mecache"
)

// ExampleLCF runs the paper's full mechanism on a generated market.
func ExampleLCF() {
	market, err := mecache.GenerateMarketGTITM(100, mecache.DefaultWorkload(1))
	if err != nil {
		panic(err)
	}
	res, err := mecache.LCF(market, mecache.LCFOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("coordinated %d of %d providers\n", len(res.Coordinated), len(market.Providers))
	fmt.Printf("social cost beats Appro-only? %v\n", res.SocialCost <= res.Appro.SocialCost+1e-9)
	// Output:
	// coordinated 70 of 100 providers
	// social cost beats Appro-only? true
}

// ExampleAppro runs Algorithm 1 alone and inspects the virtual-cloudlet
// split of Eq. (7).
func ExampleAppro() {
	market, err := mecache.GenerateMarketGTITM(50, mecache.DefaultWorkload(2))
	if err != nil {
		panic(err)
	}
	res, err := mecache.Appro(market, mecache.ApproOptions{Solver: mecache.SolverTransport})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cloudlets: %d, placement feasible: %v\n",
		len(res.VirtualSlots), market.CheckCapacity(res.Placement, 0) == nil)
	// Output:
	// cloudlets: 5, placement feasible: true
}

// ExampleNewGame runs selfish best-response dynamics to a Nash equilibrium.
func ExampleNewGame() {
	cfg := mecache.DefaultWorkload(3)
	cfg.NumProviders = 20
	market, err := mecache.GenerateMarketGTITM(60, cfg)
	if err != nil {
		panic(err)
	}
	g := mecache.NewGame(market)
	dyn, err := mecache.BestResponseDynamics(g, mecache.AllRemote(market), 1, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged: %v, Nash: %v\n", dyn.Converged, g.IsNash(dyn.Placement))
	// Output:
	// converged: true, Nash: true
}

// ExamplePoABound evaluates Theorem 1's Price-of-Anarchy bound.
func ExamplePoABound() {
	// delta = kappa = 2 and a fully coordinated market.
	fmt.Printf("%.2f\n", mecache.PoABound(2, 2, 1))
	// Output:
	// 8.00
}

// ExampleGTITM generates the topology family the simulations sweep.
func ExampleGTITM() {
	topo, err := mecache.GTITM(7, 200)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d nodes, connected: %v\n", topo.Name, topo.N(), topo.Graph.Connected())
	// Output:
	// gtitm-200: 200 nodes, connected: true
}

// ExampleNewDynamicSimulator runs the temporal market for a short horizon.
func ExampleNewDynamicSimulator() {
	cfg := mecache.DefaultDynamicConfig(7)
	cfg.Horizon = 50
	sim, err := mecache.NewDynamicSimulator(nil, cfg)
	if err != nil {
		panic(err)
	}
	m, err := sim.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("arrivals > departures: %v, epochs: %d\n", m.Arrivals >= m.Departures, m.Epochs)
	// Output:
	// arrivals > departures: true, epochs: 2
}

// ExampleNewReplicaPlanner places replicas for one provider.
func ExampleNewReplicaPlanner() {
	cfg := mecache.DefaultWorkload(2)
	cfg.NumProviders = 5
	market, err := mecache.GenerateMarketGTITM(100, cfg)
	if err != nil {
		panic(err)
	}
	planner, err := mecache.NewReplicaPlanner(market, nil)
	if err != nil {
		panic(err)
	}
	groups := mecache.UniformUserGroups([]int{5, 95})
	plan, err := planner.PlanReplicas(0, groups, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("replicas within budget: %v, cost positive: %v\n",
		len(plan.Cloudlets) <= 3, plan.Cost > 0)
	// Output:
	// replicas within budget: true, cost positive: true
}

// ExampleMarket_SetCongestionModel switches the market to quadratic
// congestion.
func ExampleMarket_SetCongestionModel() {
	cfg := mecache.DefaultWorkload(4)
	cfg.NumProviders = 10
	market, err := mecache.GenerateMarketGTITM(50, cfg)
	if err != nil {
		panic(err)
	}
	if err := market.SetCongestionModel(mecache.PolynomialCongestion{Degree: 2}); err != nil {
		panic(err)
	}
	fmt.Println(market.CongestionModelInUse().Name())
	// Output:
	// poly(2)
}
