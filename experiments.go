package mecache

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mecache/internal/experiments"
	"mecache/internal/plot"
	"mecache/internal/testbed"
)

// Experiment driver types: one config per figure of the paper's Section IV.
type (
	// Figure is a reproduced figure: panels of aligned-table series.
	Figure = experiments.Figure
	// FigureTable is one panel of a figure.
	FigureTable = experiments.Table
	// FigureSeries is one algorithm's line in a panel.
	FigureSeries = experiments.Series

	// Fig2Config sweeps GT-ITM network sizes (Figure 2).
	Fig2Config = experiments.Fig2Config
	// Fig3Config sweeps the selfish fraction 1-ξ (Figure 3).
	Fig3Config = experiments.Fig3Config
	// Fig5Config runs the AS1755 test-bed comparison (Figure 5).
	Fig5Config = experiments.Fig5Config
	// Fig6Config runs the test-bed parameter studies (Figure 6).
	Fig6Config = experiments.Fig6Config
	// Fig7Config sweeps the maximum resource demands (Figure 7).
	Fig7Config = experiments.Fig7Config
	// PoAConfig drives the Price-of-Anarchy study backing Theorem 1.
	PoAConfig = experiments.PoAConfig
	// AblationConfig drives the design-choice ablation studies.
	AblationConfig = experiments.AblationConfig

	// AlgoOutcome is one algorithm's result on one instance.
	AlgoOutcome = experiments.AlgoOutcome
)

// Algorithm display names used in every figure's series.
const (
	AlgoLCF            = experiments.AlgoLCF
	AlgoJoOffloadCache = experiments.AlgoJoOffloadCache
	AlgoOffloadCache   = experiments.AlgoOffloadCache
)

// Default experiment configurations (the paper's sweeps).
var (
	DefaultFig2 = experiments.DefaultFig2
	DefaultFig3 = experiments.DefaultFig3
	DefaultFig5 = experiments.DefaultFig5
	DefaultFig6 = experiments.DefaultFig6
	DefaultFig7 = experiments.DefaultFig7
	DefaultPoA  = experiments.DefaultPoA
	// DefaultAblation returns the standard ablation sweep.
	DefaultAblation = experiments.DefaultAblation
)

// Fig2 reproduces Figure 2 (GT-ITM sweep, four panels).
func Fig2(cfg Fig2Config) (*Figure, error) { return experiments.Fig2(cfg) }

// Fig3 reproduces Figure 3 (impact of 1-ξ, four panels).
func Fig3(cfg Fig3Config) (*Figure, error) { return experiments.Fig3(cfg) }

// Fig5 reproduces Figure 5 (test-bed comparison).
func Fig5(cfg Fig5Config) (*Figure, error) { return experiments.Fig5(cfg) }

// Fig6 reproduces Figure 6 (test-bed parameter studies).
func Fig6(cfg Fig6Config) (*Figure, error) { return experiments.Fig6(cfg) }

// Fig7 reproduces Figure 7 (impact of a_max and b_max).
func Fig7(cfg Fig7Config) (*Figure, error) { return experiments.Fig7(cfg) }

// PoAStudy measures the empirical Price of Anarchy against the Theorem-1
// bound.
func PoAStudy(cfg PoAConfig) (*Figure, error) { return experiments.PoAStudy(cfg) }

// Ablation runs the design-choice studies: coordination rules, GAP pricing,
// and Price of Stability vs Price of Anarchy.
func Ablation(cfg AblationConfig) (*Figure, error) { return experiments.Ablation(cfg) }

// RunAll executes LCF and both baselines on a market and returns
// per-algorithm outcomes. The algorithms run serially so their Seconds
// timings are uncontended.
func RunAll(m *Market, xi float64, seed uint64) (map[string]AlgoOutcome, error) {
	return experiments.RunAll(m, xi, seed)
}

// RunAllParallel is RunAll with the three algorithms dispatched on a worker
// pool (workers 0 = one per CPU, 1 = serial). Placements and costs are
// identical to RunAll at any width; only the timing fields contend.
func RunAllParallel(m *Market, xi float64, seed uint64, workers int) (map[string]AlgoOutcome, error) {
	return experiments.RunAllParallel(m, xi, seed, workers)
}

// Test-bed emulation types (the Section IV-C substitute).
type (
	// Testbed is the emulated SDN test-bed: 5-switch underlay, OVS/VM
	// overlay, controller, and market.
	Testbed = testbed.Testbed
	// TestbedConfig parameterizes the emulation.
	TestbedConfig = testbed.Config
	// Deployment is an installed placement (controller flow tables + flows).
	Deployment = testbed.Deployment
	// Measurement is a flow-level measurement run.
	Measurement = testbed.Measurement
	// Controller is the emulated SDN controller.
	Controller = testbed.Controller
	// FlowRule is one installed forwarding rule.
	FlowRule = testbed.FlowRule
	// FlowKind distinguishes request traffic from consistency updates.
	FlowKind = testbed.FlowKind
)

// Flow kinds installed by the controller.
const (
	RequestFlow = testbed.RequestFlow
	UpdateFlow  = testbed.UpdateFlow
)

// DefaultTestbedConfig returns the Section IV-C setting (AS1755 overlay).
func DefaultTestbedConfig(seed uint64) TestbedConfig { return testbed.DefaultConfig(seed) }

// NewTestbed assembles the emulated test-bed.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) { return testbed.New(cfg) }

// RenderSVG renders one figure panel as a self-contained SVG line chart.
func RenderSVG(t *FigureTable, w io.Writer) error { return plot.SVG(t, w) }

// WriteSVGs renders every panel of the figure into dir (created if needed),
// one SVG file per panel, and returns the written file paths.
func WriteSVGs(fig *Figure, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var files []string
	for i := range fig.Tables {
		name := filepath.Join(dir, slug(fig.Tables[i].Title)+".svg")
		f, err := os.Create(name)
		if err != nil {
			return nil, err
		}
		if err := plot.SVG(&fig.Tables[i], f); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("render %q: %w", fig.Tables[i].Title, err)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		files = append(files, name)
	}
	return files, nil
}

// slug turns a panel title into a safe file stem.
func slug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_' || r == '(' || r == ')':
			b.WriteByte('-')
		}
	}
	return strings.Trim(strings.ReplaceAll(b.String(), "--", "-"), "-")
}
