// Package replica extends the paper's single-instance service caching with
// multi-replica caching — the direction of the authors' follow-up
// "Collaborate or separate? Distributed service caching in mobile edge
// clouds" [26], and the third design challenge of Section I ("how to place
// the to-be-cached instances, assign requests to the cached services, and
// update the data processed by cached instances").
//
// A provider may cache up to K replicas of its service; each of its user
// groups (attachment points with request shares) is served by the nearest
// instance (a cached replica or the remote original), and every replica
// ships its own consistency updates home. Choosing the replica set is an
// uncapacitated facility-location problem; the provider-side objective is
// monotone decreasing with diminishing returns in practice, and the greedy
// add-one-replica-at-a-time algorithm used here is the classical heuristic
// for it.
package replica

import (
	"fmt"
	"math"

	"mecache/internal/mec"
)

// UserGroup is a cluster of a provider's users: an attachment node and the
// share of the provider's requests originating there.
type UserGroup struct {
	AttachNode int
	// Share is the fraction of the provider's requests from this group;
	// shares must sum to 1.
	Share float64
}

// Plan is a replica-placement decision for one provider.
type Plan struct {
	// Cloudlets lists the cloudlets hosting a replica (possibly empty:
	// serve everything remotely).
	Cloudlets []int
	// Cost is the provider's total cost under the plan.
	Cost float64
	// Assignment maps each user group to the index of its serving replica
	// in Cloudlets, or -1 for the remote original.
	Assignment []int
}

// Planner computes replica plans over a market's network for a given
// provider. The congestion term is charged per replica at the cloudlet's
// current load plus one (the planner is a single-provider view; market-wide
// interactions stay in the game packages).
type Planner struct {
	Market *mec.Market
	// Loads is the current number of services cached at each cloudlet
	// (excluding this provider); nil means an empty network.
	Loads []int
}

// NewPlanner builds a planner against the market with the given background
// loads.
func NewPlanner(m *mec.Market, loads []int) (*Planner, error) {
	if m == nil {
		return nil, fmt.Errorf("replica: nil market")
	}
	if loads != nil && len(loads) != m.Net.NumCloudlets() {
		return nil, fmt.Errorf("replica: %d loads for %d cloudlets", len(loads), m.Net.NumCloudlets())
	}
	return &Planner{Market: m, Loads: loads}, nil
}

// groupCost is the cost of serving one user group from a given replica
// cloudlet (congestion-free part, scaled by the group's request share).
func (p *Planner) groupCost(l int, g UserGroup, cloudlet int) float64 {
	m := p.Market
	prov := &m.Providers[l]
	cl := &m.Net.Cloudlets[cloudlet]
	hops := float64(m.Net.Hops(g.AttachNode, cl.Node))
	if hops < 0 {
		return math.Inf(1)
	}
	traffic := prov.TrafficGB() * g.Share
	return cl.ProcPricePerGB*traffic + cl.TransPricePerGBHop*traffic*hops
}

// groupRemoteCost serves the group from the home DC.
func (p *Planner) groupRemoteCost(l int, g UserGroup) float64 {
	m := p.Market
	prov := &m.Providers[l]
	dc := &m.Net.DCs[prov.HomeDC]
	hops := float64(m.Net.Hops(g.AttachNode, dc.Node))
	if hops < 0 {
		return math.Inf(1)
	}
	hops += float64(dc.BackhaulHops)
	traffic := prov.TrafficGB() * g.Share
	return dc.ProcPricePerGB*traffic + dc.TransPricePerGBHop*traffic*hops
}

// replicaFixedCost is the per-replica overhead at a cloudlet:
// instantiation, fixed bandwidth charge, congestion at load+1, and the
// consistency-update shipping for this replica.
func (p *Planner) replicaFixedCost(l, cloudlet int) float64 {
	m := p.Market
	prov := &m.Providers[l]
	cl := &m.Net.Cloudlets[cloudlet]
	load := 1
	if p.Loads != nil {
		load = p.Loads[cloudlet] + 1
	}
	congestion := m.CongestionCoeff(cloudlet) * m.CongestionLevel(load)
	update := m.UpdateCost(l, cloudlet)
	return prov.InstCost + cl.FixedBandwidthCost + congestion + update
}

// evaluate computes the plan cost for a fixed replica set.
func (p *Planner) evaluate(l int, groups []UserGroup, replicas []int) (float64, []int) {
	total := 0.0
	for _, c := range replicas {
		total += p.replicaFixedCost(l, c)
	}
	assign := make([]int, len(groups))
	for gi, g := range groups {
		best := p.groupRemoteCost(l, g)
		assign[gi] = -1
		for ri, c := range replicas {
			if cost := p.groupCost(l, g, c); cost < best {
				best = cost
				assign[gi] = ri
			}
		}
		total += best
	}
	return total, assign
}

// PlanReplicas greedily places up to maxReplicas replicas for provider l
// serving the given user groups: starting from the all-remote plan, it
// repeatedly adds the replica with the largest cost reduction and stops
// when no addition helps or the budget is exhausted.
func (p *Planner) PlanReplicas(l int, groups []UserGroup, maxReplicas int) (*Plan, error) {
	m := p.Market
	if l < 0 || l >= len(m.Providers) {
		return nil, fmt.Errorf("replica: provider %d out of range [0,%d)", l, len(m.Providers))
	}
	if maxReplicas < 0 {
		return nil, fmt.Errorf("replica: negative replica budget %d", maxReplicas)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("replica: provider %d has no user groups", l)
	}
	shareSum := 0.0
	for _, g := range groups {
		if g.AttachNode < 0 || g.AttachNode >= m.Net.Topo.N() {
			return nil, fmt.Errorf("replica: group attaches at invalid node %d", g.AttachNode)
		}
		if g.Share < 0 {
			return nil, fmt.Errorf("replica: negative request share %v", g.Share)
		}
		shareSum += g.Share
	}
	if math.Abs(shareSum-1) > 1e-6 {
		return nil, fmt.Errorf("replica: request shares sum to %v, want 1", shareSum)
	}

	var replicas []int
	cost, assign := p.evaluate(l, groups, replicas)
	used := make(map[int]bool)
	for len(replicas) < maxReplicas {
		bestC, bestCost := -1, cost
		var bestAssign []int
		for c := 0; c < m.Net.NumCloudlets(); c++ {
			if used[c] {
				continue
			}
			candCost, candAssign := p.evaluate(l, groups, append(replicas, c))
			if candCost < bestCost-1e-12 {
				bestC, bestCost, bestAssign = c, candCost, candAssign
			}
		}
		if bestC < 0 {
			break // no replica addition helps
		}
		replicas = append(replicas, bestC)
		used[bestC] = true
		cost, assign = bestCost, bestAssign
	}
	return &Plan{
		Cloudlets:  append([]int(nil), replicas...),
		Cost:       cost,
		Assignment: assign,
	}, nil
}

// UniformGroups spreads a provider's requests evenly over the given
// attachment nodes — a convenience for examples and tests.
func UniformGroups(nodes []int) []UserGroup {
	groups := make([]UserGroup, len(nodes))
	for i, n := range nodes {
		groups[i] = UserGroup{AttachNode: n, Share: 1 / float64(len(nodes))}
	}
	return groups
}
