package replica

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/mec"
	"mecache/internal/workload"
)

func genMarket(t *testing.T, seed uint64) *mec.Market {
	t.Helper()
	cfg := workload.Default(seed)
	cfg.NumProviders = 10
	m, err := workload.GenerateGTITM(120, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestZeroBudgetMeansRemote(t *testing.T) {
	m := genMarket(t, 1)
	p, err := NewPlanner(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	groups := UniformGroups([]int{3, 50, 90})
	plan, err := p.PlanReplicas(0, groups, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cloudlets) != 0 {
		t.Fatalf("zero budget placed %d replicas", len(plan.Cloudlets))
	}
	for _, a := range plan.Assignment {
		if a != -1 {
			t.Fatalf("assignment %v should be all-remote", plan.Assignment)
		}
	}
}

// TestMoreReplicasNeverHurt: the greedy stops adding when additions stop
// helping, so cost is non-increasing in the budget.
func TestMoreReplicasNeverHurt(t *testing.T) {
	m := genMarket(t, 2)
	p, err := NewPlanner(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	groups := UniformGroups([]int{3, 40, 70, 100})
	prev := math.Inf(1)
	for budget := 0; budget <= 5; budget++ {
		plan, err := p.PlanReplicas(1, groups, budget)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Cost > prev+1e-9 {
			t.Fatalf("budget %d cost %v exceeds budget %d cost %v", budget, plan.Cost, budget-1, prev)
		}
		prev = plan.Cost
		if len(plan.Cloudlets) > budget {
			t.Fatalf("budget %d exceeded: %d replicas", budget, len(plan.Cloudlets))
		}
	}
}

// TestReplicationBeatsSingleCacheForSpreadUsers: with user groups far
// apart, two replicas should beat the best single replica.
func TestReplicationBeatsSingleCacheForSpreadUsers(t *testing.T) {
	m := genMarket(t, 3)
	p, err := NewPlanner(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Groups at opposite corners of the network (nodes far apart in id
	// space land in different stub clusters for GT-ITM).
	groups := UniformGroups([]int{5, 115})
	one, err := p.PlanReplicas(2, groups, 1)
	if err != nil {
		t.Fatal(err)
	}
	two, err := p.PlanReplicas(2, groups, 2)
	if err != nil {
		t.Fatal(err)
	}
	if two.Cost > one.Cost+1e-9 {
		t.Fatalf("two replicas (%v) should not cost more than one (%v)", two.Cost, one.Cost)
	}
}

// TestAssignmentIsNearest: each group must be assigned to its cheapest
// serving option among the chosen replicas and remote.
func TestAssignmentIsNearest(t *testing.T) {
	m := genMarket(t, 4)
	p, err := NewPlanner(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	groups := UniformGroups([]int{10, 60, 110})
	plan, err := p.PlanReplicas(3, groups, 3)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range groups {
		best := p.groupRemoteCost(3, g)
		bestIdx := -1
		for ri, c := range plan.Cloudlets {
			if cost := p.groupCost(3, g, c); cost < best {
				best = cost
				bestIdx = ri
			}
		}
		if plan.Assignment[gi] != bestIdx {
			t.Fatalf("group %d assigned to %d, cheapest is %d", gi, plan.Assignment[gi], bestIdx)
		}
	}
}

func TestBackgroundLoadRaisesCost(t *testing.T) {
	m := genMarket(t, 5)
	empty, err := NewPlanner(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	busyLoads := make([]int, m.Net.NumCloudlets())
	for i := range busyLoads {
		busyLoads[i] = 10
	}
	busy, err := NewPlanner(m, busyLoads)
	if err != nil {
		t.Fatal(err)
	}
	groups := UniformGroups([]int{20, 80})
	pe, err := empty.PlanReplicas(0, groups, 2)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := busy.PlanReplicas(0, groups, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Cost < pe.Cost-1e-9 {
		t.Fatalf("congested network yielded cheaper plan: %v vs %v", pb.Cost, pe.Cost)
	}
}

func TestValidation(t *testing.T) {
	m := genMarket(t, 6)
	if _, err := NewPlanner(nil, nil); err == nil {
		t.Fatal("nil market accepted")
	}
	if _, err := NewPlanner(m, []int{1}); err == nil {
		t.Fatal("wrong-length loads accepted")
	}
	p, err := NewPlanner(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PlanReplicas(99, UniformGroups([]int{1}), 1); err == nil {
		t.Fatal("invalid provider accepted")
	}
	if _, err := p.PlanReplicas(0, nil, 1); err == nil {
		t.Fatal("empty groups accepted")
	}
	if _, err := p.PlanReplicas(0, []UserGroup{{AttachNode: 0, Share: 0.5}}, 1); err == nil {
		t.Fatal("shares not summing to 1 accepted")
	}
	if _, err := p.PlanReplicas(0, []UserGroup{{AttachNode: -1, Share: 1}}, 1); err == nil {
		t.Fatal("invalid attach node accepted")
	}
	if _, err := p.PlanReplicas(0, UniformGroups([]int{1}), -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// Property: plan cost is always finite and positive, assignments reference
// valid replicas, and the replica set has no duplicates.
func TestPlanInvariants(t *testing.T) {
	m := genMarket(t, 7)
	p, err := NewPlanner(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed uint64) bool {
		l := int(seed % uint64(len(m.Providers)))
		nodes := []int{int(seed % 120), int((seed / 7) % 120), int((seed / 49) % 120)}
		plan, err := p.PlanReplicas(l, UniformGroups(nodes), 3)
		if err != nil {
			return false
		}
		if plan.Cost <= 0 || math.IsInf(plan.Cost, 0) || math.IsNaN(plan.Cost) {
			return false
		}
		seen := make(map[int]bool)
		for _, c := range plan.Cloudlets {
			if c < 0 || c >= m.Net.NumCloudlets() || seen[c] {
				return false
			}
			seen[c] = true
		}
		for _, a := range plan.Assignment {
			if a < -1 || a >= len(plan.Cloudlets) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPlanReplicas(b *testing.B) {
	cfg := workload.Default(8)
	cfg.NumProviders = 10
	m, err := workload.GenerateGTITM(200, cfg)
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPlanner(m, nil)
	if err != nil {
		b.Fatal(err)
	}
	groups := UniformGroups([]int{10, 60, 110, 160})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PlanReplicas(i%10, groups, 4); err != nil {
			b.Fatal(err)
		}
	}
}
