// Package bench defines the repo's tracked benchmark cases — the perf
// trajectory committed as BENCH_<pr>.json — and a small measurement harness
// both `go test -bench` and `mecbench -bench-json` run, so CI smoke runs and
// the committed baseline measure the exact same operations.
//
// Cases come in engine/naive pairs at three market scales (cloudlets ×
// providers). The naive twins re-run the pre-engine implementation (full
// ascending-index rescans, clone-based hysteresis probes) in the same
// process, so the committed file carries a machine-independent speedup
// ratio: regressions are judged on engine-vs-naive ratios, never on raw
// nanoseconds from someone else's laptop.
package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"mecache/internal/dynamic"
	"mecache/internal/game"
	"mecache/internal/mec"
	"mecache/internal/rng"
	"mecache/internal/server"
	"mecache/internal/tenant"
	"mecache/internal/workload"
)

// Case is one tracked benchmark: Setup builds the fixture and returns the
// operation to time. The op must be self-contained and repeatable (steady
// state), so harnesses can run it any number of times.
type Case struct {
	Name  string
	Setup func() (func() error, error)
}

// scale is a market size the cases run at, named cloudlets x providers.
type scale struct {
	name      string
	nodes     int // GT-ITM topology size; cloudlets = nodes/2
	providers int
}

var scales = []scale{
	{"50x25", 100, 25},
	{"125x50", 250, 50},
	{"250x100", 500, 100},
}

// benchSeed keeps every fixture deterministic.
const benchSeed = 7

func benchWorkload(sc scale) workload.Config {
	cfg := workload.Default(benchSeed)
	cfg.NumProviders = sc.providers
	cfg.CloudletFraction = 0.5
	return cfg
}

func benchMarket(sc scale) (*mec.Market, error) {
	return workload.GenerateGTITM(sc.nodes, benchWorkload(sc))
}

// joinedPlacement grows a placement by sequential selfish joins — the
// steady state an online market reaches, and the natural input for an epoch.
func joinedPlacement(m *mec.Market) mec.Placement {
	pl := make(mec.Placement, len(m.Providers))
	for l := range pl {
		pl[l] = mec.Remote
	}
	for l := range pl {
		pl[l] = dynamic.BestResponseAvoidingFailed(m, pl, l, nil)
	}
	return pl
}

func dynamicsCase(sc scale, naive bool) Case {
	name := "BestResponseDynamics"
	if naive {
		name += "Naive"
	}
	return Case{
		Name: fmt.Sprintf("%s/%s", name, sc.name),
		Setup: func() (func() error, error) {
			m, err := benchMarket(sc)
			if err != nil {
				return nil, err
			}
			g := game.New(m)
			g.NaiveScan = naive
			init := make(mec.Placement, len(m.Providers))
			return func() error {
				for l := range init {
					init[l] = mec.Remote
				}
				_, err := g.BestResponseDynamics(init, rng.New(benchSeed), 0)
				return err
			}, nil
		},
	}
}

func reequilibrateCase(sc scale, naive bool) Case {
	name := "Reequilibrate"
	if naive {
		name += "Naive"
	}
	return Case{
		Name: fmt.Sprintf("%s/%s", name, sc.name),
		Setup: func() (func() error, error) {
			m, err := benchMarket(sc)
			if err != nil {
				return nil, err
			}
			pl := joinedPlacement(m)
			opts := dynamic.EpochOptions{
				Xi: 0.7, Seed: benchSeed, MigrationAware: true, Reference: naive,
			}
			return func() error {
				_, _, err := dynamic.Reequilibrate(m, pl, opts)
				return err
			}, nil
		},
	}
}

// reequilibrateWarmCase times the steady-state epoch the warm-start work
// targets: the exact Reequilibrate call of Reequilibrate/<scale>, but
// carrying an EpochSolveState across operations. The harness's warm-up op
// populates the caches, so every timed op revalidates the market
// fingerprint against an unchanged reduction and serves the solve from the
// cached state. mecbench -bench-check enforces the warm/cold time ratio at
// the largest scale; the ratio is machine-independent because both cases
// run in the same process.
func reequilibrateWarmCase(sc scale) Case {
	return Case{
		Name: fmt.Sprintf("ReequilibrateWarm/%s", sc.name),
		Setup: func() (func() error, error) {
			m, err := benchMarket(sc)
			if err != nil {
				return nil, err
			}
			pl := joinedPlacement(m)
			var st dynamic.EpochSolveState
			opts := dynamic.EpochOptions{
				Xi: 0.7, Seed: benchSeed, MigrationAware: true, State: &st,
			}
			return func() error {
				_, _, err := dynamic.Reequilibrate(m, pl, opts)
				return err
			}, nil
		},
	}
}

func admissionCase(sc scale) Case {
	return Case{
		Name: fmt.Sprintf("DaemonAdmission/%s", sc.name),
		Setup: func() (func() error, error) {
			cfg := server.DefaultConfig(benchSeed)
			cfg.Size = sc.nodes
			cfg.Workload = benchWorkload(sc)
			cfg.TraceDepth = 0 // admissions run the untraced hot path
			s, err := server.New(cfg)
			if err != nil {
				return nil, err
			}
			s.Start()
			h := s.Handler()
			v := s.View()
			wl := cfg.Workload
			pool := make([][]byte, 64)
			for i := range pool {
				p := wl.DrawProvider(rng.Substream(benchSeed, uint64(i)), v.NumDCs, v.NumNodes)
				body, err := json.Marshal(p)
				if err != nil {
					return nil, err
				}
				pool[i] = body
			}
			admit := func(body []byte) (int64, error) {
				req := httptest.NewRequest(http.MethodPost, "/v1/providers", bytes.NewReader(body))
				rw := httptest.NewRecorder()
				h.ServeHTTP(rw, req)
				if rw.Code != http.StatusCreated {
					return 0, fmt.Errorf("admission status %d: %s", rw.Code, rw.Body.String())
				}
				var ar struct {
					ID int64 `json:"id"`
				}
				if err := json.Unmarshal(rw.Body.Bytes(), &ar); err != nil {
					return 0, err
				}
				return ar.ID, nil
			}
			// Fill the market to the scale's provider count so the timed
			// admissions land in a congested steady state.
			for i := 0; i < sc.providers; i++ {
				if _, err := admit(pool[i%len(pool)]); err != nil {
					return nil, err
				}
			}
			n := sc.providers
			return func() error {
				id, err := admit(pool[n%len(pool)])
				if err != nil {
					return err
				}
				n++
				req := httptest.NewRequest(http.MethodDelete, fmt.Sprintf("/v1/providers/%d", id), nil)
				rw := httptest.NewRecorder()
				h.ServeHTTP(rw, req)
				if rw.Code != http.StatusNoContent {
					return fmt.Errorf("depart status %d: %s", rw.Code, rw.Body.String())
				}
				return nil
			}, nil
		},
	}
}

// multiTenantAdmissionCase times one admission+departure pair on each of
// nTenants independent tenants concurrently, through the registry's routed
// handler at the smallest scale. The 8-tenant op performs 8x the admissions
// of the 1-tenant op, so the 8/1 time ratio measures how well per-tenant
// event loops scale: near 8/min(8,GOMAXPROCS) when tenants are truly
// independent, climbing past it when shared state serializes them.
func multiTenantAdmissionCase(nTenants int) Case {
	plural := "tenants"
	if nTenants == 1 {
		plural = "tenant"
	}
	return Case{
		Name: fmt.Sprintf("MultiTenantAdmission/%d%s", nTenants, plural),
		Setup: func() (func() error, error) {
			sc := scales[0]
			cfg := server.DefaultConfig(benchSeed)
			cfg.Size = sc.nodes
			cfg.Workload = benchWorkload(sc)
			cfg.TraceDepth = 0
			reg, err := tenant.NewRegistry(tenant.Config{Template: cfg})
			if err != nil {
				return nil, err
			}
			h := reg.Handler()
			bases := make([]string, nTenants)
			for k := range bases {
				bases[k] = fmt.Sprintf("/v1/t/bench%d", k)
			}

			req := httptest.NewRequest(http.MethodGet, bases[0]+"/market", nil)
			rw := httptest.NewRecorder()
			h.ServeHTTP(rw, req)
			if rw.Code != http.StatusOK {
				return nil, fmt.Errorf("probe market: status %d", rw.Code)
			}
			var v struct {
				NumDCs   int `json:"numDCs"`
				NumNodes int `json:"numNodes"`
			}
			if err := json.Unmarshal(rw.Body.Bytes(), &v); err != nil {
				return nil, err
			}
			wl := cfg.Workload
			pool := make([][]byte, 64)
			for i := range pool {
				p := wl.DrawProvider(rng.Substream(benchSeed, uint64(i)), v.NumDCs, v.NumNodes)
				body, err := json.Marshal(p)
				if err != nil {
					return nil, err
				}
				pool[i] = body
			}
			admit := func(base string, body []byte) (int64, error) {
				req := httptest.NewRequest(http.MethodPost, base+"/providers", bytes.NewReader(body))
				rw := httptest.NewRecorder()
				h.ServeHTTP(rw, req)
				if rw.Code != http.StatusCreated {
					return 0, fmt.Errorf("admission status %d: %s", rw.Code, rw.Body.String())
				}
				var ar struct {
					ID int64 `json:"id"`
				}
				if err := json.Unmarshal(rw.Body.Bytes(), &ar); err != nil {
					return 0, err
				}
				return ar.ID, nil
			}
			// Fill every tenant to the scale's provider count so the timed
			// admissions land in the same congested steady state the
			// single-tenant DaemonAdmission case measures.
			ns := make([]int, nTenants)
			for k, base := range bases {
				for i := 0; i < sc.providers; i++ {
					if _, err := admit(base, pool[i%len(pool)]); err != nil {
						return nil, err
					}
				}
				ns[k] = sc.providers
			}
			return func() error {
				var wg sync.WaitGroup
				errs := make([]error, nTenants)
				for k := range bases {
					wg.Add(1)
					go func(k int) {
						defer wg.Done()
						id, err := admit(bases[k], pool[ns[k]%len(pool)])
						if err != nil {
							errs[k] = err
							return
						}
						ns[k]++
						req := httptest.NewRequest(http.MethodDelete, fmt.Sprintf("%s/providers/%d", bases[k], id), nil)
						rw := httptest.NewRecorder()
						h.ServeHTTP(rw, req)
						if rw.Code != http.StatusNoContent {
							errs[k] = fmt.Errorf("depart status %d: %s", rw.Code, rw.Body.String())
						}
					}(k)
				}
				wg.Wait()
				return errors.Join(errs...)
			}, nil
		},
	}
}

// Cases returns every tracked benchmark, engine/naive pairs first.
func Cases() []Case {
	var cs []Case
	for _, sc := range scales {
		cs = append(cs,
			dynamicsCase(sc, false),
			dynamicsCase(sc, true),
			reequilibrateCase(sc, false),
			reequilibrateCase(sc, true),
			reequilibrateWarmCase(sc),
			admissionCase(sc),
		)
	}
	cs = append(cs, multiTenantAdmissionCase(1), multiTenantAdmissionCase(8))
	return cs
}

// Result is one measured case, as committed in BENCH_<pr>.json.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
}

// File is the committed benchmark baseline.
type File struct {
	// Note documents how to regenerate the file.
	Note    string   `json:"note"`
	Results []Result `json:"results"`
}

// Measure times one case: a warm-up op, then batches of operations until
// minDuration of measured time accumulates (or maxIters operations ran,
// whichever comes first; maxIters <= 0 means unbounded). Allocations are
// read from runtime.MemStats deltas around the timed region.
func Measure(c Case, minDuration time.Duration, maxIters int) (Result, error) {
	op, err := c.Setup()
	if err != nil {
		return Result{}, fmt.Errorf("%s: setup: %w", c.Name, err)
	}
	if err := op(); err != nil { // warm-up
		return Result{}, fmt.Errorf("%s: warm-up: %w", c.Name, err)
	}
	var (
		iters   int
		elapsed time.Duration
		mallocs uint64
		ms      runtime.MemStats
	)
	batch := 1
	for {
		runtime.ReadMemStats(&ms)
		before := ms.Mallocs
		start := time.Now()
		for i := 0; i < batch; i++ {
			if err := op(); err != nil {
				return Result{}, fmt.Errorf("%s: %w", c.Name, err)
			}
		}
		elapsed += time.Since(start)
		runtime.ReadMemStats(&ms)
		mallocs += ms.Mallocs - before
		iters += batch
		if elapsed >= minDuration || (maxIters > 0 && iters >= maxIters) {
			break
		}
		if batch < 1<<20 {
			batch *= 2
		}
		if maxIters > 0 && iters+batch > maxIters {
			batch = maxIters - iters
		}
	}
	return Result{
		Name:        c.Name,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(mallocs) / float64(iters),
	}, nil
}

// MeasureAll measures every tracked case.
func MeasureAll(minDuration time.Duration, maxIters int) ([]Result, error) {
	var out []Result
	for _, c := range Cases() {
		r, err := Measure(c, minDuration, maxIters)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
