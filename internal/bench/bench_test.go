package bench

import (
	"strings"
	"testing"
)

// BenchmarkTracked registers every tracked case as a sub-benchmark so the
// CI bench smoke (`go test -bench . -benchtime 1x`) exercises the exact
// operations the committed BENCH_<pr>.json baseline measures.
func BenchmarkTracked(b *testing.B) {
	for _, c := range Cases() {
		b.Run(c.Name, func(b *testing.B) {
			op, err := c.Setup()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := op(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestCasesWellFormed checks the tracked-case table itself: names are
// unique, every engine case has its Naive twin at the same scale, and the
// smallest scale's setups actually build and run.
func TestCasesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Cases() {
		if seen[c.Name] {
			t.Fatalf("duplicate case %q", c.Name)
		}
		seen[c.Name] = true
	}
	for name := range seen {
		fam, sc, ok := strings.Cut(name, "/")
		if !ok {
			t.Fatalf("case %q is not family/scale", name)
		}
		if fam == "BestResponseDynamics" || fam == "Reequilibrate" {
			if !seen[fam+"Naive/"+sc] {
				t.Fatalf("case %q has no naive twin", name)
			}
		}
		if fam == "ReequilibrateWarm" && !seen["Reequilibrate/"+sc] {
			t.Fatalf("case %q has no cold twin", name)
		}
	}
	for _, c := range Cases() {
		if !strings.HasSuffix(c.Name, "/50x25") && c.Name != "MultiTenantAdmission/1tenant" {
			continue
		}
		op, err := c.Setup()
		if err != nil {
			t.Fatalf("%s: setup: %v", c.Name, err)
		}
		if err := op(); err != nil {
			t.Fatalf("%s: op: %v", c.Name, err)
		}
	}
}
