package experiments

import (
	"fmt"
	"time"

	"mecache/internal/baselines"
	"mecache/internal/core"
	"mecache/internal/mec"
	"mecache/internal/parallel"
	"mecache/internal/stats"
)

// Algorithm names used across every figure, matching the paper's legends.
const (
	AlgoLCF            = "LCF"
	AlgoJoOffloadCache = "JoOffloadCache"
	AlgoOffloadCache   = "OffloadCache"
)

// AlgoOutcome is the result of one algorithm on one market instance.
type AlgoOutcome struct {
	Placement mec.Placement
	// Social is the Eq. 6 social cost.
	Social float64
	// Coordinated and Selfish split the social cost over the coordinated
	// and selfish provider groups (the groups are defined by LCF's
	// Largest-Cost-First selection and reused for the baselines so the
	// panels compare the same providers).
	Coordinated float64
	Selfish     float64
	// Seconds is the wall-clock running time of the algorithm.
	Seconds float64
}

// RunAll executes the three algorithms on the market with the given
// coordinated fraction ξ and returns per-algorithm outcomes keyed by name.
// The algorithms run serially, so the per-algorithm Seconds timings are
// uncontended (the quantity Figs. 2(d)/3(d) plot).
func RunAll(m *mec.Market, xi float64, seed uint64) (map[string]AlgoOutcome, error) {
	return RunAllParallel(m, xi, seed, 1)
}

// RunAllParallel is RunAll with the three algorithms dispatched on a worker
// pool of the given width (0 = one worker per CPU, 1 = serial). Placements
// and costs are identical to RunAll at any width — each algorithm is a pure
// function of (market, seed) — but concurrent algorithms contend for cores,
// so the Seconds timings are only comparable at width 1.
func RunAllParallel(m *mec.Market, xi float64, seed uint64, workers int) (map[string]AlgoOutcome, error) {
	out := make(map[string]AlgoOutcome, 3)

	var (
		lcf        *core.LCFResult
		jo, off    *baselines.Result
		lcfSeconds float64
		joSeconds  float64
		offSeconds float64
	)
	err := parallel.Run(workers, 3, func(i int) error {
		start := time.Now()
		switch i {
		case 0:
			res, err := core.LCF(m, core.LCFOptions{Xi: xi, Seed: seed, Appro: core.ApproOptions{Solver: core.SolverTransport}})
			if err != nil {
				return fmt.Errorf("experiments: LCF: %w", err)
			}
			lcf, lcfSeconds = res, time.Since(start).Seconds()
		case 1:
			res, err := baselines.JoOffloadCache(m, seed)
			if err != nil {
				return fmt.Errorf("experiments: JoOffloadCache: %w", err)
			}
			jo, joSeconds = res, time.Since(start).Seconds()
		case 2:
			res, err := baselines.OffloadCache(m)
			if err != nil {
				return fmt.Errorf("experiments: OffloadCache: %w", err)
			}
			off, offSeconds = res, time.Since(start).Seconds()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	coordinated := lcf.Coordinated
	selfish := make([]int, 0, len(m.Providers)-len(coordinated))
	isCoord := make([]bool, len(m.Providers))
	for _, l := range coordinated {
		isCoord[l] = true
	}
	for l := range m.Providers {
		if !isCoord[l] {
			selfish = append(selfish, l)
		}
	}
	out[AlgoLCF] = AlgoOutcome{
		Placement:   lcf.Placement,
		Social:      lcf.SocialCost,
		Coordinated: lcf.CoordinatedCost,
		Selfish:     lcf.SelfishCost,
		Seconds:     lcfSeconds,
	}
	out[AlgoJoOffloadCache] = AlgoOutcome{
		Placement:   jo.Placement,
		Social:      jo.SocialCost,
		Coordinated: m.GroupCost(jo.Placement, coordinated),
		Selfish:     m.GroupCost(jo.Placement, selfish),
		Seconds:     joSeconds,
	}
	out[AlgoOffloadCache] = AlgoOutcome{
		Placement:   off.Placement,
		Social:      off.SocialCost,
		Coordinated: m.GroupCost(off.Placement, coordinated),
		Selfish:     m.GroupCost(off.Placement, selfish),
		Seconds:     offSeconds,
	}
	return out, nil
}

// aggregateOutcomes reduces repeated runs to per-algorithm means and 95%
// confidence half-widths of every numeric metric (placements are dropped).
func aggregateOutcomes(runs []map[string]AlgoOutcome) (mean, ci map[string]AlgoOutcome) {
	if len(runs) == 0 {
		return nil, nil
	}
	type sample struct{ social, coordinated, selfish, seconds []float64 }
	acc := make(map[string]*sample)
	for _, run := range runs {
		for name, o := range run {
			sm, ok := acc[name]
			if !ok {
				sm = &sample{}
				acc[name] = sm
			}
			sm.social = append(sm.social, o.Social)
			sm.coordinated = append(sm.coordinated, o.Coordinated)
			sm.selfish = append(sm.selfish, o.Selfish)
			sm.seconds = append(sm.seconds, o.Seconds)
		}
	}
	mean = make(map[string]AlgoOutcome, len(acc))
	ci = make(map[string]AlgoOutcome, len(acc))
	for name, sm := range acc {
		social := stats.Summarize(sm.social)
		coord := stats.Summarize(sm.coordinated)
		selfish := stats.Summarize(sm.selfish)
		secs := stats.Summarize(sm.seconds)
		mean[name] = AlgoOutcome{
			Social: social.Mean, Coordinated: coord.Mean,
			Selfish: selfish.Mean, Seconds: secs.Mean,
		}
		ci[name] = AlgoOutcome{
			Social: social.CI95(), Coordinated: coord.CI95(),
			Selfish: selfish.CI95(), Seconds: secs.CI95(),
		}
	}
	return mean, ci
}
