package experiments

import (
	"fmt"

	"mecache/internal/parallel"
	"mecache/internal/workload"
)

// Fig2Config parameterizes Figure 2: GT-ITM networks of growing size, 100
// providers, (1-ξ) fixed to 0.3.
type Fig2Config struct {
	Seed            uint64
	Sizes           []int
	NumProviders    int
	SelfishFraction float64 // 1-ξ
	Reps            int     // independent instances averaged per point
	// Parallelism bounds the sweep's worker pool, one task per
	// (size, repetition) pair. Values below 1 mean one worker per CPU; 1
	// runs the sweep serially. Every width produces identical tables: each
	// task's randomness is a pure function of its (size, rep) seed.
	Parallelism int
}

// DefaultFig2 returns the paper's Figure-2 sweep.
func DefaultFig2(seed uint64) Fig2Config {
	return Fig2Config{
		Seed:            seed,
		Sizes:           []int{50, 100, 150, 200, 250, 300, 350, 400},
		NumProviders:    100,
		SelfishFraction: 0.3,
		Reps:            3,
	}
}

// Fig2 reproduces Figure 2: algorithm performance in GT-ITM networks with
// sizes varied from 50 to 400 — (a) social cost, (b) cost of the selfish
// providers, (c) cost of the coordinated providers, (d) running times.
func Fig2(cfg Fig2Config) (*Figure, error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	xi := 1 - cfg.SelfishFraction
	social := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
	selfish := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
	coord := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
	runtime := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)

	// One task per (size, rep) pair; results land at their task index, so
	// the aggregation below sees them in the same order at any parallelism.
	runs, err := parallel.Map(cfg.Parallelism, len(cfg.Sizes)*cfg.Reps,
		func(t int) (map[string]AlgoOutcome, error) {
			size, rep := cfg.Sizes[t/cfg.Reps], t%cfg.Reps
			wcfg := workload.Default(cfg.Seed + uint64(rep)*7919 + uint64(size))
			wcfg.NumProviders = cfg.NumProviders
			m, err := workload.GenerateGTITM(size, wcfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig2 size %d: %w", size, err)
			}
			return RunAll(m, xi, wcfg.Seed)
		})
	if err != nil {
		return nil, err
	}

	var xs []float64
	for si, size := range cfg.Sizes {
		avg, ci := aggregateOutcomes(runs[si*cfg.Reps : (si+1)*cfg.Reps])
		xs = append(xs, float64(size))
		for name, o := range avg {
			social.add(name, o.Social)
			social.addErr(name, ci[name].Social)
			selfish.add(name, o.Selfish)
			selfish.addErr(name, ci[name].Selfish)
			coord.add(name, o.Coordinated)
			coord.addErr(name, ci[name].Coordinated)
			runtime.add(name, o.Seconds*1000)
			runtime.addErr(name, ci[name].Seconds*1000)
		}
	}
	return &Figure{
		Name: "Fig 2: GT-ITM networks, sizes 50-400, 100 providers, 1-xi=0.3",
		Tables: []Table{
			{Title: "Fig 2(a) social cost", XLabel: "network size", X: xs, YLabel: "social cost ($)", Series: social.series()},
			{Title: "Fig 2(b) cost of the selfish providers", XLabel: "network size", X: xs, YLabel: "cost ($)", Series: selfish.series()},
			{Title: "Fig 2(c) cost of the coordinated providers", XLabel: "network size", X: xs, YLabel: "cost ($)", Series: coord.series()},
			{Title: "Fig 2(d) running times", XLabel: "network size", X: xs, YLabel: "running time (ms)", Series: runtime.series()},
		},
	}, nil
}

// Fig3Config parameterizes Figure 3: network size 250, (1-ξ) swept 0..1.
type Fig3Config struct {
	Seed             uint64
	Size             int
	NumProviders     int
	SelfishFractions []float64
	Reps             int
	// Parallelism bounds the sweep's worker pool, one task per
	// (fraction, repetition) pair; see Fig2Config.Parallelism.
	Parallelism int
}

// DefaultFig3 returns the paper's Figure-3 sweep.
func DefaultFig3(seed uint64) Fig3Config {
	return Fig3Config{
		Seed:             seed,
		Size:             250,
		NumProviders:     100,
		SelfishFractions: []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		Reps:             3,
	}
}

// Fig3 reproduces Figure 3: the impact of (1-ξ) on the algorithm
// performance in a GT-ITM network with size 250.
func Fig3(cfg Fig3Config) (*Figure, error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	social := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
	selfish := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
	coord := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
	runtime := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)

	runs, err := parallel.Map(cfg.Parallelism, len(cfg.SelfishFractions)*cfg.Reps,
		func(t int) (map[string]AlgoOutcome, error) {
			frac, rep := cfg.SelfishFractions[t/cfg.Reps], t%cfg.Reps
			wcfg := workload.Default(cfg.Seed + uint64(rep)*104729)
			wcfg.NumProviders = cfg.NumProviders
			m, err := workload.GenerateGTITM(cfg.Size, wcfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig3: %w", err)
			}
			return RunAll(m, 1-frac, wcfg.Seed+uint64(1000*frac))
		})
	if err != nil {
		return nil, err
	}

	var xs []float64
	for fi, frac := range cfg.SelfishFractions {
		avg, ci := aggregateOutcomes(runs[fi*cfg.Reps : (fi+1)*cfg.Reps])
		xs = append(xs, frac)
		for name, o := range avg {
			social.add(name, o.Social)
			social.addErr(name, ci[name].Social)
			selfish.add(name, o.Selfish)
			selfish.addErr(name, ci[name].Selfish)
			coord.add(name, o.Coordinated)
			coord.addErr(name, ci[name].Coordinated)
			runtime.add(name, o.Seconds*1000)
			runtime.addErr(name, ci[name].Seconds*1000)
		}
	}
	return &Figure{
		Name: "Fig 3: impact of (1-xi), GT-ITM network size 250",
		Tables: []Table{
			{Title: "Fig 3(a) social cost", XLabel: "1-xi", X: xs, YLabel: "social cost ($)", Series: social.series()},
			{Title: "Fig 3(b) cost of the selfish providers", XLabel: "1-xi", X: xs, YLabel: "cost ($)", Series: selfish.series()},
			{Title: "Fig 3(c) cost of the coordinated providers", XLabel: "1-xi", X: xs, YLabel: "cost ($)", Series: coord.series()},
			{Title: "Fig 3(d) running times", XLabel: "1-xi", X: xs, YLabel: "running time (ms)", Series: runtime.series()},
		},
	}, nil
}
