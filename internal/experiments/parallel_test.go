package experiments

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"mecache/internal/workload"
)

// widths are the worker-pool sizes every sweep must agree across. 0 means
// one worker per CPU, so on multi-core runners it genuinely interleaves.
var widths = []int{1, 4, runtime.NumCPU()}

// fingerprint serializes a figure's deterministic content. Panels whose
// title marks them as wall-clock timings are dropped: running times are
// real measurements and legitimately vary run to run; everything else must
// be byte-identical at any parallelism.
func fingerprint(t *testing.T, fig *Figure) string {
	t.Helper()
	var kept []Table
	for _, tb := range fig.Tables {
		if strings.Contains(tb.Title, "running times") {
			continue
		}
		kept = append(kept, tb)
	}
	b, err := json.Marshal(kept)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFig2ByteIdenticalAcrossParallelism: the GT-ITM sweep must produce the
// same tables (minus the timing panel) at parallelism 1, 4, and NumCPU.
func TestFig2ByteIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	run := func(par int) string {
		cfg := DefaultFig2(21)
		cfg.Sizes = []int{50, 80}
		cfg.NumProviders = 20
		cfg.Reps = 2
		cfg.Parallelism = par
		fig, err := Fig2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(t, fig)
	}
	want := run(1)
	for _, par := range widths[1:] {
		if got := run(par); got != want {
			t.Fatalf("Fig2 diverges at parallelism %d", par)
		}
	}
}

// TestPoAStudyByteIdenticalAcrossParallelism covers both fan-out layers:
// the (xi, rep) sweep and the restart search inside each point.
func TestPoAStudyByteIdenticalAcrossParallelism(t *testing.T) {
	run := func(par int) string {
		cfg := DefaultPoA(9)
		cfg.XiValues = []float64{0, 0.5, 1}
		cfg.NumProviders = 4
		cfg.Restarts = 8
		cfg.Reps = 2
		cfg.Parallelism = par
		fig, err := PoAStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(t, fig)
	}
	want := run(1)
	for _, par := range widths[1:] {
		if got := run(par); got != want {
			t.Fatalf("PoA study diverges at parallelism %d", par)
		}
	}
}

// TestFigFByteIdenticalAcrossParallelism: the resilience sweep runs on
// virtual time, so all four panels — including recovery times — must match
// exactly at any width.
func TestFigFByteIdenticalAcrossParallelism(t *testing.T) {
	run := func(par int) string {
		cfg := smallFigF(5)
		cfg.Reps = 2
		cfg.Parallelism = par
		fig, err := FigF(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(fig)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := run(1)
	for _, par := range widths[1:] {
		if got := run(par); got != want {
			t.Fatalf("FigF diverges at parallelism %d", par)
		}
	}
}

// TestRunAllParallelMatchesSerial: dispatching the three algorithms on a
// pool must not change any placement or cost — only Seconds may differ.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	wcfg := workload.Default(13)
	wcfg.NumProviders = 25
	m, err := workload.GenerateGTITM(60, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunAll(m, 0.5, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range widths {
		got, err := RunAllParallel(m, 0.5, 13, par)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(serial) {
			t.Fatalf("parallelism %d: %d outcomes, want %d", par, len(got), len(serial))
		}
		for name, want := range serial {
			o, ok := got[name]
			if !ok {
				t.Fatalf("parallelism %d: missing algorithm %q", par, name)
			}
			if o.Social != want.Social || o.Coordinated != want.Coordinated || o.Selfish != want.Selfish {
				t.Fatalf("parallelism %d: %s costs (%v,%v,%v) != serial (%v,%v,%v)",
					par, name, o.Social, o.Coordinated, o.Selfish,
					want.Social, want.Coordinated, want.Selfish)
			}
			if len(o.Placement) != len(want.Placement) {
				t.Fatalf("parallelism %d: %s placement length mismatch", par, name)
			}
			for l := range want.Placement {
				if o.Placement[l] != want.Placement[l] {
					t.Fatalf("parallelism %d: %s placement diverges at provider %d", par, name, l)
				}
			}
		}
	}
}

// TestAblationPanelCByteIdenticalAcrossParallelism exercises the PoS/PoA
// panel, the sweep that stacks the pool on top of per-point Nash searches.
func TestAblationPanelCByteIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	run := func(par int) string {
		cfg := DefaultAblation(4)
		cfg.Size = 50
		cfg.NumProviders = 10
		cfg.XiValues = []float64{0, 1}
		cfg.Reps = 1
		cfg.PoAProviders = 4
		cfg.Restarts = 6
		cfg.Parallelism = par
		fig, err := Ablation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(t, fig)
	}
	want := run(1)
	for _, par := range widths[1:] {
		if got := run(par); got != want {
			t.Fatalf("ablation diverges at parallelism %d", par)
		}
	}
}
