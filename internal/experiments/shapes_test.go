package experiments

import (
	"testing"
)

// TestPaperShapes is the figure-level regression guard: at reduced scale,
// the qualitative claims of the paper's evaluation section must hold. If a
// model or algorithm change breaks one of these shapes, this test names
// the figure it broke.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-figure integration sweep")
	}

	lcfOf := func(tb Table) []float64 {
		for _, s := range tb.Series {
			if s.Name == AlgoLCF {
				return s.Y
			}
		}
		t.Fatalf("%s: no LCF series", tb.Title)
		return nil
	}
	seriesOf := func(tb Table, name string) []float64 {
		for _, s := range tb.Series {
			if s.Name == name {
				return s.Y
			}
		}
		t.Fatalf("%s: no %s series", tb.Title, name)
		return nil
	}

	t.Run("Fig2_LCF_wins_everywhere", func(t *testing.T) {
		cfg := DefaultFig2(17)
		cfg.Sizes = []int{50, 150, 250}
		cfg.Reps = 2
		fig, err := Fig2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		social := fig.Tables[0]
		lcf := lcfOf(social)
		jo := seriesOf(social, AlgoJoOffloadCache)
		off := seriesOf(social, AlgoOffloadCache)
		for i := range lcf {
			if lcf[i] > jo[i] || lcf[i] > off[i] {
				t.Fatalf("size %v: LCF %v not the minimum (jo %v, off %v)",
					social.X[i], lcf[i], jo[i], off[i])
			}
		}
		// Fig 2(d): every algorithm's running time grows with network size
		// (endpoints comparison, noise-tolerant).
		times := fig.Tables[3]
		for _, s := range times.Series {
			if s.Y[len(s.Y)-1] <= s.Y[0]*0.8 {
				t.Fatalf("%s running time shrank with network size: %v", s.Name, s.Y)
			}
		}
	})

	t.Run("Fig3_cost_monotone_in_selfishness", func(t *testing.T) {
		cfg := DefaultFig3(19)
		cfg.Size = 150
		cfg.NumProviders = 60
		cfg.SelfishFractions = []float64{0, 0.5, 1}
		cfg.Reps = 2
		fig, err := Fig3(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lcf := lcfOf(fig.Tables[0])
		if lcf[0] > lcf[2]*1.02 {
			t.Fatalf("Fig 3(a): all-coordinated %v worse than all-selfish %v", lcf[0], lcf[2])
		}
		selfishCost := lcfOf(fig.Tables[1])
		coordCost := lcfOf(fig.Tables[2])
		for i := 1; i < len(selfishCost); i++ {
			if selfishCost[i] < selfishCost[i-1]-1e-9 {
				t.Fatalf("Fig 3(b): selfish-group cost not increasing: %v", selfishCost)
			}
			if coordCost[i] > coordCost[i-1]+1e-9 {
				t.Fatalf("Fig 3(c): coordinated-group cost not decreasing: %v", coordCost)
			}
		}
	})

	t.Run("Fig6b_cost_grows_with_requests", func(t *testing.T) {
		cfg := DefaultFig6(23)
		cfg.SelfishFractions = nil
		cfg.NetworkSizes = nil
		cfg.UpdateRatios = nil
		cfg.RequestCounts = []int{30, 60, 90}
		cfg.Reps = 2
		fig, err := Fig6(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lcf := lcfOf(fig.Tables[0])
		for i := 1; i < len(lcf); i++ {
			if lcf[i] <= lcf[i-1] {
				t.Fatalf("Fig 6(b): cost not increasing with requests: %v", lcf)
			}
		}
	})

	t.Run("Fig6d_cost_grows_with_update_volume", func(t *testing.T) {
		cfg := DefaultFig6(29)
		cfg.SelfishFractions = nil
		cfg.NetworkSizes = nil
		cfg.RequestCounts = nil
		cfg.UpdateRatios = []float64{0.05, 0.2, 0.4}
		cfg.BaseProviders = 40
		cfg.Reps = 2
		fig, err := Fig6(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lcf := lcfOf(fig.Tables[0])
		for i := 1; i < len(lcf); i++ {
			if lcf[i] <= lcf[i-1] {
				t.Fatalf("Fig 6(d): cost not increasing with update volume: %v", lcf)
			}
		}
	})

	t.Run("Fig7a_cost_nondecreasing_in_amax", func(t *testing.T) {
		cfg := DefaultFig7(31)
		cfg.BMaxValues = nil
		cfg.AMaxValues = []float64{2, 5, 8}
		cfg.Providers = 40
		cfg.Reps = 2
		fig, err := Fig7(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lcf := lcfOf(fig.Tables[0])
		for i := 1; i < len(lcf); i++ {
			if lcf[i] < lcf[i-1]-1e-9 {
				t.Fatalf("Fig 7(a): LCF cost decreased with a_max: %v", lcf)
			}
		}
	})
}
