package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mecache/internal/workload"
)

func TestRunAllProducesAllAlgorithms(t *testing.T) {
	cfg := workload.Default(1)
	cfg.NumProviders = 40
	m, err := workload.GenerateGTITM(80, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunAll(m, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache} {
		o, ok := out[name]
		if !ok {
			t.Fatalf("missing algorithm %s", name)
		}
		if o.Social <= 0 {
			t.Fatalf("%s social cost %v", name, o.Social)
		}
		if o.Seconds < 0 {
			t.Fatalf("%s negative runtime", name)
		}
		if diff := o.Coordinated + o.Selfish - o.Social; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%s cost split %v + %v != %v", name, o.Coordinated, o.Selfish, o.Social)
		}
	}
}

// TestLCFWinsFig2Comparison checks the paper's headline: LCF delivers the
// minimum social cost among the three algorithms (Fig 2a's ordering).
func TestLCFWinsFig2Comparison(t *testing.T) {
	wins := 0
	const trials = 5
	for rep := 0; rep < trials; rep++ {
		cfg := workload.Default(uint64(rep) + 100)
		cfg.NumProviders = 60
		m, err := workload.GenerateGTITM(150, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunAll(m, 0.7, uint64(rep))
		if err != nil {
			t.Fatal(err)
		}
		if out[AlgoLCF].Social <= out[AlgoJoOffloadCache].Social &&
			out[AlgoLCF].Social <= out[AlgoOffloadCache].Social {
			wins++
		}
	}
	if wins < trials-1 { // allow one noisy instance
		t.Fatalf("LCF won only %d/%d instances", wins, trials)
	}
}

func TestFig2SmallSweep(t *testing.T) {
	cfg := DefaultFig2(1)
	cfg.Sizes = []int{50, 100}
	cfg.NumProviders = 30
	cfg.Reps = 1
	fig, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables) != 4 {
		t.Fatalf("Fig2 has %d panels, want 4", len(fig.Tables))
	}
	for _, tb := range fig.Tables {
		if len(tb.X) != 2 {
			t.Fatalf("%s has %d x points", tb.Title, len(tb.X))
		}
		for _, s := range tb.Series {
			if len(s.Y) != 2 {
				t.Fatalf("%s series %s has %d points", tb.Title, s.Name, len(s.Y))
			}
		}
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 2(a)") || !strings.Contains(buf.String(), AlgoLCF) {
		t.Fatalf("render missing expected content:\n%s", buf.String())
	}
}

func TestFig3TrendCoordinationHelps(t *testing.T) {
	cfg := DefaultFig3(2)
	cfg.SelfishFractions = []float64{0, 1}
	cfg.NumProviders = 60
	cfg.Size = 100
	cfg.Reps = 2
	fig, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Panel (a), LCF series: social cost with everyone coordinated must not
	// exceed the all-selfish cost.
	var lcf Series
	for _, s := range fig.Tables[0].Series {
		if s.Name == AlgoLCF {
			lcf = s
		}
	}
	if len(lcf.Y) != 2 {
		t.Fatalf("LCF series %v", lcf)
	}
	if lcf.Y[0] > lcf.Y[1]*1.02 {
		t.Fatalf("all-coordinated cost %v exceeds all-selfish %v", lcf.Y[0], lcf.Y[1])
	}
}

func TestFig5SmallSweep(t *testing.T) {
	cfg := DefaultFig5(3)
	cfg.Providers = []int{20}
	fig, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables) < 2 {
		t.Fatalf("Fig5 has %d panels", len(fig.Tables))
	}
	for _, s := range fig.Tables[0].Series {
		if len(s.Y) != 1 || s.Y[0] <= 0 {
			t.Fatalf("series %s: %v", s.Name, s.Y)
		}
	}
}

func TestFig6PanelShapes(t *testing.T) {
	cfg := DefaultFig6(4)
	cfg.SelfishFractions = []float64{0, 1}
	cfg.RequestCounts = []int{20}
	cfg.NetworkSizes = []int{50}
	cfg.UpdateRatios = []float64{0.1}
	cfg.BaseProviders = 20
	fig, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables) != 4 {
		t.Fatalf("Fig6 has %d panels, want 4", len(fig.Tables))
	}
}

func TestFig7Runs(t *testing.T) {
	cfg := DefaultFig7(5)
	cfg.AMaxValues = []float64{2}
	cfg.BMaxValues = []float64{60}
	cfg.Providers = 20
	fig, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables) != 2 {
		t.Fatalf("Fig7 has %d panels, want 2", len(fig.Tables))
	}
}

func TestPoAStudySmall(t *testing.T) {
	cfg := DefaultPoA(6)
	cfg.XiValues = []float64{0, 1}
	cfg.NumProviders = 4
	cfg.Restarts = 5
	cfg.Reps = 1
	fig, err := PoAStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := fig.Tables[0]
	for _, s := range tb.Series {
		for i, y := range s.Y {
			if y < 1-1e-9 && s.Name == "empirical PoA" {
				t.Fatalf("empirical PoA %v < 1 at x=%v", y, tb.X[i])
			}
			if y <= 0 {
				t.Fatalf("%s non-positive at %d", s.Name, i)
			}
		}
	}
	// The empirical PoA must respect the theoretical bound.
	var emp, bound Series
	for _, s := range tb.Series {
		switch s.Name {
		case "empirical PoA":
			emp = s
		case "Theorem-1 bound":
			bound = s
		}
	}
	for i := range emp.Y {
		if emp.Y[i] > bound.Y[i]+1e-9 {
			t.Fatalf("empirical PoA %v exceeds bound %v at xi=%v", emp.Y[i], bound.Y[i], tb.X[i])
		}
	}
}

func TestTableRenderHandlesRaggedSeries(t *testing.T) {
	tb := Table{
		Title: "t", XLabel: "x", X: []float64{1, 2}, YLabel: "y",
		Series: []Series{{Name: "a", Y: []float64{1}}},
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-") {
		t.Fatal("missing placeholder for absent point")
	}
}

func TestWriteCSV(t *testing.T) {
	tb := Table{
		Title: "panel", XLabel: "x", X: []float64{1, 2.5}, YLabel: "y",
		Series: []Series{
			{Name: "a", Y: []float64{10, 20}},
			{Name: "b", Y: []float64{30}},
		},
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines: %v", lines)
	}
	if lines[0] != "x,a,b" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "2.5,") || !strings.HasSuffix(lines[2], ",") {
		t.Fatalf("ragged row not padded: %q", lines[2])
	}
	fig := Figure{Name: "f", Tables: []Table{tb}}
	var fb bytes.Buffer
	if err := fig.WriteCSV(&fb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(fb.String(), "# panel\n") {
		t.Fatalf("figure CSV missing comment:\n%s", fb.String())
	}
}

func TestErrorBarsPopulatedWithReps(t *testing.T) {
	cfg := DefaultFig2(8)
	cfg.Sizes = []int{50}
	cfg.NumProviders = 15
	cfg.Reps = 3
	fig, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Tables[0].Series {
		if len(s.Err) != 1 {
			t.Fatalf("series %s has %d error entries, want 1", s.Name, len(s.Err))
		}
		if s.Err[0] < 0 {
			t.Fatalf("negative CI %v", s.Err[0])
		}
	}
	// Rendered table must show the ± notation when CI > 0.
	var buf bytes.Buffer
	if err := fig.Tables[0].Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "±") {
		t.Fatalf("render lacks error bars:\n%s", buf.String())
	}
	// CSV must gain the _ci95 columns.
	var cb bytes.Buffer
	if err := fig.Tables[0].WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cb.String(), "LCF_ci95") {
		t.Fatalf("CSV lacks ci columns:\n%s", cb.String())
	}
}

func TestAblationSmall(t *testing.T) {
	cfg := DefaultAblation(3)
	cfg.XiValues = []float64{0.5}
	cfg.NumProviders = 20
	cfg.Size = 60
	cfg.Reps = 1
	cfg.PoAProviders = 4
	cfg.Restarts = 5
	fig, err := Ablation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables) != 3 {
		t.Fatalf("ablation has %d panels, want 3", len(fig.Tables))
	}
	// Panel (c): PoS <= PoA and both >= 1.
	var pos, poa Series
	for _, s := range fig.Tables[2].Series {
		switch s.Name {
		case "PoS":
			pos = s
		case "PoA":
			poa = s
		}
	}
	for i := range pos.Y {
		if pos.Y[i] < 1-1e-9 || pos.Y[i] > poa.Y[i]+1e-9 {
			t.Fatalf("PoS %v outside [1, PoA=%v]", pos.Y[i], poa.Y[i])
		}
	}
}
