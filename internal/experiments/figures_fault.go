package experiments

import (
	"fmt"

	"mecache/internal/dynamic"
	"mecache/internal/fault"
	"mecache/internal/parallel"
	"mecache/internal/stats"
)

// FigFConfig parameterizes the resilience sweep ("Fig F"): the dynamic
// market is rerun under increasing cloudlet failure rates, once per failover
// policy, and the availability / recovery / cost trade-off is tabulated.
// The paper's market assumes cloudlets never die; this figure quantifies
// what each recovery discipline costs when they do.
type FigFConfig struct {
	Seed uint64
	// FailureRates are the swept per-cloudlet failure rates (1/MTBF, in
	// events per unit of virtual time).
	FailureRates []float64
	// MTTR is the mean cloudlet repair time used at every point.
	MTTR float64
	// Policies are the failover policies compared (one series each).
	Policies []fault.Policy
	// Dynamic is the base market configuration; its Fault field is
	// overwritten at every sweep point.
	Dynamic dynamic.Config
	// Reps averages this many independent runs (distinct seeds) per point.
	Reps int
	// Parallelism bounds the sweep's worker pool, one task per
	// (rate, policy, rep) triple. Values below 1 mean one worker per CPU;
	// 1 runs serially. Every width yields identical tables: each dynamic
	// run is seeded purely by its grid position.
	Parallelism int
}

// DefaultFigF returns a sweep over failure rates spanning "rare" (one
// outage per two horizons) to "constant churn" (MTBF well under the mean
// service lifetime), comparing all three failover policies.
func DefaultFigF(seed uint64) FigFConfig {
	dcfg := dynamic.DefaultConfig(seed)
	dcfg.Horizon = 100
	dcfg.Fault = fault.DefaultConfig()
	return FigFConfig{
		Seed:         seed,
		FailureRates: []float64{0.005, 0.01, 0.02, 0.04},
		MTTR:         5,
		Policies:     fault.Policies(),
		Dynamic:      dcfg,
		Reps:         2,
	}
}

// FigF runs the resilience sweep: for each failure rate and policy it runs
// the full dynamic market with fault injection and reports (a) availability,
// (b) mean time-to-recover, (c) SLA-violation fraction, and (d) the
// time-averaged social cost under failures.
func FigF(cfg FigFConfig) (*Figure, error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	if len(cfg.FailureRates) == 0 {
		return nil, fmt.Errorf("experiments: figF: no failure rates to sweep")
	}
	if len(cfg.Policies) == 0 {
		return nil, fmt.Errorf("experiments: figF: no failover policies to compare")
	}
	names := make([]string, len(cfg.Policies))
	for i, p := range cfg.Policies {
		names[i] = p.String()
	}
	avail := newSeriesMap(names...)
	mttr := newSeriesMap(names...)
	viol := newSeriesMap(names...)
	cost := newSeriesMap(names...)

	for _, rate := range cfg.FailureRates {
		if rate <= 0 {
			return nil, fmt.Errorf("experiments: figF: failure rate must be positive, got %v", rate)
		}
	}

	// Task grid: (rate, policy, rep), flattened row-major; each task runs
	// one full dynamic market with fault injection.
	mets, err := parallel.Map(cfg.Parallelism, len(cfg.FailureRates)*len(cfg.Policies)*cfg.Reps,
		func(t int) (*dynamic.Metrics, error) {
			rate := cfg.FailureRates[t/(len(cfg.Policies)*cfg.Reps)]
			pol := cfg.Policies[t/cfg.Reps%len(cfg.Policies)]
			rep := t % cfg.Reps
			dcfg := cfg.Dynamic
			dcfg.Seed = cfg.Seed + uint64(rep)*15485863
			dcfg.Workload.Seed = dcfg.Seed
			dcfg.Fault.CloudletMTBF = 1 / rate
			dcfg.Fault.CloudletMTTR = cfg.MTTR
			dcfg.Fault.Policy = pol
			sim, err := dynamic.New(nil, dcfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: figF rate %v policy %s: %w", rate, pol, err)
			}
			met, err := sim.Run()
			if err != nil {
				return nil, fmt.Errorf("experiments: figF rate %v policy %s: %w", rate, pol, err)
			}
			return met, nil
		})
	if err != nil {
		return nil, err
	}

	var xs []float64
	for ri, rate := range cfg.FailureRates {
		xs = append(xs, rate)
		for pi := range cfg.Policies {
			var as, ms, vs, cs []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				met := mets[(ri*len(cfg.Policies)+pi)*cfg.Reps+rep]
				as = append(as, met.Availability)
				ms = append(ms, met.MeanTimeToRecover)
				vs = append(vs, met.SLAViolationFraction)
				cs = append(cs, met.TimeAvgSocialCost)
			}
			name := names[pi]
			a, m, v, c := stats.Summarize(as), stats.Summarize(ms), stats.Summarize(vs), stats.Summarize(cs)
			avail.add(name, a.Mean)
			avail.addErr(name, a.CI95())
			mttr.add(name, m.Mean)
			mttr.addErr(name, m.CI95())
			viol.add(name, v.Mean)
			viol.addErr(name, v.CI95())
			cost.add(name, c.Mean)
			cost.addErr(name, c.CI95())
		}
	}
	return &Figure{
		Name: "Fig F: resilience under cloudlet failures, by failover policy",
		Tables: []Table{
			{Title: "Fig F(a) availability", XLabel: "failure rate", X: xs, YLabel: "availability", Series: avail.series()},
			{Title: "Fig F(b) mean time-to-recover", XLabel: "failure rate", X: xs, YLabel: "time to recover", Series: mttr.series()},
			{Title: "Fig F(c) SLA-violation fraction", XLabel: "failure rate", X: xs, YLabel: "violation fraction", Series: viol.series()},
			{Title: "Fig F(d) social cost under failures", XLabel: "failure rate", X: xs, YLabel: "social cost ($)", Series: cost.series()},
		},
	}, nil
}
