package experiments

import (
	"fmt"

	"mecache/internal/core"
	"mecache/internal/game"
	"mecache/internal/mec"
	"mecache/internal/parallel"
	"mecache/internal/workload"
)

// PoAConfig parameterizes the Price-of-Anarchy study backing Theorem 1:
// small markets where the social optimum is computable exactly, sweeping
// the coordinated fraction ξ.
type PoAConfig struct {
	Seed         uint64
	Size         int
	NumProviders int // kept small: the optimum is enumerated exactly
	XiValues     []float64
	Restarts     int // random initializations when hunting the worst NE
	Reps         int
	// Parallelism bounds the sweep's worker pool, one task per (ξ, rep)
	// pair. Values below 1 mean one worker per CPU; 1 runs serially. Every
	// width yields identical tables (substream seeding per task).
	Parallelism int
}

// DefaultPoA returns a tractable PoA sweep.
func DefaultPoA(seed uint64) PoAConfig {
	return PoAConfig{
		Seed:         seed,
		Size:         50,
		NumProviders: 6,
		XiValues:     []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
		Restarts:     25,
		Reps:         3,
	}
}

// PoAStudy measures the empirical Price of Anarchy of the
// approximation-restricted Stackelberg game against the exact social
// optimum and tabulates it next to the Theorem-1 bound
// (2δκ/(1-v))·(1/(4v)+1-ξ).
func PoAStudy(cfg PoAConfig) (*Figure, error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	type point struct{ poa, bound float64 }
	pts, err := parallel.Map(cfg.Parallelism, len(cfg.XiValues)*cfg.Reps,
		func(t int) (point, error) {
			xi, rep := cfg.XiValues[t/cfg.Reps], t%cfg.Reps
			wcfg := workload.Default(cfg.Seed + uint64(rep)*31 + uint64(100*xi))
			wcfg.NumProviders = cfg.NumProviders
			m, err := workload.GenerateGTITM(cfg.Size, wcfg)
			if err != nil {
				return point{}, err
			}
			_, opt, err := game.ExactOptimum(m, 1<<24)
			if err != nil {
				return point{}, fmt.Errorf("experiments: poa optimum: %w", err)
			}
			// Build the Stackelberg game: pin LCF's coordinated providers.
			lcf, err := core.LCF(m, core.LCFOptions{Xi: xi, Seed: wcfg.Seed})
			if err != nil {
				return point{}, err
			}
			g := game.New(m)
			// The sweep points already saturate the pool; the inner restart
			// search stays serial (identical results either way).
			g.Parallelism = 1
			base := make(mec.Placement, len(m.Providers))
			for l := range base {
				base[l] = mec.Remote
			}
			for _, l := range lcf.Coordinated {
				g.Pinned[l] = true
				base[l] = lcf.Appro.Placement[l]
			}
			poa, err := g.EmpiricalPoA(base, opt, cfg.Restarts, 0, wcfg.Seed)
			if err != nil {
				return point{}, err
			}
			delta, kappa := m.DeltaKappa()
			return point{poa: poa, bound: game.PoABound(delta, kappa, xi)}, nil
		})
	if err != nil {
		return nil, err
	}

	empirical := newSeriesMap("empirical PoA", "Theorem-1 bound")
	var xs []float64
	for xiIdx, xi := range cfg.XiValues {
		var sumPoA, sumBound float64
		for rep := 0; rep < cfg.Reps; rep++ {
			p := pts[xiIdx*cfg.Reps+rep]
			sumPoA += p.poa
			sumBound += p.bound
		}
		xs = append(xs, xi)
		empirical.add("empirical PoA", sumPoA/float64(cfg.Reps))
		empirical.add("Theorem-1 bound", sumBound/float64(cfg.Reps))
	}
	return &Figure{
		Name: "PoA study: empirical Price of Anarchy vs the Theorem-1 bound",
		Tables: []Table{{
			Title: "PoA vs coordinated fraction", XLabel: "xi", X: xs,
			YLabel: "PoA", Series: empirical.series(),
		}},
	}, nil
}
