package experiments

import (
	"fmt"
	"time"

	"mecache/internal/baselines"
	"mecache/internal/core"
	"mecache/internal/mec"
	"mecache/internal/stats"
	"mecache/internal/testbed"
)

// testbedOutcome extends AlgoOutcome with flow-level measurements.
type testbedOutcome struct {
	AlgoOutcome
	MeanLatencyMs float64
}

// runAllTestbed deploys and measures the three algorithms on an assembled
// test-bed. Social cost is the value measured from the deployment
// artifacts (which the testbed tests prove equals the analytic cost);
// Seconds includes algorithm time plus deployment (flow-rule installation).
func runAllTestbed(tb *testbed.Testbed, xi float64, seed uint64) (map[string]testbedOutcome, error) {
	m := tb.Market
	out := make(map[string]testbedOutcome, 3)

	type algoRun struct {
		name string
		run  func() (mec.Placement, error)
	}
	runs := []algoRun{
		{AlgoLCF, func() (mec.Placement, error) {
			r, err := core.LCF(m, core.LCFOptions{Xi: xi, Seed: seed, Appro: core.ApproOptions{Solver: core.SolverTransport}})
			if err != nil {
				return nil, err
			}
			return r.Placement, nil
		}},
		{AlgoJoOffloadCache, func() (mec.Placement, error) {
			r, err := baselines.JoOffloadCache(m, seed)
			if err != nil {
				return nil, err
			}
			return r.Placement, nil
		}},
		{AlgoOffloadCache, func() (mec.Placement, error) {
			r, err := baselines.OffloadCache(m)
			if err != nil {
				return nil, err
			}
			return r.Placement, nil
		}},
	}
	for _, ar := range runs {
		// Untimed warm-up run: the first invocation pays one-off costs
		// (hop-cache fills, allocator warm-up) that would otherwise distort
		// the running-time panels.
		if _, err := ar.run(); err != nil {
			return nil, fmt.Errorf("experiments: testbed %s: %w", ar.name, err)
		}
		start := time.Now()
		pl, err := ar.run()
		if err != nil {
			return nil, fmt.Errorf("experiments: testbed %s: %w", ar.name, err)
		}
		dep, err := tb.Deploy(pl)
		if err != nil {
			return nil, fmt.Errorf("experiments: deploy %s: %w", ar.name, err)
		}
		seconds := time.Since(start).Seconds()
		meas, err := tb.Measure(dep, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: measure %s: %w", ar.name, err)
		}
		out[ar.name] = testbedOutcome{
			AlgoOutcome: AlgoOutcome{
				Placement: pl,
				Social:    meas.MeasuredSocialCost,
				Seconds:   seconds,
			},
			MeanLatencyMs: meas.MeanLatencyMs,
		}
	}
	return out, nil
}

// testbedAverage builds reps independent test-beds via build(rep), runs the
// three algorithms on each, and reduces the numeric outcomes to means and
// 95% confidence half-widths — the instance-noise smoothing every test-bed
// panel needs.
func testbedAverage(reps int, xi float64, build func(rep int) testbed.Config) (mean, ci map[string]testbedOutcome, err error) {
	if reps < 1 {
		reps = 1
	}
	type sample struct{ social, seconds, latency []float64 }
	acc := make(map[string]*sample, 3)
	for rep := 0; rep < reps; rep++ {
		tcfg := build(rep)
		tb, err := testbed.New(tcfg)
		if err != nil {
			return nil, nil, err
		}
		out, err := runAllTestbed(tb, xi, tcfg.Workload.Seed)
		if err != nil {
			return nil, nil, err
		}
		for name, o := range out {
			sm, ok := acc[name]
			if !ok {
				sm = &sample{}
				acc[name] = sm
			}
			sm.social = append(sm.social, o.Social)
			sm.seconds = append(sm.seconds, o.Seconds)
			sm.latency = append(sm.latency, o.MeanLatencyMs)
		}
	}
	mean = make(map[string]testbedOutcome, len(acc))
	ci = make(map[string]testbedOutcome, len(acc))
	for name, sm := range acc {
		social := stats.Summarize(sm.social)
		secs := stats.Summarize(sm.seconds)
		lat := stats.Summarize(sm.latency)
		mean[name] = testbedOutcome{
			AlgoOutcome:   AlgoOutcome{Social: social.Mean, Seconds: secs.Mean},
			MeanLatencyMs: lat.Mean,
		}
		ci[name] = testbedOutcome{
			AlgoOutcome:   AlgoOutcome{Social: social.CI95(), Seconds: secs.CI95()},
			MeanLatencyMs: lat.CI95(),
		}
	}
	return mean, ci, nil
}

// Fig5Config parameterizes Figure 5: the AS1755 test-bed with (1-ξ)=0.3,
// sweeping the number of providers for the bar groups.
type Fig5Config struct {
	Seed            uint64
	Providers       []int
	SelfishFraction float64
	Reps            int
}

// DefaultFig5 returns the paper's Figure-5 setting.
func DefaultFig5(seed uint64) Fig5Config {
	return Fig5Config{
		Seed:            seed,
		Providers:       []int{40, 60, 80, 100},
		SelfishFraction: 0.3,
		Reps:            3,
	}
}

// Fig5 reproduces Figure 5: performance in the test-bed with both physical
// underlay and virtual overlay — (a) social cost, (b) running times.
func Fig5(cfg Fig5Config) (*Figure, error) {
	social := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
	runtime := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
	latency := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
	var xs []float64
	for _, n := range cfg.Providers {
		n := n
		out, ci, err := testbedAverage(cfg.Reps, 1-cfg.SelfishFraction, func(rep int) testbed.Config {
			tcfg := testbed.DefaultConfig(cfg.Seed + uint64(n) + uint64(rep)*7919)
			tcfg.Workload.NumProviders = n
			return tcfg
		})
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(n))
		for name, o := range out {
			social.add(name, o.Social)
			social.addErr(name, ci[name].Social)
			runtime.add(name, o.Seconds*1000)
			runtime.addErr(name, ci[name].Seconds*1000)
			latency.add(name, o.MeanLatencyMs)
			latency.addErr(name, ci[name].MeanLatencyMs)
		}
	}
	return &Figure{
		Name: "Fig 5: test-bed (AS1755 overlay on 5-switch underlay), 1-xi=0.3",
		Tables: []Table{
			{Title: "Fig 5(a) social cost", XLabel: "providers", X: xs, YLabel: "measured social cost ($)", Series: social.series()},
			{Title: "Fig 5(b) running times", XLabel: "providers", X: xs, YLabel: "running time (ms)", Series: runtime.series()},
			{Title: "Fig 5(+) mean request latency", XLabel: "providers", X: xs, YLabel: "latency (ms)", Series: latency.series()},
		},
	}, nil
}

// Fig6Config parameterizes Figure 6: the test-bed parameter studies.
type Fig6Config struct {
	Seed             uint64
	SelfishFractions []float64 // panel (a)
	RequestCounts    []int     // panel (b): number of service caching requests
	NetworkSizes     []int     // panel (c): overlay sizes (U-shape)
	UpdateRatios     []float64 // panel (d): update data volume share
	BaseProviders    int
	SelfishFraction  float64 // fixed 1-ξ for panels (b)-(d)
	Reps             int
}

// DefaultFig6 returns the paper's Figure-6 sweeps.
func DefaultFig6(seed uint64) Fig6Config {
	return Fig6Config{
		Seed:             seed,
		SelfishFractions: []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
		RequestCounts:    []int{40, 60, 80, 100, 120, 140},
		NetworkSizes:     []int{50, 100, 150, 200, 250, 300, 350, 400},
		UpdateRatios:     []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.4},
		BaseProviders:    80,
		SelfishFraction:  0.3,
		Reps:             3,
	}
}

// Fig6 reproduces Figure 6: the impact of (a) 1-ξ, (b) the number of
// service caching requests, (c) the network size (falling then rising
// total cost), and (d) the amount of update data, in the test-bed.
func Fig6(cfg Fig6Config) (*Figure, error) {
	fig := &Figure{Name: "Fig 6: test-bed parameter studies"}

	// Panel (a): impact of 1-xi.
	{
		sm := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
		var xs []float64
		for _, frac := range cfg.SelfishFractions {
			frac := frac
			out, ci, err := testbedAverage(cfg.Reps, 1-frac, func(rep int) testbed.Config {
				tcfg := testbed.DefaultConfig(cfg.Seed + uint64(rep)*7919)
				tcfg.Workload.NumProviders = cfg.BaseProviders
				return tcfg
			})
			if err != nil {
				return nil, err
			}
			xs = append(xs, frac)
			for name, o := range out {
				sm.add(name, o.Social)
				sm.addErr(name, ci[name].Social)
			}
		}
		fig.Tables = append(fig.Tables, Table{
			Title: "Fig 6(a) impact of 1-xi", XLabel: "1-xi", X: xs,
			YLabel: "measured social cost ($)", Series: sm.series(),
		})
	}

	// Panel (b): impact of the number of service caching requests.
	{
		sm := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
		var xs []float64
		for _, n := range cfg.RequestCounts {
			n := n
			out, ci, err := testbedAverage(cfg.Reps, 1-cfg.SelfishFraction, func(rep int) testbed.Config {
				tcfg := testbed.DefaultConfig(cfg.Seed + uint64(rep)*7919)
				tcfg.Workload.NumProviders = n
				return tcfg
			})
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(n))
			for name, o := range out {
				sm.add(name, o.Social)
				sm.addErr(name, ci[name].Social)
			}
		}
		fig.Tables = append(fig.Tables, Table{
			Title: "Fig 6(b) impact of the number of caching requests", XLabel: "requests", X: xs,
			YLabel: "measured social cost ($)", Series: sm.series(),
		})
	}

	// Panel (c): impact of the network size (GT-ITM overlays on the
	// underlay; the paper reports cost falling from 50 to 200 and rising
	// afterwards).
	{
		sm := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
		var xs []float64
		for _, size := range cfg.NetworkSizes {
			size := size
			out, ci, err := testbedAverage(cfg.Reps, 1-cfg.SelfishFraction, func(rep int) testbed.Config {
				tcfg := testbed.DefaultConfig(cfg.Seed + uint64(rep)*7919)
				tcfg.OverlaySize = size
				tcfg.Workload.NumProviders = cfg.BaseProviders
				return tcfg
			})
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(size))
			for name, o := range out {
				sm.add(name, o.Social)
				sm.addErr(name, ci[name].Social)
			}
		}
		fig.Tables = append(fig.Tables, Table{
			Title: "Fig 6(c) impact of the network size", XLabel: "network size", X: xs,
			YLabel: "measured social cost ($)", Series: sm.series(),
		})
	}

	// Panel (d): impact of the amount of update data.
	{
		sm := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
		var xs []float64
		for _, ratio := range cfg.UpdateRatios {
			ratio := ratio
			out, ci, err := testbedAverage(cfg.Reps, 1-cfg.SelfishFraction, func(rep int) testbed.Config {
				tcfg := testbed.DefaultConfig(cfg.Seed + uint64(rep)*7919)
				tcfg.Workload.NumProviders = cfg.BaseProviders
				tcfg.Workload.UpdateRatio = ratio
				return tcfg
			})
			if err != nil {
				return nil, err
			}
			xs = append(xs, ratio)
			for name, o := range out {
				sm.add(name, o.Social)
				sm.addErr(name, ci[name].Social)
			}
		}
		fig.Tables = append(fig.Tables, Table{
			Title: "Fig 6(d) impact of the amount of update data", XLabel: "update ratio", X: xs,
			YLabel: "measured social cost ($)", Series: sm.series(),
		})
	}
	return fig, nil
}

// Fig7Config parameterizes Figure 7: the impact of the maximum resource
// demands a_max and b_max.
type Fig7Config struct {
	Seed            uint64
	AMaxValues      []float64 // upper end of the per-service compute demand
	BMaxValues      []float64 // upper end of the per-service bandwidth demand
	Providers       int
	SelfishFraction float64
	Reps            int
}

// DefaultFig7 returns the paper's Figure-7 sweeps.
func DefaultFig7(seed uint64) Fig7Config {
	return Fig7Config{
		Seed:            seed,
		AMaxValues:      []float64{2, 3, 4, 5, 6, 8},
		BMaxValues:      []float64{40, 80, 120, 160, 200, 240},
		Providers:       80,
		SelfishFraction: 0.3,
		Reps:            3,
	}
}

// Fig7 reproduces Figure 7: the impact of the maximum demands of computing
// (a_max) and bandwidth (b_max) resources in the test-bed. Growing maximum
// demands shrink n_i (Eq. 7), reducing caching opportunities and raising
// the total cost.
func Fig7(cfg Fig7Config) (*Figure, error) {
	fig := &Figure{Name: "Fig 7: impact of maximum resource demands (test-bed)"}

	{
		sm := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
		var xs []float64
		for _, aMax := range cfg.AMaxValues {
			aMax := aMax
			out, ci, err := testbedAverage(cfg.Reps, 1-cfg.SelfishFraction, func(rep int) testbed.Config {
				tcfg := testbed.DefaultConfig(cfg.Seed + uint64(rep)*7919)
				tcfg.Workload.NumProviders = cfg.Providers
				tcfg.Workload.ComputeDemand.Hi = aMax
				return tcfg
			})
			if err != nil {
				return nil, err
			}
			xs = append(xs, aMax)
			for name, o := range out {
				sm.add(name, o.Social)
				sm.addErr(name, ci[name].Social)
			}
		}
		fig.Tables = append(fig.Tables, Table{
			Title: "Fig 7(a) impact of a_max", XLabel: "a_max (VM units)", X: xs,
			YLabel: "measured social cost ($)", Series: sm.series(),
		})
	}
	{
		sm := newSeriesMap(AlgoLCF, AlgoJoOffloadCache, AlgoOffloadCache)
		var xs []float64
		for _, bMax := range cfg.BMaxValues {
			bMax := bMax
			out, ci, err := testbedAverage(cfg.Reps, 1-cfg.SelfishFraction, func(rep int) testbed.Config {
				tcfg := testbed.DefaultConfig(cfg.Seed + uint64(rep)*7919)
				tcfg.Workload.NumProviders = cfg.Providers
				tcfg.Workload.BandwidthDemand.Hi = bMax
				return tcfg
			})
			if err != nil {
				return nil, err
			}
			xs = append(xs, bMax)
			for name, o := range out {
				sm.add(name, o.Social)
				sm.addErr(name, ci[name].Social)
			}
		}
		fig.Tables = append(fig.Tables, Table{
			Title: "Fig 7(b) impact of b_max", XLabel: "b_max (Mbps)", X: xs,
			YLabel: "measured social cost ($)", Series: sm.series(),
		})
	}
	return fig, nil
}
