// Package experiments contains one driver per figure of the paper's
// evaluation section. Each driver sweeps the parameter the paper sweeps,
// runs LCF against the JoOffloadCache and OffloadCache baselines, and
// returns the series the figure plots; Render prints them as aligned text
// tables (the textual equivalent of the paper's plots).
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Series is one plotted line: an algorithm name and its y value per x.
// Err, when non-empty, holds the 95% confidence half-width of each point
// (from the repetitions averaged into Y).
type Series struct {
	Name string
	Y    []float64
	Err  []float64
}

// Table is the textual form of one figure panel.
type Table struct {
	// Title identifies the panel, e.g. "Fig 2(a) social cost".
	Title string
	// XLabel names the swept parameter; X holds its values.
	XLabel string
	X      []float64
	// YLabel names the metric.
	YLabel string
	// Series holds one line per algorithm.
	Series []Series
}

// Render writes the table as aligned columns.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s  [%s vs %s]\n", t.Title, t.YLabel, t.XLabel); err != nil {
		return err
	}
	header := fmt.Sprintf("%-12s", t.XLabel)
	for _, s := range t.Series {
		header += fmt.Sprintf("%16s", s.Name)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for row := range t.X {
		line := fmt.Sprintf("%-12.4g", t.X[row])
		for _, s := range t.Series {
			switch {
			case row < len(s.Y) && row < len(s.Err) && s.Err[row] > 0:
				line += fmt.Sprintf("%16s", fmt.Sprintf("%.2f±%.2f", s.Y[row], s.Err[row]))
			case row < len(s.Y):
				line += fmt.Sprintf("%16.4f", s.Y[row])
			default:
				line += fmt.Sprintf("%16s", "-")
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV emits the panel as RFC-4180 CSV with a header row
// (xlabel, series...), one data row per x value. Plot-ready.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	withErr := false
	for _, s := range t.Series {
		if len(s.Err) > 0 {
			withErr = true
		}
	}
	header := []string{t.XLabel}
	for _, s := range t.Series {
		header = append(header, s.Name)
		if withErr {
			header = append(header, s.Name+"_ci95")
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for row := range t.X {
		rec := []string{strconv.FormatFloat(t.X[row], 'g', -1, 64)}
		for _, s := range t.Series {
			if row < len(s.Y) {
				rec = append(rec, strconv.FormatFloat(s.Y[row], 'f', 6, 64))
			} else {
				rec = append(rec, "")
			}
			if withErr {
				if row < len(s.Err) {
					rec = append(rec, strconv.FormatFloat(s.Err[row], 'f', 6, 64))
				} else {
					rec = append(rec, "")
				}
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Figure is a full figure: several panels sharing a sweep.
type Figure struct {
	Name   string
	Tables []Table
}

// Render writes every panel.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s ===\n\n", f.Name); err != nil {
		return err
	}
	for i := range f.Tables {
		if err := f.Tables[i].Render(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits every panel as CSV, each preceded by a comment line
// ("# <title>") and separated by blank lines.
func (f *Figure) WriteCSV(w io.Writer) error {
	for i := range f.Tables {
		if _, err := fmt.Fprintf(w, "# %s\n", f.Tables[i].Title); err != nil {
			return err
		}
		if err := f.Tables[i].WriteCSV(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// seriesMap collects per-algorithm Y vectors in a fixed algorithm order.
type seriesMap struct {
	order []string
	data  map[string][]float64
	errs  map[string][]float64
}

func newSeriesMap(names ...string) *seriesMap {
	sm := &seriesMap{order: names, data: make(map[string][]float64, len(names))}
	for _, n := range names {
		sm.data[n] = nil
	}
	return sm
}

func (sm *seriesMap) add(name string, y float64) {
	sm.data[name] = append(sm.data[name], y)
}

// addErr records the confidence half-width of the most recent point.
func (sm *seriesMap) addErr(name string, e float64) {
	if sm.errs == nil {
		sm.errs = make(map[string][]float64, len(sm.order))
	}
	sm.errs[name] = append(sm.errs[name], e)
}

func (sm *seriesMap) series() []Series {
	out := make([]Series, 0, len(sm.order))
	for _, n := range sm.order {
		out = append(out, Series{Name: n, Y: sm.data[n], Err: sm.errs[n]})
	}
	return out
}
