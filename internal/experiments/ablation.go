package experiments

import (
	"fmt"

	"mecache/internal/core"
	"mecache/internal/game"
	"mecache/internal/mec"
	"mecache/internal/parallel"
	"mecache/internal/stats"
	"mecache/internal/workload"
)

// AblationConfig parameterizes the design-choice studies DESIGN.md calls
// out: the coordination-selection rule, the congestion-aware vs literal
// Eq. 9 GAP pricing, and the Price of Stability next to the Price of
// Anarchy.
type AblationConfig struct {
	Seed         uint64
	Size         int
	NumProviders int
	XiValues     []float64
	Reps         int
	// PoAProviders sizes the exactly-solvable markets of the PoS/PoA panel.
	PoAProviders int
	Restarts     int
	// Parallelism bounds each panel's worker pool (one task per swept
	// point × repetition). Values below 1 mean one worker per CPU; 1 runs
	// serially. Every width yields identical tables.
	Parallelism int
}

// DefaultAblation returns the standard ablation sweep.
func DefaultAblation(seed uint64) AblationConfig {
	return AblationConfig{
		Seed:         seed,
		Size:         250,
		NumProviders: 100,
		XiValues:     []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
		Reps:         3,
		PoAProviders: 6,
		Restarts:     20,
	}
}

// Ablation produces three panels: (a) LCF's social cost under the four
// coordination-selection rules, (b) congestion-aware vs congestion-blind
// (literal Eq. 9) Appro pricing, and (c) empirical Price of Stability vs
// Price of Anarchy on exactly-solvable markets.
func Ablation(cfg AblationConfig) (*Figure, error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	fig := &Figure{Name: "Ablations: coordination rule, GAP pricing, PoS vs PoA"}

	// Panel (a): coordination strategies across the xi sweep.
	{
		strategies := []struct {
			name string
			s    core.Coordination
		}{
			{"LargestCostFirst", core.CoordLargestCostFirst},
			{"SmallestCostFirst", core.CoordSmallestCostFirst},
			{"LargestDemandFirst", core.CoordLargestDemandFirst},
			{"Random", core.CoordRandom},
		}
		names := make([]string, len(strategies))
		for i, st := range strategies {
			names[i] = st.name
		}
		// Task grid: (xi, strategy, rep), flattened row-major.
		costs, err := parallel.Map(cfg.Parallelism, len(cfg.XiValues)*len(strategies)*cfg.Reps,
			func(t int) (float64, error) {
				xi := cfg.XiValues[t/(len(strategies)*cfg.Reps)]
				st := strategies[t/cfg.Reps%len(strategies)]
				rep := t % cfg.Reps
				wcfg := workload.Default(cfg.Seed + uint64(rep)*7919)
				wcfg.NumProviders = cfg.NumProviders
				m, err := workload.GenerateGTITM(cfg.Size, wcfg)
				if err != nil {
					return 0, err
				}
				res, err := core.LCF(m, core.LCFOptions{
					Xi: xi, Seed: wcfg.Seed, Strategy: st.s,
					Appro: core.ApproOptions{Solver: core.SolverTransport},
				})
				if err != nil {
					return 0, fmt.Errorf("experiments: ablation %s: %w", st.name, err)
				}
				return res.SocialCost, nil
			})
		if err != nil {
			return nil, err
		}
		sm := newSeriesMap(names...)
		var xs []float64
		for xiIdx, xi := range cfg.XiValues {
			for stIdx, st := range strategies {
				at := (xiIdx*len(strategies) + stIdx) * cfg.Reps
				sum := stats.Summarize(costs[at : at+cfg.Reps])
				sm.add(st.name, sum.Mean)
				sm.addErr(st.name, sum.CI95())
			}
			xs = append(xs, xi)
		}
		fig.Tables = append(fig.Tables, Table{
			Title: "Ablation (a) coordination-selection rule", XLabel: "xi", X: xs,
			YLabel: "social cost ($)", Series: sm.series(),
		})
	}

	// Panel (b): congestion-aware vs congestion-blind Appro pricing.
	{
		counts := []int{40, 60, 80, 100, 120}
		blinds := []bool{false, true}
		// Task grid: (provider count, pricing mode, rep), flattened.
		costs, err := parallel.Map(cfg.Parallelism, len(counts)*len(blinds)*cfg.Reps,
			func(t int) (float64, error) {
				n := counts[t/(len(blinds)*cfg.Reps)]
				blind := blinds[t/cfg.Reps%len(blinds)]
				rep := t % cfg.Reps
				wcfg := workload.Default(cfg.Seed + uint64(rep)*104729)
				wcfg.NumProviders = n
				m, err := workload.GenerateGTITM(cfg.Size, wcfg)
				if err != nil {
					return 0, err
				}
				res, err := core.Appro(m, core.ApproOptions{
					Solver:          core.SolverTransport,
					CongestionBlind: blind,
				})
				if err != nil {
					return 0, err
				}
				return res.SocialCost, nil
			})
		if err != nil {
			return nil, err
		}
		sm := newSeriesMap("marginal pricing", "Eq. 9 flat pricing")
		var xs []float64
		for ni, n := range counts {
			for bi, blind := range blinds {
				name := "marginal pricing"
				if blind {
					name = "Eq. 9 flat pricing"
				}
				at := (ni*len(blinds) + bi) * cfg.Reps
				sum := stats.Summarize(costs[at : at+cfg.Reps])
				sm.add(name, sum.Mean)
				sm.addErr(name, sum.CI95())
			}
			xs = append(xs, float64(n))
		}
		fig.Tables = append(fig.Tables, Table{
			Title: "Ablation (b) Appro GAP pricing", XLabel: "providers", X: xs,
			YLabel: "Appro social cost ($)", Series: sm.series(),
		})
	}

	// Panel (c): Price of Stability vs Price of Anarchy.
	{
		type ratios struct{ pos, poa float64 }
		pts, err := parallel.Map(cfg.Parallelism, len(cfg.XiValues)*cfg.Reps,
			func(t int) (ratios, error) {
				xi, rep := cfg.XiValues[t/cfg.Reps], t%cfg.Reps
				wcfg := workload.Default(cfg.Seed + uint64(rep)*31 + uint64(100*xi))
				wcfg.NumProviders = cfg.PoAProviders
				m, err := workload.GenerateGTITM(50, wcfg)
				if err != nil {
					return ratios{}, err
				}
				_, opt, err := game.ExactOptimum(m, 1<<24)
				if err != nil {
					return ratios{}, err
				}
				lcf, err := core.LCF(m, core.LCFOptions{Xi: xi, Seed: wcfg.Seed})
				if err != nil {
					return ratios{}, err
				}
				g := game.New(m)
				g.Parallelism = 1 // the panel's tasks already fill the pool
				base := make(mec.Placement, len(m.Providers))
				for l := range base {
					base[l] = mec.Remote
				}
				for _, l := range lcf.Coordinated {
					g.Pinned[l] = true
					base[l] = lcf.Appro.Placement[l]
				}
				pos, err := g.EmpiricalPoS(base, opt, cfg.Restarts, 0, wcfg.Seed)
				if err != nil {
					return ratios{}, err
				}
				poa, err := g.EmpiricalPoA(base, opt, cfg.Restarts, 0, wcfg.Seed)
				if err != nil {
					return ratios{}, err
				}
				return ratios{pos: pos, poa: poa}, nil
			})
		if err != nil {
			return nil, err
		}
		sm := newSeriesMap("PoS", "PoA")
		var xs []float64
		for xiIdx, xi := range cfg.XiValues {
			var poss, poas []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				p := pts[xiIdx*cfg.Reps+rep]
				poss = append(poss, p.pos)
				poas = append(poas, p.poa)
			}
			posSum, poaSum := stats.Summarize(poss), stats.Summarize(poas)
			sm.add("PoS", posSum.Mean)
			sm.addErr("PoS", posSum.CI95())
			sm.add("PoA", poaSum.Mean)
			sm.addErr("PoA", poaSum.CI95())
			xs = append(xs, xi)
		}
		fig.Tables = append(fig.Tables, Table{
			Title: "Ablation (c) Price of Stability vs Price of Anarchy", XLabel: "xi", X: xs,
			YLabel: "ratio to exact optimum", Series: sm.series(),
		})
	}
	return fig, nil
}
