package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"mecache/internal/fault"
)

// smallFigF keeps the resilience sweep fast enough for -race runs.
func smallFigF(seed uint64) FigFConfig {
	cfg := DefaultFigF(seed)
	cfg.FailureRates = []float64{0.01, 0.03}
	cfg.Reps = 1
	cfg.Dynamic.Horizon = 60
	return cfg
}

func TestFigFSmallSweep(t *testing.T) {
	fig, err := FigF(smallFigF(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables) != 4 {
		t.Fatalf("FigF has %d panels, want 4", len(fig.Tables))
	}
	polNames := make(map[string]bool)
	for _, p := range fault.Policies() {
		polNames[p.String()] = true
	}
	for _, tb := range fig.Tables {
		if len(tb.X) != 2 {
			t.Fatalf("%s has %d x values, want 2", tb.Title, len(tb.X))
		}
		if len(tb.Series) != len(polNames) {
			t.Fatalf("%s has %d series, want %d", tb.Title, len(tb.Series), len(polNames))
		}
		for _, s := range tb.Series {
			if !polNames[s.Name] {
				t.Fatalf("%s has unknown series %q", tb.Title, s.Name)
			}
			if len(s.Y) != len(tb.X) {
				t.Fatalf("%s series %s has %d points, want %d", tb.Title, s.Name, len(s.Y), len(tb.X))
			}
		}
	}
	// Availability panel: every point must be a valid fraction, and with
	// faults enabled at these rates some unavailability must register.
	for _, s := range fig.Tables[0].Series {
		for i, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("availability %v at point %d of %s outside [0,1]", y, i, s.Name)
			}
		}
	}
	for _, s := range fig.Tables[2].Series {
		for i, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("SLA violation fraction %v at point %d of %s outside [0,1]", y, i, s.Name)
			}
		}
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("rendered figure is empty")
	}
}

// The acceptance criterion: the seeded resilience sweep is bit-for-bit
// deterministic across two same-seed runs.
func TestFigFDeterministic(t *testing.T) {
	a, err := FigF(smallFigF(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FigF(smallFigF(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed FigF runs diverge:\n%+v\n%+v", a, b)
	}
}

func TestFigFValidation(t *testing.T) {
	cfg := smallFigF(1)
	cfg.FailureRates = nil
	if _, err := FigF(cfg); err == nil {
		t.Fatal("empty failure-rate sweep accepted")
	}
	cfg = smallFigF(1)
	cfg.Policies = nil
	if _, err := FigF(cfg); err == nil {
		t.Fatal("empty policy list accepted")
	}
	cfg = smallFigF(1)
	cfg.FailureRates = []float64{-0.5}
	if _, err := FigF(cfg); err == nil {
		t.Fatal("negative failure rate accepted")
	}
}
