// Package workload generates service-market instances with the parameter
// settings of the paper's Section IV-A: a topology with cloudlets at 10% of
// the nodes (placed at the network edge) and 5 remote data centers, VM
// counts drawn from [15, 30], per-VM bandwidth from [10, 100] Mbps,
// transmission prices from [$0.05, $0.12]/GB, processing prices from
// [$0.15, $0.22]/GB, per-request traffic from [10, 200] MB, service data
// volumes from [1, 5] GB, congestion coefficients α_i, β_i from [0, 1], and
// consistency updates shipping 10% of the service data volume.
//
// Every range is a Config field so that the figure drivers can sweep the
// parameters the paper sweeps (a_max, b_max, request counts, update volume).
package workload

import (
	"fmt"
	"math"
	"sort"

	"mecache/internal/mec"
	"mecache/internal/rng"
	"mecache/internal/topology"
)

// Range is a closed numeric interval [Lo, Hi].
type Range struct {
	Lo, Hi float64
}

// draw samples uniformly from the range.
func (rg Range) draw(r *rng.Source) float64 {
	if rg.Hi <= rg.Lo {
		return rg.Lo
	}
	return r.FloatRange(rg.Lo, rg.Hi)
}

// IntRange is a closed integer interval [Lo, Hi].
type IntRange struct {
	Lo, Hi int
}

func (rg IntRange) draw(r *rng.Source) int {
	if rg.Hi <= rg.Lo {
		return rg.Lo
	}
	return r.IntRange(rg.Lo, rg.Hi)
}

// Config holds every tunable of the Section IV-A setting.
type Config struct {
	Seed         uint64
	NumProviders int
	// CloudletFraction is the share of topology nodes hosting a cloudlet
	// (paper: 10%).
	CloudletFraction float64
	// NumDCs is the number of remote data centers (paper: 5).
	NumDCs int
	// VMs per cloudlet (paper: [15, 30]).
	VMs IntRange
	// VMBandwidthMbps is the bandwidth capacity per VM (paper: [10, 100]).
	VMBandwidthMbps Range
	// VMComputeUnits is the compute capacity contributed by one VM.
	VMComputeUnits float64
	// TransPricePerGB is the transmission price range (paper: [0.05, 0.12]).
	TransPricePerGB Range
	// ProcPricePerGB is the processing price range (paper: [0.15, 0.22]).
	ProcPricePerGB Range
	// TrafficPerReqMB is per-request traffic volume (paper: [10, 200] MB).
	TrafficPerReqMB Range
	// DataGB is the service data volume (paper: [1, 5] GB).
	DataGB Range
	// Alpha and Beta are the congestion coefficients (paper: [0, 1]).
	Alpha Range
	Beta  Range
	// UpdateRatio is the consistency-update share of DataGB (paper: 0.10).
	UpdateRatio float64
	// Requests per provider.
	Requests IntRange
	// ComputeDemand is the total compute demand a_l·r_l of a service, in VM
	// compute units.
	ComputeDemand Range
	// BandwidthDemand is the total bandwidth demand b_l·r_l in Mbps.
	BandwidthDemand Range
	// InstCost is c_l^ins.
	InstCost Range
	// FixedBandwidthCost is c_i^bdw.
	FixedBandwidthCost Range
	// BackhaulHops is the WAN distance between a data center's gateway and
	// the actual remote cloud (the "remote" in remote data center).
	BackhaulHops IntRange
}

// Default returns the Section IV-A parameter setting.
func Default(seed uint64) Config {
	return Config{
		Seed:               seed,
		NumProviders:       100,
		CloudletFraction:   0.10,
		NumDCs:             5,
		VMs:                IntRange{15, 30},
		VMBandwidthMbps:    Range{10, 100},
		VMComputeUnits:     1.0,
		TransPricePerGB:    Range{0.05, 0.12},
		ProcPricePerGB:     Range{0.15, 0.22},
		TrafficPerReqMB:    Range{10, 200},
		DataGB:             Range{1, 5},
		Alpha:              Range{0, 1},
		Beta:               Range{0, 1},
		UpdateRatio:        0.10,
		Requests:           IntRange{10, 50},
		ComputeDemand:      Range{0.5, 3.0},
		BandwidthDemand:    Range{20, 120},
		InstCost:           Range{0.5, 1.5},
		FixedBandwidthCost: Range{0.1, 0.5},
		BackhaulHops:       IntRange{8, 15},
	}
}

// Validate rejects configurations whose draws would panic deep inside the
// random-number layer or silently produce nonsense markets (zero-request
// providers divide demands by zero; inverted or negative ranges draw
// negative prices and capacities).
func (cfg Config) Validate() error {
	ranges := []struct {
		name string
		rg   Range
	}{
		{"VMBandwidthMbps", cfg.VMBandwidthMbps},
		{"TransPricePerGB", cfg.TransPricePerGB},
		{"ProcPricePerGB", cfg.ProcPricePerGB},
		{"TrafficPerReqMB", cfg.TrafficPerReqMB},
		{"DataGB", cfg.DataGB},
		{"Alpha", cfg.Alpha},
		{"Beta", cfg.Beta},
		{"ComputeDemand", cfg.ComputeDemand},
		{"BandwidthDemand", cfg.BandwidthDemand},
		{"InstCost", cfg.InstCost},
		{"FixedBandwidthCost", cfg.FixedBandwidthCost},
	}
	for _, f := range ranges {
		if math.IsNaN(f.rg.Lo) || math.IsNaN(f.rg.Hi) || math.IsInf(f.rg.Lo, 0) || math.IsInf(f.rg.Hi, 0) {
			return fmt.Errorf("workload: %s range [%v, %v] must be finite", f.name, f.rg.Lo, f.rg.Hi)
		}
		if f.rg.Lo < 0 {
			return fmt.Errorf("workload: %s range [%v, %v] must be non-negative", f.name, f.rg.Lo, f.rg.Hi)
		}
		if f.rg.Hi < f.rg.Lo {
			return fmt.Errorf("workload: %s range [%v, %v] is inverted", f.name, f.rg.Lo, f.rg.Hi)
		}
	}
	if cfg.NumProviders < 1 {
		return fmt.Errorf("workload: need at least one provider, got %d", cfg.NumProviders)
	}
	if math.IsNaN(cfg.CloudletFraction) || cfg.CloudletFraction < 0 || cfg.CloudletFraction > 1 {
		return fmt.Errorf("workload: CloudletFraction %v outside [0,1]", cfg.CloudletFraction)
	}
	if cfg.NumDCs < 0 {
		return fmt.Errorf("workload: NumDCs must be non-negative, got %d", cfg.NumDCs)
	}
	if math.IsNaN(cfg.VMComputeUnits) || math.IsInf(cfg.VMComputeUnits, 0) || cfg.VMComputeUnits < 0 {
		return fmt.Errorf("workload: VMComputeUnits must be finite and non-negative, got %v", cfg.VMComputeUnits)
	}
	if math.IsNaN(cfg.UpdateRatio) || math.IsInf(cfg.UpdateRatio, 0) || cfg.UpdateRatio < 0 {
		return fmt.Errorf("workload: UpdateRatio must be finite and non-negative, got %v", cfg.UpdateRatio)
	}
	if cfg.Requests.Lo < 1 {
		return fmt.Errorf("workload: Requests range [%d, %d] must start at >= 1 (requests divide per-request demands)", cfg.Requests.Lo, cfg.Requests.Hi)
	}
	if cfg.Requests.Hi < cfg.Requests.Lo {
		return fmt.Errorf("workload: Requests range [%d, %d] is inverted", cfg.Requests.Lo, cfg.Requests.Hi)
	}
	if cfg.VMs.Lo < 0 || cfg.VMs.Hi < cfg.VMs.Lo {
		return fmt.Errorf("workload: VMs range [%d, %d] invalid", cfg.VMs.Lo, cfg.VMs.Hi)
	}
	if cfg.BackhaulHops.Lo < 0 || cfg.BackhaulHops.Hi < cfg.BackhaulHops.Lo {
		return fmt.Errorf("workload: BackhaulHops range [%d, %d] invalid", cfg.BackhaulHops.Lo, cfg.BackhaulHops.Hi)
	}
	return nil
}

// Generate builds a market on the given topology. Cloudlets are placed at
// the nodes farthest from the topology center (the network edge, where
// GT-ITM stubs live); data centers at the most central nodes (the core).
func Generate(topo *topology.Topology, cfg Config) (*mec.Market, error) {
	if topo == nil {
		return nil, fmt.Errorf("workload: nil topology")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := topo.N()
	numCL := int(float64(n) * cfg.CloudletFraction)
	if numCL < 1 {
		numCL = 1
	}
	numDC := cfg.NumDCs
	if numDC < 1 {
		numDC = 1
	}
	if numCL+numDC > n {
		return nil, fmt.Errorf("workload: %d cloudlets + %d DCs exceed %d nodes", numCL, numDC, n)
	}
	if cfg.NumProviders < 1 {
		return nil, fmt.Errorf("workload: need at least one provider, got %d", cfg.NumProviders)
	}

	r := rng.New(cfg.Seed)

	// Rank nodes by centrality (distance from the geometric center of the
	// layout): DCs at the core, cloudlets at the edge.
	type ranked struct {
		node int
		d    float64
	}
	nodes := make([]ranked, n)
	for v := 0; v < n; v++ {
		dx, dy := topo.Pos[v].X-0.5, topo.Pos[v].Y-0.5
		nodes[v] = ranked{node: v, d: dx*dx + dy*dy}
	}
	sort.Slice(nodes, func(a, b int) bool { return nodes[a].d < nodes[b].d })

	dcNodes := make([]int, numDC)
	for i := 0; i < numDC; i++ {
		dcNodes[i] = nodes[i].node
	}
	// Cloudlets: random subset of the outer half (the "network edge").
	outerStart := n / 2
	if outerStart < numDC {
		outerStart = numDC
	}
	outer := nodes[outerStart:]
	if len(outer) < numCL {
		outer = nodes[numDC:]
	}
	pick := r.Choose(len(outer), numCL)
	clNodes := make([]int, numCL)
	for i, p := range pick {
		clNodes[i] = outer[p].node
	}

	cloudlets := make([]mec.Cloudlet, numCL)
	for i := range cloudlets {
		vms := cfg.VMs.draw(r)
		cloudlets[i] = mec.Cloudlet{
			Node:               clNodes[i],
			NumVMs:             vms,
			ComputeCap:         float64(vms) * cfg.VMComputeUnits,
			BandwidthCap:       float64(vms) * cfg.VMBandwidthMbps.draw(r),
			Alpha:              cfg.Alpha.draw(r),
			Beta:               cfg.Beta.draw(r),
			FixedBandwidthCost: cfg.FixedBandwidthCost.draw(r),
			ProcPricePerGB:     cfg.ProcPricePerGB.draw(r),
			TransPricePerGBHop: cfg.TransPricePerGB.draw(r),
		}
	}
	dcs := make([]mec.DataCenter, numDC)
	for i := range dcs {
		dcs[i] = mec.DataCenter{
			Node:               dcNodes[i],
			BackhaulHops:       cfg.BackhaulHops.draw(r),
			ProcPricePerGB:     cfg.ProcPricePerGB.draw(r),
			TransPricePerGBHop: cfg.TransPricePerGB.draw(r),
		}
	}
	net, err := mec.NewNetwork(topo, cloudlets, dcs)
	if err != nil {
		return nil, err
	}

	providers := make([]mec.Provider, cfg.NumProviders)
	for l := range providers {
		providers[l] = cfg.DrawProvider(r, numDC, n)
	}
	return mec.NewMarket(net, providers)
}

// DrawProvider samples one provider from the configured ranges, attaching
// it at a uniform node and homing it at a uniform data center. The dynamic
// market simulator uses this to draw arrivals from the same population as
// the static experiments.
func (cfg Config) DrawProvider(r *rng.Source, numDCs, numNodes int) mec.Provider {
	reqs := cfg.Requests.draw(r)
	return mec.Provider{
		Requests:        reqs,
		ComputePerReq:   cfg.ComputeDemand.draw(r) / float64(reqs),
		BandwidthPerReq: cfg.BandwidthDemand.draw(r) / float64(reqs),
		InstCost:        cfg.InstCost.draw(r),
		TrafficGBPerReq: cfg.TrafficPerReqMB.draw(r) / 1024.0,
		DataGB:          cfg.DataGB.draw(r),
		UpdateRatio:     cfg.UpdateRatio,
		HomeDC:          r.Intn(numDCs),
		AttachNode:      r.Intn(numNodes),
	}
}

// GenerateGTITM is the convenience used by the simulation figures: a
// GT-ITM-style topology of the given size plus a market generated with cfg.
func GenerateGTITM(size int, cfg Config) (*mec.Market, error) {
	topo, err := topology.GTITM(cfg.Seed^0x9e3779b9, size)
	if err != nil {
		return nil, err
	}
	return Generate(topo, cfg)
}
