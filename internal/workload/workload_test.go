package workload

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/mec"
	"mecache/internal/topology"
)

func TestGenerateDefault(t *testing.T) {
	m, err := GenerateGTITM(100, Default(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Providers); got != 100 {
		t.Fatalf("providers = %d, want 100", got)
	}
	if got := m.Net.NumCloudlets(); got != 10 {
		t.Fatalf("cloudlets = %d, want 10%% of 100", got)
	}
	if got := len(m.Net.DCs); got != 5 {
		t.Fatalf("DCs = %d, want 5", got)
	}
}

func TestParameterRangesRespected(t *testing.T) {
	cfg := Default(7)
	m, err := GenerateGTITM(200, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Net.Cloudlets {
		cl := &m.Net.Cloudlets[i]
		if cl.NumVMs < 15 || cl.NumVMs > 30 {
			t.Fatalf("cloudlet %d VMs = %d outside [15,30]", i, cl.NumVMs)
		}
		if cl.Alpha < 0 || cl.Alpha > 1 || cl.Beta < 0 || cl.Beta > 1 {
			t.Fatalf("cloudlet %d congestion coefficients out of [0,1]", i)
		}
		if cl.TransPricePerGBHop < 0.05 || cl.TransPricePerGBHop >= 0.12 {
			t.Fatalf("cloudlet %d transmission price %v outside [0.05,0.12)", i, cl.TransPricePerGBHop)
		}
		if cl.ProcPricePerGB < 0.15 || cl.ProcPricePerGB >= 0.22 {
			t.Fatalf("cloudlet %d processing price %v outside [0.15,0.22)", i, cl.ProcPricePerGB)
		}
		if cl.BandwidthCap < float64(cl.NumVMs)*10 || cl.BandwidthCap > float64(cl.NumVMs)*100 {
			t.Fatalf("cloudlet %d bandwidth cap %v inconsistent with %d VMs", i, cl.BandwidthCap, cl.NumVMs)
		}
	}
	for l := range m.Providers {
		p := &m.Providers[l]
		if p.Requests < 10 || p.Requests > 50 {
			t.Fatalf("provider %d requests = %d outside [10,50]", l, p.Requests)
		}
		if p.DataGB < 1 || p.DataGB >= 5 {
			t.Fatalf("provider %d data volume %v outside [1,5)", l, p.DataGB)
		}
		if p.UpdateRatio != 0.10 {
			t.Fatalf("provider %d update ratio %v, want 0.10", l, p.UpdateRatio)
		}
		traffic := p.TrafficGBPerReq * 1024
		if traffic < 10 || traffic >= 200 {
			t.Fatalf("provider %d per-request traffic %v MB outside [10,200)", l, traffic)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := GenerateGTITM(100, Default(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateGTITM(100, Default(5))
	if err != nil {
		t.Fatal(err)
	}
	for l := range a.Providers {
		if a.Providers[l] != b.Providers[l] {
			t.Fatalf("provider %d differs across identical generations", l)
		}
	}
	for i := range a.Net.Cloudlets {
		if a.Net.Cloudlets[i] != b.Net.Cloudlets[i] {
			t.Fatalf("cloudlet %d differs across identical generations", i)
		}
	}
}

func TestVirtualSlotsPositive(t *testing.T) {
	// Eq. (7) must give every cloudlet at least one virtual slot under the
	// default ranges, or Appro could never cache anything there.
	m, err := GenerateGTITM(150, Default(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range m.VirtualSlots() {
		if s < 1 {
			t.Fatalf("cloudlet %d has %d virtual slots", i, s)
		}
	}
}

func TestCloudletsAtEdgeDCsAtCore(t *testing.T) {
	m, err := GenerateGTITM(200, Default(11))
	if err != nil {
		t.Fatal(err)
	}
	center := func(node int) float64 {
		p := m.Net.Topo.Pos[node]
		dx, dy := p.X-0.5, p.Y-0.5
		return dx*dx + dy*dy
	}
	var dcAvg, clAvg float64
	for _, dc := range m.Net.DCs {
		dcAvg += center(dc.Node)
	}
	dcAvg /= float64(len(m.Net.DCs))
	for i := range m.Net.Cloudlets {
		clAvg += center(m.Net.Cloudlets[i].Node)
	}
	clAvg /= float64(m.Net.NumCloudlets())
	if dcAvg >= clAvg {
		t.Fatalf("DCs (avg center dist %v) should be more central than cloudlets (%v)", dcAvg, clAvg)
	}
}

func TestGenerateOnAS1755(t *testing.T) {
	m, err := Generate(topology.AS1755(), Default(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Net.NumCloudlets() != 8 { // 10% of 87
		t.Fatalf("cloudlets on AS1755 = %d, want 8", m.Net.NumCloudlets())
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(nil, Default(1)); err == nil {
		t.Fatal("nil topology accepted")
	}
	cfg := Default(1)
	cfg.NumProviders = 0
	if _, err := Generate(topology.AS1755(), cfg); err == nil {
		t.Fatal("zero providers accepted")
	}
	small, err := topology.GTITM(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := Default(1)
	cfg2.NumDCs = 10
	if _, err := Generate(small, cfg2); err == nil {
		t.Fatal("more DCs than nodes accepted")
	}
}

// Property: generation never panics and always yields a market whose remote
// strategy is finite for every provider (the "not to cache" option must
// always be available).
func TestRemoteAlwaysAvailable(t *testing.T) {
	check := func(seed uint64) bool {
		cfg := Default(seed)
		cfg.NumProviders = 20
		m, err := GenerateGTITM(50+int(seed%100), cfg)
		if err != nil {
			return false
		}
		for l := range m.Providers {
			if c := m.RemoteCost(l); c <= 0 || c != c /* NaN */ {
				return false
			}
		}
		pl := make(mec.Placement, len(m.Providers))
		for l := range pl {
			pl[l] = mec.Remote
		}
		return m.SocialCost(pl) > 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerate400(b *testing.B) {
	cfg := Default(1)
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := GenerateGTITM(400, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConfigValidateRejectsMisuse(t *testing.T) {
	if err := Default(1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero providers", func(c *Config) { c.NumProviders = 0 }},
		{"zero-request providers", func(c *Config) { c.Requests = IntRange{0, 50} }},
		{"inverted requests", func(c *Config) { c.Requests = IntRange{50, 10} }},
		{"negative price", func(c *Config) { c.TransPricePerGB = Range{-0.05, 0.12} }},
		{"inverted price", func(c *Config) { c.ProcPricePerGB = Range{0.22, 0.15} }},
		{"NaN volume", func(c *Config) { c.DataGB = Range{math.NaN(), 5} }},
		{"infinite demand", func(c *Config) { c.ComputeDemand = Range{0.5, math.Inf(1)} }},
		{"cloudlet fraction > 1", func(c *Config) { c.CloudletFraction = 1.5 }},
		{"negative cloudlet fraction", func(c *Config) { c.CloudletFraction = -0.1 }},
		{"negative DCs", func(c *Config) { c.NumDCs = -1 }},
		{"negative update ratio", func(c *Config) { c.UpdateRatio = -0.1 }},
		{"negative VM range", func(c *Config) { c.VMs = IntRange{-3, 10} }},
		{"inverted backhaul", func(c *Config) { c.BackhaulHops = IntRange{15, 8} }},
	}
	for _, tc := range cases {
		cfg := Default(1)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the config", tc.name)
		}
		if _, err := GenerateGTITM(80, cfg); err == nil {
			t.Errorf("%s: GenerateGTITM accepted the config", tc.name)
		}
	}
}

func TestGenerateValidatesBeforeDrawing(t *testing.T) {
	// A config that would previously panic inside the rng layer (uniform
	// draw over an inverted interval) must surface as an error instead.
	cfg := Default(2)
	cfg.TrafficPerReqMB = Range{200, 10}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Generate panicked: %v", r)
		}
	}()
	if _, err := GenerateGTITM(60, cfg); err == nil {
		t.Fatal("inverted range accepted")
	}
}
