package fault

import (
	"math"
	"reflect"
	"testing"

	"mecache/internal/rng"
	"mecache/internal/sim"
)

func TestPolicyRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Fatalf("round trip %v -> %v", p, got)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("disabled config rejected: %v", err)
	}
	bad := DefaultConfig()
	bad.CloudletMTBF = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Fatal("NaN MTBF accepted")
	}
	bad = DefaultConfig()
	bad.DetectionDelay = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative detection delay accepted")
	}
	bad = DefaultConfig()
	bad.CloudletMTTR = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("outages without repairs accepted")
	}
	bad = DefaultConfig()
	bad.Policy = Policy(99)
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestInjectorAlternates(t *testing.T) {
	k := sim.NewKernel()
	in, err := NewInjector(k, rng.New(1), 500)
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	in.OnFail = func(target int) {
		if in.Up(target) {
			t.Fatalf("OnFail(%d) with target still up", target)
		}
		events = append(events, "fail")
	}
	in.OnRepair = func(target int) {
		if !in.Up(target) {
			t.Fatalf("OnRepair(%d) with target still down", target)
		}
		events = append(events, "repair")
	}
	if err := in.Start(3, 20, 2); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no failures over 500 time units at MTBF 20")
	}
	st := in.Stats()
	if st.Failures != st.Repairs {
		t.Fatalf("kernel ran dry but %d failures vs %d repairs", st.Failures, st.Repairs)
	}
	if st.Downtime <= 0 {
		t.Fatal("failures occurred but zero downtime accrued")
	}
	for _, o := range in.Outages() {
		if math.IsNaN(o.End) {
			t.Fatalf("open outage %+v after kernel ran dry", o)
		}
		if o.End <= o.Start {
			t.Fatalf("outage %+v has non-positive duration", o)
		}
	}
	for i := 0; i < 3; i++ {
		if !in.Up(i) {
			t.Fatalf("target %d left down after all repairs ran", i)
		}
	}
	if in.AnyDown() {
		t.Fatal("AnyDown true after all repairs")
	}
}

func TestInjectorDeterministic(t *testing.T) {
	run := func() (Stats, []Outage) {
		k := sim.NewKernel()
		in, err := NewInjector(k, rng.New(42), 300)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Start(4, 15, 3); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(0); err != nil {
			t.Fatal(err)
		}
		return in.Stats(), in.Outages()
	}
	s1, o1 := run()
	s2, o2 := run()
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Fatalf("same seed, different outage logs")
	}
}

func TestInjectorValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := NewInjector(nil, rng.New(1), 10); err == nil {
		t.Fatal("nil kernel accepted")
	}
	if _, err := NewInjector(k, rng.New(1), 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
	in, err := NewInjector(k, rng.New(1), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Start(0, 1, 1); err == nil {
		t.Fatal("zero targets accepted")
	}
	if err := in.Start(2, 0, 1); err == nil {
		t.Fatal("zero MTBF accepted")
	}
	if err := in.Start(2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := in.Start(2, 1, 1); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestInjectorHorizonBoundsFirstFailures(t *testing.T) {
	// With a horizon far below the MTBF, most runs see no failure at all;
	// the injector must leave the kernel empty rather than scheduling past
	// the horizon forever.
	k := sim.NewKernel()
	in, err := NewInjector(k, rng.New(7), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Start(2, 1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if st := in.Stats(); st.Failures != 0 {
		t.Fatalf("expected no failures in a 0.001 window at MTBF 1000, got %d", st.Failures)
	}
}
