// Package fault injects stochastic failures into the mecache simulations.
//
// The paper's market caches services "temporarily while keeping the original
// instances of the services", precisely so the remote copy can absorb edge
// failures. This package makes those failures first-class events: alternating
// renewal processes (exponential mean-time-between-failures / mean-time-to-
// repair) drive cloudlet outages, per-cached-instance crashes, and underlay
// switch failures over the discrete-event kernel, and a failover Policy
// decides how affected providers react.
//
// The Injector is the shared engine: the dynamic market uses it for cloudlet
// outage/repair processes, and the test-bed uses it for mid-measurement
// switch failures. All randomness flows through a dedicated rng stream so
// that enabling faults never perturbs the draws of a fault-free run.
package fault

import (
	"fmt"
	"math"

	"mecache/internal/rng"
	"mecache/internal/sim"
)

// Policy selects how providers react when the cloudlet caching their service
// fails (or their cached instance crashes).
type Policy int

const (
	// PolicyRemoteFallback is graceful degradation to the paper's "not to
	// cache" strategy: affected providers fall back to the original instance
	// in their home data center and stay there.
	PolicyRemoteFallback Policy = iota
	// PolicyReplace re-places affected providers with a capacity-aware best
	// response over the surviving cloudlets, paying the re-instantiation
	// cost when a new cached instance is created.
	PolicyReplace
	// PolicyWaitForRepair serves affected providers from the remote original
	// while waiting for the failed cloudlet to come back; on repair each
	// provider returns only if the move passes a hysteresis check (its cost
	// saving exceeds the re-instantiation cost). Waits give up after the
	// configured timeout.
	PolicyWaitForRepair
)

// String returns the policy's command-line name.
func (p Policy) String() string {
	switch p {
	case PolicyRemoteFallback:
		return "remote-fallback"
	case PolicyReplace:
		return "re-place"
	case PolicyWaitForRepair:
		return "wait-for-repair"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies lists every failover policy in a fixed order (the order the
// resilience sweep reports them in).
func Policies() []Policy {
	return []Policy{PolicyRemoteFallback, PolicyReplace, PolicyWaitForRepair}
}

// ParsePolicy parses a command-line policy name.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown policy %q (want remote-fallback, re-place or wait-for-repair)", s)
}

// Config parameterizes the dynamic market's fault model. All times are in
// the market's virtual time unit. A zero MTBF disables that failure process;
// the zero value disables faults entirely.
type Config struct {
	// CloudletMTBF is the mean up-time between outages of one cloudlet;
	// zero disables cloudlet outages.
	CloudletMTBF float64
	// CloudletMTTR is the mean outage duration (exponential).
	CloudletMTTR float64
	// InstanceMTBF is the mean up-time of one cached service instance before
	// it crashes (independent of whole-cloudlet outages); zero disables
	// instance crashes.
	InstanceMTBF float64
	// DetectionDelay is the virtual time between a failure and the moment
	// the failover policy takes effect. During it the affected providers
	// are unreachable — this is the availability gap the metrics report.
	DetectionDelay float64
	// WaitTimeout bounds PolicyWaitForRepair: a provider still waiting after
	// this long gives up and stays remote. Zero means wait forever.
	WaitTimeout float64
	// Policy selects the failover reaction.
	Policy Policy
}

// DefaultConfig returns a moderately failure-prone edge: cloudlets fail
// about once per 100 time units and repair in about 5, cached instances
// crash about once per 200, and failures take 0.5 time units to detect.
func DefaultConfig() Config {
	return Config{
		CloudletMTBF:   100,
		CloudletMTTR:   5,
		InstanceMTBF:   200,
		DetectionDelay: 0.5,
		WaitTimeout:    20,
		Policy:         PolicyRemoteFallback,
	}
}

// Enabled reports whether any failure process is active.
func (c Config) Enabled() bool { return c.CloudletMTBF > 0 || c.InstanceMTBF > 0 }

// Validate rejects NaN, negative, or otherwise unusable parameters.
func (c Config) Validate() error {
	check := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("fault: %s must be finite and non-negative, got %v", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"CloudletMTBF", c.CloudletMTBF},
		{"CloudletMTTR", c.CloudletMTTR},
		{"InstanceMTBF", c.InstanceMTBF},
		{"DetectionDelay", c.DetectionDelay},
		{"WaitTimeout", c.WaitTimeout},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	if c.CloudletMTBF > 0 && c.CloudletMTTR <= 0 {
		return fmt.Errorf("fault: cloudlet outages enabled (MTBF %v) but CloudletMTTR is %v; repairs would never happen", c.CloudletMTBF, c.CloudletMTTR)
	}
	switch c.Policy {
	case PolicyRemoteFallback, PolicyReplace, PolicyWaitForRepair:
	default:
		return fmt.Errorf("fault: unknown policy %d", int(c.Policy))
	}
	return nil
}

// Outage is one completed (or still-open) down interval of a target.
type Outage struct {
	Target int
	Start  float64
	// End is the repair time, or NaN while the outage is still open.
	End float64
}

// Stats summarizes an Injector's activity.
type Stats struct {
	Failures int
	Repairs  int
	// Downtime is the total target-down time accrued so far (open outages
	// counted up to the kernel's current clock).
	Downtime float64
}

// Injector drives alternating up/down renewal processes for a set of
// targets over a discrete-event kernel: each target stays up Exp(MTBF),
// fails, stays down Exp(MTTR), repairs, and repeats until the horizon.
// OnFail/OnRepair hooks fire inside kernel events, in deterministic
// (time, insertion) order.
type Injector struct {
	kernel  *sim.Kernel
	r       *rng.Source
	horizon float64

	mtbf, mttr float64
	up         []bool
	downSince  []float64
	stats      Stats
	outages    []Outage

	// OnFail and OnRepair are invoked with the target index right after the
	// injector flips its state. Either may be nil.
	OnFail   func(target int)
	OnRepair func(target int)
}

// NewInjector builds an injector over the kernel with a dedicated random
// stream. Events are only scheduled at times < horizon, so a run driven by
// RunUntil(horizon) sees a finite event set.
func NewInjector(k *sim.Kernel, r *rng.Source, horizon float64) (*Injector, error) {
	if k == nil || r == nil {
		return nil, fmt.Errorf("fault: injector needs a kernel and a random source")
	}
	if math.IsNaN(horizon) || horizon <= 0 {
		return nil, fmt.Errorf("fault: injector horizon must be positive, got %v", horizon)
	}
	return &Injector{kernel: k, r: r, horizon: horizon}, nil
}

// Start begins n alternating renewal processes with the given mean time
// between failures and mean time to repair. Every target starts up; the
// first failure of target i is drawn independently.
func (in *Injector) Start(n int, mtbf, mttr float64) error {
	if in.up != nil {
		return fmt.Errorf("fault: injector already started")
	}
	if n <= 0 {
		return fmt.Errorf("fault: need at least one target, got %d", n)
	}
	if mtbf <= 0 || mttr <= 0 || math.IsNaN(mtbf) || math.IsNaN(mttr) {
		return fmt.Errorf("fault: MTBF %v and MTTR %v must be positive", mtbf, mttr)
	}
	in.mtbf, in.mttr = mtbf, mttr
	in.up = make([]bool, n)
	in.downSince = make([]float64, n)
	for i := range in.up {
		in.up[i] = true
		if err := in.scheduleFailure(i); err != nil {
			return err
		}
	}
	return nil
}

func (in *Injector) scheduleFailure(target int) error {
	t := in.kernel.Now() + in.r.Exp(1/in.mtbf)
	if t >= in.horizon {
		return nil
	}
	return in.kernel.At(t, func() { in.fail(target) })
}

func (in *Injector) fail(target int) {
	in.up[target] = false
	in.downSince[target] = in.kernel.Now()
	in.stats.Failures++
	in.outages = append(in.outages, Outage{Target: target, Start: in.kernel.Now(), End: math.NaN()})
	if in.OnFail != nil {
		in.OnFail(target)
	}
	// Repairs are scheduled even past the horizon: a failure within the
	// window must eventually repair if the caller runs the kernel dry.
	t := in.kernel.Now() + in.r.Exp(1/in.mttr)
	_ = in.kernel.At(t, func() { in.repair(target) })
}

func (in *Injector) repair(target int) {
	in.up[target] = true
	in.stats.Repairs++
	in.stats.Downtime += in.kernel.Now() - in.downSince[target]
	for i := len(in.outages) - 1; i >= 0; i-- {
		if in.outages[i].Target == target && math.IsNaN(in.outages[i].End) {
			in.outages[i].End = in.kernel.Now()
			break
		}
	}
	if in.OnRepair != nil {
		in.OnRepair(target)
	}
	_ = in.scheduleFailure(target)
}

// Up reports whether the target is currently up.
func (in *Injector) Up(target int) bool {
	if in.up == nil {
		return true
	}
	return in.up[target]
}

// AnyDown reports whether any target is currently down.
func (in *Injector) AnyDown() bool {
	for _, u := range in.up {
		if !u {
			return true
		}
	}
	return false
}

// Stats returns the activity summary with open outages accrued up to the
// kernel's current clock.
func (in *Injector) Stats() Stats {
	s := in.stats
	for i, u := range in.up {
		if !u {
			s.Downtime += in.kernel.Now() - in.downSince[i]
		}
	}
	return s
}

// Outages returns a copy of the outage log. Open outages have End = NaN.
func (in *Injector) Outages() []Outage {
	return append([]Outage(nil), in.outages...)
}
