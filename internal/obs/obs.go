// Package obs is the observability layer: decision tracing for the
// equilibrium algorithms, structured-logging helpers, and build identity.
//
// The central abstraction is Tracer, a sink for the per-iteration decision
// events the algorithms emit — every candidate a best response priced
// (with the Eq. 3 cost terms broken out), every strategy change, every
// round of dynamics, every hysteresis suppression. A nil Tracer disables
// tracing entirely: call sites guard every emission behind a nil check, so
// the disabled path costs one branch and zero allocations, and fixed-seed
// runs are byte-identical with tracing on or off (tracing only observes,
// it never draws randomness or mutates state).
//
// Completed decisions are packaged as Trace values and retained in a
// bounded Ring, which the serving daemon exposes as GET /v1/debug/trace.
//
// The lifecycle dimension is the Span/SpanRing pair (span.go): where the
// decision trace answers "why this cloudlet", spans answer "where the time
// went" — queue wait, WAL append and fsync, the equilibrium scan, view
// publish — correlated across processes by W3C traceparent trace IDs and
// served as GET /v1/debug/spans.
package obs

import (
	"fmt"
	"sync"
	"time"

	"mecache/internal/mec"
)

// Kind classifies trace events.
type Kind uint8

// Event kinds.
const (
	// KindCandidate records one candidate strategy a best response priced.
	KindCandidate Kind = iota + 1
	// KindChoice records the strategy a best response settled on.
	KindChoice
	// KindMove records a strategy change applied during dynamics or an
	// epoch (From holds the previous strategy).
	KindMove
	// KindRound closes one full best-response pass over the players.
	KindRound
	// KindPhase marks an algorithm phase boundary (Appro solve, LCF
	// coordination pick, dynamics convergence, epoch summary).
	KindPhase
	// KindSuppress records an epoch move skipped by the migration-aware
	// hysteresis.
	KindSuppress
)

func (k Kind) String() string {
	switch k {
	case KindCandidate:
		return "candidate"
	case KindChoice:
		return "choice"
	case KindMove:
		return "move"
	case KindRound:
		return "round"
	case KindPhase:
		return "phase"
	case KindSuppress:
		return "suppress"
	default:
		return "unknown"
	}
}

// MarshalText renders the kind as its name, so traces serialize readably.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name back, so serialized traces round-trip.
func (k *Kind) UnmarshalText(text []byte) error {
	for c := KindCandidate; c <= KindSuppress; c++ {
		if c.String() == string(text) {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", text)
}

// Event is one decision-trace record. It is a flat value type so hot paths
// can emit events without allocating; unused fields are simply zero.
// Strategy and From follow the market convention: a cloudlet index, or
// mec.Remote (-1) for the not-to-cache option.
type Event struct {
	Kind     Kind `json:"kind"`
	Provider int  `json:"provider"`
	Strategy int  `json:"strategy"`
	// From is the previous strategy of a move (mec.Remote when none).
	From int `json:"from"`
	// Round is the dynamics round the event belongs to (0 outside rounds).
	Round int `json:"round"`
	// Load is the tenant count of the candidate cloudlet, including the
	// deciding provider (0 for remote).
	Load int `json:"load"`
	// Cost decomposes the strategy's Eq. 3 cost; Total is its sum (equal
	// to the scalar cost the algorithm compared).
	Cost  mec.CostBreakdown `json:"cost"`
	Total float64           `json:"total"`
	// SocialCost carries the Eq. 6 trajectory on phase/round events.
	SocialCost float64 `json:"socialCost,omitempty"`
	// Note labels phase events ("appro solver=transport", "lcf", ...).
	Note string `json:"note,omitempty"`
}

// Tracer receives decision events. Implementations must be cheap: hot loops
// call Emit once per candidate. A nil Tracer means tracing is off — every
// emission site guards with a nil check, so the disabled path is free.
type Tracer interface {
	Emit(Event)
}

// DefaultEventLimit bounds a Recorder when the caller passes no limit; it
// comfortably holds one admission (one event per candidate cloudlet) and
// keeps epoch traces over large markets from growing without bound.
const DefaultEventLimit = 4096

// Recorder is a Tracer that collects events in memory, capped at a limit;
// events beyond the cap are counted, not stored. Not safe for concurrent
// use: a recorder belongs to one decision on one goroutine.
type Recorder struct {
	limit   int
	events  []Event
	dropped int
}

// NewRecorder returns a recorder holding at most limit events
// (DefaultEventLimit when limit <= 0).
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultEventLimit
	}
	return &Recorder{limit: limit}
}

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) {
	if len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Events returns the recorded events (the recorder's own slice; callers
// hand it off to a Trace and stop using the recorder).
func (r *Recorder) Events() []Event { return r.events }

// Dropped counts events discarded beyond the limit.
func (r *Recorder) Dropped() int { return r.dropped }

// Trace is one completed decision: an online admission's best response, an
// epoch re-equilibration, or a crash-recovery replay, with its recorded
// event stream.
type Trace struct {
	// ID is assigned by the Ring: a monotone sequence over all traces.
	ID   uint64 `json:"id"`
	Kind string `json:"kind"` // "admission", "epoch", or "recovery"
	// Start and Duration time the decision (wall clock; informational
	// only, never fed back into any algorithm).
	Start    time.Time `json:"start"`
	Duration float64   `json:"durationSeconds"`
	// Provider is the public id of the admitted provider (-1 for epochs).
	Provider int64 `json:"provider"`
	// Chosen is the admitted provider's strategy (mec.Remote for remote;
	// meaningless for epochs).
	Chosen int `json:"chosen"`
	// Cost is the chosen strategy's cost at decision time.
	Cost float64 `json:"cost"`
	// SocialCost is Eq. 6 after the decision.
	SocialCost float64 `json:"socialCost"`
	// Epoch numbers the re-equilibration (0 for admissions).
	Epoch uint64 `json:"epoch"`
	// Rounds is the best-response convergence iteration count (epochs).
	Rounds int `json:"rounds"`
	// Reconfigurations and Suppressed summarize an epoch's churn.
	Reconfigurations int `json:"reconfigurations"`
	Suppressed       int `json:"suppressed"`
	// Records counts WAL records replayed by a recovery trace (0 for
	// admissions and epochs).
	Records int `json:"records,omitempty"`
	// Events is the recorded decision stream; EventsDropped counts events
	// beyond the recorder's cap.
	Events        []Event `json:"events"`
	EventsDropped int     `json:"eventsDropped"`
}

// Ring retains the last-N completed traces. It is safe for concurrent use
// (one writer, many readers). A nil Ring, or one with no capacity, is
// disabled: Add is a no-op and Snapshot returns nothing.
type Ring struct {
	mu  sync.Mutex
	cap int
	buf []Trace // chronological; oldest first once full
	seq uint64  // total traces ever added
}

// NewRing returns a ring holding the last `capacity` traces; capacity <= 0
// returns a disabled ring.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		return &Ring{}
	}
	return &Ring{cap: capacity}
}

// Enabled reports whether the ring retains traces.
func (r *Ring) Enabled() bool { return r != nil && r.cap > 0 }

// Cap returns the ring's retention capacity (0 when disabled), so callers
// can report how many traces a snapshot could at most return.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return r.cap
}

// Total returns how many traces have ever been added (retained or not).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Add assigns the trace its sequence ID and retains it, evicting the
// oldest beyond capacity. Returns the assigned ID (0 when disabled).
func (r *Ring) Add(t Trace) uint64 {
	if !r.Enabled() {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	t.ID = r.seq
	if len(r.buf) == r.cap {
		copy(r.buf, r.buf[1:])
		r.buf[len(r.buf)-1] = t
	} else {
		r.buf = append(r.buf, t)
	}
	return t.ID
}

// Snapshot returns up to n retained traces, newest first, optionally
// filtered by kind ("" keeps all). n <= 0 means every retained trace.
func (r *Ring) Snapshot(n int, kind string) []Trace {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, 0, len(r.buf))
	for i := len(r.buf) - 1; i >= 0; i-- {
		if kind != "" && r.buf[i].Kind != kind {
			continue
		}
		out = append(out, r.buf[i])
		if n > 0 && len(out) == n {
			break
		}
	}
	return out
}
