package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"mecache/internal/mec"
)

func TestRecorderCapsAndCounts(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: KindCandidate, Provider: i})
	}
	if len(r.Events()) != 3 {
		t.Fatalf("recorder kept %d events, want 3", len(r.Events()))
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", r.Dropped())
	}
	if r.Events()[2].Provider != 2 {
		t.Fatalf("kept wrong events: %+v", r.Events())
	}
}

func TestRecorderDefaultLimit(t *testing.T) {
	r := NewRecorder(0)
	if r.limit != DefaultEventLimit {
		t.Fatalf("limit = %d, want %d", r.limit, DefaultEventLimit)
	}
}

func TestRingEvictsOldestAndFilters(t *testing.T) {
	r := NewRing(2)
	if !r.Enabled() {
		t.Fatal("ring with capacity should be enabled")
	}
	r.Add(Trace{Kind: "admission", Provider: 1})
	r.Add(Trace{Kind: "epoch", Epoch: 1})
	id := r.Add(Trace{Kind: "admission", Provider: 3})
	if id != 3 {
		t.Fatalf("third trace got id %d, want 3", id)
	}
	if r.Total() != 3 {
		t.Fatalf("total = %d, want 3", r.Total())
	}
	all := r.Snapshot(0, "")
	if len(all) != 2 {
		t.Fatalf("retained %d traces, want 2", len(all))
	}
	// Newest first.
	if all[0].ID != 3 || all[1].ID != 2 {
		t.Fatalf("snapshot order wrong: ids %d, %d", all[0].ID, all[1].ID)
	}
	adm := r.Snapshot(5, "admission")
	if len(adm) != 1 || adm[0].Provider != 3 {
		t.Fatalf("kind filter wrong: %+v", adm)
	}
	if got := r.Snapshot(1, ""); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("n limit wrong: %+v", got)
	}
}

func TestDisabledRingIsInert(t *testing.T) {
	for _, r := range []*Ring{nil, NewRing(0), NewRing(-1)} {
		if r.Enabled() {
			t.Fatal("disabled ring reports enabled")
		}
		if id := r.Add(Trace{Kind: "admission"}); id != 0 {
			t.Fatalf("disabled Add returned id %d", id)
		}
		if got := r.Snapshot(10, ""); got != nil {
			t.Fatalf("disabled Snapshot returned %+v", got)
		}
		if r.Total() != 0 {
			t.Fatal("disabled ring counted traces")
		}
	}
}

func TestEventJSONRoundTripsKindNames(t *testing.T) {
	e := Event{Kind: KindCandidate, Provider: 4, Strategy: 2, From: mec.Remote, Total: 1.5}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"candidate"`) {
		t.Fatalf("kind not rendered by name: %s", data)
	}
	for k, want := range map[Kind]string{
		KindCandidate: "candidate", KindChoice: "choice", KindMove: "move",
		KindRound: "round", KindPhase: "phase", KindSuppress: "suppress", Kind(99): "unknown",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestNewLoggerLevelsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("visible", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("info leaked through warn level: %s", out)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(out), &rec); err != nil {
		t.Fatalf("not json: %s: %v", out, err)
	}
	if rec["msg"] != "visible" || rec["k"] != "v" {
		t.Fatalf("unexpected record: %v", rec)
	}

	if _, err := NewLogger(&buf, "nope", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "yaml"); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, err := NewLogger(&buf, "", ""); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

func TestParseLevelAliases(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "": slog.LevelInfo, "INFO": slog.LevelInfo,
		"warning": slog.LevelWarn, "Error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

func TestNopLoggerDiscardsEverything(t *testing.T) {
	lg := NopLogger()
	if lg.Enabled(nil, slog.LevelError) {
		t.Fatal("nop logger enabled at error level")
	}
	lg.Error("should not panic")
}

func TestBuildReportsIdentity(t *testing.T) {
	b := Build()
	if b.GoVersion == "" || b.Version == "" || b.Revision == "" {
		t.Fatalf("empty build info fields: %+v", b)
	}
	// Test binaries embed the toolchain version even without VCS stamps.
	if !strings.HasPrefix(b.GoVersion, "go") {
		t.Fatalf("implausible go version %q", b.GoVersion)
	}
}
