package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanRingDisabled(t *testing.T) {
	for _, r := range []*SpanRing{nil, NewSpanRing(0), NewSpanRing(-3)} {
		if r.Enabled() {
			t.Fatal("disabled ring reports enabled")
		}
		if id := r.StartID(); id != 0 {
			t.Fatalf("StartID on disabled ring = %d, want 0", id)
		}
		r.Record(Span{Stage: StageRequest})
		if got := r.Snapshot(0, "", 0); got != nil {
			t.Fatalf("Snapshot on disabled ring = %v, want nil", got)
		}
		if r.Cap() != 0 || r.HighWater() != 0 || r.Recorded() != 0 {
			t.Fatal("disabled ring leaked state")
		}
	}
}

// The disabled path must not allocate: span tracing off means the event
// loop and the admission hot path pay one nil/len check per would-be span,
// nothing more. This is the obs-level half of the 0 allocs/op contract
// (the game-level half lives in game/trace_test.go).
func TestSpanRingDisabledZeroAllocs(t *testing.T) {
	var nilRing *SpanRing
	off := NewSpanRing(0)
	allocs := testing.AllocsPerRun(100, func() {
		if id := nilRing.StartID(); id != 0 {
			t.Fatal("unexpected id")
		}
		if id := off.StartID(); id != 0 {
			t.Fatal("unexpected id")
		}
		if off.Enabled() {
			off.Record(Span{Stage: StageApply})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocated %.1f times per run, want 0", allocs)
	}
}

func TestSpanRingRetainsNewestAndEvictsOldest(t *testing.T) {
	r := NewSpanRing(3)
	for i := 0; i < 5; i++ {
		r.Record(Span{Trace: "t", Stage: StageApply, Duration: float64(i)})
	}
	got := r.Snapshot(0, "", 0)
	if len(got) != 3 {
		t.Fatalf("retained %d spans, want 3", len(got))
	}
	// Newest-first by ID: 5, 4, 3.
	for i, want := range []uint64{5, 4, 3} {
		if got[i].ID != want {
			t.Fatalf("span[%d].ID = %d, want %d", i, got[i].ID, want)
		}
	}
	if r.HighWater() != 5 || r.Recorded() != 5 || r.Cap() != 3 {
		t.Fatalf("highWater/recorded/cap = %d/%d/%d, want 5/5/3", r.HighWater(), r.Recorded(), r.Cap())
	}
}

func TestSpanRingStartIDBeforeChildren(t *testing.T) {
	r := NewSpanRing(8)
	root := r.StartID() // parent opens first...
	child := Span{ID: r.StartID(), Parent: root, Trace: "t", Stage: StageQueueWait}
	r.Record(child) // ...child completes first...
	r.Record(Span{ID: root, Trace: "t", Stage: StageRequest})
	got := r.Snapshot(0, "", 0)
	if len(got) != 2 {
		t.Fatalf("got %d spans, want 2", len(got))
	}
	// ID order is start order: the child (ID 2) sorts before the root (ID 1).
	if got[0].ID != 2 || got[0].Parent != root || got[1].ID != root {
		t.Fatalf("unexpected snapshot %+v", got)
	}
}

func TestSpanRingSnapshotFilters(t *testing.T) {
	r := NewSpanRing(16)
	r.Record(Span{Trace: "aaaa", Stage: StageApply, Duration: 0.5})
	r.Record(Span{Trace: "bbbb", Stage: StageApply, Duration: 0.001})
	r.Record(Span{Trace: "aaaa", Stage: StagePublish, Duration: 0.002})
	if got := r.Snapshot(0, "aaaa", 0); len(got) != 2 {
		t.Fatalf("trace filter kept %d spans, want 2", len(got))
	}
	if got := r.Snapshot(0, "", 0.01); len(got) != 1 || got[0].Duration != 0.5 {
		t.Fatalf("min-duration filter got %v", got)
	}
	if got := r.Snapshot(1, "", 0); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("n cap got %v, want just span 3", got)
	}
}

// Concurrent writers and readers must be race-free (the loop records while
// scrapes snapshot); run under -race this is the actual assertion.
func TestSpanRingConcurrentAccess(t *testing.T) {
	r := NewSpanRing(32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := r.StartID()
				r.Record(Span{ID: id, Trace: "t", Stage: StageApply, Start: time.Now()})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			r.Snapshot(8, "", 0)
		}
	}()
	wg.Wait()
	<-done
	if r.Recorded() != 800 {
		t.Fatalf("recorded %d spans, want 800", r.Recorded())
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	in := Span{
		ID: 7, Parent: 3, Trace: MintTraceID(1, 42), Stage: StageWALFsync,
		Start: time.Unix(100, 0).UTC(), Duration: 0.25,
		Attrs: []Attr{String("op", "admit"), Int64("provider", 9), Float64("cost", 1.5)},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Span
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Parent != in.Parent || out.Trace != in.Trace || out.Stage != in.Stage {
		t.Fatalf("round trip changed identity: %+v", out)
	}
	if len(out.Attrs) != 3 {
		t.Fatalf("round trip kept %d attrs, want 3", len(out.Attrs))
	}
	for i, a := range in.Attrs {
		b := out.Attrs[i]
		if a.Key != b.Key || a.Kind != b.Kind || a.Value() != b.Value() {
			t.Fatalf("attr %d: %+v != %+v", i, a, b)
		}
	}
}

func TestMintTraceID(t *testing.T) {
	id := MintTraceID(0xdead, 0xbeef)
	if len(id) != 32 || !isHex(id) {
		t.Fatalf("minted %q, want 32 hex chars", id)
	}
	if MintTraceID(0xdead, 0xbeef) != id {
		t.Fatal("minting is not a pure function")
	}
	if z := MintTraceID(0, 0); allZero(z) {
		t.Fatalf("minted the invalid all-zero trace ID %q", z)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	trace := MintTraceID(3, 99)
	h := FormatTraceparent(trace, 0x1234)
	gotTrace, gotParent, ok := ParseTraceparent(h)
	if !ok || gotTrace != trace || gotParent != "0000000000001234" {
		t.Fatalf("ParseTraceparent(%q) = %q, %q, %v", h, gotTrace, gotParent, ok)
	}
	if h2 := FormatTraceparent(trace, 0); !strings.HasSuffix(h2, "-0000000000000001-01") {
		t.Fatalf("zero parent not nudged: %q", h2)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	valid := FormatTraceparent(MintTraceID(1, 2), 3)
	bad := []string{
		"",
		"garbage",
		valid[:len(valid)-1],                    // truncated
		"01" + valid[2:],                        // unknown version
		strings.Replace(valid, "-", "_", 1),     // wrong separator
		"00-" + strings.Repeat("0", 32) + "-0000000000000001-01", // all-zero trace
		"00-" + MintTraceID(1, 2) + "-0000000000000000-01",       // all-zero parent
		"00-" + strings.ToUpper(MintTraceID(10, 11)) + "-0000000000000001-01", // uppercase hex
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
}
