package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Span stages. The serving daemon decomposes one request lifecycle into
// these child stages under a StageRequest root; the tenant registry emits
// the hydration/eviction stages. The set is closed on purpose: stage is a
// metric label (mecd_span_seconds{stage=...}), so its cardinality is fixed
// here, never by request content.
const (
	// StageRequest is the root span of one sampled HTTP request, opened by
	// the middleware and closed when the handler returns.
	StageRequest = "request"
	// StageQueueWait covers enqueue-to-claim time in the command queue.
	StageQueueWait = "queue_wait"
	// StageWALAppend and StageWALFsync cover the write-ahead log write and
	// its fsync, timed by the wal package's OnAppend/OnSync hooks.
	StageWALAppend = "wal_append"
	StageWALFsync  = "wal_fsync"
	// StageApply covers the command function mutating loop state.
	StageApply = "apply"
	// StagePublish covers the batched read-View rebuild and store.
	StagePublish = "publish"
	// StageBestResponse covers the equilibrium scan inside an admission.
	StageBestResponse = "best_response"
	// StageEpochSolve covers the LCF/Appro re-equilibration of an epoch;
	// StageSnapshot its post-epoch snapshot write; StageEpoch the whole
	// background (ticker) epoch when no HTTP request carries it.
	StageEpochSolve = "epoch_solve"
	StageSnapshot   = "snapshot"
	StageEpoch      = "epoch"
	// StageTenantHydrate and StageTenantEvict are the registry's lifecycle
	// stages: building a tenant daemon from snapshot+WAL, and gracefully
	// stopping one under the resident cap.
	StageTenantHydrate = "tenant_hydrate"
	StageTenantEvict   = "tenant_evict"
)

// AttrKind types a span attribute's value.
type AttrKind uint8

// Attribute value kinds.
const (
	AttrString AttrKind = iota
	AttrInt
	AttrFloat
)

// Attr is one typed span attribute. The flat value layout (no interface
// field) keeps attribute slices allocation-predictable and lets spans
// round-trip through JSON without type erasure.
type Attr struct {
	Key   string
	Kind  AttrKind
	Str   string
	Int   int64
	Float float64
}

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, Kind: AttrString, Str: v} }

// Int64 builds an integer attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, Kind: AttrInt, Int: v} }

// Float64 builds a float attribute.
func Float64(key string, v float64) Attr { return Attr{Key: key, Kind: AttrFloat, Float: v} }

// Value returns the attribute's dynamic value.
func (a Attr) Value() any {
	switch a.Kind {
	case AttrInt:
		return a.Int
	case AttrFloat:
		return a.Float
	default:
		return a.Str
	}
}

// MarshalJSON renders the attribute as {"key": k, "value": v} with the
// value typed per Kind.
func (a Attr) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Key   string `json:"key"`
		Value any    `json:"value"`
	}{a.Key, a.Value()})
}

// UnmarshalJSON parses the {"key","value"} form back, recovering the kind
// from the JSON value type (integers without fraction come back as AttrInt).
func (a *Attr) UnmarshalJSON(data []byte) error {
	var raw struct {
		Key   string          `json:"key"`
		Value json.RawMessage `json:"value"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	a.Key = raw.Key
	var s string
	if err := json.Unmarshal(raw.Value, &s); err == nil {
		*a = String(raw.Key, s)
		return nil
	}
	var num json.Number
	if err := json.Unmarshal(raw.Value, &num); err != nil {
		return fmt.Errorf("obs: attr %q: unsupported value %s", raw.Key, raw.Value)
	}
	if i, err := num.Int64(); err == nil {
		*a = Int64(raw.Key, i)
		return nil
	}
	f, err := num.Float64()
	if err != nil {
		return fmt.Errorf("obs: attr %q: %w", raw.Key, err)
	}
	*a = Float64(raw.Key, f)
	return nil
}

// Span is one timed stage of a request lifecycle. IDs are monotone per
// SpanRing (allocated at span start via StartID, so a parent's ID exists
// before its children record); Parent links a child to its parent span
// within the same trace, 0 marking a root. Trace is the W3C trace ID that
// correlates spans across processes (mecload mints it, the daemon's
// middleware adopts it) and across the log stream (request log records
// carry the same ID). Start and Duration are wall clock — informational
// only, never fed back into any algorithm.
type Span struct {
	ID       uint64    `json:"id"`
	Parent   uint64    `json:"parent,omitempty"`
	Trace    string    `json:"trace"`
	Stage    string    `json:"stage"`
	Start    time.Time `json:"start"`
	Duration float64   `json:"durationSeconds"`
	Attrs    []Attr    `json:"attrs,omitempty"`
}

// SpanRing retains the last-N completed spans with lock-free reads: each
// slot is an atomic pointer, writers claim slots with an atomic cursor, and
// Snapshot only loads pointers — a scrape never blocks the event loop. A
// nil ring, or one with no capacity, is disabled: StartID returns 0,
// Record is a no-op, and neither allocates, which is what keeps the
// admission hot path at zero allocations when tracing is off.
type SpanRing struct {
	slots []atomic.Pointer[Span]
	// ids allocates span IDs (the high-water sequence); wr counts completed
	// spans and picks the slot each lands in. They differ transiently while
	// spans are open, and permanently if a started span is never recorded.
	ids atomic.Uint64
	wr  atomic.Uint64
}

// NewSpanRing returns a ring retaining the last `capacity` completed
// spans; capacity <= 0 returns a disabled ring.
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		return &SpanRing{}
	}
	return &SpanRing{slots: make([]atomic.Pointer[Span], capacity)}
}

// Enabled reports whether the ring retains spans.
func (r *SpanRing) Enabled() bool { return r != nil && len(r.slots) > 0 }

// Cap returns the retention capacity (0 when disabled).
func (r *SpanRing) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// StartID allocates the next span ID (0 when the ring is disabled).
// Allocating at start time, not record time, is what lets a parent hand
// its ID to children that finish before it does.
func (r *SpanRing) StartID() uint64 {
	if !r.Enabled() {
		return 0
	}
	return r.ids.Add(1)
}

// HighWater returns the highest span ID ever allocated.
func (r *SpanRing) HighWater() uint64 {
	if r == nil {
		return 0
	}
	return r.ids.Load()
}

// Recorded returns how many completed spans were ever recorded (retained
// or since evicted).
func (r *SpanRing) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.wr.Load()
}

// Record retains a completed span, evicting the oldest-completed beyond
// capacity. A zero ID is assigned from the ID sequence (the span had no
// children to hand its ID to, so allocating late is equivalent).
func (r *SpanRing) Record(s Span) {
	if !r.Enabled() {
		return
	}
	if s.ID == 0 {
		s.ID = r.ids.Add(1)
	}
	slot := (r.wr.Add(1) - 1) % uint64(len(r.slots))
	r.slots[slot].Store(&s)
}

// Snapshot returns up to n retained spans, newest-started first (ID
// descending), keeping only spans of the given trace ID ("" keeps all
// traces) with Duration >= minDur. n <= 0 returns every retained match.
func (r *SpanRing) Snapshot(n int, trace string, minDur float64) []Span {
	if !r.Enabled() {
		return nil
	}
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		p := r.slots[i].Load()
		if p == nil {
			continue
		}
		if trace != "" && p.Trace != trace {
			continue
		}
		if p.Duration < minDur {
			continue
		}
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// MintTraceID derives a 32-hex-character W3C trace ID from two words. It
// is a pure function, so a load generator minting from (seed, admission
// index) produces the same trace IDs on every run — trace identity is
// reproducible even though span timings are not. The all-zero ID is
// invalid per W3C and is nudged to ...0001.
func MintTraceID(hi, lo uint64) string {
	if hi == 0 && lo == 0 {
		lo = 1
	}
	return fmt.Sprintf("%016x%016x", hi, lo)
}

// FormatTraceparent renders a W3C traceparent header value
// ("00-<trace-id>-<parent-id>-01") for the given 32-hex trace ID and
// non-zero parent span ID.
func FormatTraceparent(trace string, parent uint64) string {
	if parent == 0 {
		parent = 1 // the all-zero parent-id is invalid per W3C
	}
	return fmt.Sprintf("00-%s-%016x-01", trace, parent)
}

// ParseTraceparent extracts the trace-id and parent-id fields of a W3C
// traceparent header value. It accepts exactly the version-00 shape
// FormatTraceparent emits — "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex —
// and rejects the all-zero trace and parent IDs the spec forbids. ok is
// false for anything else (absent header included), which callers treat as
// "not sampled", never as an error.
func ParseTraceparent(h string) (trace, parent string, ok bool) {
	const n = 2 + 1 + 32 + 1 + 16 + 1 + 2
	if len(h) != n || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	trace, parent = h[3:35], h[36:52]
	if !isHex(trace) || !isHex(parent) || !isHex(h[53:]) {
		return "", "", false
	}
	if allZero(trace) || allZero(parent) {
		return "", "", false
	}
	return trace, parent, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
