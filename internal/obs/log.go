package obs

import (
	"fmt"
	"io"
	"log/slog"
	"runtime/debug"
	"strings"
)

// NewLogger builds a slog.Logger from the conventional -log-level and
// -log-format flag values. Levels: debug, info, warn, error. Formats:
// text, json. The empty string selects info/text.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// ParseLevel maps a -log-level flag value to a slog level.
func ParseLevel(level string) (slog.Level, error) {
	switch strings.ToLower(level) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", level)
	}
}

// NopLogger returns a logger that discards everything — the default for
// library consumers that configure no logger, keeping tests and embedded
// use silent without nil checks at every call site.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// BuildInfo identifies the running binary.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"goVersion"`
	// Revision is the VCS commit, "unknown" when not stamped (e.g. `go
	// test` builds), with a "+dirty" suffix for modified working trees.
	Revision string `json:"revision"`
}

// Build reads the binary's identity from the embedded module build info.
func Build() BuildInfo {
	b := BuildInfo{Version: "unknown", GoVersion: "unknown", Revision: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	if info.GoVersion != "" {
		b.GoVersion = info.GoVersion
	}
	revision, modified := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		if modified {
			revision += "+dirty"
		}
		b.Revision = revision
	}
	return b
}
