package dynamic

import (
	"math"
	"testing"

	"mecache/internal/fault"
	"mecache/internal/mec"
	"mecache/internal/workload"
)

// TestConfigValidateRejectionEdges covers the rejection paths the original
// table misses: infinities, negative xi, workload propagation, and the
// fault-model edges.
func TestConfigValidateRejectionEdges(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"Inf horizon", func(c *Config) { c.Horizon = math.Inf(1) }},
		{"negative Inf horizon", func(c *Config) { c.Horizon = math.Inf(-1) }},
		{"Inf rate", func(c *Config) { c.ArrivalRate = math.Inf(1) }},
		{"Inf lifetime", func(c *Config) { c.MeanLifetime = math.Inf(1) }},
		{"Inf epoch", func(c *Config) { c.Epoch = math.Inf(1) }},
		{"negative xi", func(c *Config) { c.Xi = -0.1 }},
		{"Inf diurnal", func(c *Config) { c.DiurnalPeriod = math.Inf(1) }},
		{"NaN diurnal", func(c *Config) { c.DiurnalPeriod = math.NaN() }},
		{"workload: zero providers", func(c *Config) { c.Workload.NumProviders = 0 }},
		{"workload: inverted range", func(c *Config) { c.Workload.InstCost = workload.Range{Lo: 2, Hi: 1} }},
		{"workload: zero requests", func(c *Config) { c.Workload.Requests.Lo = 0 }},
		{"workload: NaN range", func(c *Config) { c.Workload.DataGB.Lo = math.NaN() }},
		{"fault: unknown policy", func(c *Config) { c.Fault = fault.DefaultConfig(); c.Fault.Policy = fault.Policy(99) }},
		{"fault: outages without repair", func(c *Config) { c.Fault.CloudletMTBF = 10; c.Fault.CloudletMTTR = 0 }},
		{"fault: NaN detection delay", func(c *Config) { c.Fault.DetectionDelay = math.NaN() }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(1)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s accepted by Validate", tc.name)
		}
		if _, err := New(nil, cfg); err == nil {
			t.Errorf("%s accepted by New", tc.name)
		}
	}
}

// epochMarket builds a small market for the Reequilibrate unit tests.
func epochMarket(t *testing.T) (*mec.Market, mec.Placement) {
	t.Helper()
	cfg := workload.Default(42)
	cfg.NumProviders = 30
	m, err := workload.GenerateGTITM(60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl := make(mec.Placement, len(m.Providers))
	for l := range pl {
		pl[l] = mec.Remote
	}
	return m, pl
}

func TestReequilibrateDoesNotMutateInput(t *testing.T) {
	m, pl := epochMarket(t)
	before := pl.Clone()
	next, st, err := Reequilibrate(m, pl, EpochOptions{Xi: 0.7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pl {
		if pl[i] != before[i] {
			t.Fatalf("input placement mutated at %d", i)
		}
	}
	if len(next) != len(pl) {
		t.Fatalf("placement length changed: %d -> %d", len(pl), len(next))
	}
	if st.SocialCost != m.SocialCost(next) {
		t.Fatalf("reported social cost %v != recomputed %v", st.SocialCost, m.SocialCost(next))
	}
	if st.Reconfigurations == 0 {
		t.Fatal("re-equilibrating an all-remote market moved nobody")
	}
}

func TestReequilibrateDeterministic(t *testing.T) {
	m, pl := epochMarket(t)
	a, _, err := Reequilibrate(m, pl, EpochOptions{Xi: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Reequilibrate(m, pl, EpochOptions{Xi: 0.7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at provider %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestReequilibrateHonorsFrozenAndFailed(t *testing.T) {
	m, pl := epochMarket(t)
	// First pass, unconstrained, to get a placement with cached providers.
	next, _, err := Reequilibrate(m, pl, EpochOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	frozen := make([]bool, len(next))
	for i := range frozen {
		frozen[i] = i%3 == 0
	}
	failed := make([]bool, m.Net.NumCloudlets())
	failed[0] = true
	out, _, err := Reequilibrate(m, next, EpochOptions{Xi: 0.7, Seed: 2, Frozen: frozen, Failed: failed})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if frozen[i] && out[i] != next[i] {
			t.Fatalf("frozen provider %d moved %d -> %d", i, next[i], out[i])
		}
		if out[i] != mec.Remote && failed[out[i]] && next[i] != out[i] {
			t.Fatalf("provider %d newly assigned to failed cloudlet %d", i, out[i])
		}
	}
}

func TestReequilibrateHysteresisSuppresses(t *testing.T) {
	m, pl := epochMarket(t)
	next, _, err := Reequilibrate(m, pl, EpochOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Re-equilibrate from the settled placement with a different seed: the
	// aware run must move no provider whose saving is below its
	// re-instantiation cost, and every suppressed move is counted.
	aware, stA, err := Reequilibrate(m, next, EpochOptions{Xi: 0.7, Seed: 5, MigrationAware: true})
	if err != nil {
		t.Fatal(err)
	}
	blind, stB, err := Reequilibrate(m, next, EpochOptions{Xi: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if stA.Reconfigurations > stB.Reconfigurations {
		t.Fatalf("hysteresis increased churn: %d > %d", stA.Reconfigurations, stB.Reconfigurations)
	}
	if stA.Reconfigurations+stA.MigrationsSuppressed < stB.Reconfigurations {
		t.Fatalf("suppressed moves unaccounted: %d applied + %d suppressed < %d blind moves",
			stA.Reconfigurations, stA.MigrationsSuppressed, stB.Reconfigurations)
	}
	changed := 0
	for i := range aware {
		if aware[i] != next[i] {
			changed++
		}
	}
	if changed != stA.Reconfigurations {
		t.Fatalf("stats report %d reconfigurations, placement shows %d", stA.Reconfigurations, changed)
	}
	_ = blind
}

func TestBestResponseAvoidingFailedSkipsDownCloudlets(t *testing.T) {
	m, pl := epochMarket(t)
	next, _, err := Reequilibrate(m, pl, EpochOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Find a provider that would cache somewhere, then fail that cloudlet:
	// its constrained best response must avoid it.
	for l := range next {
		choice := BestResponseAvoidingFailed(m, next, l, nil)
		if choice == mec.Remote {
			continue
		}
		failed := make([]bool, m.Net.NumCloudlets())
		failed[choice] = true
		masked := BestResponseAvoidingFailed(m, next, l, failed)
		if masked == choice {
			t.Fatalf("provider %d still placed at failed cloudlet %d", l, choice)
		}
		return
	}
	t.Fatal("no provider preferred caching; market too small for the test")
}
