package dynamic

import (
	"testing"
	"testing/quick"

	"mecache/internal/mec"
	"mecache/internal/workload"
)

func TestRunBasic(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Horizon = 100
	sim, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Arrivals == 0 {
		t.Fatal("no arrivals over 100 time units at rate 1")
	}
	if m.Epochs == 0 {
		t.Fatal("no re-optimization epochs")
	}
	if m.TimeAvgSocialCost <= 0 {
		t.Fatalf("time-averaged social cost %v", m.TimeAvgSocialCost)
	}
	if m.CachedFraction < 0 || m.CachedFraction > 1 {
		t.Fatalf("cached fraction %v", m.CachedFraction)
	}
	if m.FinalActive != m.Arrivals-m.Departures-0 && m.FinalActive > m.PeakActive {
		t.Fatalf("bookkeeping: final=%d arrivals=%d departures=%d peak=%d",
			m.FinalActive, m.Arrivals, m.Departures, m.PeakActive)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() *Metrics {
		cfg := DefaultConfig(7)
		cfg.Horizon = 60
		sim, err := New(nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if *a != *b {
		t.Fatalf("same seed, different metrics:\n%+v\n%+v", a, b)
	}
}

func TestMaxActiveCap(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Horizon = 80
	cfg.ArrivalRate = 5
	cfg.MeanLifetime = 100 // long-lived: the cap must bind
	cfg.MaxActive = 20
	sim, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.PeakActive > 20 {
		t.Fatalf("peak active %d exceeds cap 20", m.PeakActive)
	}
	if m.Rejections == 0 {
		t.Fatal("cap never bound despite overload")
	}
}

func TestEpochsReduceCost(t *testing.T) {
	// Coordinated re-optimization should not make the market worse than a
	// purely selfish one on average.
	run := func(epoch float64) float64 {
		total := 0.0
		for rep := 0; rep < 3; rep++ {
			cfg := DefaultConfig(uint64(rep) + 11)
			cfg.Horizon = 100
			cfg.Epoch = epoch
			sim, err := New(nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			m, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			total += m.TimeAvgSocialCost
		}
		return total / 3
	}
	coordinated := run(20)
	selfish := run(0)
	if coordinated > selfish*1.05 {
		t.Fatalf("epoch re-optimization raised the average cost: %v vs selfish %v", coordinated, selfish)
	}
}

func TestNoEpochsMeansNoReconfigurations(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Horizon = 50
	cfg.Epoch = 0
	sim, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Epochs != 0 || m.Reconfigurations != 0 {
		t.Fatalf("selfish-only run reported epochs=%d reconfigs=%d", m.Epochs, m.Reconfigurations)
	}
}

func TestValidation(t *testing.T) {
	bad := DefaultConfig(1)
	bad.Horizon = 0
	if _, err := New(nil, bad); err == nil {
		t.Fatal("zero horizon accepted")
	}
	bad2 := DefaultConfig(1)
	bad2.Xi = 2
	if _, err := New(nil, bad2); err == nil {
		t.Fatal("xi > 1 accepted")
	}
	bad3 := DefaultConfig(1)
	bad3.ArrivalRate = -1
	if _, err := New(nil, bad3); err == nil {
		t.Fatal("negative arrival rate accepted")
	}
}

// Property: capacity constraints hold at the end of every run (the selfish
// joins are capacity-aware and LCF epochs respect Eq. 7).
func TestCapacityInvariantProperty(t *testing.T) {
	check := func(seed uint64) bool {
		cfg := DefaultConfig(seed)
		cfg.Horizon = 40
		cfg.Workload = workload.Default(seed)
		sim, err := New(nil, cfg)
		if err != nil {
			return false
		}
		if _, err := sim.Run(); err != nil {
			return false
		}
		m, pl, err := sim.market()
		if err != nil {
			return false
		}
		if m == nil {
			return true // nobody active at the horizon
		}
		return m.CheckCapacity(pl, 0) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestArrivalsJoinSelfishly(t *testing.T) {
	// After a run, no active provider should have an improving deviation
	// larger than what churn since the last epoch explains; as a sanity
	// check we at least verify all strategies are valid.
	cfg := DefaultConfig(9)
	cfg.Horizon = 60
	sim, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	m, pl, err := sim.market()
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Skip("no active providers at horizon")
	}
	if err := m.Validate(pl); err != nil {
		t.Fatal(err)
	}
	for _, c := range pl {
		if c != mec.Remote && (c < 0 || c >= m.Net.NumCloudlets()) {
			t.Fatalf("invalid strategy %d", c)
		}
	}
}

func BenchmarkDynamicRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(uint64(i))
		cfg.Horizon = 50
		sim, err := New(nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMigrationAwareReducesChurn(t *testing.T) {
	run := func(aware bool) *Metrics {
		cfg := DefaultConfig(31)
		cfg.Horizon = 120
		cfg.MigrationAware = aware
		sim, err := New(nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	free := run(false)
	aware := run(true)
	if aware.Reconfigurations > free.Reconfigurations {
		t.Fatalf("hysteresis increased churn: %d vs %d", aware.Reconfigurations, free.Reconfigurations)
	}
	if aware.MigrationsSuppressed == 0 {
		t.Fatal("hysteresis never suppressed a move")
	}
	if aware.MigrationCost > free.MigrationCost {
		t.Fatalf("hysteresis raised migration spend: %v vs %v", aware.MigrationCost, free.MigrationCost)
	}
	// The static cost may be slightly worse under hysteresis but must stay
	// in the same ballpark (within 10%).
	if aware.TimeAvgSocialCost > free.TimeAvgSocialCost*1.10 {
		t.Fatalf("hysteresis degraded average cost too much: %v vs %v",
			aware.TimeAvgSocialCost, free.TimeAvgSocialCost)
	}
}

func TestMigrationCostAccounted(t *testing.T) {
	cfg := DefaultConfig(33)
	cfg.Horizon = 100
	sim, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Reconfigurations > 0 && m.MigrationCost <= 0 {
		t.Fatalf("%d reconfigurations but zero migration cost", m.Reconfigurations)
	}
}

func TestDiurnalArrivals(t *testing.T) {
	cfg := DefaultConfig(41)
	cfg.Horizon = 150
	cfg.DiurnalPeriod = 50
	sim, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Arrivals == 0 {
		t.Fatal("diurnal market saw no arrivals")
	}
	// The modulated process averages the base rate, so total arrivals stay
	// in the same ballpark as the flat process.
	flatCfg := DefaultConfig(41)
	flatCfg.Horizon = 150
	flatSim, err := New(nil, flatCfg)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := flatSim.Run()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := flat.Arrivals/2, flat.Arrivals*2
	if m.Arrivals < lo || m.Arrivals > hi {
		t.Fatalf("diurnal arrivals %d far from flat %d", m.Arrivals, flat.Arrivals)
	}
}
