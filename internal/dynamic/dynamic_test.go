package dynamic

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/fault"
	"mecache/internal/mec"
	"mecache/internal/workload"
)

func TestRunBasic(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Horizon = 100
	sim, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Arrivals == 0 {
		t.Fatal("no arrivals over 100 time units at rate 1")
	}
	if m.Epochs == 0 {
		t.Fatal("no re-optimization epochs")
	}
	if m.TimeAvgSocialCost <= 0 {
		t.Fatalf("time-averaged social cost %v", m.TimeAvgSocialCost)
	}
	if m.CachedFraction < 0 || m.CachedFraction > 1 {
		t.Fatalf("cached fraction %v", m.CachedFraction)
	}
	if m.FinalActive != m.Arrivals-m.Departures-0 && m.FinalActive > m.PeakActive {
		t.Fatalf("bookkeeping: final=%d arrivals=%d departures=%d peak=%d",
			m.FinalActive, m.Arrivals, m.Departures, m.PeakActive)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() *Metrics {
		cfg := DefaultConfig(7)
		cfg.Horizon = 60
		sim, err := New(nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if *a != *b {
		t.Fatalf("same seed, different metrics:\n%+v\n%+v", a, b)
	}
}

func TestMaxActiveCap(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Horizon = 80
	cfg.ArrivalRate = 5
	cfg.MeanLifetime = 100 // long-lived: the cap must bind
	cfg.MaxActive = 20
	sim, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.PeakActive > 20 {
		t.Fatalf("peak active %d exceeds cap 20", m.PeakActive)
	}
	if m.Rejections == 0 {
		t.Fatal("cap never bound despite overload")
	}
}

func TestEpochsReduceCost(t *testing.T) {
	// Coordinated re-optimization should not make the market worse than a
	// purely selfish one on average.
	run := func(epoch float64) float64 {
		total := 0.0
		for rep := 0; rep < 3; rep++ {
			cfg := DefaultConfig(uint64(rep) + 11)
			cfg.Horizon = 100
			cfg.Epoch = epoch
			sim, err := New(nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			m, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			total += m.TimeAvgSocialCost
		}
		return total / 3
	}
	coordinated := run(20)
	selfish := run(0)
	if coordinated > selfish*1.05 {
		t.Fatalf("epoch re-optimization raised the average cost: %v vs selfish %v", coordinated, selfish)
	}
}

func TestNoEpochsMeansNoReconfigurations(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Horizon = 50
	cfg.Epoch = 0
	sim, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Epochs != 0 || m.Reconfigurations != 0 {
		t.Fatalf("selfish-only run reported epochs=%d reconfigs=%d", m.Epochs, m.Reconfigurations)
	}
}

func TestValidation(t *testing.T) {
	bad := DefaultConfig(1)
	bad.Horizon = 0
	if _, err := New(nil, bad); err == nil {
		t.Fatal("zero horizon accepted")
	}
	bad2 := DefaultConfig(1)
	bad2.Xi = 2
	if _, err := New(nil, bad2); err == nil {
		t.Fatal("xi > 1 accepted")
	}
	bad3 := DefaultConfig(1)
	bad3.ArrivalRate = -1
	if _, err := New(nil, bad3); err == nil {
		t.Fatal("negative arrival rate accepted")
	}
}

// Property: capacity constraints hold at the end of every run (the selfish
// joins are capacity-aware and LCF epochs respect Eq. 7).
func TestCapacityInvariantProperty(t *testing.T) {
	check := func(seed uint64) bool {
		cfg := DefaultConfig(seed)
		cfg.Horizon = 40
		cfg.Workload = workload.Default(seed)
		sim, err := New(nil, cfg)
		if err != nil {
			return false
		}
		if _, err := sim.Run(); err != nil {
			return false
		}
		m, pl := sim.m, sim.pl
		if m == nil {
			return true // nobody active at the horizon
		}
		return m.CheckCapacity(pl, 0) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestArrivalsJoinSelfishly(t *testing.T) {
	// After a run, no active provider should have an improving deviation
	// larger than what churn since the last epoch explains; as a sanity
	// check we at least verify all strategies are valid.
	cfg := DefaultConfig(9)
	cfg.Horizon = 60
	sim, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	m, pl := sim.m, sim.pl
	if m == nil {
		t.Skip("no active providers at horizon")
	}
	if err := m.Validate(pl); err != nil {
		t.Fatal(err)
	}
	for _, c := range pl {
		if c != mec.Remote && (c < 0 || c >= m.Net.NumCloudlets()) {
			t.Fatalf("invalid strategy %d", c)
		}
	}
}

func BenchmarkDynamicRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(uint64(i))
		cfg.Horizon = 50
		sim, err := New(nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMigrationAwareReducesChurn(t *testing.T) {
	run := func(aware bool) *Metrics {
		cfg := DefaultConfig(31)
		cfg.Horizon = 120
		cfg.MigrationAware = aware
		sim, err := New(nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	free := run(false)
	aware := run(true)
	if aware.Reconfigurations > free.Reconfigurations {
		t.Fatalf("hysteresis increased churn: %d vs %d", aware.Reconfigurations, free.Reconfigurations)
	}
	if aware.MigrationsSuppressed == 0 {
		t.Fatal("hysteresis never suppressed a move")
	}
	if aware.MigrationCost > free.MigrationCost {
		t.Fatalf("hysteresis raised migration spend: %v vs %v", aware.MigrationCost, free.MigrationCost)
	}
	// The static cost may be slightly worse under hysteresis but must stay
	// in the same ballpark (within 10%).
	if aware.TimeAvgSocialCost > free.TimeAvgSocialCost*1.10 {
		t.Fatalf("hysteresis degraded average cost too much: %v vs %v",
			aware.TimeAvgSocialCost, free.TimeAvgSocialCost)
	}
}

func TestMigrationCostAccounted(t *testing.T) {
	cfg := DefaultConfig(33)
	cfg.Horizon = 100
	sim, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Reconfigurations > 0 && m.MigrationCost <= 0 {
		t.Fatalf("%d reconfigurations but zero migration cost", m.Reconfigurations)
	}
}

func TestDiurnalArrivals(t *testing.T) {
	cfg := DefaultConfig(41)
	cfg.Horizon = 150
	cfg.DiurnalPeriod = 50
	sim, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Arrivals == 0 {
		t.Fatal("diurnal market saw no arrivals")
	}
	// The modulated process averages the base rate, so total arrivals stay
	// in the same ballpark as the flat process.
	flatCfg := DefaultConfig(41)
	flatCfg.Horizon = 150
	flatSim, err := New(nil, flatCfg)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := flatSim.Run()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := flat.Arrivals/2, flat.Arrivals*2
	if m.Arrivals < lo || m.Arrivals > hi {
		t.Fatalf("diurnal arrivals %d far from flat %d", m.Arrivals, flat.Arrivals)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"NaN horizon", func(c *Config) { c.Horizon = math.NaN() }},
		{"negative rate", func(c *Config) { c.ArrivalRate = -1 }},
		{"NaN rate", func(c *Config) { c.ArrivalRate = math.NaN() }},
		{"zero lifetime", func(c *Config) { c.MeanLifetime = 0 }},
		{"NaN lifetime", func(c *Config) { c.MeanLifetime = math.NaN() }},
		{"negative epoch", func(c *Config) { c.Epoch = -5 }},
		{"NaN epoch", func(c *Config) { c.Epoch = math.NaN() }},
		{"xi above 1", func(c *Config) { c.Xi = 1.5 }},
		{"NaN xi", func(c *Config) { c.Xi = math.NaN() }},
		{"negative max active", func(c *Config) { c.MaxActive = -1 }},
		{"negative diurnal", func(c *Config) { c.DiurnalPeriod = -1 }},
		{"bad fault model", func(c *Config) { c.Fault.CloudletMTBF = -1 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(1)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
		if _, err := New(nil, cfg); err == nil {
			t.Errorf("%s accepted by New", tc.name)
		}
	}
}

// Satellite: the MaxActive rejection path must count rejections, never fail
// the run, and be deterministic under a fixed seed.
func TestMaxActiveRejectionsDeterministic(t *testing.T) {
	run := func() *Metrics {
		cfg := DefaultConfig(17)
		cfg.Horizon = 60
		cfg.ArrivalRate = 6
		cfg.MeanLifetime = 200 // long-lived: the cap must bind hard
		cfg.MaxActive = 15
		sim, err := New(nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatalf("rejections must never be fatal: %v", err)
		}
		return m
	}
	a, b := run(), run()
	if a.Rejections == 0 {
		t.Fatal("overloaded market saw no rejections")
	}
	if a.PeakActive > 15 {
		t.Fatalf("peak active %d exceeds cap", a.PeakActive)
	}
	if *a != *b {
		t.Fatalf("same seed, different metrics:\n%+v\n%+v", a, b)
	}
	if a.Arrivals != a.Departures+a.FinalActive {
		t.Fatalf("accounting: %d arrivals != %d departures + %d final",
			a.Arrivals, a.Departures, a.FinalActive)
	}
}

// faultyConfig returns a failure-prone market that still runs quickly.
func faultyConfig(seed uint64, policy fault.Policy) Config {
	cfg := DefaultConfig(seed)
	cfg.Horizon = 80
	cfg.Fault = fault.Config{
		CloudletMTBF:   40,
		CloudletMTTR:   6,
		InstanceMTBF:   60,
		DetectionDelay: 0.5,
		WaitTimeout:    15,
		Policy:         policy,
	}
	return cfg
}

func TestFaultPoliciesRun(t *testing.T) {
	for _, policy := range fault.Policies() {
		t.Run(policy.String(), func(t *testing.T) {
			sim, err := New(nil, faultyConfig(21, policy))
			if err != nil {
				t.Fatal(err)
			}
			m, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			if m.CloudletOutages == 0 {
				t.Fatal("no cloudlet outages at MTBF 40 over horizon 80")
			}
			if m.Failovers == 0 {
				t.Fatal("outages hit nobody: no failovers recorded")
			}
			if m.Availability < 0 || m.Availability > 1 {
				t.Fatalf("availability %v outside [0,1]", m.Availability)
			}
			if m.Availability == 1 {
				t.Fatal("failures with a positive detection delay left availability at 1")
			}
			if m.SLAViolationFraction < 0 || m.SLAViolationFraction > 1 {
				t.Fatalf("SLA violation fraction %v outside [0,1]", m.SLAViolationFraction)
			}
			if m.SLAViolationFraction < 1-m.Availability-1e-12 {
				t.Fatalf("violations %v below unavailability %v", m.SLAViolationFraction, 1-m.Availability)
			}
			if m.MeanTimeToRecover < 0.5-1e-9 {
				t.Fatalf("mean time to recover %v below the detection delay", m.MeanTimeToRecover)
			}
			// No surviving provider may sit on a failed cloudlet.
			for _, lp := range sim.live {
				if lp.choice != mec.Remote && sim.failedCl[lp.choice] {
					t.Fatalf("provider %d still cached at failed cloudlet %d", lp.id, lp.choice)
				}
			}
		})
	}
}

func TestFaultRunDeterministic(t *testing.T) {
	for _, policy := range fault.Policies() {
		run := func() *Metrics {
			sim, err := New(nil, faultyConfig(33, policy))
			if err != nil {
				t.Fatal(err)
			}
			m, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		a, b := run(), run()
		if *a != *b {
			t.Fatalf("%v: same seed, different metrics:\n%+v\n%+v", policy, a, b)
		}
	}
}

func TestFaultFreeRunUnaffected(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Horizon = 60
	sim, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.CloudletOutages != 0 || m.InstanceCrashes != 0 || m.Failovers != 0 {
		t.Fatalf("fault-free run reported failures: %+v", m)
	}
	if m.Availability != 1 || m.SLAViolationFraction != 0 || m.MeanTimeToRecover != 0 {
		t.Fatalf("fault-free run degraded: %+v", m)
	}
}

func TestWaitForRepairTradesRecoveryForStability(t *testing.T) {
	run := func(policy fault.Policy) *Metrics {
		sim, err := New(nil, faultyConfig(51, policy))
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	replace := run(fault.PolicyReplace)
	wait := run(fault.PolicyWaitForRepair)
	// Waiting providers recover only when their cloudlet repairs (or the
	// timeout fires), so recovery is necessarily slower than re-placement,
	// which completes at the detection delay.
	if wait.MeanTimeToRecover < replace.MeanTimeToRecover {
		t.Fatalf("wait-for-repair recovered faster (%v) than re-place (%v)",
			wait.MeanTimeToRecover, replace.MeanTimeToRecover)
	}
	// And only the wait policy accrues degraded (waiting) time beyond the
	// shared detection windows.
	if wait.SLAViolationFraction <= 1-wait.Availability {
		t.Fatal("wait-for-repair accrued no waiting time")
	}
}

func TestInstanceCrashesOnly(t *testing.T) {
	cfg := DefaultConfig(61)
	cfg.Horizon = 80
	cfg.Fault = fault.Config{
		InstanceMTBF:   30,
		DetectionDelay: 0.2,
		Policy:         fault.PolicyReplace,
	}
	sim, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.InstanceCrashes == 0 {
		t.Fatal("no instance crashes at MTBF 30 over horizon 80")
	}
	if m.CloudletOutages != 0 {
		t.Fatal("cloudlet outages occurred with the process disabled")
	}
	if m.Failovers == 0 {
		t.Fatal("crashes recorded no failovers")
	}
}
