// Package dynamic simulates the temporal dimension of the paper's market:
// services are cached only "temporarily while keeping the original instances
// of the services" (Section I) — providers arrive, lease edge resources for
// a while, and depart, at which point the cached instance is destroyed and
// the original in the remote cloud carries on.
//
// The simulator drives a Poisson arrival process and exponential lifetimes
// over virtual time on the discrete-event kernel. Newly arrived providers
// join selfishly (a capacity-aware best response against the current
// loads); every re-optimization epoch the infrastructure provider re-runs
// the LCF mechanism over the currently active providers. The headline
// output is the market's *stability*: the time-averaged social cost and the
// fraction of providers forced to move at each epoch.
package dynamic

import (
	"fmt"
	"math"

	"mecache/internal/core"
	"mecache/internal/fault"
	"mecache/internal/game"
	"mecache/internal/mec"
	"mecache/internal/obs"
	"mecache/internal/rng"
	"mecache/internal/sim"
	"mecache/internal/topology"
	"mecache/internal/workload"
)

// Config parameterizes a dynamic market run.
type Config struct {
	// Horizon is the virtual duration of the simulation.
	Horizon float64
	// ArrivalRate is the mean provider arrival rate (Poisson).
	ArrivalRate float64
	// MeanLifetime is the mean service lifetime (exponential).
	MeanLifetime float64
	// Epoch is the period of the leader's LCF re-optimization; zero
	// disables epochs (the market stays purely selfish).
	Epoch float64
	// Xi is the coordinated fraction used at each epoch.
	Xi float64
	// Seed drives all randomness.
	Seed uint64
	// Workload supplies the provider population's parameter ranges.
	Workload workload.Config
	// MaxActive caps concurrent providers; arrivals beyond it are rejected
	// (counted, not fatal). Zero means no cap.
	MaxActive int
	// EpochWorkers sets the worker width of the sharded best-response round
	// inside each epoch's LCF call. Values <= 1 run serially; every width
	// produces bit-identical results, so this is purely a wall-clock knob.
	EpochWorkers int
	// MigrationAware adds hysteresis to the epochs: a provider is migrated
	// to its new LCF strategy only when the move reduces its own cost by
	// more than its re-instantiation cost c_l^ins. This trades a slightly
	// worse static cost for a much calmer market — the stability the paper
	// is after.
	MigrationAware bool
	// Diurnal modulates the arrival rate sinusoidally over the horizon
	// (one full day cycle per DiurnalPeriod, peak at 2x the base rate,
	// trough near 0), approximating the day/night demand swing real edge
	// markets see. Zero period disables it.
	DiurnalPeriod float64
	// Fault configures the failure model: cloudlet outages and repairs,
	// cached-instance crashes, and the failover policy affected providers
	// follow. The zero value disables faults entirely; enabling them never
	// perturbs the arrival/lifetime draws of a fault-free run (faults use a
	// dedicated random stream).
	Fault fault.Config
}

// Validate rejects configurations the simulator cannot run meaningfully:
// non-positive or NaN horizon, arrival rate, or mean lifetime (the kernel
// would loop forever or the averages would be NaN), Xi outside [0,1],
// negative epochs, and invalid fault models.
func (cfg Config) Validate() error {
	pos := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("dynamic: %s must be positive and finite, got %v", name, v)
		}
		return nil
	}
	if err := pos("Horizon", cfg.Horizon); err != nil {
		return err
	}
	if err := pos("ArrivalRate", cfg.ArrivalRate); err != nil {
		return err
	}
	if err := pos("MeanLifetime", cfg.MeanLifetime); err != nil {
		return err
	}
	if math.IsNaN(cfg.Epoch) || math.IsInf(cfg.Epoch, 0) || cfg.Epoch < 0 {
		return fmt.Errorf("dynamic: Epoch must be non-negative and finite, got %v", cfg.Epoch)
	}
	if math.IsNaN(cfg.Xi) || cfg.Xi < 0 || cfg.Xi > 1 {
		return fmt.Errorf("dynamic: Xi %v outside [0,1]", cfg.Xi)
	}
	if math.IsNaN(cfg.DiurnalPeriod) || math.IsInf(cfg.DiurnalPeriod, 0) || cfg.DiurnalPeriod < 0 {
		return fmt.Errorf("dynamic: DiurnalPeriod must be non-negative and finite, got %v", cfg.DiurnalPeriod)
	}
	if cfg.MaxActive < 0 {
		return fmt.Errorf("dynamic: MaxActive must be non-negative, got %d", cfg.MaxActive)
	}
	if cfg.EpochWorkers < 0 {
		return fmt.Errorf("dynamic: EpochWorkers must be non-negative, got %d", cfg.EpochWorkers)
	}
	if err := cfg.Workload.Validate(); err != nil {
		return err
	}
	return cfg.Fault.Validate()
}

// DefaultConfig returns a moderately loaded dynamic market.
func DefaultConfig(seed uint64) Config {
	return Config{
		Horizon:      200,
		ArrivalRate:  1.0,
		MeanLifetime: 40,
		Epoch:        20,
		Xi:           0.7,
		Seed:         seed,
		Workload:     workload.Default(seed),
		MaxActive:    150,
	}
}

// Metrics summarizes a run.
type Metrics struct {
	Arrivals    int
	Departures  int
	Rejections  int
	Epochs      int
	PeakActive  int
	FinalActive int
	// TimeAvgSocialCost integrates the social cost over virtual time and
	// divides by the horizon.
	TimeAvgSocialCost float64
	// Reconfigurations counts providers whose strategy changed at epoch
	// boundaries; ReconfigurationRate normalizes by (active x epochs).
	Reconfigurations    int
	ReconfigurationRate float64
	// CachedFraction is the time-averaged share of active services that
	// are cached at a cloudlet (vs. staying remote).
	CachedFraction float64
	// MigrationCost totals the re-instantiation costs paid by providers
	// that moved at epoch boundaries.
	MigrationCost float64
	// MigrationsSuppressed counts epoch moves skipped by the
	// MigrationAware hysteresis.
	MigrationsSuppressed int

	// Fault/resilience metrics; all zero (Availability = 1) unless
	// Config.Fault enables a failure process.
	//
	// CloudletOutages and CloudletRepairs count whole-cloudlet failure and
	// repair events within the horizon; InstanceCrashes counts individual
	// cached-instance crashes.
	CloudletOutages int
	CloudletRepairs int
	InstanceCrashes int
	// Failovers counts completed recoveries: a provider hit by a failure
	// reached its post-failure steady placement. FailoverReplacements are
	// recoveries that re-cached at a (different or repaired) cloudlet under
	// PolicyReplace; FailbackReturns are wait-for-repair providers that
	// passed the hysteresis check and returned to the repaired cloudlet;
	// WaitTimeouts are waits that gave up and stayed remote.
	Failovers            int
	FailoverReplacements int
	FailbackReturns      int
	WaitTimeouts         int
	// Availability is 1 minus the fraction of active provider-time spent
	// unreachable (the detection window after each failure, before the
	// fallback to the remote original takes effect).
	Availability float64
	// MeanTimeToRecover averages, over completed failovers, the virtual
	// time from the failure to the provider's post-failure steady
	// placement. Under wait-for-repair this includes the wait itself.
	MeanTimeToRecover float64
	// SLAViolationFraction is the fraction of active provider-time spent
	// either unreachable or degraded (served by the remote original while
	// the policy has not yet reached its steady placement, e.g. during a
	// wait-for-repair).
	SLAViolationFraction float64
}

// pstate tracks a live provider's failure-handling state.
type pstate int

const (
	// stateOK: serving normally at its current choice.
	stateOK pstate = iota
	// stateDetecting: its serving instance just failed; the failure is not
	// yet detected, requests are lost (unreachable).
	stateDetecting
	// stateWaiting: served by the remote original while waiting for its
	// failed cloudlet to repair (PolicyWaitForRepair only).
	stateWaiting
)

// liveProvider is an active provider with its current strategy.
type liveProvider struct {
	id     int
	p      mec.Provider
	choice int // cloudlet index or mec.Remote

	// Failure-handling state (stateOK in fault-free runs).
	state      pstate
	failedAt   float64 // time of the failure currently being handled
	waitingFor int     // cloudlet awaited under PolicyWaitForRepair
	waitSeq    int     // invalidates stale timeout/resolution events
}

// Simulator runs one dynamic market. Create with New, run with Run.
type Simulator struct {
	cfg    Config
	net    *mec.Network
	kernel *sim.Kernel
	r      *rng.Source

	live   []*liveProvider
	nextID int

	// Persistent market state: m/pl/ls mirror live exactly (market index i
	// is live[i]) and are delta-updated on every arrival, departure, and
	// move via addProvider/setChoice — never rebuilt per event. All three
	// are nil while the market is empty; a market grown by appends is
	// indistinguishable from one batch-built over the same providers
	// (mec/mutate_test.go), so this is invisible to fixed-seed results.
	m  *mec.Market
	pl mec.Placement
	ls *game.LoadState

	// solve carries the warm-start caches across epochs: GAP reduction
	// fingerprints, the cached transport network, rounding components, and
	// the full LCF result of the previous epoch. Epoch outcomes are
	// byte-identical with or without it.
	solve EpochSolveState

	metrics      Metrics
	lastT        float64
	costIntegral float64
	cachedTime   float64 // integral of cached fraction
	err          error   // first error raised inside a kernel callback

	// Fault machinery (nil/zero when Config.Fault is disabled). fr is the
	// dedicated fault random stream; failedCl mirrors which cloudlets are
	// currently down.
	fr          *rng.Source
	injector    *fault.Injector
	failedCl    []bool
	activeTime  float64 // integral of len(live)
	downTime    float64 // integral of unreachable provider count
	degradTime  float64 // integral of degraded (waiting) provider count
	recoverySum float64 // summed failure->recovery durations
}

// New builds a simulator over the given topology (nil means a default
// GT-ITM network of 150 nodes).
func New(topo *topology.Topology, cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var err error
	if topo == nil {
		topo, err = topology.GTITM(cfg.Seed^0xdddd, 150)
		if err != nil {
			return nil, err
		}
	}
	// Build the physical side once; providers churn on top of it. Reuse
	// the workload generator with one throwaway provider to lay out
	// cloudlets and data centers.
	probe := cfg.Workload
	probe.NumProviders = 1
	m, err := workload.Generate(topo, probe)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:    cfg,
		net:    m.Net,
		kernel: sim.NewKernel(),
		r:      rng.New(cfg.Seed),
		// The fault stream is seeded independently of the main stream so
		// that enabling faults leaves arrival/lifetime draws untouched.
		fr:       rng.New(cfg.Seed ^ 0xfa17fa17fa17fa17),
		failedCl: make([]bool, m.Net.NumCloudlets()),
	}
	return s, nil
}

// addProvider grows the persistent market by one provider (at Remote) and
// returns its index. The first arrival into an empty market boots the
// market and load state.
func (s *Simulator) addProvider(p mec.Provider) (int, error) {
	if s.m == nil {
		m, err := mec.NewMarket(s.net, []mec.Provider{p})
		if err != nil {
			return 0, err
		}
		s.m = m
		s.pl = mec.Placement{mec.Remote}
		s.ls = game.NewLoadState(m)
		return 0, nil
	}
	idx, err := s.m.AppendProvider(p)
	if err != nil {
		return 0, err
	}
	s.pl = append(s.pl, mec.Remote)
	return idx, nil
}

// setChoice moves live[idx] to strategy c, keeping the placement and load
// state in lockstep. Every strategy change in the simulator funnels through
// here.
func (s *Simulator) setChoice(idx, c int) {
	lp := s.live[idx]
	if lp.choice == c {
		return
	}
	s.ls.Move(idx, lp.choice, c)
	lp.choice = c
	s.pl[idx] = c
}

// integrate accrues the cost and cached-fraction integrals up to the
// current virtual time.
func (s *Simulator) integrate() error {
	now := s.kernel.Now()
	dt := now - s.lastT
	if dt <= 0 {
		return nil
	}
	if s.m != nil {
		s.costIntegral += s.m.SocialCost(s.pl) * dt
		cached := 0
		for _, c := range s.pl {
			if c != mec.Remote {
				cached++
			}
		}
		s.cachedTime += float64(cached) / float64(len(s.pl)) * dt
		s.activeTime += float64(len(s.pl)) * dt
		down, degraded := 0, 0
		for _, lp := range s.live {
			switch lp.state {
			case stateDetecting:
				down++
			case stateWaiting:
				degraded++
			}
		}
		s.downTime += float64(down) * dt
		s.degradTime += float64(degraded) * dt
	}
	s.lastT = now
	return nil
}

// arrive admits a new provider via a capacity-aware selfish best response
// against the current loads, then schedules its departure and the next
// arrival.
func (s *Simulator) arrive() error {
	if err := s.integrate(); err != nil {
		return err
	}
	if s.kernel.Now() < s.cfg.Horizon {
		if err := s.kernel.Schedule(s.r.Exp(s.arrivalRate()), s.wrap(s.arrive)); err != nil {
			return err
		}
	}
	if s.cfg.MaxActive > 0 && len(s.live) >= s.cfg.MaxActive {
		s.metrics.Rejections++
		return nil
	}
	p := s.cfg.Workload.DrawProvider(s.r, len(s.net.DCs), s.net.Topo.N())
	lp := &liveProvider{id: s.nextID, p: p, choice: mec.Remote}
	s.nextID++
	s.live = append(s.live, lp)
	s.metrics.Arrivals++
	if len(s.live) > s.metrics.PeakActive {
		s.metrics.PeakActive = len(s.live)
	}

	// Selfish join: best response against everyone else's current choices
	// (the newcomer sits at Remote, so the persistent load state already
	// excludes it). Under an active fault model the response is masked so
	// arrivals never cache at a cloudlet that is currently down.
	idx, err := s.addProvider(p)
	if err != nil {
		return err
	}
	var mask []bool
	if s.cfg.Fault.Enabled() {
		mask = s.failedCl
	}
	s.setChoice(idx, BestResponseWithLoads(s.ls, s.pl, idx, mask, nil))

	// Exponential lifetime.
	life := s.r.Exp(1 / s.cfg.MeanLifetime)
	return s.kernel.Schedule(life, s.wrap(func() error { return s.depart(lp.id) }))
}

// arrivalRate returns the (possibly diurnally modulated) arrival rate at
// the current virtual time: rate·(1 + sin(2πt/period)), clipped away from
// zero so the process never stalls.
func (s *Simulator) arrivalRate() float64 {
	if s.cfg.DiurnalPeriod <= 0 {
		return s.cfg.ArrivalRate
	}
	phase := 2 * math.Pi * s.kernel.Now() / s.cfg.DiurnalPeriod
	rate := s.cfg.ArrivalRate * (1 + math.Sin(phase))
	if min := s.cfg.ArrivalRate * 0.05; rate < min {
		rate = min
	}
	return rate
}

// depart destroys the cached instance of the given provider; the original
// in the remote cloud lives on (outside our accounting).
func (s *Simulator) depart(id int) error {
	if err := s.integrate(); err != nil {
		return err
	}
	for i, lp := range s.live {
		if lp.id == id {
			// Unwind the load contribution before indices shift, then
			// splice the provider out of the market (or drop the market
			// entirely when it empties — it cannot hold zero providers).
			s.setChoice(i, mec.Remote)
			if len(s.live) == 1 {
				s.m, s.pl, s.ls = nil, nil, nil
			} else {
				if err := s.m.RemoveProvider(i); err != nil {
					return err
				}
				s.pl = append(s.pl[:i], s.pl[i+1:]...)
			}
			s.live = append(s.live[:i], s.live[i+1:]...)
			s.metrics.Departures++
			return nil
		}
	}
	return fmt.Errorf("dynamic: departure of unknown provider %d", id)
}

// epoch re-runs the LCF mechanism over the active providers and counts how
// many strategies changed — the market's reconfiguration churn.
func (s *Simulator) epoch() error {
	if err := s.integrate(); err != nil {
		return err
	}
	if s.kernel.Now() < s.cfg.Horizon {
		if err := s.kernel.Schedule(s.cfg.Epoch, s.wrap(s.epoch)); err != nil {
			return err
		}
	}
	s.metrics.Epochs++
	if s.m == nil {
		return nil
	}
	opts := EpochOptions{
		Xi:             s.cfg.Xi,
		Seed:           s.cfg.Seed + uint64(s.metrics.Epochs),
		MigrationAware: s.cfg.MigrationAware,
		State:          &s.solve,
		Workers:        s.cfg.EpochWorkers,
	}
	if s.cfg.Fault.Enabled() {
		// LCF plans over the full network; hold providers that are mid-
		// failover (their choice is managed by the failure machinery) and
		// cancel any assignment onto a cloudlet that is currently down.
		opts.Failed = s.failedCl
		opts.Frozen = make([]bool, len(s.live))
		for i, lp := range s.live {
			opts.Frozen[i] = lp.state != stateOK
		}
	}
	next, st, err := Reequilibrate(s.m, s.pl, opts)
	if err != nil {
		return err
	}
	for i := range s.live {
		s.setChoice(i, next[i])
	}
	s.metrics.Reconfigurations += st.Reconfigurations
	s.metrics.MigrationCost += st.MigrationCost
	s.metrics.MigrationsSuppressed += st.MigrationsSuppressed
	return nil
}

// EpochOptions parameterizes one re-equilibration step (Reequilibrate).
type EpochOptions struct {
	// Xi is the coordinated fraction handed to LCF.
	Xi float64
	// Seed drives LCF's randomized best-response order; vary it per epoch
	// (the simulator uses base seed + epoch number).
	Seed uint64
	// MigrationAware applies the hysteresis: a provider moves only when its
	// own saving exceeds its re-instantiation cost.
	MigrationAware bool
	// Frozen marks providers whose strategy must not change this epoch
	// (e.g. mid-failover). Nil means nobody is frozen.
	Frozen []bool
	// Failed marks cloudlets that are currently down; assignments onto them
	// are cancelled (the provider keeps its previous strategy). Nil means
	// every cloudlet is up.
	Failed []bool
	// Trace receives the epoch's decision events: the inner LCF pipeline
	// (Appro phase, coordination pick, best-response moves and rounds) plus
	// one move/suppress event per provider whose LCF target differs from its
	// current strategy. Nil disables tracing at zero cost.
	Trace obs.Tracer
	// Reference runs the pre-engine naive path end to end: full-scan best
	// responses inside LCF and clone-based O(N) hysteresis probes. Exists so
	// differential tests and the benchmark baseline can pit the incremental
	// engine against the historical implementation in the same run; results
	// must be identical.
	Reference bool
	// State warm-starts the inner LCF solve from the previous epoch (see
	// core.EpochSolveState). Nil solves cold; results are byte-identical
	// either way.
	State *EpochSolveState
	// Workers widens the selfish best-response round inside LCF; the
	// sharded round is bit-identical at every width.
	Workers int
}

// EpochSolveState is the warm-start cache one market stream carries across
// Reequilibrate calls; see core.EpochSolveState.
type EpochSolveState = core.EpochSolveState

// EpochStats reports what one re-equilibration changed.
type EpochStats struct {
	// Reconfigurations counts providers whose strategy changed.
	Reconfigurations int
	// MigrationCost totals the re-instantiation costs paid by movers that
	// abandoned a cached instance.
	MigrationCost float64
	// MigrationsSuppressed counts moves skipped by the hysteresis.
	MigrationsSuppressed int
	// SocialCost is Eq. (6) on the returned placement.
	SocialCost float64
	// Rounds and Moves report the inner best-response dynamics of the LCF
	// call (the convergence iteration count the paper's stability argument
	// is about); Converged is false only if the defensive round bound hit.
	Rounds    int
	Moves     int
	Converged bool
	// Solver names the GAP engine the inner Appro call used.
	Solver string
	// WarmStart reports whether the solve reused cached work from the
	// epoch state (full-result hit, transport fingerprint hit or patch, or
	// reused rounding components). Always false without EpochOptions.State.
	WarmStart bool
	// Shards is the number of locality components the sharded best-response
	// round ran in parallel (0 when the round ran serially). Telemetry only.
	Shards int
}

// Reequilibrate is one epoch of the infrastructure provider's slow control
// loop, extracted as a pure function so both the virtual-time simulator and
// the wall-clock serving daemon (internal/server) run the identical step:
// re-run the LCF mechanism over the current providers, hold frozen
// providers and any assignment onto a failed cloudlet, and (optionally)
// apply migration-aware hysteresis. It returns the new placement — pl
// itself is never mutated — plus the change statistics.
func Reequilibrate(m *mec.Market, pl mec.Placement, opts EpochOptions) (mec.Placement, EpochStats, error) {
	var st EpochStats
	res, err := core.LCF(m, core.LCFOptions{
		Xi:        opts.Xi,
		Seed:      opts.Seed,
		Appro:     core.ApproOptions{Solver: core.SolverTransport},
		Trace:     opts.Trace,
		Reference: opts.Reference,
		State:     opts.State,
		Workers:   opts.Workers,
	})
	if err != nil {
		return nil, st, err
	}
	st.Rounds = res.Dynamics.Rounds
	st.Moves = res.Dynamics.Moves
	st.Converged = res.Dynamics.Converged
	st.Solver = res.Appro.SolverUsed.String()
	st.Shards = res.Dynamics.Shards
	if opts.State != nil {
		st.WarmStart = opts.State.LastWarm
	}
	next := res.Placement
	for i := range next {
		if (opts.Frozen != nil && opts.Frozen[i]) ||
			(next[i] != mec.Remote && opts.Failed != nil && opts.Failed[next[i]]) {
			next[i] = pl[i]
		}
	}
	if !opts.MigrationAware {
		for i := range next {
			if next[i] != pl[i] {
				st.Reconfigurations++
				if pl[i] != mec.Remote {
					// Tearing down and re-instantiating elsewhere (or going
					// remote) forfeits the instantiation investment.
					st.MigrationCost += m.Providers[i].InstCost
				}
				if opts.Trace != nil {
					opts.Trace.Emit(obs.Event{
						Kind: obs.KindMove, Provider: i, Strategy: next[i],
						From: pl[i], Note: "epoch migration",
					})
				}
			}
		}
		st.SocialCost = m.SocialCost(next)
		if opts.Trace != nil {
			opts.Trace.Emit(obs.Event{
				Kind: obs.KindPhase, Round: st.Rounds, SocialCost: st.SocialCost,
				Note: fmt.Sprintf("epoch reconfigured=%d", st.Reconfigurations),
			})
		}
		return next, st, nil
	}
	// Hysteresis: apply each provider's move only if its own cost under the
	// new placement improves on its cost of staying put (holding everyone
	// else at the new placement) by more than the re-instantiation cost.
	// The engine path reads both probe costs off a load state maintained
	// incrementally over next — O(1) per mover instead of two O(N) clones
	// and rescans; the suppressed branch moves the provider back so
	// downstream deciders see the same loads either way.
	var ls *game.LoadState
	if !opts.Reference {
		ls = game.NewLoadState(m)
		ls.Reset(next)
	}
	for i := range next {
		if next[i] == pl[i] {
			continue
		}
		moved := next[i]
		stay := pl[i]
		var costMoved, costStay float64
		if opts.Reference {
			probe := next.Clone()
			costMoved = m.ProviderCost(probe, i)
			probe[i] = stay
			costStay = m.ProviderCost(probe, i)
		} else {
			// i sits at moved in ls, so Count(moved) includes it and
			// Count(stay) excludes it — both loads match the clone probes.
			if moved == mec.Remote {
				costMoved = m.RemoteCost(i)
			} else {
				costMoved = m.CostAt(i, moved, ls.Count(moved))
			}
			if stay == mec.Remote {
				costStay = m.RemoteCost(i)
			} else {
				costStay = m.CostAt(i, stay, ls.Count(stay)+1)
			}
		}
		threshold := 0.0
		if stay != mec.Remote {
			threshold = m.Providers[i].InstCost
		}
		if costStay-costMoved > threshold {
			next[i] = moved
			st.Reconfigurations++
			if stay != mec.Remote {
				st.MigrationCost += m.Providers[i].InstCost
			}
			if opts.Trace != nil {
				opts.Trace.Emit(obs.Event{
					Kind: obs.KindMove, Provider: i, Strategy: moved, From: stay,
					Total: costMoved, Note: "epoch migration",
				})
			}
		} else {
			st.MigrationsSuppressed++
			next[i] = stay // keep downstream decisions consistent
			if ls != nil {
				ls.Move(i, moved, stay)
			}
			if opts.Trace != nil {
				opts.Trace.Emit(obs.Event{
					Kind: obs.KindSuppress, Provider: i, Strategy: moved, From: stay,
					Total: costMoved,
					Note:  fmt.Sprintf("hysteresis: saving %.6g <= threshold %.6g", costStay-costMoved, threshold),
				})
			}
		}
	}
	st.SocialCost = m.SocialCost(next)
	if opts.Trace != nil {
		opts.Trace.Emit(obs.Event{
			Kind: obs.KindPhase, Round: st.Rounds, SocialCost: st.SocialCost,
			Note: fmt.Sprintf("epoch reconfigured=%d suppressed=%d", st.Reconfigurations, st.MigrationsSuppressed),
		})
	}
	return next, st, nil
}

// findLive locates an active provider by id; idx is -1 after departure.
func (s *Simulator) findLive(id int) (int, *liveProvider) {
	for i, lp := range s.live {
		if lp.id == id {
			return i, lp
		}
	}
	return -1, nil
}

// resourceLoads tallies per-cloudlet tenant count and compute/bandwidth
// usage of pl, excluding provider skip (use -1 to exclude nobody).
func resourceLoads(m *mec.Market, pl mec.Placement, skip int) (count []int, compute, bandwidth []float64) {
	nc := m.Net.NumCloudlets()
	count = make([]int, nc)
	compute = make([]float64, nc)
	bandwidth = make([]float64, nc)
	for j, c := range pl {
		if j == skip || c == mec.Remote {
			continue
		}
		p := &m.Providers[j]
		count[c]++
		compute[c] += p.ComputeDemand()
		bandwidth[c] += p.BandwidthDemand()
	}
	return count, compute, bandwidth
}

// fitsAt reports whether provider l fits cloudlet i given loads that
// exclude l (mirrors the game engine's capacity slack).
func fitsAt(m *mec.Market, l, i int, compute, bandwidth []float64) bool {
	p := &m.Providers[l]
	cl := &m.Net.Cloudlets[i]
	return compute[i]+p.ComputeDemand() <= cl.ComputeCap+1e-9 &&
		bandwidth[i]+p.BandwidthDemand() <= cl.BandwidthCap+1e-9
}

// BestResponseAvoidingFailed is the capacity-aware best response of
// provider l restricted to live cloudlets: the same candidate scan as
// game.BestResponse, with the cloudlets marked in failed excluded (nil
// means every cloudlet is up). Shared by the simulator's arrivals/failovers
// and the serving daemon's online admissions. This entry point rebuilds the
// load state from pl on every call; callers with a placement that changes
// one provider at a time should carry a game.LoadState across calls and use
// BestResponseWithLoads instead.
func BestResponseAvoidingFailed(m *mec.Market, pl mec.Placement, l int, failed []bool) int {
	return BestResponseAvoidingFailedTraced(m, pl, l, failed, nil)
}

// BestResponseAvoidingFailedTraced is BestResponseAvoidingFailed with
// decision tracing: every candidate strategy (remote first, then each live
// and capacity-feasible cloudlet in ascending base-cost order) is emitted
// with its Eq. 3 cost broken out, followed by the chosen strategy. A nil
// tracer makes it identical to the untraced scan — same candidates, same
// tie-breaking, same result.
func BestResponseAvoidingFailedTraced(m *mec.Market, pl mec.Placement, l int, failed []bool, tr obs.Tracer) int {
	ls := game.NewLoadState(m)
	ls.Reset(pl)
	return BestResponseWithLoads(ls, pl, l, failed, tr)
}

// BestResponseWithLoads is the incremental form of the masked best
// response: ls must reflect pl exactly (including provider l's current
// strategy — it is excluded for the duration of the scan). Both the traced
// and untraced paths run the engine's scan, so they cannot diverge.
func BestResponseWithLoads(ls *game.LoadState, pl mec.Placement, l int, failed []bool, tr obs.Tracer) int {
	cur := pl[l]
	if cur != mec.Remote {
		ls.Remove(l, cur)
		defer ls.Add(l, cur)
	}
	best, _ := ls.BestResponseTraced(l, cur, true, failed, tr)
	return best
}

// bestResponseNaive is the pre-engine reference scan, kept for the
// differential tests and the benchmark baseline (EpochOptions.Reference).
func bestResponseNaive(m *mec.Market, pl mec.Placement, l int, failed []bool) int {
	count, compute, bandwidth := resourceLoads(m, pl, l)
	best := mec.Remote
	bestC := m.RemoteCost(l)
	for i := 0; i < m.Net.NumCloudlets(); i++ {
		if (failed != nil && failed[i]) || !fitsAt(m, l, i, compute, bandwidth) {
			continue
		}
		c := m.CostAt(l, i, count[i]+1)
		if c < bestC-1e-15 {
			best, bestC = i, c
		}
	}
	return best
}

// cloudletFail is the injector's outage hook: every provider cached at the
// failed cloudlet loses its instance, falls back to the remote original for
// cost purposes, and is unreachable until the failure is detected.
func (s *Simulator) cloudletFail(i int) error {
	if err := s.integrate(); err != nil {
		return err
	}
	s.failedCl[i] = true
	s.metrics.CloudletOutages++
	for idx, lp := range s.live {
		if lp.choice == i {
			s.beginFailover(idx, lp, i)
		}
	}
	return nil
}

// beginFailover marks the provider unreachable and schedules the policy
// resolution once the failure is detected. source is the failed cloudlet,
// or -1 for an isolated instance crash.
func (s *Simulator) beginFailover(idx int, lp *liveProvider, source int) {
	s.setChoice(idx, mec.Remote) // the original instance absorbs the traffic
	lp.state = stateDetecting
	lp.failedAt = s.kernel.Now()
	lp.waitSeq++
	id, seq := lp.id, lp.waitSeq
	// DetectionDelay is validated non-negative, so Schedule cannot fail.
	_ = s.kernel.Schedule(s.cfg.Fault.DetectionDelay, s.wrap(func() error {
		return s.resolveFailover(id, source, seq)
	}))
}

// resolveFailover applies the failover policy once a failure is detected.
func (s *Simulator) resolveFailover(id, source, seq int) error {
	if err := s.integrate(); err != nil {
		return err
	}
	idx, lp := s.findLive(id)
	if lp == nil || lp.state != stateDetecting || lp.waitSeq != seq {
		return nil // departed, or superseded by a newer failure
	}
	switch s.cfg.Fault.Policy {
	case fault.PolicyRemoteFallback:
		lp.state = stateOK
		s.recordRecovery(lp)
	case fault.PolicyReplace:
		if err := s.replace(idx, lp); err != nil {
			return err
		}
		s.recordRecovery(lp)
	case fault.PolicyWaitForRepair:
		switch {
		case source >= 0 && s.failedCl[source]:
			lp.state = stateWaiting
			lp.waitingFor = source
			if s.cfg.Fault.WaitTimeout > 0 {
				wseq := lp.waitSeq
				_ = s.kernel.Schedule(s.cfg.Fault.WaitTimeout, s.wrap(func() error {
					return s.waitTimeout(id, wseq)
				}))
			}
		case source >= 0:
			// Repaired within the detection window: try to return at once.
			if err := s.tryFailback(idx, lp, source); err != nil {
				return err
			}
			s.recordRecovery(lp)
		default:
			// An instance crash leaves nothing to wait for: the cloudlet is
			// healthy, so re-placement is the sensible reaction.
			if err := s.replace(idx, lp); err != nil {
				return err
			}
			s.recordRecovery(lp)
		}
	}
	return nil
}

// replace re-places a provider with a best response over live cloudlets,
// paying the re-instantiation cost when a new cached instance is created.
func (s *Simulator) replace(idx int, lp *liveProvider) error {
	s.setChoice(idx, BestResponseWithLoads(s.ls, s.pl, idx, s.failedCl, nil))
	lp.state = stateOK
	if lp.choice != mec.Remote {
		s.metrics.MigrationCost += lp.p.InstCost
		s.metrics.FailoverReplacements++
	}
	return nil
}

// tryFailback ends a wait: the provider returns to the repaired cloudlet
// only if the hysteresis check passes — its cost saving over staying remote
// must exceed the re-instantiation cost — and it still fits.
func (s *Simulator) tryFailback(idx int, lp *liveProvider, cl int) error {
	// The waiting provider sits at Remote, so the load state excludes it.
	saving := s.m.RemoteCost(idx) - s.m.CostAt(idx, cl, s.ls.Count(cl)+1)
	if s.ls.Fits(idx, cl) && saving > lp.p.InstCost {
		s.setChoice(idx, cl)
		s.metrics.MigrationCost += lp.p.InstCost
		s.metrics.FailbackReturns++
	}
	lp.state = stateOK
	lp.waitingFor = 0
	return nil
}

// waitTimeout gives up a wait-for-repair that outlived the configured
// timeout; the provider settles for the remote original.
func (s *Simulator) waitTimeout(id, seq int) error {
	if err := s.integrate(); err != nil {
		return err
	}
	_, lp := s.findLive(id)
	if lp == nil || lp.state != stateWaiting || lp.waitSeq != seq {
		return nil // departed, repaired, or failed again in the meantime
	}
	lp.state = stateOK
	lp.waitingFor = 0
	s.metrics.WaitTimeouts++
	s.recordRecovery(lp)
	return nil
}

// cloudletRepair is the injector's repair hook: waiting providers get their
// chance to return.
func (s *Simulator) cloudletRepair(i int) error {
	if err := s.integrate(); err != nil {
		return err
	}
	s.failedCl[i] = false
	s.metrics.CloudletRepairs++
	if s.cfg.Fault.Policy != fault.PolicyWaitForRepair {
		return nil
	}
	for idx, lp := range s.live {
		if lp.state == stateWaiting && lp.waitingFor == i {
			lp.waitSeq++ // invalidate the pending timeout
			if err := s.tryFailback(idx, lp, i); err != nil {
				return err
			}
			s.recordRecovery(lp)
		}
	}
	return nil
}

// recordRecovery closes one failover: the provider reached its post-failure
// steady placement.
func (s *Simulator) recordRecovery(lp *liveProvider) {
	s.metrics.Failovers++
	s.recoverySum += s.kernel.Now() - lp.failedAt
}

// cachedCount counts live providers currently cached at a cloudlet.
func (s *Simulator) cachedCount() int {
	n := 0
	for _, lp := range s.live {
		if lp.choice != mec.Remote {
			n++
		}
	}
	return n
}

// scheduleNextCrash continues the cached-instance crash process: a thinned
// Poisson stream whose rate tracks the current number of cached instances
// (floored at one so the process never stalls while the market is empty).
func (s *Simulator) scheduleNextCrash() error {
	rate := float64(max(1, s.cachedCount())) / s.cfg.Fault.InstanceMTBF
	dt := s.fr.Exp(rate)
	if s.kernel.Now()+dt >= s.cfg.Horizon {
		return nil
	}
	return s.kernel.Schedule(dt, s.wrap(s.instanceCrash))
}

// instanceCrash kills one uniformly chosen cached instance (thinning: the
// event is a no-op when nothing is cached) and reschedules the process.
func (s *Simulator) instanceCrash() error {
	if err := s.integrate(); err != nil {
		return err
	}
	var victims []int
	for idx, lp := range s.live {
		if lp.choice != mec.Remote && lp.state == stateOK {
			victims = append(victims, idx)
		}
	}
	if len(victims) > 0 {
		idx := victims[s.fr.Intn(len(victims))]
		s.metrics.InstanceCrashes++
		s.beginFailover(idx, s.live[idx], -1)
	}
	return s.scheduleNextCrash()
}

// wrap adapts an error-returning step to the kernel's func() callbacks,
// stashing the first error.
func (s *Simulator) wrap(fn func() error) func() {
	return func() {
		if s.err == nil {
			s.err = fn()
		}
	}
}

// Run executes the simulation to the horizon and returns the metrics.
func (s *Simulator) Run() (*Metrics, error) {
	if err := s.kernel.Schedule(s.r.Exp(s.arrivalRate()), s.wrap(s.arrive)); err != nil {
		return nil, err
	}
	if s.cfg.Epoch > 0 {
		if err := s.kernel.Schedule(s.cfg.Epoch, s.wrap(s.epoch)); err != nil {
			return nil, err
		}
	}
	if s.cfg.Fault.CloudletMTBF > 0 {
		inj, err := fault.NewInjector(s.kernel, s.fr.Split(), s.cfg.Horizon)
		if err != nil {
			return nil, err
		}
		inj.OnFail = func(i int) {
			if s.err == nil {
				s.err = s.cloudletFail(i)
			}
		}
		inj.OnRepair = func(i int) {
			if s.err == nil {
				s.err = s.cloudletRepair(i)
			}
		}
		if err := inj.Start(s.net.NumCloudlets(), s.cfg.Fault.CloudletMTBF, s.cfg.Fault.CloudletMTTR); err != nil {
			return nil, err
		}
		s.injector = inj
	}
	if s.cfg.Fault.InstanceMTBF > 0 {
		if err := s.scheduleNextCrash(); err != nil {
			return nil, err
		}
	}
	if err := s.kernel.RunUntil(s.cfg.Horizon, 0); err != nil {
		return nil, err
	}
	if s.err != nil {
		return nil, s.err
	}
	if err := s.integrateAtHorizon(); err != nil {
		return nil, err
	}
	s.metrics.FinalActive = len(s.live)
	s.metrics.TimeAvgSocialCost = s.costIntegral / s.cfg.Horizon
	s.metrics.CachedFraction = s.cachedTime / s.cfg.Horizon
	if s.metrics.Epochs > 0 && s.metrics.PeakActive > 0 {
		s.metrics.ReconfigurationRate = float64(s.metrics.Reconfigurations) /
			(float64(s.metrics.Epochs) * float64(s.metrics.PeakActive))
	}
	s.metrics.Availability = 1
	if s.activeTime > 0 {
		s.metrics.Availability = 1 - s.downTime/s.activeTime
		s.metrics.SLAViolationFraction = (s.downTime + s.degradTime) / s.activeTime
	}
	if s.metrics.Failovers > 0 {
		s.metrics.MeanTimeToRecover = s.recoverySum / float64(s.metrics.Failovers)
	}
	return &s.metrics, nil
}

// integrateAtHorizon closes the last integration interval exactly at the
// horizon (RunUntil advanced the clock there).
func (s *Simulator) integrateAtHorizon() error { return s.integrate() }
