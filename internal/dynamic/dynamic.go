// Package dynamic simulates the temporal dimension of the paper's market:
// services are cached only "temporarily while keeping the original instances
// of the services" (Section I) — providers arrive, lease edge resources for
// a while, and depart, at which point the cached instance is destroyed and
// the original in the remote cloud carries on.
//
// The simulator drives a Poisson arrival process and exponential lifetimes
// over virtual time on the discrete-event kernel. Newly arrived providers
// join selfishly (a capacity-aware best response against the current
// loads); every re-optimization epoch the infrastructure provider re-runs
// the LCF mechanism over the currently active providers. The headline
// output is the market's *stability*: the time-averaged social cost and the
// fraction of providers forced to move at each epoch.
package dynamic

import (
	"fmt"
	"math"

	"mecache/internal/core"
	"mecache/internal/game"
	"mecache/internal/mec"
	"mecache/internal/rng"
	"mecache/internal/sim"
	"mecache/internal/topology"
	"mecache/internal/workload"
)

// Config parameterizes a dynamic market run.
type Config struct {
	// Horizon is the virtual duration of the simulation.
	Horizon float64
	// ArrivalRate is the mean provider arrival rate (Poisson).
	ArrivalRate float64
	// MeanLifetime is the mean service lifetime (exponential).
	MeanLifetime float64
	// Epoch is the period of the leader's LCF re-optimization; zero
	// disables epochs (the market stays purely selfish).
	Epoch float64
	// Xi is the coordinated fraction used at each epoch.
	Xi float64
	// Seed drives all randomness.
	Seed uint64
	// Workload supplies the provider population's parameter ranges.
	Workload workload.Config
	// MaxActive caps concurrent providers; arrivals beyond it are rejected
	// (counted, not fatal). Zero means no cap.
	MaxActive int
	// MigrationAware adds hysteresis to the epochs: a provider is migrated
	// to its new LCF strategy only when the move reduces its own cost by
	// more than its re-instantiation cost c_l^ins. This trades a slightly
	// worse static cost for a much calmer market — the stability the paper
	// is after.
	MigrationAware bool
	// Diurnal modulates the arrival rate sinusoidally over the horizon
	// (one full day cycle per DiurnalPeriod, peak at 2x the base rate,
	// trough near 0), approximating the day/night demand swing real edge
	// markets see. Zero period disables it.
	DiurnalPeriod float64
}

// DefaultConfig returns a moderately loaded dynamic market.
func DefaultConfig(seed uint64) Config {
	return Config{
		Horizon:      200,
		ArrivalRate:  1.0,
		MeanLifetime: 40,
		Epoch:        20,
		Xi:           0.7,
		Seed:         seed,
		Workload:     workload.Default(seed),
		MaxActive:    150,
	}
}

// Metrics summarizes a run.
type Metrics struct {
	Arrivals    int
	Departures  int
	Rejections  int
	Epochs      int
	PeakActive  int
	FinalActive int
	// TimeAvgSocialCost integrates the social cost over virtual time and
	// divides by the horizon.
	TimeAvgSocialCost float64
	// Reconfigurations counts providers whose strategy changed at epoch
	// boundaries; ReconfigurationRate normalizes by (active x epochs).
	Reconfigurations    int
	ReconfigurationRate float64
	// CachedFraction is the time-averaged share of active services that
	// are cached at a cloudlet (vs. staying remote).
	CachedFraction float64
	// MigrationCost totals the re-instantiation costs paid by providers
	// that moved at epoch boundaries.
	MigrationCost float64
	// MigrationsSuppressed counts epoch moves skipped by the
	// MigrationAware hysteresis.
	MigrationsSuppressed int
}

// liveProvider is an active provider with its current strategy.
type liveProvider struct {
	id     int
	p      mec.Provider
	choice int // cloudlet index or mec.Remote
}

// Simulator runs one dynamic market. Create with New, run with Run.
type Simulator struct {
	cfg    Config
	net    *mec.Network
	kernel *sim.Kernel
	r      *rng.Source

	live   []*liveProvider
	nextID int

	metrics      Metrics
	lastT        float64
	costIntegral float64
	cachedTime   float64 // integral of cached fraction
	err          error   // first error raised inside a kernel callback
}

// New builds a simulator over the given topology (nil means a default
// GT-ITM network of 150 nodes).
func New(topo *topology.Topology, cfg Config) (*Simulator, error) {
	if cfg.Horizon <= 0 || cfg.ArrivalRate <= 0 || cfg.MeanLifetime <= 0 {
		return nil, fmt.Errorf("dynamic: horizon, arrival rate and lifetime must be positive")
	}
	if cfg.Xi < 0 || cfg.Xi > 1 {
		return nil, fmt.Errorf("dynamic: xi %v outside [0,1]", cfg.Xi)
	}
	var err error
	if topo == nil {
		topo, err = topology.GTITM(cfg.Seed^0xdddd, 150)
		if err != nil {
			return nil, err
		}
	}
	// Build the physical side once; providers churn on top of it. Reuse
	// the workload generator with one throwaway provider to lay out
	// cloudlets and data centers.
	probe := cfg.Workload
	probe.NumProviders = 1
	m, err := workload.Generate(topo, probe)
	if err != nil {
		return nil, err
	}
	return &Simulator{
		cfg:    cfg,
		net:    m.Net,
		kernel: sim.NewKernel(),
		r:      rng.New(cfg.Seed),
	}, nil
}

// market assembles a Market over the active providers; ids maps market
// index -> live slot. Returns nil when no provider is active.
func (s *Simulator) market() (*mec.Market, mec.Placement, error) {
	if len(s.live) == 0 {
		return nil, nil, nil
	}
	providers := make([]mec.Provider, len(s.live))
	placement := make(mec.Placement, len(s.live))
	for i, lp := range s.live {
		providers[i] = lp.p
		placement[i] = lp.choice
	}
	m, err := mec.NewMarket(s.net, providers)
	if err != nil {
		return nil, nil, err
	}
	return m, placement, nil
}

// integrate accrues the cost and cached-fraction integrals up to the
// current virtual time.
func (s *Simulator) integrate() error {
	now := s.kernel.Now()
	dt := now - s.lastT
	if dt <= 0 {
		return nil
	}
	m, pl, err := s.market()
	if err != nil {
		return err
	}
	if m != nil {
		s.costIntegral += m.SocialCost(pl) * dt
		cached := 0
		for _, c := range pl {
			if c != mec.Remote {
				cached++
			}
		}
		s.cachedTime += float64(cached) / float64(len(pl)) * dt
	}
	s.lastT = now
	return nil
}

// arrive admits a new provider via a capacity-aware selfish best response
// against the current loads, then schedules its departure and the next
// arrival.
func (s *Simulator) arrive() error {
	if err := s.integrate(); err != nil {
		return err
	}
	if s.kernel.Now() < s.cfg.Horizon {
		if err := s.kernel.Schedule(s.r.Exp(s.arrivalRate()), s.wrap(s.arrive)); err != nil {
			return err
		}
	}
	if s.cfg.MaxActive > 0 && len(s.live) >= s.cfg.MaxActive {
		s.metrics.Rejections++
		return nil
	}
	p := s.cfg.Workload.DrawProvider(s.r, len(s.net.DCs), s.net.Topo.N())
	lp := &liveProvider{id: s.nextID, p: p, choice: mec.Remote}
	s.nextID++
	s.live = append(s.live, lp)
	s.metrics.Arrivals++
	if len(s.live) > s.metrics.PeakActive {
		s.metrics.PeakActive = len(s.live)
	}

	// Selfish join: best response against everyone else's current choices.
	m, pl, err := s.market()
	if err != nil {
		return err
	}
	g := game.New(m)
	choice, _ := g.BestResponse(pl, len(pl)-1)
	lp.choice = choice

	// Exponential lifetime.
	life := s.r.Exp(1 / s.cfg.MeanLifetime)
	return s.kernel.Schedule(life, s.wrap(func() error { return s.depart(lp.id) }))
}

// arrivalRate returns the (possibly diurnally modulated) arrival rate at
// the current virtual time: rate·(1 + sin(2πt/period)), clipped away from
// zero so the process never stalls.
func (s *Simulator) arrivalRate() float64 {
	if s.cfg.DiurnalPeriod <= 0 {
		return s.cfg.ArrivalRate
	}
	phase := 2 * math.Pi * s.kernel.Now() / s.cfg.DiurnalPeriod
	rate := s.cfg.ArrivalRate * (1 + math.Sin(phase))
	if min := s.cfg.ArrivalRate * 0.05; rate < min {
		rate = min
	}
	return rate
}

// depart destroys the cached instance of the given provider; the original
// in the remote cloud lives on (outside our accounting).
func (s *Simulator) depart(id int) error {
	if err := s.integrate(); err != nil {
		return err
	}
	for i, lp := range s.live {
		if lp.id == id {
			s.live = append(s.live[:i], s.live[i+1:]...)
			s.metrics.Departures++
			return nil
		}
	}
	return fmt.Errorf("dynamic: departure of unknown provider %d", id)
}

// epoch re-runs the LCF mechanism over the active providers and counts how
// many strategies changed — the market's reconfiguration churn.
func (s *Simulator) epoch() error {
	if err := s.integrate(); err != nil {
		return err
	}
	if s.kernel.Now() < s.cfg.Horizon {
		if err := s.kernel.Schedule(s.cfg.Epoch, s.wrap(s.epoch)); err != nil {
			return err
		}
	}
	s.metrics.Epochs++
	m, pl, err := s.market()
	if err != nil || m == nil {
		return err
	}
	res, err := core.LCF(m, core.LCFOptions{
		Xi:    s.cfg.Xi,
		Seed:  s.cfg.Seed + uint64(s.metrics.Epochs),
		Appro: core.ApproOptions{Solver: core.SolverTransport},
	})
	if err != nil {
		return err
	}
	if !s.cfg.MigrationAware {
		for i, lp := range s.live {
			if res.Placement[i] != pl[i] {
				s.metrics.Reconfigurations++
				if pl[i] != mec.Remote {
					// Tearing down and re-instantiating elsewhere (or going
					// remote) forfeits the instantiation investment.
					s.metrics.MigrationCost += lp.p.InstCost
				}
			}
			lp.choice = res.Placement[i]
		}
		return nil
	}
	// Hysteresis: apply each provider's move only if its own cost under the
	// new placement improves on its cost of staying put (holding everyone
	// else at the new placement) by more than the re-instantiation cost.
	for i, lp := range s.live {
		if res.Placement[i] == pl[i] {
			continue
		}
		moved := res.Placement[i]
		stay := pl[i]
		newPl := make(mec.Placement, len(s.live))
		for j := range s.live {
			newPl[j] = res.Placement[j]
		}
		costMoved := m.ProviderCost(newPl, i)
		newPl[i] = stay
		costStay := m.ProviderCost(newPl, i)
		threshold := 0.0
		if stay != mec.Remote {
			threshold = lp.p.InstCost
		}
		if costStay-costMoved > threshold {
			lp.choice = moved
			s.metrics.Reconfigurations++
			if stay != mec.Remote {
				s.metrics.MigrationCost += lp.p.InstCost
			}
		} else {
			s.metrics.MigrationsSuppressed++
			res.Placement[i] = stay // keep downstream decisions consistent
		}
	}
	return nil
}

// wrap adapts an error-returning step to the kernel's func() callbacks,
// stashing the first error.
func (s *Simulator) wrap(fn func() error) func() {
	return func() {
		if s.err == nil {
			s.err = fn()
		}
	}
}

// Run executes the simulation to the horizon and returns the metrics.
func (s *Simulator) Run() (*Metrics, error) {
	if err := s.kernel.Schedule(s.r.Exp(s.arrivalRate()), s.wrap(s.arrive)); err != nil {
		return nil, err
	}
	if s.cfg.Epoch > 0 {
		if err := s.kernel.Schedule(s.cfg.Epoch, s.wrap(s.epoch)); err != nil {
			return nil, err
		}
	}
	if err := s.kernel.RunUntil(s.cfg.Horizon, 0); err != nil {
		return nil, err
	}
	if s.err != nil {
		return nil, s.err
	}
	if err := s.integrateAtHorizon(); err != nil {
		return nil, err
	}
	s.metrics.FinalActive = len(s.live)
	s.metrics.TimeAvgSocialCost = s.costIntegral / s.cfg.Horizon
	s.metrics.CachedFraction = s.cachedTime / s.cfg.Horizon
	if s.metrics.Epochs > 0 && s.metrics.PeakActive > 0 {
		s.metrics.ReconfigurationRate = float64(s.metrics.Reconfigurations) /
			(float64(s.metrics.Epochs) * float64(s.metrics.PeakActive))
	}
	return &s.metrics, nil
}

// integrateAtHorizon closes the last integration interval exactly at the
// horizon (RunUntil advanced the clock there).
func (s *Simulator) integrateAtHorizon() error { return s.integrate() }
