package dynamic

import (
	"math"
	"runtime"
	"testing"

	"mecache/internal/mec"
	"mecache/internal/workload"
)

// TestDifferentialWarmEpochs is the end-to-end byte-identity suite for the
// warm-started, incrementally re-rounded, sharded epoch solve: a sequence
// of epochs over a churning market — provider appends and removals, failed
// cloudlets, frozen providers, hysteresis on and off, and one exact repeat
// to force the full-result cache tier — must produce placements and stats
// bit-identical to a cold, serial, stateless Reequilibrate at every step,
// across congestion models and worker widths 1 / 4 / NumCPU.
func TestDifferentialWarmEpochs(t *testing.T) {
	models := []struct {
		name string
		cm   mec.CongestionModel
	}{
		{"linear", nil},
		{"poly", mec.PolynomialCongestion{Degree: 1.5}},
		{"exp", mec.ExponentialCongestion{Base: 1.08}},
	}
	widths := []int{1, 4, runtime.NumCPU()}

	for _, mod := range models {
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := workload.Default(seed*23 + 2)
			cfg.NumProviders = 40
			m, err := workload.GenerateGTITM(80, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if mod.cm != nil {
				if err := m.SetCongestionModel(mod.cm); err != nil {
					t.Fatal(err)
				}
			}
			pl := make(mec.Placement, len(m.Providers))
			for l := range pl {
				pl[l] = mec.Remote
			}
			for l := range pl {
				pl[l] = BestResponseAvoidingFailed(m, pl, l, nil)
			}

			// One evolving warm state per worker width, mirroring how a
			// simulator or daemon would carry it across epochs.
			states := make([]*EpochSolveState, len(widths))
			for i := range states {
				states[i] = &EpochSolveState{}
			}

			for epoch := uint64(0); epoch < 6; epoch++ {
				// Churn the market between epochs 2-4; epoch 5 repeats
				// epoch 4's options on an unchanged market so the warm
				// streams serve it from the full-result cache.
				switch epoch {
				case 2:
					p := m.Providers[int(seed)%len(m.Providers)]
					if _, err := m.AppendProvider(p); err != nil {
						t.Fatal(err)
					}
					pl = append(pl, mec.Remote)
				case 3:
					victim := len(m.Providers) - 2
					if err := m.RemoveProvider(victim); err != nil {
						t.Fatal(err)
					}
					pl = append(pl[:victim], pl[victim+1:]...)
				}

				opts := EpochOptions{Xi: 0.6, Seed: seed*100 + epoch}
				if epoch == 5 {
					opts.Seed = seed*100 + 4 // exact repeat of epoch 4
				}
				if epoch%2 == 1 {
					opts.MigrationAware = true
				}
				if epoch >= 3 {
					failed := make([]bool, m.Net.NumCloudlets())
					failed[int(seed+epoch)%len(failed)] = true
					opts.Failed = failed
					frozen := make([]bool, len(m.Providers))
					for i := range frozen {
						frozen[i] = i%6 == int(seed)%6
					}
					opts.Frozen = frozen
				}

				nextC, stC, err := Reequilibrate(m, pl, opts)
				if err != nil {
					t.Fatal(err)
				}
				for wi, w := range widths {
					warm := opts
					warm.State = states[wi]
					warm.Workers = w
					nextW, stW, err := Reequilibrate(m, pl, warm)
					if err != nil {
						t.Fatal(err)
					}
					for i := range nextC {
						if nextW[i] != nextC[i] {
							t.Fatalf("%s seed=%d epoch=%d workers=%d: provider %d at %d (warm) vs %d (cold)",
								mod.name, seed, epoch, w, i, nextW[i], nextC[i])
						}
					}
					if math.Float64bits(stW.SocialCost) != math.Float64bits(stC.SocialCost) ||
						math.Float64bits(stW.MigrationCost) != math.Float64bits(stC.MigrationCost) {
						t.Fatalf("%s seed=%d epoch=%d workers=%d: cost bits differ (social %x/%x migration %x/%x)",
							mod.name, seed, epoch, w,
							math.Float64bits(stW.SocialCost), math.Float64bits(stC.SocialCost),
							math.Float64bits(stW.MigrationCost), math.Float64bits(stC.MigrationCost))
					}
					if stW.Reconfigurations != stC.Reconfigurations ||
						stW.MigrationsSuppressed != stC.MigrationsSuppressed ||
						stW.Rounds != stC.Rounds || stW.Moves != stC.Moves ||
						stW.Converged != stC.Converged {
						t.Fatalf("%s seed=%d epoch=%d workers=%d: stats diverged:\nwarm %+v\ncold %+v",
							mod.name, seed, epoch, w, stW, stC)
					}
					if stW.Solver != "transport" {
						t.Fatalf("epoch solver = %q", stW.Solver)
					}
					if epoch == 5 && !stW.WarmStart {
						t.Fatalf("%s seed=%d workers=%d: repeated epoch did not warm-start", mod.name, seed, w)
					}
				}
				// Advance the shared placement so later epochs start from a
				// realistic mid-stream profile.
				pl = nextC
			}
			for wi, st := range states {
				if st.LCFHits == 0 {
					t.Fatalf("%s seed=%d workers=%d: full-result cache never hit across the sequence", mod.name, seed, widths[wi])
				}
			}
		}
	}
}

// TestSimulatorEpochWorkersIdentity runs the full simulator — churn, epochs,
// hysteresis — at several epoch worker widths and demands identical metrics
// (the simulator always carries a warm state; the width must be invisible).
func TestSimulatorEpochWorkersIdentity(t *testing.T) {
	run := func(workers int) *Metrics {
		cfg := DefaultConfig(13)
		cfg.Horizon = 80
		cfg.MigrationAware = true
		cfg.EpochWorkers = workers
		sim, err := New(nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		met, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	base := run(0)
	for _, w := range []int{1, 4, runtime.NumCPU()} {
		if got := run(w); *got != *base {
			t.Fatalf("EpochWorkers=%d changed the run:\n%+v\nvs\n%+v", w, got, base)
		}
	}
}
