package dynamic

import (
	"math"
	"testing"

	"mecache/internal/mec"
	"mecache/internal/workload"
)

// TestDifferentialReequilibrate runs every epoch variant twice — the
// incremental engine and the pre-engine reference (naive scans inside LCF,
// clone-based hysteresis probes) — and demands byte-identical placements
// and bit-equal stats across fuzz markets and fault masks.
func TestDifferentialReequilibrate(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := workload.Default(seed * 19)
		cfg.NumProviders = 40
		m, err := workload.GenerateGTITM(80, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pl := make(mec.Placement, len(m.Providers))
		for l := range pl {
			pl[l] = mec.Remote
		}
		for l := range pl {
			pl[l] = BestResponseAvoidingFailed(m, pl, l, nil)
		}
		failed := make([]bool, m.Net.NumCloudlets())
		failed[int(seed)%len(failed)] = true
		frozen := make([]bool, len(m.Providers))
		for i := range frozen {
			frozen[i] = i%5 == int(seed)%5
		}

		for _, opts := range []EpochOptions{
			{Xi: 0.6, Seed: seed},
			{Xi: 0.6, Seed: seed, MigrationAware: true},
			{Xi: 0.8, Seed: seed, MigrationAware: true, Failed: failed, Frozen: frozen},
		} {
			engine := opts
			naive := opts
			naive.Reference = true
			nextE, stE, err := Reequilibrate(m, pl, engine)
			if err != nil {
				t.Fatal(err)
			}
			nextN, stN, err := Reequilibrate(m, pl, naive)
			if err != nil {
				t.Fatal(err)
			}
			for i := range nextE {
				if nextE[i] != nextN[i] {
					t.Fatalf("seed=%d xi=%v aware=%v: provider %d at %d (engine) vs %d (reference)",
						seed, opts.Xi, opts.MigrationAware, i, nextE[i], nextN[i])
				}
			}
			if math.Float64bits(stE.SocialCost) != math.Float64bits(stN.SocialCost) ||
				math.Float64bits(stE.MigrationCost) != math.Float64bits(stN.MigrationCost) {
				t.Fatalf("seed=%d xi=%v aware=%v: stats diverge: social %x/%x migration %x/%x",
					seed, opts.Xi, opts.MigrationAware,
					math.Float64bits(stE.SocialCost), math.Float64bits(stN.SocialCost),
					math.Float64bits(stE.MigrationCost), math.Float64bits(stN.MigrationCost))
			}
			if stE.Reconfigurations != stN.Reconfigurations || stE.MigrationsSuppressed != stN.MigrationsSuppressed {
				t.Fatalf("seed=%d xi=%v aware=%v: counts diverge: reconf %d/%d suppressed %d/%d",
					seed, opts.Xi, opts.MigrationAware,
					stE.Reconfigurations, stN.Reconfigurations,
					stE.MigrationsSuppressed, stN.MigrationsSuppressed)
			}
		}
	}
}
