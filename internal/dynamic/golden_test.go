package dynamic

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mecache/internal/fault"
	"mecache/internal/mec"
	"mecache/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// compareGolden marshals got and compares it against the golden file,
// rewriting the file under -update.
func compareGolden[T any](t *testing.T, path string, got T) {
	t.Helper()
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to generate): %v", err)
	}
	var want T
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Fatalf("golden mismatch for %s:\ngot:\n%s\nwant:\n%s", path, gotJSON, data)
	}
}

// goldenEpochEntry pins one Reequilibrate call bit-for-bit.
type goldenEpochEntry struct {
	Name             string `json:"name"`
	Placement        []int  `json:"placement"`
	SocialBits       uint64 `json:"socialBits"`
	Reconfigurations int    `json:"reconfigurations"`
	Suppressed       int    `json:"suppressed"`
	MigrationBits    uint64 `json:"migrationBits"`
}

// TestGoldenReequilibrate asserts fixed-seed epoch re-equilibrations return
// the committed pre-refactor placements byte for byte: the plain epoch, the
// migration-aware (hysteresis) epoch, and a faulted epoch with frozen
// providers and failed cloudlets. Regenerate with -update only for changes
// that are meant to alter results.
func TestGoldenReequilibrate(t *testing.T) {
	cfg := workload.Default(17)
	cfg.NumProviders = 50
	m, err := workload.GenerateGTITM(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Initial placement: providers join selfishly one by one, exactly like
	// online arrivals.
	pl := make(mec.Placement, len(m.Providers))
	for l := range pl {
		pl[l] = mec.Remote
	}
	for l := range pl {
		pl[l] = BestResponseAvoidingFailed(m, pl, l, nil)
	}

	failed := make([]bool, m.Net.NumCloudlets())
	failed[0] = true
	if len(failed) > 2 {
		failed[2] = true
	}
	frozen := make([]bool, len(m.Providers))
	for i := range frozen {
		frozen[i] = i%7 == 0
	}

	cases := []struct {
		name string
		opts EpochOptions
	}{
		{"plain", EpochOptions{Xi: 0.7, Seed: 99}},
		{"hysteresis", EpochOptions{Xi: 0.7, Seed: 99, MigrationAware: true}},
		{"faulted", EpochOptions{Xi: 0.7, Seed: 99, MigrationAware: true, Failed: failed, Frozen: frozen}},
	}
	var got []goldenEpochEntry
	for _, c := range cases {
		next, st, err := Reequilibrate(m, pl, c.opts)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, goldenEpochEntry{
			Name:             c.name,
			Placement:        next,
			SocialBits:       math.Float64bits(st.SocialCost),
			Reconfigurations: st.Reconfigurations,
			Suppressed:       st.MigrationsSuppressed,
			MigrationBits:    math.Float64bits(st.MigrationCost),
		})
	}
	compareGolden(t, filepath.Join("testdata", "golden_reequilibrate.json"), got)
}

// goldenSimEntry pins one full dynamic-market run.
type goldenSimEntry struct {
	Name              string `json:"name"`
	Arrivals          int    `json:"arrivals"`
	Departures        int    `json:"departures"`
	Epochs            int    `json:"epochs"`
	Reconfigurations  int    `json:"reconfigurations"`
	Suppressed        int    `json:"suppressed"`
	Failovers         int    `json:"failovers"`
	CostBits          uint64 `json:"costBits"`
	CachedBits        uint64 `json:"cachedBits"`
	MigrationCostBits uint64 `json:"migrationCostBits"`
	AvailabilityBits  uint64 `json:"availabilityBits"`
}

// TestGoldenSimulator asserts full fixed-seed simulator runs (selfish,
// epochs + hysteresis, and a faulty market) reproduce the committed metrics
// bit for bit.
func TestGoldenSimulator(t *testing.T) {
	mk := func(name string, mutate func(*Config)) goldenSimEntry {
		cfg := DefaultConfig(11)
		cfg.Horizon = 150
		if mutate != nil {
			mutate(&cfg)
		}
		s, err := New(nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		met, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return goldenSimEntry{
			Name:              name,
			Arrivals:          met.Arrivals,
			Departures:        met.Departures,
			Epochs:            met.Epochs,
			Reconfigurations:  met.Reconfigurations,
			Suppressed:        met.MigrationsSuppressed,
			Failovers:         met.Failovers,
			CostBits:          math.Float64bits(met.TimeAvgSocialCost),
			CachedBits:        math.Float64bits(met.CachedFraction),
			MigrationCostBits: math.Float64bits(met.MigrationCost),
			AvailabilityBits:  math.Float64bits(met.Availability),
		}
	}
	got := []goldenSimEntry{
		mk("selfish", func(c *Config) { c.Epoch = 0 }),
		mk("epochs-hysteresis", func(c *Config) { c.MigrationAware = true }),
		mk("faulty", func(c *Config) {
			c.MigrationAware = true
			c.Fault = fault.Config{
				CloudletMTBF:   80,
				CloudletMTTR:   6,
				InstanceMTBF:   400,
				DetectionDelay: 0.5,
				WaitTimeout:    10,
				Policy:         fault.PolicyReplace,
			}
		}),
	}
	compareGolden(t, filepath.Join("testdata", "golden_sim.json"), got)
}
