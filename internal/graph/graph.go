// Package graph implements the weighted-graph substrate used by the MEC
// network model: adjacency-list graphs, shortest paths (Dijkstra), breadth
// first search, and connectivity queries.
//
// The two-tiered MEC network of the paper is an undirected graph whose nodes
// are switches, cloudlets and data centers, and whose edge weights carry
// either hop counts or per-link transmission prices. All routing-aware costs
// (offloading traffic to a cloudlet, consistency updates back to the home
// data center) are charged along shortest paths computed here.
package graph

import (
	"fmt"
	"math"
)

// Edge is a weighted edge to a neighbor.
type Edge struct {
	To     int
	Weight float64
}

// Graph is a weighted graph stored as adjacency lists. Nodes are dense
// integers [0, N). Use New to construct one; the zero value is an empty
// graph with no nodes.
type Graph struct {
	adj      [][]Edge
	directed bool
	edges    int
}

// New returns a graph with n nodes and no edges. If directed is false,
// AddEdge inserts both arcs.
func New(n int, directed bool) *Graph {
	return &Graph{adj: make([][]Edge, n), directed: directed}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges (undirected edges counted once).
func (g *Graph) M() int { return g.edges }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// AddNode appends a new node and returns its index.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge inserts an edge u-v with weight w. For undirected graphs the
// reverse arc is inserted as well. It returns an error if either endpoint is
// out of range, the weight is negative or not finite, or u == v.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return fmt.Errorf("graph: edge (%d,%d) endpoint out of range [0,%d)", u, v, len(g.adj))
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", u, v, w)
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Weight: w})
	if !g.directed {
		g.adj[v] = append(g.adj[v], Edge{To: u, Weight: w})
	}
	g.edges++
	return nil
}

// HasEdge reports whether an arc u->v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	for _, e := range g.adj[u] {
		if e.To == v {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of u. The returned slice must not be
// modified by the caller.
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// Degree returns the out-degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]Edge, len(g.adj)), directed: g.directed, edges: g.edges}
	for i, es := range g.adj {
		c.adj[i] = append([]Edge(nil), es...)
	}
	return c
}

// Connected reports whether an undirected graph is connected (a graph with
// zero nodes is connected by convention). For directed graphs it checks
// reachability from node 0 only.
func (g *Graph) Connected() bool {
	if len(g.adj) == 0 {
		return true
	}
	return len(g.BFSOrder(0)) == len(g.adj)
}

// BFSOrder returns the nodes reachable from src in breadth-first order.
func (g *Graph) BFSOrder(src int) []int {
	visited := make([]bool, len(g.adj))
	order := make([]int, 0, len(g.adj))
	queue := []int{src}
	visited[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, e := range g.adj[u] {
			if !visited[e.To] {
				visited[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return order
}

// BFSPaths computes hop-shortest paths from src, returned in the same form
// as Dijkstra (distances are hop counts; unreachable nodes get +Inf).
func (g *Graph) BFSPaths(src int) ShortestPaths {
	n := len(g.adj)
	sp := ShortestPaths{
		Source: src,
		Dist:   make([]float64, n),
		Prev:   make([]int, n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = Inf
		sp.Prev[i] = -1
	}
	sp.Dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if sp.Prev[e.To] < 0 && e.To != src {
				sp.Prev[e.To] = u
				sp.Dist[e.To] = sp.Dist[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return sp
}

// HopDistances returns the unweighted (hop-count) distance from src to every
// node; unreachable nodes get -1.
func (g *Graph) HopDistances(src int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if dist[e.To] < 0 {
				dist[e.To] = dist[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}
