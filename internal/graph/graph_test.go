package graph

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/rng"
)

func mustAdd(t *testing.T, g *Graph, u, v int, w float64) {
	t.Helper()
	if err := g.AddEdge(u, v, w); err != nil {
		t.Fatalf("AddEdge(%d,%d,%v): %v", u, v, w, err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3, false)
	cases := []struct {
		name    string
		u, v    int
		w       float64
		wantErr bool
	}{
		{"valid", 0, 1, 1.5, false},
		{"self-loop", 1, 1, 1, true},
		{"negative weight", 0, 2, -1, true},
		{"nan weight", 0, 2, math.NaN(), true},
		{"inf weight", 0, 2, math.Inf(1), true},
		{"u out of range", -1, 2, 1, true},
		{"v out of range", 0, 3, 1, true},
		{"zero weight ok", 0, 2, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := g.AddEdge(tc.u, tc.v, tc.w)
			if (err != nil) != tc.wantErr {
				t.Fatalf("AddEdge(%d,%d,%v) err=%v, wantErr=%v", tc.u, tc.v, tc.w, err, tc.wantErr)
			}
		})
	}
}

func TestUndirectedSymmetry(t *testing.T) {
	g := New(4, false)
	mustAdd(t, g, 0, 1, 2)
	mustAdd(t, g, 1, 2, 3)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge must be visible from both endpoints")
	}
	if g.M() != 2 {
		t.Fatalf("M() = %d, want 2", g.M())
	}
}

func TestDirectedAsymmetry(t *testing.T) {
	g := New(3, true)
	mustAdd(t, g, 0, 1, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("missing forward arc")
	}
	if g.HasEdge(1, 0) {
		t.Fatal("directed graph must not add a reverse arc")
	}
}

func TestDijkstraSimple(t *testing.T) {
	// 0 --1-- 1 --1-- 2, plus a heavy shortcut 0--5--2.
	g := New(3, false)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 0, 2, 5)
	sp := g.Dijkstra(0)
	want := []float64{0, 1, 2}
	for v, d := range want {
		if sp.Dist[v] != d {
			t.Fatalf("dist[%d] = %v, want %v", v, sp.Dist[v], d)
		}
	}
	path := sp.PathTo(2)
	if len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 2 {
		t.Fatalf("PathTo(2) = %v, want [0 1 2]", path)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3, false)
	mustAdd(t, g, 0, 1, 1)
	sp := g.Dijkstra(0)
	if !math.IsInf(sp.Dist[2], 1) {
		t.Fatalf("dist to isolated node = %v, want +Inf", sp.Dist[2])
	}
	if sp.PathTo(2) != nil {
		t.Fatal("PathTo(unreachable) must return nil")
	}
}

func TestDijkstraZeroWeightEdges(t *testing.T) {
	g := New(3, false)
	mustAdd(t, g, 0, 1, 0)
	mustAdd(t, g, 1, 2, 0)
	sp := g.Dijkstra(0)
	if sp.Dist[2] != 0 {
		t.Fatalf("dist over zero-weight path = %v, want 0", sp.Dist[2])
	}
}

// bellmanFord is a reference implementation used to validate Dijkstra.
func bellmanFord(g *Graph, src int) []float64 {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for _, e := range g.Neighbors(u) {
				if nd := dist[u] + e.Weight; nd < dist[e.To] {
					dist[e.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func randomGraph(seed uint64, n int, p float64) *Graph {
	r := rng.New(seed)
	g := New(n, false)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bool(p) {
				_ = g.AddEdge(u, v, r.FloatRange(0, 10))
			}
		}
	}
	return g
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 1+int(seed%20), 0.3)
		got := g.Dijkstra(0).Dist
		want := bellmanFord(g, 0)
		for v := range got {
			gd, wd := got[v], want[v]
			if math.IsInf(gd, 1) != math.IsInf(wd, 1) {
				return false
			}
			if !math.IsInf(gd, 1) && math.Abs(gd-wd) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPathDistancesConsistent(t *testing.T) {
	// The sum of edge weights along PathTo must equal Dist.
	g := randomGraph(99, 25, 0.25)
	sp := g.Dijkstra(0)
	for v := 0; v < g.N(); v++ {
		path := sp.PathTo(v)
		if path == nil {
			continue
		}
		sum := 0.0
		for i := 0; i+1 < len(path); i++ {
			found := math.Inf(1)
			for _, e := range g.Neighbors(path[i]) {
				if e.To == path[i+1] && e.Weight < found {
					found = e.Weight
				}
			}
			sum += found
		}
		if math.Abs(sum-sp.Dist[v]) > 1e-9 {
			t.Fatalf("path to %d sums to %v, Dist says %v", v, sum, sp.Dist[v])
		}
	}
}

func TestHopDistances(t *testing.T) {
	g := New(4, false)
	mustAdd(t, g, 0, 1, 100)
	mustAdd(t, g, 1, 2, 100)
	hops := g.HopDistances(0)
	want := []int{0, 1, 2, -1}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hops[%d] = %d, want %d", i, hops[i], want[i])
		}
	}
}

func TestConnected(t *testing.T) {
	g := New(3, false)
	mustAdd(t, g, 0, 1, 1)
	if g.Connected() {
		t.Fatal("graph with isolated node reported connected")
	}
	mustAdd(t, g, 1, 2, 1)
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
	if !New(0, false).Connected() {
		t.Fatal("empty graph should be connected by convention")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(3, false)
	mustAdd(t, g, 0, 1, 1)
	c := g.Clone()
	mustAdd(t, c, 1, 2, 1)
	if g.HasEdge(1, 2) {
		t.Fatal("mutation of clone leaked into original")
	}
	if c.M() != 2 || g.M() != 1 {
		t.Fatalf("edge counts: clone=%d original=%d", c.M(), g.M())
	}
}

func TestAllPairsSymmetric(t *testing.T) {
	g := randomGraph(5, 15, 0.4)
	d := g.AllPairs()
	for u := 0; u < g.N(); u++ {
		if d[u][u] != 0 {
			t.Fatalf("d[%d][%d] = %v, want 0", u, u, d[u][u])
		}
		for v := 0; v < g.N(); v++ {
			if math.Abs(d[u][v]-d[v][u]) > 1e-9 {
				t.Fatalf("asymmetric APSP: d[%d][%d]=%v d[%d][%d]=%v", u, v, d[u][v], v, u, d[v][u])
			}
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	g := randomGraph(17, 18, 0.35)
	d := g.AllPairs()
	n := g.N()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			for w := 0; w < n; w++ {
				if d[u][v] > d[u][w]+d[w][v]+1e-9 {
					t.Fatalf("triangle inequality violated: d(%d,%d)=%v > d(%d,%d)+d(%d,%d)=%v",
						u, v, d[u][v], u, w, w, v, d[u][w]+d[w][v])
				}
			}
		}
	}
}

func TestAddNode(t *testing.T) {
	g := New(2, false)
	id := g.AddNode()
	if id != 2 || g.N() != 3 {
		t.Fatalf("AddNode returned %d (N=%d), want 2 (N=3)", id, g.N())
	}
	mustAdd(t, g, 1, 2, 1)
}

func TestEccentricity(t *testing.T) {
	g := New(4, false)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 2, 3, 1)
	if ecc := g.Eccentricity(0); ecc != 3 {
		t.Fatalf("Eccentricity(0) = %v, want 3", ecc)
	}
}

func BenchmarkDijkstra400(b *testing.B) {
	g := randomGraph(1, 400, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Dijkstra(0)
	}
}

func TestBFSPaths(t *testing.T) {
	g := New(5, false)
	mustAdd(t, g, 0, 1, 100) // heavy weights: BFS must ignore them
	mustAdd(t, g, 1, 2, 100)
	mustAdd(t, g, 0, 3, 1)
	mustAdd(t, g, 3, 2, 1)
	sp := g.BFSPaths(0)
	if sp.Dist[2] != 2 {
		t.Fatalf("hop distance to 2 = %v, want 2", sp.Dist[2])
	}
	path := sp.PathTo(2)
	if len(path) != 3 || path[0] != 0 || path[2] != 2 {
		t.Fatalf("BFS path %v, want 3 nodes ending at 2", path)
	}
	if !math.IsInf(sp.Dist[4], 1) {
		t.Fatalf("isolated node distance %v, want +Inf", sp.Dist[4])
	}
	if sp.PathTo(4) != nil {
		t.Fatal("path to unreachable node should be nil")
	}
}

func TestBFSPathsMatchHopDistances(t *testing.T) {
	g := randomGraph(21, 30, 0.15)
	sp := g.BFSPaths(0)
	hops := g.HopDistances(0)
	for v := 0; v < g.N(); v++ {
		want := float64(hops[v])
		if hops[v] < 0 {
			if !math.IsInf(sp.Dist[v], 1) {
				t.Fatalf("node %d: BFSPaths %v, HopDistances unreachable", v, sp.Dist[v])
			}
			continue
		}
		if sp.Dist[v] != want {
			t.Fatalf("node %d: BFSPaths %v != HopDistances %v", v, sp.Dist[v], want)
		}
	}
}

func TestDirectedAndDegreeAccessors(t *testing.T) {
	d := New(3, true)
	if !d.Directed() {
		t.Fatal("directed graph reports undirected")
	}
	u := New(3, false)
	if u.Directed() {
		t.Fatal("undirected graph reports directed")
	}
	mustAdd(t, u, 0, 1, 1)
	mustAdd(t, u, 0, 2, 1)
	if u.Degree(0) != 2 || u.Degree(1) != 1 {
		t.Fatalf("degrees %d/%d, want 2/1", u.Degree(0), u.Degree(1))
	}
	if u.HasEdge(-1, 0) {
		t.Fatal("HasEdge accepted negative node")
	}
}
