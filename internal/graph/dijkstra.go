package graph

import (
	"math"
)

// Inf is the distance reported for unreachable nodes.
var Inf = math.Inf(1)

// pqItem is an entry in the Dijkstra priority queue.
type pqItem struct {
	node int
	dist float64
}

// pq is a typed binary min-heap on dist. container/heap's interface would
// box every pqItem through interface{} on Push/Pop — two heap allocations
// per relaxed edge — so the sift routines are hand-rolled over the concrete
// slice instead and the queue allocates only when it grows its backing
// array.
type pq []pqItem

func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	// Sift up.
	s := *q
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].dist <= s[i].dist {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (q *pq) pop() pqItem {
	s := *q
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*q = s[:n]
	s = s[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s[l].dist < s[smallest].dist {
			smallest = l
		}
		if r < n && s[r].dist < s[smallest].dist {
			smallest = r
		}
		if smallest == i {
			return top
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
}

// ShortestPaths holds the result of a single-source Dijkstra run.
type ShortestPaths struct {
	Source int
	Dist   []float64 // Dist[v] is the weighted distance src->v, Inf if unreachable.
	Prev   []int     // Prev[v] is v's predecessor on a shortest path, -1 for src/unreachable.
}

// Dijkstra computes single-source shortest paths from src over non-negative
// edge weights (lazy-deletion binary heap, O((n+m) log n)).
func (g *Graph) Dijkstra(src int) ShortestPaths {
	n := len(g.adj)
	sp := ShortestPaths{
		Source: src,
		Dist:   make([]float64, n),
		Prev:   make([]int, n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = Inf
		sp.Prev[i] = -1
	}
	sp.Dist[src] = 0
	q := make(pq, 1, n)
	q[0] = pqItem{node: src, dist: 0}
	for len(q) > 0 {
		it := q.pop()
		if it.dist > sp.Dist[it.node] {
			continue // stale entry
		}
		for _, e := range g.adj[it.node] {
			if nd := it.dist + e.Weight; nd < sp.Dist[e.To] {
				sp.Dist[e.To] = nd
				sp.Prev[e.To] = it.node
				q.push(pqItem{node: e.To, dist: nd})
			}
		}
	}
	return sp
}

// PathTo reconstructs the shortest path from the source to dst, inclusive of
// both endpoints. It returns nil if dst is unreachable.
func (sp ShortestPaths) PathTo(dst int) []int {
	if math.IsInf(sp.Dist[dst], 1) {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = sp.Prev[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// AllPairs computes shortest-path distances between every pair of nodes by
// running Dijkstra from each source. The result is row-major: dist[u][v].
func (g *Graph) AllPairs() [][]float64 {
	n := len(g.adj)
	dist := make([][]float64, n)
	for u := 0; u < n; u++ {
		dist[u] = g.Dijkstra(u).Dist
	}
	return dist
}

// Eccentricity returns the maximum finite shortest-path distance from src.
func (g *Graph) Eccentricity(src int) float64 {
	sp := g.Dijkstra(src)
	ecc := 0.0
	for _, d := range sp.Dist {
		if !math.IsInf(d, 1) && d > ecc {
			ecc = d
		}
	}
	return ecc
}
