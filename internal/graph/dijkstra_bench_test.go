package graph_test

import (
	"math"
	"testing"

	"mecache/internal/topology"
)

// BenchmarkAllPairsGTITM250 measures all-pairs Dijkstra on the 250-node
// GT-ITM topology the large-scale experiments use. ReportAllocs pins the
// typed index-heap win: the former container/heap queue boxed every push
// and pop through interface{}, adding two heap allocations per relaxed edge
// (tens of thousands per AllPairs call at this size); the typed heap's only
// allocations are the result rows and the occasional queue growth.
func BenchmarkAllPairsGTITM250(b *testing.B) {
	top, err := topology.GTITM(7, 250)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist := top.Graph.AllPairs()
		if math.IsInf(dist[0][top.N()-1], 1) {
			b.Fatal("disconnected topology")
		}
	}
}
