package topology

import (
	"fmt"
	"math"

	"mecache/internal/graph"
	"mecache/internal/rng"
)

// TransitStubConfig parameterizes the GT-ITM-style hierarchical generator.
// The classic GT-ITM transit-stub model builds a small, densely connected
// transit backbone; each transit node sponsors several stub domains; stub
// domains are internally connected random graphs attached to their transit
// node.
type TransitStubConfig struct {
	// Transits is the number of transit (backbone) domains. Must be >= 1.
	Transits int
	// NodesPerTransit is the number of backbone nodes per transit domain.
	NodesPerTransit int
	// StubsPerTransitNode is the number of stub domains hanging off each
	// transit node.
	StubsPerTransitNode int
	// NodesPerStub is the number of nodes in each stub domain.
	NodesPerStub int
	// IntraStubProb is the probability of an edge between two nodes of the
	// same stub domain (on top of a spanning path that keeps it connected).
	IntraStubProb float64
	// ExtraTransitProb adds redundant transit-transit links beyond the
	// backbone ring for resilience, as GT-ITM does.
	ExtraTransitProb float64
}

// DefaultTransitStub returns a configuration that yields approximately n
// nodes with GT-ITM's canonical 1:3 transit:stub flavor. The generated size
// is exact for the sizes used in the paper's sweeps (50..400) because the
// remainder is absorbed by the final stub domain.
func DefaultTransitStub(n int) TransitStubConfig {
	// Scale the backbone with sqrt(n) so large networks get a larger core.
	transitNodes := int(math.Max(2, math.Round(math.Sqrt(float64(n))/2)))
	return TransitStubConfig{
		Transits:            1,
		NodesPerTransit:     transitNodes,
		StubsPerTransitNode: 2,
		NodesPerStub:        4,
		IntraStubProb:       0.3,
		ExtraTransitProb:    0.3,
	}
}

// TransitStub generates a GT-ITM-style transit-stub topology with exactly n
// nodes. Backbone nodes are placed centrally; stub domains cluster around
// their transit node, so edge weights (geometric distances) preserve the
// locality structure the MEC experiments rely on (cloudlets near the edge,
// data centers in the core).
func TransitStub(r *rng.Source, n int, cfg TransitStubConfig) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: TransitStub needs n >= 2, got %d", n)
	}
	if cfg.Transits < 1 || cfg.NodesPerTransit < 1 {
		return nil, fmt.Errorf("topology: invalid transit configuration %+v", cfg)
	}
	backbone := cfg.Transits * cfg.NodesPerTransit
	if backbone > n {
		backbone = n
	}

	g := graph.New(n, false)
	pos := make([]Point, n)

	// Place backbone nodes on a small central circle.
	for i := 0; i < backbone; i++ {
		theta := 2 * math.Pi * float64(i) / float64(backbone)
		pos[i] = Point{
			X: 0.5 + 0.12*math.Cos(theta) + r.FloatRange(-0.01, 0.01),
			Y: 0.5 + 0.12*math.Sin(theta) + r.FloatRange(-0.01, 0.01),
		}
	}
	// Backbone ring plus random chords.
	for i := 0; i < backbone; i++ {
		j := (i + 1) % backbone
		if i != j && !g.HasEdge(i, j) {
			if err := g.AddEdge(i, j, dist(pos[i], pos[j])+0.01); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < backbone; i++ {
		for j := i + 2; j < backbone; j++ {
			if !g.HasEdge(i, j) && r.Bool(cfg.ExtraTransitProb) {
				if err := g.AddEdge(i, j, dist(pos[i], pos[j])+0.01); err != nil {
					return nil, err
				}
			}
		}
	}

	// Distribute the remaining nodes into stub domains round-robin over
	// transit nodes; each stub is a connected cluster near its transit node.
	remaining := n - backbone
	stubSize := cfg.NodesPerStub
	if stubSize < 1 {
		stubSize = 4
	}
	next := backbone
	transit := 0
	for remaining > 0 {
		size := stubSize
		if size > remaining {
			size = remaining
		}
		anchor := transit % backbone
		transit++
		// Cluster center pushed outward from the backbone circle.
		theta := 2 * math.Pi * (float64(anchor)/float64(backbone) + r.FloatRange(-0.08, 0.08))
		radius := r.FloatRange(0.28, 0.45)
		cx := 0.5 + radius*math.Cos(theta)
		cy := 0.5 + radius*math.Sin(theta)
		members := make([]int, 0, size)
		for k := 0; k < size; k++ {
			id := next
			next++
			pos[id] = Point{
				X: clamp01(cx + r.FloatRange(-0.06, 0.06)),
				Y: clamp01(cy + r.FloatRange(-0.06, 0.06)),
			}
			members = append(members, id)
		}
		// Spanning path keeps the stub connected; extra intra-stub edges by
		// probability.
		for k := 1; k < len(members); k++ {
			u, v := members[k-1], members[k]
			if err := g.AddEdge(u, v, dist(pos[u], pos[v])+0.01); err != nil {
				return nil, err
			}
		}
		for a := 0; a < len(members); a++ {
			for b := a + 2; b < len(members); b++ {
				if r.Bool(cfg.IntraStubProb) {
					u, v := members[a], members[b]
					if !g.HasEdge(u, v) {
						if err := g.AddEdge(u, v, dist(pos[u], pos[v])+0.01); err != nil {
							return nil, err
						}
					}
				}
			}
		}
		// Attach the stub to its transit node (and occasionally a second one,
		// GT-ITM's multi-homing).
		gate := members[0]
		if err := g.AddEdge(gate, anchor, dist(pos[gate], pos[anchor])+0.01); err != nil {
			return nil, err
		}
		if backbone > 1 && r.Bool(0.25) {
			second := (anchor + 1 + r.Intn(backbone-1)) % backbone
			tail := members[len(members)-1]
			if second != anchor && !g.HasEdge(tail, second) && tail != second {
				if err := g.AddEdge(tail, second, dist(pos[tail], pos[second])+0.01); err != nil {
					return nil, err
				}
			}
		}
		remaining -= size
	}

	ensureConnected(g, pos)
	return &Topology{Name: fmt.Sprintf("gtitm-%d", n), Graph: g, Pos: pos}, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// GTITM is the convenience entry point used by the experiment drivers: a
// transit-stub network of exactly n nodes with the default configuration,
// deterministically derived from seed.
func GTITM(seed uint64, n int) (*Topology, error) {
	return TransitStub(rng.New(seed), n, DefaultTransitStub(n))
}
