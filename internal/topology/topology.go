// Package topology generates the network topologies used in the paper's
// evaluation: GT-ITM-style transit-stub hierarchies and Waxman random graphs
// for the simulations (Section IV-A varies GT-ITM networks from 50 to 400
// switch nodes), and an AS1755-like Internet-Topology-Zoo graph for the
// test-bed overlay (Section IV-C).
//
// The original GT-ITM tool and the Topology Zoo dataset are external
// artifacts; this package re-implements their structural models from scratch
// so that every experiment is self-contained and deterministic. See DESIGN.md
// section 4 for the substitution rationale.
package topology

import (
	"fmt"
	"math"

	"mecache/internal/graph"
	"mecache/internal/rng"
)

// Point is a node position on the unit plane; generators place nodes
// geometrically so that edge weights can reflect distance locality.
type Point struct {
	X, Y float64
}

// Topology is a generated network: a connected undirected graph plus node
// coordinates (used for distance-dependent edge probabilities and weights).
type Topology struct {
	Name  string
	Graph *graph.Graph
	Pos   []Point
}

// N returns the number of nodes.
func (t *Topology) N() int { return t.Graph.N() }

// M returns the number of links.
func (t *Topology) M() int { return t.Graph.M() }

func dist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// ensureConnected links any disconnected component to the nearest node of the
// visited region, preserving geometric locality. Generators call it so every
// returned topology is connected, matching GT-ITM's post-processing.
func ensureConnected(g *graph.Graph, pos []Point) {
	n := g.N()
	if n == 0 {
		return
	}
	inMain := make([]bool, n)
	for _, v := range g.BFSOrder(0) {
		inMain[v] = true
	}
	for {
		// Find the first node outside the main component.
		u := -1
		for v := 0; v < n; v++ {
			if !inMain[v] {
				u = v
				break
			}
		}
		if u < 0 {
			return
		}
		// Connect it to the geometrically nearest node inside the component.
		best, bestD := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if inMain[v] {
				if d := dist(pos[u], pos[v]); d < bestD {
					best, bestD = v, d
				}
			}
		}
		// best is always found because node 0 is in the main component.
		_ = g.AddEdge(u, best, bestD+0.01)
		for _, v := range g.BFSOrder(u) {
			inMain[v] = true
		}
	}
}

// Waxman generates a Waxman random graph with n nodes: nodes are placed
// uniformly on the unit square and each pair (u,v) is linked with probability
// alpha * exp(-d(u,v) / (beta * L)), where L is the maximum possible
// distance. The result is post-processed to be connected. Typical parameters
// are alpha=0.4, beta=0.14 (the GT-ITM defaults).
func Waxman(r *rng.Source, n int, alpha, beta float64) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: Waxman needs n > 0, got %d", n)
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 {
		return nil, fmt.Errorf("topology: Waxman parameters alpha=%v beta=%v out of range", alpha, beta)
	}
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{X: r.Float64(), Y: r.Float64()}
	}
	g := graph.New(n, false)
	maxD := math.Sqrt2
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := dist(pos[u], pos[v])
			if r.Bool(alpha * math.Exp(-d/(beta*maxD))) {
				if err := g.AddEdge(u, v, d+0.01); err != nil {
					return nil, err
				}
			}
		}
	}
	ensureConnected(g, pos)
	return &Topology{Name: fmt.Sprintf("waxman-%d", n), Graph: g, Pos: pos}, nil
}
