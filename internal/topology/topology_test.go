package topology

import (
	"testing"
	"testing/quick"

	"mecache/internal/rng"
)

func TestWaxmanBasics(t *testing.T) {
	top, err := Waxman(rng.New(1), 60, 0.4, 0.14)
	if err != nil {
		t.Fatal(err)
	}
	if top.N() != 60 {
		t.Fatalf("N = %d, want 60", top.N())
	}
	if !top.Graph.Connected() {
		t.Fatal("Waxman topology must be connected")
	}
	if len(top.Pos) != 60 {
		t.Fatalf("positions: %d, want 60", len(top.Pos))
	}
}

func TestWaxmanInvalidParams(t *testing.T) {
	cases := []struct {
		name        string
		n           int
		alpha, beta float64
	}{
		{"zero nodes", 0, 0.4, 0.14},
		{"negative alpha", 10, -0.1, 0.14},
		{"alpha above one", 10, 1.5, 0.14},
		{"zero beta", 10, 0.4, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Waxman(rng.New(1), tc.n, tc.alpha, tc.beta); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestWaxmanDeterministic(t *testing.T) {
	a, err := Waxman(rng.New(9), 40, 0.4, 0.14)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Waxman(rng.New(9), 40, 0.4, 0.14)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatalf("same seed produced different edge counts: %d vs %d", a.M(), b.M())
	}
}

func TestTransitStubSizesExact(t *testing.T) {
	// The paper sweeps GT-ITM networks from 50 to 400 nodes.
	for _, n := range []int{50, 100, 150, 200, 250, 300, 350, 400} {
		top, err := GTITM(42, n)
		if err != nil {
			t.Fatalf("GTITM(%d): %v", n, err)
		}
		if top.N() != n {
			t.Fatalf("GTITM(%d) generated %d nodes", n, top.N())
		}
		if !top.Graph.Connected() {
			t.Fatalf("GTITM(%d) disconnected", n)
		}
		if top.M() < n-1 {
			t.Fatalf("GTITM(%d) has %d edges, fewer than a tree", n, top.M())
		}
	}
}

func TestTransitStubProperty(t *testing.T) {
	check := func(seed uint64, extra uint16) bool {
		n := 10 + int(extra%391) // 10..400
		top, err := GTITM(seed, n)
		if err != nil {
			return false
		}
		return top.N() == n && top.Graph.Connected()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitStubRejectsTiny(t *testing.T) {
	if _, err := GTITM(1, 1); err == nil {
		t.Fatal("GTITM(1 node) should fail")
	}
}

func TestTransitStubLocality(t *testing.T) {
	// Backbone nodes should be more central than stub nodes on average.
	top, err := GTITM(7, 200)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTransitStub(200)
	backbone := cfg.Transits * cfg.NodesPerTransit
	centerDist := func(p Point) float64 {
		dx, dy := p.X-0.5, p.Y-0.5
		return dx*dx + dy*dy
	}
	var coreSum, stubSum float64
	for i := 0; i < backbone; i++ {
		coreSum += centerDist(top.Pos[i])
	}
	for i := backbone; i < top.N(); i++ {
		stubSum += centerDist(top.Pos[i])
	}
	coreAvg := coreSum / float64(backbone)
	stubAvg := stubSum / float64(top.N()-backbone)
	if coreAvg >= stubAvg {
		t.Fatalf("backbone nodes (avg center dist %v) should be more central than stubs (%v)", coreAvg, stubAvg)
	}
}

func TestAS1755Shape(t *testing.T) {
	top := AS1755()
	if top.N() != 87 {
		t.Fatalf("AS1755 nodes = %d, want 87", top.N())
	}
	if top.M() != 161 {
		t.Fatalf("AS1755 links = %d, want 161", top.M())
	}
	if !top.Graph.Connected() {
		t.Fatal("AS1755 must be connected")
	}
}

func TestAS1755Deterministic(t *testing.T) {
	a, b := AS1755(), AS1755()
	for v := 0; v < a.N(); v++ {
		if a.Graph.Degree(v) != b.Graph.Degree(v) {
			t.Fatalf("node %d degree differs across calls: %d vs %d", v, a.Graph.Degree(v), b.Graph.Degree(v))
		}
	}
}

func TestAS1755DegreeSkew(t *testing.T) {
	// Preferential attachment should give at least one hub well above the
	// mean degree (2M/N ~ 3.7).
	top := AS1755()
	maxDeg := 0
	for v := 0; v < top.N(); v++ {
		if d := top.Graph.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 6 {
		t.Fatalf("max degree %d, expected a hub of degree >= 6", maxDeg)
	}
}

func BenchmarkGTITM400(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GTITM(uint64(i), 400); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAS1755(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = AS1755()
	}
}

func TestTransitStubMultipleTransitDomains(t *testing.T) {
	cfg := TransitStubConfig{
		Transits:            3,
		NodesPerTransit:     4,
		StubsPerTransitNode: 2,
		NodesPerStub:        5,
		IntraStubProb:       0.3,
		ExtraTransitProb:    0.4,
	}
	top, err := TransitStub(rng.New(3), 120, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if top.N() != 120 || !top.Graph.Connected() {
		t.Fatalf("multi-transit topology N=%d connected=%v", top.N(), top.Graph.Connected())
	}
	// The 12 backbone nodes must be denser than the average stub node.
	backbone := cfg.Transits * cfg.NodesPerTransit
	coreDeg, stubDeg := 0, 0
	for v := 0; v < backbone; v++ {
		coreDeg += top.Graph.Degree(v)
	}
	for v := backbone; v < top.N(); v++ {
		stubDeg += top.Graph.Degree(v)
	}
	coreAvg := float64(coreDeg) / float64(backbone)
	stubAvg := float64(stubDeg) / float64(top.N()-backbone)
	if coreAvg <= stubAvg {
		t.Fatalf("backbone degree %v not above stub degree %v", coreAvg, stubAvg)
	}
}

func TestTransitStubBackboneLargerThanNodes(t *testing.T) {
	// A backbone bigger than n is clamped, not an error.
	cfg := TransitStubConfig{Transits: 1, NodesPerTransit: 50, NodesPerStub: 4, IntraStubProb: 0.2}
	top, err := TransitStub(rng.New(1), 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if top.N() != 10 {
		t.Fatalf("N = %d, want 10", top.N())
	}
}
