package topology

import (
	"math"

	"mecache/internal/graph"
	"mecache/internal/rng"
)

// as1755Nodes and as1755Links match the published size of the Internet
// Topology Zoo's AS1755 (Ebone) map used for the paper's test-bed overlay.
// The Zoo dataset itself is an external artifact; we synthesize a
// deterministic graph of the same scale and degree character (a sparse
// European backbone: a long ring of PoPs with preferential-attachment
// chords). The algorithms under test consume only node count, locality and
// path lengths, all of which the synthetic twin preserves.
const (
	as1755Nodes = 87
	as1755Links = 161
)

// AS1755 returns the deterministic AS1755-like topology (87 nodes,
// 161 links). Repeated calls return structurally identical topologies.
func AS1755() *Topology {
	r := rng.New(0x1755)
	n := as1755Nodes
	g := graph.New(n, false)
	pos := make([]Point, n)

	// PoPs arranged on an ellipse (roughly how Ebone's European PoPs lay
	// out), with jitter for distinct link weights.
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		pos[i] = Point{
			X: clamp01(0.5 + 0.42*math.Cos(theta) + r.FloatRange(-0.02, 0.02)),
			Y: clamp01(0.5 + 0.30*math.Sin(theta) + r.FloatRange(-0.02, 0.02)),
		}
	}
	// Backbone ring: n links.
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		_ = g.AddEdge(i, j, dist(pos[i], pos[j])+0.01)
	}
	// Preferential-attachment chords until the published link count is hit.
	// Degree-weighted endpoint selection reproduces the Zoo map's skewed
	// degree distribution (a few high-degree hub PoPs).
	degreeSum := 2 * n
	for g.M() < as1755Links {
		u := pickByDegree(r, g, degreeSum)
		v := r.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		_ = g.AddEdge(u, v, dist(pos[u], pos[v])+0.01)
		degreeSum += 2
	}
	return &Topology{Name: "as1755", Graph: g, Pos: pos}
}

// pickByDegree samples a node with probability proportional to its degree.
func pickByDegree(r *rng.Source, g *graph.Graph, degreeSum int) int {
	target := r.Intn(degreeSum)
	acc := 0
	for v := 0; v < g.N(); v++ {
		acc += g.Degree(v)
		if target < acc {
			return v
		}
	}
	return g.N() - 1
}
