// Package tenant shards the market daemon: a registry maps tenant IDs to
// independent instances of the server package's loop/WAL/snapshot stack,
// so one process hosts many markets — one per region or operator, exactly
// the "each base-station neighborhood is its own caching game" shape of
// the multi-cell settings in the literature. Each tenant owns its event
// loop, command queue, WAL directory, and snapshot file; requests route by
// a /v1/t/{tenant}/ prefix, and the bare /v1/ API aliases a default
// tenant so single-tenant clients keep working unchanged.
//
// Tenants are resident or evicted. Under a resident cap the least recently
// used idle tenant is gracefully stopped — final snapshot, WAL compaction
// — and rebuilt lazily through the recovery path on its next request.
// In-flight requests pin their tenant: eviction never races an admission,
// and an admission that arrives mid-eviction waits for the teardown and
// rehydrates, it is never dropped.
package tenant

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mecache/internal/metrics"
	"mecache/internal/obs"
	"mecache/internal/server"
	"mecache/internal/stats"

	"log/slog"
)

// DefaultTenant is the tenant ID the bare /v1/ routes alias.
const DefaultTenant = "default"

// maxTenantID bounds tenant-ID length; IDs become directory names and
// metric label values, so they stay short and safe.
const maxTenantID = 64

// Config parameterizes the registry.
type Config struct {
	// Template is the per-tenant daemon configuration. Seed, topology,
	// workload, policy, queue depth, and timeouts apply to every tenant
	// identically — sharing Seed is what makes a tenant's fixed-seed
	// command history byte-identical to a single-tenant daemon's. The
	// persistence paths are bases: tenant t logs to
	// Template.WALDir/<t>/ and snapshots to
	// dir(Template.SnapshotPath)/<t>/base(Template.SnapshotPath).
	// Template.Tenant and Template.Metrics are owned by the registry and
	// must be left zero.
	Template server.Config
	// Default is the tenant the bare /v1/ prefix aliases; empty means
	// DefaultTenant.
	Default string
	// MaxResident caps concurrently resident tenants; 0 means unlimited
	// (nothing is ever evicted). A positive cap requires persistence
	// (Template.WALDir or Template.SnapshotPath), because eviction without
	// a durable copy would silently discard a market.
	MaxResident int
	// Logger receives registry lifecycle events and, extended with a
	// tenant attribute, each tenant daemon's log stream.
	Logger *slog.Logger
}

func (cfg Config) defaultTenant() string {
	if cfg.Default == "" {
		return DefaultTenant
	}
	return cfg.Default
}

// ValidTenantID reports whether id is usable as a tenant identifier:
// non-empty, at most 64 bytes, letters, digits, dots, underscores, and
// dashes only, and not a dot-only name. The character set keeps IDs safe
// as path segments (WAL and snapshot directories) and label values.
func ValidTenantID(id string) bool {
	if id == "" || len(id) > maxTenantID || strings.Trim(id, ".") == "" {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return true
}

// entry states. An entry is created hydrating, becomes resident when its
// daemon is serving, and is evicting while its daemon drains and
// snapshots; evicted entries leave the map entirely.
const (
	hydrating = iota
	resident
	evicting
)

// entry is one tenant's slot in the registry.
type entry struct {
	id    string
	state int
	srv   *server.Server
	// refs counts in-flight requests pinning the tenant; only entries with
	// refs == 0 are eviction candidates, so a request never sees its
	// daemon stop underneath it.
	refs int
	// lastUse orders entries for LRU eviction (registry clock ticks, not
	// wall time, so the order is exact and test-stable).
	lastUse uint64
	// ready is closed when hydration finishes (successfully or not; err
	// carries the failure). gone is closed when an eviction completes and
	// the entry has left the map.
	ready chan struct{}
	err   error
	gone  chan struct{}
}

// Registry routes requests to per-tenant daemons, creating, evicting, and
// rehydrating them on demand.
type Registry struct {
	cfg Config
	log *slog.Logger
	reg *metrics.Registry
	mux *http.ServeMux

	mu     sync.Mutex
	ents   map[string]*entry
	clock  uint64
	closed bool

	gResident  *metrics.Gauge
	mHydrated  *metrics.Counter
	mEvicted   *metrics.Counter
	mEvictErrs *metrics.Counter
	hHydrate   *metrics.Histogram

	// spans retains the registry's own lifecycle spans (tenant hydration
	// and eviction), sized by the template's SpanDepth and served at the
	// process-level GET /debug/spans; per-tenant request spans live in each
	// tenant daemon and are served under /v1/t/{tenant}/debug/spans.
	spans   *obs.SpanRing
	spanSeq atomic.Uint64
}

// NewRegistry builds the registry. No tenant is hydrated yet: the first
// request to each tenant (including the default) builds or recovers its
// daemon through server.New, so a restart after a crash rehydrates
// exactly the tenants that receive traffic.
func NewRegistry(cfg Config) (*Registry, error) {
	if cfg.Template.Tenant != "" || cfg.Template.Metrics != nil {
		return nil, fmt.Errorf("tenant: Template.Tenant and Template.Metrics are registry-owned; leave them zero")
	}
	if !ValidTenantID(cfg.defaultTenant()) {
		return nil, fmt.Errorf("tenant: invalid default tenant id %q", cfg.defaultTenant())
	}
	if cfg.MaxResident < 0 {
		return nil, fmt.Errorf("tenant: negative MaxResident %d", cfg.MaxResident)
	}
	if cfg.MaxResident > 0 && cfg.Template.WALDir == "" && cfg.Template.SnapshotPath == "" {
		return nil, fmt.Errorf("tenant: MaxResident %d needs persistence (WALDir or SnapshotPath): evicting an in-memory tenant would discard its market", cfg.MaxResident)
	}
	// Validate the template once up front (minus per-tenant paths) so a
	// bad flag fails at boot, not at the first tenant's lazy hydration.
	if err := cfg.Template.Validate(); err != nil {
		return nil, err
	}
	r := &Registry{
		cfg:   cfg,
		log:   cfg.Logger,
		reg:   metrics.NewRegistry(),
		ents:  make(map[string]*entry),
		spans: obs.NewSpanRing(cfg.Template.SpanDepth),
	}
	if r.log == nil {
		r.log = obs.NopLogger()
	}
	// Process-wide series are registered here, exactly once; per-tenant
	// daemons share this registry and label their series with tenant=<id>.
	metrics.RegisterRuntime(r.reg)
	b := obs.Build()
	r.reg.Gauge("mecache_build_info", "Build identity of the running binary; value is always 1.",
		"version", b.Version, "goversion", b.GoVersion, "revision", b.Revision).Set(1)
	r.gResident = r.reg.Gauge("mecd_tenants_resident", "Tenant daemons currently resident in memory.")
	r.mHydrated = r.reg.Counter("mecd_tenant_hydrations_total", "Tenant daemons built or rebuilt from snapshot+WAL.")
	r.mEvicted = r.reg.Counter("mecd_tenant_evictions_total", "Tenant daemons evicted under the resident cap.")
	r.mEvictErrs = r.reg.Counter("mecd_tenant_eviction_errors_total", "Evictions whose graceful stop reported an error.")
	r.hHydrate = r.reg.Histogram("mecd_tenant_hydrate_seconds", "Tenant hydration latency (topology build plus snapshot restore plus WAL replay).",
		stats.LatencyBuckets())
	r.buildMux()
	return r, nil
}

// tenantConfig derives tenant id's daemon configuration from the template:
// per-tenant persistence paths under the base paths, the shared metrics
// registry with a tenant label, and a logger carrying the tenant id.
func (r *Registry) tenantConfig(id string) server.Config {
	cfg := r.cfg.Template
	cfg.Tenant = id
	cfg.Metrics = r.reg
	cfg.Logger = r.log.With("tenant", id)
	if base := r.cfg.Template.WALDir; base != "" {
		cfg.WALDir = filepath.Join(base, id)
	}
	if base := r.cfg.Template.SnapshotPath; base != "" {
		cfg.SnapshotPath = filepath.Join(filepath.Dir(base), id, filepath.Base(base))
	}
	return cfg
}

// recordSpan retains a registry lifecycle span and observes its duration
// into the shared mecd_span_seconds family under the tenant's label, the
// same single-measurement contract the server's recordSpan keeps. The
// histogram lookup is idempotent (the registry returns existing
// instruments), so lazy per-tenant registration here is safe.
func (r *Registry) recordSpan(sp obs.Span, tenant string) {
	if !r.spans.Enabled() {
		return
	}
	sp.Attrs = append(sp.Attrs, obs.String("tenant", tenant))
	r.spans.Record(sp)
	r.reg.Histogram("mecd_span_seconds", server.SpanSecondsHelp,
		stats.LatencyBuckets(), "stage", sp.Stage, "tenant", tenant).Observe(sp.Duration)
}

// mintTrace builds a reproducible-identity trace ID for a registry
// lifecycle event (no HTTP request carries one in).
func (r *Registry) mintTrace() string {
	return obs.MintTraceID(r.cfg.Template.Seed^0x7e4a47, r.spanSeq.Add(1))
}

// tick advances the LRU clock. Callers hold r.mu.
func (r *Registry) tick() uint64 {
	r.clock++
	return r.clock
}

// residentCount counts resident entries. Callers hold r.mu.
func (r *Registry) residentCount() int {
	n := 0
	for _, e := range r.ents {
		if e.state == resident {
			n++
		}
	}
	return n
}

// acquire returns tenant id's entry with its daemon serving and one
// reference held; the caller must release it. A missing tenant is
// hydrated (building or recovering its daemon), a hydrating one is
// awaited, and an evicting one is awaited and then rebuilt — a request
// never observes a half-stopped daemon.
func (r *Registry) acquire(id string) (*entry, error) {
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return nil, fmt.Errorf("tenant: registry is shut down")
		}
		e, ok := r.ents[id]
		if !ok {
			e = &entry{id: id, state: hydrating, ready: make(chan struct{})}
			r.ents[id] = e
			r.mu.Unlock()
			r.hydrate(e)
			if e.err != nil {
				return nil, e.err
			}
			continue // re-enter to take a reference under the lock
		}
		switch e.state {
		case resident:
			e.refs++
			e.lastUse = r.tick()
			r.mu.Unlock()
			return e, nil
		case hydrating:
			r.mu.Unlock()
			<-e.ready
			if e.err != nil {
				return nil, e.err
			}
		case evicting:
			// The daemon is draining toward its final snapshot. Wait for
			// the teardown to finish, then loop: the entry is gone from
			// the map and the next pass rehydrates it from disk.
			r.mu.Unlock()
			<-e.gone
		}
	}
}

// release drops a reference taken by acquire.
func (r *Registry) release(e *entry) {
	r.mu.Lock()
	e.refs--
	r.mu.Unlock()
}

// hydrate builds e's daemon (server.New restores the snapshot and replays
// the WAL) and publishes the outcome through e.ready. On success it also
// enforces the resident cap by evicting LRU idle tenants.
func (r *Registry) hydrate(e *entry) {
	start := time.Now()
	trace := r.mintTrace()
	srv, err := server.New(r.tenantConfig(e.id))
	if err == nil {
		srv.Start()
	}
	r.mu.Lock()
	if err != nil {
		e.err = fmt.Errorf("tenant %s: %w", e.id, err)
		delete(r.ents, e.id)
		r.mu.Unlock()
		close(e.ready)
		r.recordSpan(obs.Span{
			Trace: trace, Stage: obs.StageTenantHydrate,
			Start: start, Duration: time.Since(start).Seconds(),
			Attrs: []obs.Attr{obs.String("result", "error")},
		}, e.id)
		r.log.Error("tenant hydration failed", "tenant", e.id, "trace", trace, "err", err)
		return
	}
	e.srv = srv
	e.state = resident
	e.lastUse = r.tick()
	r.mHydrated.Inc()
	r.gResident.Set(float64(r.residentCount()))
	victims := r.overflowLocked(e)
	r.mu.Unlock()
	close(e.ready)
	r.hHydrate.Observe(time.Since(start).Seconds())
	r.recordSpan(obs.Span{
		Trace: trace, Stage: obs.StageTenantHydrate,
		Start: start, Duration: time.Since(start).Seconds(),
		Attrs: []obs.Attr{obs.String("result", "resident")},
	}, e.id)
	r.log.Info("tenant resident", "tenant", e.id, "trace", trace, "hydrateMs",
		float64(time.Since(start).Microseconds())/1000)
	r.evict(victims)
}

// overflowLocked picks the tenants to evict: while the resident count
// exceeds the cap, the least recently used entry with no in-flight
// references is marked evicting. Entries pinned by requests are skipped —
// hot tenants stay resident even over the cap — and so is the entry just
// hydrated (its acquirer takes its reference only after hydrate returns,
// so without the exclusion a full registry would evict the tenant it just
// built and loop). Callers hold r.mu.
func (r *Registry) overflowLocked(just *entry) []*entry {
	if r.cfg.MaxResident <= 0 {
		return nil
	}
	var victims []*entry
	over := r.residentCount() - r.cfg.MaxResident
	for ; over > 0; over-- {
		var lru *entry
		for _, e := range r.ents {
			if e == just || e.state != resident || e.refs > 0 {
				continue
			}
			if lru == nil || e.lastUse < lru.lastUse {
				lru = e
			}
		}
		if lru == nil {
			break // everything is pinned; stay over the cap
		}
		lru.state = evicting
		lru.gone = make(chan struct{})
		victims = append(victims, lru)
	}
	return victims
}

// evict gracefully stops each victim outside the registry lock: the
// daemon drains its queue, writes its final snapshot, and compacts its
// WAL, so the tenant's whole history is durable before the entry leaves
// the map. A stop error is logged and counted but still evicts — with a
// WAL the un-snapshotted tail replays on rehydration.
func (r *Registry) evict(victims []*entry) {
	for _, e := range victims {
		start := time.Now()
		trace := r.mintTrace()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := e.srv.Stop(ctx)
		cancel()
		result := "evicted"
		if err != nil {
			result = "stop_error"
			r.mEvictErrs.Inc()
			r.log.Error("tenant eviction stop failed", "tenant", e.id, "trace", trace, "err", err)
		}
		r.mu.Lock()
		delete(r.ents, e.id)
		r.mEvicted.Inc()
		r.gResident.Set(float64(r.residentCount()))
		r.mu.Unlock()
		close(e.gone)
		r.recordSpan(obs.Span{
			Trace: trace, Stage: obs.StageTenantEvict,
			Start: start, Duration: time.Since(start).Seconds(),
			Attrs: []obs.Attr{obs.String("result", result)},
		}, e.id)
		r.log.Info("tenant evicted", "tenant", e.id, "trace", trace)
	}
}

// Resident lists the currently resident tenant IDs, sorted.
func (r *Registry) Resident() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.ents))
	for id, e := range r.ents {
		if e.state == resident {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Tenant returns tenant id's daemon, hydrating it if needed. It is the
// programmatic acquire/release cycle in one call: the returned server is
// live at return time but unpinned, so tests and embedders that need a
// stable handle should route HTTP through Handler instead.
func (r *Registry) Tenant(id string) (*server.Server, error) {
	if !ValidTenantID(id) {
		return nil, fmt.Errorf("tenant: invalid tenant id %q", id)
	}
	e, err := r.acquire(id)
	if err != nil {
		return nil, err
	}
	defer r.release(e)
	return e.srv, nil
}

// Registry exposes the shared metrics registry (all tenants plus the
// process-wide series).
func (r *Registry) Metrics() *metrics.Registry { return r.reg }

// Handler returns the multi-tenant HTTP API.
func (r *Registry) Handler() http.Handler { return r.mux }

func (r *Registry) buildMux() {
	mux := http.NewServeMux()
	// Tenant-prefixed API: /v1/t/{tenant}/{rest...} rewrites to the
	// tenant daemon's own /v1/{rest...} route table.
	mux.HandleFunc("/v1/t/{tenant}/{rest...}", func(w http.ResponseWriter, req *http.Request) {
		id := req.PathValue("tenant")
		if !ValidTenantID(id) {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid tenant id %q", id))
			return
		}
		r2 := req.Clone(req.Context())
		r2.URL.Path = "/v1/" + req.PathValue("rest")
		r2.URL.RawPath = ""
		r.serveTenant(id, w, r2)
	})
	// Bare /v1/ aliases the default tenant, so every single-tenant client
	// keeps working against a multi-tenant daemon.
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, req *http.Request) {
		r.serveTenant(r.cfg.defaultTenant(), w, req)
	})
	// Process-level endpoints never touch (or rehydrate) a tenant: the
	// exposition covers all tenants via the shared registry, and health
	// reports the registry itself — a scrape must not keep an idle
	// default tenant resident forever.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		r.mu.Lock()
		closed := r.closed
		n := r.residentCount()
		r.mu.Unlock()
		if closed {
			writeError(w, http.StatusServiceUnavailable, "stopped")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "residentTenants": n, "build": obs.Build(),
		})
	})
	// Registry-level lifecycle spans (hydrations, evictions). Like /metrics
	// and /healthz this never pins or rehydrates a tenant — observing the
	// registry must not change which tenants are resident.
	mux.HandleFunc("GET /debug/spans", r.handleSpans)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	r.mux = mux
}

// handleSpans serves the registry's own lifecycle spans (tenant hydration
// and eviction), newest-started first, with the same query parameters and
// envelope as the per-tenant /v1/debug/spans endpoint.
func (r *Registry) handleSpans(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if !r.spans.Enabled() {
		_ = json.NewEncoder(w).Encode(map[string]any{"enabled": false, "spans": []obs.Span{}})
		return
	}
	n := 64
	if q := req.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad n: "+q)
			return
		}
		n = v
	}
	minDur := 0.0
	if q := req.URL.Query().Get("min_dur"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad min_dur: "+q)
			return
		}
		minDur = v
	}
	spans := r.spans.Snapshot(n, req.URL.Query().Get("trace"), minDur)
	if spans == nil {
		spans = []obs.Span{}
	}
	_ = json.NewEncoder(w).Encode(map[string]any{
		"enabled":   true,
		"count":     len(spans),
		"capacity":  r.spans.Cap(),
		"highWater": r.spans.HighWater(),
		"recorded":  r.spans.Recorded(),
		"spans":     spans,
	})
}

// serveTenant pins tenant id for the duration of one request and forwards
// it to the tenant daemon's handler. Pinning is what makes eviction safe:
// a tenant with an in-flight request is never a victim, so the daemon a
// handler is talking to cannot stop underneath it.
func (r *Registry) serveTenant(id string, w http.ResponseWriter, req *http.Request) {
	e, err := r.acquire(id)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer r.release(e)
	e.srv.Handler().ServeHTTP(w, req)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}

// Stop shuts the registry down: new acquisitions fail, and every resident
// daemon drains, snapshots, and compacts its WAL. The first stop error is
// returned (all daemons are still stopped).
func (r *Registry) Stop(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	var srvs []*server.Server
	for _, e := range r.ents {
		if e.state == resident {
			srvs = append(srvs, e.srv)
		}
	}
	r.mu.Unlock()
	var first error
	for _, s := range srvs {
		if err := s.Stop(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Kill crash-stops every resident daemon — no final snapshots, no WAL
// compaction — simulating a process kill for chaos tests. The next
// registry over the same paths must rebuild every tenant from its
// snapshot plus WAL tail.
func (r *Registry) Kill() {
	r.mu.Lock()
	r.closed = true
	var srvs []*server.Server
	for _, e := range r.ents {
		if e.state == resident {
			srvs = append(srvs, e.srv)
		}
	}
	r.mu.Unlock()
	for _, s := range srvs {
		s.Kill()
	}
}
