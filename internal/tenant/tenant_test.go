package tenant

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mecache/internal/mec"
	"mecache/internal/obs"
	"mecache/internal/rng"
	"mecache/internal/server"
)

// testTemplate keeps the per-tenant network small so hydrations are fast.
func testTemplate(seed uint64) server.Config {
	cfg := server.DefaultConfig(seed)
	cfg.Size = 50
	return cfg
}

func startRegistry(t *testing.T, cfg Config) (*Registry, *httptest.Server) {
	t.Helper()
	r, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := r.Stop(ctx); err != nil {
			t.Errorf("registry stop: %v", err)
		}
	})
	return r, ts
}

// provider derives the i-th reproducible provider the same way mecload
// does, against the template's topology dimensions.
func provider(t *testing.T, cfg server.Config, srv *server.Server, seed uint64, i int) mec.Provider {
	t.Helper()
	v := srv.View()
	return cfg.Workload.DrawProvider(rng.Substream(seed, uint64(i)), v.NumDCs, v.NumNodes)
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestValidTenantID(t *testing.T) {
	for _, ok := range []string{"default", "eu-west", "EU_1", "a.b", "x"} {
		if !ValidTenantID(ok) {
			t.Errorf("ValidTenantID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", ".", "..", "a/b", "a b", "ü", strings.Repeat("x", 65)} {
		if ValidTenantID(bad) {
			t.Errorf("ValidTenantID(%q) = true, want false", bad)
		}
	}
}

func TestRegistryConfigRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"tenant set on template", func(c *Config) { c.Template.Tenant = "x" }},
		{"bad default id", func(c *Config) { c.Default = "a/b" }},
		{"negative cap", func(c *Config) { c.MaxResident = -1 }},
		{"cap without persistence", func(c *Config) { c.MaxResident = 1 }},
		{"bad template", func(c *Config) { c.Template.Xi = 2 }},
	}
	for _, tc := range cases {
		cfg := Config{Template: testTemplate(1)}
		tc.mutate(&cfg)
		if _, err := NewRegistry(cfg); err == nil {
			t.Errorf("%s accepted by NewRegistry", tc.name)
		}
	}
}

// TestPerTenantDeterminism is the core acceptance check: the same
// fixed-seed command prefix driven at a tenant of a multi-tenant daemon
// and at a bare single-tenant daemon must leave /v1/market byte-identical
// — tenancy adds routing, never behavior.
func TestPerTenantDeterminism(t *testing.T) {
	tpl := testTemplate(3)

	// Single-tenant reference.
	ref, err := server.New(tpl)
	if err != nil {
		t.Fatal(err)
	}
	ref.Start()
	rts := httptest.NewServer(ref.Handler())
	defer func() {
		rts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ref.Stop(ctx)
	}()

	r, ts := startRegistry(t, Config{Template: tpl})

	drive := func(base string) {
		for i := 0; i < 8; i++ {
			resp, data := post(t, base+"/providers", provider(t, tpl, ref, 7, i))
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("admit %d at %s: %d: %s", i, base, resp.StatusCode, data)
			}
		}
		if resp, data := post(t, base+"/admin/fail", map[string]any{"cloudlet": 0}); resp.StatusCode != http.StatusOK {
			t.Fatalf("fail at %s: %d: %s", base, resp.StatusCode, data)
		}
		if resp, data := post(t, base+"/admin/epoch", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("epoch at %s: %d: %s", base, resp.StatusCode, data)
		}
	}

	drive(rts.URL + "/v1")
	_, want := get(t, rts.URL+"/v1/market")

	// The same prefix against three tenants (one via the bare alias).
	for _, base := range []string{ts.URL + "/v1", ts.URL + "/v1/t/eu-west", ts.URL + "/v1/t/ap-south"} {
		drive(base)
		_, got := get(t, base+"/market")
		if !bytes.Equal(got, want) {
			t.Errorf("%s/market diverges from the single-tenant reference:\n got %s\nwant %s", base, got, want)
		}
	}
	if n := len(r.Resident()); n != 3 {
		t.Errorf("resident tenants = %d (%v), want 3", n, r.Resident())
	}
}

// TestBareAliasSharesDefaultTenant pins the compatibility contract: the
// bare /v1/ API and /v1/t/default/ are the same market, and tenants are
// otherwise isolated.
func TestBareAliasSharesDefaultTenant(t *testing.T) {
	tpl := testTemplate(1)
	r, ts := startRegistry(t, Config{Template: tpl})

	srv, err := r.Tenant(DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	if resp, data := post(t, ts.URL+"/v1/providers", provider(t, tpl, srv, 7, 0)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("bare admit: %d: %s", resp.StatusCode, data)
	}

	var aliased, other struct {
		Active int `json:"active"`
	}
	_, data := get(t, ts.URL+"/v1/t/default/market")
	if err := json.Unmarshal(data, &aliased); err != nil {
		t.Fatal(err)
	}
	if aliased.Active != 1 {
		t.Errorf("/v1/t/default/market active = %d, want 1 (bare alias must share the default tenant)", aliased.Active)
	}
	_, data = get(t, ts.URL+"/v1/t/other/market")
	if err := json.Unmarshal(data, &other); err != nil {
		t.Fatal(err)
	}
	if other.Active != 0 {
		t.Errorf("/v1/t/other/market active = %d, want 0 (tenants must be isolated)", other.Active)
	}

	if resp, body := get(t, ts.URL+"/v1/t/bad..id%2Fx/market"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid tenant id: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
	if _, body := get(t, ts.URL+"/metrics"); !strings.Contains(string(body), `mecd_admissions_total{result="accepted",tenant="default"} 1`) {
		t.Errorf("metrics exposition lacks the tenant-labeled admission counter:\n%.2000s", body)
	}
}

// TestLRUEvictionAndRehydration drives three tenants through a registry
// capped at two residents and checks that the least recently used tenant
// is evicted (snapshot written, WAL compacted) and comes back with its
// full market on the next request.
func TestLRUEvictionAndRehydration(t *testing.T) {
	base := t.TempDir()
	tpl := testTemplate(1)
	tpl.WALDir = filepath.Join(base, "wal")
	tpl.SnapshotPath = filepath.Join(base, "snap", "market.json")
	r, ts := startRegistry(t, Config{Template: tpl, MaxResident: 2})

	admitted := map[string]int{}
	admitN := func(id string, n int) {
		srv, err := r.Tenant(id)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			resp, data := post(t, ts.URL+"/v1/t/"+id+"/providers", provider(t, tpl, srv, 7, admitted[id]))
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("admit %s: %d: %s", id, resp.StatusCode, data)
			}
			admitted[id]++
		}
	}

	admitN("alpha", 3)
	admitN("beta", 2)
	if got := r.Resident(); len(got) != 2 {
		t.Fatalf("resident = %v, want 2 tenants", got)
	}

	// gamma overflows the cap; alpha is the LRU victim.
	admitN("gamma", 1)
	if got := strings.Join(r.Resident(), ","); got != "beta,gamma" {
		t.Fatalf("resident after overflow = %q, want \"beta,gamma\"", got)
	}

	// Eviction was graceful: alpha's snapshot exists and its market
	// rehydrates intact on the next request (which in turn evicts beta).
	if _, err := filepath.Glob(filepath.Join(base, "snap", "alpha", "market.json")); err != nil {
		t.Fatal(err)
	}
	var v struct {
		Active int `json:"active"`
	}
	_, data := get(t, ts.URL+"/v1/t/alpha/market")
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.Active != 3 {
		t.Errorf("rehydrated alpha has %d active providers, want 3", v.Active)
	}
	if got := strings.Join(r.Resident(), ","); got != "alpha,gamma" {
		t.Errorf("resident after rehydration = %q, want \"alpha,gamma\"", got)
	}
}

// TestEvictionAdmissionRace is the -race stress for the eviction
// lifecycle: admissions race LRU evictions across more tenants than the
// cap allows resident. Every admission must either land (201, durably:
// the tenant rehydrates with it) or shed with 429 — never panic, hang, or
// vanish.
func TestEvictionAdmissionRace(t *testing.T) {
	base := t.TempDir()
	tpl := testTemplate(1)
	tpl.WALDir = filepath.Join(base, "wal")
	_, ts := startRegistry(t, Config{Template: tpl, MaxResident: 1})

	tenants := []string{"t0", "t1", "t2"}
	const perWorker = 6
	var wg sync.WaitGroup
	landed := make([][]int, len(tenants)) // per-tenant 201 counts, per worker
	for w := 0; w < len(tenants); w++ {
		landed[w] = make([]int, 1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := tenants[w]
			// Each worker hammers its own tenant; with MaxResident 1 the
			// three tenants continuously evict each other between requests.
			for i := 0; i < perWorker; i++ {
				// Provider dimensions come from the live view, so every
				// iteration exercises a read and a write through the
				// racing eviction path.
				var vw struct {
					NumDCs   int `json:"numDCs"`
					NumNodes int `json:"numNodes"`
				}
				resp, data := get(t, ts.URL+"/v1/t/"+id+"/market")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("market %s: %d: %s", id, resp.StatusCode, data)
					return
				}
				if err := json.Unmarshal(data, &vw); err != nil {
					t.Error(err)
					return
				}
				p := tpl.Workload.DrawProvider(rng.Substream(7, uint64(i)), vw.NumDCs, vw.NumNodes)
				resp, data = post(t, ts.URL+"/v1/t/"+id+"/providers", p)
				switch resp.StatusCode {
				case http.StatusCreated:
					landed[w][0]++
				case http.StatusTooManyRequests:
					// Shed under overload: allowed, not counted.
				default:
					t.Errorf("admit %s: unexpected status %d: %s", id, resp.StatusCode, data)
				}
			}
		}(w)
	}
	wg.Wait()

	// Durability: every 201 survived its tenant's evictions.
	for w, id := range tenants {
		var v struct {
			Active int `json:"active"`
		}
		_, data := get(t, ts.URL+"/v1/t/"+id+"/market")
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatal(err)
		}
		if v.Active != landed[w][0] {
			t.Errorf("tenant %s: %d active providers, but %d admissions were acknowledged", id, v.Active, landed[w][0])
		}
	}
}

// TestRegistryCrashRecovery kills the whole registry mid-flight and
// rebuilds it over the same directories: every tenant must come back with
// every acknowledged admission, through the per-tenant snapshot+WAL path.
func TestRegistryCrashRecovery(t *testing.T) {
	base := t.TempDir()
	tpl := testTemplate(1)
	tpl.WALDir = filepath.Join(base, "wal")

	r1, err := NewRegistry(Config{Template: tpl})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(r1.Handler())
	views := map[string][]byte{}
	for _, id := range []string{"eu", "ap"} {
		srv, err := r1.Tenant(id)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			resp, data := post(t, ts1.URL+"/v1/t/"+id+"/providers", provider(t, tpl, srv, 7, i))
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("admit %s: %d: %s", id, resp.StatusCode, data)
			}
		}
		_, views[id] = get(t, ts1.URL+"/v1/t/"+id+"/market")
	}
	ts1.Close()
	r1.Kill()

	r2, err := NewRegistry(Config{Template: tpl})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(r2.Handler())
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		r2.Stop(ctx)
	}()
	for id, want := range views {
		_, got := get(t, ts2.URL+"/v1/t/"+id+"/market")
		if !bytes.Equal(got, want) {
			t.Errorf("tenant %s after crash recovery:\n got %s\nwant %s", id, got, want)
		}
	}
}

// TestStopRejectsNewWork pins shutdown behavior: after Stop, requests get
// 503 and acquire fails instead of resurrecting daemons.
func TestStopRejectsNewWork(t *testing.T) {
	tpl := testTemplate(1)
	r, err := NewRegistry(Config{Template: tpl})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	if _, err := r.Tenant("x"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if resp, _ := get(t, ts.URL+"/v1/t/x/market"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("request after Stop: %d, want 503", resp.StatusCode)
	}
	if _, err := r.Tenant("y"); err == nil {
		t.Error("Tenant after Stop should fail")
	}
}

// TestRegistryLifecycleSpans drives hydrations past the resident cap and
// checks the registry's own span ring records them: every hydration and
// eviction lands as a span with a minted trace ID, a tenant attribute,
// and a result, served by the process-level GET /debug/spans.
func TestRegistryLifecycleSpans(t *testing.T) {
	base := t.TempDir()
	tpl := testTemplate(1)
	tpl.WALDir = filepath.Join(base, "wal")
	r, ts := startRegistry(t, Config{Template: tpl, MaxResident: 1})

	for _, id := range []string{"alpha", "beta"} {
		srv, err := r.Tenant(id)
		if err != nil {
			t.Fatal(err)
		}
		resp, data := post(t, ts.URL+"/v1/t/"+id+"/providers", provider(t, tpl, srv, 9, 0))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("admit %s: %d: %s", id, resp.StatusCode, data)
		}
	}
	// beta's hydration overflowed the cap, so alpha must have been evicted.
	if got := strings.Join(r.Resident(), ","); got != "beta" {
		t.Fatalf("resident = %q, want \"beta\"", got)
	}

	var sr struct {
		Enabled   bool       `json:"enabled"`
		Count     int        `json:"count"`
		Capacity  int        `json:"capacity"`
		HighWater uint64     `json:"highWater"`
		Recorded  uint64     `json:"recorded"`
		Spans     []obs.Span `json:"spans"`
	}
	_, data := get(t, ts.URL+"/debug/spans?n=0")
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Enabled || sr.Count != len(sr.Spans) || sr.Capacity != tpl.SpanDepth {
		t.Fatalf("bad envelope: %+v", sr)
	}

	type key struct{ stage, tenant, result string }
	seen := map[key]string{}
	for _, sp := range sr.Spans {
		if sp.Trace == "" || len(sp.Trace) != 32 {
			t.Fatalf("lifecycle span without a minted trace ID: %+v", sp)
		}
		var tenant, result string
		for _, a := range sp.Attrs {
			switch a.Key {
			case "tenant":
				tenant = a.Str
			case "result":
				result = a.Str
			}
		}
		seen[key{sp.Stage, tenant, result}] = sp.Trace
	}
	for _, want := range []key{
		{obs.StageTenantHydrate, "alpha", "resident"},
		{obs.StageTenantHydrate, "beta", "resident"},
		{obs.StageTenantEvict, "alpha", "evicted"},
	} {
		if _, ok := seen[want]; !ok {
			t.Fatalf("missing lifecycle span %+v in %v", want, seen)
		}
	}
	// Hydration and eviction are distinct lifecycle events: each minted its
	// own trace ID.
	if seen[key{obs.StageTenantHydrate, "alpha", "resident"}] == seen[key{obs.StageTenantEvict, "alpha", "evicted"}] {
		t.Fatal("alpha's hydration and eviction share one trace ID")
	}

	// The per-tenant debug endpoint serves the tenant's request spans and
	// stays isolated from the registry's lifecycle ring.
	_, data = get(t, ts.URL+"/v1/t/beta/debug/spans?n=0")
	var tenantSpans struct {
		Enabled bool       `json:"enabled"`
		Spans   []obs.Span `json:"spans"`
	}
	if err := json.Unmarshal(data, &tenantSpans); err != nil {
		t.Fatal(err)
	}
	if !tenantSpans.Enabled {
		t.Fatal("per-tenant span endpoint disabled under the default template")
	}
	for _, sp := range tenantSpans.Spans {
		if sp.Stage == obs.StageTenantHydrate || sp.Stage == obs.StageTenantEvict {
			t.Fatalf("registry lifecycle span leaked into tenant ring: %+v", sp)
		}
	}

	// The shared histogram family carries the per-tenant stage series.
	_, promData := get(t, ts.URL+"/metrics")
	text := string(promData)
	for _, series := range []string{
		`mecd_span_seconds_count{stage="tenant_hydrate",tenant="alpha"}`,
		`mecd_span_seconds_count{stage="tenant_evict",tenant="alpha"}`,
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("series %s missing from /metrics", series)
		}
	}
}

// TestRegistrySpansDisabled checks SpanDepth 0 switches the registry ring
// off along with every tenant's.
func TestRegistrySpansDisabled(t *testing.T) {
	tpl := testTemplate(2)
	tpl.SpanDepth = 0
	_, ts := startRegistry(t, Config{Template: tpl})
	_, data := get(t, ts.URL+"/debug/spans")
	var sr struct {
		Enabled bool       `json:"enabled"`
		Spans   []obs.Span `json:"spans"`
	}
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Enabled || len(sr.Spans) != 0 {
		t.Fatalf("disabled registry ring still serves spans: %+v", sr)
	}
}
