package stats

import (
	"math"
	"testing"

	"mecache/internal/rng"
)

func mustHistogram(t *testing.T, bounds []float64) *Histogram {
	t.Helper()
	h, err := NewHistogram(bounds)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("non-increasing bounds accepted")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Fatal("decreasing bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, math.Inf(1)}); err == nil {
		t.Fatal("infinite bound accepted (the +Inf bucket is implicit)")
	}
	if _, err := NewHistogram([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN bound accepted")
	}
}

func TestHistogramBasicCounts(t *testing.T) {
	h := mustHistogram(t, []float64{1, 2, 5})
	for _, x := range []float64{0.5, 1.0, 1.5, 3, 10} {
		h.Observe(x)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 16.0; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// le-semantics: 1.0 lands in the le=1 bucket.
	if got := h.Cumulative(); got[0] != 2 || got[1] != 3 || got[2] != 4 || got[3] != 5 {
		t.Fatalf("cumulative = %v", got)
	}
	if h.Min() != 0.5 || h.Max() != 10 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 3.2 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	h := mustHistogram(t, []float64{1})
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatalf("NaN was counted")
	}
}

func TestHistogramEmptyQuantiles(t *testing.T) {
	h := mustHistogram(t, []float64{1, 2})
	if !math.IsNaN(h.P50()) {
		t.Fatalf("empty P50 = %v, want NaN", h.P50())
	}
	h.Observe(1.5)
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Fatal("out-of-range q accepted")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Uniform samples over [0, 100) against a fine bucket grid: the
	// interpolated quantiles must land within one bucket width of truth.
	bounds := make([]float64, 100)
	for i := range bounds {
		bounds[i] = float64(i + 1)
	}
	h := mustHistogram(t, bounds)
	r := rng.New(7)
	n := 20000
	for i := 0; i < n; i++ {
		h.Observe(r.Float64() * 100)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 2 {
			t.Fatalf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	h := mustHistogram(t, []float64{1, 2, 5})
	h.Observe(3.5)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 3.5 {
			t.Fatalf("Quantile(%v) = %v, want 3.5 (clamped to observed range)", q, got)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := mustHistogram(t, []float64{1})
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.5); got < 100 || got > 200 {
		t.Fatalf("overflow-bucket quantile %v outside observed range", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	bounds := []float64{1, 2, 5}
	a := mustHistogram(t, bounds)
	b := mustHistogram(t, bounds)
	whole := mustHistogram(t, bounds)
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		x := r.Float64() * 8
		whole.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != whole.Count() || math.Abs(a.Sum()-whole.Sum()) > 1e-9*whole.Sum() {
		t.Fatalf("merged count/sum %d/%v, want %d/%v", a.Count(), a.Sum(), whole.Count(), whole.Sum())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged min/max %v/%v, want %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
	ca, cw := a.Cumulative(), whole.Cumulative()
	for i := range ca {
		if ca[i] != cw[i] {
			t.Fatalf("merged cumulative bucket %d = %d, want %d", i, ca[i], cw[i])
		}
	}
	if a.P95() != whole.P95() {
		t.Fatalf("merged P95 %v != whole P95 %v", a.P95(), whole.P95())
	}
}

func TestHistogramMergeMismatch(t *testing.T) {
	a := mustHistogram(t, []float64{1, 2})
	b := mustHistogram(t, []float64{1, 3})
	if err := a.Merge(b); err == nil {
		t.Fatal("mismatched bounds merged")
	}
	c := mustHistogram(t, []float64{1})
	if err := a.Merge(c); err == nil {
		t.Fatal("mismatched bucket counts merged")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge should be a no-op, got %v", err)
	}
}

func TestLatencyBucketsValid(t *testing.T) {
	if _, err := NewHistogram(LatencyBuckets()); err != nil {
		t.Fatal(err)
	}
}
