package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-bucket histogram with quantile estimation. Bounds are
// upper bucket edges (sorted, strictly increasing); an implicit +Inf bucket
// catches everything above the last bound, so Observe never drops a sample.
//
// Two histograms with identical bounds can be merged, which is the property
// the concurrent consumers rely on: the load generator observes latencies
// into per-shard histograms with no locking and merges them for the final
// report, and the metrics registry renders the same structure as a
// cumulative Prometheus histogram.
//
// Histogram is not safe for concurrent use; wrap it in a mutex (as
// internal/metrics does) or shard per goroutine and Merge.
type Histogram struct {
	bounds []float64 // upper edges; the implicit +Inf bucket is counts[len(bounds)]
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram over the given upper bucket bounds. The
// bounds must be finite, strictly increasing, and non-empty.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("stats: histogram bound %d is %v, want finite", i, b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("stats: histogram bounds must be strictly increasing, got %v after %v", b, bounds[i-1])
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}, nil
}

// LatencyBuckets returns the default latency bounds in seconds: a
// 1-2-5 progression from 100µs to 10s, suited to local HTTP admission
// latencies while keeping tails visible.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.0002, 0.0005,
		0.001, 0.002, 0.005,
		0.01, 0.02, 0.05,
		0.1, 0.2, 0.5,
		1, 2, 5, 10,
	}
}

// Observe records one sample. NaN samples are ignored (they would poison
// the sum without being attributable to any bucket).
func (h *Histogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x: Prometheus "le" semantics
	h.counts[i]++
	h.count++
	h.sum += x
	if x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
}

// Merge adds other's samples into h. The bucket bounds must be identical.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("stats: cannot merge histograms with %d and %d buckets", len(h.bounds), len(other.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			return fmt.Errorf("stats: cannot merge histograms: bound %d differs (%v vs %v)", i, h.bounds[i], other.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the sample mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest sample observed (+Inf when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest sample observed (-Inf when empty).
func (h *Histogram) Max() float64 { return h.max }

// Bounds returns a copy of the upper bucket bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Cumulative returns the cumulative bucket counts in Prometheus "le" order:
// Cumulative()[i] counts samples <= bounds[i], and the final entry (the
// implicit +Inf bucket) equals Count().
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	run := uint64(0)
	for i, c := range h.counts {
		run += c
		out[i] = run
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket that contains the target rank. Estimates are clamped to
// the observed [Min, Max] so that coarse buckets cannot report values
// outside the data. Returns NaN for an empty histogram or q outside [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(h.count)
	run := uint64(0)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := float64(run)
		run += c
		if float64(run) < rank {
			continue
		}
		// The target rank lands in bucket i, spanning (lo, hi].
		lo := h.min
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if lo > hi {
			lo = hi
		}
		frac := 0.0
		if c > 0 {
			frac = (rank - prev) / float64(c)
		}
		v := lo + frac*(hi-lo)
		return math.Max(h.min, math.Min(h.max, v))
	}
	return h.max
}

// P50, P95 and P99 are the quantiles the latency reports print.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P95 estimates the 95th percentile.
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 estimates the 99th percentile.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }
