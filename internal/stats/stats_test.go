package stats

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/rng"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary %+v", s)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if math.Abs(s.StdDev-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("stddev %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Fatalf("median %v", s.Median)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.StdDev != 0 || s.Median != 3 || s.CI95() != 0 {
		t.Fatalf("singleton summary %+v", s)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Fatalf("odd median %v", odd.Median)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestCI95Shrinks(t *testing.T) {
	r := rng.New(1)
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = r.FloatRange(0, 1)
	}
	for i := range large {
		large[i] = r.FloatRange(0, 1)
	}
	if Summarize(large).CI95() >= Summarize(small).CI95() {
		t.Fatal("CI95 did not shrink with sample size")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = r.FloatRange(-100, 100)
			w.Add(xs[i])
		}
		batch := Summarize(xs)
		return w.N() == n &&
			math.Abs(w.Mean()-batch.Mean) < 1e-9 &&
			math.Abs(w.StdDev()-batch.StdDev) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.StdDev() != 0 || w.N() != 0 {
		t.Fatal("empty Welford not zero")
	}
	s := w.Summary()
	if s.N != 0 {
		t.Fatalf("summary %+v", s)
	}
}

func TestStringFormat(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Fatal("empty string")
	}
}
