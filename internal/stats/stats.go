// Package stats provides the descriptive statistics the experiment drivers
// report: means, standard deviations, and normal-approximation confidence
// intervals over repeated runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary; an empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(n-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// CI95 returns the half-width of the 95% confidence interval for the mean
// under the normal approximation (1.96·σ/√n). Zero for n < 2.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String renders "mean ± ci95 (n=..)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95(), s.N)
}

// Welford is an online mean/variance accumulator (Welford's algorithm),
// used where samples stream in one at a time.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add feeds one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Summary converts the accumulator to a Summary (Min/Max/Median are not
// tracked online and stay zero).
func (w *Welford) Summary() Summary {
	return Summary{N: w.n, Mean: w.mean, StdDev: w.StdDev()}
}
