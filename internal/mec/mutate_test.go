package mec

import (
	"testing"

	"mecache/internal/rng"
)

// drawProvider samples a valid random provider for the test network.
func drawProvider(r *rng.Source, net *Network) Provider {
	return Provider{
		Requests:        r.IntRange(1, 40),
		ComputePerReq:   r.FloatRange(0.01, 0.3),
		BandwidthPerReq: r.FloatRange(0.5, 4),
		InstCost:        r.FloatRange(0.2, 2),
		TrafficGBPerReq: r.FloatRange(0.01, 0.2),
		DataGB:          r.FloatRange(1, 5),
		UpdateRatio:     0.1,
		HomeDC:          r.Intn(len(net.DCs)),
		AttachNode:      r.Intn(net.Topo.N()),
	}
}

// TestAppendProviderMatchesBatchConstruction grows a market one provider at
// a time and checks every cost table matches a market built in one shot
// over the same providers — the equivalence the serving layer's O(1)-ish
// admissions rest on.
func TestAppendProviderMatchesBatchConstruction(t *testing.T) {
	base := testMarket(t)
	r := rng.New(11)
	providers := append([]Provider(nil), base.Providers...)
	grown := base
	for k := 0; k < 25; k++ {
		p := drawProvider(r, base.Net)
		providers = append(providers, p)
		idx, err := grown.AppendProvider(p)
		if err != nil {
			t.Fatal(err)
		}
		if idx != len(providers)-1 {
			t.Fatalf("append returned index %d, want %d", idx, len(providers)-1)
		}
	}
	batch, err := NewMarket(base.Net, providers)
	if err != nil {
		t.Fatal(err)
	}
	marketsEqual(t, grown, batch)
}

func TestAppendProviderValidates(t *testing.T) {
	m := testMarket(t)
	bad := m.Providers[0]
	bad.Requests = 0
	if _, err := m.AppendProvider(bad); err == nil {
		t.Fatal("zero-request provider appended")
	}
	bad = m.Providers[0]
	bad.HomeDC = 99
	if _, err := m.AppendProvider(bad); err == nil {
		t.Fatal("invalid home DC appended")
	}
	if len(m.Providers) != 2 {
		t.Fatalf("failed appends mutated the market: %d providers", len(m.Providers))
	}
}

func TestRemoveProviderShiftsTables(t *testing.T) {
	m := testMarket(t)
	r := rng.New(5)
	var providers []Provider
	providers = append(providers, m.Providers...)
	for k := 0; k < 6; k++ {
		p := drawProvider(r, m.Net)
		providers = append(providers, p)
		if _, err := m.AppendProvider(p); err != nil {
			t.Fatal(err)
		}
	}
	// Remove from the middle, the front, and the back.
	for _, l := range []int{3, 0, len(providers) - 3} {
		providers = append(providers[:l], providers[l+1:]...)
		if err := m.RemoveProvider(l); err != nil {
			t.Fatal(err)
		}
		batch, err := NewMarket(m.Net, providers)
		if err != nil {
			t.Fatal(err)
		}
		marketsEqual(t, m, batch)
	}
}

func TestRemoveProviderBounds(t *testing.T) {
	m := testMarket(t)
	if err := m.RemoveProvider(-1); err == nil {
		t.Fatal("negative index removed")
	}
	if err := m.RemoveProvider(2); err == nil {
		t.Fatal("out-of-range index removed")
	}
	if err := m.RemoveProvider(0); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveProvider(0); err == nil {
		t.Fatal("last provider removed (markets need at least one)")
	}
}
