package mec

import (
	"bytes"
	"encoding/json"
	"testing"
)

// marketsEqual asserts every observable cost of a and b is bit-identical.
func marketsEqual(t *testing.T, a, b *Market) {
	t.Helper()
	if len(a.Providers) != len(b.Providers) {
		t.Fatalf("provider counts differ: %d vs %d", len(a.Providers), len(b.Providers))
	}
	if a.Net.NumCloudlets() != b.Net.NumCloudlets() || len(a.Net.DCs) != len(b.Net.DCs) {
		t.Fatalf("network shapes differ")
	}
	if a.Net.Topo.N() != b.Net.Topo.N() || a.Net.Topo.M() != b.Net.Topo.M() {
		t.Fatalf("topology shapes differ: %d/%d nodes, %d/%d edges",
			a.Net.Topo.N(), b.Net.Topo.N(), a.Net.Topo.M(), b.Net.Topo.M())
	}
	for l := range a.Providers {
		if a.Providers[l] != b.Providers[l] {
			t.Fatalf("provider %d differs: %+v vs %+v", l, a.Providers[l], b.Providers[l])
		}
		if a.RemoteCost(l) != b.RemoteCost(l) {
			t.Fatalf("remote cost of %d differs: %v vs %v", l, a.RemoteCost(l), b.RemoteCost(l))
		}
		for i := 0; i < a.Net.NumCloudlets(); i++ {
			if a.BaseCost(l, i) != b.BaseCost(l, i) {
				t.Fatalf("base cost (%d,%d) differs: %v vs %v", l, i, a.BaseCost(l, i), b.BaseCost(l, i))
			}
		}
	}
	pl := make(Placement, len(a.Providers))
	for l := range pl {
		pl[l] = l % (a.Net.NumCloudlets() + 1)
		if pl[l] == a.Net.NumCloudlets() {
			pl[l] = Remote
		}
	}
	if a.SocialCost(pl) != b.SocialCost(pl) {
		t.Fatalf("social cost differs: %v vs %v", a.SocialCost(pl), b.SocialCost(pl))
	}
	if a.CongestionModelInUse().Name() != b.CongestionModelInUse().Name() {
		t.Fatalf("congestion models differ: %s vs %s",
			a.CongestionModelInUse().Name(), b.CongestionModelInUse().Name())
	}
}

func TestMarketJSONRoundTrip(t *testing.T) {
	m := testMarket(t)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Market
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	marketsEqual(t, m, &back)

	// A second marshal must be byte-identical: the canonical edge order
	// makes the encoding independent of how the graph was assembled.
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-marshal is not byte-stable:\n%s\nvs\n%s", data, again)
	}
}

func TestMarketJSONRoundTripCongestionModels(t *testing.T) {
	for _, cm := range []CongestionModel{
		LinearCongestion{},
		PolynomialCongestion{Degree: 1.5},
		ExponentialCongestion{Base: 1.2},
	} {
		m := testMarket(t)
		if err := m.SetCongestionModel(cm); err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back Market
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		marketsEqual(t, m, &back)
		if back.CongestionLevel(3) != m.CongestionLevel(3) {
			t.Fatalf("%s: restored Level(3) %v != %v", cm.Name(), back.CongestionLevel(3), m.CongestionLevel(3))
		}
	}
}

type customModel struct{}

func (customModel) Level(k int) float64 { return float64(k) }
func (customModel) Name() string        { return "custom" }

func TestMarketJSONRejectsCustomCongestion(t *testing.T) {
	m := testMarket(t)
	if err := m.SetCongestionModel(customModel{}); err != nil {
		t.Fatal(err)
	}
	if _, err := json.Marshal(m); err == nil {
		t.Fatal("custom congestion model marshaled")
	}
}

func TestMarketJSONRejectsCorruptSnapshots(t *testing.T) {
	m := testMarket(t)
	if err := m.SetCongestionModel(LinearCongestion{}); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ name, from, to string }{
		{"bad edge endpoint", `"edges":[{"u":0,`, `"edges":[{"u":99,`},
		{"bad congestion name", `"name":"linear"`, `"name":"nope"`},
		{"negative requests", `"requests":10`, `"requests":-10`},
	} {
		bad := bytes.Replace(data, []byte(tc.from), []byte(tc.to), 1)
		if bytes.Equal(bad, data) {
			t.Fatalf("%s: corruption pattern %q not found in snapshot", tc.name, tc.from)
		}
		var back Market
		if err := json.Unmarshal(bad, &back); err == nil {
			t.Fatalf("%s: corrupt snapshot accepted", tc.name)
		}
	}
	if err := new(Market).UnmarshalJSON([]byte(`{garbage`)); err == nil {
		t.Fatal("syntactically invalid snapshot accepted")
	}
}

func TestNetworkJSONRoundTrip(t *testing.T) {
	m := testMarket(t)
	data, err := json.Marshal(m.Net)
	if err != nil {
		t.Fatal(err)
	}
	var back Network
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumCloudlets() != m.Net.NumCloudlets() || len(back.DCs) != len(m.Net.DCs) {
		t.Fatalf("restored network shape differs")
	}
	for u := 0; u < m.Net.Topo.N(); u++ {
		for v := 0; v < m.Net.Topo.N(); v++ {
			if m.Net.Hops(u, v) != back.Hops(u, v) {
				t.Fatalf("hops(%d,%d) differ: %d vs %d", u, v, m.Net.Hops(u, v), back.Hops(u, v))
			}
		}
	}
}

func TestPlacementJSONRoundTrip(t *testing.T) {
	pl := Placement{0, Remote, 1, Remote}
	data, err := json.Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	var back Placement
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pl) {
		t.Fatalf("length differs")
	}
	for i := range pl {
		if pl[i] != back[i] {
			t.Fatalf("entry %d differs: %d vs %d", i, pl[i], back[i])
		}
	}
}

func TestMarketClone(t *testing.T) {
	m := testMarket(t)
	c := m.Clone()
	marketsEqual(t, m, c)

	// Mutating the clone must not leak into the original.
	c.Providers[0].Requests = 999
	c.Net.Cloudlets[0].Alpha = 99
	if m.Providers[0].Requests == 999 || m.Net.Cloudlets[0].Alpha == 99 {
		t.Fatal("clone shares memory with the original")
	}
	if _, err := c.AppendProvider(m.Providers[1]); err != nil {
		t.Fatal(err)
	}
	if len(m.Providers) == len(c.Providers) {
		t.Fatal("append to clone grew the original")
	}
}

func TestNetworkClone(t *testing.T) {
	m := testMarket(t)
	c := m.Net.Clone()
	c.Cloudlets[0].Node = 0
	if m.Net.Cloudlets[0].Node == 0 {
		t.Fatal("network clone shares cloudlet slice")
	}
	if c.Topo.Graph == m.Net.Topo.Graph {
		t.Fatal("network clone shares the graph")
	}
}
