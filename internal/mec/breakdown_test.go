package mec

import (
	"math"
	"testing"

	"mecache/internal/graph"
	"mecache/internal/topology"
)

// TestBreakdownSumsToCostAt pins the decision-trace invariant: the Eq. 3
// components of every (provider, cloudlet, load) must reproduce the scalar
// cost the algorithms actually compare, bit-for-bit.
func TestBreakdownSumsToCostAt(t *testing.T) {
	m := testMarket(t)
	for l := range m.Providers {
		for i := 0; i < m.Net.NumCloudlets(); i++ {
			for load := 1; load <= 3; load++ {
				b := m.Breakdown(l, i, load)
				if got, want := b.Total(), m.CostAt(l, i, load); got != want {
					t.Fatalf("provider %d cloudlet %d load %d: breakdown total %v != CostAt %v", l, i, load, got, want)
				}
				if b.Congestion != m.CongestionCoeff(i)*m.CongestionLevel(load) {
					t.Fatalf("congestion component %v mismatches coeff*level", b.Congestion)
				}
				if b.Instantiation != m.Providers[l].InstCost {
					t.Fatalf("instantiation component %v != InstCost", b.Instantiation)
				}
				if b.Bandwidth != m.Net.Cloudlets[i].FixedBandwidthCost {
					t.Fatalf("bandwidth component %v != c_i^bdw", b.Bandwidth)
				}
			}
		}
	}
}

func TestBreakdownRemote(t *testing.T) {
	m := testMarket(t)
	for l := range m.Providers {
		b := m.Breakdown(l, Remote, 0)
		if b.Congestion != 0 || b.Instantiation != 0 || b.Bandwidth != 0 || b.Update != 0 {
			t.Fatalf("remote breakdown has cached-only components: %+v", b)
		}
		if got, want := b.Total(), m.RemoteCost(l); got != want {
			t.Fatalf("provider %d: remote breakdown total %v != RemoteCost %v", l, got, want)
		}
	}
}

func TestBreakdownDisconnectedIsInfinite(t *testing.T) {
	// Two components: 0-1 and 2-3. Cloudlet and DC live in the second, the
	// provider attaches in the first, so every strategy is unreachable.
	g := graph.New(4, false)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	top := &topology.Topology{Name: "split", Graph: g, Pos: make([]topology.Point, 4)}
	net, err := NewNetwork(top,
		[]Cloudlet{{Node: 2, NumVMs: 20, ComputeCap: 20, BandwidthCap: 200, Alpha: 0.5, Beta: 0.5,
			FixedBandwidthCost: 0.2, ProcPricePerGB: 0.2, TransPricePerGBHop: 0.1}},
		[]DataCenter{{Node: 3, ProcPricePerGB: 0.22, TransPricePerGBHop: 0.1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMarket(net, []Provider{
		{Requests: 10, ComputePerReq: 0.1, BandwidthPerReq: 2, InstCost: 1,
			TrafficGBPerReq: 0.1, DataGB: 2, UpdateRatio: 0.1, HomeDC: 0, AttachNode: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m.Breakdown(0, 0, 1).Total(), 1) {
		t.Fatal("disconnected cached breakdown should be +Inf")
	}
	if !math.IsInf(m.Breakdown(0, Remote, 0).Total(), 1) {
		t.Fatal("disconnected remote breakdown should be +Inf")
	}
	// Sanity on the connected market too.
	if math.IsInf(testMarket(t).Breakdown(0, 0, 1).Total(), 1) {
		t.Fatal("connected breakdown is infinite")
	}
}
