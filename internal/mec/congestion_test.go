package mec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearCongestionMatchesPaper(t *testing.T) {
	var lc LinearCongestion
	for k := 0; k < 10; k++ {
		if lc.Level(k) != float64(k) {
			t.Fatalf("Level(%d) = %v, want %d", k, lc.Level(k), k)
		}
	}
	if lc.Name() != "linear" {
		t.Fatalf("name %q", lc.Name())
	}
}

func TestPolynomialCongestion(t *testing.T) {
	p := PolynomialCongestion{Degree: 2}
	if p.Level(3) != 9 {
		t.Fatalf("Level(3) = %v, want 9", p.Level(3))
	}
	if p.Level(0) != 0 {
		t.Fatalf("Level(0) = %v", p.Level(0))
	}
	if err := ValidateCongestionModel(p, 50); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialCongestion(t *testing.T) {
	e := ExponentialCongestion{Base: 2}
	// (2^k - 1)/(2-1): 1, 3, 7, 15...
	want := []float64{0, 1, 3, 7, 15}
	for k, w := range want {
		if got := e.Level(k); math.Abs(got-w) > 1e-12 {
			t.Fatalf("Level(%d) = %v, want %v", k, got, w)
		}
	}
	if err := ValidateCongestionModel(e, 30); err != nil {
		t.Fatal(err)
	}
	// Degenerate base falls back to linear.
	d := ExponentialCongestion{Base: 1}
	if d.Level(4) != 4 {
		t.Fatalf("degenerate base Level(4) = %v", d.Level(4))
	}
}

func TestValidateCongestionModelRejects(t *testing.T) {
	if err := ValidateCongestionModel(nil, 10); err == nil {
		t.Fatal("nil model accepted")
	}
	if err := ValidateCongestionModel(badLevelZero{}, 10); err == nil {
		t.Fatal("Level(0) != 0 accepted")
	}
	if err := ValidateCongestionModel(decreasing{}, 10); err == nil {
		t.Fatal("decreasing model accepted")
	}
	if err := ValidateCongestionModel(concaveTotal{}, 10); err == nil {
		t.Fatal("concave k*Level(k) accepted")
	}
}

type badLevelZero struct{}

func (badLevelZero) Level(k int) float64 { return float64(k + 1) }
func (badLevelZero) Name() string        { return "bad-zero" }

type decreasing struct{}

func (decreasing) Level(k int) float64 { return -float64(k) }
func (decreasing) Name() string        { return "decreasing" }

// concaveTotal has non-decreasing Level but concave k*Level(k): Level(k) =
// sqrt(k)/k = 1/sqrt(k) is decreasing, so use Level(k) = sqrt(k) whose total
// k^1.5 is convex... instead use a step that flattens hard: Level(1)=1,
// Level(k>=2)=1 gives total k, marginal 1,1,... that's fine. Use
// Level(1)=5, Level(k>=2)=5-? must be non-decreasing. Trick: big first
// marginal then smaller: Level(1)=5, Level(k>=2) chosen so total grows by
// less: total(1)=5, total(2)=2*5=10 (marginal 5)... With per-tenant pricing
// the total k*Level(k) is automatically super-linear for non-decreasing
// Level; a violation needs Level barely non-decreasing after a jump is
// impossible — except via floating tricks: Level(1)=10, Level(2)=5 is
// decreasing. So emulate with direct values failing the marginal check:
// Level(1)=10 -> total 10, Level(2)=6 would decrease. Use Level values
// 0, 10, 10, 10: totals 10, 20, 30 -> marginals 10,10,10: fine.
// The genuinely concave case: Level(k) = k for k<=2, then Level(3)=2:
// decreasing. Conclusion: for per-tenant non-decreasing Level, marginals
// can still dip: totals k*L(k) with L = 0,1,1.9,1.9: totals 1, 3.8, 5.7:
// marginals 1, 2.8, 1.9 — dip at k=3.
type concaveTotal struct{}

func (concaveTotal) Level(k int) float64 {
	levels := []float64{0, 1, 1.9, 1.9, 1.9, 1.9, 1.9, 1.9, 1.9, 1.9, 1.9}
	if k < len(levels) {
		return levels[k]
	}
	return 1.9
}
func (concaveTotal) Name() string { return "concave-total" }

func TestMarketSetCongestionModel(t *testing.T) {
	m := testMarket(t)
	if m.CongestionModelInUse().Name() != "linear" {
		t.Fatalf("default model %q", m.CongestionModelInUse().Name())
	}
	if err := m.SetCongestionModel(PolynomialCongestion{Degree: 2}); err != nil {
		t.Fatal(err)
	}
	if m.CongestionModelInUse().Name() != "poly(2)" {
		t.Fatalf("installed model %q", m.CongestionModelInUse().Name())
	}
	// Cost now uses the quadratic level: 2 tenants -> each pays coeff*4.
	pl := Placement{0, 0}
	want := m.CongestionCoeff(0)*4 + m.BaseCost(0, 0)
	if got := m.ProviderCost(pl, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("quadratic cost %v, want %v", got, want)
	}
	// Reset to linear.
	if err := m.SetCongestionModel(nil); err != nil {
		t.Fatal(err)
	}
	wantLin := m.CongestionCoeff(0)*2 + m.BaseCost(0, 0)
	if got := m.ProviderCost(pl, 0); math.Abs(got-wantLin) > 1e-12 {
		t.Fatalf("linear cost %v, want %v", got, wantLin)
	}
	// Invalid model rejected and previous model kept.
	if err := m.SetCongestionModel(decreasing{}); err == nil {
		t.Fatal("decreasing model accepted")
	}
}

// Property: for every built-in model, social cost is monotone in congestion
// (moving a provider onto a busier cloudlet never reduces the other
// tenants' costs).
func TestModelsMonotoneProperty(t *testing.T) {
	models := []CongestionModel{
		LinearCongestion{},
		PolynomialCongestion{Degree: 1.5},
		PolynomialCongestion{Degree: 3},
		ExponentialCongestion{Base: 1.5},
	}
	for _, cm := range models {
		cm := cm
		check := func(k uint8) bool {
			kk := int(k % 50)
			return cm.Level(kk+1) >= cm.Level(kk)
		}
		if err := quick.Check(check, nil); err != nil {
			t.Fatalf("model %s: %v", cm.Name(), err)
		}
	}
}
