// Package mec models the paper's two-tiered mobile edge-cloud: a network
// G = (CL ∪ DC, E) of cloudlets and remote data centers operated by an
// infrastructure provider, a set N of network service providers each wanting
// to cache one service, and the congestion-aware cost model of Section II-C
// (Eqs. 1-6).
//
// Cost of caching service SV_l at cloudlet CL_i when |σ_i| services share it:
//
//	c_{l,i} = (α_i + β_i)·|σ_i| + c_l^ins + c_i^bdw + routing terms
//
// The routing terms implement Section IV-A's priced traffic: processing and
// transmission are charged per GB (transmission additionally per hop along
// shortest paths), and consistency updates ship 10% of the service's data
// volume from the cached instance back to its home data center. A provider
// may also choose Remote ("not to cache"), paying transmission to its home
// DC and DC processing but no instantiation, congestion, or update cost.
package mec

import (
	"fmt"

	"mecache/internal/topology"
)

// Remote is the strategy value for leaving a service in its home data
// center instead of caching it at a cloudlet.
const Remote = -1

// Cloudlet is an edge server cluster placed at a topology node.
type Cloudlet struct {
	// Node is the topology node hosting this cloudlet.
	Node int `json:"node"`
	// NumVMs is the number of VMs the infrastructure provider instantiated
	// here (Section IV-A: drawn from [15, 30]).
	NumVMs int `json:"numVMs"`
	// ComputeCap is C(CL_i), total compute units.
	ComputeCap float64 `json:"computeCap"`
	// BandwidthCap is B(CL_i) in Mbps.
	BandwidthCap float64 `json:"bandwidthCap"`
	// Alpha is α_i, the compute-congestion price coefficient (Eq. 1).
	Alpha float64 `json:"alpha"`
	// Beta is β_i, the bandwidth-congestion price coefficient (Eq. 2).
	Beta float64 `json:"beta"`
	// FixedBandwidthCost is c_i^bdw, the flat per-provider bandwidth charge.
	FixedBandwidthCost float64 `json:"fixedBandwidthCost"`
	// ProcPricePerGB is the processing price at this cloudlet ($/GB).
	ProcPricePerGB float64 `json:"procPricePerGB"`
	// TransPricePerGBHop is the transmission price ($/GB per hop).
	TransPricePerGBHop float64 `json:"transPricePerGBHop"`
}

// DataCenter is a remote cloud site; capacity is considered unlimited
// (Section II-A).
type DataCenter struct {
	// Node is the topology node where this data center's gateway attaches
	// to the MEC network.
	Node int `json:"node"`
	// BackhaulHops is the extra WAN distance between the gateway node and
	// the actual remote cloud: the data centers of the two-tier
	// architecture live far from the edge, and every byte to or from them
	// crosses this backhaul on top of the in-network path.
	BackhaulHops int `json:"backhaulHops"`
	// ProcPricePerGB is the processing price at the data center ($/GB).
	ProcPricePerGB float64 `json:"procPricePerGB"`
	// TransPricePerGBHop is the transmission price ($/GB per hop) on the
	// backhaul toward this data center.
	TransPricePerGBHop float64 `json:"transPricePerGBHop"`
}

// Network is the two-tiered MEC network: the switch topology plus the
// cloudlets and data centers attached to it.
type Network struct {
	Topo      *topology.Topology
	Cloudlets []Cloudlet
	DCs       []DataCenter

	// hop[u] is the hop-distance vector from node u, computed lazily for
	// exactly the nodes that serve as sources (cloudlets, DCs, attachment
	// points).
	hop map[int][]int
}

// NewNetwork assembles a Network and validates node references.
func NewNetwork(topo *topology.Topology, cloudlets []Cloudlet, dcs []DataCenter) (*Network, error) {
	if topo == nil || topo.Graph == nil {
		return nil, fmt.Errorf("mec: nil topology")
	}
	n := topo.N()
	for i, cl := range cloudlets {
		if cl.Node < 0 || cl.Node >= n {
			return nil, fmt.Errorf("mec: cloudlet %d at invalid node %d", i, cl.Node)
		}
		if cl.ComputeCap <= 0 || cl.BandwidthCap <= 0 {
			return nil, fmt.Errorf("mec: cloudlet %d has non-positive capacity (%v, %v)", i, cl.ComputeCap, cl.BandwidthCap)
		}
		if cl.Alpha < 0 || cl.Beta < 0 {
			return nil, fmt.Errorf("mec: cloudlet %d has negative congestion coefficient", i)
		}
	}
	if len(dcs) == 0 {
		return nil, fmt.Errorf("mec: at least one data center is required")
	}
	for i, dc := range dcs {
		if dc.Node < 0 || dc.Node >= n {
			return nil, fmt.Errorf("mec: data center %d at invalid node %d", i, dc.Node)
		}
	}
	return &Network{
		Topo:      topo,
		Cloudlets: cloudlets,
		DCs:       dcs,
		hop:       make(map[int][]int),
	}, nil
}

// NumCloudlets returns |CL|.
func (net *Network) NumCloudlets() int { return len(net.Cloudlets) }

// Hops returns the hop count between two topology nodes, or -1 if they are
// disconnected.
func (net *Network) Hops(from, to int) int {
	d, ok := net.hop[from]
	if !ok {
		d = net.Topo.Graph.HopDistances(from)
		net.hop[from] = d
	}
	return d[to]
}

// NearestDC returns the index of the data center closest (in hops) to node.
func (net *Network) NearestDC(node int) int {
	best, bestHops := 0, -1
	for i, dc := range net.DCs {
		h := net.Hops(dc.Node, node)
		if h < 0 {
			continue
		}
		if bestHops < 0 || h < bestHops {
			best, bestHops = i, h
		}
	}
	return best
}
