package mec

import (
	"encoding/json"
	"fmt"
	"sort"

	"mecache/internal/graph"
	"mecache/internal/topology"
)

// This file implements durable snapshots of the market model: JSON
// round-trips for Network and Market (the serving layer's restart
// persistence) and deep copies (so background re-equilibration can work on
// an isolated copy). The encoding is self-contained — topology, cloudlets,
// data centers, providers, and the congestion model all round-trip — and
// provably lossless: restoring a snapshot rebuilds a market whose every
// cost table is identical bit for bit (see serialize_test.go).

// edgeJSON is one undirected topology link.
type edgeJSON struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"w"`
}

// topologyJSON is the wire form of a topology.Topology.
type topologyJSON struct {
	Name  string           `json:"name"`
	Nodes int              `json:"nodes"`
	Pos   []topology.Point `json:"pos"`
	Edges []edgeJSON       `json:"edges"`
}

// networkJSON is the wire form of a Network.
type networkJSON struct {
	Topology  topologyJSON `json:"topology"`
	Cloudlets []Cloudlet   `json:"cloudlets"`
	DCs       []DataCenter `json:"dcs"`
}

// congestionJSON encodes the built-in congestion models by name. Custom
// models cannot be serialized; Markets using one refuse to marshal.
type congestionJSON struct {
	Name   string  `json:"name"`
	Degree float64 `json:"degree,omitempty"`
	Base   float64 `json:"base,omitempty"`
}

// marketJSON is the wire form of a Market.
type marketJSON struct {
	Network    networkJSON     `json:"network"`
	Providers  []Provider      `json:"providers"`
	Congestion *congestionJSON `json:"congestion,omitempty"`
}

func topologyToJSON(t *topology.Topology) topologyJSON {
	n := t.N()
	edges := make([]edgeJSON, 0, t.M())
	for u := 0; u < n; u++ {
		for _, e := range t.Graph.Neighbors(u) {
			if e.To > u { // each undirected edge once
				edges = append(edges, edgeJSON{U: u, V: e.To, W: e.Weight})
			}
		}
	}
	// Canonical order, so marshal → unmarshal → marshal is byte-stable
	// regardless of the adjacency insertion order.
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		return edges[a].V < edges[b].V
	})
	return topologyJSON{
		Name:  t.Name,
		Nodes: n,
		Pos:   append([]topology.Point(nil), t.Pos...),
		Edges: edges,
	}
}

func topologyFromJSON(tj topologyJSON) (*topology.Topology, error) {
	if tj.Nodes < 0 {
		return nil, fmt.Errorf("mec: snapshot topology has %d nodes", tj.Nodes)
	}
	if len(tj.Pos) != tj.Nodes {
		return nil, fmt.Errorf("mec: snapshot topology has %d positions for %d nodes", len(tj.Pos), tj.Nodes)
	}
	g := graph.New(tj.Nodes, false)
	for _, e := range tj.Edges {
		if err := g.AddEdge(e.U, e.V, e.W); err != nil {
			return nil, fmt.Errorf("mec: snapshot topology: %w", err)
		}
	}
	return &topology.Topology{
		Name:  tj.Name,
		Graph: g,
		Pos:   append([]topology.Point(nil), tj.Pos...),
	}, nil
}

// MarshalJSON encodes the network (topology, cloudlets, data centers) in a
// self-contained form that UnmarshalJSON restores exactly.
func (net *Network) MarshalJSON() ([]byte, error) {
	return json.Marshal(networkJSON{
		Topology:  topologyToJSON(net.Topo),
		Cloudlets: append([]Cloudlet(nil), net.Cloudlets...),
		DCs:       append([]DataCenter(nil), net.DCs...),
	})
}

// UnmarshalJSON rebuilds a network from its MarshalJSON form, re-validating
// it through NewNetwork.
func (net *Network) UnmarshalJSON(data []byte) error {
	var nj networkJSON
	if err := json.Unmarshal(data, &nj); err != nil {
		return err
	}
	topo, err := topologyFromJSON(nj.Topology)
	if err != nil {
		return err
	}
	rebuilt, err := NewNetwork(topo, nj.Cloudlets, nj.DCs)
	if err != nil {
		return err
	}
	*net = *rebuilt
	return nil
}

func congestionToJSON(cm CongestionModel) (*congestionJSON, error) {
	switch c := cm.(type) {
	case nil:
		return nil, nil
	case LinearCongestion:
		return &congestionJSON{Name: "linear"}, nil
	case PolynomialCongestion:
		return &congestionJSON{Name: "poly", Degree: c.Degree}, nil
	case ExponentialCongestion:
		return &congestionJSON{Name: "exp", Base: c.Base}, nil
	default:
		return nil, fmt.Errorf("mec: congestion model %q cannot be serialized", cm.Name())
	}
}

func congestionFromJSON(cj *congestionJSON) (CongestionModel, error) {
	if cj == nil {
		return nil, nil
	}
	switch cj.Name {
	case "linear":
		return LinearCongestion{}, nil
	case "poly":
		return PolynomialCongestion{Degree: cj.Degree}, nil
	case "exp":
		return ExponentialCongestion{Base: cj.Base}, nil
	default:
		return nil, fmt.Errorf("mec: unknown congestion model %q in snapshot", cj.Name)
	}
}

// MarshalJSON encodes the market — network, providers, and congestion model
// — in a self-contained form. Only the built-in congestion models are
// serializable; a market with a custom model returns an error.
func (m *Market) MarshalJSON() ([]byte, error) {
	cj, err := congestionToJSON(m.congestion)
	if err != nil {
		return nil, err
	}
	return json.Marshal(marketJSON{
		Network: networkJSON{
			Topology:  topologyToJSON(m.Net.Topo),
			Cloudlets: append([]Cloudlet(nil), m.Net.Cloudlets...),
			DCs:       append([]DataCenter(nil), m.Net.DCs...),
		},
		Providers:  append([]Provider(nil), m.Providers...),
		Congestion: cj,
	})
}

// UnmarshalJSON rebuilds a market from its MarshalJSON form through
// NewMarket, so every validation and cost precomputation runs again: a
// restored market is indistinguishable from the one that was saved.
func (m *Market) UnmarshalJSON(data []byte) error {
	var mj marketJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return err
	}
	topo, err := topologyFromJSON(mj.Network.Topology)
	if err != nil {
		return err
	}
	net, err := NewNetwork(topo, mj.Network.Cloudlets, mj.Network.DCs)
	if err != nil {
		return err
	}
	rebuilt, err := NewMarket(net, mj.Providers)
	if err != nil {
		return err
	}
	cm, err := congestionFromJSON(mj.Congestion)
	if err != nil {
		return err
	}
	if cm != nil {
		if err := rebuilt.SetCongestionModel(cm); err != nil {
			return err
		}
	}
	*m = *rebuilt
	return nil
}

// Clone returns a deep copy of the network: mutating the copy's topology,
// cloudlets, or data centers never affects the original. The hop cache
// starts empty and refills lazily.
func (net *Network) Clone() *Network {
	return &Network{
		Topo: &topology.Topology{
			Name:  net.Topo.Name,
			Graph: net.Topo.Graph.Clone(),
			Pos:   append([]topology.Point(nil), net.Topo.Pos...),
		},
		Cloudlets: append([]Cloudlet(nil), net.Cloudlets...),
		DCs:       append([]DataCenter(nil), net.DCs...),
		hop:       make(map[int][]int),
	}
}

// Clone returns a deep copy of the market: network, providers, and cost
// tables are all fresh allocations. The congestion model value is shared
// (the built-in models are immutable values).
func (m *Market) Clone() *Market {
	c := &Market{
		Net:        m.Net.Clone(),
		Providers:  append([]Provider(nil), m.Providers...),
		congestion: m.congestion,
		base:       make([][]float64, len(m.base)),
		remote:     append([]float64(nil), m.remote...),
	}
	for l, row := range m.base {
		c.base[l] = append([]float64(nil), row...)
	}
	return c
}
