package mec

import (
	"fmt"
	"math"
)

// CongestionModel generalizes the proportional congestion cost of Eqs. (1)
// and (2). The paper adopts the proportional model "for simplicity" and
// notes that the derivation "relies only on the non-decreasing of cost with
// congestion levels"; this interface is that extension point.
//
// A tenant of cloudlet CL_i pays (α_i + β_i) · Level(k) when k services
// share the cloudlet. Level must be non-decreasing in k with Level(0) = 0,
// and k·Level(k) must be convex in k (non-decreasing marginals) so that the
// virtual-cloudlet slot pricing in Appro remains exact.
type CongestionModel interface {
	// Level returns the congestion multiplier when k services share a
	// cloudlet. Level(0) = 0; non-decreasing in k.
	Level(k int) float64
	// Name identifies the model in logs and benchmarks.
	Name() string
}

// LinearCongestion is the paper's proportional model: Level(k) = k, so a
// tenant pays (α_i+β_i)·|σ_i| (Eqs. 1-2). The zero value is ready to use.
type LinearCongestion struct{}

// Level returns k.
func (LinearCongestion) Level(k int) float64 { return float64(k) }

// Name returns "linear".
func (LinearCongestion) Name() string { return "linear" }

// PolynomialCongestion charges Level(k) = k^Degree: super-linear queueing
// penalties for Degree > 1. Degree must be >= 1 for valid marginals.
type PolynomialCongestion struct {
	Degree float64
}

// Level returns k^Degree.
func (p PolynomialCongestion) Level(k int) float64 {
	if k <= 0 {
		return 0
	}
	return math.Pow(float64(k), p.Degree)
}

// Name returns "poly(d)".
func (p PolynomialCongestion) Name() string { return fmt.Sprintf("poly(%g)", p.Degree) }

// ExponentialCongestion charges Level(k) = (Base^k - 1)/(Base - 1) for
// Base > 1 — a saturating-queue flavor where each extra tenant hurts
// multiplicatively. Level(1) = 1, matching the linear model's scale at
// light load.
type ExponentialCongestion struct {
	Base float64
}

// Level returns (Base^k - 1)/(Base - 1).
func (e ExponentialCongestion) Level(k int) float64 {
	if k <= 0 {
		return 0
	}
	if e.Base <= 1 {
		return float64(k) // degenerate base: fall back to linear
	}
	return (math.Pow(e.Base, float64(k)) - 1) / (e.Base - 1)
}

// Name returns "exp(b)".
func (e ExponentialCongestion) Name() string { return fmt.Sprintf("exp(%g)", e.Base) }

// ValidateCongestionModel checks the structural requirements (Level(0)=0,
// non-decreasing Level, convex k·Level(k)) over the first maxK occupancy
// levels. Markets call it when a custom model is installed.
func ValidateCongestionModel(cm CongestionModel, maxK int) error {
	if cm == nil {
		return fmt.Errorf("mec: nil congestion model")
	}
	if l0 := cm.Level(0); l0 != 0 {
		return fmt.Errorf("mec: congestion model %s has Level(0) = %v, want 0", cm.Name(), l0)
	}
	prevLevel := 0.0
	prevMarginal := math.Inf(-1)
	prevTotal := 0.0
	for k := 1; k <= maxK; k++ {
		l := cm.Level(k)
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("mec: congestion model %s has invalid Level(%d) = %v", cm.Name(), k, l)
		}
		if l < prevLevel-1e-12 {
			return fmt.Errorf("mec: congestion model %s decreases at k=%d (%v < %v)", cm.Name(), k, l, prevLevel)
		}
		total := float64(k) * l
		marginal := total - prevTotal
		if marginal < prevMarginal-1e-9 {
			return fmt.Errorf("mec: congestion model %s has decreasing marginal at k=%d", cm.Name(), k)
		}
		prevLevel, prevMarginal, prevTotal = l, marginal, total
	}
	return nil
}
