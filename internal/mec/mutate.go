package mec

import "fmt"

// This file gives Market the incremental mutations the online serving layer
// needs. The batch constructor precomputes an O(N × cloudlets) cost table;
// a daemon admitting one provider at a time must not rebuild that table per
// admission (that would make N admissions quadratic), so AppendProvider
// computes only the newcomer's row and RemoveProvider shifts the tables in
// place. A market grown by appends is indistinguishable from one built by
// NewMarket over the same provider slice (see mutate_test.go).

// AppendProvider admits one more provider into the market, validating it
// and computing its congestion-free cost rows incrementally. It returns the
// new provider's index (always len(Providers)-1 after the call).
func (m *Market) AppendProvider(p Provider) (int, error) {
	l := len(m.Providers)
	if err := validateProvider(m.Net, l, p); err != nil {
		return 0, err
	}
	if m.congestion != nil {
		// A custom model was validated up to the old occupancy ceiling;
		// one more tenant raises it by one.
		if err := ValidateCongestionModel(m.congestion, l+2); err != nil {
			return 0, err
		}
	}
	m.Providers = append(m.Providers, p)
	row := make([]float64, m.Net.NumCloudlets())
	for i := range m.Net.Cloudlets {
		row[i] = m.baseCost(&m.Providers[l], i)
	}
	m.base = append(m.base, row)
	m.remote = append(m.remote, m.remoteCost(&m.Providers[l]))
	m.scanOrder = append(m.scanOrder, m.sortedByBase(l))
	m.growLevelSum()
	return l, nil
}

// RemoveProvider retires provider l from the market. Providers after l
// shift down by one index; callers holding placements or id maps must shift
// them the same way.
func (m *Market) RemoveProvider(l int) error {
	n := len(m.Providers)
	if l < 0 || l >= n {
		return fmt.Errorf("mec: cannot remove provider %d of %d", l, n)
	}
	if n == 1 {
		return fmt.Errorf("mec: cannot remove the last provider (a market needs at least one)")
	}
	m.Providers = append(m.Providers[:l], m.Providers[l+1:]...)
	m.base = append(m.base[:l], m.base[l+1:]...)
	m.remote = append(m.remote[:l], m.remote[l+1:]...)
	m.scanOrder = append(m.scanOrder[:l], m.scanOrder[l+1:]...)
	// levelSum deliberately keeps its extra tail entry: it is a pure function
	// of the congestion model, so a longer prefix cache stays valid.
	return nil
}
