package mec

import (
	"fmt"
	"math"
	"sort"
)

// Provider is a network service provider sp_l with the single service SV_l
// it wants to cache (Section II-B).
type Provider struct {
	// Requests is r_l, the number of user requests the service must serve.
	Requests int `json:"requests"`
	// ComputePerReq is a_l; the service's total compute demand is a_l·r_l.
	ComputePerReq float64 `json:"computePerReq"`
	// BandwidthPerReq is b_l; the total bandwidth demand is b_l·r_l.
	BandwidthPerReq float64 `json:"bandwidthPerReq"`
	// InstCost is c_l^ins, the VM-instantiation + software-setup cost.
	InstCost float64 `json:"instCost"`
	// TrafficGBPerReq is the per-request traffic volume in GB
	// (Section IV-A: [10, 200] MB per request).
	TrafficGBPerReq float64 `json:"trafficGBPerReq"`
	// DataGB is the service's data volume in GB (Section IV-A: [1, 5] GB).
	DataGB float64 `json:"dataGB"`
	// UpdateRatio is the consistency-update fraction of DataGB shipped back
	// to the home DC while cached (Section IV-A: 10%).
	UpdateRatio float64 `json:"updateRatio"`
	// HomeDC indexes the data center hosting the original instance.
	HomeDC int `json:"homeDC"`
	// AttachNode is the topology node where the provider's users attach.
	AttachNode int `json:"attachNode"`
}

// ComputeDemand returns a_l·r_l.
func (p *Provider) ComputeDemand() float64 { return p.ComputePerReq * float64(p.Requests) }

// BandwidthDemand returns b_l·r_l.
func (p *Provider) BandwidthDemand() float64 { return p.BandwidthPerReq * float64(p.Requests) }

// TrafficGB returns the total request traffic the service moves, in GB.
func (p *Provider) TrafficGB() float64 { return p.TrafficGBPerReq * float64(p.Requests) }

// UpdateGB returns the consistency-update volume in GB.
func (p *Provider) UpdateGB() float64 { return p.UpdateRatio * p.DataGB }

// Market is the service market: the two-tiered network plus the N providers
// competing for its resources.
type Market struct {
	Net       *Network
	Providers []Provider

	// congestion is the installed congestion model; nil means the paper's
	// proportional (linear) model.
	congestion CongestionModel

	// base[l][i] caches the congestion-free cost of provider l at cloudlet
	// i; remote[l] caches the cost of not caching.
	base   [][]float64
	remote []float64

	// scanOrder[l] lists cloudlet indices in ascending (base[l][i], i)
	// order. Base costs are congestion-independent, so the order survives
	// SetCongestionModel; best-response scans walk it and stop at the first
	// candidate whose base cost plus the congestion floor already exceeds
	// the best total seen (see game.LoadState).
	scanOrder [][]int32
	// congFloor is a lower bound on the congestion term any tenant pays at
	// any cloudlet under any load: min_i (α_i+β_i)·Level(1). Level is
	// validated non-decreasing with Level(0)=0, so Level(k) ≥ Level(1) for
	// every occupancy k ≥ 1. A negative congestion coefficient (never
	// produced by the workload generator, but not forbidden by Network)
	// voids the bound, so the floor collapses to -Inf, which disables
	// pruning rather than corrupting results.
	congFloor float64
	// levelSum[k] caches Σ_{j=1..k} Level(j), accumulated in ascending j so
	// the partial sums are bit-identical to a direct loop. The Rosenthal
	// potential reads it to price a cloudlet's whole occupancy ladder in
	// O(1) instead of O(load).
	levelSum []float64
}

// SetCongestionModel installs a non-proportional congestion model (the
// paper's flagged extension). The model is validated over occupancy levels
// up to the provider count. Passing nil restores the default linear model.
func (m *Market) SetCongestionModel(cm CongestionModel) error {
	if cm == nil {
		m.congestion = nil
		m.precomputeCongestion()
		return nil
	}
	if err := ValidateCongestionModel(cm, len(m.Providers)+1); err != nil {
		return err
	}
	m.congestion = cm
	// The congestion floor and level prefix sums price Level directly, so a
	// model swap must rebuild them (the base-sorted scan orders survive:
	// base costs are congestion-free).
	m.precomputeCongestion()
	return nil
}

// CongestionModelInUse returns the active congestion model.
func (m *Market) CongestionModelInUse() CongestionModel {
	if m.congestion == nil {
		return LinearCongestion{}
	}
	return m.congestion
}

// CongestionLevel returns the congestion multiplier paid by each tenant of
// a cloudlet shared by k services: Level(k) of the active model (k for the
// paper's proportional model).
func (m *Market) CongestionLevel(k int) float64 {
	if m.congestion == nil {
		return float64(k) // fast path for the default linear model
	}
	return m.congestion.Level(k)
}

// NewMarket validates and assembles a market, precomputing the
// congestion-free cost terms.
func NewMarket(net *Network, providers []Provider) (*Market, error) {
	if net == nil {
		return nil, fmt.Errorf("mec: nil network")
	}
	if len(providers) == 0 {
		return nil, fmt.Errorf("mec: market needs at least one provider")
	}
	for l, p := range providers {
		if err := validateProvider(net, l, p); err != nil {
			return nil, err
		}
	}
	m := &Market{Net: net, Providers: providers}
	m.precompute()
	return m, nil
}

// validateProvider checks one provider against the network; l only labels
// the error message.
func validateProvider(net *Network, l int, p Provider) error {
	if p.Requests <= 0 {
		return fmt.Errorf("mec: provider %d has %d requests", l, p.Requests)
	}
	if p.ComputePerReq <= 0 || p.BandwidthPerReq <= 0 {
		return fmt.Errorf("mec: provider %d has non-positive per-request demand", l)
	}
	if p.HomeDC < 0 || p.HomeDC >= len(net.DCs) {
		return fmt.Errorf("mec: provider %d references invalid data center %d", l, p.HomeDC)
	}
	if p.AttachNode < 0 || p.AttachNode >= net.Topo.N() {
		return fmt.Errorf("mec: provider %d attaches at invalid node %d", l, p.AttachNode)
	}
	if p.UpdateRatio < 0 || p.UpdateRatio > 1 {
		return fmt.Errorf("mec: provider %d has update ratio %v outside [0,1]", l, p.UpdateRatio)
	}
	return nil
}

// precompute fills the congestion-free cost tables and the scan-acceleration
// tables the incremental equilibrium engine reads.
func (m *Market) precompute() {
	n := len(m.Providers)
	nc := m.Net.NumCloudlets()
	m.base = make([][]float64, n)
	m.remote = make([]float64, n)
	m.scanOrder = make([][]int32, n)
	for l := range m.Providers {
		p := &m.Providers[l]
		m.base[l] = make([]float64, nc)
		for i := range m.Net.Cloudlets {
			m.base[l][i] = m.baseCost(p, i)
		}
		m.remote[l] = m.remoteCost(p)
		m.scanOrder[l] = m.sortedByBase(l)
	}
	m.precomputeCongestion()
}

// sortedByBase returns provider l's cloudlet indices in ascending
// (base[l][i], i) order. Ties break toward the lower index so the pruned
// scan visits bit-equal candidates in the same order the index-order scan
// would, preserving first-lowest-index tie-breaking.
func (m *Market) sortedByBase(l int) []int32 {
	nc := m.Net.NumCloudlets()
	order := make([]int32, nc)
	for i := range order {
		order[i] = int32(i)
	}
	row := m.base[l]
	sort.Slice(order, func(a, b int) bool {
		if row[order[a]] != row[order[b]] {
			return row[order[a]] < row[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// precomputeCongestion rebuilds the congestion floor and the Level prefix
// sums for the active congestion model and current provider count.
func (m *Market) precomputeCongestion() {
	m.congFloor = math.Inf(1)
	l1 := m.CongestionLevel(1)
	for i := range m.Net.Cloudlets {
		if m.CongestionCoeff(i) < 0 {
			// Negative coefficients break the Level(k) ≥ Level(1) bound's
			// direction; give up on pruning instead of mispruning.
			m.congFloor = math.Inf(-1)
			break
		}
		if c := m.CongestionCoeff(i) * l1; c < m.congFloor {
			m.congFloor = c
		}
	}
	if m.Net.NumCloudlets() == 0 {
		m.congFloor = 0
	}
	m.levelSum = nil // the model may have changed; rebuild from scratch
	m.growLevelSum()
}

// growLevelSum extends the Level prefix-sum cache to cover occupancies up to
// the current provider count (the maximum possible cloudlet load).
func (m *Market) growLevelSum() {
	want := len(m.Providers) + 1
	if m.levelSum == nil {
		m.levelSum = make([]float64, 1, want)
	}
	for k := len(m.levelSum); k < want; k++ {
		m.levelSum = append(m.levelSum, m.levelSum[k-1]+m.CongestionLevel(k))
	}
}

// CandidateOrder returns provider l's cloudlets in ascending base-cost
// order, ties broken toward the lower index. The slice is owned by the
// market; callers must not mutate it.
func (m *Market) CandidateOrder(l int) []int32 { return m.scanOrder[l] }

// CongestionFloor returns the precomputed lower bound on the congestion term
// of any (provider, cloudlet, load) triple: min_i (α_i+β_i)·Level(1).
// Candidate scans use it to stop early once every remaining base cost is
// provably priced out.
func (m *Market) CongestionFloor() float64 { return m.congFloor }

// LevelPrefix returns Σ_{j=1..k} Level(j), bit-identical to accumulating
// CongestionLevel in ascending j. k must not exceed the provider count.
func (m *Market) LevelPrefix(k int) float64 { return m.levelSum[k] }

// baseCost is the congestion-independent part of c_{l,i}: instantiation,
// fixed bandwidth charge, processing, request transmission, and
// consistency-update transmission.
func (m *Market) baseCost(p *Provider, i int) float64 {
	cl := &m.Net.Cloudlets[i]
	dc := &m.Net.DCs[p.HomeDC]
	traffic := p.TrafficGB()
	hopsUser := float64(m.Net.Hops(p.AttachNode, cl.Node))
	hopsDC := float64(m.Net.Hops(cl.Node, dc.Node))
	if hopsUser < 0 || hopsDC < 0 {
		return math.Inf(1) // disconnected: never a valid choice
	}
	hopsDC += float64(dc.BackhaulHops)
	return p.InstCost +
		cl.FixedBandwidthCost +
		cl.ProcPricePerGB*traffic +
		cl.TransPricePerGBHop*traffic*hopsUser +
		cl.TransPricePerGBHop*p.UpdateGB()*hopsDC
}

// remoteCost is the cost of serving all requests from the home data center:
// backhaul transmission plus DC processing. No instantiation (the original
// instance already exists), no congestion, no update shipping.
func (m *Market) remoteCost(p *Provider) float64 {
	dc := &m.Net.DCs[p.HomeDC]
	traffic := p.TrafficGB()
	hops := float64(m.Net.Hops(p.AttachNode, dc.Node))
	if hops < 0 {
		return math.Inf(1)
	}
	hops += float64(dc.BackhaulHops)
	return dc.ProcPricePerGB*traffic + dc.TransPricePerGBHop*traffic*hops
}

// BaseCost returns the cached congestion-free cost of provider l at
// cloudlet i (the Eq. 9 cost used inside the GAP reduction).
func (m *Market) BaseCost(l, i int) float64 { return m.base[l][i] }

// UpdateCost returns only the consistency-update component of provider l's
// cost at cloudlet i: shipping UpdateRatio·DataGB back to the home data
// center. Baselines that ignore data updating (JoOffloadCache, after [23])
// subtract this from BaseCost when making decisions.
func (m *Market) UpdateCost(l, i int) float64 {
	p := &m.Providers[l]
	cl := &m.Net.Cloudlets[i]
	dc := &m.Net.DCs[p.HomeDC]
	hops := float64(m.Net.Hops(cl.Node, dc.Node))
	if hops < 0 {
		return math.Inf(1)
	}
	hops += float64(dc.BackhaulHops)
	return cl.TransPricePerGBHop * p.UpdateGB() * hops
}

// TransmissionCost returns only the request-transmission component of
// provider l's cost at cloudlet i (the pure offloading cost the
// OffloadCache baseline greedily minimizes).
func (m *Market) TransmissionCost(l, i int) float64 {
	p := &m.Providers[l]
	cl := &m.Net.Cloudlets[i]
	hops := float64(m.Net.Hops(p.AttachNode, cl.Node))
	if hops < 0 {
		return math.Inf(1)
	}
	return cl.TransPricePerGBHop * p.TrafficGB() * hops
}

// RemoteCost returns the cost of provider l staying in its home DC.
func (m *Market) RemoteCost(l int) float64 { return m.remote[l] }

// CongestionCoeff returns α_i + β_i for cloudlet i.
func (m *Market) CongestionCoeff(i int) float64 {
	cl := &m.Net.Cloudlets[i]
	return cl.Alpha + cl.Beta
}

// Placement maps each provider to its strategy: a cloudlet index or Remote.
type Placement []int

// Clone returns a copy of the placement.
func (pl Placement) Clone() Placement { return append(Placement(nil), pl...) }

// Validate checks that the placement has one entry per provider and all
// entries reference valid strategies.
func (m *Market) Validate(pl Placement) error {
	if len(pl) != len(m.Providers) {
		return fmt.Errorf("mec: placement covers %d providers, market has %d", len(pl), len(m.Providers))
	}
	for l, s := range pl {
		if s != Remote && (s < 0 || s >= m.Net.NumCloudlets()) {
			return fmt.Errorf("mec: provider %d has invalid strategy %d", l, s)
		}
	}
	return nil
}

// Loads returns |σ_i| for every cloudlet: the number of services cached
// there under pl.
func (m *Market) Loads(pl Placement) []int {
	loads := make([]int, m.Net.NumCloudlets())
	for _, s := range pl {
		if s != Remote {
			loads[s]++
		}
	}
	return loads
}

// ProviderCost returns c_l(σ_l) under placement pl: Eq. (3) for a cached
// service (with |σ_i| read from pl), or the remote cost.
func (m *Market) ProviderCost(pl Placement, l int) float64 {
	s := pl[l]
	if s == Remote {
		return m.remote[l]
	}
	load := 0
	for _, t := range pl {
		if t == s {
			load++
		}
	}
	return m.CostAt(l, s, load)
}

// ProviderCosts returns every provider's cost under pl in one pass: the
// loads are counted once (O(N + cloudlets)) instead of rescanning the
// placement per provider, which is what makes cost rankings over large
// markets linear rather than quadratic.
func (m *Market) ProviderCosts(pl Placement) []float64 {
	loads := m.Loads(pl)
	costs := make([]float64, len(pl))
	for l, s := range pl {
		if s == Remote {
			costs[l] = m.remote[l]
		} else {
			costs[l] = m.CostAt(l, s, loads[s])
		}
	}
	return costs
}

// CostAt returns provider l's cost of caching at cloudlet i when the
// cloudlet hosts load services in total (load includes l itself).
func (m *Market) CostAt(l, i, load int) float64 {
	return m.CongestionCoeff(i)*m.CongestionLevel(load) + m.base[l][i]
}

// CostBreakdown splits a strategy's cost (Eq. 3, or the remote cost) into
// its terms, for decision traces and debugging: which component priced a
// candidate out is invisible in the scalar cost.
type CostBreakdown struct {
	// Congestion is (α_i+β_i)·Level(|σ_i|); zero for the remote strategy.
	Congestion float64 `json:"congestion"`
	// Instantiation is c_l^ins; zero for remote (the original already runs).
	Instantiation float64 `json:"instantiation"`
	// Bandwidth is the flat per-provider bandwidth charge c_i^bdw.
	Bandwidth float64 `json:"bandwidth"`
	// Processing is the per-GB processing charge (cloudlet or DC).
	Processing float64 `json:"processing"`
	// Transmission is the user-side request-transmission charge.
	Transmission float64 `json:"transmission"`
	// Update is the consistency-update shipping charge; zero for remote.
	Update float64 `json:"update"`
}

// Total sums the components in the same association order as the cost
// tables (congestion plus the precomputed base sum), so for a connected
// strategy it reproduces CostAt / RemoteCost bit-for-bit.
func (b CostBreakdown) Total() float64 {
	return b.Congestion + (b.Instantiation + b.Bandwidth + b.Processing + b.Transmission + b.Update)
}

// Breakdown decomposes provider l's cost of strategy s under total load
// `load` (which includes l itself and is ignored for Remote). The component
// sum equals CostAt(l, s, load), or RemoteCost(l) when s is Remote.
func (m *Market) Breakdown(l, s, load int) CostBreakdown {
	p := &m.Providers[l]
	dc := &m.Net.DCs[p.HomeDC]
	traffic := p.TrafficGB()
	if s == Remote {
		hops := float64(m.Net.Hops(p.AttachNode, dc.Node))
		if hops < 0 {
			return CostBreakdown{Processing: math.Inf(1), Transmission: math.Inf(1)}
		}
		hops += float64(dc.BackhaulHops)
		return CostBreakdown{
			Processing:   dc.ProcPricePerGB * traffic,
			Transmission: dc.TransPricePerGBHop * traffic * hops,
		}
	}
	cl := &m.Net.Cloudlets[s]
	hopsUser := float64(m.Net.Hops(p.AttachNode, cl.Node))
	hopsDC := float64(m.Net.Hops(cl.Node, dc.Node))
	if hopsUser < 0 || hopsDC < 0 {
		return CostBreakdown{Transmission: math.Inf(1), Update: math.Inf(1)}
	}
	hopsDC += float64(dc.BackhaulHops)
	return CostBreakdown{
		Congestion:    m.CongestionCoeff(s) * m.CongestionLevel(load),
		Instantiation: p.InstCost,
		Bandwidth:     cl.FixedBandwidthCost,
		Processing:    cl.ProcPricePerGB * traffic,
		Transmission:  cl.TransPricePerGBHop * traffic * hopsUser,
		Update:        cl.TransPricePerGBHop * p.UpdateGB() * hopsDC,
	}
}

// SocialCost is Eq. (6): the total cost over all providers. Congestion is
// quadratic in each cloudlet's load because each of the |σ_i| tenants pays
// (α_i+β_i)·|σ_i|.
func (m *Market) SocialCost(pl Placement) float64 {
	loads := m.Loads(pl)
	total := 0.0
	for l, s := range pl {
		if s == Remote {
			total += m.remote[l]
		} else {
			total += m.CostAt(l, s, loads[s])
		}
	}
	return total
}

// GroupCost sums the provider costs of the given subset under pl.
func (m *Market) GroupCost(pl Placement, members []int) float64 {
	loads := m.Loads(pl)
	total := 0.0
	for _, l := range members {
		s := pl[l]
		if s == Remote {
			total += m.remote[l]
		} else {
			total += m.CostAt(l, s, loads[s])
		}
	}
	return total
}

// CheckCapacity verifies the computing and bandwidth capacity constraints
// of every cloudlet under pl (Section II-F). slackFactor inflates the
// capacities multiplicatively: 0 checks them exactly, and the
// Shmoys-Tardos additive overload is expressed by the caller as a factor.
func (m *Market) CheckCapacity(pl Placement, slackFactor float64) error {
	nc := m.Net.NumCloudlets()
	compute := make([]float64, nc)
	bandwidth := make([]float64, nc)
	for l, s := range pl {
		if s == Remote {
			continue
		}
		p := &m.Providers[l]
		compute[s] += p.ComputeDemand()
		bandwidth[s] += p.BandwidthDemand()
	}
	for i := range m.Net.Cloudlets {
		cl := &m.Net.Cloudlets[i]
		if compute[i] > cl.ComputeCap*(1+slackFactor)+1e-9 {
			return fmt.Errorf("mec: cloudlet %d compute overloaded: %v > %v", i, compute[i], cl.ComputeCap)
		}
		if bandwidth[i] > cl.BandwidthCap*(1+slackFactor)+1e-9 {
			return fmt.Errorf("mec: cloudlet %d bandwidth overloaded: %v > %v", i, bandwidth[i], cl.BandwidthCap)
		}
	}
	return nil
}

// MaxDemands returns a_max = max_l a_l·r_l and b_max = max_l b_l·r_l, the
// quantities the virtual-cloudlet split of Eq. (7) divides capacities by.
func (m *Market) MaxDemands() (aMax, bMax float64) {
	for l := range m.Providers {
		p := &m.Providers[l]
		if d := p.ComputeDemand(); d > aMax {
			aMax = d
		}
		if d := p.BandwidthDemand(); d > bMax {
			bMax = d
		}
	}
	return aMax, bMax
}

// VirtualSlots returns n_i per Eq. (7) for every cloudlet:
// n_i = min{⌊C(CL_i)/a_max⌋, ⌊B(CL_i)/b_max⌋}.
func (m *Market) VirtualSlots() []int {
	aMax, bMax := m.MaxDemands()
	slots := make([]int, m.Net.NumCloudlets())
	for i := range m.Net.Cloudlets {
		cl := &m.Net.Cloudlets[i]
		byCompute := int(math.Floor(cl.ComputeCap / aMax))
		byBandwidth := int(math.Floor(cl.BandwidthCap / bMax))
		if byCompute < byBandwidth {
			slots[i] = byCompute
		} else {
			slots[i] = byBandwidth
		}
	}
	return slots
}

// DeltaKappa returns δ = max_i C(CL_i)/a_max and κ = max_i B(CL_i)/b_max,
// the constants in the paper's 2·δ·κ approximation ratio (Lemma 2).
func (m *Market) DeltaKappa() (delta, kappa float64) {
	aMax, bMax := m.MaxDemands()
	for i := range m.Net.Cloudlets {
		cl := &m.Net.Cloudlets[i]
		if d := cl.ComputeCap / aMax; d > delta {
			delta = d
		}
		if k := cl.BandwidthCap / bMax; k > kappa {
			kappa = k
		}
	}
	return delta, kappa
}
