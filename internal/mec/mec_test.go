package mec

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/graph"
	"mecache/internal/topology"
)

// lineTopo builds a 6-node path topology for hand-checkable hop counts:
// 0-1-2-3-4-5.
func lineTopo(t *testing.T) *topology.Topology {
	t.Helper()
	g := graph.New(6, false)
	for i := 0; i+1 < 6; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	return &topology.Topology{Name: "line", Graph: g, Pos: make([]topology.Point, 6)}
}

// testMarket builds a small deterministic market on the path topology:
// cloudlet 0 at node 1, cloudlet 1 at node 4, DC at node 5, two providers
// attached at nodes 0 and 3.
func testMarket(t *testing.T) *Market {
	t.Helper()
	top := lineTopo(t)
	net, err := NewNetwork(top,
		[]Cloudlet{
			{Node: 1, NumVMs: 20, ComputeCap: 20, BandwidthCap: 200, Alpha: 0.5, Beta: 0.5,
				FixedBandwidthCost: 0.2, ProcPricePerGB: 0.2, TransPricePerGBHop: 0.1},
			{Node: 4, NumVMs: 20, ComputeCap: 20, BandwidthCap: 200, Alpha: 0.3, Beta: 0.2,
				FixedBandwidthCost: 0.3, ProcPricePerGB: 0.18, TransPricePerGBHop: 0.08},
		},
		[]DataCenter{{Node: 5, ProcPricePerGB: 0.22, TransPricePerGBHop: 0.1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMarket(net, []Provider{
		{Requests: 10, ComputePerReq: 0.1, BandwidthPerReq: 2, InstCost: 1,
			TrafficGBPerReq: 0.1, DataGB: 2, UpdateRatio: 0.1, HomeDC: 0, AttachNode: 0},
		{Requests: 20, ComputePerReq: 0.05, BandwidthPerReq: 1, InstCost: 0.5,
			TrafficGBPerReq: 0.05, DataGB: 4, UpdateRatio: 0.1, HomeDC: 0, AttachNode: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestHops(t *testing.T) {
	m := testMarket(t)
	if h := m.Net.Hops(0, 5); h != 5 {
		t.Fatalf("Hops(0,5) = %d, want 5", h)
	}
	if h := m.Net.Hops(4, 4); h != 0 {
		t.Fatalf("Hops(4,4) = %d, want 0", h)
	}
}

func TestBaseCostHandComputed(t *testing.T) {
	m := testMarket(t)
	// Provider 0 at cloudlet 0 (node 1): traffic = 10*0.1 = 1 GB.
	// inst 1 + fixed 0.2 + proc 0.2*1 + trans 0.1*1*hops(0,1)=0.1
	// + update 0.1GB*... update = 0.1*2 = 0.2 GB, hops(1,5)=4 -> 0.1*0.2*4 = 0.08.
	want := 1.0 + 0.2 + 0.2 + 0.1 + 0.08
	if got := m.BaseCost(0, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("BaseCost(0,0) = %v, want %v", got, want)
	}
}

func TestRemoteCostHandComputed(t *testing.T) {
	m := testMarket(t)
	// Provider 0 remote: traffic 1 GB, hops(0,5)=5: proc 0.22 + trans 0.1*1*5.
	want := 0.22 + 0.5
	if got := m.RemoteCost(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RemoteCost(0) = %v, want %v", got, want)
	}
}

func TestProviderCostIncludesCongestion(t *testing.T) {
	m := testMarket(t)
	pl := Placement{0, 0} // both on cloudlet 0, load 2
	c0 := m.ProviderCost(pl, 0)
	want := m.CongestionCoeff(0)*2 + m.BaseCost(0, 0)
	if math.Abs(c0-want) > 1e-12 {
		t.Fatalf("ProviderCost = %v, want %v", c0, want)
	}
}

func TestSocialCostEqualsSumOfProviderCosts(t *testing.T) {
	m := testMarket(t)
	for _, pl := range []Placement{{0, 0}, {0, 1}, {Remote, 0}, {Remote, Remote}, {1, 1}} {
		sum := 0.0
		for l := range m.Providers {
			sum += m.ProviderCost(pl, l)
		}
		if sc := m.SocialCost(pl); math.Abs(sc-sum) > 1e-9 {
			t.Fatalf("placement %v: SocialCost %v != sum of provider costs %v", pl, sc, sum)
		}
	}
}

func TestLoads(t *testing.T) {
	m := testMarket(t)
	loads := m.Loads(Placement{0, Remote})
	if loads[0] != 1 || loads[1] != 0 {
		t.Fatalf("loads = %v, want [1 0]", loads)
	}
}

func TestCheckCapacity(t *testing.T) {
	m := testMarket(t)
	// Demands: p0 = (1, 20), p1 = (1, 20); caps (20, 200) -> fine together.
	if err := m.CheckCapacity(Placement{0, 0}, 0); err != nil {
		t.Fatalf("capacity check failed on feasible placement: %v", err)
	}
	// Shrink capacity to force violation.
	m.Net.Cloudlets[0].BandwidthCap = 30
	if err := m.CheckCapacity(Placement{0, 0}, 0); err == nil {
		t.Fatal("overloaded placement passed capacity check")
	}
	// Slack factor rescues it: 30*(1+0.5) = 45 >= 40.
	if err := m.CheckCapacity(Placement{0, 0}, 0.5); err != nil {
		t.Fatalf("slack factor not applied: %v", err)
	}
}

func TestMaxDemandsAndSlots(t *testing.T) {
	m := testMarket(t)
	aMax, bMax := m.MaxDemands()
	if aMax != 1 || bMax != 20 {
		t.Fatalf("MaxDemands = (%v,%v), want (1,20)", aMax, bMax)
	}
	slots := m.VirtualSlots()
	// n_i = min(floor(20/1), floor(200/20)) = min(20,10) = 10.
	if slots[0] != 10 || slots[1] != 10 {
		t.Fatalf("VirtualSlots = %v, want [10 10]", slots)
	}
	delta, kappa := m.DeltaKappa()
	if delta != 20 || kappa != 10 {
		t.Fatalf("DeltaKappa = (%v,%v), want (20,10)", delta, kappa)
	}
}

func TestValidatePlacement(t *testing.T) {
	m := testMarket(t)
	if err := m.Validate(Placement{0, Remote}); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	if err := m.Validate(Placement{0}); err == nil {
		t.Fatal("short placement accepted")
	}
	if err := m.Validate(Placement{0, 7}); err == nil {
		t.Fatal("out-of-range strategy accepted")
	}
	if err := m.Validate(Placement{0, -2}); err == nil {
		t.Fatal("negative non-Remote strategy accepted")
	}
}

func TestNewMarketValidation(t *testing.T) {
	m := testMarket(t)
	net := m.Net
	bad := []Provider{{Requests: 0, ComputePerReq: 1, BandwidthPerReq: 1, HomeDC: 0}}
	if _, err := NewMarket(net, bad); err == nil {
		t.Fatal("zero-request provider accepted")
	}
	bad2 := []Provider{{Requests: 1, ComputePerReq: 1, BandwidthPerReq: 1, HomeDC: 5, AttachNode: 0}}
	if _, err := NewMarket(net, bad2); err == nil {
		t.Fatal("invalid home DC accepted")
	}
	bad3 := []Provider{{Requests: 1, ComputePerReq: 1, BandwidthPerReq: 1, HomeDC: 0, AttachNode: 99}}
	if _, err := NewMarket(net, bad3); err == nil {
		t.Fatal("invalid attach node accepted")
	}
	bad4 := []Provider{{Requests: 1, ComputePerReq: 1, BandwidthPerReq: 1, HomeDC: 0, AttachNode: 0, UpdateRatio: 2}}
	if _, err := NewMarket(net, bad4); err == nil {
		t.Fatal("update ratio > 1 accepted")
	}
	if _, err := NewMarket(net, nil); err == nil {
		t.Fatal("empty provider set accepted")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	top := lineTopo(t)
	if _, err := NewNetwork(top, []Cloudlet{{Node: 99, ComputeCap: 1, BandwidthCap: 1}}, []DataCenter{{Node: 0}}); err == nil {
		t.Fatal("cloudlet at invalid node accepted")
	}
	if _, err := NewNetwork(top, nil, nil); err == nil {
		t.Fatal("network without DCs accepted")
	}
	if _, err := NewNetwork(top, []Cloudlet{{Node: 0, ComputeCap: 0, BandwidthCap: 1}}, []DataCenter{{Node: 0}}); err == nil {
		t.Fatal("zero compute capacity accepted")
	}
}

func TestNearestDC(t *testing.T) {
	top := lineTopo(t)
	net, err := NewNetwork(top,
		[]Cloudlet{{Node: 2, ComputeCap: 1, BandwidthCap: 1}},
		[]DataCenter{{Node: 0}, {Node: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if dc := net.NearestDC(1); dc != 0 {
		t.Fatalf("NearestDC(1) = %d, want 0", dc)
	}
	if dc := net.NearestDC(4); dc != 1 {
		t.Fatalf("NearestDC(4) = %d, want 1", dc)
	}
}

// Property: moving one provider off a cloudlet never increases any other
// provider's cost (congestion is monotone in load).
func TestCongestionMonotonicity(t *testing.T) {
	m := testMarket(t)
	check := func(choice0, choice1 uint8) bool {
		toStrategy := func(c uint8) int {
			switch c % 3 {
			case 0:
				return Remote
			case 1:
				return 0
			default:
				return 1
			}
		}
		pl := Placement{toStrategy(choice0), toStrategy(choice1)}
		if pl[0] == Remote {
			return true
		}
		withdrawn := pl.Clone()
		withdrawn[0] = Remote
		// Provider 1's cost must not increase when provider 0 withdraws.
		return m.ProviderCost(withdrawn, 1) <= m.ProviderCost(pl, 1)+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCost(t *testing.T) {
	m := testMarket(t)
	pl := Placement{0, 0}
	all := m.GroupCost(pl, []int{0, 1})
	if math.Abs(all-m.SocialCost(pl)) > 1e-12 {
		t.Fatalf("GroupCost(all) = %v != SocialCost %v", all, m.SocialCost(pl))
	}
	part := m.GroupCost(pl, []int{1})
	if part >= all {
		t.Fatalf("GroupCost(subset) = %v should be below total %v", part, all)
	}
}

// TestProviderCostsMatchesPerProviderCost: the batched one-pass costing
// used by RankByCost must agree exactly with the per-provider scan.
func TestProviderCostsMatchesPerProviderCost(t *testing.T) {
	m := testMarket(t)
	for _, pl := range []Placement{{0, 0}, {0, 1}, {Remote, 0}, {Remote, Remote}, {1, 1}} {
		costs := m.ProviderCosts(pl)
		if len(costs) != len(m.Providers) {
			t.Fatalf("placement %v: %d costs for %d providers", pl, len(costs), len(m.Providers))
		}
		for l := range m.Providers {
			if want := m.ProviderCost(pl, l); costs[l] != want {
				t.Fatalf("placement %v provider %d: batched cost %v != %v", pl, l, costs[l], want)
			}
		}
	}
}
