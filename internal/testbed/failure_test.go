package testbed

import (
	"math"
	"testing"

	"mecache/internal/core"
)

func TestSurvivesSingleSwitchFailure(t *testing.T) {
	u, err := NewUnderlay()
	if err != nil {
		t.Fatal(err)
	}
	ok, err := u.SurvivesSingleSwitchFailure()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("underlay does not survive a single switch failure — the paper's resilience requirement")
	}
	// The check must leave the underlay healthy.
	for s := range u.Switches {
		if u.Failed(s) {
			t.Fatalf("switch %d left failed after resilience check", s)
		}
	}
}

func TestFailureReroutesTransit(t *testing.T) {
	u, err := NewUnderlay()
	if err != nil {
		t.Fatal(err)
	}
	// Record all healthy path latencies, then fail each switch and check
	// that surviving pairs never get faster (rerouting can only lengthen).
	n := u.NumSwitches()
	healthy := make([][]float64, n)
	for a := 0; a < n; a++ {
		healthy[a] = make([]float64, n)
		for b := 0; b < n; b++ {
			healthy[a][b] = u.PathLatencyMs(a, b)
		}
	}
	for s := 0; s < n; s++ {
		if err := u.FailSwitch(s); err != nil {
			t.Fatal(err)
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == s || b == s {
					if a != b && !math.IsInf(u.PathLatencyMs(a, b), 1) {
						t.Fatalf("path touching failed switch %d reported finite latency", s)
					}
					continue
				}
				if u.PathLatencyMs(a, b) < healthy[a][b]-1e-12 {
					t.Fatalf("failing switch %d made path %d-%d faster", s, a, b)
				}
			}
		}
		if err := u.RestoreSwitch(s); err != nil {
			t.Fatal(err)
		}
	}
	// Restored underlay must match the healthy baseline exactly.
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if u.PathLatencyMs(a, b) != healthy[a][b] {
				t.Fatalf("restore did not recover path %d-%d", a, b)
			}
		}
	}
}

func TestFailureAffectsTunnelLatency(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Workload.NumProviders = 10
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find two overlay nodes on servers attached to different switches.
	var a, b int
	found := false
	for i := 0; i < tb.Overlay.N() && !found; i++ {
		for j := i + 1; j < tb.Overlay.N(); j++ {
			si := tb.Underlay.Servers[tb.HostServer[i]].Switch
			sj := tb.Underlay.Servers[tb.HostServer[j]].Switch
			if si != sj {
				a, b = i, j
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no cross-switch overlay pair found")
	}
	before := tb.TunnelLatencyMs(a, b)
	// Fail the switch hosting a: the tunnel must become unreachable.
	sa := tb.Underlay.Servers[tb.HostServer[a]].Switch
	if err := tb.Underlay.FailSwitch(sa); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tb.TunnelLatencyMs(a, b), 1) {
		t.Fatal("tunnel through failed host switch still reachable")
	}
	if err := tb.Underlay.RestoreSwitch(sa); err != nil {
		t.Fatal(err)
	}
	if got := tb.TunnelLatencyMs(a, b); got != before {
		t.Fatalf("tunnel latency %v after restore, want %v", got, before)
	}
}

func TestFailureValidation(t *testing.T) {
	u, err := NewUnderlay()
	if err != nil {
		t.Fatal(err)
	}
	if err := u.FailSwitch(99); err == nil {
		t.Fatal("out-of-range switch accepted")
	}
	if err := u.RestoreSwitch(0); err == nil {
		t.Fatal("restoring healthy switch accepted")
	}
	if err := u.FailSwitch(0); err != nil {
		t.Fatal(err)
	}
	if err := u.FailSwitch(0); err == nil {
		t.Fatal("double failure accepted")
	}
	if _, err := u.SurvivesSingleSwitchFailure(); err == nil {
		t.Fatal("resilience check on degraded underlay accepted")
	}
	if err := u.RestoreSwitch(0); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFailureMayPartition(t *testing.T) {
	// Failing two switches can cut off transit for some pairs; the model
	// must report it as unreachable, not panic.
	u, err := NewUnderlay()
	if err != nil {
		t.Fatal(err)
	}
	if err := u.FailSwitch(0); err != nil {
		t.Fatal(err)
	}
	if err := u.FailSwitch(2); err != nil {
		t.Fatal(err)
	}
	// Remaining switches 1, 3, 4: links 3-4 and 1-4 survive; all three
	// should still reach each other in this particular topology.
	for _, pair := range [][2]int{{1, 3}, {1, 4}, {3, 4}} {
		if math.IsInf(u.PathLatencyMs(pair[0], pair[1]), 1) {
			t.Fatalf("pair %v unexpectedly partitioned", pair)
		}
	}
}

func TestMeasureCountsUnreachableFlows(t *testing.T) {
	cfg := DefaultConfig(51)
	cfg.Workload.NumProviders = 25
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.LCF(tb.Market, core.LCFOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := tb.Deploy(res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := tb.Measure(dep, 1)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.FlowsUnreachable != 0 {
		t.Fatalf("healthy underlay reported %d unreachable flows", healthy.FlowsUnreachable)
	}
	if err := tb.Underlay.FailSwitch(0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := tb.Underlay.RestoreSwitch(0); err != nil {
			t.Fatal(err)
		}
	}()
	degraded, err := tb.Measure(dep, 1)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.FlowsUnreachable == 0 {
		t.Fatal("switch failure left every flow reachable on a 5-server overlay")
	}
	if degraded.FlowsCompleted+degraded.FlowsUnreachable != len(tb.Market.Providers) {
		t.Fatalf("flow accounting: %d completed + %d unreachable != %d providers",
			degraded.FlowsCompleted, degraded.FlowsUnreachable, len(tb.Market.Providers))
	}
}
