package testbed

import (
	"fmt"
	"math"

	"mecache/internal/graph"
	"mecache/internal/mec"
	"mecache/internal/rng"
	"mecache/internal/sim"
	"mecache/internal/topology"
	"mecache/internal/workload"
)

// Config parameterizes the emulated test-bed.
type Config struct {
	// OverlaySize selects a GT-ITM overlay of that size; zero uses the
	// paper's AS1755 overlay.
	OverlaySize int
	// Workload is the market generator configuration (Section IV-A ranges).
	Workload workload.Config
	// ProcMsPerGB is the server processing latency per GB of request
	// traffic.
	ProcMsPerGB float64
	// CongestionMsPerTenant adds queueing delay per co-located service at a
	// cloudlet, the latency analogue of the congestion cost.
	CongestionMsPerTenant float64
	// TunnelOverheadMs is the per-tunnel VXLAN encap/decap latency.
	TunnelOverheadMs float64
	// BackhaulMsPerHop is the WAN latency per backhaul hop toward a remote
	// data center (the delay MEC exists to avoid).
	BackhaulMsPerHop float64
	// IntraServerGbps is the transfer rate between two overlay nodes hosted
	// on the same server (no underlay link crossed).
	IntraServerGbps float64
	// ChunkMB is the latency-relevant transfer unit of one interactive
	// request (e.g. one rendered frame batch); the session's full traffic
	// volume is priced by the cost model, but per-request latency is the
	// time to move one chunk at the flow's bottleneck share.
	ChunkMB float64
}

// DefaultConfig returns the Section IV-C setting: AS1755 overlay with the
// default Section IV-A market.
func DefaultConfig(seed uint64) Config {
	return Config{
		OverlaySize:           0,
		Workload:              workload.Default(seed),
		ProcMsPerGB:           2.0,
		CongestionMsPerTenant: 0.5,
		TunnelOverheadMs:      0.05,
		BackhaulMsPerHop:      2.0,
		IntraServerGbps:       10,
		ChunkMB:               1.0,
	}
}

// Testbed is the assembled emulation: underlay, overlay, market.
type Testbed struct {
	Underlay *Underlay
	// Overlay is the overlay topology (the market's network topology).
	Overlay *topology.Topology
	// HostServer maps each overlay node to the underlay server hosting its
	// OVS instance and VMs.
	HostServer []int
	// Market is the service market instantiated on the overlay.
	Market *mec.Market

	cfg Config
	// overlayPaths caches shortest-path trees on the overlay graph from
	// nodes used as flow sources.
	overlayPaths map[int]graph.ShortestPaths
}

// New assembles the test-bed: builds the underlay, virtualizes the overlay
// (AS1755 by default), places each overlay node on a server round-robin,
// and generates the market.
func New(cfg Config) (*Testbed, error) {
	u, err := NewUnderlay()
	if err != nil {
		return nil, err
	}
	var topo *topology.Topology
	if cfg.OverlaySize > 0 {
		topo, err = topology.GTITM(cfg.Workload.Seed^0x17551755, cfg.OverlaySize)
		if err != nil {
			return nil, err
		}
	} else {
		topo = topology.AS1755()
	}
	market, err := workload.Generate(topo, cfg.Workload)
	if err != nil {
		return nil, err
	}
	host := make([]int, topo.N())
	for v := range host {
		host[v] = v % len(u.Servers)
	}
	return &Testbed{
		Underlay:     u,
		Overlay:      topo,
		HostServer:   host,
		Market:       market,
		cfg:          cfg,
		overlayPaths: make(map[int]graph.ShortestPaths),
	}, nil
}

// overlayPath returns a hop-shortest overlay node path from src to dst;
// hop-shortest (not latency-shortest) so that installed path lengths agree
// with the market's hop-based transmission pricing.
func (tb *Testbed) overlayPath(src, dst int) ([]int, error) {
	sp, ok := tb.overlayPaths[src]
	if !ok {
		sp = tb.Overlay.Graph.BFSPaths(src)
		tb.overlayPaths[src] = sp
	}
	path := sp.PathTo(dst)
	if path == nil {
		return nil, fmt.Errorf("testbed: overlay nodes %d and %d disconnected", src, dst)
	}
	return path, nil
}

// TunnelLatencyMs returns the VXLAN tunnel latency between two adjacent
// overlay nodes: the underlay path latency between their host switches plus
// encap/decap overhead. Two overlay nodes on the same server still pay the
// overhead.
func (tb *Testbed) TunnelLatencyMs(a, b int) float64 {
	sa := tb.Underlay.Servers[tb.HostServer[a]].Switch
	sb := tb.Underlay.Servers[tb.HostServer[b]].Switch
	return tb.Underlay.PathLatencyMs(sa, sb) + tb.cfg.TunnelOverheadMs
}

// pathLatencyMs sums tunnel latencies along an overlay path.
func (tb *Testbed) pathLatencyMs(path []int) float64 {
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		total += tb.TunnelLatencyMs(path[i], path[i+1])
	}
	return total
}

// Deployment is an installed placement: the controller state plus the flow
// set the measurement phase will replay.
type Deployment struct {
	Placement  mec.Placement
	Controller *Controller
	Flows      []DeployedFlow
	// TenantCount[i] is the number of services deployed at cloudlet i,
	// read back from the controller's flow tables.
	TenantCount []int
}

// DeployedFlow is one installed traffic flow.
type DeployedFlow struct {
	Provider int
	Kind     FlowKind
	Path     []int // overlay node sequence
	VolumeGB float64
	// ServeCloudlet is the cloudlet index serving the flow, or mec.Remote.
	ServeCloudlet int
}

// Deploy installs a placement: request flows from each provider's
// attachment node to its serving node (cloudlet or home DC), and update
// flows from each cached instance to its home DC. It returns the
// deployment with the controller's flow tables populated.
func (tb *Testbed) Deploy(pl mec.Placement) (*Deployment, error) {
	if err := tb.Market.Validate(pl); err != nil {
		return nil, err
	}
	m := tb.Market
	ctrl := NewController(tb.Overlay.N())
	dep := &Deployment{
		Placement:   pl.Clone(),
		Controller:  ctrl,
		TenantCount: make([]int, m.Net.NumCloudlets()),
	}
	for l, s := range pl {
		p := &m.Providers[l]
		var serveNode int
		if s == mec.Remote {
			serveNode = m.Net.DCs[p.HomeDC].Node
		} else {
			serveNode = m.Net.Cloudlets[s].Node
		}
		reqPath, err := tb.overlayPath(p.AttachNode, serveNode)
		if err != nil {
			return nil, err
		}
		if err := ctrl.InstallPath(l, RequestFlow, reqPath); err != nil {
			return nil, err
		}
		dep.Flows = append(dep.Flows, DeployedFlow{
			Provider: l, Kind: RequestFlow, Path: reqPath,
			VolumeGB: p.TrafficGB(), ServeCloudlet: s,
		})
		if s != mec.Remote {
			updPath, err := tb.overlayPath(serveNode, m.Net.DCs[p.HomeDC].Node)
			if err != nil {
				return nil, err
			}
			if err := ctrl.InstallPath(l, UpdateFlow, updPath); err != nil {
				return nil, err
			}
			dep.Flows = append(dep.Flows, DeployedFlow{
				Provider: l, Kind: UpdateFlow, Path: updPath,
				VolumeGB: p.UpdateGB(), ServeCloudlet: s,
			})
		}
	}
	// Read tenant counts back from the controller, not the placement: the
	// measurement must reflect what was actually installed.
	for i := range m.Net.Cloudlets {
		dep.TenantCount[i] = len(ctrl.ProvidersAt(m.Net.Cloudlets[i].Node))
	}
	return dep, nil
}

// Measurement aggregates a measurement run.
type Measurement struct {
	// MeasuredSocialCost is the social cost recomputed from the deployed
	// artifacts (installed paths and tenant counts). It must match the
	// analytic Market.SocialCost of the placement.
	MeasuredSocialCost float64
	// MeanLatencyMs and MaxLatencyMs summarize per-request completion
	// latencies over the emulated flows (propagation + transfer +
	// processing + queueing).
	MeanLatencyMs float64
	MaxLatencyMs  float64
	// MeanTransferMs is the average per-request transfer time under the
	// deployment's link contention (bottleneck fair share).
	MeanTransferMs float64
	// MaxLinkFlows is the largest number of flows sharing one underlay
	// link — the deployment's hotspot.
	MaxLinkFlows int
	// FlowsCompleted counts completed request flows; FlowsUnreachable
	// counts request flows whose installed path crossed a failed switch
	// and could not be delivered.
	FlowsCompleted   int
	FlowsUnreachable int
	// VirtualDurationMs is the virtual time at which the last flow
	// completed.
	VirtualDurationMs float64
}

// Measure replays the deployment in virtual time: each provider's request
// flow starts at a seeded offset, traverses its installed tunnel path, pays
// processing and congestion delay at the serving node, and completes. The
// measured social cost is computed from installed path lengths and tenant
// counts only.
func (tb *Testbed) Measure(dep *Deployment, seed uint64) (*Measurement, error) {
	if dep == nil {
		return nil, fmt.Errorf("testbed: nil deployment")
	}
	m := tb.Market
	r := rng.New(seed)
	kernel := sim.NewKernel()

	meas := &Measurement{}
	var totalLatency, totalTransfer float64

	// Static contention model: every flow claims a fair share of each
	// underlay link its tunnels cross; the flow's rate is its bottleneck
	// share. Link load is counted once per tunnel traversal.
	linkFlows := make(map[[2]int]int)
	flowLinks := make(map[int][][2]int, len(dep.Flows))
	for fi, f := range dep.Flows {
		var links [][2]int
		for i := 0; i+1 < len(f.Path); i++ {
			sa := tb.Underlay.Servers[tb.HostServer[f.Path[i]]].Switch
			sb := tb.Underlay.Servers[tb.HostServer[f.Path[i+1]]].Switch
			links = append(links, tb.Underlay.PathLinks(sa, sb)...)
		}
		flowLinks[fi] = links
		for _, lk := range links {
			linkFlows[lk]++
		}
	}
	for _, n := range linkFlows {
		if n > meas.MaxLinkFlows {
			meas.MaxLinkFlows = n
		}
	}
	intra := tb.cfg.IntraServerGbps
	if intra <= 0 {
		intra = 10
	}
	chunk := tb.cfg.ChunkMB
	if chunk <= 0 {
		chunk = 1
	}
	// transferMs computes the time to move one interactive chunk at the
	// flow's bottleneck fair share.
	transferMs := func(fi int) float64 {
		rate := intra
		for _, lk := range flowLinks[fi] {
			if n := linkFlows[lk]; n > 0 {
				if share := tb.Underlay.LinkCapacityGbps(lk[0], lk[1]) / float64(n); share < rate {
					rate = share
				}
			}
		}
		return chunk * 8 / 1000 / rate * 1000 // MB -> Gb, / Gbps -> s, -> ms
	}

	for fi, f := range dep.Flows {
		if f.Kind != RequestFlow {
			continue
		}
		// A path through a failed switch cannot be delivered at all; count
		// it instead of simulating it.
		if math.IsInf(tb.pathLatencyMs(f.Path), 1) {
			meas.FlowsUnreachable++
			continue
		}
		fi, f := fi, f
		start := r.FloatRange(0, 10)
		err := kernel.At(start, func() {
			latency := tb.pathLatencyMs(f.Path)
			transfer := transferMs(fi)
			latency += transfer
			latency += tb.cfg.ProcMsPerGB * f.VolumeGB / float64(m.Providers[f.Provider].Requests)
			if f.ServeCloudlet != mec.Remote {
				latency += tb.cfg.CongestionMsPerTenant * float64(dep.TenantCount[f.ServeCloudlet])
			} else {
				// Remote service: the flow continues over the WAN backhaul
				// to the actual remote cloud.
				dc := &m.Net.DCs[m.Providers[f.Provider].HomeDC]
				latency += tb.cfg.BackhaulMsPerHop * float64(dc.BackhaulHops)
			}
			done := kernel.Now() + latency
			_ = kernel.At(done, func() {
				meas.FlowsCompleted++
				totalLatency += latency
				totalTransfer += transfer
				if latency > meas.MaxLatencyMs {
					meas.MaxLatencyMs = latency
				}
				if kernel.Now() > meas.VirtualDurationMs {
					meas.VirtualDurationMs = kernel.Now()
				}
			})
		})
		if err != nil {
			return nil, err
		}
	}
	if err := kernel.Run(0); err != nil {
		return nil, err
	}
	if meas.FlowsCompleted > 0 {
		meas.MeanLatencyMs = totalLatency / float64(meas.FlowsCompleted)
		meas.MeanTransferMs = totalTransfer / float64(meas.FlowsCompleted)
	}

	cost, err := tb.measuredCost(dep)
	if err != nil {
		return nil, err
	}
	meas.MeasuredSocialCost = cost
	return meas, nil
}

// measuredCost recomputes the social cost purely from deployment artifacts:
// installed path hop counts, per-cloudlet tenant counts from the flow
// tables, and the market's price book.
func (tb *Testbed) measuredCost(dep *Deployment) (float64, error) {
	m := tb.Market
	// Per-provider accumulation mirrors Eq. (3)/(6).
	total := 0.0
	reqHops := make(map[int]int)
	updHops := make(map[int]int)
	for _, f := range dep.Flows {
		switch f.Kind {
		case RequestFlow:
			reqHops[f.Provider] = len(f.Path) - 1
		case UpdateFlow:
			updHops[f.Provider] = len(f.Path) - 1
		}
	}
	for l, s := range dep.Placement {
		p := &m.Providers[l]
		hops, ok := reqHops[l]
		if !ok {
			return 0, fmt.Errorf("testbed: provider %d has no installed request flow", l)
		}
		dc := &m.Net.DCs[p.HomeDC]
		if s == mec.Remote {
			wan := float64(hops + dc.BackhaulHops)
			total += dc.ProcPricePerGB*p.TrafficGB() + dc.TransPricePerGBHop*p.TrafficGB()*wan
			continue
		}
		cl := &m.Net.Cloudlets[s]
		uh, ok := updHops[l]
		if !ok {
			return 0, fmt.Errorf("testbed: cached provider %d has no installed update flow", l)
		}
		tenants := dep.TenantCount[s]
		total += (cl.Alpha+cl.Beta)*float64(tenants) +
			p.InstCost +
			cl.FixedBandwidthCost +
			cl.ProcPricePerGB*p.TrafficGB() +
			cl.TransPricePerGBHop*p.TrafficGB()*float64(hops) +
			cl.TransPricePerGBHop*p.UpdateGB()*float64(uh+dc.BackhaulHops)
	}
	if math.IsNaN(total) || math.IsInf(total, 0) {
		return 0, fmt.Errorf("testbed: measured cost is not finite")
	}
	return total, nil
}
