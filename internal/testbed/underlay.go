// Package testbed emulates the paper's Section IV-C test-bed in
// deterministic virtual time: a physical underlay of five hardware switches
// and five servers, an overlay of Open-vSwitch nodes and VMs built on the
// AS1755 topology and connected by VXLAN-style tunnels mapped onto underlay
// paths, and a controller that runs the caching algorithms as applications
// and installs flow rules for every deployed service.
//
// The hardware test-bed itself (Huawei/H3C/Ruijie/Cisco/Centec switches,
// i7-8700 servers, a Ryu controller) is not reproducible offline; this
// package substitutes a flow-level discrete-event emulation that exercises
// the identical decision -> flow-installation -> measurement pipeline. The
// measured social cost is computed from the installed deployment artifacts
// (tunnel paths, tenant counts), so tests can verify it coincides with the
// analytic cost model.
package testbed

import (
	"fmt"

	"mecache/internal/graph"
)

// SwitchModel identifies an underlay hardware switch; the five models match
// the paper's test-bed inventory.
type SwitchModel string

// The underlay switch models from Section IV-C.
const (
	SwitchHuawei SwitchModel = "Huawei-S5720-32C-HI-24S-AC"
	SwitchH3C    SwitchModel = "H3C-S5560-30S-EI"
	SwitchRuijie SwitchModel = "Ruijie-RG-5750C-28Gt4XS-H"
	SwitchCisco  SwitchModel = "CISCO-3750X-24T"
	SwitchCentec SwitchModel = "Centec-aSW1100-48T4X"
)

// Switch is a physical underlay switch.
type Switch struct {
	Model SwitchModel
	// PortCount bounds how many flow rules the controller may install.
	PortCount int
}

// Server is a physical compute host attached to one underlay switch.
type Server struct {
	// Name labels the host.
	Name string
	// Switch is the index of the underlay switch it attaches to.
	Switch int
	// CPUCores and RAMGiB describe the host (i7-8700: 6 cores, 16 GiB).
	CPUCores int
	RAMGiB   int
}

// Underlay is the physical substrate: switches, inter-switch links with
// latencies, and servers.
type Underlay struct {
	Switches []Switch
	Servers  []Server
	// g is the switch graph; edge weights are link latencies in ms.
	g *graph.Graph
	// paths caches per-switch shortest-path trees over surviving switches.
	paths []graph.ShortestPaths
	// failed marks switches that are currently down (see failure.go);
	// failedLinks marks individual down links.
	failed      map[int]bool
	failedLinks map[[2]int]bool
	// linkCap holds per-link capacities in Gbps, keyed by sorted endpoints.
	linkCap map[[2]int]float64
}

// linkKey normalizes an undirected link's endpoints.
func linkKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// PathLinks returns the underlay links (as sorted endpoint pairs) along the
// current shortest path between two switches; nil when unreachable or when
// a == b.
func (u *Underlay) PathLinks(a, b int) [][2]int {
	path := u.SwitchPath(a, b)
	if len(path) < 2 {
		return nil
	}
	links := make([][2]int, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		links = append(links, linkKey(path[i], path[i+1]))
	}
	return links
}

// LinkCapacityGbps returns the capacity of an underlay link, or 0 for an
// unknown link.
func (u *Underlay) LinkCapacityGbps(a, b int) float64 {
	return u.linkCap[linkKey(a, b)]
}

// NewUnderlay builds the five-switch test-bed underlay. Each switch is
// connected to at least two others (the paper's resilience requirement:
// traffic survives one switch failure), with per-link latencies in
// milliseconds.
func NewUnderlay() (*Underlay, error) {
	u := &Underlay{
		Switches: []Switch{
			{Model: SwitchHuawei, PortCount: 24},
			{Model: SwitchH3C, PortCount: 30},
			{Model: SwitchRuijie, PortCount: 28},
			{Model: SwitchCisco, PortCount: 24},
			{Model: SwitchCentec, PortCount: 48},
		},
	}
	u.g = graph.New(len(u.Switches), false)
	// Ring plus two chords: every switch has degree >= 2. Capacities match
	// the hardware's uplink ports (10 GbE trunks, one 40 GbE chord).
	links := []struct {
		a, b         int
		latencyMs    float64
		capacityGbps float64
	}{
		{0, 1, 0.08, 10}, {1, 2, 0.06, 10}, {2, 3, 0.07, 10}, {3, 4, 0.05, 10}, {4, 0, 0.09, 10},
		{0, 2, 0.11, 40}, {1, 4, 0.10, 10},
	}
	u.linkCap = make(map[[2]int]float64, len(links))
	for _, l := range links {
		if err := u.g.AddEdge(l.a, l.b, l.latencyMs); err != nil {
			return nil, fmt.Errorf("testbed: underlay link (%d,%d): %w", l.a, l.b, err)
		}
		u.linkCap[linkKey(l.a, l.b)] = l.capacityGbps
	}
	for i := 0; i < 5; i++ {
		u.Servers = append(u.Servers, Server{
			Name:     fmt.Sprintf("server-%d", i),
			Switch:   i,
			CPUCores: 6,
			RAMGiB:   16,
		})
	}
	u.paths = make([]graph.ShortestPaths, len(u.Switches))
	for s := range u.Switches {
		u.paths[s] = u.g.Dijkstra(s)
	}
	return u, nil
}

// SwitchPath returns the underlay switch sequence between two switches
// (inclusive); nil only if disconnected, which the fixed topology prevents.
func (u *Underlay) SwitchPath(a, b int) []int {
	return u.paths[a].PathTo(b)
}

// PathLatencyMs returns the one-way underlay latency between two switches.
func (u *Underlay) PathLatencyMs(a, b int) float64 {
	return u.paths[a].Dist[b]
}

// NumSwitches returns the underlay switch count.
func (u *Underlay) NumSwitches() int { return len(u.Switches) }
