package testbed

import (
	"math"
	"testing"

	"mecache/internal/core"
)

// deployBed builds a testbed and deploys an LCF placement on it.
func deployBed(t *testing.T, seed uint64) (*Testbed, *Deployment) {
	t.Helper()
	tb := newBed(t, seed)
	res, err := core.LCF(tb.Market, core.LCFOptions{Xi: 0.7, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := tb.Deploy(res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	return tb, dep
}

func TestFaultConfigValidate(t *testing.T) {
	if err := DefaultFaultConfig(1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []FaultConfig{
		{SwitchMTBFMs: -1},
		{SwitchMTBFMs: math.NaN()},
		{SwitchMTBFMs: 10, SwitchMTTRMs: 0, WindowMs: 50},
		{LinkMTBFMs: 10, LinkMTTRMs: 0, WindowMs: 50},
		{SwitchMTBFMs: 10, SwitchMTTRMs: 1, WindowMs: 0},
		{MaxRetries: -1},
		{MaxRetries: 3, RetryBaseMs: 0},
	}
	for i, fc := range bad {
		if err := fc.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, fc)
		}
	}
}

func TestMeasureUnderFaultsValidation(t *testing.T) {
	tb, dep := deployBed(t, 11)
	if _, err := tb.MeasureUnderFaults(nil, 1, DefaultFaultConfig(1)); err == nil {
		t.Fatal("nil deployment accepted")
	}
	if _, err := tb.MeasureUnderFaults(dep, 1, FaultConfig{SwitchMTBFMs: -1}); err == nil {
		t.Fatal("invalid fault config accepted")
	}
	if err := tb.Underlay.FailSwitch(2); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.MeasureUnderFaults(dep, 1, DefaultFaultConfig(1)); err == nil {
		t.Fatal("unhealthy underlay accepted")
	}
	if err := tb.Underlay.RestoreSwitch(2); err != nil {
		t.Fatal(err)
	}
}

// With fault injection disabled the retry machinery is never exercised, so
// the request-flow statistics must coincide with the plain Measure path.
func TestMeasureUnderFaultsNoFaultsMatchesMeasure(t *testing.T) {
	tb, dep := deployBed(t, 13)
	meas, err := tb.Measure(dep, 5)
	if err != nil {
		t.Fatal(err)
	}
	fc := DefaultFaultConfig(5)
	fc.SwitchMTBFMs = 0
	fc.LinkMTBFMs = 0
	fm, err := tb.MeasureUnderFaults(dep, 5, fc)
	if err != nil {
		t.Fatal(err)
	}
	if fm.SwitchFailures != 0 || fm.LinkFailures != 0 || fm.Retries != 0 ||
		fm.RequestTimeouts != 0 || fm.UpdateTimeouts != 0 {
		t.Fatalf("fault activity without faults: %+v", fm)
	}
	if fm.FlowsCompleted != meas.FlowsCompleted ||
		fm.MaxLinkFlows != meas.MaxLinkFlows ||
		fm.MeasuredSocialCost != meas.MeasuredSocialCost {
		t.Fatalf("flow counts diverge: faults %+v vs plain %+v", fm.Measurement, *meas)
	}
	if math.Abs(fm.MeanLatencyMs-meas.MeanLatencyMs) > 1e-9 ||
		math.Abs(fm.MaxLatencyMs-meas.MaxLatencyMs) > 1e-9 ||
		math.Abs(fm.MeanTransferMs-meas.MeanTransferMs) > 1e-9 {
		t.Fatalf("latencies diverge: faults %+v vs plain %+v", fm.Measurement, *meas)
	}
	if fm.UpdatesDelivered == 0 {
		t.Fatal("no consistency-update flows delivered")
	}
}

func TestMeasureUnderFaultsDeterministic(t *testing.T) {
	fc := DefaultFaultConfig(21)
	fc.LinkMTBFMs = 25
	run := func() FaultMeasurement {
		tb, dep := deployBed(t, 17)
		fm, err := tb.MeasureUnderFaults(dep, 9, fc)
		if err != nil {
			t.Fatal(err)
		}
		return *fm
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed fault measurements diverge:\n%+v\n%+v", a, b)
	}
	if a.SwitchFailures == 0 {
		t.Fatal("fault scenario injected no switch failures; tighten MTBF")
	}
	if a.SwitchFailures != a.SwitchRepairs || a.LinkFailures != a.LinkRepairs {
		t.Fatalf("failures and repairs unbalanced: %+v", a)
	}
	if a.SwitchDowntimeMs <= 0 {
		t.Fatalf("no downtime recorded despite %d failures", a.SwitchFailures)
	}
}

// Aggressive fault rates must surface retry and timeout activity, and the
// testbed must still be fully healthy and reusable afterwards.
func TestMeasureUnderFaultsRetriesAndHeals(t *testing.T) {
	tb, dep := deployBed(t, 23)
	before, err := tb.Measure(dep, 3)
	if err != nil {
		t.Fatal(err)
	}
	fc := FaultConfig{
		SwitchMTBFMs: 4, SwitchMTTRMs: 6,
		LinkMTBFMs: 6, LinkMTTRMs: 6,
		WindowMs: 60, RetryBaseMs: 0.5, RetryCapMs: 4, MaxRetries: 3,
		Seed: 77,
	}
	fm, err := tb.MeasureUnderFaults(dep, 3, fc)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Retries == 0 {
		t.Fatalf("no retries under aggressive faults: %+v", fm)
	}
	if fm.RequestTimeouts != fm.FlowsUnreachable {
		t.Fatalf("RequestTimeouts %d != FlowsUnreachable %d", fm.RequestTimeouts, fm.FlowsUnreachable)
	}
	for s := 0; s < tb.Underlay.NumSwitches(); s++ {
		if tb.Underlay.Failed(s) {
			t.Fatalf("switch %d still failed after measurement", s)
		}
	}
	for _, lk := range tb.Underlay.Links() {
		if tb.Underlay.LinkFailed(lk[0], lk[1]) {
			t.Fatalf("link %v still failed after measurement", lk)
		}
	}
	after, err := tb.Measure(dep, 3)
	if err != nil {
		t.Fatal(err)
	}
	if *before != *after {
		t.Fatalf("Measure changed after fault run:\n%+v\n%+v", *before, *after)
	}
}

// Satellite: Measure must be bit-for-bit deterministic for a fixed seed, and
// a FailSwitch/RestoreSwitch cycle must leave no residual state behind.
func TestMeasureDeterministicAcrossFailureCycle(t *testing.T) {
	tb, dep := deployBed(t, 29)
	base, err := tb.Measure(dep, 41)
	if err != nil {
		t.Fatal(err)
	}
	again, err := tb.Measure(dep, 41)
	if err != nil {
		t.Fatal(err)
	}
	if *base != *again {
		t.Fatalf("Measure not deterministic for fixed seed:\n%+v\n%+v", *base, *again)
	}
	for s := 0; s < tb.Underlay.NumSwitches(); s++ {
		if err := tb.Underlay.FailSwitch(s); err != nil {
			t.Fatal(err)
		}
		degraded, err := tb.Measure(dep, 41)
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.Underlay.RestoreSwitch(s); err != nil {
			t.Fatal(err)
		}
		if s == tb.Underlay.Servers[tb.HostServer[0]].Switch && *degraded == *base {
			// Not fatal for every switch (some may host no flows), but the
			// measurement under a failed switch should generally differ.
			t.Logf("switch %d failure left measurement unchanged", s)
		}
		restored, err := tb.Measure(dep, 41)
		if err != nil {
			t.Fatal(err)
		}
		if *restored != *base {
			t.Fatalf("switch %d fail/restore cycle not transparent:\n%+v\n%+v", s, *base, *restored)
		}
	}
}

func TestLinkFailureReroutes(t *testing.T) {
	u, err := NewUnderlay()
	if err != nil {
		t.Fatal(err)
	}
	links := u.Links()
	if len(links) != 7 {
		t.Fatalf("underlay has %d links, want 7", len(links))
	}
	for _, lk := range links {
		base := u.PathLatencyMs(lk[0], lk[1])
		if err := u.FailLink(lk[0], lk[1]); err != nil {
			t.Fatal(err)
		}
		if !u.LinkFailed(lk[0], lk[1]) {
			t.Fatalf("link %v not marked failed", lk)
		}
		// Every switch keeps degree >= 2, so a single link cut must
		// re-route, not disconnect — and the detour is strictly longer.
		rerouted := u.PathLatencyMs(lk[0], lk[1])
		if math.IsInf(rerouted, 1) {
			t.Fatalf("link %v cut disconnected its endpoints", lk)
		}
		if rerouted <= base {
			t.Fatalf("link %v detour latency %v not > direct %v", lk, rerouted, base)
		}
		if err := u.RestoreLink(lk[0], lk[1]); err != nil {
			t.Fatal(err)
		}
		if got := u.PathLatencyMs(lk[0], lk[1]); got != base {
			t.Fatalf("link %v restore did not recover latency: %v vs %v", lk, got, base)
		}
	}
	// Error paths: unknown link, double-fail, restore-healthy.
	if err := u.FailLink(0, 3); err == nil {
		t.Fatal("failing a nonexistent link succeeded")
	}
	if err := u.FailLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := u.FailLink(1, 0); err == nil {
		t.Fatal("double link failure succeeded")
	}
	if err := u.RestoreLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := u.RestoreLink(0, 1); err == nil {
		t.Fatal("restoring a healthy link succeeded")
	}
}
