package testbed

import (
	"fmt"
	"math"

	"mecache/internal/fault"
	"mecache/internal/mec"
	"mecache/internal/rng"
	"mecache/internal/sim"
)

// This file couples the fault injector into the test-bed's measurement
// phase: underlay switches and links fail and repair *during* a measurement
// run, transit re-routes around them (recomputePaths), and flows whose
// installed path is currently dead retry with capped exponential backoff
// instead of silently measuring a dead path. Consistency-update flows — the
// cached-to-original traffic the paper prices — are simulated here too, so
// their timeouts surface as violation counts.

// FaultConfig parameterizes mid-measurement fault injection. Times are in
// the measurement's virtual milliseconds.
type FaultConfig struct {
	// SwitchMTBFMs / SwitchMTTRMs drive whole-switch outages; zero MTBF
	// disables them.
	SwitchMTBFMs float64
	SwitchMTTRMs float64
	// LinkMTBFMs / LinkMTTRMs drive single-link cuts; zero MTBF disables
	// them.
	LinkMTBFMs float64
	LinkMTTRMs float64
	// WindowMs bounds the injection window: no new failure starts after it
	// (repairs still complete, so the underlay always heals).
	WindowMs float64
	// RetryBaseMs is the first retry backoff; each further retry doubles it
	// up to RetryCapMs. MaxRetries bounds the re-attempts per flow; a flow
	// that exhausts them is reported as a timeout.
	RetryBaseMs float64
	RetryCapMs  float64
	MaxRetries  int
	// Seed drives the failure processes (independent of the flow offsets'
	// seed, so the same workload can be replayed under different faults).
	Seed uint64
}

// DefaultFaultConfig returns an aggressive but bounded fault scenario:
// switches fail about once per 20 ms of virtual measurement time and repair
// in about 3 ms, with up to 6 retries backing off 0.5 -> 8 ms.
func DefaultFaultConfig(seed uint64) FaultConfig {
	return FaultConfig{
		SwitchMTBFMs: 20,
		SwitchMTTRMs: 3,
		LinkMTBFMs:   0,
		LinkMTTRMs:   3,
		WindowMs:     50,
		RetryBaseMs:  0.5,
		RetryCapMs:   8,
		MaxRetries:   6,
		Seed:         seed,
	}
}

// Validate rejects unusable fault scenarios.
func (fc FaultConfig) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"SwitchMTBFMs", fc.SwitchMTBFMs}, {"SwitchMTTRMs", fc.SwitchMTTRMs},
		{"LinkMTBFMs", fc.LinkMTBFMs}, {"LinkMTTRMs", fc.LinkMTTRMs},
		{"WindowMs", fc.WindowMs}, {"RetryBaseMs", fc.RetryBaseMs},
		{"RetryCapMs", fc.RetryCapMs},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("testbed: %s must be finite and non-negative, got %v", f.name, f.v)
		}
	}
	if fc.SwitchMTBFMs > 0 && fc.SwitchMTTRMs <= 0 {
		return fmt.Errorf("testbed: switch faults enabled but SwitchMTTRMs is %v", fc.SwitchMTTRMs)
	}
	if fc.LinkMTBFMs > 0 && fc.LinkMTTRMs <= 0 {
		return fmt.Errorf("testbed: link faults enabled but LinkMTTRMs is %v", fc.LinkMTTRMs)
	}
	if (fc.SwitchMTBFMs > 0 || fc.LinkMTBFMs > 0) && fc.WindowMs <= 0 {
		return fmt.Errorf("testbed: fault injection needs a positive WindowMs, got %v", fc.WindowMs)
	}
	if fc.MaxRetries < 0 {
		return fmt.Errorf("testbed: MaxRetries must be non-negative, got %d", fc.MaxRetries)
	}
	if fc.MaxRetries > 0 && fc.RetryBaseMs <= 0 {
		return fmt.Errorf("testbed: retries enabled but RetryBaseMs is %v", fc.RetryBaseMs)
	}
	return nil
}

// FaultMeasurement extends a Measurement with the fault and retry activity
// observed during the run.
type FaultMeasurement struct {
	Measurement
	// SwitchFailures/Repairs and LinkFailures/Repairs count underlay fault
	// events during the run; SwitchDowntimeMs totals switch-down time.
	SwitchFailures   int
	SwitchRepairs    int
	LinkFailures     int
	LinkRepairs      int
	SwitchDowntimeMs float64
	// Retries counts flow re-attempts after finding the installed path
	// dead. RequestTimeouts and UpdateTimeouts count flows that exhausted
	// their retries — the run's SLA violations.
	Retries         int
	RequestTimeouts int
	UpdateTimeouts  int
	// UpdatesDelivered counts consistency-update flows that completed.
	UpdatesDelivered int
}

// MeasureUnderFaults replays the deployment like Measure while the fault
// injector fails and repairs underlay switches and links mid-run. Flows
// that find their tunnel path dead retry with capped exponential backoff
// (re-routing picks up whatever the underlay currently offers); flows that
// exhaust their retries are reported as timeouts. The underlay is restored
// to full health before returning, so the Testbed can be reused.
func (tb *Testbed) MeasureUnderFaults(dep *Deployment, seed uint64, fc FaultConfig) (*FaultMeasurement, error) {
	if dep == nil {
		return nil, fmt.Errorf("testbed: nil deployment")
	}
	if err := fc.Validate(); err != nil {
		return nil, err
	}
	for s := range tb.Underlay.Switches {
		if tb.Underlay.Failed(s) {
			return nil, fmt.Errorf("testbed: fault measurement requires a healthy underlay (switch %d is down)", s)
		}
	}
	links := tb.Underlay.Links()
	for _, lk := range links {
		if tb.Underlay.LinkFailed(lk[0], lk[1]) {
			return nil, fmt.Errorf("testbed: fault measurement requires a healthy underlay (link %v is down)", lk)
		}
	}

	m := tb.Market
	r := rng.New(seed)
	kernel := sim.NewKernel()
	fm := &FaultMeasurement{}
	var runErr error
	fail := func(err error) {
		if runErr == nil {
			runErr = err
		}
	}

	// Fault processes draw from dedicated streams split off fc.Seed, so the
	// same workload (seed) can be replayed under different fault scenarios.
	fr := rng.New(fc.Seed ^ 0x7e57bedfa0175eed)
	var swInj *fault.Injector
	if fc.SwitchMTBFMs > 0 {
		inj, err := fault.NewInjector(kernel, fr.Split(), fc.WindowMs)
		if err != nil {
			return nil, err
		}
		inj.OnFail = func(s int) {
			fm.SwitchFailures++
			if err := tb.Underlay.FailSwitch(s); err != nil {
				fail(err)
			}
		}
		inj.OnRepair = func(s int) {
			fm.SwitchRepairs++
			if err := tb.Underlay.RestoreSwitch(s); err != nil {
				fail(err)
			}
		}
		if err := inj.Start(tb.Underlay.NumSwitches(), fc.SwitchMTBFMs, fc.SwitchMTTRMs); err != nil {
			return nil, err
		}
		swInj = inj
	}
	if fc.LinkMTBFMs > 0 {
		inj, err := fault.NewInjector(kernel, fr.Split(), fc.WindowMs)
		if err != nil {
			return nil, err
		}
		inj.OnFail = func(li int) {
			fm.LinkFailures++
			if err := tb.Underlay.FailLink(links[li][0], links[li][1]); err != nil {
				fail(err)
			}
		}
		inj.OnRepair = func(li int) {
			fm.LinkRepairs++
			if err := tb.Underlay.RestoreLink(links[li][0], links[li][1]); err != nil {
				fail(err)
			}
		}
		if err := inj.Start(len(links), fc.LinkMTBFMs, fc.LinkMTTRMs); err != nil {
			return nil, err
		}
	}

	// Static contention model, identical to Measure: link shares are read
	// off the healthy deployment (the installed tunnel routes), so retries
	// under faults compare like-for-like with the fault-free run.
	linkFlows := make(map[[2]int]int)
	flowLinks := make(map[int][][2]int, len(dep.Flows))
	for fi, f := range dep.Flows {
		var fls [][2]int
		for i := 0; i+1 < len(f.Path); i++ {
			sa := tb.Underlay.Servers[tb.HostServer[f.Path[i]]].Switch
			sb := tb.Underlay.Servers[tb.HostServer[f.Path[i+1]]].Switch
			fls = append(fls, tb.Underlay.PathLinks(sa, sb)...)
		}
		flowLinks[fi] = fls
		for _, lk := range fls {
			linkFlows[lk]++
		}
	}
	for _, n := range linkFlows {
		if n > fm.MaxLinkFlows {
			fm.MaxLinkFlows = n
		}
	}
	intra := tb.cfg.IntraServerGbps
	if intra <= 0 {
		intra = 10
	}
	chunk := tb.cfg.ChunkMB
	if chunk <= 0 {
		chunk = 1
	}
	transferMs := func(fi int) float64 {
		rate := intra
		for _, lk := range flowLinks[fi] {
			if n := linkFlows[lk]; n > 0 {
				if share := tb.Underlay.LinkCapacityGbps(lk[0], lk[1]) / float64(n); share < rate {
					rate = share
				}
			}
		}
		return chunk * 8 / 1000 / rate * 1000
	}

	var totalLatency, totalTransfer float64
	for fi, f := range dep.Flows {
		fi, f := fi, f
		start := r.FloatRange(0, 10)
		var attempt func(tries int, firstStart float64)
		attempt = func(tries int, firstStart float64) {
			lat := tb.pathLatencyMs(f.Path)
			if math.IsInf(lat, 1) {
				// The installed path crosses a dead switch or link right
				// now: back off and retry against whatever routes the
				// underlay offers then, or give up after MaxRetries.
				if tries >= fc.MaxRetries {
					if f.Kind == RequestFlow {
						fm.RequestTimeouts++
						fm.FlowsUnreachable++
					} else {
						fm.UpdateTimeouts++
					}
					return
				}
				fm.Retries++
				backoff := fc.RetryBaseMs * math.Pow(2, float64(tries))
				if backoff > fc.RetryCapMs {
					backoff = fc.RetryCapMs
				}
				if err := kernel.Schedule(backoff, func() { attempt(tries+1, firstStart) }); err != nil {
					fail(err)
				}
				return
			}
			transfer := transferMs(fi)
			lat += transfer
			if f.Kind == RequestFlow {
				lat += tb.cfg.ProcMsPerGB * f.VolumeGB / float64(m.Providers[f.Provider].Requests)
				if f.ServeCloudlet != mec.Remote {
					lat += tb.cfg.CongestionMsPerTenant * float64(dep.TenantCount[f.ServeCloudlet])
				} else {
					dc := &m.Net.DCs[m.Providers[f.Provider].HomeDC]
					lat += tb.cfg.BackhaulMsPerHop * float64(dc.BackhaulHops)
				}
			}
			done := kernel.Now() + lat
			err := kernel.At(done, func() {
				// End-to-end completion time, retry backoffs included.
				total := done - firstStart
				if f.Kind == RequestFlow {
					fm.FlowsCompleted++
					totalLatency += total
					totalTransfer += transfer
					if total > fm.MaxLatencyMs {
						fm.MaxLatencyMs = total
					}
				} else {
					fm.UpdatesDelivered++
				}
				if kernel.Now() > fm.VirtualDurationMs {
					fm.VirtualDurationMs = kernel.Now()
				}
			})
			if err != nil {
				fail(err)
			}
		}
		if err := kernel.At(start, func() { attempt(0, start) }); err != nil {
			return nil, err
		}
	}

	if err := kernel.Run(0); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	// Every injected failure schedules its own repair and the kernel ran
	// dry, so the underlay must be healthy again; verify rather than trust.
	for s := range tb.Underlay.Switches {
		if tb.Underlay.Failed(s) {
			return nil, fmt.Errorf("testbed: switch %d left failed after fault measurement", s)
		}
	}
	for _, lk := range links {
		if tb.Underlay.LinkFailed(lk[0], lk[1]) {
			return nil, fmt.Errorf("testbed: link %v left failed after fault measurement", lk)
		}
	}
	if swInj != nil {
		fm.SwitchDowntimeMs = swInj.Stats().Downtime
	}

	if fm.FlowsCompleted > 0 {
		fm.MeanLatencyMs = totalLatency / float64(fm.FlowsCompleted)
		fm.MeanTransferMs = totalTransfer / float64(fm.FlowsCompleted)
	}
	cost, err := tb.measuredCost(dep)
	if err != nil {
		return nil, err
	}
	fm.MeasuredSocialCost = cost
	return fm, nil
}
