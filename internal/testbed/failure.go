package testbed

import (
	"fmt"
	"math"

	"mecache/internal/graph"
)

// The paper's test-bed wires every switch to at least two others so "the
// network data can still be transmitted if one switch is down". This file
// implements that failure mode: switches can be failed and restored, transit
// re-routes around the failure, and servers attached to a failed switch are
// cut off.

// FailSwitch marks an underlay switch as down. All underlay paths are
// recomputed around it; servers attached to it lose connectivity (their
// tunnels report +Inf latency). Failing an already-failed switch is an
// error.
func (u *Underlay) FailSwitch(s int) error {
	if s < 0 || s >= len(u.Switches) {
		return fmt.Errorf("testbed: switch %d out of range [0,%d)", s, len(u.Switches))
	}
	if u.failed == nil {
		u.failed = make(map[int]bool)
	}
	if u.failed[s] {
		return fmt.Errorf("testbed: switch %d already failed", s)
	}
	u.failed[s] = true
	u.recomputePaths()
	return nil
}

// RestoreSwitch brings a failed switch back. Restoring a healthy switch is
// an error.
func (u *Underlay) RestoreSwitch(s int) error {
	if s < 0 || s >= len(u.Switches) {
		return fmt.Errorf("testbed: switch %d out of range [0,%d)", s, len(u.Switches))
	}
	if !u.failed[s] {
		return fmt.Errorf("testbed: switch %d is not failed", s)
	}
	delete(u.failed, s)
	u.recomputePaths()
	return nil
}

// Failed reports whether the switch is currently down.
func (u *Underlay) Failed(s int) bool { return u.failed[s] }

// checkLink validates that (a, b) names an existing underlay link.
func (u *Underlay) checkLink(a, b int) error {
	if a < 0 || a >= len(u.Switches) || b < 0 || b >= len(u.Switches) {
		return fmt.Errorf("testbed: link endpoints (%d,%d) out of range [0,%d)", a, b, len(u.Switches))
	}
	if _, ok := u.linkCap[linkKey(a, b)]; !ok {
		return fmt.Errorf("testbed: no underlay link between switches %d and %d", a, b)
	}
	return nil
}

// FailLink cuts one underlay link (a fiber cut rather than a whole-switch
// outage): transit re-routes around it, and endpoints stay reachable over
// surviving links. Failing an unknown or already-failed link is an error.
func (u *Underlay) FailLink(a, b int) error {
	if err := u.checkLink(a, b); err != nil {
		return err
	}
	if u.failedLinks == nil {
		u.failedLinks = make(map[[2]int]bool)
	}
	k := linkKey(a, b)
	if u.failedLinks[k] {
		return fmt.Errorf("testbed: link (%d,%d) already failed", a, b)
	}
	u.failedLinks[k] = true
	u.recomputePaths()
	return nil
}

// RestoreLink repairs a failed link. Restoring a healthy link is an error.
func (u *Underlay) RestoreLink(a, b int) error {
	if err := u.checkLink(a, b); err != nil {
		return err
	}
	k := linkKey(a, b)
	if !u.failedLinks[k] {
		return fmt.Errorf("testbed: link (%d,%d) is not failed", a, b)
	}
	delete(u.failedLinks, k)
	u.recomputePaths()
	return nil
}

// LinkFailed reports whether the underlay link is currently down.
func (u *Underlay) LinkFailed(a, b int) bool { return u.failedLinks[linkKey(a, b)] }

// Links returns every underlay link as a sorted endpoint pair, in a
// deterministic order (the injector indexes into this slice).
func (u *Underlay) Links() [][2]int {
	links := make([][2]int, 0, len(u.linkCap))
	for s := 0; s < u.g.N(); s++ {
		for _, e := range u.g.Neighbors(s) {
			if s < e.To {
				links = append(links, [2]int{s, e.To})
			}
		}
	}
	return links
}

// recomputePaths rebuilds the shortest-path trees over the surviving
// switches only.
func (u *Underlay) recomputePaths() {
	// Build the surviving subgraph. Failed switches keep their node IDs but
	// lose every incident link.
	sub := graph.New(len(u.Switches), false)
	for s := 0; s < u.g.N(); s++ {
		if u.failed[s] {
			continue
		}
		for _, e := range u.g.Neighbors(s) {
			if s < e.To && !u.failed[e.To] && !u.failedLinks[linkKey(s, e.To)] {
				// The original graph is valid, so re-adding edges cannot fail.
				_ = sub.AddEdge(s, e.To, e.Weight)
			}
		}
	}
	for s := range u.Switches {
		if u.failed[s] {
			// A failed switch reaches nothing, not even itself.
			u.paths[s] = unreachableFrom(s, len(u.Switches))
			continue
		}
		u.paths[s] = sub.Dijkstra(s)
		// Paths into failed switches must also read as unreachable even
		// though the subgraph technically contains the isolated node.
	}
}

// unreachableFrom builds a ShortestPaths result where everything is
// unreachable (used for failed sources).
func unreachableFrom(src, n int) graph.ShortestPaths {
	sp := graph.ShortestPaths{
		Source: src,
		Dist:   make([]float64, n),
		Prev:   make([]int, n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = math.Inf(1)
		sp.Prev[i] = -1
	}
	return sp
}

// SurvivesSingleSwitchFailure verifies the paper's resilience property:
// after failing any one switch, the remaining switches are still pairwise
// connected. The underlay is left in its original state.
func (u *Underlay) SurvivesSingleSwitchFailure() (bool, error) {
	for s := range u.Switches {
		if u.failed[s] {
			return false, fmt.Errorf("testbed: resilience check requires a healthy underlay")
		}
	}
	ok := true
	for s := range u.Switches {
		if err := u.FailSwitch(s); err != nil {
			return false, err
		}
		for a := range u.Switches {
			if a == s {
				continue
			}
			for b := range u.Switches {
				if b == s || b == a {
					continue
				}
				if math.IsInf(u.PathLatencyMs(a, b), 1) {
					ok = false
				}
			}
		}
		if err := u.RestoreSwitch(s); err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return ok, nil
}
