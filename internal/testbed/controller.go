package testbed

import (
	"fmt"
	"sort"
)

// FlowRule is one OpenFlow-style entry installed on an overlay OVS node:
// traffic of a provider's service matched at a node is forwarded toward the
// next overlay hop (or delivered locally when NextHop == -1).
type FlowRule struct {
	// Provider identifies the service's network service provider.
	Provider int
	// Kind distinguishes request traffic from consistency-update traffic.
	Kind FlowKind
	// NextHop is the next overlay node, or -1 for local delivery.
	NextHop int
}

// FlowKind labels the two traffic classes a cached service generates.
type FlowKind int

// Flow kinds.
const (
	// RequestFlow carries user request traffic to the serving instance.
	RequestFlow FlowKind = iota + 1
	// UpdateFlow carries consistency updates from a cached instance to the
	// original instance in its home data center.
	UpdateFlow
)

func (k FlowKind) String() string {
	switch k {
	case RequestFlow:
		return "request"
	case UpdateFlow:
		return "update"
	default:
		return fmt.Sprintf("FlowKind(%d)", int(k))
	}
}

// Controller emulates the SDN controller: it owns the per-node flow tables
// of the overlay and installs rules along overlay paths, as the paper's Ryu
// applications do.
type Controller struct {
	// tables[node] holds the rules installed at that overlay node.
	tables  [][]FlowRule
	install int // total rule installations (a proxy for controller load)
}

// NewController returns a controller managing n overlay nodes.
func NewController(n int) *Controller {
	return &Controller{tables: make([][]FlowRule, n)}
}

// InstallPath installs forwarding rules for a provider's flow along the
// overlay path (a node sequence). The final node receives a local-delivery
// rule. A single-node path installs just the delivery rule.
func (c *Controller) InstallPath(provider int, kind FlowKind, path []int) error {
	if len(path) == 0 {
		return fmt.Errorf("testbed: empty path for provider %d", provider)
	}
	for i, node := range path {
		if node < 0 || node >= len(c.tables) {
			return fmt.Errorf("testbed: path node %d out of range [0,%d)", node, len(c.tables))
		}
		next := -1
		if i+1 < len(path) {
			next = path[i+1]
		}
		c.tables[node] = append(c.tables[node], FlowRule{Provider: provider, Kind: kind, NextHop: next})
		c.install++
	}
	return nil
}

// RulesAt returns a copy of the flow table of an overlay node.
func (c *Controller) RulesAt(node int) []FlowRule {
	return append([]FlowRule(nil), c.tables[node]...)
}

// TotalRules returns the number of rule installations performed.
func (c *Controller) TotalRules() int { return c.install }

// TracePath follows the installed rules for (provider, kind) from src and
// returns the node sequence, verifying the rules form a loop-free path.
func (c *Controller) TracePath(provider int, kind FlowKind, src int) ([]int, error) {
	var path []int
	visited := make(map[int]bool)
	node := src
	for {
		if node < 0 || node >= len(c.tables) {
			return nil, fmt.Errorf("testbed: trace left the overlay at node %d", node)
		}
		if visited[node] {
			return nil, fmt.Errorf("testbed: forwarding loop at node %d for provider %d", node, provider)
		}
		visited[node] = true
		path = append(path, node)
		next := -2
		for _, r := range c.tables[node] {
			if r.Provider == provider && r.Kind == kind {
				next = r.NextHop
				break
			}
		}
		switch next {
		case -2:
			return nil, fmt.Errorf("testbed: no rule for provider %d (%v) at node %d", provider, kind, node)
		case -1:
			return path, nil
		default:
			node = next
		}
	}
}

// ProvidersAt lists the distinct providers with a local-delivery request
// rule at the node — i.e. the services served there. Sorted ascending.
func (c *Controller) ProvidersAt(node int) []int {
	seen := make(map[int]bool)
	for _, r := range c.tables[node] {
		if r.Kind == RequestFlow && r.NextHop == -1 {
			seen[r.Provider] = true
		}
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
