package testbed

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/baselines"
	"mecache/internal/core"
	"mecache/internal/mec"
)

func newBed(t *testing.T, seed uint64) *Testbed {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.Workload.NumProviders = 30
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestUnderlayShape(t *testing.T) {
	u, err := NewUnderlay()
	if err != nil {
		t.Fatal(err)
	}
	if u.NumSwitches() != 5 || len(u.Servers) != 5 {
		t.Fatalf("underlay has %d switches / %d servers, want 5/5", u.NumSwitches(), len(u.Servers))
	}
	// Resilience requirement: every switch connected to at least two others.
	for s := 0; s < u.NumSwitches(); s++ {
		deg := 0
		for o := 0; o < u.NumSwitches(); o++ {
			if o != s && u.PathLatencyMs(s, o) > 0 {
				if len(u.SwitchPath(s, o)) == 2 {
					deg++
				}
			}
		}
		if deg < 2 {
			t.Fatalf("switch %d has degree %d, want >= 2", s, deg)
		}
	}
	// Path latency is symmetric and satisfies identity.
	for a := 0; a < 5; a++ {
		if u.PathLatencyMs(a, a) != 0 {
			t.Fatalf("self latency of %d = %v", a, u.PathLatencyMs(a, a))
		}
		for b := 0; b < 5; b++ {
			if math.Abs(u.PathLatencyMs(a, b)-u.PathLatencyMs(b, a)) > 1e-12 {
				t.Fatalf("asymmetric latency between %d and %d", a, b)
			}
		}
	}
}

func TestNewDefaultsToAS1755(t *testing.T) {
	tb := newBed(t, 1)
	if tb.Overlay.N() != 87 {
		t.Fatalf("overlay size %d, want 87 (AS1755)", tb.Overlay.N())
	}
	if len(tb.HostServer) != 87 {
		t.Fatalf("host mapping covers %d nodes", len(tb.HostServer))
	}
	for v, s := range tb.HostServer {
		if s < 0 || s >= 5 {
			t.Fatalf("overlay node %d hosted on invalid server %d", v, s)
		}
	}
}

func TestGTITMOverlay(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.OverlaySize = 60
	cfg.Workload.NumProviders = 20
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Overlay.N() != 60 {
		t.Fatalf("overlay size %d, want 60", tb.Overlay.N())
	}
}

func TestDeployInstallsTraceablePaths(t *testing.T) {
	tb := newBed(t, 5)
	res, err := core.LCF(tb.Market, core.LCFOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := tb.Deploy(res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Controller.TotalRules() == 0 {
		t.Fatal("no flow rules installed")
	}
	// Every provider's request flow must be traceable from its attachment
	// node to its serving node via the installed rules.
	for l, s := range res.Placement {
		p := &tb.Market.Providers[l]
		path, err := dep.Controller.TracePath(l, RequestFlow, p.AttachNode)
		if err != nil {
			t.Fatalf("provider %d: %v", l, err)
		}
		var want int
		if s == mec.Remote {
			want = tb.Market.Net.DCs[p.HomeDC].Node
		} else {
			want = tb.Market.Net.Cloudlets[s].Node
		}
		if path[len(path)-1] != want {
			t.Fatalf("provider %d request flow ends at %d, want %d", l, path[len(path)-1], want)
		}
		// Path length must equal the market's hop count (pricing parity).
		if got, wantHops := len(path)-1, tb.Market.Net.Hops(p.AttachNode, want); got != wantHops {
			t.Fatalf("provider %d path has %d hops, market prices %d", l, got, wantHops)
		}
	}
}

func TestTenantCountsMatchPlacement(t *testing.T) {
	tb := newBed(t, 7)
	res, err := baselines.OffloadCache(tb.Market)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := tb.Deploy(res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	loads := tb.Market.Loads(res.Placement)
	for i, want := range loads {
		if dep.TenantCount[i] != want {
			t.Fatalf("cloudlet %d tenant count %d (from flow tables), placement says %d", i, dep.TenantCount[i], want)
		}
	}
}

// TestMeasuredCostEqualsModelCost is the test-bed's end-to-end contract:
// the cost recomputed from installed artifacts must equal the analytic
// social cost of the placement.
func TestMeasuredCostEqualsModelCost(t *testing.T) {
	tb := newBed(t, 11)
	for name, place := range map[string]func() (mec.Placement, error){
		"lcf": func() (mec.Placement, error) {
			r, err := core.LCF(tb.Market, core.LCFOptions{Xi: 0.7, Seed: 2})
			if err != nil {
				return nil, err
			}
			return r.Placement, nil
		},
		"jooffloadcache": func() (mec.Placement, error) {
			r, err := baselines.JoOffloadCache(tb.Market, 3)
			if err != nil {
				return nil, err
			}
			return r.Placement, nil
		},
		"offloadcache": func() (mec.Placement, error) {
			r, err := baselines.OffloadCache(tb.Market)
			if err != nil {
				return nil, err
			}
			return r.Placement, nil
		},
	} {
		pl, err := place()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dep, err := tb.Deploy(pl)
		if err != nil {
			t.Fatalf("%s deploy: %v", name, err)
		}
		meas, err := tb.Measure(dep, 1)
		if err != nil {
			t.Fatalf("%s measure: %v", name, err)
		}
		want := tb.Market.SocialCost(pl)
		if math.Abs(meas.MeasuredSocialCost-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("%s: measured cost %v != model cost %v", name, meas.MeasuredSocialCost, want)
		}
		if meas.FlowsCompleted != len(tb.Market.Providers) {
			t.Fatalf("%s: %d flows completed, want %d", name, meas.FlowsCompleted, len(tb.Market.Providers))
		}
		if meas.MeanLatencyMs <= 0 || meas.MaxLatencyMs < meas.MeanLatencyMs {
			t.Fatalf("%s: implausible latencies mean=%v max=%v", name, meas.MeanLatencyMs, meas.MaxLatencyMs)
		}
	}
}

// Property: measured cost parity holds across random seeds and placements.
func TestMeasuredCostParityProperty(t *testing.T) {
	check := func(seed uint64) bool {
		cfg := DefaultConfig(seed)
		cfg.Workload.NumProviders = 15
		tb, err := New(cfg)
		if err != nil {
			return false
		}
		res, err := core.LCF(tb.Market, core.LCFOptions{Xi: 0.5, Seed: seed})
		if err != nil {
			return false
		}
		dep, err := tb.Deploy(res.Placement)
		if err != nil {
			return false
		}
		meas, err := tb.Measure(dep, seed)
		if err != nil {
			return false
		}
		want := tb.Market.SocialCost(res.Placement)
		return math.Abs(meas.MeasuredSocialCost-want) <= 1e-6*math.Max(1, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestCachedTrafficLowerLatencyThanRemote(t *testing.T) {
	// Latency rationale of the paper's introduction: serving from a cloudlet
	// near users beats the remote DC. Compare everyone-remote vs LCF.
	tb := newBed(t, 13)
	n := len(tb.Market.Providers)
	remote := make(mec.Placement, n)
	for l := range remote {
		remote[l] = mec.Remote
	}
	depR, err := tb.Deploy(remote)
	if err != nil {
		t.Fatal(err)
	}
	measR, err := tb.Measure(depR, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.LCF(tb.Market, core.LCFOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	depL, err := tb.Deploy(res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	measL, err := tb.Measure(depL, 1)
	if err != nil {
		t.Fatal(err)
	}
	if measL.MeanLatencyMs >= measR.MeanLatencyMs {
		t.Fatalf("caching did not reduce mean latency: %v (LCF) vs %v (remote)", measL.MeanLatencyMs, measR.MeanLatencyMs)
	}
}

func TestControllerLoopDetection(t *testing.T) {
	// A path that revisits a node creates a forwarding cycle under
	// first-match semantics: 0 -> 1 -> 0, with the delivery rule at the
	// second visit of 0 shadowed by the earlier forward rule.
	c := NewController(3)
	if err := c.InstallPath(0, RequestFlow, []int{0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TracePath(0, RequestFlow, 0); err == nil {
		t.Fatal("forwarding loop not detected")
	}
}

func TestControllerFirstMatchWins(t *testing.T) {
	// Later conflicting installs are shadowed by earlier rules, mirroring
	// OpenFlow priority; the original path stays authoritative.
	c := NewController(3)
	if err := c.InstallPath(0, RequestFlow, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallPath(0, RequestFlow, []int{1, 0}); err != nil {
		t.Fatal(err)
	}
	path, err := c.TracePath(0, RequestFlow, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || path[0] != 0 || path[1] != 1 {
		t.Fatalf("trace = %v, want [0 1]", path)
	}
}

func TestControllerValidation(t *testing.T) {
	c := NewController(2)
	if err := c.InstallPath(0, RequestFlow, nil); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := c.InstallPath(0, RequestFlow, []int{5}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := c.TracePath(9, RequestFlow, 0); err == nil {
		t.Fatal("trace of unknown provider succeeded")
	}
}

func TestMeasureNilDeployment(t *testing.T) {
	tb := newBed(t, 1)
	if _, err := tb.Measure(nil, 1); err == nil {
		t.Fatal("nil deployment accepted")
	}
}

func BenchmarkDeployMeasure(b *testing.B) {
	cfg := DefaultConfig(1)
	cfg.Workload.NumProviders = 50
	tb, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.LCF(tb.Market, core.LCFOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dep, err := tb.Deploy(res.Placement)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tb.Measure(dep, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestContentionModel(t *testing.T) {
	tb := newBed(t, 17)
	res, err := core.LCF(tb.Market, core.LCFOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := tb.Deploy(res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := tb.Measure(dep, 1)
	if err != nil {
		t.Fatal(err)
	}
	if meas.MeanTransferMs <= 0 {
		t.Fatalf("mean transfer %v, want positive", meas.MeanTransferMs)
	}
	if meas.MaxLinkFlows <= 0 {
		t.Fatal("no link carried any flow despite cross-server traffic")
	}
	if meas.MeanTransferMs >= meas.MeanLatencyMs {
		t.Fatalf("transfer %v should be only part of total latency %v", meas.MeanTransferMs, meas.MeanLatencyMs)
	}
}

func TestContentionGrowsWithLoad(t *testing.T) {
	// More providers on the same substrate must raise the hotspot count
	// and (weakly) the mean transfer time.
	run := func(providers int) *Measurement {
		cfg := DefaultConfig(23)
		cfg.Workload.NumProviders = providers
		tb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := baselines.OffloadCache(tb.Market)
		if err != nil {
			t.Fatal(err)
		}
		dep, err := tb.Deploy(res.Placement)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := tb.Measure(dep, 1)
		if err != nil {
			t.Fatal(err)
		}
		return meas
	}
	light := run(10)
	heavy := run(80)
	if heavy.MaxLinkFlows <= light.MaxLinkFlows {
		t.Fatalf("hotspot did not grow: %d -> %d", light.MaxLinkFlows, heavy.MaxLinkFlows)
	}
}
