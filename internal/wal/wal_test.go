package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// openForTest opens a log with SyncAlways in dir.
func openForTest(t *testing.T, dir string, opt Options) *Log {
	t.Helper()
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// replayAll collects every payload.
func replayAll(t *testing.T, l *Log) ([]string, ReplayStats) {
	t.Helper()
	var got []string
	stats, err := l.Replay(func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openForTest(t, dir, Options{})
	var want []string
	for i := 0; i < 100; i++ {
		rec := fmt.Sprintf(`{"op":"admit","lsn":%d}`, i+1)
		if err := l.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openForTest(t, dir, Options{})
	got, stats := replayAll(t, l2)
	if stats.Truncated || stats.Records != 100 || stats.Segments != 1 {
		t.Fatalf("stats %+v, want 100 records in 1 segment, no truncation", stats)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %q != %q", i, got[i], want[i])
		}
	}
	// The replayed log keeps appending.
	if err := l2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3 := openForTest(t, dir, Options{})
	got, _ = replayAll(t, l3)
	if len(got) != 101 || got[100] != "after" {
		t.Fatalf("append-after-replay lost: %d records, last %q", len(got), got[len(got)-1])
	}
	l3.Close()
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := openForTest(t, dir, Options{SegmentBytes: 256})
	rec := strings.Repeat("x", 40)
	for i := 0; i < 30; i++ {
		if err := l.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	ents, _ := os.ReadDir(dir)
	if len(ents) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(ents))
	}
	l2 := openForTest(t, dir, Options{SegmentBytes: 256})
	got, stats := replayAll(t, l2)
	if len(got) != 30 {
		t.Fatalf("replayed %d records across segments, want 30", len(got))
	}
	if stats.Segments != len(ents) {
		t.Fatalf("replay visited %d segments, dir has %d", stats.Segments, len(ents))
	}
	l2.Close()
}

func TestResetCompacts(t *testing.T) {
	dir := t.TempDir()
	l := openForTest(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		if err := l.Append([]byte(strings.Repeat("y", 30))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("reset left %d segments, want 1", len(ents))
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2 := openForTest(t, dir, Options{})
	got, _ := replayAll(t, l2)
	if len(got) != 1 || got[0] != "fresh" {
		t.Fatalf("post-reset replay %v, want [fresh]", got)
	}
	l2.Close()
}

// lastSegment returns the path of the highest-sequence segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("no segments")
	}
	return filepath.Join(dir, ents[len(ents)-1].Name())
}

func writeRecords(t *testing.T, dir string, recs ...string) {
	t.Helper()
	l := openForTest(t, dir, Options{})
	for _, r := range recs {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	cases := []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"half frame header", func(t *testing.T, path string) {
			appendBytes(t, path, []byte{1, 2, 3})
		}},
		{"frame runs past eof", func(t *testing.T, path string) {
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], 500)
			binary.LittleEndian.PutUint32(hdr[4:8], 0xdead)
			appendBytes(t, path, append(hdr[:], []byte("short")...))
		}},
		{"implausible length", func(t *testing.T, path string) {
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
			appendBytes(t, path, hdr[:])
		}},
		{"crc mismatch on final frame", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0xff // flip a byte inside the last payload
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeRecords(t, dir, "a", "b", "c")
			tc.tear(t, lastSegment(t, dir))

			l := openForTest(t, dir, Options{})
			got, stats := replayAll(t, l)
			if !stats.Truncated {
				t.Fatalf("torn tail not reported: %+v", stats)
			}
			wantRecords := 3
			if tc.name == "crc mismatch on final frame" {
				wantRecords = 2 // the damaged record itself is cut
			}
			if len(got) != wantRecords {
				t.Fatalf("replayed %v, want %d clean records", got, wantRecords)
			}
			// The truncated log appends and replays cleanly afterwards.
			if err := l.Append([]byte("post")); err != nil {
				t.Fatal(err)
			}
			l.Close()
			l2 := openForTest(t, dir, Options{})
			got2, stats2 := replayAll(t, l2)
			if stats2.Truncated {
				t.Fatalf("second replay still truncating: %+v", stats2)
			}
			if len(got2) != wantRecords+1 || got2[len(got2)-1] != "post" {
				t.Fatalf("post-truncation records %v", got2)
			}
			l2.Close()
		})
	}
}

func TestInteriorCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	writeRecords(t, dir, "a", "bb", "ccc")
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the file: damages an interior record
	// while the final frame stays intact.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l := openForTest(t, dir, Options{})
	_, err = l.Replay(func([]byte) error { return nil })
	if err == nil {
		t.Fatal("interior corruption replayed without error")
	}
	l.Close()
}

func TestCorruptionBeforeLastSegmentFatal(t *testing.T) {
	dir := t.TempDir()
	l := openForTest(t, dir, Options{SegmentBytes: 96})
	for i := 0; i < 12; i++ {
		if err := l.Append([]byte(strings.Repeat("z", 20))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	ents, _ := os.ReadDir(dir)
	if len(ents) < 2 {
		t.Fatalf("need multiple segments, got %d", len(ents))
	}
	// Tear the tail of the FIRST segment: with later segments present this
	// must refuse to boot, not silently truncate.
	first := filepath.Join(dir, ents[0].Name())
	appendBytes(t, first, []byte{9, 9, 9})
	l2 := openForTest(t, dir, Options{})
	if _, err := l2.Replay(func([]byte) error { return nil }); err == nil {
		t.Fatal("corrupt interior segment replayed without error")
	}
	l2.Close()
}

func TestVersionMismatchFatal(t *testing.T) {
	dir := t.TempDir()
	writeRecords(t, dir, "a")
	path := lastSegment(t, dir)
	// Rewrite the segment with a future-version header and one record.
	hdr, _ := json.Marshal(segHeader{Version: Version + 1, Segment: 1})
	var buf []byte
	buf = appendFrame(buf, hdr)
	buf = appendFrame(buf, []byte("a"))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	l := openForTest(t, dir, Options{})
	_, err := l.Replay(func([]byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not fatal: %v", err)
	}
	l.Close()
}

func TestEmptyTailSegmentRecovers(t *testing.T) {
	dir := t.TempDir()
	writeRecords(t, dir, "a", "b")
	// Simulate a crash between segment creation and the header write.
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%016d.wal", uint64(2))), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l := openForTest(t, dir, Options{})
	got, _ := replayAll(t, l)
	if len(got) != 2 {
		t.Fatalf("replayed %v, want the 2 records before the empty segment", got)
	}
	if err := l.Append([]byte("c")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2 := openForTest(t, dir, Options{})
	got, _ = replayAll(t, l2)
	if len(got) != 3 {
		t.Fatalf("after re-stamped header: %v", got)
	}
	l2.Close()
}

func TestSyncErrorInjection(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("disk on fire")
	fail := false
	l, err := Open(dir, Options{SyncFile: func(f *os.File) error {
		if fail {
			return boom
		}
		return f.Sync()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	fail = true
	if err := l.Append([]byte("lost")); !errors.Is(err, boom) {
		t.Fatalf("append with failing fsync returned %v, want the injected error", err)
	}
	// The frame bytes may already be on disk, so the log is poisoned: the
	// durable history can no longer be trusted to match acknowledgements.
	fail = false
	if err := l.Append([]byte("again")); !errors.Is(err, boom) {
		t.Fatalf("poisoned log accepted an append: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, boom) {
		t.Fatalf("poisoned log accepted a sync: %v", err)
	}
	l.Close()

	// A fresh process recovers: the unacknowledged record is on disk and
	// replays (a crash leaves the same ambiguity for in-flight commands).
	l2 := openForTest(t, dir, Options{})
	got, _ := replayAll(t, l2)
	if len(got) != 2 || got[0] != "ok" || got[1] != "lost" {
		t.Fatalf("post-poison recovery replayed %v", got)
	}
	l2.Close()
}

func TestSyncPolicies(t *testing.T) {
	t.Run("interval batches fsyncs", func(t *testing.T) {
		syncs := 0
		l, err := Open(t.TempDir(), Options{
			Policy:    SyncInterval,
			SyncEvery: time.Hour,
			SyncFile:  func(f *os.File) error { syncs++; return f.Sync() },
		})
		if err != nil {
			t.Fatal(err)
		}
		base := syncs // header write syncs once
		for i := 0; i < 50; i++ {
			if err := l.Append([]byte("r")); err != nil {
				t.Fatal(err)
			}
		}
		if syncs-base > 1 {
			t.Fatalf("interval policy fsynced %d times for 50 appends", syncs-base)
		}
		l.Close()
		if syncs == base {
			t.Fatal("close never flushed")
		}
	})
	t.Run("off never syncs after header", func(t *testing.T) {
		syncs := 0
		l, err := Open(t.TempDir(), Options{
			Policy:   SyncOff,
			SyncFile: func(f *os.File) error { syncs++; return f.Sync() },
		})
		if err != nil {
			t.Fatal(err)
		}
		base := syncs
		for i := 0; i < 20; i++ {
			if err := l.Append([]byte("r")); err != nil {
				t.Fatal(err)
			}
		}
		if syncs != base {
			t.Fatalf("off policy fsynced %d times on append", syncs-base)
		}
		l.Close()
	})
	t.Run("always syncs every append", func(t *testing.T) {
		syncs := 0
		l, err := Open(t.TempDir(), Options{
			SyncFile: func(f *os.File) error { syncs++; return f.Sync() },
		})
		if err != nil {
			t.Fatal(err)
		}
		base := syncs
		for i := 0; i < 7; i++ {
			if err := l.Append([]byte("r")); err != nil {
				t.Fatal(err)
			}
		}
		if syncs-base != 7 {
			t.Fatalf("always policy fsynced %d times for 7 appends", syncs-base)
		}
		l.Close()
	})
}

func TestMetricsHooks(t *testing.T) {
	appends, syncs := 0, 0
	l, err := Open(t.TempDir(), Options{
		OnAppend: func(s float64) {
			appends++
			if s < 0 {
				t.Errorf("negative append duration %v", s)
			}
		},
		OnSync: func(s float64) { syncs++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	if appends != 5 {
		t.Fatalf("OnAppend fired %d times, want 5", appends)
	}
	if syncs < 5 {
		t.Fatalf("OnSync fired %d times, want >=5 under SyncAlways", syncs)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := Open(t.TempDir(), Options{Policy: SyncInterval}); err == nil {
		t.Fatal("interval policy without SyncEvery accepted")
	}
	if _, err := Open(t.TempDir(), Options{SegmentBytes: -1}); err == nil {
		t.Fatal("negative SegmentBytes accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "stray.wal"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("stray non-numeric .wal file accepted")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "Interval": SyncInterval, " off ": SyncOff} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if SyncAlways.String() != "always" || SyncInterval.String() != "interval" || SyncOff.String() != "off" {
		t.Fatal("policy String() spelling drifted from the flag spelling")
	}
}

func TestAppendBeforeReplayRejected(t *testing.T) {
	dir := t.TempDir()
	writeRecords(t, dir, "a")
	l := openForTest(t, dir, Options{})
	if err := l.Append([]byte("b")); err == nil {
		t.Fatal("append before replay on a non-empty log accepted")
	}
	replayAll(t, l)
	if err := l.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	l.Close()
}

// appendBytes tacks raw bytes onto a file, simulating a torn write.
func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// appendFrame frames a payload the same way the log does.
func appendFrame(buf, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// TestSegmentVisibilityAccessors pins the gauges' data source: the segment
// count follows rotation and Reset, and the active-segment byte count
// grows with appends and collapses when a new segment starts.
func TestSegmentVisibilityAccessors(t *testing.T) {
	dir := t.TempDir()
	l := openForTest(t, dir, Options{SegmentBytes: 256})
	if got := l.SegmentCount(); got != 1 {
		t.Fatalf("fresh log reports %d segments, want 1", got)
	}
	// A fresh segment is not empty: it starts with the version header frame.
	base := l.ActiveSegmentBytes()
	if base <= 0 {
		t.Fatalf("fresh log reports %d active bytes, want the header frame", base)
	}

	if err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if got := l.ActiveSegmentBytes(); got <= base {
		t.Fatalf("active bytes %d after one append, want above the %d-byte header", got, base)
	}

	rec := strings.Repeat("x", 40)
	for i := 0; i < 30; i++ {
		if err := l.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	ents, _ := os.ReadDir(dir)
	if got := l.SegmentCount(); got != len(ents) {
		t.Fatalf("SegmentCount %d, dir holds %d segments", got, len(ents))
	}
	if got := l.SegmentCount(); got < 3 {
		t.Fatalf("rotation left only %d segments under a 256-byte cap", got)
	}
	// Rotation happens when the active segment exceeds the cap, so the
	// current one is always below cap plus one record's framing.
	if got := l.ActiveSegmentBytes(); got > 256+int64(len(rec))+frameHeaderSize {
		t.Fatalf("active segment %d bytes never rotated (cap 256)", got)
	}

	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := l.SegmentCount(); got != 1 {
		t.Fatalf("reset left SegmentCount at %d, want 1", got)
	}
	if got := l.ActiveSegmentBytes(); got != base {
		t.Fatalf("reset left %d active bytes, want the bare header (%d)", got, base)
	}
	l.Close()

	// Reopening an existing multi-segment dir counts what is on disk.
	l2 := openForTest(t, dir, Options{SegmentBytes: 256})
	replayAll(t, l2)
	for i := 0; i < 30; i++ {
		if err := l2.Append([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	want := l2.SegmentCount()
	l2.Close()
	l3 := openForTest(t, dir, Options{SegmentBytes: 256})
	replayAll(t, l3)
	if got := l3.SegmentCount(); got != want {
		t.Fatalf("reopened SegmentCount %d, want %d", got, want)
	}
	l3.Close()
}
