// Package wal is an append-only write-ahead log of opaque records. The
// daemon logs every mutating command before applying it; after a crash,
// replaying the log through the same command functions rebuilds state that
// is byte-identical to a never-crashed run, because placements are a
// deterministic function of command order.
//
// On-disk layout: a directory of segment files named <seq>.wal (seq is a
// zero-padded decimal, strictly increasing, never reused). Each segment
// starts with a header frame carrying the format version; every frame is
//
//	[4-byte little-endian payload length][4-byte CRC32-IEEE of payload][payload]
//
// Torn writes are expected: a crash can leave a half-written frame at the
// tail of the *last* segment. Replay truncates such a tail (the record was
// never acknowledged under SyncAlways) and the log continues from the cut.
// A bad frame anywhere *else* — an interior segment, or followed by valid
// frames — cannot be explained by a torn write and is a hard error.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Version guards the frame format. A segment header carrying a different
// version is a hard error: silently replaying records under the wrong
// framing would corrupt state.
const Version = 1

// frameHeaderSize is the per-record overhead: u32 length + u32 CRC.
const frameHeaderSize = 8

// maxRecordBytes bounds a single payload. A length prefix beyond it is
// treated as corruption rather than an allocation request.
const maxRecordBytes = 16 << 20

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 64 << 20

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives power loss. This is the default and the only policy under
	// which recovery is lossless.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs lazily, at most once per Options.SyncEvery
	// (checked on append). Bounded loss: records appended since the last
	// sync can vanish in a crash.
	SyncInterval
	// SyncOff never fsyncs explicitly; the OS flushes when it pleases.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the flag spellings to policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval, or off)", s)
}

// Options parameterizes a Log.
type Options struct {
	// Policy selects the fsync discipline; zero value is SyncAlways.
	Policy SyncPolicy
	// SyncEvery is the minimum spacing between fsyncs under SyncInterval.
	SyncEvery time.Duration
	// SegmentBytes rotates to a fresh segment once the current one would
	// exceed this size; 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// SyncFile performs the fsync; nil means (*os.File).Sync. Tests inject
	// failures here.
	SyncFile func(*os.File) error
	// OnAppend and OnSync observe the wall-clock seconds of each append
	// write and each fsync (for latency histograms); nil ignores.
	OnAppend func(seconds float64)
	OnSync   func(seconds float64)
}

// ReplayStats summarizes a recovery pass.
type ReplayStats struct {
	// Records is how many payloads were handed to the replay function.
	Records int
	// Segments is how many segment files were read.
	Segments int
	// Truncated reports that a torn tail was cut from the last segment.
	Truncated bool
	// TornBytes is how many trailing bytes the truncation discarded.
	TornBytes int64
}

// segHeader is the first frame of every segment.
type segHeader struct {
	Version int    `json:"version"`
	Segment uint64 `json:"segment"`
}

// Log is an append-only write-ahead log over a directory of segments.
// Append/Sync/Reset/Close are safe for concurrent use; Replay must happen
// before the first Append (Open leaves the cursor at the end of the last
// segment only after Replay has validated and possibly truncated it).
type Log struct {
	dir string
	opt Options

	mu       sync.Mutex
	f        *os.File
	seq      uint64 // current segment sequence number
	size     int64  // current segment size in bytes
	segs     int    // segment files on disk (rotation grows it, Reset collapses it)
	lastSync time.Time
	dirty    bool // bytes written since the last fsync
	replayed bool
	closed   bool
	// failed poisons the log after a write or fsync error: the frame may
	// already be partially on disk, so continuing to append would let the
	// durable history diverge from the acknowledged one. Every later call
	// returns this error; the process must restart (and recover) to
	// resume logging.
	failed error
}

// Open creates dir if needed and positions the log on its last segment
// (creating segment 1 for an empty directory). Call Replay before the
// first Append: it validates existing segments and truncates a torn tail.
func Open(dir string, opt Options) (*Log, error) {
	if dir == "" {
		return nil, errors.New("wal: empty directory")
	}
	if opt.Policy == SyncInterval && opt.SyncEvery <= 0 {
		return nil, fmt.Errorf("wal: SyncInterval needs a positive SyncEvery, got %v", opt.SyncEvery)
	}
	if opt.SegmentBytes == 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if opt.SegmentBytes < 0 {
		return nil, fmt.Errorf("wal: negative SegmentBytes %d", opt.SegmentBytes)
	}
	if opt.SyncFile == nil {
		opt.SyncFile = (*os.File).Sync
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	// Prove the directory is writable now, while failing is still cheap: a
	// log that opens fine but cannot append would poison itself on the
	// first mutating command instead of at startup. Multi-tenant daemons
	// open one log per tenant directory, so the probe also catches a
	// tenant subdirectory that exists but is unusable.
	probe, err := os.CreateTemp(dir, ".wal-probe-*")
	if err != nil {
		return nil, fmt.Errorf("wal: dir %s not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	l := &Log{dir: dir, opt: opt}
	seqs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		if err := l.openSegment(1, true); err != nil {
			return nil, err
		}
		l.segs = 1
		l.replayed = true // nothing to replay
		return l, nil
	}
	// Existing segments: open the last for append. Its tail is validated
	// (and possibly truncated) by Replay.
	if err := l.openSegment(seqs[len(seqs)-1], false); err != nil {
		return nil, err
	}
	l.segs = len(seqs)
	return l, nil
}

// segments lists the segment sequence numbers in ascending order.
func (l *Log) segments() ([]uint64, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var seqs []uint64
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: stray file %s in log directory", name)
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func (l *Log) segPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%016d.wal", seq))
}

// openSegment points the log at segment seq, writing the header frame when
// create is set. Caller holds the lock (or is the constructor).
func (l *Log) openSegment(seq uint64, create bool) error {
	flags := os.O_RDWR | os.O_APPEND
	if create {
		flags |= os.O_CREATE | os.O_EXCL
	}
	f, err := os.OpenFile(l.segPath(seq), flags, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment %d: %w", seq, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat segment %d: %w", seq, err)
	}
	l.f, l.seq, l.size = f, seq, st.Size()
	if create {
		hdr, err := json.Marshal(segHeader{Version: Version, Segment: seq})
		if err != nil {
			return err
		}
		if err := l.writeFrame(hdr); err != nil {
			return err
		}
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	return nil
}

// writeFrame appends one framed payload to the current segment. Caller
// holds the lock.
func (l *Log) writeFrame(payload []byte) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte frame cap", len(payload), maxRecordBytes)
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderSize:], payload)
	if _, err := l.f.Write(buf); err != nil {
		l.failed = fmt.Errorf("wal: append: %w", err)
		return l.failed
	}
	l.size += int64(len(buf))
	l.dirty = true
	return nil
}

// Append frames payload, writes it to the current segment (rotating first
// if the segment is full), and fsyncs per the policy. When Append returns
// nil under SyncAlways, the record is on stable storage.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: append to closed log")
	}
	if l.failed != nil {
		return l.failed
	}
	if !l.replayed {
		return errors.New("wal: Append before Replay on a non-empty log")
	}
	need := int64(frameHeaderSize + len(payload))
	if l.size > 0 && l.size+need > l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	start := time.Now()
	if err := l.writeFrame(payload); err != nil {
		return err
	}
	if l.opt.OnAppend != nil {
		l.opt.OnAppend(time.Since(start).Seconds())
	}
	switch l.opt.Policy {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opt.SyncEvery {
			return l.syncLocked()
		}
	}
	return nil
}

// rotateLocked seals the current segment (final fsync) and starts the next.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment %d: %w", l.seq, err)
	}
	if err := l.openSegment(l.seq+1, true); err != nil {
		return err
	}
	l.segs++
	return nil
}

// Sync forces the current segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: sync on closed log")
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.failed != nil {
		return l.failed
	}
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.opt.SyncFile(l.f); err != nil {
		l.failed = fmt.Errorf("wal: fsync segment %d: %w", l.seq, err)
		return l.failed
	}
	if l.opt.OnSync != nil {
		l.opt.OnSync(time.Since(start).Seconds())
	}
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Reset compacts the log after a snapshot has captured all appended state:
// it seals the current segment, starts a fresh one (sequence numbers keep
// increasing, never reused), and deletes every older segment. If the
// process dies between the caller's snapshot and Reset, replay skips the
// already-snapshotted records by LSN, so compaction is crash-safe at any
// point.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: reset on closed log")
	}
	old := l.seq
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment %d: %w", old, err)
	}
	if err := l.openSegment(old+1, true); err != nil {
		return err
	}
	seqs, err := l.segments()
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq <= old {
			if err := os.Remove(l.segPath(seq)); err != nil {
				return fmt.Errorf("wal: remove compacted segment %d: %w", seq, err)
			}
		}
	}
	l.segs = 1
	return nil
}

// SegmentCount returns how many segment files the log currently spans —
// the active segment plus every sealed one not yet compacted away.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs
}

// ActiveSegmentBytes returns the byte size of the segment currently being
// appended to (header frame included). Together with SegmentCount it makes
// rotation and compaction visible to metrics without listing the directory.
func (l *Log) ActiveSegmentBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close fsyncs outstanding bytes and closes the current segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Replay streams every record payload, oldest first, through fn. It must
// run before the first Append. A torn tail on the last segment — short
// frame, bad CRC, or oversized length at the very end — is truncated and
// reported in the stats; the same damage anywhere else is a hard error, as
// is an fn error (which aborts the replay).
func (l *Log) Replay(fn func(payload []byte) error) (ReplayStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var stats ReplayStats
	if l.closed {
		return stats, errors.New("wal: replay on closed log")
	}
	if l.replayed {
		return stats, nil // fresh log, nothing recorded yet
	}
	seqs, err := l.segments()
	if err != nil {
		return stats, err
	}
	for i, seq := range seqs {
		last := i == len(seqs)-1
		if err := l.replaySegment(seq, last, fn, &stats); err != nil {
			return stats, err
		}
		stats.Segments++
	}
	// Re-stat: a truncation changed the tail segment's size.
	st, err := l.f.Stat()
	if err != nil {
		return stats, fmt.Errorf("wal: stat after replay: %w", err)
	}
	l.size = st.Size()
	l.replayed = true
	return stats, nil
}

// replaySegment reads one segment. Caller holds the lock. A torn tail is
// truncated (last segment only); if the cut removes the segment's own
// header frame, a fresh header is appended so the segment stays parseable
// by the next recovery.
func (l *Log) replaySegment(seq uint64, last bool, fn func([]byte) error, stats *ReplayStats) error {
	path := l.segPath(seq)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: open segment %d: %w", seq, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat segment %d: %w", seq, err)
	}
	total := fi.Size()

	headerSeen := false
	// truncate cuts the torn tail at off. Only legal on the last segment:
	// anywhere else the damage cannot be a torn final write.
	truncate := func(off int64, cause string) error {
		if !last {
			return fmt.Errorf("wal: segment %d corrupt at offset %d (%s) with later segments present", seq, off, cause)
		}
		if err := os.Truncate(path, off); err != nil {
			return fmt.Errorf("wal: truncate torn tail of segment %d: %w", seq, err)
		}
		stats.Truncated = true
		stats.TornBytes += total - off
		if !headerSeen {
			// The cut removed the header (a crash during segment creation):
			// re-stamp it so the segment parses next time.
			hdr, err := json.Marshal(segHeader{Version: Version, Segment: seq})
			if err != nil {
				return err
			}
			if err := l.writeFrame(hdr); err != nil {
				return err
			}
			l.dirty = true
			return l.syncLocked()
		}
		return nil
	}

	var off int64
	hdr := make([]byte, frameHeaderSize)
	for off < total {
		if total-off < frameHeaderSize {
			return truncate(off, "short frame header")
		}
		if _, err := io.ReadFull(f, hdr); err != nil {
			return fmt.Errorf("wal: read segment %d at %d: %w", seq, off, err)
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecordBytes {
			return truncate(off, "implausible frame length")
		}
		if off+frameHeaderSize+n > total {
			return truncate(off, "frame runs past end of segment")
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return fmt.Errorf("wal: read segment %d payload at %d: %w", seq, off, err)
		}
		if crc32.ChecksumIEEE(payload) != want {
			// A CRC mismatch on the final frame is a torn write; earlier it
			// means silent corruption we must not replay past.
			if off+frameHeaderSize+n == total {
				return truncate(off, "crc mismatch on final frame")
			}
			return fmt.Errorf("wal: segment %d record at offset %d fails its CRC with later records intact", seq, off)
		}
		if !headerSeen {
			headerSeen = true
			var h segHeader
			if err := json.Unmarshal(payload, &h); err != nil {
				return fmt.Errorf("wal: segment %d header: %w", seq, err)
			}
			if h.Version != Version {
				return fmt.Errorf("wal: segment %d has format version %d, this binary reads %d", seq, h.Version, Version)
			}
		} else {
			if err := fn(payload); err != nil {
				return fmt.Errorf("wal: replay segment %d record at offset %d: %w", seq, off, err)
			}
			stats.Records++
		}
		off += frameHeaderSize + n
	}
	if total == 0 && last {
		// An empty last segment: the crash hit between file creation and
		// the header write. Stamp the header so the segment is valid.
		return truncate(0, "empty segment")
	}
	if total == 0 {
		return fmt.Errorf("wal: interior segment %d is empty", seq)
	}
	return nil
}
