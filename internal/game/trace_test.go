package game

import (
	"testing"

	"mecache/internal/obs"
	"mecache/internal/rng"
)

// TestBestResponseNoTraceZeroAllocs pins the acceptance criterion of the
// observability layer: with tracing disabled (nil Tracer) the best-response
// hot path allocates nothing — the disabled path costs exactly one branch.
func TestBestResponseNoTraceZeroAllocs(t *testing.T) {
	m := smallMarket(t, 8)
	g := New(m)
	pl := allRemote(m)
	rl := g.newLoads(pl)
	allocs := testing.AllocsPerRun(100, func() {
		g.bestResponseLoads(rl, pl, 3)
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer best response allocates %v times per run, want 0", allocs)
	}
}

// TestTracingDoesNotChangeDynamics pins determinism: the same seed reaches
// the same placement with tracing on and off, and the traced run records
// choice, move, round, and convergence events consistent with the result.
func TestTracingDoesNotChangeDynamics(t *testing.T) {
	m := smallMarket(t, 8)
	run := func(tr obs.Tracer) DynamicsResult {
		g := New(m)
		g.Trace = tr
		res, err := g.BestResponseDynamics(allRemote(m), rng.New(42), 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	rec := obs.NewRecorder(0)
	traced := run(rec)
	for l := range plain.Placement {
		if plain.Placement[l] != traced.Placement[l] {
			t.Fatalf("provider %d: untraced %d != traced %d", l, plain.Placement[l], traced.Placement[l])
		}
	}
	if plain.Rounds != traced.Rounds || plain.Moves != traced.Moves {
		t.Fatalf("traced run diverged: %+v vs %+v", plain, traced)
	}

	moves, rounds, converged := 0, 0, false
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.KindMove:
			moves++
		case obs.KindRound:
			rounds++
		case obs.KindPhase:
			converged = true
		case obs.KindChoice:
			// Every choice's breakdown must reproduce its compared total
			// bit-for-bit (the Eq. 3 decomposition invariant).
			if e.Cost.Total() != e.Total {
				t.Fatalf("choice breakdown sums to %v, total is %v", e.Cost.Total(), e.Total)
			}
		}
	}
	if moves != traced.Moves {
		t.Fatalf("recorded %d move events, dynamics applied %d moves", moves, traced.Moves)
	}
	if rounds != traced.Rounds {
		t.Fatalf("recorded %d round events, dynamics ran %d rounds", rounds, traced.Rounds)
	}
	if !converged {
		t.Fatal("no convergence phase event recorded")
	}
	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d events on a small market", rec.Dropped())
	}
}

// BenchmarkBestResponseNoTrace measures the nil-tracer hot path; run with
// -benchmem to confirm 0 allocs/op.
func BenchmarkBestResponseNoTrace(b *testing.B) {
	m := smallMarket(b, 32)
	g := New(m)
	pl := allRemote(m)
	rl := g.newLoads(pl)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		g.bestResponseLoads(rl, pl, n%len(pl))
	}
}

// BenchmarkBestResponseRecorded is the traced counterpart: the same scan
// feeding a pre-sized Recorder, to show the enabled-path overhead.
func BenchmarkBestResponseRecorded(b *testing.B) {
	m := smallMarket(b, 32)
	g := New(m)
	rec := obs.NewRecorder(obs.DefaultEventLimit)
	g.Trace = rec
	pl := allRemote(m)
	rl := g.newLoads(pl)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if len(rec.Events()) >= obs.DefaultEventLimit {
			b.StopTimer()
			*rec = *obs.NewRecorder(obs.DefaultEventLimit)
			b.StartTimer()
		}
		g.bestResponseLoads(rl, pl, n%len(pl))
	}
}
