package game

import (
	"math"
	"runtime"
	"testing"

	"mecache/internal/graph"
	"mecache/internal/mec"
	"mecache/internal/rng"
	"mecache/internal/topology"
)

// clusteredMarket builds a market whose reachability graph genuinely
// fragments: k clusters hang off a central DC node through a relay node, so
// a provider's own-cluster cloudlets are cheaper than staying remote while
// every cross-cluster cloudlet is priced out by per-hop transmission. Each
// cluster is then one shard component.
//
// Topology per cluster c: center(0) — x_c — a_c — b_c, cloudlets at a_c and
// b_c, providers attached at a_c or b_c. Own-cluster base cost <= 1.0+,
// remote ~1.4-1.6, cross-cluster base >= 2.4.
func clusteredMarket(t testing.TB, clusters, n int, seed uint64) *mec.Market {
	t.Helper()
	nodes := 1 + 3*clusters
	g := graph.New(nodes, false)
	var cls []mec.Cloudlet
	for c := 0; c < clusters; c++ {
		x, a, b := 1+3*c, 2+3*c, 3+3*c
		for _, e := range [][2]int{{0, x}, {x, a}, {a, b}} {
			if err := g.AddEdge(e[0], e[1], 1); err != nil {
				t.Fatal(err)
			}
		}
		for _, node := range []int{a, b} {
			cls = append(cls, mec.Cloudlet{
				Node: node, NumVMs: 20, ComputeCap: 50, BandwidthCap: 500,
				Alpha: 0.05, Beta: 0.05,
				FixedBandwidthCost: 0.1, ProcPricePerGB: 0.1, TransPricePerGBHop: 0.5,
			})
		}
	}
	top := &topology.Topology{Name: "clusters", Graph: g, Pos: make([]topology.Point, nodes)}
	net, err := mec.NewNetwork(top, cls,
		[]mec.DataCenter{{Node: 0, ProcPricePerGB: 1.0, TransPricePerGBHop: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	providers := make([]mec.Provider, n)
	for l := range providers {
		c := r.Intn(clusters)
		attach := 2 + 3*c // a_c
		if r.Bool(0.5) {
			attach = 3 + 3*c // b_c
		}
		providers[l] = mec.Provider{
			Requests:        10,
			ComputePerReq:   r.FloatRange(0.01, 0.05),
			BandwidthPerReq: r.FloatRange(0.5, 1.5),
			InstCost:        r.FloatRange(0.15, 0.25),
			TrafficGBPerReq: 0.1,
			DataGB:          r.FloatRange(1, 3),
			UpdateRatio:     0,
			HomeDC:          0,
			AttachNode:      attach,
		}
	}
	m, err := mec.NewMarket(net, providers)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestShardComponentsClustered pins that the clustered topology actually
// fragments into one component per cluster — the precondition that makes
// the remaining sharded tests exercise the parallel path at all.
func TestShardComponentsClustered(t *testing.T) {
	const clusters = 4
	m := clusteredMarket(t, clusters, 32, 5)
	g := New(m)
	pl := allRemote(m)
	free := make([]int, len(pl))
	for l := range free {
		free[l] = l
	}
	comps := g.shardComponents(pl, free)
	if len(comps) != clusters {
		t.Fatalf("got %d components, want %d (reach sets overlap?)", len(comps), clusters)
	}
	covered := 0
	for _, c := range comps {
		covered += len(c)
	}
	if covered != len(pl) {
		t.Fatalf("components cover %d of %d providers", covered, len(pl))
	}
}

// TestShardedClusteredDynamics is the tentpole byte-identity check at the
// game level: serial vs sharded dynamics at several worker widths, on a
// market that genuinely fragments, across congestion models and pinned
// subsets — placements, costs, trajectories, and the caller rng stream must
// all be bit-identical.
func TestShardedClusteredDynamics(t *testing.T) {
	models := []struct {
		name string
		cm   mec.CongestionModel
	}{
		{"linear", nil},
		{"poly", mec.PolynomialCongestion{Degree: 1.5}},
		{"exp", mec.ExponentialCongestion{Base: 1.08}},
	}
	for _, mod := range models {
		for _, pinned := range []bool{false, true} {
			for seed := uint64(1); seed <= 3; seed++ {
				m := clusteredMarket(t, 4, 36, seed*7+1)
				if mod.cm != nil {
					if err := m.SetCongestionModel(mod.cm); err != nil {
						t.Fatal(err)
					}
				}
				run := func(workers int) (mec.Placement, float64, DynamicsResult, uint64) {
					g := New(m)
					g.Workers = workers
					init := allRemote(m)
					if pinned {
						for l := 0; l < len(init); l += 5 {
							g.Pinned[l] = true
							init[l] = int(seed+uint64(l)) % m.Net.NumCloudlets()
						}
					}
					r := rng.New(seed * 31)
					res, err := g.BestResponseDynamics(init, r, 0)
					if err != nil {
						t.Fatal(err)
					}
					return res.Placement, m.SocialCost(res.Placement), res, r.Uint64()
				}
				plS, scS, resS, drawS := run(1)
				if resS.Moves == 0 {
					t.Fatalf("%s seed=%d: serial run never moved — test market degenerate", mod.name, seed)
				}
				for _, w := range []int{2, 4, max(2, runtime.NumCPU())} {
					pl, sc, res, draw := run(w)
					for l := range plS {
						if pl[l] != plS[l] {
							t.Fatalf("%s pinned=%v seed=%d workers=%d: provider %d at %d vs serial %d",
								mod.name, pinned, seed, w, l, pl[l], plS[l])
						}
					}
					if math.Float64bits(sc) != math.Float64bits(scS) {
						t.Fatalf("%s pinned=%v seed=%d workers=%d: social cost diverged", mod.name, pinned, seed, w)
					}
					if res.Rounds != resS.Rounds || res.Moves != resS.Moves || res.Converged != resS.Converged {
						t.Fatalf("%s pinned=%v seed=%d workers=%d: trajectory rounds %d/%d moves %d/%d",
							mod.name, pinned, seed, w, res.Rounds, resS.Rounds, res.Moves, resS.Moves)
					}
					if draw != drawS {
						t.Fatalf("%s pinned=%v seed=%d workers=%d: caller rng stream diverged", mod.name, pinned, seed, w)
					}
				}
			}
		}
	}
}

// TestShardedNashInvariant: the sharded run must land on an equilibrium just
// like the serial one.
func TestShardedNashInvariant(t *testing.T) {
	m := clusteredMarket(t, 3, 24, 11)
	g := New(m)
	g.Workers = 4
	res, err := g.BestResponseDynamics(allRemote(m), rng.New(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("sharded dynamics reported non-convergence")
	}
	if !g.IsNash(res.Placement) {
		t.Fatal("sharded dynamics stopped short of a Nash equilibrium")
	}
}
