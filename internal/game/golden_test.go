package game

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mecache/internal/mec"
	"mecache/internal/rng"
	"mecache/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenDynamicsEntry pins one fixed-seed best-response run: the exact
// placement and the bit patterns of its social cost and potential. Costs are
// stored as Float64bits so the comparison is bit-equality, not approximate.
type goldenDynamicsEntry struct {
	Size          int    `json:"size"`
	Providers     int    `json:"providers"`
	Seed          uint64 `json:"seed"`
	Placement     []int  `json:"placement"`
	SocialBits    uint64 `json:"socialBits"`
	PotentialBits uint64 `json:"potentialBits"`
	Rounds        int    `json:"rounds"`
	Moves         int    `json:"moves"`
}

// goldenMarket builds the deterministic GT-ITM market the golden fixtures
// are pinned to.
func goldenMarket(t testing.TB, size, providers int, seed uint64) *mec.Market {
	t.Helper()
	cfg := workload.Default(seed)
	cfg.NumProviders = providers
	m, err := workload.GenerateGTITM(size, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGoldenDynamicsPlacements asserts that fixed-seed best-response
// dynamics reproduce the committed pre-refactor placements byte for byte
// (and their social cost / Rosenthal potential bit for bit). Regenerate with
// `go test ./internal/game -run Golden -update` — but a diff here after a
// performance change means the optimization altered results and must be
// fixed, not re-baselined.
func TestGoldenDynamicsPlacements(t *testing.T) {
	scales := []struct {
		size, providers int
		seed            uint64
	}{
		{60, 30, 3},
		{120, 60, 42},
		{250, 100, 7},
	}
	var got []goldenDynamicsEntry
	for _, sc := range scales {
		m := goldenMarket(t, sc.size, sc.providers, sc.seed)
		g := New(m)
		init := make(mec.Placement, len(m.Providers))
		for l := range init {
			init[l] = mec.Remote
		}
		res, err := g.BestResponseDynamics(init, rng.New(sc.seed), 0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, goldenDynamicsEntry{
			Size:          sc.size,
			Providers:     sc.providers,
			Seed:          sc.seed,
			Placement:     res.Placement,
			SocialBits:    math.Float64bits(m.SocialCost(res.Placement)),
			PotentialBits: math.Float64bits(g.Potential(res.Placement)),
			Rounds:        res.Rounds,
			Moves:         res.Moves,
		})
	}
	compareGolden(t, filepath.Join("testdata", "golden_dynamics.json"), got)
}

// compareGolden marshals got and compares it against the golden file,
// rewriting the file under -update.
func compareGolden[T any](t *testing.T, path string, got T) {
	t.Helper()
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to generate): %v", err)
	}
	var want T
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Fatalf("golden mismatch for %s:\ngot:\n%s\nwant:\n%s", path, gotJSON, data)
	}
}
