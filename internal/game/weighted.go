package game

import (
	"fmt"
	"math"

	"mecache/internal/mec"
	"mecache/internal/rng"
)

// WeightedGame is the asymmetric variant of the service-caching game. The
// paper assumes a symmetric game "without loss of generality"; here each
// provider carries a weight (by default its dominant resource demand,
// normalized to mean 1) and a cloudlet's congestion charge scales with the
// total tenant *weight* rather than the tenant count:
//
//	c_l(i) = (α_i + β_i)·W_i + base_{l,i},  W_i = Σ_{k cached at i} w_k
//
// Weighted singleton games with affine congestion admit the weighted
// potential Φ = Σ_i (α_i+β_i)/2·(W_i² + Σ_{l at i} w_l²) + Σ_l w_l·base_l,
// so best-response dynamics still terminate at a pure Nash equilibrium.
// Only the linear congestion model supports this variant.
type WeightedGame struct {
	Market *mec.Market
	// Weights holds one positive weight per provider.
	Weights []float64
	// Pinned marks coordinated providers that never move.
	Pinned []bool
	// CapacityAware restricts best responses to cloudlets with room.
	CapacityAware bool
	// Epsilon is the minimum strict improvement for a move.
	Epsilon float64
}

// NewWeighted builds the asymmetric game with demand-proportional weights
// normalized to mean 1 (so costs stay on the same scale as the symmetric
// game). It fails if the market uses a non-linear congestion model.
func NewWeighted(m *mec.Market) (*WeightedGame, error) {
	if name := m.CongestionModelInUse().Name(); name != "linear" {
		return nil, fmt.Errorf("game: weighted variant requires the linear congestion model, market uses %s", name)
	}
	n := len(m.Providers)
	weights := make([]float64, n)
	sum := 0.0
	for l := range m.Providers {
		p := &m.Providers[l]
		weights[l] = math.Max(p.ComputeDemand(), p.BandwidthDemand())
		sum += weights[l]
	}
	mean := sum / float64(n)
	for l := range weights {
		weights[l] /= mean
	}
	return &WeightedGame{
		Market:        m,
		Weights:       weights,
		Pinned:        make([]bool, n),
		CapacityAware: true,
		Epsilon:       1e-9,
	}, nil
}

// SetWeights overrides the default weights; all must be positive.
func (g *WeightedGame) SetWeights(w []float64) error {
	if len(w) != len(g.Market.Providers) {
		return fmt.Errorf("game: %d weights for %d providers", len(w), len(g.Market.Providers))
	}
	for l, v := range w {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("game: invalid weight %v for provider %d", v, l)
		}
	}
	g.Weights = append([]float64(nil), w...)
	return nil
}

// weightedLoads tracks total tenant weight and raw resource usage.
type weightedLoads struct {
	weight    []float64
	compute   []float64
	bandwidth []float64
}

func (g *WeightedGame) newLoads(pl mec.Placement) *weightedLoads {
	nc := g.Market.Net.NumCloudlets()
	wl := &weightedLoads{
		weight:    make([]float64, nc),
		compute:   make([]float64, nc),
		bandwidth: make([]float64, nc),
	}
	for l, s := range pl {
		if s != mec.Remote {
			wl.add(g, l, s)
		}
	}
	return wl
}

func (wl *weightedLoads) add(g *WeightedGame, l, i int) {
	p := &g.Market.Providers[l]
	wl.weight[i] += g.Weights[l]
	wl.compute[i] += p.ComputeDemand()
	wl.bandwidth[i] += p.BandwidthDemand()
}

func (wl *weightedLoads) remove(g *WeightedGame, l, i int) {
	p := &g.Market.Providers[l]
	wl.weight[i] -= g.Weights[l]
	wl.compute[i] -= p.ComputeDemand()
	wl.bandwidth[i] -= p.BandwidthDemand()
}

func (g *WeightedGame) fits(wl *weightedLoads, l, i int) bool {
	if !g.CapacityAware {
		return true
	}
	p := &g.Market.Providers[l]
	cl := &g.Market.Net.Cloudlets[i]
	return wl.compute[i]+p.ComputeDemand() <= cl.ComputeCap+1e-9 &&
		wl.bandwidth[i]+p.BandwidthDemand() <= cl.BandwidthCap+1e-9
}

// PlayerCost returns provider l's cost under pl in the weighted game.
func (g *WeightedGame) PlayerCost(pl mec.Placement, l int) float64 {
	s := pl[l]
	if s == mec.Remote {
		return g.Market.RemoteCost(l)
	}
	wl := g.newLoads(pl)
	return g.Market.CongestionCoeff(s)*wl.weight[s] + g.Market.BaseCost(l, s)
}

// playerCostLoads evaluates with precomputed loads (pl[l] included).
func (g *WeightedGame) playerCostLoads(wl *weightedLoads, pl mec.Placement, l int) float64 {
	s := pl[l]
	if s == mec.Remote {
		return g.Market.RemoteCost(l)
	}
	return g.Market.CongestionCoeff(s)*wl.weight[s] + g.Market.BaseCost(l, s)
}

// BestResponse returns l's cost-minimizing strategy against the rest of pl.
func (g *WeightedGame) BestResponse(pl mec.Placement, l int) (int, float64) {
	wl := g.newLoads(pl)
	return g.bestResponseLoads(wl, pl, l)
}

func (g *WeightedGame) bestResponseLoads(wl *weightedLoads, pl mec.Placement, l int) (int, float64) {
	cur := pl[l]
	if cur != mec.Remote {
		wl.remove(g, l, cur)
		defer wl.add(g, l, cur)
	}
	bestS := mec.Remote
	bestC := g.Market.RemoteCost(l)
	for i := 0; i < g.Market.Net.NumCloudlets(); i++ {
		if !g.fits(wl, l, i) {
			continue
		}
		c := g.Market.CongestionCoeff(i)*(wl.weight[i]+g.Weights[l]) + g.Market.BaseCost(l, i)
		if c < bestC-1e-15 {
			bestS, bestC = i, c
		}
	}
	return bestS, bestC
}

// Potential is the weighted potential: a unilateral move by provider l
// changes it by exactly w_l times l's cost change.
func (g *WeightedGame) Potential(pl mec.Placement) float64 {
	nc := g.Market.Net.NumCloudlets()
	wSum := make([]float64, nc)
	wSq := make([]float64, nc)
	phi := 0.0
	for l, s := range pl {
		if s == mec.Remote {
			phi += g.Weights[l] * g.Market.RemoteCost(l)
			continue
		}
		wSum[s] += g.Weights[l]
		wSq[s] += g.Weights[l] * g.Weights[l]
		phi += g.Weights[l] * g.Market.BaseCost(l, s)
	}
	for i := 0; i < nc; i++ {
		phi += g.Market.CongestionCoeff(i) / 2 * (wSum[i]*wSum[i] + wSq[i])
	}
	return phi
}

// IsNash reports whether no unpinned player can improve by more than
// Epsilon.
func (g *WeightedGame) IsNash(pl mec.Placement) bool {
	wl := g.newLoads(pl)
	for l := range g.Market.Providers {
		if g.Pinned[l] {
			continue
		}
		cur := g.playerCostLoads(wl, pl, l)
		if _, best := g.bestResponseLoads(wl, pl, l); best < cur-g.Epsilon {
			return false
		}
	}
	return true
}

// BestResponseDynamics runs randomized round-robin better responses until
// no unpinned player improves; the weighted potential guarantees
// termination.
func (g *WeightedGame) BestResponseDynamics(init mec.Placement, r *rng.Source, maxRounds int) (DynamicsResult, error) {
	if err := g.Market.Validate(init); err != nil {
		return DynamicsResult{}, err
	}
	if maxRounds <= 0 {
		maxRounds = 10000
	}
	pl := init.Clone()
	wl := g.newLoads(pl)
	res := DynamicsResult{Placement: pl}

	free := make([]int, 0, len(pl))
	for l := range g.Market.Providers {
		if !g.Pinned[l] {
			free = append(free, l)
		}
	}
	if len(free) == 0 {
		res.Converged = true
		return res, nil
	}
	order := append([]int(nil), free...)
	for round := 0; round < maxRounds; round++ {
		res.Rounds++
		if r != nil {
			r.Shuffle(order)
		}
		moved := false
		for _, l := range order {
			cur := g.playerCostLoads(wl, pl, l)
			s, c := g.bestResponseLoads(wl, pl, l)
			if c < cur-g.Epsilon && s != pl[l] {
				if pl[l] != mec.Remote {
					wl.remove(g, l, pl[l])
				}
				if s != mec.Remote {
					wl.add(g, l, s)
				}
				pl[l] = s
				res.Moves++
				moved = true
			}
		}
		if !moved {
			res.Converged = true
			return res, nil
		}
	}
	return res, fmt.Errorf("game: weighted dynamics did not converge within %d rounds", maxRounds)
}

// SocialCost is the weighted game's total cost: each cached provider pays
// the congestion of its cloudlet's total weight plus its base cost.
func (g *WeightedGame) SocialCost(pl mec.Placement) float64 {
	wl := g.newLoads(pl)
	total := 0.0
	for l, s := range pl {
		if s == mec.Remote {
			total += g.Market.RemoteCost(l)
		} else {
			total += g.Market.CongestionCoeff(s)*wl.weight[s] + g.Market.BaseCost(l, s)
		}
	}
	return total
}
