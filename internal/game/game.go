// Package game implements the Stackelberg congestion game of Section II-E:
// the strategy space of every network service provider is the set of
// cloudlets plus the "stay remote" option; the cost of caching at cloudlet
// CL_i is the affine congestion cost (α_i + β_i)·|σ_i| plus the provider's
// congestion-free base cost. A subset of players (the coordinated providers
// of Section III-C) can be pinned by the leader; the rest better-respond
// selfishly.
//
// Affine congestion games are exact potential games (Rosenthal), so
// best-response dynamics terminate at a pure Nash equilibrium (Lemma 3);
// Potential exposes the potential function and the tests verify strict
// decrease along improving moves.
package game

import (
	"fmt"
	"math"

	"mecache/internal/mec"
	"mecache/internal/obs"
	"mecache/internal/parallel"
	"mecache/internal/rng"
)

// Game is a service-caching congestion game over a market. Pinned players
// never move during dynamics (they are the leader-coordinated providers).
type Game struct {
	Market *mec.Market
	// Pinned[l] marks provider l as coordinated: its strategy is fixed.
	Pinned []bool
	// CapacityAware restricts best responses to cloudlets whose remaining
	// compute and bandwidth capacities fit the moving provider.
	CapacityAware bool
	// Epsilon is the minimum strict improvement for a move (guards against
	// floating-point livelock).
	Epsilon float64
	// Parallelism bounds the worker pool of the randomized-restart searches
	// (WorstNashSocialCost, BestNashSocialCost, and the empirical PoA/PoS
	// built on them). Values below 1 mean one worker per CPU; 1 runs every
	// restart serially on the calling goroutine. Results are bit-for-bit
	// identical for every setting: restart t always draws from
	// rng.Substream(seed, t), never from a stream shared across restarts.
	Parallelism int
	// Trace receives decision events: the strategy every best response
	// settles on, every move the dynamics apply, and per-round social-cost
	// checkpoints. Nil (the default) disables tracing — the hot path then
	// pays one branch and zero allocations. Tracing never affects results:
	// it draws no randomness and mutates nothing, so traced and untraced
	// runs of the same seed reach identical placements. Do not share a
	// tracer across the parallel restart searches.
	Trace obs.Tracer
	// NaiveScan replaces the pruned base-sorted candidate scan with the
	// historical ascending-index full scan (LoadState.BestResponseNaive).
	// It exists for the differential tests and the benchmark baseline —
	// both scans must reach identical placements at every fixed seed.
	NaiveScan bool
	// Workers enables the sharded best-response round: free providers are
	// partitioned into connected components of the cloudlet-reachability
	// graph and each component runs its dynamics on a private LoadState
	// clone, up to Workers components at a time. The result is bit-identical
	// to the serial run at every worker count (see shard.go for the
	// argument); values <= 1 — and any run with a Trace attached or a
	// market whose congestion floor is unusable — stay on the serial path.
	Workers int
}

// New returns a game over the market with no pinned players, capacity
// awareness enabled, and a conservative improvement threshold.
func New(m *mec.Market) *Game {
	return &Game{
		Market:        m,
		Pinned:        make([]bool, len(m.Providers)),
		CapacityAware: true,
		Epsilon:       1e-9,
	}
}

func (g *Game) newLoads(pl mec.Placement) *LoadState {
	ls := NewLoadState(g.Market)
	ls.Reset(pl)
	return ls
}

// fits reports whether provider l fits in cloudlet i given current usage
// (with l already removed from the loads).
func (g *Game) fits(rl *LoadState, l, i int) bool {
	return !g.CapacityAware || rl.Fits(l, i)
}

// BestResponse returns provider l's cost-minimizing strategy against the
// rest of pl, and its cost there. The current strategy is always a
// candidate, so the result never increases l's cost.
func (g *Game) BestResponse(pl mec.Placement, l int) (int, float64) {
	rl := g.newLoads(pl)
	return g.bestResponseLoads(rl, pl, l)
}

// bestResponseLoads is the incremental core: rl must reflect pl exactly.
func (g *Game) bestResponseLoads(rl *LoadState, pl mec.Placement, l int) (int, float64) {
	cur := pl[l]
	if cur != mec.Remote {
		rl.Remove(l, cur)
		defer rl.Add(l, cur)
	}
	var bestS int
	var bestC float64
	if g.NaiveScan {
		bestS, bestC = rl.BestResponseNaive(l, g.CapacityAware, nil)
	} else {
		bestS, bestC = rl.BestResponse(l, g.CapacityAware, nil)
	}
	if g.Trace != nil {
		load := 0
		if bestS != mec.Remote {
			load = rl.Count(bestS) + 1
		}
		g.Trace.Emit(obs.Event{
			Kind: obs.KindChoice, Provider: l, Strategy: bestS, From: cur,
			Load: load, Cost: g.Market.Breakdown(l, bestS, load), Total: bestC,
		})
	}
	return bestS, bestC
}

// Potential is the Rosenthal potential for singleton congestion games with
// per-resource cost (α_i+β_i)·Level(k):
//
//	Φ(σ) = Σ_i (α_i+β_i)·Σ_{j=1..load_i} Level(j) + Σ_l base_l(σ_l)
//
// For the paper's proportional model (Level(k) = k) the inner sum is the
// familiar load·(load+1)/2. Every strictly improving unilateral move
// strictly decreases Φ, which is the existence proof behind Lemma 3 — and
// the reason NE existence survives any non-decreasing congestion model.
func (g *Game) Potential(pl mec.Placement) float64 {
	loads := g.Market.Loads(pl)
	phi := 0.0
	for i, k := range loads {
		// LevelPrefix is the Σ_{j=1..k} Level(j) accumulated in the same
		// ascending order a direct loop would use, so Φ is bit-identical to
		// the pre-cache implementation.
		phi += g.Market.CongestionCoeff(i) * g.Market.LevelPrefix(k)
	}
	for l, s := range pl {
		if s == mec.Remote {
			phi += g.Market.RemoteCost(l)
		} else {
			phi += g.Market.BaseCost(l, s)
		}
	}
	return phi
}

// IsNash reports whether no unpinned player can strictly improve by more
// than Epsilon.
func (g *Game) IsNash(pl mec.Placement) bool {
	rl := g.newLoads(pl)
	for l := range g.Market.Providers {
		if g.Pinned[l] {
			continue
		}
		cur := g.playerCost(rl, pl, l)
		_, best := g.bestResponseLoads(rl, pl, l)
		if best < cur-g.Epsilon {
			return false
		}
	}
	return true
}

// playerCost evaluates provider l's cost under pl using the load cache.
func (g *Game) playerCost(rl *LoadState, pl mec.Placement, l int) float64 {
	s := pl[l]
	if s == mec.Remote {
		return g.Market.RemoteCost(l)
	}
	return g.Market.CostAt(l, s, rl.Count(s))
}

// DynamicsResult reports a best-response run.
type DynamicsResult struct {
	Placement mec.Placement
	Rounds    int  // full passes over the players
	Moves     int  // strategy changes applied
	Converged bool // true if a full pass produced no move
	// Shards is telemetry only: the number of locality components the
	// sharded round ran in parallel, or 0 for a serial run. It is excluded
	// from the byte-identity contract (everything above is identical at
	// every worker count).
	Shards int
}

// BestResponseDynamics runs randomized round-robin better-response dynamics
// from init until no unpinned player can improve, and returns the reached
// placement. maxRounds bounds the number of full passes (the exact
// potential guarantees termination, the bound is a defensive backstop); a
// non-convergent run returns an error.
func (g *Game) BestResponseDynamics(init mec.Placement, r *rng.Source, maxRounds int) (DynamicsResult, error) {
	if err := g.Market.Validate(init); err != nil {
		return DynamicsResult{}, err
	}
	if maxRounds <= 0 {
		maxRounds = 10000
	}
	pl := init.Clone()
	rl := g.newLoads(pl)
	res := DynamicsResult{Placement: pl}

	free := make([]int, 0, len(pl))
	for l := range g.Market.Providers {
		if !g.Pinned[l] {
			free = append(free, l)
		}
	}
	if len(free) == 0 {
		res.Converged = true
		return res, nil
	}
	if g.Workers > 1 && g.Trace == nil && r != nil && !math.IsInf(g.Market.CongestionFloor(), -1) {
		if comps := g.shardComponents(pl, free); len(comps) > 1 {
			return g.bestResponseSharded(pl, r, maxRounds, free, comps)
		}
	}
	order := append([]int(nil), free...)
	for round := 0; round < maxRounds; round++ {
		res.Rounds++
		if r != nil {
			r.Shuffle(order)
		}
		moved := false
		for _, l := range order {
			cur := g.playerCost(rl, pl, l)
			s, c := g.bestResponseLoads(rl, pl, l)
			if c < cur-g.Epsilon && s != pl[l] {
				if g.Trace != nil {
					g.Trace.Emit(obs.Event{
						Kind: obs.KindMove, Provider: l, Strategy: s, From: pl[l],
						Round: res.Rounds, Total: c,
					})
				}
				rl.Move(l, pl[l], s)
				pl[l] = s
				res.Moves++
				moved = true
			}
		}
		if g.Trace != nil {
			// Social-cost trajectory: one checkpoint per completed round.
			g.Trace.Emit(obs.Event{
				Kind: obs.KindRound, Round: res.Rounds,
				SocialCost: g.Market.SocialCost(pl), Note: "best-response round",
			})
		}
		if !moved {
			res.Converged = true
			if g.Trace != nil {
				g.Trace.Emit(obs.Event{
					Kind: obs.KindPhase, Round: res.Rounds,
					SocialCost: g.Market.SocialCost(pl), Note: "dynamics converged",
				})
			}
			return res, nil
		}
	}
	return res, fmt.Errorf("game: best-response dynamics did not converge within %d rounds", maxRounds)
}

// WorstNashSocialCost estimates the worst pure NE reachable from random
// initial placements: it runs dynamics from `restarts` random starts and
// returns the placement with the highest social cost among the reached
// equilibria. base supplies the strategies of pinned players (they are
// copied into every start); unpinned players are randomized over
// capacity-feasible strategies. r seeds the per-restart substreams (nil
// falls back to a fixed seed); restarts run on the Parallelism worker
// pool with identical results at any width. Used for the empirical PoA
// (Theorem 1).
func (g *Game) WorstNashSocialCost(base mec.Placement, r *rng.Source, restarts, maxRounds int) (mec.Placement, float64, error) {
	return g.extremeNash(base, r, restarts, maxRounds, func(candidate, incumbent float64) bool {
		return candidate > incumbent
	}, math.Inf(-1))
}

// BestNashSocialCost is the mirror of WorstNashSocialCost: the cheapest
// equilibrium found, used for the empirical Price of Stability (the gap
// between the best equilibrium a coordinator could steer the market into
// and the social optimum).
func (g *Game) BestNashSocialCost(base mec.Placement, r *rng.Source, restarts, maxRounds int) (mec.Placement, float64, error) {
	return g.extremeNash(base, r, restarts, maxRounds, func(candidate, incumbent float64) bool {
		return candidate < incumbent
	}, math.Inf(1))
}

// extremeNash runs randomized-restart dynamics and keeps the equilibrium
// preferred by better(). Restarts fan out over the Parallelism worker pool:
// restart t derives its entire randomness (initial placement and dynamics
// order) from rng.Substream(seed, t), so the search visits the same
// equilibria — and returns the same one, chosen in restart order — for
// every worker count.
func (g *Game) extremeNash(base mec.Placement, r *rng.Source, restarts, maxRounds int, better func(candidate, incumbent float64) bool, init0 float64) (mec.Placement, float64, error) {
	if err := g.Market.Validate(base); err != nil {
		return nil, 0, err
	}
	if restarts < 1 {
		restarts = 1
	}
	// A nil source is a usable default (fixed seed, reproducible), not a
	// panic in r.Intn — mirroring BestResponseDynamics' nil tolerance.
	if r == nil {
		r = rng.New(0xec0de5eed)
	}
	seed := r.Uint64()

	// Reject capacity-infeasible "equilibria" (Eq. 4/5) only when the
	// pinned base load is itself feasible: Appro's Shmoys-Tardos path may
	// overload a cloudlet (its additive guarantee), and the selfish players
	// cannot undo the leader's overload.
	checkFeasible := g.CapacityAware && g.pinnedFeasible(base)

	type candidate struct {
		pl       mec.Placement
		cost     float64
		feasible bool
	}
	cands, err := parallel.Map(g.Parallelism, restarts, func(t int) (candidate, error) {
		rr := rng.Substream(seed, uint64(t))
		res, err := g.BestResponseDynamics(g.randomInit(base, rr), rr, maxRounds)
		if err != nil {
			return candidate{}, err
		}
		c := candidate{
			pl:       res.Placement,
			cost:     g.Market.SocialCost(res.Placement),
			feasible: true,
		}
		if checkFeasible && g.Market.CheckCapacity(res.Placement, 0) != nil {
			c.feasible = false
		}
		return c, nil
	})
	if err != nil {
		return nil, 0, err
	}
	var bestPl mec.Placement
	best := init0
	for _, c := range cands {
		if c.feasible && better(c.cost, best) {
			best = c.cost
			bestPl = c.pl
		}
	}
	if bestPl == nil {
		return nil, 0, fmt.Errorf("game: no capacity-feasible equilibrium among %d restarts", restarts)
	}
	return bestPl, best, nil
}

// pinnedFeasible reports whether the pinned strategies of base alone
// respect every cloudlet capacity.
func (g *Game) pinnedFeasible(base mec.Placement) bool {
	pinnedOnly := base.Clone()
	for l := range pinnedOnly {
		if !g.Pinned[l] {
			pinnedOnly[l] = mec.Remote
		}
	}
	return g.Market.CheckCapacity(pinnedOnly, 0) == nil
}

// randomInit draws a random start for one restart: pinned players keep
// their base strategies; every other player picks uniformly among Remote
// and — when CapacityAware — the cloudlets that still fit it given the
// players drawn so far, falling back to Remote when nothing fits. This
// keeps every start capacity-feasible (modulo a pinned overload), so an
// overloaded tenant too expensive to evict can never masquerade as part of
// an equilibrium. Without CapacityAware the draw is uniform over all
// strategies.
func (g *Game) randomInit(base mec.Placement, r *rng.Source) mec.Placement {
	init := base.Clone()
	nc := g.Market.Net.NumCloudlets()
	if !g.CapacityAware {
		for l := range init {
			if g.Pinned[l] {
				continue
			}
			// Random strategy: Remote with probability 1/(nc+1).
			k := r.Intn(nc + 1)
			if k == nc {
				init[l] = mec.Remote
			} else {
				init[l] = k
			}
		}
		return init
	}
	for l := range init {
		if !g.Pinned[l] {
			init[l] = mec.Remote
		}
	}
	rl := g.newLoads(init) // pinned load only; unpinned are Remote so far
	feasible := make([]int, 0, nc)
	for l := range init {
		if g.Pinned[l] {
			continue
		}
		feasible = feasible[:0]
		for i := 0; i < nc; i++ {
			if g.fits(rl, l, i) {
				feasible = append(feasible, i)
			}
		}
		// Remote with probability 1/(len+1), and with certainty when no
		// cloudlet fits.
		if k := r.Intn(len(feasible) + 1); k < len(feasible) {
			init[l] = feasible[k]
			rl.Add(l, feasible[k])
		}
	}
	return init
}

// EmpiricalPoS measures the realized Price of Stability: the best Nash
// social cost over restarts divided by the reference optimum.
func (g *Game) EmpiricalPoS(base mec.Placement, optCost float64, restarts, maxRounds int, seed uint64) (float64, error) {
	if optCost <= 0 {
		return 0, fmt.Errorf("game: non-positive reference optimum %v", optCost)
	}
	_, best, err := g.BestNashSocialCost(base, rng.New(seed), restarts, maxRounds)
	if err != nil {
		return 0, err
	}
	return best / optCost, nil
}
