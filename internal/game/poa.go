package game

import (
	"fmt"
	"math"

	"mecache/internal/mec"
	"mecache/internal/rng"
)

// ExactOptimum computes the social optimum by exhaustive enumeration over
// all capacity-feasible strategy profiles. It is exponential in the number
// of providers and intended for small markets in tests and PoA studies; it
// returns an error when the search space exceeds maxProfiles.
func ExactOptimum(m *mec.Market, maxProfiles int) (mec.Placement, float64, error) {
	n := len(m.Providers)
	nc := m.Net.NumCloudlets()
	strategies := nc + 1 // cloudlets plus Remote
	space := 1.0
	for i := 0; i < n; i++ {
		space *= float64(strategies)
		if space > float64(maxProfiles) {
			return nil, 0, fmt.Errorf("game: %d^%d profiles exceed limit %d", strategies, n, maxProfiles)
		}
	}

	pl := make(mec.Placement, n)
	best := math.Inf(1)
	var bestPl mec.Placement

	compute := make([]float64, nc)
	bandwidth := make([]float64, nc)
	var rec func(l int)
	rec = func(l int) {
		if l == n {
			if sc := m.SocialCost(pl); sc < best {
				best = sc
				bestPl = pl.Clone()
			}
			return
		}
		p := &m.Providers[l]
		pl[l] = mec.Remote
		rec(l + 1)
		for i := 0; i < nc; i++ {
			cl := &m.Net.Cloudlets[i]
			if compute[i]+p.ComputeDemand() > cl.ComputeCap+1e-9 ||
				bandwidth[i]+p.BandwidthDemand() > cl.BandwidthCap+1e-9 {
				continue
			}
			pl[l] = i
			compute[i] += p.ComputeDemand()
			bandwidth[i] += p.BandwidthDemand()
			rec(l + 1)
			compute[i] -= p.ComputeDemand()
			bandwidth[i] -= p.BandwidthDemand()
			pl[l] = mec.Remote
		}
	}
	rec(0)
	if bestPl == nil {
		return nil, 0, fmt.Errorf("game: no feasible profile found")
	}
	return bestPl, best, nil
}

// PoABound evaluates Theorem 1's Price-of-Anarchy bound
//
//	PoA <= (2δκ / (1-v)) · (1/(4v) + 1 - ξ)
//
// minimized numerically over v ∈ (0, 1). ξ is the coordinated fraction.
func PoABound(delta, kappa, xi float64) float64 {
	if delta <= 0 || kappa <= 0 {
		return math.Inf(1)
	}
	best := math.Inf(1)
	// The expression is smooth with a single interior minimum; a fine grid
	// with local refinement is plenty.
	for v := 0.001; v < 1; v += 0.001 {
		f := (2 * delta * kappa / (1 - v)) * (1/(4*v) + 1 - xi)
		if f < best {
			best = f
		}
	}
	return best
}

// EmpiricalPoA measures the realized PoA of a game: the worst Nash social
// cost (over restarts) divided by the reference optimum optCost. The caller
// chooses the reference — exact for small games, the Appro bound at scale.
func (g *Game) EmpiricalPoA(base mec.Placement, optCost float64, restarts, maxRounds int, seed uint64) (float64, error) {
	if optCost <= 0 {
		return 0, fmt.Errorf("game: non-positive reference optimum %v", optCost)
	}
	_, worst, err := g.WorstNashSocialCost(base, rng.New(seed), restarts, maxRounds)
	if err != nil {
		return 0, err
	}
	return worst / optCost, nil
}
