// The incremental equilibrium engine: one LoadState + one candidate scan
// shared by every best-response surface in the repo (the static game's
// dynamics, the dynamic market's epochs and failovers, and the serving
// daemon's online admissions). A unilateral move in a singleton congestion
// game touches exactly two cloudlets, so the per-cloudlet congestion counts
// and resource headroom are delta-updated on each move instead of rebuilt
// from the full placement per call — turning the O(N) rebuild that used to
// precede every scan into O(1).
//
// The scan itself walks the market's precomputed candidate order (cloudlets
// ascending by congestion-free base cost) and stops as soon as the next base
// cost plus the market-wide congestion floor already exceeds the best total
// seen: every later candidate has a base at least as large, so none can win.
// The early exit is strict (>), so candidates that could still tie the
// incumbent exactly are always visited, and exact ties resolve to the lowest
// cloudlet index — the same winner the historical ascending-index scan
// picked. The fixed-seed golden and differential tests pin this equivalence
// placement-by-placement.
package game

import (
	"mecache/internal/mec"
	"mecache/internal/obs"
)

// LoadState is the persistent per-cloudlet load account: tenant counts for
// the congestion term and compute/bandwidth usage for capacity checks. It
// is valid for exactly one market; keep it in sync by calling Add/Remove/
// Move on every placement change (or Reset to rebuild from scratch). The
// market may grow or shrink via AppendProvider/RemoveProvider without
// invalidating the state — cloudlet count is fixed by the topology — but
// the caller must Remove a provider's contribution before splicing it out
// of the market.
type LoadState struct {
	m         *mec.Market
	count     []int
	compute   []float64
	bandwidth []float64
}

// NewLoadState returns an empty load state (every provider remote) for m.
func NewLoadState(m *mec.Market) *LoadState {
	nc := m.Net.NumCloudlets()
	return &LoadState{
		m:         m,
		count:     make([]int, nc),
		compute:   make([]float64, nc),
		bandwidth: make([]float64, nc),
	}
}

// Clone returns an independent copy of the state over the same market. The
// sharded best-response round hands each shard its own clone so concurrent
// shards never share mutable load accounts.
func (ls *LoadState) Clone() *LoadState {
	return &LoadState{
		m:         ls.m,
		count:     append([]int(nil), ls.count...),
		compute:   append([]float64(nil), ls.compute...),
		bandwidth: append([]float64(nil), ls.bandwidth...),
	}
}

// Reset rebuilds the state from a full placement.
func (ls *LoadState) Reset(pl mec.Placement) {
	for i := range ls.count {
		ls.count[i] = 0
		ls.compute[i] = 0
		ls.bandwidth[i] = 0
	}
	for l, s := range pl {
		if s != mec.Remote {
			ls.Add(l, s)
		}
	}
}

// Add accounts provider l caching at cloudlet i.
func (ls *LoadState) Add(l, i int) {
	p := &ls.m.Providers[l]
	ls.count[i]++
	ls.compute[i] += p.ComputeDemand()
	ls.bandwidth[i] += p.BandwidthDemand()
}

// Remove accounts provider l leaving cloudlet i.
func (ls *LoadState) Remove(l, i int) {
	p := &ls.m.Providers[l]
	ls.count[i]--
	ls.compute[i] -= p.ComputeDemand()
	ls.bandwidth[i] -= p.BandwidthDemand()
}

// Move accounts provider l switching from one strategy to another; either
// side may be mec.Remote.
func (ls *LoadState) Move(l, from, to int) {
	if from == to {
		return
	}
	if from != mec.Remote {
		ls.Remove(l, from)
	}
	if to != mec.Remote {
		ls.Add(l, to)
	}
}

// Count returns cloudlet i's tenant count.
func (ls *LoadState) Count(i int) int { return ls.count[i] }

// Fits reports whether provider l fits in cloudlet i's remaining capacity,
// with l's own contribution already excluded from the state.
func (ls *LoadState) Fits(l, i int) bool {
	p := &ls.m.Providers[l]
	cl := &ls.m.Net.Cloudlets[i]
	return ls.compute[i]+p.ComputeDemand() <= cl.ComputeCap+1e-9 &&
		ls.bandwidth[i]+p.BandwidthDemand() <= cl.BandwidthCap+1e-9
}

// BestResponse returns provider l's cost-minimizing strategy and its cost
// there, scanning the pruned candidate order. The state must reflect every
// provider except l (remove l first when it is currently cached). failed
// masks cloudlets that may not be chosen (nil means all are up); with
// capacityAware unset, capacity limits are ignored.
func (ls *LoadState) BestResponse(l int, capacityAware bool, failed []bool) (int, float64) {
	m := ls.m
	bestS := mec.Remote
	bestC := m.RemoteCost(l)
	floor := m.CongestionFloor()
	for _, i32 := range m.CandidateOrder(l) {
		i := int(i32)
		if m.BaseCost(l, i)+floor > bestC {
			// Candidates are base-sorted: every later one costs at least
			// base+floor too, so nothing downstream can beat or tie bestC.
			break
		}
		if failed != nil && failed[i] {
			continue
		}
		if capacityAware && !ls.Fits(l, i) {
			continue
		}
		c := m.CostAt(l, i, ls.count[i]+1)
		if c < bestC-1e-15 || (c == bestC && i < bestS) {
			bestS, bestC = i, c
		}
	}
	return bestS, bestC
}

// BestResponseNaive is the pre-engine reference: ascending-index scan over
// every cloudlet with no pruning, the exact loop all call sites ran before
// the incremental engine landed. It is kept callable so differential tests
// and the benchmark baseline can compare the engine against it in the same
// process.
func (ls *LoadState) BestResponseNaive(l int, capacityAware bool, failed []bool) (int, float64) {
	m := ls.m
	bestS := mec.Remote
	bestC := m.RemoteCost(l)
	for i := 0; i < m.Net.NumCloudlets(); i++ {
		if failed != nil && failed[i] {
			continue
		}
		if capacityAware && !ls.Fits(l, i) {
			continue
		}
		c := m.CostAt(l, i, ls.count[i]+1)
		if c < bestC-1e-15 {
			bestS, bestC = i, c
		}
	}
	return bestS, bestC
}

// BestResponseTraced is BestResponse with per-candidate decision tracing:
// the remote option and then every live, feasible cloudlet — in the same
// base-sorted order the pruned scan uses — are emitted as KindCandidate
// events with their Eq. 3 cost broken out, followed by a KindChoice for the
// winner. Tracing forces a full scan (every candidate must be shown), but
// the update rule is identical, so traced and untraced scans cannot diverge.
// cur is the provider's current strategy, reported as the transition source.
func (ls *LoadState) BestResponseTraced(l, cur int, capacityAware bool, failed []bool, tr obs.Tracer) (int, float64) {
	if tr == nil {
		return ls.BestResponse(l, capacityAware, failed)
	}
	m := ls.m
	bestS := mec.Remote
	bestC := m.RemoteCost(l)
	b := m.Breakdown(l, mec.Remote, 0)
	tr.Emit(obs.Event{
		Kind: obs.KindCandidate, Provider: l, Strategy: mec.Remote, From: cur,
		Cost: b, Total: b.Total(),
	})
	for _, i32 := range m.CandidateOrder(l) {
		i := int(i32)
		if failed != nil && failed[i] {
			continue
		}
		if capacityAware && !ls.Fits(l, i) {
			continue
		}
		c := m.CostAt(l, i, ls.count[i]+1)
		tr.Emit(obs.Event{
			Kind: obs.KindCandidate, Provider: l, Strategy: i, From: cur,
			Load: ls.count[i] + 1, Cost: m.Breakdown(l, i, ls.count[i]+1), Total: c,
		})
		if c < bestC-1e-15 || (c == bestC && i < bestS) {
			bestS, bestC = i, c
		}
	}
	load := 0
	if bestS != mec.Remote {
		load = ls.count[bestS] + 1
	}
	tr.Emit(obs.Event{
		Kind: obs.KindChoice, Provider: l, Strategy: bestS, From: cur,
		Load: load, Cost: m.Breakdown(l, bestS, load), Total: bestC,
	})
	return bestS, bestC
}
