package game

import (
	"math"
	"runtime"
	"testing"

	"mecache/internal/mec"
	"mecache/internal/rng"
	"mecache/internal/workload"
)

// The differential suite pits the incremental engine (pruned base-sorted
// scan over a delta-maintained LoadState) against the pre-engine naive
// reference (full ascending-index rescan) and demands byte-identical
// placements and bit-equal costs. It sweeps the axes that could plausibly
// break the scan-order-equivalence argument: non-linear congestion models
// (the congestion floor changes), capacity-tight cloudlets (candidates
// skipped mid-scan), and failed-cloudlet masks.

// tightenCapacities scales every cloudlet's capacities down so a meaningful
// fraction of candidates fails the feasibility check during scans.
func tightenCapacities(m *mec.Market, factor float64) {
	for i := range m.Net.Cloudlets {
		m.Net.Cloudlets[i].ComputeCap *= factor
		m.Net.Cloudlets[i].BandwidthCap *= factor
	}
}

func diffMarket(t *testing.T, seed uint64, providers int, cm mec.CongestionModel, tight bool) *mec.Market {
	t.Helper()
	cfg := workload.Default(seed)
	cfg.NumProviders = providers
	m, err := workload.GenerateGTITM(80, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tight {
		tightenCapacities(m, 0.35)
	}
	if cm != nil {
		if err := m.SetCongestionModel(cm); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestDifferentialDynamics runs full best-response dynamics twice per fuzz
// market — engine scan vs naive scan — and requires identical trajectories.
func TestDifferentialDynamics(t *testing.T) {
	models := []struct {
		name string
		cm   mec.CongestionModel
	}{
		{"linear", nil}, // nil model is the paper's proportional Level(k)=k
		{"poly", mec.PolynomialCongestion{Degree: 1.5}},
		{"exp", mec.ExponentialCongestion{Base: 1.08}},
	}
	for _, mod := range models {
		for _, tight := range []bool{false, true} {
			for seed := uint64(1); seed <= 5; seed++ {
				m := diffMarket(t, seed*13+7, 40, mod.cm, tight)

				run := func(naive bool) (mec.Placement, float64, float64, DynamicsResult) {
					g := New(m)
					g.NaiveScan = naive
					init := make(mec.Placement, len(m.Providers))
					for l := range init {
						init[l] = mec.Remote
					}
					res, err := g.BestResponseDynamics(init, rng.New(seed), 0)
					if err != nil {
						t.Fatal(err)
					}
					return res.Placement, m.SocialCost(res.Placement), g.Potential(res.Placement), res
				}
				plE, scE, phiE, resE := run(false)
				plN, scN, phiN, resN := run(true)

				for l := range plE {
					if plE[l] != plN[l] {
						t.Fatalf("%s tight=%v seed=%d: provider %d placed at %d (engine) vs %d (naive)",
							mod.name, tight, seed, l, plE[l], plN[l])
					}
				}
				if math.Float64bits(scE) != math.Float64bits(scN) {
					t.Fatalf("%s tight=%v seed=%d: social cost bits differ: %x vs %x",
						mod.name, tight, seed, math.Float64bits(scE), math.Float64bits(scN))
				}
				if math.Float64bits(phiE) != math.Float64bits(phiN) {
					t.Fatalf("%s tight=%v seed=%d: potential bits differ: %x vs %x",
						mod.name, tight, seed, math.Float64bits(phiE), math.Float64bits(phiN))
				}
				if resE.Rounds != resN.Rounds || resE.Moves != resN.Moves {
					t.Fatalf("%s tight=%v seed=%d: trajectory differs: rounds %d/%d moves %d/%d",
						mod.name, tight, seed, resE.Rounds, resN.Rounds, resE.Moves, resN.Moves)
				}
			}
		}
	}
}

// TestDifferentialShardedDynamics runs the same dynamics serially and with
// the sharded round at several worker counts, across congestion models,
// tight capacities, and a pinned subset, and requires bit-identical
// placements, trajectories, and — via a post-run draw — caller rng streams.
func TestDifferentialShardedDynamics(t *testing.T) {
	models := []struct {
		name string
		cm   mec.CongestionModel
	}{
		{"linear", nil},
		{"poly", mec.PolynomialCongestion{Degree: 1.5}},
		{"exp", mec.ExponentialCongestion{Base: 1.08}},
	}
	for _, mod := range models {
		for _, tight := range []bool{false, true} {
			for seed := uint64(1); seed <= 4; seed++ {
				m := diffMarket(t, seed*17+5, 48, mod.cm, tight)

				run := func(workers int, naive bool) (mec.Placement, float64, DynamicsResult, uint64) {
					g := New(m)
					g.NaiveScan = naive
					g.Workers = workers
					init := make(mec.Placement, len(m.Providers))
					for l := range init {
						init[l] = mec.Remote
					}
					// Pin a deterministic subset to exercise static loads.
					for l := 0; l < len(init); l += 7 {
						g.Pinned[l] = true
						init[l] = int(seed+uint64(l)) % m.Net.NumCloudlets()
					}
					r := rng.New(seed)
					res, err := g.BestResponseDynamics(init, r, 0)
					if err != nil {
						t.Fatal(err)
					}
					return res.Placement, m.SocialCost(res.Placement), res, r.Uint64()
				}
				plS, scS, resS, drawS := run(1, false)
				for _, workers := range []int{2, 4, runtime.NumCPU()} {
					w := workers
					if w < 2 {
						w = 2
					}
					for _, naive := range []bool{false, true} {
						pl, sc, res, draw := run(w, naive)
						for l := range plS {
							if pl[l] != plS[l] {
								t.Fatalf("%s tight=%v seed=%d workers=%d naive=%v: provider %d at %d vs serial %d",
									mod.name, tight, seed, w, naive, l, pl[l], plS[l])
							}
						}
						if math.Float64bits(sc) != math.Float64bits(scS) {
							t.Fatalf("%s tight=%v seed=%d workers=%d naive=%v: social cost bits differ",
								mod.name, tight, seed, w, naive)
						}
						if res.Rounds != resS.Rounds || res.Moves != resS.Moves || res.Converged != resS.Converged {
							t.Fatalf("%s tight=%v seed=%d workers=%d naive=%v: trajectory rounds %d/%d moves %d/%d",
								mod.name, tight, seed, w, naive, res.Rounds, resS.Rounds, res.Moves, resS.Moves)
						}
						if draw != drawS {
							t.Fatalf("%s tight=%v seed=%d workers=%d naive=%v: caller rng stream diverged",
								mod.name, tight, seed, w, naive)
						}
					}
				}
			}
		}
	}
}

// TestShardedNegativeCoeffStaysSerial pins the serial fallback for markets
// whose congestion floor is -Inf (negative coefficients disable the reach
// bound): the sharded run must still match because it never actually shards.
func TestShardedNegativeCoeffStaysSerial(t *testing.T) {
	m := diffMarket(t, 99, 25, nil, false)
	// Validation forbids negative coefficients at construction, so force the
	// defensive -Inf floor by mutating in place and rebuilding the floor.
	m.Net.Cloudlets[0].Alpha = -m.Net.Cloudlets[0].Beta - 0.5
	if err := m.SetCongestionModel(nil); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m.CongestionFloor(), -1) {
		t.Fatalf("floor = %v, want -Inf", m.CongestionFloor())
	}
	run := func(workers int) (mec.Placement, uint64) {
		g := New(m)
		g.Workers = workers
		init := make(mec.Placement, len(m.Providers))
		for l := range init {
			init[l] = mec.Remote
		}
		r := rng.New(7)
		res, err := g.BestResponseDynamics(init, r, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Placement, r.Uint64()
	}
	plS, drawS := run(1)
	plW, drawW := run(8)
	for l := range plS {
		if plS[l] != plW[l] {
			t.Fatalf("provider %d: %d vs %d", l, plW[l], plS[l])
		}
	}
	if drawS != drawW {
		t.Fatal("rng stream diverged")
	}
}

// TestDifferentialMaskedScan fuzzes single best responses under random
// failed-cloudlet masks and random mid-stream placements: the pruned,
// the traced, and the naive scans must agree on every single decision.
func TestDifferentialMaskedScan(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		m := diffMarket(t, seed*31+3, 35, mec.PolynomialCongestion{Degree: 2}, seed%2 == 0)
		r := rng.New(seed ^ 0xd1ff)
		nc := m.Net.NumCloudlets()

		pl := make(mec.Placement, len(m.Providers))
		for l := range pl {
			pl[l] = mec.Remote
		}
		ls := NewLoadState(m)
		for trial := 0; trial < 200; trial++ {
			failed := make([]bool, nc)
			for i := range failed {
				failed[i] = r.Intn(5) == 0
			}
			l := r.Intn(len(pl))
			cur := pl[l]
			if cur != mec.Remote {
				ls.Remove(l, cur)
			}
			sE, cE := ls.BestResponse(l, true, failed)
			sT, cT := ls.BestResponseTraced(l, cur, true, failed, nil)
			sN, cN := ls.BestResponseNaive(l, true, failed)
			if sE != sN || sE != sT {
				t.Fatalf("seed=%d trial=%d: strategies diverge: engine %d traced %d naive %d",
					seed, trial, sE, sT, sN)
			}
			if math.Float64bits(cE) != math.Float64bits(cN) || math.Float64bits(cE) != math.Float64bits(cT) {
				t.Fatalf("seed=%d trial=%d: costs diverge: %x / %x / %x",
					seed, trial, math.Float64bits(cE), math.Float64bits(cT), math.Float64bits(cN))
			}
			// Walk the market through the chosen move so later trials scan
			// non-trivial load patterns.
			if sE != mec.Remote && (failed[sE] || !ls.Fits(l, sE)) {
				t.Fatalf("seed=%d trial=%d: chose masked or infeasible cloudlet %d", seed, trial, sE)
			}
			if sE != mec.Remote {
				ls.Add(l, sE)
			}
			pl[l] = sE
		}
	}
}
