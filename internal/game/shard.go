// The sharded best-response round. Free providers are partitioned by the
// connected components of a bipartite reachability graph — provider l is
// adjacent to every cloudlet it could ever occupy during dynamics — and each
// component runs its rounds on a private LoadState clone, in parallel. The
// merged outcome is bit-for-bit identical to the serial run:
//
//   - Reach soundness. A scan can only adopt cloudlet i at cost
//     c = BaseCost(l,i) + congestion, with congestion >= CongestionFloor()
//     (non-negative coefficients and a non-decreasing Level; a negative
//     coefficient forces the floor to -Inf and the dispatch stays serial).
//     The incumbent bestC starts at RemoteCost(l) and only decreases, so any
//     winning candidate satisfies BaseCost(l,i)+floor <= RemoteCost(l). The
//     reach set {i : BaseCost(l,i)+floor <= RemoteCost(l)} ∪ {init[l]} is
//     therefore a superset of every strategy l can ever hold, for both the
//     pruned and the naive scan — out-of-reach cloudlets are never adopted
//     no matter what load they carry, so their (possibly stale) counts in a
//     shard's clone cannot change any decision.
//
//   - Independence. Components partition both the free providers and their
//     reachable cloudlets, so a component's loads, capacity headroom, and
//     scan outcomes depend only on the static load (pinned providers and
//     empty-reach free providers, which provably never move) plus its own
//     members. Round t of the serial run restricted to one component is
//     exactly round t of that component's shard.
//
//   - Stream identity. Every shard clones the caller's rng and shuffles a
//     full copy of the order slice each round, replicating the serial
//     shuffle stream exactly; members are then visited in shuffled order,
//     filtered to the component, which preserves the serial visiting order
//     within the component. A component that reaches a zero-move round stays
//     quiet forever (an unchanged state admits no improving move under any
//     order), so it can stop while others continue — the serial round count
//     is the max over components, and the caller's rng is advanced by that
//     many shuffles afterwards so downstream draws match the serial run.
package game

import (
	"fmt"

	"mecache/internal/mec"
	"mecache/internal/parallel"
	"mecache/internal/rng"
)

// shardComponents partitions the free providers into connected components
// of the reachability graph. Providers whose reach is empty and who start
// remote can never move; they are omitted (their round participation
// consumes no randomness). Returns nil or a single component when sharding
// cannot help.
func (g *Game) shardComponents(pl mec.Placement, free []int) [][]int {
	m := g.Market
	nc := m.Net.NumCloudlets()
	if nc == 0 {
		return nil
	}
	parent := make([]int, nc)
	for i := range parent {
		parent[i] = i
	}
	find := func(a int) int {
		for parent[a] != a {
			parent[a] = parent[parent[a]]
			a = parent[a]
		}
		return a
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	floor := m.CongestionFloor()
	anchor := make([]int, len(free))
	for fi, l := range free {
		a := -1
		if s := pl[l]; s != mec.Remote {
			a = s
		}
		remote := m.RemoteCost(l)
		for _, i32 := range m.CandidateOrder(l) {
			i := int(i32)
			if m.BaseCost(l, i)+floor > remote {
				break // base-sorted: everything later is out of reach too
			}
			if a < 0 {
				a = i
			} else {
				union(a, i)
			}
		}
		anchor[fi] = a
	}

	var comps [][]int
	rootIdx := make(map[int]int)
	for fi, l := range free {
		if anchor[fi] < 0 {
			continue // empty reach, starts remote: provably never moves
		}
		rt := find(anchor[fi])
		ci, ok := rootIdx[rt]
		if !ok {
			ci = len(comps)
			rootIdx[rt] = ci
			comps = append(comps, nil)
		}
		comps[ci] = append(comps[ci], l)
	}
	return comps
}

// bestResponseSharded runs one dynamics round set with each component on
// its own goroutine and merges the results. pl is the caller's working
// placement (already cloned from init); it is updated in place with the
// merged outcome.
func (g *Game) bestResponseSharded(pl mec.Placement, r *rng.Source, maxRounds int, free []int, comps [][]int) (DynamicsResult, error) {
	baseRl := g.newLoads(pl)

	type shardRes struct {
		pl        mec.Placement
		rounds    int
		moves     int
		converged bool
	}
	outs := make([]shardRes, len(comps))
	memberOf := make([][]bool, len(comps))
	for ci, comp := range comps {
		mb := make([]bool, len(pl))
		for _, l := range comp {
			mb[l] = true
		}
		memberOf[ci] = mb
	}

	workers := g.Workers
	if workers > len(comps) {
		workers = len(comps)
	}
	// Shards are pure functions of their cloned inputs, so the outcome is
	// independent of scheduling; tasks never return errors.
	_ = parallel.Run(workers, len(comps), func(ci int) error {
		mb := memberOf[ci]
		rl := baseRl.Clone()
		plc := pl.Clone()
		rc := r.Clone()
		order := append([]int(nil), free...)
		out := &outs[ci]
		for round := 0; round < maxRounds; round++ {
			out.rounds++
			rc.Shuffle(order)
			moved := false
			for _, l := range order {
				if !mb[l] {
					continue
				}
				cur := g.playerCost(rl, plc, l)
				s, c := g.bestResponseLoads(rl, plc, l)
				if c < cur-g.Epsilon && s != plc[l] {
					rl.Move(l, plc[l], s)
					plc[l] = s
					out.moves++
					moved = true
				}
			}
			if !moved {
				out.converged = true
				break
			}
		}
		out.pl = plc
		return nil
	})

	res := DynamicsResult{Placement: pl, Converged: true, Shards: len(comps)}
	for ci, comp := range comps {
		o := &outs[ci]
		for _, l := range comp {
			pl[l] = o.pl[l]
		}
		res.Moves += o.moves
		if o.rounds > res.Rounds {
			res.Rounds = o.rounds
		}
		if !o.converged {
			res.Converged = false
		}
	}
	// Advance the caller's source exactly as the serial run would have: one
	// shuffle of the (length-only-relevant) order slice per serial round.
	scratch := make([]int, len(free))
	for t := 0; t < res.Rounds; t++ {
		r.Shuffle(scratch)
	}
	if !res.Converged {
		return res, fmt.Errorf("game: best-response dynamics did not converge within %d rounds", maxRounds)
	}
	return res, nil
}
