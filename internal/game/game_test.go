package game

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/graph"
	"mecache/internal/mec"
	"mecache/internal/rng"
	"mecache/internal/topology"
	"mecache/internal/workload"
)

// smallMarket builds a deterministic market for game tests: a path topology
// with two cloudlets and one DC, and n providers.
func smallMarket(t testing.TB, n int) *mec.Market {
	t.Helper()
	g := graph.New(6, false)
	for i := 0; i+1 < 6; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	top := &topology.Topology{Name: "line", Graph: g, Pos: make([]topology.Point, 6)}
	net, err := mec.NewNetwork(top,
		[]mec.Cloudlet{
			{Node: 1, NumVMs: 20, ComputeCap: 100, BandwidthCap: 1000, Alpha: 0.5, Beta: 0.5,
				FixedBandwidthCost: 0.2, ProcPricePerGB: 0.2, TransPricePerGBHop: 0.1},
			{Node: 4, NumVMs: 20, ComputeCap: 100, BandwidthCap: 1000, Alpha: 0.3, Beta: 0.2,
				FixedBandwidthCost: 0.3, ProcPricePerGB: 0.18, TransPricePerGBHop: 0.08},
		},
		[]mec.DataCenter{{Node: 5, ProcPricePerGB: 0.22, TransPricePerGBHop: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(uint64(n) * 977)
	providers := make([]mec.Provider, n)
	for l := range providers {
		providers[l] = mec.Provider{
			Requests:        10 + r.Intn(20),
			ComputePerReq:   r.FloatRange(0.01, 0.1),
			BandwidthPerReq: r.FloatRange(0.5, 2),
			InstCost:        r.FloatRange(0.5, 1.5),
			TrafficGBPerReq: r.FloatRange(0.01, 0.2),
			DataGB:          r.FloatRange(1, 5),
			UpdateRatio:     0.1,
			HomeDC:          0,
			AttachNode:      r.Intn(6),
		}
	}
	m, err := mec.NewMarket(net, providers)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func allRemote(m *mec.Market) mec.Placement {
	pl := make(mec.Placement, len(m.Providers))
	for l := range pl {
		pl[l] = mec.Remote
	}
	return pl
}

func TestBestResponseNeverWorse(t *testing.T) {
	m := smallMarket(t, 8)
	g := New(m)
	pl := allRemote(m)
	for l := range m.Providers {
		_, c := g.BestResponse(pl, l)
		if c > m.ProviderCost(pl, l)+1e-12 {
			t.Fatalf("best response of %d costs %v, worse than current %v", l, c, m.ProviderCost(pl, l))
		}
	}
}

func TestDynamicsConvergeToNash(t *testing.T) {
	m := smallMarket(t, 12)
	g := New(m)
	res, err := g.BestResponseDynamics(allRemote(m), rng.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("dynamics reported non-convergence")
	}
	if !g.IsNash(res.Placement) {
		t.Fatal("converged placement is not a Nash equilibrium")
	}
	if err := m.CheckCapacity(res.Placement, 0); err != nil {
		t.Fatalf("NE violates capacities: %v", err)
	}
}

// TestPotentialDecreasesAlongMoves is the Lemma-3 property: any strictly
// improving unilateral move strictly decreases the Rosenthal potential.
func TestPotentialDecreasesAlongMoves(t *testing.T) {
	m := smallMarket(t, 10)
	g := New(m)
	check := func(seed uint64) bool {
		r := rng.New(seed)
		pl := make(mec.Placement, len(m.Providers))
		nc := m.Net.NumCloudlets()
		for l := range pl {
			k := r.Intn(nc + 1)
			if k == nc {
				pl[l] = mec.Remote
			} else {
				pl[l] = k
			}
		}
		l := r.Intn(len(pl))
		s, c := g.BestResponse(pl, l)
		cur := m.ProviderCost(pl, l)
		if c >= cur-1e-12 || s == pl[l] {
			return true // no improving move from here
		}
		before := g.Potential(pl)
		moved := pl.Clone()
		moved[l] = s
		after := g.Potential(moved)
		// The potential must drop by exactly the player's improvement.
		return after < before-1e-12 && math.Abs((before-after)-(cur-c)) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedPlayersDoNotMove(t *testing.T) {
	m := smallMarket(t, 8)
	g := New(m)
	g.Pinned[0] = true
	g.Pinned[3] = true
	init := allRemote(m)
	init[0] = 1
	init[3] = 0
	res, err := g.BestResponseDynamics(init, rng.New(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement[0] != 1 || res.Placement[3] != 0 {
		t.Fatalf("pinned strategies changed: %v", res.Placement)
	}
}

func TestAllPinnedConvergesImmediately(t *testing.T) {
	m := smallMarket(t, 4)
	g := New(m)
	for l := range g.Pinned {
		g.Pinned[l] = true
	}
	res, err := g.BestResponseDynamics(allRemote(m), rng.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Moves != 0 {
		t.Fatalf("all-pinned game should be trivially converged: %+v", res)
	}
}

func TestCapacityAwareBestResponse(t *testing.T) {
	m := smallMarket(t, 2)
	// Shrink cloudlet 0 so only one provider fits.
	m.Net.Cloudlets[0].ComputeCap = m.Providers[0].ComputeDemand() * 1.2
	m.Net.Cloudlets[1].ComputeCap = 1e9
	g := New(m)
	pl := mec.Placement{0, mec.Remote}
	s, _ := g.BestResponse(pl, 1)
	if s == 0 {
		t.Fatal("best response chose a full cloudlet")
	}
	// With capacity awareness off it may choose it.
	g.CapacityAware = false
	s2, _ := g.BestResponse(pl, 1)
	_ = s2 // no assertion: cloudlet 0 may or may not be cheapest
}

func TestDynamicsDeterministicGivenSeed(t *testing.T) {
	m := smallMarket(t, 15)
	g := New(m)
	r1, err := g.BestResponseDynamics(allRemote(m), rng.New(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.BestResponseDynamics(allRemote(m), rng.New(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	for l := range r1.Placement {
		if r1.Placement[l] != r2.Placement[l] {
			t.Fatalf("same seed produced different equilibria at provider %d", l)
		}
	}
}

func TestExactOptimumSmall(t *testing.T) {
	m := smallMarket(t, 4)
	pl, cost, err := ExactOptimum(m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-m.SocialCost(pl)) > 1e-9 {
		t.Fatalf("reported optimum %v != recomputed %v", cost, m.SocialCost(pl))
	}
	// The optimum must not exceed the all-remote cost.
	if cost > m.SocialCost(allRemote(m))+1e-9 {
		t.Fatal("exact optimum worse than all-remote")
	}
	if err := m.CheckCapacity(pl, 0); err != nil {
		t.Fatalf("optimum violates capacity: %v", err)
	}
}

func TestExactOptimumSpaceLimit(t *testing.T) {
	m := smallMarket(t, 30)
	if _, _, err := ExactOptimum(m, 1000); err == nil {
		t.Fatal("space limit not enforced")
	}
}

// TestNashAtLeastOptimum: any Nash equilibrium's social cost is >= OPT, and
// the realized PoA is finite and >= 1.
func TestNashAtLeastOptimum(t *testing.T) {
	m := smallMarket(t, 5)
	g := New(m)
	_, opt, err := ExactOptimum(m, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	_, worst, err := g.WorstNashSocialCost(allRemote(m), rng.New(3), 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if worst < opt-1e-9 {
		t.Fatalf("worst NE cost %v below exact optimum %v", worst, opt)
	}
	poa, err := g.EmpiricalPoA(allRemote(m), opt, 20, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if poa < 1-1e-9 {
		t.Fatalf("empirical PoA %v below 1", poa)
	}
}

func TestPoABoundProperties(t *testing.T) {
	// The bound decreases as the coordinated fraction ξ grows.
	prev := math.Inf(1)
	for _, xi := range []float64{0, 0.25, 0.5, 0.75, 1} {
		b := PoABound(2, 3, xi)
		if b <= 0 || math.IsInf(b, 0) || math.IsNaN(b) {
			t.Fatalf("PoABound(2,3,%v) = %v", xi, b)
		}
		if b > prev+1e-9 {
			t.Fatalf("PoA bound not monotone in xi: %v then %v", prev, b)
		}
		prev = b
	}
	if !math.IsInf(PoABound(0, 1, 0.5), 1) {
		t.Fatal("degenerate delta should give +Inf")
	}
}

// TestRealWorkloadDynamics runs the full generated workload through the
// dynamics as an integration check.
func TestRealWorkloadDynamics(t *testing.T) {
	cfg := workload.Default(9)
	cfg.NumProviders = 50
	m, err := workload.GenerateGTITM(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := New(m)
	res, err := g.BestResponseDynamics(allRemote(m), rng.New(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsNash(res.Placement) {
		t.Fatal("workload dynamics did not reach Nash")
	}
	if err := m.CheckCapacity(res.Placement, 0); err != nil {
		t.Fatalf("capacity violated: %v", err)
	}
	// Selfish caching should beat everyone-remote in social cost here (the
	// market is lightly loaded), sanity-checking that caching is rational.
	if m.SocialCost(res.Placement) >= m.SocialCost(allRemote(m)) {
		t.Fatal("equilibrium no better than all-remote on a lightly loaded market")
	}
}

func TestWorstNashValidatesBase(t *testing.T) {
	m := smallMarket(t, 3)
	g := New(m)
	if _, _, err := g.WorstNashSocialCost(mec.Placement{0}, rng.New(1), 1, 0); err == nil {
		t.Fatal("short base placement accepted")
	}
}

func BenchmarkBestResponseDynamics100(b *testing.B) {
	cfg := workload.Default(4)
	cfg.NumProviders = 100
	m, err := workload.GenerateGTITM(250, cfg)
	if err != nil {
		b.Fatal(err)
	}
	g := New(m)
	init := make(mec.Placement, len(m.Providers))
	for l := range init {
		init[l] = mec.Remote
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.BestResponseDynamics(init, rng.New(uint64(i)), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPriceOfStability(t *testing.T) {
	m := smallMarket(t, 5)
	g := New(m)
	_, opt, err := ExactOptimum(m, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	base := allRemote(m)
	_, best, err := g.BestNashSocialCost(base, rng.New(3), 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, worst, err := g.WorstNashSocialCost(base, rng.New(3), 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best > worst+1e-9 {
		t.Fatalf("best NE %v exceeds worst NE %v", best, worst)
	}
	if best < opt-1e-9 {
		t.Fatalf("best NE %v below optimum %v", best, opt)
	}
	pos, err := g.EmpiricalPoS(base, opt, 20, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	poa, err := g.EmpiricalPoA(base, opt, 20, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pos < 1-1e-9 || pos > poa+1e-9 {
		t.Fatalf("PoS %v outside [1, PoA=%v]", pos, poa)
	}
	if _, err := g.EmpiricalPoS(base, 0, 1, 0, 1); err == nil {
		t.Fatal("zero reference optimum accepted")
	}
}
