package game

import (
	"math"
	"runtime"
	"testing"

	"mecache/internal/graph"
	"mecache/internal/mec"
	"mecache/internal/rng"
	"mecache/internal/topology"
)

// tightMarket builds a market engineered to trigger the historical
// capacity bug: remote service is so expensive that an overloaded tenant
// would rather stay in a congested cloudlet than withdraw, and each
// cloudlet fits exactly one of the n providers, so any random start that
// stacks providers used to freeze into a capacity-violating "equilibrium".
func tightMarket(t *testing.T, n int) *mec.Market {
	t.Helper()
	g := graph.New(5, false)
	for i := 0; i+1 < 5; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	top := &topology.Topology{Name: "tight", Graph: g, Pos: make([]topology.Point, 5)}
	net, err := mec.NewNetwork(top,
		[]mec.Cloudlet{
			{Node: 1, NumVMs: 1, ComputeCap: 1.2, BandwidthCap: 12, Alpha: 0.1, Beta: 0.1,
				FixedBandwidthCost: 0.1, ProcPricePerGB: 0.1, TransPricePerGBHop: 0.05},
			{Node: 3, NumVMs: 1, ComputeCap: 1.2, BandwidthCap: 12, Alpha: 0.1, Beta: 0.1,
				FixedBandwidthCost: 0.1, ProcPricePerGB: 0.1, TransPricePerGBHop: 0.05},
		},
		// Remote is prohibitively expensive: congestion never outweighs it.
		[]mec.DataCenter{{Node: 4, ProcPricePerGB: 5, TransPricePerGBHop: 5}})
	if err != nil {
		t.Fatal(err)
	}
	providers := make([]mec.Provider, n)
	for l := range providers {
		providers[l] = mec.Provider{
			Requests: 10, ComputePerReq: 0.1, BandwidthPerReq: 1,
			InstCost: 0.5, TrafficGBPerReq: 0.05, DataGB: 1, UpdateRatio: 0.1,
			HomeDC: 0, AttachNode: l % 5,
		}
	}
	m, err := mec.NewMarket(net, providers)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestWorstNashNilRngDoesNotPanic is the regression for the nil-rng panic:
// extremeNash used to call r.Intn unguarded, so a nil source crashed
// instead of falling back to a seeded default like BestResponseDynamics.
func TestWorstNashNilRngDoesNotPanic(t *testing.T) {
	m := smallMarket(t, 6)
	g := New(m)
	pl, cost, err := g.WorstNashSocialCost(allRemote(m), nil, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pl == nil || cost <= 0 {
		t.Fatalf("nil-rng search returned %v / %v", pl, cost)
	}
	// The fallback must be deterministic: two nil-rng runs agree.
	pl2, cost2, err := g.WorstNashSocialCost(allRemote(m), nil, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cost2 != cost {
		t.Fatalf("nil-rng fallback not deterministic: %v vs %v", cost, cost2)
	}
	_ = pl2
}

// TestExtremeNashEquilibriaAreCapacityFeasible is the regression for the
// capacity bug: every equilibrium returned by the worst/best searches must
// satisfy Eq. 4/5 exactly, even on a market whose overloaded tenants would
// never voluntarily withdraw.
func TestExtremeNashEquilibriaAreCapacityFeasible(t *testing.T) {
	m := tightMarket(t, 4) // 4 providers, 2 single-slot cloudlets
	g := New(m)
	for seed := uint64(0); seed < 20; seed++ {
		worst, _, err := g.WorstNashSocialCost(allRemote(m), rng.New(seed), 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CheckCapacity(worst, 0); err != nil {
			t.Fatalf("seed %d: worst NE violates capacity: %v", seed, err)
		}
		best, _, err := g.BestNashSocialCost(allRemote(m), rng.New(seed), 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CheckCapacity(best, 0); err != nil {
			t.Fatalf("seed %d: best NE violates capacity: %v", seed, err)
		}
	}
}

// TestStuckOverloadWouldNotMove documents the mechanism the fix closes:
// from an infeasible stacked start, dynamics freeze with the overload in
// place (remote is too expensive, the other cloudlet is full), which is
// exactly why random starts must be capacity-feasible.
func TestStuckOverloadWouldNotMove(t *testing.T) {
	m := tightMarket(t, 4)
	g := New(m)
	init := mec.Placement{0, 0, 0, 1} // three tenants stacked on cloudlet 0
	res, err := g.BestResponseDynamics(init, rng.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCapacity(res.Placement, 0); err == nil {
		t.Skip("market no longer reproduces the stuck overload; tighten tightMarket")
	}
}

// TestExtremeNashToleratesInfeasiblePinnedBase: when the leader's pinned
// strategies already overload a cloudlet (Shmoys-Tardos' additive overload
// can do this), the search must not reject every equilibrium — the selfish
// players cannot undo the leader's overload.
func TestExtremeNashToleratesInfeasiblePinnedBase(t *testing.T) {
	m := tightMarket(t, 4)
	g := New(m)
	g.Pinned[0] = true
	g.Pinned[1] = true
	base := mec.Placement{0, 0, mec.Remote, mec.Remote} // pinned overload
	pl, _, err := g.WorstNashSocialCost(base, rng.New(3), 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pl[0] != 0 || pl[1] != 0 {
		t.Fatalf("pinned strategies moved: %v", pl)
	}
}

// TestWorstNashDeterministicAcrossParallelism: the restart search must
// return bit-for-bit identical results at every worker-pool width.
func TestWorstNashDeterministicAcrossParallelism(t *testing.T) {
	m := smallMarket(t, 14)
	base := allRemote(m)
	type outcome struct {
		pl   mec.Placement
		cost uint64
	}
	run := func(par int) outcome {
		g := New(m)
		g.Parallelism = par
		pl, cost, err := g.WorstNashSocialCost(base, rng.New(11), 16, 0)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{pl: pl, cost: math.Float64bits(cost)}
	}
	want := run(1)
	for _, par := range []int{4, runtime.NumCPU(), 0} {
		got := run(par)
		if got.cost != want.cost {
			t.Fatalf("parallelism %d: cost bits %x != serial %x", par, got.cost, want.cost)
		}
		for l := range want.pl {
			if got.pl[l] != want.pl[l] {
				t.Fatalf("parallelism %d: placement diverges at provider %d", par, l)
			}
		}
	}
}

// TestEmpiricalPoSDeterministicAcrossParallelism covers the seeded facade
// path the figures use.
func TestEmpiricalPoSDeterministicAcrossParallelism(t *testing.T) {
	m := smallMarket(t, 8)
	base := allRemote(m)
	_, opt, err := ExactOptimum(m, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	run := func(par int) uint64 {
		g := New(m)
		g.Parallelism = par
		pos, err := g.EmpiricalPoS(base, opt, 12, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		return math.Float64bits(pos)
	}
	want := run(1)
	for _, par := range []int{4, runtime.NumCPU()} {
		if got := run(par); got != want {
			t.Fatalf("parallelism %d: PoS bits %x != serial %x", par, got, want)
		}
	}
}
