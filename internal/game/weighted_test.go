package game

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/mec"
	"mecache/internal/rng"
	"mecache/internal/workload"
)

func TestWeightedDefaultWeightsMeanOne(t *testing.T) {
	m := smallMarket(t, 10)
	g, err := NewWeighted(m)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, w := range g.Weights {
		if w <= 0 {
			t.Fatalf("non-positive weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum/float64(len(g.Weights))-1) > 1e-12 {
		t.Fatalf("weights not normalized to mean 1: mean %v", sum/float64(len(g.Weights)))
	}
}

func TestWeightedRejectsNonlinearModel(t *testing.T) {
	m := smallMarket(t, 4)
	if err := m.SetCongestionModel(mec.PolynomialCongestion{Degree: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWeighted(m); err == nil {
		t.Fatal("weighted game accepted a non-linear model")
	}
}

func TestSetWeightsValidation(t *testing.T) {
	m := smallMarket(t, 3)
	g, err := NewWeighted(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetWeights([]float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := g.SetWeights([]float64{1, -1, 2}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := g.SetWeights([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedPotentialExact is the theory check: a unilateral move changes
// the weighted potential by exactly w_l times the mover's cost change.
func TestWeightedPotentialExact(t *testing.T) {
	m := smallMarket(t, 9)
	g, err := NewWeighted(m)
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed uint64) bool {
		r := rng.New(seed)
		nc := m.Net.NumCloudlets()
		pl := make(mec.Placement, len(m.Providers))
		for l := range pl {
			k := r.Intn(nc + 1)
			if k == nc {
				pl[l] = mec.Remote
			} else {
				pl[l] = k
			}
		}
		l := r.Intn(len(pl))
		// Any move (not only improving ones) must satisfy the identity.
		target := r.Intn(nc + 1)
		moved := pl.Clone()
		if target == nc {
			moved[l] = mec.Remote
		} else {
			moved[l] = target
		}
		if moved[l] == pl[l] {
			return true
		}
		dPhi := g.Potential(moved) - g.Potential(pl)
		dCost := g.PlayerCost(moved, l) - g.PlayerCost(pl, l)
		return math.Abs(dPhi-g.Weights[l]*dCost) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedDynamicsConverge(t *testing.T) {
	m := smallMarket(t, 14)
	g, err := NewWeighted(m)
	if err != nil {
		t.Fatal(err)
	}
	init := allRemote(m)
	res, err := g.BestResponseDynamics(init, rng.New(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("weighted dynamics did not converge")
	}
	if !g.IsNash(res.Placement) {
		t.Fatal("weighted equilibrium fails the Nash check")
	}
	if err := m.CheckCapacity(res.Placement, 0); err != nil {
		t.Fatalf("capacity violated: %v", err)
	}
}

// TestUnitWeightsMatchSymmetricGame: with all weights 1 the weighted game
// coincides with the symmetric (count-based) game.
func TestUnitWeightsMatchSymmetricGame(t *testing.T) {
	m := smallMarket(t, 8)
	wg, err := NewWeighted(m)
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float64, len(m.Providers))
	for i := range ones {
		ones[i] = 1
	}
	if err := wg.SetWeights(ones); err != nil {
		t.Fatal(err)
	}
	sg := New(m)
	check := func(seed uint64) bool {
		r := rng.New(seed)
		nc := m.Net.NumCloudlets()
		pl := make(mec.Placement, len(m.Providers))
		for l := range pl {
			k := r.Intn(nc + 1)
			if k == nc {
				pl[l] = mec.Remote
			} else {
				pl[l] = k
			}
		}
		if math.Abs(wg.SocialCost(pl)-m.SocialCost(pl)) > 1e-9 {
			return false
		}
		for l := range pl {
			if math.Abs(wg.PlayerCost(pl, l)-m.ProviderCost(pl, l)) > 1e-9 {
				return false
			}
		}
		_, wc := wg.BestResponse(pl, 0)
		_, sc := sg.BestResponse(pl, 0)
		return math.Abs(wc-sc) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedPinnedPlayers(t *testing.T) {
	m := smallMarket(t, 6)
	g, err := NewWeighted(m)
	if err != nil {
		t.Fatal(err)
	}
	g.Pinned[2] = true
	init := allRemote(m)
	init[2] = 1
	res, err := g.BestResponseDynamics(init, rng.New(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement[2] != 1 {
		t.Fatal("pinned player moved in weighted dynamics")
	}
}

// TestHeavyPlayersRepel: a heavy provider on a cloudlet makes it less
// attractive than the same cloudlet hosting a light provider.
func TestHeavyPlayersRepel(t *testing.T) {
	m := smallMarket(t, 3)
	g, err := NewWeighted(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetWeights([]float64{10, 0.1, 1}); err != nil {
		t.Fatal(err)
	}
	heavyOn0 := mec.Placement{0, mec.Remote, mec.Remote}
	lightOn0 := mec.Placement{mec.Remote, 0, mec.Remote}
	// Player 2's cost of joining cloudlet 0 alongside the heavy tenant
	// must exceed joining alongside the light one.
	joinHeavy := heavyOn0.Clone()
	joinHeavy[2] = 0
	joinLight := lightOn0.Clone()
	joinLight[2] = 0
	if g.PlayerCost(joinHeavy, 2) <= g.PlayerCost(joinLight, 2) {
		t.Fatal("heavy tenant did not raise the congestion charge")
	}
}

func BenchmarkWeightedDynamics(b *testing.B) {
	cfg := workload.Default(4)
	cfg.NumProviders = 60
	m, err := workload.GenerateGTITM(120, cfg)
	if err != nil {
		b.Fatal(err)
	}
	g, err := NewWeighted(m)
	if err != nil {
		b.Fatal(err)
	}
	init := make(mec.Placement, len(m.Providers))
	for l := range init {
		init[l] = mec.Remote
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.BestResponseDynamics(init, rng.New(uint64(i)), 0); err != nil {
			b.Fatal(err)
		}
	}
}
