package gap

import (
	"fmt"
	"math"
	"sort"

	"mecache/internal/lp"
	"mecache/internal/matching"
)

// lpRelaxation builds and solves the GAP LP relaxation:
//
//	min  Σ c_ji x_ji
//	s.t. Σ_i x_ji = 1            for every item j
//	     Σ_j w_ji x_ji <= Cap_i  for every bin i
//	     x >= 0, forbidden/oversized pairs excluded
//
// It returns the fractional solution as x[j][i] plus the LP objective.
func lpRelaxation(ins *Instance) ([][]float64, float64, error) {
	n, m := ins.NumItems(), ins.NumBins()
	cost := ins.pruneOversized()

	// Compact variable indexing over permitted pairs.
	varIdx := make([][]int, n)
	numVars := 0
	for j := 0; j < n; j++ {
		varIdx[j] = make([]int, m)
		for i := 0; i < m; i++ {
			if math.IsInf(cost[j][i], 1) {
				varIdx[j][i] = -1
			} else {
				varIdx[j][i] = numVars
				numVars++
			}
		}
	}
	if numVars == 0 {
		return nil, 0, fmt.Errorf("gap: no permitted item-bin pairs")
	}

	p := lp.NewProblem(numVars)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			if v := varIdx[j][i]; v >= 0 {
				if err := p.SetObjectiveCoeff(v, cost[j][i]); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	for j := 0; j < n; j++ {
		var idx []int
		var val []float64
		for i := 0; i < m; i++ {
			if v := varIdx[j][i]; v >= 0 {
				idx = append(idx, v)
				val = append(val, 1)
			}
		}
		if len(idx) == 0 {
			return nil, 0, fmt.Errorf("gap: item %d fits no bin", j)
		}
		if err := p.AddSparseConstraint(idx, val, lp.EQ, 1); err != nil {
			return nil, 0, err
		}
	}
	for i := 0; i < m; i++ {
		var idx []int
		var val []float64
		for j := 0; j < n; j++ {
			if v := varIdx[j][i]; v >= 0 {
				idx = append(idx, v)
				val = append(val, ins.Weight[j][i])
			}
		}
		if len(idx) == 0 {
			continue
		}
		if err := p.AddSparseConstraint(idx, val, lp.LE, ins.Cap[i]); err != nil {
			return nil, 0, err
		}
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, 0, fmt.Errorf("gap: LP relaxation: %w", err)
	}
	x := make([][]float64, n)
	for j := 0; j < n; j++ {
		x[j] = make([]float64, m)
		for i := 0; i < m; i++ {
			if v := varIdx[j][i]; v >= 0 {
				x[j][i] = sol.X[v]
			}
		}
	}
	return x, sol.Objective, nil
}

// LPLowerBound returns the optimum of the GAP LP relaxation, a lower bound
// on the integral optimum.
func LPLowerBound(ins *Instance) (float64, error) {
	if err := ins.Validate(); err != nil {
		return 0, err
	}
	_, obj, err := lpRelaxation(ins)
	return obj, err
}

// slot is one capacity slot of a bin in the Shmoys-Tardos rounding graph.
type slot struct {
	bin   int
	items []int // items with positive fraction in this slot
}

// SolveShmoysTardos runs the Shmoys-Tardos LP-rounding approximation [34].
// The returned assignment has cost at most the LP optimum (hence at most
// the integral optimum) and loads each bin by at most Cap_i plus the
// largest single item weight placed there — the classical additive
// guarantee behind the paper's 2·δ·κ ratio for Appro.
func SolveShmoysTardos(ins *Instance) (*Assignment, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	return roundShmoysTardos(ins, nil)
}

// roundShmoysTardos is the shared LP-solve-and-round pipeline behind both
// the cold and warm entry points. The min-cost matching is computed per
// connected component of the item-slot graph: the Jonker-Volgenant search
// never leaves the component of the row it augments (every dual, tree, and
// matching cell it reads or writes is column- or row-local to that
// component, except the write-only sentinel column), so the union of
// per-component matchings is operation-for-operation identical to the
// global matching — which is what lets a warm re-round reuse untouched
// components byte-identically. st non-nil enables that reuse.
func roundShmoysTardos(ins *Instance, st *RoundingState) (*Assignment, error) {
	n, m := ins.NumItems(), ins.NumBins()
	x, _, err := lpRelaxation(ins)
	if err != nil {
		return nil, err
	}

	// Build the slot graph: bin i is split into ceil(Σ_j x_ji) slots; items
	// fractionally assigned to the bin are poured into slots in order of
	// decreasing weight, splitting items across slot boundaries.
	const tiny = 1e-9
	var slots []slot
	for i := 0; i < m; i++ {
		type frac struct {
			item int
			x    float64
		}
		var fr []frac
		total := 0.0
		for j := 0; j < n; j++ {
			if x[j][i] > tiny {
				fr = append(fr, frac{item: j, x: x[j][i]})
				total += x[j][i]
			}
		}
		if len(fr) == 0 {
			continue
		}
		sort.Slice(fr, func(a, b int) bool {
			wa, wb := ins.Weight[fr[a].item][i], ins.Weight[fr[b].item][i]
			if wa != wb {
				return wa > wb
			}
			return fr[a].item < fr[b].item
		})
		k := int(math.Ceil(total - tiny))
		if k < 1 {
			k = 1
		}
		binSlots := make([]slot, k)
		for s := range binSlots {
			binSlots[s].bin = i
		}
		cum := 0.0
		for _, f := range fr {
			lo := cum
			cum += f.x
			// The item spans slots floor(lo) .. min(k-1, floor(cum)).
			s0 := int(lo + tiny)
			s1 := int(cum - tiny)
			if s1 >= k {
				s1 = k - 1
			}
			for s := s0; s <= s1; s++ {
				binSlots[s].items = append(binSlots[s].items, f.item)
			}
		}
		slots = append(slots, binSlots...)
	}

	// Min-cost perfect matching of items to slots, one connected component
	// of the item-slot graph at a time. Components are found by union-find
	// over items (slots tie their items together), with the smaller root
	// winning so a component's representative is its smallest item index.
	parent := make([]int, n)
	for j := range parent {
		parent[j] = j
	}
	find := func(a int) int {
		for parent[a] != a {
			parent[a] = parent[parent[a]]
			a = parent[a]
		}
		return a
	}
	for _, sl := range slots {
		for t := 1; t < len(sl.items); t++ {
			ra, rb := find(sl.items[0]), find(sl.items[t])
			if ra != rb {
				if rb < ra {
					ra, rb = rb, ra
				}
				parent[rb] = ra
			}
		}
	}
	type component struct {
		items []int // ascending
		slots []int // indices into slots, ascending (global slot order)
		fp    uint64
	}
	var comps []component
	compOf := make(map[int]int) // representative item -> comps index
	for j := 0; j < n; j++ {
		r := find(j)
		ci, ok := compOf[r]
		if !ok {
			ci = len(comps)
			compOf[r] = ci
			comps = append(comps, component{})
		}
		comps[ci].items = append(comps[ci].items, j)
	}
	for s, sl := range slots {
		ci := compOf[find(sl.items[0])]
		comps[ci].slots = append(comps[ci].slots, s)
	}
	for ci := range comps {
		c := &comps[ci]
		h := newFP()
		for _, j := range c.items {
			h.int(j)
		}
		h.int(len(c.slots))
		for _, s := range c.slots {
			sl := slots[s]
			h.int(sl.bin)
			h.int(len(sl.items))
			for _, j := range sl.items {
				h.int(j)
				h.float(ins.Cost[j][sl.bin])
			}
		}
		c.fp = h.a ^ (h.b * 1099511628211)
	}

	bin := make([]int, n)
	rowOf := make([]int, n) // item -> row index within its component matrix
	reused := 0
	for _, c := range comps {
		rep := c.items[0]
		if st != nil && st.compFP != nil {
			if fp, ok := st.compFP[rep]; ok && fp == c.fp && c.items[len(c.items)-1] < len(st.itemBin) {
				// Unchanged component: its matching inputs are identical to
				// the cached solve, so its rounded bins are pinned as-is.
				for _, j := range c.items {
					bin[j] = st.itemBin[j]
				}
				reused++
				continue
			}
		}
		for r, j := range c.items {
			rowOf[j] = r
		}
		costM := make([][]float64, len(c.items))
		for r := range costM {
			costM[r] = make([]float64, len(c.slots))
			for s := range costM[r] {
				costM[r][s] = matching.Forbidden
			}
		}
		for si, s := range c.slots {
			sl := slots[s]
			for _, j := range sl.items {
				costM[rowOf[j]][si] = ins.Cost[j][sl.bin]
			}
		}
		assign, _, err := matching.MinCostAssignment(costM)
		if err != nil {
			// Floating-point noise in the LP can, in principle, break Hall's
			// condition on the slot graph; fall back to the greedy heuristic
			// rather than failing the whole pipeline. The cold solve hits the
			// same fallback (a deficient component fails the global matching
			// too), so warm and cold still agree; cached components are
			// dropped since the fallback bypasses the matching entirely.
			if st != nil {
				st.compFP = nil
				st.LastCompReused, st.LastCompTotal = 0, len(comps)
			}
			greedy, gerr := SolveGreedy(ins)
			if gerr != nil {
				return nil, fmt.Errorf("gap: rounding matching failed (%v) and greedy fallback failed: %w", err, gerr)
			}
			return greedy, nil
		}
		for r, j := range c.items {
			bin[j] = slots[c.slots[assign[r]]].bin
		}
	}
	if st != nil {
		st.LastCompReused, st.LastCompTotal = reused, len(comps)
		if st.compFP == nil {
			st.compFP = make(map[int]uint64, len(comps))
		} else {
			clear(st.compFP)
		}
		for _, c := range comps {
			st.compFP[c.items[0]] = c.fp
		}
		st.itemBin = append(st.itemBin[:0], bin...)
	}
	total, err := ins.CostOf(bin)
	if err != nil {
		return nil, err
	}
	return &Assignment{Bin: bin, Cost: total}, nil
}
