package gap

import (
	"fmt"
	"math"
	"sort"

	"mecache/internal/lp"
	"mecache/internal/matching"
)

// lpRelaxation builds and solves the GAP LP relaxation:
//
//	min  Σ c_ji x_ji
//	s.t. Σ_i x_ji = 1            for every item j
//	     Σ_j w_ji x_ji <= Cap_i  for every bin i
//	     x >= 0, forbidden/oversized pairs excluded
//
// It returns the fractional solution as x[j][i] plus the LP objective.
func lpRelaxation(ins *Instance) ([][]float64, float64, error) {
	n, m := ins.NumItems(), ins.NumBins()
	cost := ins.pruneOversized()

	// Compact variable indexing over permitted pairs.
	varIdx := make([][]int, n)
	numVars := 0
	for j := 0; j < n; j++ {
		varIdx[j] = make([]int, m)
		for i := 0; i < m; i++ {
			if math.IsInf(cost[j][i], 1) {
				varIdx[j][i] = -1
			} else {
				varIdx[j][i] = numVars
				numVars++
			}
		}
	}
	if numVars == 0 {
		return nil, 0, fmt.Errorf("gap: no permitted item-bin pairs")
	}

	p := lp.NewProblem(numVars)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			if v := varIdx[j][i]; v >= 0 {
				if err := p.SetObjectiveCoeff(v, cost[j][i]); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	for j := 0; j < n; j++ {
		var idx []int
		var val []float64
		for i := 0; i < m; i++ {
			if v := varIdx[j][i]; v >= 0 {
				idx = append(idx, v)
				val = append(val, 1)
			}
		}
		if len(idx) == 0 {
			return nil, 0, fmt.Errorf("gap: item %d fits no bin", j)
		}
		if err := p.AddSparseConstraint(idx, val, lp.EQ, 1); err != nil {
			return nil, 0, err
		}
	}
	for i := 0; i < m; i++ {
		var idx []int
		var val []float64
		for j := 0; j < n; j++ {
			if v := varIdx[j][i]; v >= 0 {
				idx = append(idx, v)
				val = append(val, ins.Weight[j][i])
			}
		}
		if len(idx) == 0 {
			continue
		}
		if err := p.AddSparseConstraint(idx, val, lp.LE, ins.Cap[i]); err != nil {
			return nil, 0, err
		}
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, 0, fmt.Errorf("gap: LP relaxation: %w", err)
	}
	x := make([][]float64, n)
	for j := 0; j < n; j++ {
		x[j] = make([]float64, m)
		for i := 0; i < m; i++ {
			if v := varIdx[j][i]; v >= 0 {
				x[j][i] = sol.X[v]
			}
		}
	}
	return x, sol.Objective, nil
}

// LPLowerBound returns the optimum of the GAP LP relaxation, a lower bound
// on the integral optimum.
func LPLowerBound(ins *Instance) (float64, error) {
	if err := ins.Validate(); err != nil {
		return 0, err
	}
	_, obj, err := lpRelaxation(ins)
	return obj, err
}

// slot is one capacity slot of a bin in the Shmoys-Tardos rounding graph.
type slot struct {
	bin   int
	items []int // items with positive fraction in this slot
}

// SolveShmoysTardos runs the Shmoys-Tardos LP-rounding approximation [34].
// The returned assignment has cost at most the LP optimum (hence at most
// the integral optimum) and loads each bin by at most Cap_i plus the
// largest single item weight placed there — the classical additive
// guarantee behind the paper's 2·δ·κ ratio for Appro.
func SolveShmoysTardos(ins *Instance) (*Assignment, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	n, m := ins.NumItems(), ins.NumBins()
	x, _, err := lpRelaxation(ins)
	if err != nil {
		return nil, err
	}

	// Build the slot graph: bin i is split into ceil(Σ_j x_ji) slots; items
	// fractionally assigned to the bin are poured into slots in order of
	// decreasing weight, splitting items across slot boundaries.
	const tiny = 1e-9
	var slots []slot
	for i := 0; i < m; i++ {
		type frac struct {
			item int
			x    float64
		}
		var fr []frac
		total := 0.0
		for j := 0; j < n; j++ {
			if x[j][i] > tiny {
				fr = append(fr, frac{item: j, x: x[j][i]})
				total += x[j][i]
			}
		}
		if len(fr) == 0 {
			continue
		}
		sort.Slice(fr, func(a, b int) bool {
			wa, wb := ins.Weight[fr[a].item][i], ins.Weight[fr[b].item][i]
			if wa != wb {
				return wa > wb
			}
			return fr[a].item < fr[b].item
		})
		k := int(math.Ceil(total - tiny))
		if k < 1 {
			k = 1
		}
		binSlots := make([]slot, k)
		for s := range binSlots {
			binSlots[s].bin = i
		}
		cum := 0.0
		for _, f := range fr {
			lo := cum
			cum += f.x
			// The item spans slots floor(lo) .. min(k-1, floor(cum)).
			s0 := int(lo + tiny)
			s1 := int(cum - tiny)
			if s1 >= k {
				s1 = k - 1
			}
			for s := s0; s <= s1; s++ {
				binSlots[s].items = append(binSlots[s].items, f.item)
			}
		}
		slots = append(slots, binSlots...)
	}

	// Min-cost perfect matching of items to slots.
	costM := make([][]float64, n)
	for j := range costM {
		costM[j] = make([]float64, len(slots))
		for s := range costM[j] {
			costM[j][s] = matching.Forbidden
		}
	}
	for s, sl := range slots {
		for _, j := range sl.items {
			costM[j][s] = ins.Cost[j][sl.bin]
		}
	}
	assign, _, err := matching.MinCostAssignment(costM)
	if err != nil {
		// Floating-point noise in the LP can, in principle, break Hall's
		// condition on the slot graph; fall back to the greedy heuristic
		// rather than failing the whole pipeline.
		greedy, gerr := SolveGreedy(ins)
		if gerr != nil {
			return nil, fmt.Errorf("gap: rounding matching failed (%v) and greedy fallback failed: %w", err, gerr)
		}
		return greedy, nil
	}
	bin := make([]int, n)
	for j, s := range assign {
		bin[j] = slots[s].bin
	}
	total, err := ins.CostOf(bin)
	if err != nil {
		return nil, err
	}
	return &Assignment{Bin: bin, Cost: total}, nil
}
