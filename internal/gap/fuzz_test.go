package gap

import (
	"testing"

	"mecache/internal/rng"
)

// FuzzShmoysTardos drives the LP-rounding pipeline with randomized feasible
// instances: it must terminate without panicking, assign every item, and
// respect the classical guarantees (cost <= LP bound on the primary path,
// load <= cap + max item weight).
func FuzzShmoysTardos(f *testing.F) {
	f.Add(uint64(1), uint8(5), uint8(3))
	f.Add(uint64(99), uint8(8), uint8(4))
	f.Add(uint64(1<<40), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, mRaw uint8) {
		r := rng.New(seed)
		n := 1 + int(nRaw%8)
		m := 2 + int(mRaw%4)
		ins := &Instance{
			Cost:   make([][]float64, n),
			Weight: make([][]float64, n),
			Cap:    make([]float64, m),
		}
		for j := 0; j < n; j++ {
			ins.Cost[j] = make([]float64, m)
			ins.Weight[j] = make([]float64, m)
			for i := 0; i < m; i++ {
				ins.Cost[j][i] = r.FloatRange(0, 20)
				ins.Weight[j][i] = r.FloatRange(0.5, 5)
			}
		}
		for i := 0; i < m; i++ {
			// Generous capacities keep the LP feasible; tight-capacity
			// infeasibility is exercised separately in unit tests.
			ins.Cap[i] = r.FloatRange(5, 10) * float64(n) / float64(m) * 2
		}
		// An item heavier than every bin's capacity makes the instance
		// genuinely infeasible after oversize pruning; the solver must
		// report that as an error, not panic.
		feasible := true
		for j := 0; j < n && feasible; j++ {
			fits := false
			for i := 0; i < m; i++ {
				if ins.Weight[j][i] <= ins.Cap[i] {
					fits = true
					break
				}
			}
			feasible = fits
		}
		sol, err := SolveShmoysTardos(ins)
		if !feasible {
			if err == nil {
				t.Fatal("infeasible instance solved")
			}
			return
		}
		if err != nil {
			t.Fatalf("ShmoysTardos failed on feasible instance: %v", err)
		}
		if len(sol.Bin) != n {
			t.Fatalf("assigned %d of %d items", len(sol.Bin), n)
		}
		if _, err := ins.CostOf(sol.Bin); err != nil {
			t.Fatalf("invalid assignment: %v", err)
		}
		if err := ins.CheckFeasible(sol.Bin, ins.MaxWeight()); err != nil {
			t.Fatalf("additive capacity guarantee violated: %v", err)
		}
		lb, err := LPLowerBound(ins)
		if err != nil {
			t.Fatalf("LP bound: %v", err)
		}
		if sol.Cost > lb+1e-6 {
			// The greedy fallback path may exceed the LP bound but must
			// then respect exact capacities.
			if err := ins.CheckFeasible(sol.Bin, 0); err != nil {
				t.Fatalf("cost %v above LP bound %v and capacities violated: %v", sol.Cost, lb, err)
			}
		}
	})
}
