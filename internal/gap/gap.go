// Package gap models the Generalized Assignment Problem and implements the
// solvers the paper's Appro algorithm relies on:
//
//   - SolveShmoysTardos: the LP-rounding 2-approximation of Shmoys and
//     Tardos [34] that Algorithm 1 (Appro) invokes. The LP relaxation is
//     solved with the internal simplex; the fractional solution is rounded
//     by decomposing each bin into slots and computing a min-cost bipartite
//     matching of items to slots. The returned assignment costs no more
//     than the LP optimum and overloads any bin by at most the largest
//     item assigned to it (the classical additive guarantee, which yields
//     the paper's multiplicative 2 after the virtual-cloudlet scaling).
//   - SolveTransport: an exact min-cost-flow fast path for slotted
//     instances (every item occupies exactly one slot of its bin). The
//     paper's virtual-cloudlet reduction — "each virtual cloudlet being
//     restricted to be able to only cache a single service instance" —
//     produces exactly this shape, so the large experiments use it.
//   - SolveGreedy: a regret-based heuristic, used as a baseline and as a
//     fallback.
//   - SolveExact: branch-and-bound for small instances, used by tests to
//     certify approximation ratios.
package gap

import (
	"fmt"
	"math"
	"sort"
)

// Forbidden marks an (item, bin) pair that must not be used.
var Forbidden = math.Inf(1)

// Instance is a GAP instance: assign each of n items to one of m bins,
// minimizing total cost, subject to per-bin capacity.
type Instance struct {
	// Cost[j][i] is the cost of placing item j in bin i; Forbidden excludes
	// the pair.
	Cost [][]float64
	// Weight[j][i] is the capacity consumed by item j in bin i.
	Weight [][]float64
	// Cap[i] is the capacity of bin i.
	Cap []float64
}

// NumItems returns the number of items.
func (ins *Instance) NumItems() int { return len(ins.Cost) }

// NumBins returns the number of bins.
func (ins *Instance) NumBins() int { return len(ins.Cap) }

// Validate checks structural consistency.
func (ins *Instance) Validate() error {
	n, m := ins.NumItems(), ins.NumBins()
	if len(ins.Weight) != n {
		return fmt.Errorf("gap: %d cost rows but %d weight rows", n, len(ins.Weight))
	}
	for j := 0; j < n; j++ {
		if len(ins.Cost[j]) != m || len(ins.Weight[j]) != m {
			return fmt.Errorf("gap: item %d has %d costs / %d weights, want %d", j, len(ins.Cost[j]), len(ins.Weight[j]), m)
		}
		for i := 0; i < m; i++ {
			if math.IsNaN(ins.Cost[j][i]) || math.IsInf(ins.Cost[j][i], -1) {
				return fmt.Errorf("gap: invalid cost at item %d bin %d: %v", j, i, ins.Cost[j][i])
			}
			if w := ins.Weight[j][i]; w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("gap: invalid weight at item %d bin %d: %v", j, i, w)
			}
		}
	}
	for i, c := range ins.Cap {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("gap: invalid capacity of bin %d: %v", i, c)
		}
	}
	return nil
}

// Assignment is a solution: Bin[j] is the bin of item j.
type Assignment struct {
	Bin  []int
	Cost float64
}

// CostOf recomputes the total cost of an assignment vector.
func (ins *Instance) CostOf(bin []int) (float64, error) {
	if len(bin) != ins.NumItems() {
		return 0, fmt.Errorf("gap: assignment covers %d items, instance has %d", len(bin), ins.NumItems())
	}
	total := 0.0
	for j, i := range bin {
		if i < 0 || i >= ins.NumBins() {
			return 0, fmt.Errorf("gap: item %d assigned to invalid bin %d", j, i)
		}
		c := ins.Cost[j][i]
		if math.IsInf(c, 1) {
			return 0, fmt.Errorf("gap: item %d assigned to forbidden bin %d", j, i)
		}
		total += c
	}
	return total, nil
}

// Loads returns the capacity consumption of every bin under an assignment.
func (ins *Instance) Loads(bin []int) []float64 {
	loads := make([]float64, ins.NumBins())
	for j, i := range bin {
		if i >= 0 && i < ins.NumBins() {
			loads[i] += ins.Weight[j][i]
		}
	}
	return loads
}

// CheckFeasible verifies the assignment respects capacities inflated by
// slack (slack = 0 means exact; the Shmoys-Tardos guarantee allows one
// extra max-weight item per bin, which callers express via slack).
func (ins *Instance) CheckFeasible(bin []int, slack float64) error {
	if _, err := ins.CostOf(bin); err != nil {
		return err
	}
	loads := ins.Loads(bin)
	for i, load := range loads {
		if load > ins.Cap[i]+slack+1e-9 {
			return fmt.Errorf("gap: bin %d overloaded: load %v > cap %v + slack %v", i, load, ins.Cap[i], slack)
		}
	}
	return nil
}

// MaxWeight returns the largest finite item weight in the instance.
func (ins *Instance) MaxWeight() float64 {
	w := 0.0
	for j := range ins.Weight {
		for i := range ins.Weight[j] {
			if !math.IsInf(ins.Cost[j][i], 1) && ins.Weight[j][i] > w {
				w = ins.Weight[j][i]
			}
		}
	}
	return w
}

// pruneOversized returns a copy of the cost matrix with pairs whose weight
// exceeds the bin capacity marked Forbidden. Shmoys-Tardos requires this
// pruning for its capacity guarantee.
func (ins *Instance) pruneOversized() [][]float64 {
	n, m := ins.NumItems(), ins.NumBins()
	cost := make([][]float64, n)
	for j := 0; j < n; j++ {
		cost[j] = append([]float64(nil), ins.Cost[j]...)
		for i := 0; i < m; i++ {
			if ins.Weight[j][i] > ins.Cap[i] {
				cost[j][i] = Forbidden
			}
		}
	}
	return cost
}

// SolveGreedy assigns items in order of decreasing regret (gap between the
// best and second-best feasible bin), each to its cheapest bin with room.
// It is a heuristic: it may fail on tight instances where an exact solver
// would succeed.
func SolveGreedy(ins *Instance) (*Assignment, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	n, m := ins.NumItems(), ins.NumBins()
	cost := ins.pruneOversized()
	remaining := append([]float64(nil), ins.Cap...)
	bin := make([]int, n)
	for j := range bin {
		bin[j] = -1
	}
	unassigned := n
	for unassigned > 0 {
		bestItem, bestBin := -1, -1
		bestRegret := -1.0
		for j := 0; j < n; j++ {
			if bin[j] >= 0 {
				continue
			}
			first, second := math.Inf(1), math.Inf(1)
			firstBin := -1
			for i := 0; i < m; i++ {
				if math.IsInf(cost[j][i], 1) || ins.Weight[j][i] > remaining[i]+1e-12 {
					continue
				}
				if cost[j][i] < first {
					second = first
					first = cost[j][i]
					firstBin = i
				} else if cost[j][i] < second {
					second = cost[j][i]
				}
			}
			if firstBin < 0 {
				return nil, fmt.Errorf("gap: greedy failed: item %d has no feasible bin left", j)
			}
			regret := second - first
			if math.IsInf(regret, 1) {
				regret = math.MaxFloat64 // forced moves first
			}
			if regret > bestRegret {
				bestRegret = regret
				bestItem, bestBin = j, firstBin
			}
		}
		bin[bestItem] = bestBin
		remaining[bestBin] -= ins.Weight[bestItem][bestBin]
		unassigned--
	}
	total, err := ins.CostOf(bin)
	if err != nil {
		return nil, err
	}
	return &Assignment{Bin: bin, Cost: total}, nil
}

// SolveExact finds the optimal assignment by branch-and-bound with a
// per-item cheapest-cost lower bound. Intended for small instances
// (items * bins up to a few hundred); it returns an error if the instance
// is infeasible.
func SolveExact(ins *Instance) (*Assignment, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	n, m := ins.NumItems(), ins.NumBins()
	cost := ins.pruneOversized()

	// Order items by decreasing minimum weight for earlier pruning.
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	minW := make([]float64, n)
	for j := 0; j < n; j++ {
		minW[j] = math.Inf(1)
		for i := 0; i < m; i++ {
			if ins.Weight[j][i] < minW[j] {
				minW[j] = ins.Weight[j][i]
			}
		}
	}
	sort.Slice(order, func(a, b int) bool { return minW[order[a]] > minW[order[b]] })

	// Suffix lower bounds on cost: sum of per-item cheapest cost.
	cheapest := make([]float64, n)
	for j := 0; j < n; j++ {
		cheapest[j] = math.Inf(1)
		for i := 0; i < m; i++ {
			if cost[j][i] < cheapest[j] {
				cheapest[j] = cost[j][i]
			}
		}
		if math.IsInf(cheapest[j], 1) {
			return nil, fmt.Errorf("gap: item %d fits no bin", j)
		}
	}
	suffix := make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		suffix[k] = suffix[k+1] + cheapest[order[k]]
	}

	best := math.Inf(1)
	bestBin := make([]int, n)
	cur := make([]int, n)
	remaining := append([]float64(nil), ins.Cap...)

	var rec func(k int, acc float64)
	rec = func(k int, acc float64) {
		if acc+suffix[k] >= best {
			return
		}
		if k == n {
			best = acc
			copy(bestBin, cur)
			return
		}
		j := order[k]
		for i := 0; i < m; i++ {
			c := cost[j][i]
			if math.IsInf(c, 1) || ins.Weight[j][i] > remaining[i]+1e-12 {
				continue
			}
			cur[j] = i
			remaining[i] -= ins.Weight[j][i]
			rec(k+1, acc+c)
			remaining[i] += ins.Weight[j][i]
		}
	}
	rec(0, 0)
	if math.IsInf(best, 1) {
		return nil, fmt.Errorf("gap: instance is infeasible")
	}
	return &Assignment{Bin: bestBin, Cost: best}, nil
}
