package gap

import (
	"fmt"
	"math"

	"mecache/internal/flow"
)

// SolveTransport solves the slotted special case of GAP exactly via
// min-cost flow: every item occupies exactly one slot, and bin i offers
// slots[i] slots. This is the shape produced by the paper's
// virtual-cloudlet reduction ("each virtual cloudlet being restricted to be
// able to only cache a single service instance"), where cloudlet CL_i is
// split into n_i virtual cloudlets (Eq. 7) and each virtual cloudlet hosts
// one service.
//
// Because the underlying transportation LP has an integral optimum, the
// returned assignment is optimal for the slotted instance — on this shape
// the Shmoys-Tardos rounding would return the same cost, so this is the
// scalable fast path used by the large experiments.
func SolveTransport(cost [][]float64, slots []int) (*Assignment, error) {
	n := len(cost)
	m := len(slots)
	if n == 0 {
		return &Assignment{}, nil
	}
	totalSlots := 0
	for i, s := range slots {
		if s < 0 {
			return nil, fmt.Errorf("gap: bin %d has negative slot count %d", i, s)
		}
		totalSlots += s
	}
	if totalSlots < n {
		return nil, fmt.Errorf("gap: %d items exceed %d total slots", n, totalSlots)
	}
	for j, row := range cost {
		if len(row) != m {
			return nil, fmt.Errorf("gap: item %d has %d costs, want %d", j, len(row), m)
		}
	}

	// Node layout: [0,n) items, [n,n+m) bins, n+m source, n+m+1 sink.
	g := flow.NewNetwork(n + m + 2)
	src, sink := n+m, n+m+1
	for j := 0; j < n; j++ {
		if _, err := g.AddArc(src, j, 1, 0); err != nil {
			return nil, err
		}
	}
	for i := 0; i < m; i++ {
		if slots[i] == 0 {
			continue
		}
		if _, err := g.AddArc(n+i, sink, slots[i], 0); err != nil {
			return nil, err
		}
	}
	arcID := make([][]int, n)
	for j := 0; j < n; j++ {
		arcID[j] = make([]int, m)
		for i := 0; i < m; i++ {
			arcID[j][i] = -1
			c := cost[j][i]
			if math.IsInf(c, 1) {
				continue
			}
			if math.IsNaN(c) || math.IsInf(c, -1) {
				return nil, fmt.Errorf("gap: invalid cost at item %d bin %d: %v", j, i, c)
			}
			id, err := g.AddArc(j, n+i, 1, c)
			if err != nil {
				return nil, err
			}
			arcID[j][i] = id
		}
	}
	res, err := g.MinCostFlow(src, sink, n)
	if err != nil {
		return nil, err
	}
	if res.Flow < n {
		return nil, fmt.Errorf("gap: only %d of %d items are placeable", res.Flow, n)
	}
	bin := make([]int, n)
	for j := 0; j < n; j++ {
		bin[j] = -1
		for i := 0; i < m; i++ {
			if arcID[j][i] >= 0 && g.ArcFlow(arcID[j][i]) > 0 {
				bin[j] = i
				break
			}
		}
		if bin[j] < 0 {
			return nil, fmt.Errorf("gap: item %d unassigned despite full flow", j)
		}
	}
	return &Assignment{Bin: bin, Cost: res.Cost}, nil
}

// SolveCongestionTransport solves the slotted assignment with convex
// congestion: placing the k-th item (k = 1..slots[i]) into bin i costs
// base[item][i] + marginal(i, k). When marginal(i, ·) is non-decreasing the
// returned assignment is the exact optimum of the congestion-aware slotted
// problem: the min-cost flow fills each bin's cheapest marginal slots
// first, so the objective telescopes to the true congestion total.
//
// This is how Appro keeps the paper's virtual-cloudlet reduction while
// pricing each virtual cloudlet of CL_i by the congestion it adds — the
// paper's own observation that the derivation "relies only on the
// non-decreasing of cost with congestion levels".
//
// The implementation lives in SolveCongestionTransportWarm (warm.go); this
// entry point is the stateless cold solve.
func SolveCongestionTransport(base [][]float64, slots []int, marginal func(bin, k int) float64) (*Assignment, error) {
	a, _, err := SolveCongestionTransportWarm(base, slots, marginal, nil)
	return a, err
}
