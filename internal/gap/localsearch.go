package gap

import (
	"fmt"
	"math"
)

// LocalSearch improves a feasible assignment by repeated first-improvement
// shift moves (relocate one item to a cheaper bin with room) and swap moves
// (exchange the bins of two items when both fit and the combined cost
// drops). It never violates capacities and terminates when no move
// improves, or after maxPasses full passes (0 means a generous default).
//
// Typical use: polish the greedy heuristic's solution, or squeeze the last
// few percent out of a Shmoys-Tardos rounding whose slot structure left
// slack. Each pass is O(n·m + n²) move evaluations.
func LocalSearch(ins *Instance, assign []int, maxPasses int) (*Assignment, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	if err := ins.CheckFeasible(assign, 0); err != nil {
		return nil, fmt.Errorf("gap: local search needs a feasible start: %w", err)
	}
	if maxPasses <= 0 {
		maxPasses = 100
	}
	n, m := ins.NumItems(), ins.NumBins()
	bin := append([]int(nil), assign...)
	remaining := append([]float64(nil), ins.Cap...)
	for j, i := range bin {
		remaining[i] -= ins.Weight[j][i]
	}

	for pass := 0; pass < maxPasses; pass++ {
		improved := false

		// Shift moves.
		for j := 0; j < n; j++ {
			from := bin[j]
			for to := 0; to < m; to++ {
				if to == from || math.IsInf(ins.Cost[j][to], 1) {
					continue
				}
				if ins.Weight[j][to] > remaining[to]+1e-12 {
					continue
				}
				if ins.Cost[j][to] < ins.Cost[j][from]-1e-12 {
					remaining[from] += ins.Weight[j][from]
					remaining[to] -= ins.Weight[j][to]
					bin[j] = to
					from = to
					improved = true
				}
			}
		}

		// Swap moves.
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				ia, ib := bin[a], bin[b]
				if ia == ib {
					continue
				}
				if math.IsInf(ins.Cost[a][ib], 1) || math.IsInf(ins.Cost[b][ia], 1) {
					continue
				}
				cur := ins.Cost[a][ia] + ins.Cost[b][ib]
				swapped := ins.Cost[a][ib] + ins.Cost[b][ia]
				if swapped >= cur-1e-12 {
					continue
				}
				// Capacity check with both items removed.
				freeA := remaining[ia] + ins.Weight[a][ia]
				freeB := remaining[ib] + ins.Weight[b][ib]
				if ins.Weight[b][ia] > freeA+1e-12 || ins.Weight[a][ib] > freeB+1e-12 {
					continue
				}
				remaining[ia] = freeA - ins.Weight[b][ia]
				remaining[ib] = freeB - ins.Weight[a][ib]
				bin[a], bin[b] = ib, ia
				improved = true
			}
		}

		if !improved {
			break
		}
	}
	total, err := ins.CostOf(bin)
	if err != nil {
		return nil, err
	}
	return &Assignment{Bin: bin, Cost: total}, nil
}

// SolveGreedyPolished runs the regret greedy and then local search — the
// strongest heuristic pipeline in the package, used as the GAP ablation
// baseline.
func SolveGreedyPolished(ins *Instance) (*Assignment, error) {
	g, err := SolveGreedy(ins)
	if err != nil {
		return nil, err
	}
	return LocalSearch(ins, g.Bin, 0)
}
