package gap

import (
	"math"
	"reflect"
	"testing"

	"mecache/internal/rng"
)

// randomTransport builds a random congestion-transport reduction shaped
// like the Appro virtual-cloudlet instances.
func randomTransport(r *rng.Source, n, m int) ([][]float64, []int, func(int, int) float64) {
	base := make([][]float64, n)
	for j := range base {
		base[j] = make([]float64, m)
		for i := range base[j] {
			if r.Float64() < 0.1 {
				base[j][i] = math.Inf(1)
			} else {
				base[j][i] = r.FloatRange(0.1, 5)
			}
		}
		base[j][m-1] = r.FloatRange(1, 6) // last bin always open (remote-like)
	}
	slots := make([]int, m)
	total := 0
	for i := range slots {
		slots[i] = r.IntRange(0, 3)
		total += slots[i]
	}
	for total < n { // keep the instance feasible
		slots[m-1]++
		total++
	}
	coeff := make([]float64, m)
	for i := range coeff {
		coeff[i] = r.FloatRange(0, 0.5)
	}
	marginal := func(bin, k int) float64 { return coeff[bin] * float64(k) }
	return base, slots, marginal
}

func TestTransportWarmExactHit(t *testing.T) {
	r := rng.New(11)
	base, slots, marginal := randomTransport(r, 40, 12)
	st := &TransportState{}
	cold, err := SolveCongestionTransport(base, slots, marginal)
	if err != nil {
		t.Fatal(err)
	}
	first, warm, err := SolveCongestionTransportWarm(base, slots, marginal, st)
	if err != nil || warm {
		t.Fatalf("first solve: warm=%v err=%v", warm, err)
	}
	second, warm, err := SolveCongestionTransportWarm(base, slots, marginal, st)
	if err != nil || !warm {
		t.Fatalf("second solve: warm=%v err=%v", warm, err)
	}
	if !reflect.DeepEqual(cold.Bin, first.Bin) || !reflect.DeepEqual(cold.Bin, second.Bin) {
		t.Fatalf("warm bins diverge from cold:\ncold  %v\nfirst %v\nhit   %v", cold.Bin, first.Bin, second.Bin)
	}
	if math.Float64bits(cold.Cost) != math.Float64bits(second.Cost) {
		t.Fatalf("warm cost %v != cold %v", second.Cost, cold.Cost)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	// Mutating the result must not poison the cache.
	second.Bin[0] = -99
	third, warm, err := SolveCongestionTransportWarm(base, slots, marginal, st)
	if err != nil || !warm || !reflect.DeepEqual(cold.Bin, third.Bin) {
		t.Fatalf("cache aliased caller mutation: %v", third.Bin)
	}
}

func TestTransportWarmPatchedRowsMatchCold(t *testing.T) {
	r := rng.New(23)
	base, slots, marginal := randomTransport(r, 50, 14)
	st := &TransportState{}
	if _, _, err := SolveCongestionTransportWarm(base, slots, marginal, st); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 25; round++ {
		// Perturb a few rows' finite entries, keeping the +Inf pattern.
		for k := 0; k < 3; k++ {
			j := r.Intn(len(base))
			for i := range base[j] {
				if !math.IsInf(base[j][i], 1) {
					base[j][i] = r.FloatRange(0.1, 5)
				}
			}
		}
		cold, err := SolveCongestionTransport(base, slots, marginal)
		if err != nil {
			t.Fatal(err)
		}
		warmSol, warm, err := SolveCongestionTransportWarm(base, slots, marginal, st)
		if err != nil {
			t.Fatal(err)
		}
		if warm {
			t.Fatalf("round %d: changed rows reported as exact hit", round)
		}
		if !reflect.DeepEqual(cold.Bin, warmSol.Bin) {
			t.Fatalf("round %d: patched solve diverges from cold\ncold %v\nwarm %v", round, cold.Bin, warmSol.Bin)
		}
		if math.Float64bits(cold.Cost) != math.Float64bits(warmSol.Cost) {
			t.Fatalf("round %d: cost %v != %v", round, warmSol.Cost, cold.Cost)
		}
	}
	if st.Patched == 0 {
		t.Fatalf("patch path never taken (patched=%d misses=%d)", st.Patched, st.Misses)
	}
}

func TestTransportWarmStructuralChangeRebuilds(t *testing.T) {
	r := rng.New(31)
	base, slots, marginal := randomTransport(r, 30, 10)
	st := &TransportState{}
	if _, _, err := SolveCongestionTransportWarm(base, slots, marginal, st); err != nil {
		t.Fatal(err)
	}
	// Flip a forbidden pair to finite: the arc structure changes, so the
	// patch path must refuse and rebuild — still matching cold.
	for j := range base {
		flipped := false
		for i := range base[j] {
			if math.IsInf(base[j][i], 1) {
				base[j][i] = 0.01
				flipped = true
				break
			}
		}
		if flipped {
			break
		}
	}
	cold, err := SolveCongestionTransport(base, slots, marginal)
	if err != nil {
		t.Fatal(err)
	}
	warmSol, warm, err := SolveCongestionTransportWarm(base, slots, marginal, st)
	if err != nil || warm {
		t.Fatalf("warm=%v err=%v", warm, err)
	}
	if !reflect.DeepEqual(cold.Bin, warmSol.Bin) {
		t.Fatalf("rebuild diverges from cold\ncold %v\nwarm %v", cold.Bin, warmSol.Bin)
	}
	if st.Patched != 0 {
		t.Fatalf("structural change took the patch path (patched=%d)", st.Patched)
	}
	// Growing the instance must also rebuild cleanly.
	base = append(base, append([]float64(nil), base[0]...))
	slots[len(slots)-1]++
	cold2, err := SolveCongestionTransport(base, slots, marginal)
	if err != nil {
		t.Fatal(err)
	}
	warm2, _, err := SolveCongestionTransportWarm(base, slots, marginal, st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold2.Bin, warm2.Bin) {
		t.Fatalf("grown instance diverges\ncold %v\nwarm %v", cold2.Bin, warm2.Bin)
	}
}

func TestTransportWarmInvalidate(t *testing.T) {
	r := rng.New(41)
	base, slots, marginal := randomTransport(r, 20, 8)
	st := &TransportState{}
	if _, _, err := SolveCongestionTransportWarm(base, slots, marginal, st); err != nil {
		t.Fatal(err)
	}
	st.Invalidate()
	_, warm, err := SolveCongestionTransportWarm(base, slots, marginal, st)
	if err != nil || warm {
		t.Fatalf("invalidated state still hit: warm=%v err=%v", warm, err)
	}
	var nilState *TransportState
	nilState.Invalidate() // must not panic
}

func randomWarmInstance(r *rng.Source, n, m int) *Instance {
	ins := &Instance{
		Cost:   make([][]float64, n),
		Weight: make([][]float64, n),
		Cap:    make([]float64, m),
	}
	for j := 0; j < n; j++ {
		ins.Cost[j] = make([]float64, m)
		ins.Weight[j] = make([]float64, m)
		for i := 0; i < m; i++ {
			ins.Cost[j][i] = r.FloatRange(0.5, 4)
			ins.Weight[j][i] = r.FloatRange(0.2, 1.2)
		}
	}
	for i := range ins.Cap {
		ins.Cap[i] = r.FloatRange(1.5, 4)
	}
	return ins
}

func TestShmoysTardosWarmMatchesCold(t *testing.T) {
	r := rng.New(53)
	st := &RoundingState{}
	ins := randomWarmInstance(r, 14, 5)
	for round := 0; round < 20; round++ {
		cold, err := SolveShmoysTardos(ins)
		if err != nil {
			t.Fatal(err)
		}
		warmSol, _, err := SolveShmoysTardosWarm(ins, st)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold.Bin, warmSol.Bin) {
			t.Fatalf("round %d: warm rounding diverges\ncold %v\nwarm %v", round, cold.Bin, warmSol.Bin)
		}
		if math.Float64bits(cold.Cost) != math.Float64bits(warmSol.Cost) {
			t.Fatalf("round %d: cost %v != %v", round, warmSol.Cost, cold.Cost)
		}
		// Exact re-solve must hit.
		hitSol, warm, err := SolveShmoysTardosWarm(ins, st)
		if err != nil || !warm || !reflect.DeepEqual(cold.Bin, hitSol.Bin) {
			t.Fatalf("round %d: exact hit broken (warm=%v err=%v)", round, warm, err)
		}
		// Perturb one item's costs for the next round.
		j := r.Intn(len(ins.Cost))
		for i := range ins.Cost[j] {
			ins.Cost[j][i] = r.FloatRange(0.5, 4)
		}
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("hits=%d misses=%d, want both nonzero", st.Hits, st.Misses)
	}
}

func TestShmoysTardosComponentReuse(t *testing.T) {
	// Two disconnected halves: items 0-1 can only use bins 0-1, items 2-3
	// only bins 2-3. Perturbing one half must leave the other's component
	// pinned from cache.
	mk := func(c0 float64) *Instance {
		F := math.Inf(1)
		return &Instance{
			Cost: [][]float64{
				{c0, 2, F, F},
				{2, 1, F, F},
				{F, F, 1, 2},
				{F, F, 2, 1},
			},
			Weight: [][]float64{
				{1, 1, 1, 1},
				{1, 1, 1, 1},
				{1, 1, 1, 1},
				{1, 1, 1, 1},
			},
			Cap: []float64{1, 1, 1, 1},
		}
	}
	st := &RoundingState{}
	if _, _, err := SolveShmoysTardosWarm(mk(1), st); err != nil {
		t.Fatal(err)
	}
	ins := mk(1.5)
	cold, err := SolveShmoysTardos(ins)
	if err != nil {
		t.Fatal(err)
	}
	warmSol, warm, err := SolveShmoysTardosWarm(ins, st)
	if err != nil || warm {
		t.Fatalf("warm=%v err=%v", warm, err)
	}
	if !reflect.DeepEqual(cold.Bin, warmSol.Bin) {
		t.Fatalf("diverged: cold %v warm %v", cold.Bin, warmSol.Bin)
	}
	if st.LastCompTotal < 2 || st.LastCompReused < 1 {
		t.Fatalf("expected an untouched component to be reused (reused=%d total=%d)",
			st.LastCompReused, st.LastCompTotal)
	}
}

func TestShmoysTardosWarmFuzzDifferential(t *testing.T) {
	r := rng.New(71)
	for trial := 0; trial < 15; trial++ {
		n, m := r.IntRange(4, 12), r.IntRange(2, 5)
		ins := randomWarmInstance(r, n, m)
		st := &RoundingState{}
		for round := 0; round < 6; round++ {
			cold, cerr := SolveShmoysTardos(ins)
			warmSol, _, werr := SolveShmoysTardosWarm(ins, st)
			if (cerr == nil) != (werr == nil) {
				t.Fatalf("trial %d round %d: error mismatch cold=%v warm=%v", trial, round, cerr, werr)
			}
			if cerr == nil && !reflect.DeepEqual(cold.Bin, warmSol.Bin) {
				t.Fatalf("trial %d round %d: bins diverge\ncold %v\nwarm %v", trial, round, cold.Bin, warmSol.Bin)
			}
			j := r.Intn(n)
			for i := 0; i < m; i++ {
				ins.Cost[j][i] = r.FloatRange(0.5, 4)
			}
		}
	}
}
