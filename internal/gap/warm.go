package gap

import (
	"fmt"
	"math"

	"mecache/internal/flow"
)

// This file is the warm-start layer of the epoch GAP solve. Both solver
// states cache a fingerprint of the exact reduction they last solved plus
// the solution; a re-solve of a byte-identical reduction returns the cached
// assignment without touching the solver, and a small delta reuses every
// part of the cached solve that provably cannot have changed (the built
// flow network with only changed rows repriced, the rounding of untouched
// matching components). Correctness leans on one invariant: every reuse
// path either reproduces the exact operation sequence of the cold solve or
// returns a result the cold solve is proven to reproduce, so warm output is
// byte-identical to cold output — the differential suites enforce it.

// fp128 is a 128-bit incremental fingerprint (FNV-1a paired with a rotated
// multiply-accumulate) over 64-bit words. Two independent 64-bit mixes make
// an accidental collision — which would silently revive a stale solution —
// astronomically unlikely rather than merely improbable.
type fp128 struct{ a, b uint64 }

func newFP() fp128 {
	return fp128{a: 14695981039346656037, b: 0x9e3779b97f4a7c15}
}

func (h *fp128) word(w uint64) {
	h.a = (h.a ^ w) * 1099511628211
	h.b = ((h.b ^ w) << 29) | ((h.b ^ w) >> 35)
	h.b = h.b*0xbf58476d1ce4e5b9 + 1
}

func (h *fp128) float(f float64) { h.word(math.Float64bits(f)) }
func (h *fp128) int(v int)       { h.word(uint64(v)) }

func rowFingerprint(row []float64) uint64 {
	h := newFP()
	for _, v := range row {
		h.float(v)
	}
	return h.a ^ (h.b * 1099511628211)
}

// TransportState carries the cached reduction and solver scratch of one
// congestion-transport solve across epochs. The zero value is ready to use;
// a nil *TransportState selects the plain cold solve.
type TransportState struct {
	net    *flow.Network
	arcID  [][]int // arcID[j][i] = item j -> bin i arc, -1 when forbidden
	arcRow []int   // backing array for arcID rows

	rowFP    []uint64 // per-item fingerprint of its base-cost row
	newRowFP []uint64 // scratch for the incoming epoch's row fingerprints
	slotFP   uint64   // fingerprint over bin slots and marginal-cost chains
	fpA, fpB uint64   // whole-reduction fingerprint (rows + slots + dims)

	bin   []int   // cached optimal assignment
	cost  float64 // cached optimal cost
	n, m  int
	built bool // network + arcID mirror the cached reduction
	valid bool // bin/cost solve the cached reduction

	// Counters, readable by callers for span attrs and tests.
	Hits            uint64 // solves skipped entirely (identical reduction)
	Misses          uint64 // solves that ran the min-cost flow
	Patched         uint64 // misses served by repricing the cached network
	LastWarm        bool   // last call was a Hit
	LastChangedRows int    // rows repriced on the last patched solve
}

// Invalidate drops the cached solution and network, forcing the next solve
// cold. Scratch buffers are kept.
func (st *TransportState) Invalidate() {
	if st == nil {
		return
	}
	st.valid, st.built = false, false
}

// SolveCongestionTransportWarm is SolveCongestionTransport with a reusable
// state: an unchanged reduction returns the cached assignment (warm=true),
// a reduction differing only in some items' base-cost rows reprices those
// rows on the cached network and re-runs the flow, and anything else falls
// back to a full rebuild — all three paths byte-identical to the cold
// solver by construction. st may be nil (always cold).
func SolveCongestionTransportWarm(base [][]float64, slots []int, marginal func(bin, k int) float64, st *TransportState) (*Assignment, bool, error) {
	n := len(base)
	m := len(slots)
	if n == 0 {
		return &Assignment{}, false, nil
	}
	if marginal == nil {
		marginal = func(int, int) float64 { return 0 }
	}
	for j, row := range base {
		if len(row) != m {
			return nil, false, fmt.Errorf("gap: item %d has %d costs, want %d", j, len(row), m)
		}
	}
	totalSlots := 0
	for i, s := range slots {
		if s < 0 {
			return nil, false, fmt.Errorf("gap: bin %d has negative slot count %d", i, s)
		}
		totalSlots += s
	}
	if totalSlots < n {
		return nil, false, fmt.Errorf("gap: %d items exceed %d total slots", n, totalSlots)
	}

	if st == nil {
		st = &TransportState{}
	}

	// Fingerprint the reduction: the slot/marginal chain, then every
	// base-cost row. Hashing is O(instance) — microseconds against the
	// milliseconds of a flow solve.
	sh := newFP()
	sh.int(m)
	for i := 0; i < m; i++ {
		sh.int(slots[i])
		for k := 1; k <= slots[i]; k++ {
			sh.float(marginal(i, k))
		}
	}
	slotFP := sh.a ^ (sh.b * 1099511628211)
	if cap(st.newRowFP) < n {
		st.newRowFP = make([]uint64, n)
	}
	newRow := st.newRowFP[:n]
	h := newFP()
	h.int(n)
	h.word(slotFP)
	for j := 0; j < n; j++ {
		newRow[j] = rowFingerprint(base[j])
		h.word(newRow[j])
	}

	if st.valid && st.n == n && st.m == m && h.a == st.fpA && h.b == st.fpB {
		st.Hits++
		st.LastWarm = true
		st.LastChangedRows = 0
		return &Assignment{Bin: append([]int(nil), st.bin...), Cost: st.cost}, true, nil
	}
	st.Misses++
	st.LastWarm = false
	st.valid = false

	src, sink := n+m, n+m+1
	patched := false
	if st.built && st.n == n && st.m == m && st.slotFP == slotFP {
		// Same dimensions and identical slot/marginal chains: try repricing
		// only the changed rows on the cached network. Valid only if each
		// changed row keeps its forbidden (+Inf) pattern — otherwise the arc
		// structure differs and we rebuild.
		patched = true
		changed := 0
		for j := 0; j < n && patched; j++ {
			if newRow[j] == st.rowFP[j] {
				continue
			}
			changed++
			for i := 0; i < m; i++ {
				c := base[j][i]
				if math.IsInf(c, 1) != (st.arcID[j][i] < 0) {
					patched = false
					break
				}
				if math.IsInf(c, 1) {
					continue
				}
				if math.IsNaN(c) || math.IsInf(c, -1) {
					return nil, false, fmt.Errorf("gap: invalid base cost at item %d bin %d: %v", j, i, c)
				}
			}
		}
		if patched {
			st.net.ResetUnitFlows()
			for j := 0; j < n; j++ {
				if newRow[j] == st.rowFP[j] {
					continue
				}
				for i := 0; i < m; i++ {
					if id := st.arcID[j][i]; id >= 0 {
						st.net.SetArcCost(id, base[j][i])
					}
				}
			}
			st.Patched++
			st.LastChangedRows = changed
		}
	}
	if !patched {
		st.built = false
		st.LastChangedRows = n
		if st.net == nil {
			st.net = flow.NewNetwork(n + m + 2)
		} else {
			st.net.Reset(n + m + 2)
		}
		g := st.net
		for j := 0; j < n; j++ {
			if _, err := g.AddArc(src, j, 1, 0); err != nil {
				return nil, false, err
			}
		}
		// Convex congestion chain: one unit arc per slot with the marginal
		// cost of that occupancy level. Marginal costs must be non-decreasing
		// in k for the decomposition to be exact; validate defensively.
		for i := 0; i < m; i++ {
			prev := math.Inf(-1)
			for k := 1; k <= slots[i]; k++ {
				mc := marginal(i, k)
				if mc < prev-1e-9 {
					return nil, false, fmt.Errorf("gap: marginal cost of bin %d decreases at k=%d (%v < %v)", i, k, mc, prev)
				}
				prev = mc
				if _, err := g.AddArc(n+i, sink, 1, mc); err != nil {
					return nil, false, err
				}
			}
		}
		if cap(st.arcRow) < n*m {
			st.arcRow = make([]int, n*m)
		}
		if cap(st.arcID) < n {
			st.arcID = make([][]int, n)
		}
		st.arcID = st.arcID[:n]
		for j := 0; j < n; j++ {
			st.arcID[j] = st.arcRow[j*m : (j+1)*m : (j+1)*m]
			for i := 0; i < m; i++ {
				st.arcID[j][i] = -1
				c := base[j][i]
				if math.IsInf(c, 1) {
					continue
				}
				if math.IsNaN(c) || math.IsInf(c, -1) {
					return nil, false, fmt.Errorf("gap: invalid base cost at item %d bin %d: %v", j, i, c)
				}
				id, err := g.AddArc(j, n+i, 1, c)
				if err != nil {
					return nil, false, err
				}
				st.arcID[j][i] = id
			}
		}
		st.built = true
	}

	res, err := st.net.MinCostFlow(src, sink, n)
	if err != nil {
		st.built = false // flows half-applied; the network is not reusable
		return nil, false, err
	}
	if res.Flow < n {
		st.built = false
		return nil, false, fmt.Errorf("gap: only %d of %d items are placeable", res.Flow, n)
	}
	bin := make([]int, n)
	for j := 0; j < n; j++ {
		bin[j] = -1
		for i := 0; i < m; i++ {
			if st.arcID[j][i] >= 0 && st.net.ArcFlow(st.arcID[j][i]) > 0 {
				bin[j] = i
				break
			}
		}
		if bin[j] < 0 {
			st.built = false
			return nil, false, fmt.Errorf("gap: item %d unassigned despite full flow", j)
		}
	}

	// Cache the solved reduction.
	st.n, st.m = n, m
	st.slotFP = slotFP
	st.fpA, st.fpB = h.a, h.b
	st.rowFP, st.newRowFP = newRow, st.rowFP
	st.bin = append(st.bin[:0], bin...)
	st.cost = res.Cost
	st.valid = true
	return &Assignment{Bin: bin, Cost: res.Cost}, false, nil
}

// RoundingState caches one Shmoys-Tardos rounding across epochs: the whole
// instance's fingerprint (exact-hit skip) and, per matching component of
// the slot graph, the component's fingerprint and rounded bins, so a
// re-round only re-matches components whose items, slots, or costs changed.
// The zero value is ready; nil selects the cold path.
type RoundingState struct {
	fpA, fpB uint64
	n        int
	valid    bool
	bin      []int
	cost     float64

	compFP  map[int]uint64 // keyed by the component's smallest item index
	itemBin []int          // itemBin[j] = rounded bin of item j, last solve

	// Counters for span attrs and tests.
	Hits           uint64 // solves skipped entirely (identical instance)
	Misses         uint64
	LastWarm       bool
	LastCompReused int // components reused on the last miss
	LastCompTotal  int
}

// Invalidate drops the cached instance and component roundings.
func (st *RoundingState) Invalidate() {
	if st == nil {
		return
	}
	st.valid = false
	st.compFP = nil
}

// instanceFingerprint hashes everything a Shmoys-Tardos solve reads.
func instanceFingerprint(ins *Instance) (uint64, uint64) {
	h := newFP()
	h.int(ins.NumItems())
	h.int(ins.NumBins())
	for j := range ins.Cost {
		for i := range ins.Cost[j] {
			h.float(ins.Cost[j][i])
			h.float(ins.Weight[j][i])
		}
	}
	for _, c := range ins.Cap {
		h.float(c)
	}
	return h.a, h.b
}

// SolveShmoysTardosWarm is SolveShmoysTardos with incremental re-rounding:
// an unchanged instance returns the cached assignment (warm=true); a
// changed instance re-solves the LP but re-matches only the matching
// components whose fingerprint changed, keeping every untouched
// component's integral assignment pinned. Both paths are byte-identical to
// the cold solver (per-component matching provably equals the global
// matching; see DESIGN.md §5l). st may be nil (always cold).
func SolveShmoysTardosWarm(ins *Instance, st *RoundingState) (*Assignment, bool, error) {
	if err := ins.Validate(); err != nil {
		return nil, false, err
	}
	var fpA, fpB uint64
	if st != nil {
		fpA, fpB = instanceFingerprint(ins)
		if st.valid && st.n == ins.NumItems() && fpA == st.fpA && fpB == st.fpB {
			st.Hits++
			st.LastWarm = true
			return &Assignment{Bin: append([]int(nil), st.bin...), Cost: st.cost}, true, nil
		}
		st.Misses++
		st.LastWarm = false
		st.valid = false
	}
	sol, err := roundShmoysTardos(ins, st)
	if err != nil {
		return nil, false, err
	}
	if st != nil {
		st.n = ins.NumItems()
		st.fpA, st.fpB = fpA, fpB
		st.bin = append(st.bin[:0], sol.Bin...)
		st.cost = sol.Cost
		st.valid = true
	}
	return sol, false, nil
}
