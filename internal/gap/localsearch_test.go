package gap

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLocalSearchImprovesBadStart(t *testing.T) {
	// Two items parked in expensive bins; shifts fix it.
	ins := &Instance{
		Cost:   [][]float64{{1, 10}, {10, 1}},
		Weight: [][]float64{{1, 1}, {1, 1}},
		Cap:    []float64{2, 2},
	}
	sol, err := LocalSearch(ins, []int{1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 2 {
		t.Fatalf("cost %v, want 2 (bins %v)", sol.Cost, sol.Bin)
	}
}

func TestLocalSearchSwapNeeded(t *testing.T) {
	// Tight capacities: no single shift fits, only the swap does.
	ins := &Instance{
		Cost:   [][]float64{{1, 10}, {10, 1}},
		Weight: [][]float64{{1, 1}, {1, 1}},
		Cap:    []float64{1, 1},
	}
	sol, err := LocalSearch(ins, []int{1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 2 || sol.Bin[0] != 0 || sol.Bin[1] != 1 {
		t.Fatalf("swap not applied: %v cost %v", sol.Bin, sol.Cost)
	}
}

func TestLocalSearchRejectsInfeasibleStart(t *testing.T) {
	ins := &Instance{
		Cost:   [][]float64{{1, 1}, {1, 1}},
		Weight: [][]float64{{2, 2}, {2, 2}},
		Cap:    []float64{2, 2},
	}
	if _, err := LocalSearch(ins, []int{0, 0}, 0); err == nil {
		t.Fatal("overloaded start accepted")
	}
}

// Property: local search never worsens cost, never violates capacity, and
// ends shift-stable (no single relocation improves).
func TestLocalSearchInvariants(t *testing.T) {
	check := func(seed uint64) bool {
		ins := randomInstance(seed, 8, 4)
		start, err := SolveGreedy(ins)
		if err != nil {
			return true // tight instance, greedy failed: nothing to test
		}
		sol, err := LocalSearch(ins, start.Bin, 0)
		if err != nil {
			return false
		}
		if sol.Cost > start.Cost+1e-9 {
			return false
		}
		if ins.CheckFeasible(sol.Bin, 0) != nil {
			return false
		}
		// Shift stability.
		remaining := append([]float64(nil), ins.Cap...)
		for j, i := range sol.Bin {
			remaining[i] -= ins.Weight[j][i]
		}
		for j, from := range sol.Bin {
			for to := range ins.Cap {
				if to == from || math.IsInf(ins.Cost[j][to], 1) {
					continue
				}
				if ins.Weight[j][to] <= remaining[to]+1e-12 &&
					ins.Cost[j][to] < ins.Cost[j][from]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyPolishedAtLeastAsGoodAsGreedy(t *testing.T) {
	check := func(seed uint64) bool {
		ins := randomInstance(seed, 10, 4)
		g, err := SolveGreedy(ins)
		if err != nil {
			return true
		}
		p, err := SolveGreedyPolished(ins)
		if err != nil {
			return false
		}
		return p.Cost <= g.Cost+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPolishedApproachesExact(t *testing.T) {
	// On small instances the polished heuristic should land within 20% of
	// the exact optimum on average.
	var exactSum, polishedSum float64
	count := 0
	for seed := uint64(0); seed < 25; seed++ {
		ins := randomInstance(seed, 7, 3)
		ex, err := SolveExact(ins)
		if err != nil {
			continue
		}
		po, err := SolveGreedyPolished(ins)
		if err != nil {
			continue
		}
		exactSum += ex.Cost
		polishedSum += po.Cost
		count++
	}
	if count < 10 {
		t.Fatalf("too few comparable instances: %d", count)
	}
	if polishedSum > exactSum*1.2 {
		t.Fatalf("polished heuristic averages %v vs exact %v", polishedSum/float64(count), exactSum/float64(count))
	}
}

func BenchmarkLocalSearch50x10(b *testing.B) {
	ins := randomInstance(5, 50, 10)
	start, err := SolveGreedy(ins)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LocalSearch(ins, start.Bin, 0); err != nil {
			b.Fatal(err)
		}
	}
}
