package gap

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/rng"
)

func TestCongestionTransportFillsCheapSlotsFirst(t *testing.T) {
	// One bin, marginal cost 1, 3, 5 (affine congestion 2k-1); three items
	// with base cost 0. Total = 1+3+5 = 9 = 3^2.
	base := [][]float64{{0}, {0}, {0}}
	sol, err := SolveCongestionTransport(base, []int{3}, func(_, k int) float64 {
		return float64(2*k - 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 9 {
		t.Fatalf("cost = %v, want 9", sol.Cost)
	}
}

func TestCongestionTransportSpreadsLoad(t *testing.T) {
	// Two identical bins with rising marginals: the optimum splits 4 items
	// 2+2 (cost 2*(1+3)=8) instead of 4+0 (1+3+5+7=16).
	base := make([][]float64, 4)
	for j := range base {
		base[j] = []float64{0, 0}
	}
	sol, err := SolveCongestionTransport(base, []int{4, 4}, func(_, k int) float64 {
		return float64(2*k - 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 8 {
		t.Fatalf("cost = %v, want 8", sol.Cost)
	}
	counts := make([]int, 2)
	for _, b := range sol.Bin {
		counts[b]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("load split %v, want [2 2]", counts)
	}
}

func TestCongestionTransportObjectiveEqualsRecomputedSocial(t *testing.T) {
	// The flow objective must equal sum of base costs plus sum over bins of
	// coeff * k^2 when marginal(i,k) = coeff_i*(2k-1).
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(8)
		m := 1 + r.Intn(4)
		base := make([][]float64, n)
		for j := range base {
			base[j] = make([]float64, m)
			for i := range base[j] {
				base[j][i] = r.FloatRange(0, 5)
			}
		}
		coeff := make([]float64, m)
		slots := make([]int, m)
		total := 0
		for i := range coeff {
			coeff[i] = r.FloatRange(0, 2)
			slots[i] = 1 + r.Intn(4)
			total += slots[i]
		}
		if total < n {
			slots[0] += n - total
		}
		sol, err := SolveCongestionTransport(base, slots, func(i, k int) float64 {
			return coeff[i] * float64(2*k-1)
		})
		if err != nil {
			return false
		}
		counts := make([]int, m)
		want := 0.0
		for j, i := range sol.Bin {
			counts[i]++
			want += base[j][i]
		}
		for i, k := range counts {
			if k > slots[i] {
				return false
			}
			want += coeff[i] * float64(k*k)
		}
		return math.Abs(sol.Cost-want) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestCongestionTransportOptimality compares against brute force on tiny
// instances: the solver must find the exact optimum of the congestion-aware
// slotted problem.
func TestCongestionTransportOptimality(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(5)
		m := 1 + r.Intn(3)
		base := make([][]float64, n)
		for j := range base {
			base[j] = make([]float64, m)
			for i := range base[j] {
				base[j][i] = r.FloatRange(0, 5)
			}
		}
		coeff := make([]float64, m)
		slots := make([]int, m)
		for i := range coeff {
			coeff[i] = r.FloatRange(0, 2)
			slots[i] = n // no scarcity; congestion alone limits packing
		}
		sol, err := SolveCongestionTransport(base, slots, func(i, k int) float64 {
			return coeff[i] * float64(2*k-1)
		})
		if err != nil {
			return false
		}
		// Brute force over all assignments.
		best := math.Inf(1)
		assign := make([]int, n)
		var rec func(j int)
		rec = func(j int) {
			if j == n {
				counts := make([]int, m)
				cost := 0.0
				for jj, i := range assign {
					counts[i]++
					cost += base[jj][i]
				}
				for i, k := range counts {
					cost += coeff[i] * float64(k*k)
				}
				if cost < best {
					best = cost
				}
				return
			}
			for i := 0; i < m; i++ {
				assign[j] = i
				rec(j + 1)
			}
		}
		rec(0)
		return math.Abs(sol.Cost-best) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCongestionTransportValidation(t *testing.T) {
	if _, err := SolveCongestionTransport([][]float64{{0}, {0}}, []int{1}, nil); err == nil {
		t.Fatal("insufficient slots not detected")
	}
	if _, err := SolveCongestionTransport([][]float64{{0, 0}}, []int{-1, 2}, nil); err == nil {
		t.Fatal("negative slot count not detected")
	}
	// Decreasing marginal cost must be rejected (the decomposition would be
	// wrong for concave congestion).
	if _, err := SolveCongestionTransport([][]float64{{0}}, []int{2}, func(_, k int) float64 {
		return float64(-k)
	}); err == nil {
		t.Fatal("decreasing marginal cost accepted")
	}
	// Nil marginal means zero congestion: plain transport.
	sol, err := SolveCongestionTransport([][]float64{{2, 1}}, []int{1, 1}, nil)
	if err != nil || sol.Cost != 1 {
		t.Fatalf("nil marginal: %v %v", sol, err)
	}
	// Empty instance.
	empty, err := SolveCongestionTransport(nil, []int{1}, nil)
	if err != nil || empty.Cost != 0 {
		t.Fatalf("empty: %v %v", empty, err)
	}
	// Forbidden pairs.
	if _, err := SolveCongestionTransport([][]float64{{Forbidden}}, []int{1}, nil); err == nil {
		t.Fatal("item with no permitted bin not detected")
	}
}

func BenchmarkCongestionTransport100x41(b *testing.B) {
	r := rng.New(9)
	n, m := 100, 41
	base := make([][]float64, n)
	for j := range base {
		base[j] = make([]float64, m)
		for i := range base[j] {
			base[j][i] = r.FloatRange(0, 10)
		}
	}
	slots := make([]int, m)
	coeff := make([]float64, m)
	for i := range slots {
		slots[i] = 10
		coeff[i] = r.FloatRange(0, 2)
	}
	marginal := func(i, k int) float64 { return coeff[i] * float64(2*k-1) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveCongestionTransport(base, slots, marginal); err != nil {
			b.Fatal(err)
		}
	}
}
