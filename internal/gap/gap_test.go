package gap

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/rng"
)

// randomInstance builds a feasible random GAP instance: weights in [1,5],
// capacities generous enough that the instance always admits a solution.
func randomInstance(seed uint64, maxItems, maxBins int) *Instance {
	r := rng.New(seed)
	n := 1 + r.Intn(maxItems)
	m := 2 + r.Intn(maxBins-1)
	ins := &Instance{
		Cost:   make([][]float64, n),
		Weight: make([][]float64, n),
		Cap:    make([]float64, m),
	}
	for j := 0; j < n; j++ {
		ins.Cost[j] = make([]float64, m)
		ins.Weight[j] = make([]float64, m)
		for i := 0; i < m; i++ {
			ins.Cost[j][i] = r.FloatRange(1, 20)
			ins.Weight[j][i] = r.FloatRange(1, 5)
		}
	}
	for i := 0; i < m; i++ {
		// Enough room in aggregate: every bin can hold a couple of items,
		// and total capacity comfortably exceeds total weight.
		ins.Cap[i] = r.FloatRange(5, 10) * float64(n) / float64(m) * 2
	}
	return ins
}

func TestValidate(t *testing.T) {
	ins := &Instance{
		Cost:   [][]float64{{1, 2}},
		Weight: [][]float64{{1, 1}},
		Cap:    []float64{1, 1},
	}
	if err := ins.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := &Instance{
		Cost:   [][]float64{{1}},
		Weight: [][]float64{{1, 1}},
		Cap:    []float64{1, 1},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("ragged instance accepted")
	}
	negW := &Instance{
		Cost:   [][]float64{{1, 2}},
		Weight: [][]float64{{-1, 1}},
		Cap:    []float64{1, 1},
	}
	if err := negW.Validate(); err == nil {
		t.Fatal("negative weight accepted")
	}
	negCap := &Instance{
		Cost:   [][]float64{{1, 2}},
		Weight: [][]float64{{1, 1}},
		Cap:    []float64{1, -1},
	}
	if err := negCap.Validate(); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestExactTiny(t *testing.T) {
	// Two items, two bins; capacities force them apart.
	ins := &Instance{
		Cost:   [][]float64{{1, 10}, {1, 10}},
		Weight: [][]float64{{1, 1}, {1, 1}},
		Cap:    []float64{1, 1},
	}
	sol, err := SolveExact(ins)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 11 {
		t.Fatalf("cost = %v, want 11", sol.Cost)
	}
	if err := ins.CheckFeasible(sol.Bin, 0); err != nil {
		t.Fatal(err)
	}
}

func TestExactInfeasible(t *testing.T) {
	ins := &Instance{
		Cost:   [][]float64{{1, 1}, {1, 1}, {1, 1}},
		Weight: [][]float64{{1, 1}, {1, 1}, {1, 1}},
		Cap:    []float64{1, 1},
	}
	if _, err := SolveExact(ins); err == nil {
		t.Fatal("infeasible instance not detected")
	}
}

func TestGreedyFeasibleAndAboveExact(t *testing.T) {
	check := func(seed uint64) bool {
		ins := randomInstance(seed, 6, 4)
		exact, err := SolveExact(ins)
		if err != nil {
			return true // rare tight instance; nothing to compare
		}
		greedy, err := SolveGreedy(ins)
		if err != nil {
			return true // greedy may fail where exact succeeds
		}
		if ins.CheckFeasible(greedy.Bin, 0) != nil {
			return false
		}
		return greedy.Cost >= exact.Cost-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLPLowerBoundsExact(t *testing.T) {
	check := func(seed uint64) bool {
		ins := randomInstance(seed, 5, 4)
		exact, err := SolveExact(ins)
		if err != nil {
			return true
		}
		lb, err := LPLowerBound(ins)
		if err != nil {
			return false
		}
		return lb <= exact.Cost+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestShmoysTardosGuarantees is the core property test: on random feasible
// instances, the rounded solution (1) assigns every item, (2) costs at most
// the LP optimum + tolerance, and (3) overloads no bin by more than the
// largest item weight (the classical additive guarantee).
func TestShmoysTardosGuarantees(t *testing.T) {
	check := func(seed uint64) bool {
		ins := randomInstance(seed, 8, 4)
		sol, err := SolveShmoysTardos(ins)
		if err != nil {
			return false
		}
		lb, err := LPLowerBound(ins)
		if err != nil {
			return false
		}
		if sol.Cost > lb+1e-6 {
			// The matching fallback path (greedy) may exceed the LP bound;
			// detect whether the primary path ran by re-checking capacity
			// with zero slack: greedy never violates capacity.
			if ins.CheckFeasible(sol.Bin, 0) == nil {
				return true
			}
			return false
		}
		return ins.CheckFeasible(sol.Bin, ins.MaxWeight()) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestShmoysTardosMatchesExactWhenLPIntegral(t *testing.T) {
	// Uniform weights + unit slots: LP is transportation, hence integral;
	// ST must return the exact optimum.
	ins := &Instance{
		Cost: [][]float64{
			{1, 9, 9},
			{9, 1, 9},
			{9, 9, 1},
			{2, 3, 9},
		},
		Weight: [][]float64{
			{1, 1, 1}, {1, 1, 1}, {1, 1, 1}, {1, 1, 1},
		},
		Cap: []float64{2, 1, 1},
	}
	st, err := SolveShmoysTardos(ins)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := SolveExact(ins)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Cost-exact.Cost) > 1e-9 {
		t.Fatalf("ST cost %v != exact %v", st.Cost, exact.Cost)
	}
}

func TestShmoysTardosRespectsForbidden(t *testing.T) {
	ins := &Instance{
		Cost:   [][]float64{{Forbidden, 5}, {3, Forbidden}},
		Weight: [][]float64{{1, 1}, {1, 1}},
		Cap:    []float64{2, 2},
	}
	sol, err := SolveShmoysTardos(ins)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Bin[0] != 1 || sol.Bin[1] != 0 {
		t.Fatalf("assignment %v uses a forbidden pair", sol.Bin)
	}
}

func TestShmoysTardosPrunesOversized(t *testing.T) {
	// Item 0 weighs 10 in bin 0 (cap 5): must go to bin 1 even though bin 0
	// is cheaper.
	ins := &Instance{
		Cost:   [][]float64{{1, 100}},
		Weight: [][]float64{{10, 1}},
		Cap:    []float64{5, 5},
	}
	sol, err := SolveShmoysTardos(ins)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Bin[0] != 1 {
		t.Fatalf("oversized pair used: bin %d", sol.Bin[0])
	}
}

func TestTransportExactOptimal(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(6)
		m := 2 + r.Intn(3)
		cost := make([][]float64, n)
		for j := range cost {
			cost[j] = make([]float64, m)
			for i := range cost[j] {
				cost[j][i] = r.FloatRange(0, 10)
			}
		}
		slots := make([]int, m)
		total := 0
		for i := range slots {
			slots[i] = r.Intn(3) + 1
			total += slots[i]
		}
		if total < n {
			slots[0] += n - total
		}
		sol, err := SolveTransport(cost, slots)
		if err != nil {
			return false
		}
		// Compare against exact GAP with unit weights and slot capacities.
		ins := &Instance{
			Cost:   cost,
			Weight: make([][]float64, n),
			Cap:    make([]float64, m),
		}
		for j := range ins.Weight {
			ins.Weight[j] = make([]float64, m)
			for i := range ins.Weight[j] {
				ins.Weight[j][i] = 1
			}
		}
		for i := range ins.Cap {
			ins.Cap[i] = float64(slots[i])
		}
		exact, err := SolveExact(ins)
		if err != nil {
			return false
		}
		if math.Abs(sol.Cost-exact.Cost) > 1e-9 {
			return false
		}
		// Slot counts respected.
		counts := make([]int, m)
		for _, i := range sol.Bin {
			counts[i]++
		}
		for i := range counts {
			if counts[i] > slots[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTransportInsufficientSlots(t *testing.T) {
	if _, err := SolveTransport([][]float64{{1}, {1}}, []int{1}); err == nil {
		t.Fatal("insufficient slots not detected")
	}
}

func TestTransportForbidden(t *testing.T) {
	cost := [][]float64{{Forbidden, 2}, {1, Forbidden}}
	sol, err := SolveTransport(cost, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Bin[0] != 1 || sol.Bin[1] != 0 || sol.Cost != 3 {
		t.Fatalf("got %v cost %v", sol.Bin, sol.Cost)
	}
}

func TestTransportEmpty(t *testing.T) {
	sol, err := SolveTransport(nil, []int{3})
	if err != nil || sol.Cost != 0 {
		t.Fatalf("empty transport: %v %v", sol, err)
	}
}

func TestCostOfErrors(t *testing.T) {
	ins := &Instance{
		Cost:   [][]float64{{1, Forbidden}},
		Weight: [][]float64{{1, 1}},
		Cap:    []float64{1, 1},
	}
	if _, err := ins.CostOf([]int{1}); err == nil {
		t.Fatal("forbidden assignment accepted")
	}
	if _, err := ins.CostOf([]int{5}); err == nil {
		t.Fatal("out-of-range bin accepted")
	}
	if _, err := ins.CostOf(nil); err == nil {
		t.Fatal("wrong-length assignment accepted")
	}
}

func BenchmarkShmoysTardos20x8(b *testing.B) {
	ins := randomInstance(77, 20, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveShmoysTardos(ins); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransport100x40(b *testing.B) {
	r := rng.New(3)
	n, m := 100, 40
	cost := make([][]float64, n)
	for j := range cost {
		cost[j] = make([]float64, m)
		for i := range cost[j] {
			cost[j][i] = r.FloatRange(0, 10)
		}
	}
	slots := make([]int, m)
	for i := range slots {
		slots[i] = 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveTransport(cost, slots); err != nil {
			b.Fatal(err)
		}
	}
}
