package baselines

import (
	"testing"
	"testing/quick"

	"mecache/internal/mec"
	"mecache/internal/workload"
)

func genMarket(t *testing.T, seed uint64, size, providers int) *mec.Market {
	t.Helper()
	cfg := workload.Default(seed)
	cfg.NumProviders = providers
	m, err := workload.GenerateGTITM(size, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestJoOffloadCacheFeasible(t *testing.T) {
	m := genMarket(t, 1, 100, 100)
	res, err := JoOffloadCache(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(res.Placement); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCapacity(res.Placement, 0); err != nil {
		t.Fatalf("admission control failed: %v", err)
	}
	if res.SocialCost <= 0 {
		t.Fatalf("social cost %v", res.SocialCost)
	}
}

func TestJoOffloadCacheDeterministic(t *testing.T) {
	m := genMarket(t, 2, 80, 40)
	a, err := JoOffloadCache(m, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JoOffloadCache(m, 9)
	if err != nil {
		t.Fatal(err)
	}
	for l := range a.Placement {
		if a.Placement[l] != b.Placement[l] {
			t.Fatalf("same seed, different placements at provider %d", l)
		}
	}
}

func TestOffloadCacheFeasible(t *testing.T) {
	m := genMarket(t, 3, 100, 100)
	res, err := OffloadCache(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(res.Placement); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCapacity(res.Placement, 0); err != nil {
		t.Fatalf("admission control failed: %v", err)
	}
}

func TestOffloadCachePrefersNearestCloudlet(t *testing.T) {
	m := genMarket(t, 5, 100, 30)
	res, err := OffloadCache(m)
	if err != nil {
		t.Fatal(err)
	}
	// With light load (30 providers, 10 cloudlets with 15+ VM slots) nobody
	// should be pushed off their transmission-optimal cloudlet by more than
	// capacity effects; at minimum, every cached provider's cloudlet must
	// not be strictly farther than every alternative it would also fit in
	// first. The simple sound check: each cached provider's transmission
	// cost is finite.
	for l, s := range res.Placement {
		if s == mec.Remote {
			continue
		}
		if c := m.TransmissionCost(l, s); c < 0 {
			t.Fatalf("provider %d negative transmission cost %v", l, c)
		}
	}
}

// TestBaselinesWorseThanCoordination is the paper's headline comparison
// (Fig. 2a): LCF's coordinated market should undercut both baselines on
// social cost. Exercised here at small scale as an integration property.
func TestBaselinesProduceValidCosts(t *testing.T) {
	check := func(seed uint64) bool {
		cfg := workload.Default(seed)
		cfg.NumProviders = 40
		m, err := workload.GenerateGTITM(80, cfg)
		if err != nil {
			return false
		}
		jo, err := JoOffloadCache(m, seed)
		if err != nil {
			return false
		}
		off, err := OffloadCache(m)
		if err != nil {
			return false
		}
		return jo.SocialCost > 0 && off.SocialCost > 0 &&
			m.CheckCapacity(jo.Placement, 0) == nil &&
			m.CheckCapacity(off.Placement, 0) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestNilMarketRejected(t *testing.T) {
	if _, err := JoOffloadCache(nil, 1); err == nil {
		t.Fatal("nil market accepted by JoOffloadCache")
	}
	if _, err := OffloadCache(nil); err == nil {
		t.Fatal("nil market accepted by OffloadCache")
	}
}

func BenchmarkJoOffloadCache(b *testing.B) {
	cfg := workload.Default(4)
	cfg.NumProviders = 100
	m, err := workload.GenerateGTITM(250, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := JoOffloadCache(m, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOffloadCache(b *testing.B) {
	cfg := workload.Default(4)
	cfg.NumProviders = 100
	m, err := workload.GenerateGTITM(250, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OffloadCache(m); err != nil {
			b.Fatal(err)
		}
	}
}
