// Package baselines implements the two comparison algorithms of the paper's
// evaluation (Section IV-A):
//
//   - JoOffloadCache, after Xu, Chen and Zhou's joint service caching and
//     task offloading (INFOCOM'18 [23]), adapted exactly as the paper
//     prescribes: every network service provider runs the joint
//     optimization independently, "without communicating with each other",
//     and data updating costs are not part of its objective. The per-
//     provider optimization is a Gibbs-sampling search over the provider's
//     own strategy space, mirroring [23]'s sampler.
//   - OffloadCache, a greedy algorithm after [20] that treats offloading
//     and caching separately: each provider first picks the cloudlet with
//     the optimal offloading (transmission) cost for its requests, then
//     instantiates its service there — or at the closest cloudlet with
//     remaining capacity.
//
// Since uncoordinated providers cannot observe each other's load, both
// baselines submit their choices to the infrastructure provider, which
// admits them in arrival order; a provider whose chosen cloudlet is full
// falls back to the next-best feasible choice or to staying remote. All
// reported social costs are therefore measured on capacity-feasible
// placements, like LCF's.
package baselines

import (
	"fmt"
	"math"
	"sort"

	"mecache/internal/mec"
	"mecache/internal/rng"
)

// Result is a baseline outcome.
type Result struct {
	Placement  mec.Placement
	SocialCost float64
}

// admission tracks remaining capacities while providers are admitted
// sequentially.
type admission struct {
	m         *mec.Market
	compute   []float64
	bandwidth []float64
}

func newAdmission(m *mec.Market) *admission {
	nc := m.Net.NumCloudlets()
	a := &admission{
		m:         m,
		compute:   make([]float64, nc),
		bandwidth: make([]float64, nc),
	}
	for i := range m.Net.Cloudlets {
		a.compute[i] = m.Net.Cloudlets[i].ComputeCap
		a.bandwidth[i] = m.Net.Cloudlets[i].BandwidthCap
	}
	return a
}

func (a *admission) fits(l, i int) bool {
	p := &a.m.Providers[l]
	return p.ComputeDemand() <= a.compute[i]+1e-9 && p.BandwidthDemand() <= a.bandwidth[i]+1e-9
}

func (a *admission) admit(l, i int) {
	p := &a.m.Providers[l]
	a.compute[i] -= p.ComputeDemand()
	a.bandwidth[i] -= p.BandwidthDemand()
}

// gibbsObjective is JoOffloadCache's per-provider objective: the provider's
// congestion-blind cost of strategy s, with the update term removed (data
// updating is not considered in [23]).
func gibbsObjective(m *mec.Market, l, s int) float64 {
	if s == mec.Remote {
		return m.RemoteCost(l)
	}
	// Congestion of 1: the provider assumes it is alone on the cloudlet.
	return m.CongestionCoeff(s)*m.CongestionLevel(1) + m.BaseCost(l, s) - m.UpdateCost(l, s)
}

// JoOffloadCache runs the per-provider joint caching/offloading baseline.
// Each provider Gibbs-samples its own strategy: starting from remote, it
// repeatedly proposes a uniform random strategy and accepts with
// probability exp(-(Δcost)/T) under a geometric cooling schedule, then
// submits the best strategy visited. Admission is sequential.
func JoOffloadCache(m *mec.Market, seed uint64) (*Result, error) {
	if m == nil {
		return nil, fmt.Errorf("baselines: nil market")
	}
	r := rng.New(seed)
	n := len(m.Providers)
	nc := m.Net.NumCloudlets()
	adm := newAdmission(m)
	pl := make(mec.Placement, n)

	const (
		initialTemp = 1.0
		cooling     = 0.9
		sweeps      = 12
	)
	for l := 0; l < n; l++ {
		cur := mec.Remote
		curCost := gibbsObjective(m, l, cur)
		best, bestCost := cur, curCost
		temp := initialTemp
		for sweep := 0; sweep < sweeps; sweep++ {
			for step := 0; step <= nc; step++ {
				prop := r.Intn(nc + 1)
				s := prop
				if prop == nc {
					s = mec.Remote
				}
				c := gibbsObjective(m, l, s)
				if math.IsInf(c, 1) {
					continue
				}
				if c <= curCost || r.Bool(math.Exp(-(c-curCost)/temp)) {
					cur, curCost = s, c
					if c < bestCost {
						best, bestCost = s, c
					}
				}
			}
			temp *= cooling
		}
		// Submit: admitted if the chosen cloudlet still has room, else the
		// provider re-optimizes over what is left, else stays remote.
		pl[l] = submit(m, adm, l, best)
	}
	return &Result{Placement: pl, SocialCost: m.SocialCost(pl)}, nil
}

// submit admits provider l to its desired strategy if feasible; otherwise
// it falls back to the cheapest feasible strategy under the provider's own
// congestion-blind objective, or remote.
func submit(m *mec.Market, adm *admission, l, desired int) int {
	if desired == mec.Remote {
		return mec.Remote
	}
	if adm.fits(l, desired) {
		adm.admit(l, desired)
		return desired
	}
	bestS, bestC := mec.Remote, m.RemoteCost(l)
	for i := 0; i < m.Net.NumCloudlets(); i++ {
		if !adm.fits(l, i) {
			continue
		}
		if c := gibbsObjective(m, l, i); c < bestC {
			bestS, bestC = i, c
		}
	}
	if bestS != mec.Remote {
		adm.admit(l, bestS)
	}
	return bestS
}

// OffloadCache runs the greedy separate offload-then-cache baseline: each
// provider ranks cloudlets purely by offloading (transmission) cost for its
// request traffic and instantiates its service at the best one with
// remaining capacity. A provider whose every cloudlet is full — or whose
// best transmission cost already exceeds serving remotely — stays remote.
func OffloadCache(m *mec.Market) (*Result, error) {
	if m == nil {
		return nil, fmt.Errorf("baselines: nil market")
	}
	n := len(m.Providers)
	nc := m.Net.NumCloudlets()
	adm := newAdmission(m)
	pl := make(mec.Placement, n)

	for l := 0; l < n; l++ {
		order := make([]int, nc)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return m.TransmissionCost(l, order[a]) < m.TransmissionCost(l, order[b])
		})
		pl[l] = mec.Remote
		for _, i := range order {
			if math.IsInf(m.TransmissionCost(l, i), 1) {
				break
			}
			if adm.fits(l, i) {
				adm.admit(l, i)
				pl[l] = i
				break
			}
		}
	}
	return &Result{Placement: pl, SocialCost: m.SocialCost(pl)}, nil
}
