package core

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/game"
	"mecache/internal/mec"
	"mecache/internal/workload"
)

func genMarket(t *testing.T, seed uint64, size, providers int) *mec.Market {
	t.Helper()
	cfg := workload.Default(seed)
	cfg.NumProviders = providers
	m, err := workload.GenerateGTITM(size, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestApproTransportFeasible(t *testing.T) {
	m := genMarket(t, 1, 100, 100)
	res, err := Appro(m, ApproOptions{Solver: SolverTransport})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(res.Placement); err != nil {
		t.Fatal(err)
	}
	// Lemma 1: each cloudlet holds at most n_i services, so demands fit
	// within C(CL_i)/B(CL_i) by construction of Eq. 7.
	loads := m.Loads(res.Placement)
	for i, k := range loads {
		if k > res.VirtualSlots[i] {
			t.Fatalf("cloudlet %d holds %d services, slots allow %d", i, k, res.VirtualSlots[i])
		}
	}
	if err := m.CheckCapacity(res.Placement, 0); err != nil {
		t.Fatalf("Lemma 1 violated: %v", err)
	}
	if res.SocialCost <= 0 {
		t.Fatalf("social cost %v", res.SocialCost)
	}
	if res.SolverUsed != SolverTransport {
		t.Fatalf("solver used: %v", res.SolverUsed)
	}
}

// TestApproFeasibilityProperty is the Lemma-1 property test across random
// markets.
func TestApproFeasibilityProperty(t *testing.T) {
	check := func(seed uint64) bool {
		cfg := workload.Default(seed)
		cfg.NumProviders = 30 + int(seed%40)
		m, err := workload.GenerateGTITM(60+int(seed%80), cfg)
		if err != nil {
			return false
		}
		res, err := Appro(m, ApproOptions{Solver: SolverTransport})
		if err != nil {
			return false
		}
		loads := m.Loads(res.Placement)
		for i, k := range loads {
			if k > res.VirtualSlots[i] {
				return false
			}
		}
		return m.CheckCapacity(res.Placement, 0) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestApproShmoysTardosSmall(t *testing.T) {
	m := genMarket(t, 3, 50, 12)
	res, err := Appro(m, ApproOptions{Solver: SolverShmoysTardos})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(res.Placement); err != nil {
		t.Fatal(err)
	}
	if res.SolverUsed != SolverShmoysTardos {
		t.Fatalf("solver used: %v", res.SolverUsed)
	}
	// The knapsack reduction may overload a virtual cloudlet additively;
	// after merging, total load stays within n_i * max-demand slack. We
	// assert the weaker but meaningful bound: within one extra service's
	// demand per cloudlet.
	aMax, bMax := m.MaxDemands()
	slack := math.Max(aMax, bMax)
	nc := m.Net.NumCloudlets()
	compute := make([]float64, nc)
	for l, s := range res.Placement {
		if s != mec.Remote {
			compute[s] += m.Providers[l].ComputeDemand()
		}
	}
	for i := range m.Net.Cloudlets {
		if compute[i] > m.Net.Cloudlets[i].ComputeCap+float64(res.VirtualSlots[i])*slack+1e-6 {
			t.Fatalf("cloudlet %d grossly overloaded", i)
		}
	}
}

func TestApproAutoSelectsBySize(t *testing.T) {
	small := genMarket(t, 5, 50, 8)
	res, err := Appro(small, ApproOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SolverUsed != SolverShmoysTardos {
		t.Fatalf("small instance used %v, want shmoys-tardos", res.SolverUsed)
	}
	large := genMarket(t, 5, 200, 100)
	res2, err := Appro(large, ApproOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.SolverUsed != SolverTransport {
		t.Fatalf("large instance used %v, want transport", res2.SolverUsed)
	}
}

// TestApproRatioAgainstExact certifies the Lemma-2 style guarantee on tiny
// markets: Appro's social cost is within 2δκ of the exact optimum.
func TestApproRatioAgainstExact(t *testing.T) {
	check := func(seed uint64) bool {
		cfg := workload.Default(seed)
		cfg.NumProviders = 5
		m, err := workload.GenerateGTITM(50, cfg)
		if err != nil {
			return false
		}
		res, err := Appro(m, ApproOptions{Solver: SolverTransport})
		if err != nil {
			return false
		}
		_, opt, err := game.ExactOptimum(m, 1<<22)
		if err != nil {
			return false
		}
		if opt <= 0 {
			return false
		}
		return res.SocialCost <= ApproximationRatio(m)*opt+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestApproRemoteOnlyWhenCheaper(t *testing.T) {
	// The transport solver is exact on the reduced cost, so a provider goes
	// remote only if no cloudlet beats remote under reduced costs, given
	// slot competition. Weak check: if every provider has a cloudlet whose
	// reduced cost undercuts remote and slots are plentiful, nobody stays
	// remote.
	m := genMarket(t, 7, 150, 20)
	res, err := Appro(m, ApproOptions{Solver: SolverTransport})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.VirtualSlots {
		total += s
	}
	if total < len(m.Providers) {
		t.Skip("not enough slots for the check")
	}
	for l, s := range res.Placement {
		if s != mec.Remote {
			continue
		}
		// Remote must have been the cheapest reduced-cost option... or the
		// cloudlet slots were taken by cheaper providers. Only flag the
		// blatant case: remote chosen while strictly dominated everywhere
		// AND the chosen cloudlet of nobody conflicts. Simplest sound
		// assertion: reduced remote cost <= max over cloudlets' reduced
		// cost (vacuous otherwise). Use the solver's optimality instead:
		_ = l
	}
	// The real optimality assertion: no provider pair can swap and reduce
	// the reduced-cost objective (exactness of min-cost flow).
	for a := 0; a < len(m.Providers); a++ {
		for b := a + 1; b < len(m.Providers); b++ {
			sa, sb := res.Placement[a], res.Placement[b]
			if sa == sb {
				continue
			}
			cur := reducedCost(m, a, sa) + reducedCost(m, b, sb)
			swapped := reducedCost(m, a, sb) + reducedCost(m, b, sa)
			if swapped < cur-1e-9 {
				t.Fatalf("providers %d,%d could swap to improve reduced cost (%v -> %v)", a, b, cur, swapped)
			}
		}
	}
}

func TestLCFBasic(t *testing.T) {
	m := genMarket(t, 11, 100, 60)
	res, err := LCF(m, LCFOptions{Xi: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Coordinated); got != 42 {
		t.Fatalf("coordinated %d providers, want 42 = floor(0.7*60)", got)
	}
	if err := m.CheckCapacity(res.Placement, 0); err != nil {
		t.Fatalf("LCF placement violates capacity: %v", err)
	}
	// Coordinated providers must sit exactly where Appro put them.
	for _, l := range res.Coordinated {
		if res.Placement[l] != res.Appro.Placement[l] {
			t.Fatalf("coordinated provider %d moved from its Appro strategy", l)
		}
	}
	// Cost split must add up.
	if math.Abs(res.CoordinatedCost+res.SelfishCost-res.SocialCost) > 1e-6 {
		t.Fatalf("cost split %v + %v != social %v", res.CoordinatedCost, res.SelfishCost, res.SocialCost)
	}
}

func TestLCFSelfishAtNash(t *testing.T) {
	m := genMarket(t, 13, 100, 40)
	res, err := LCF(m, LCFOptions{Xi: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := game.New(m)
	for _, l := range res.Coordinated {
		g.Pinned[l] = true
	}
	if !g.IsNash(res.Placement) {
		t.Fatal("selfish providers are not at a Nash equilibrium")
	}
}

func TestLCFXiExtremes(t *testing.T) {
	m := genMarket(t, 17, 80, 30)
	// Xi = 1: everyone coordinated -> placement equals Appro's.
	all, err := LCF(m, LCFOptions{Xi: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for l := range m.Providers {
		if all.Placement[l] != all.Appro.Placement[l] {
			t.Fatalf("xi=1: provider %d deviates from Appro", l)
		}
	}
	if math.Abs(all.SocialCost-all.Appro.SocialCost) > 1e-9 {
		t.Fatalf("xi=1 social cost %v != Appro %v", all.SocialCost, all.Appro.SocialCost)
	}
	// Xi = 0: pure selfish game.
	none, err := LCF(m, LCFOptions{Xi: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(none.Coordinated) != 0 {
		t.Fatalf("xi=0 coordinated %d providers", len(none.Coordinated))
	}
	if none.CoordinatedCost != 0 {
		t.Fatalf("xi=0 coordinated cost %v", none.CoordinatedCost)
	}
}

func TestLCFValidatesXi(t *testing.T) {
	m := genMarket(t, 1, 50, 10)
	if _, err := LCF(m, LCFOptions{Xi: 1.5}); err == nil {
		t.Fatal("xi > 1 accepted")
	}
	if _, err := LCF(m, LCFOptions{Xi: -0.1}); err == nil {
		t.Fatal("xi < 0 accepted")
	}
	if _, err := LCF(nil, LCFOptions{Xi: 0.5}); err == nil {
		t.Fatal("nil market accepted")
	}
}

func TestLCFDeterministic(t *testing.T) {
	m := genMarket(t, 19, 100, 50)
	a, err := LCF(m, LCFOptions{Xi: 0.7, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LCF(m, LCFOptions{Xi: 0.7, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for l := range a.Placement {
		if a.Placement[l] != b.Placement[l] {
			t.Fatalf("same seed, different placements at provider %d", l)
		}
	}
}

func TestRankByCostOrdering(t *testing.T) {
	m := genMarket(t, 23, 60, 20)
	res, err := Appro(m, ApproOptions{Solver: SolverTransport})
	if err != nil {
		t.Fatal(err)
	}
	ranked := RankByCost(m, res.Placement)
	if len(ranked) != 20 {
		t.Fatalf("ranked %d providers", len(ranked))
	}
	for k := 1; k < len(ranked); k++ {
		a := m.ProviderCost(res.Placement, ranked[k-1])
		b := m.ProviderCost(res.Placement, ranked[k])
		if a < b-1e-12 {
			t.Fatalf("ranking not decreasing at %d: %v then %v", k, a, b)
		}
	}
}

// TestMoreCoordinationHelps mirrors Fig. 3(a): the social cost under LCF
// should (weakly, on average) decrease as the coordinated fraction grows.
// Averaged over seeds to smooth the game's randomness.
func TestMoreCoordinationHelps(t *testing.T) {
	m := genMarket(t, 29, 150, 80)
	avg := func(xi float64) float64 {
		sum := 0.0
		const runs = 5
		for s := 0; s < runs; s++ {
			res, err := LCF(m, LCFOptions{Xi: xi, Seed: uint64(s)})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.SocialCost
		}
		return sum / runs
	}
	low := avg(0.1)
	high := avg(0.9)
	if high > low*1.02 { // 2% tolerance for game noise
		t.Fatalf("more coordination raised social cost: xi=0.9 -> %v vs xi=0.1 -> %v", high, low)
	}
}

func BenchmarkAppro100x250(b *testing.B) {
	cfg := workload.Default(4)
	cfg.NumProviders = 100
	m, err := workload.GenerateGTITM(250, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Appro(m, ApproOptions{Solver: SolverTransport}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLCF100x250(b *testing.B) {
	cfg := workload.Default(4)
	cfg.NumProviders = 100
	m, err := workload.GenerateGTITM(250, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LCF(m, LCFOptions{Xi: 0.7, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
