package core

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/game"
	"mecache/internal/mec"
	"mecache/internal/rng"
	"mecache/internal/workload"
)

// TestApproExactUnderNonlinearCongestion: the marginal slot pricing keeps
// the transport reduction's objective equal to the true social cost under
// any valid congestion model, so Appro's solution must still be optimal
// among slotted placements — verified against brute force on small
// markets.
func TestApproExactUnderNonlinearCongestion(t *testing.T) {
	models := []mec.CongestionModel{
		mec.PolynomialCongestion{Degree: 2},
		mec.ExponentialCongestion{Base: 1.5},
	}
	for _, cm := range models {
		cm := cm
		check := func(seed uint64) bool {
			cfg := workload.Default(seed)
			cfg.NumProviders = 5
			m, err := workload.GenerateGTITM(50, cfg)
			if err != nil {
				return false
			}
			if err := m.SetCongestionModel(cm); err != nil {
				return false
			}
			res, err := Appro(m, ApproOptions{Solver: SolverTransport})
			if err != nil {
				return false
			}
			// Brute-force the slotted optimum: every provider to any
			// cloudlet with free slots or remote.
			slots := m.VirtualSlots()
			best := bruteForceSlotted(m, slots)
			return res.SocialCost <= best+1e-6
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
			t.Fatalf("model %s: %v", cm.Name(), err)
		}
	}
}

// bruteForceSlotted enumerates all slot-respecting placements.
func bruteForceSlotted(m *mec.Market, slots []int) float64 {
	n := len(m.Providers)
	nc := m.Net.NumCloudlets()
	counts := make([]int, nc)
	pl := make(mec.Placement, n)
	best := math.Inf(1)
	var rec func(l int)
	rec = func(l int) {
		if l == n {
			if sc := m.SocialCost(pl); sc < best {
				best = sc
			}
			return
		}
		pl[l] = mec.Remote
		rec(l + 1)
		for i := 0; i < nc; i++ {
			if counts[i] < slots[i] {
				pl[l] = i
				counts[i]++
				rec(l + 1)
				counts[i]--
				pl[l] = mec.Remote
			}
		}
	}
	rec(0)
	return best
}

// TestPotentialUnderNonlinearCongestion re-proves the Lemma-3 property for
// the generalized model: improving moves still strictly decrease the
// Rosenthal potential by exactly the mover's gain.
func TestPotentialUnderNonlinearCongestion(t *testing.T) {
	cfg := workload.Default(77)
	cfg.NumProviders = 12
	m, err := workload.GenerateGTITM(60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetCongestionModel(mec.PolynomialCongestion{Degree: 2}); err != nil {
		t.Fatal(err)
	}
	g := game.New(m)
	check := func(seed uint64) bool {
		r := rng.New(seed)
		pl := make(mec.Placement, len(m.Providers))
		nc := m.Net.NumCloudlets()
		for l := range pl {
			k := r.Intn(nc + 1)
			if k == nc {
				pl[l] = mec.Remote
			} else {
				pl[l] = k
			}
		}
		l := r.Intn(len(pl))
		s, c := g.BestResponse(pl, l)
		cur := m.ProviderCost(pl, l)
		if c >= cur-1e-12 || s == pl[l] {
			return true
		}
		before := g.Potential(pl)
		moved := pl.Clone()
		moved[l] = s
		after := g.Potential(moved)
		return after < before-1e-12 && math.Abs((before-after)-(cur-c)) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestLCFUnderNonlinearCongestion runs the full mechanism with a quadratic
// model: dynamics converge, capacities hold, and the steeper congestion
// pushes LCF to spread load more (no cloudlet should be loaded beyond its
// linear-model counterpart's maximum).
func TestLCFUnderNonlinearCongestion(t *testing.T) {
	cfg := workload.Default(99)
	cfg.NumProviders = 60
	mLin, err := workload.GenerateGTITM(120, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mQuad, err := workload.GenerateGTITM(120, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mQuad.SetCongestionModel(mec.PolynomialCongestion{Degree: 2}); err != nil {
		t.Fatal(err)
	}
	lin, err := LCF(mLin, LCFOptions{Xi: 0.7, Seed: 1, Appro: ApproOptions{Solver: SolverTransport}})
	if err != nil {
		t.Fatal(err)
	}
	quad, err := LCF(mQuad, LCFOptions{Xi: 0.7, Seed: 1, Appro: ApproOptions{Solver: SolverTransport}})
	if err != nil {
		t.Fatal(err)
	}
	if err := mQuad.CheckCapacity(quad.Placement, 0); err != nil {
		t.Fatal(err)
	}
	maxLoad := func(m *mec.Market, pl mec.Placement) int {
		top := 0
		for _, k := range m.Loads(pl) {
			if k > top {
				top = k
			}
		}
		return top
	}
	if maxLoad(mQuad, quad.Placement) > maxLoad(mLin, lin.Placement) {
		t.Fatalf("quadratic congestion packed harder (%d) than linear (%d)",
			maxLoad(mQuad, quad.Placement), maxLoad(mLin, lin.Placement))
	}
	// The quadratic market's social cost under its own model must exceed
	// the linear market's (same instance, steeper penalties).
	if quad.SocialCost < lin.SocialCost-1e-9 {
		t.Fatalf("quadratic social cost %v below linear %v", quad.SocialCost, lin.SocialCost)
	}
}
