package core

import (
	"math"
	"math/bits"

	"mecache/internal/gap"
	"mecache/internal/mec"
)

// EpochSolveState is the warm-start cache one market carries across
// re-optimization epochs. It layers three reuse levels, every one of them
// byte-identical to the cold solve it replaces:
//
//  1. the GAP transport network and its row fingerprints
//     (gap.TransportState): an unchanged reduction returns the cached
//     assignment, small per-row deltas re-solve the repriced network in
//     place, structural changes rebuild into the retained arena;
//  2. the Shmoys-Tardos rounding components (gap.RoundingState): only
//     connected components of the item-slot graph whose columns changed are
//     re-matched, untouched components keep their integral assignments;
//  3. the full LCF result, keyed on a fingerprint of every market quantity
//     the pipeline reads plus the complete option set: an identical epoch
//     skips Appro, coordination, and the best-response dynamics outright.
//
// The zero value is ready to use. A state belongs to one logical market
// stream (e.g. one dynamic.Simulator, one daemon tenant); sharing it across
// markets is safe (fingerprints miss) but pointless. It is not safe for
// concurrent use.
type EpochSolveState struct {
	transport gap.TransportState
	rounding  gap.RoundingState

	lcfValid bool
	lcfKey   lcfKey
	lcfRes   *LCFResult

	// LCFHits / LCFMisses count full-result cache outcomes.
	LCFHits, LCFMisses uint64
	// LastSolver is the GAP engine the most recent solve used (or would
	// have used, on a full-result hit).
	LastSolver Solver
	// LastWarm reports whether the most recent solve reused any cached
	// work: a full-result hit, a transport exact hit or patch, or at least
	// one reused rounding component.
	LastWarm bool
	// LastResultHit reports a full LCF result cache hit specifically.
	LastResultHit bool
}

// Invalidate drops every cached layer; the next solve runs fully cold.
func (st *EpochSolveState) Invalidate() {
	if st == nil {
		return
	}
	st.transport.Invalidate()
	st.rounding.Invalidate()
	st.lcfValid = false
	st.lcfRes = nil
}

// TransportStats exposes the transport-layer counters (hits, misses,
// patched re-solves) for telemetry.
func (st *EpochSolveState) TransportStats() (hits, misses, patched uint64) {
	return st.transport.Hits, st.transport.Misses, st.transport.Patched
}

// lcfKey identifies one exact LCF invocation: the market fingerprint plus
// every option that can influence the result. Workers is deliberately
// absent — the sharded round is bit-identical to the serial one, so results
// are interchangeable across widths.
type lcfKey struct {
	marketFP        uint64
	xi              float64
	seed            uint64
	maxRounds       int
	strategy        Coordination
	reference       bool
	solver          Solver
	disallowRemote  bool
	congestionBlind bool
}

func lcfKeyOf(m *mec.Market, opts LCFOptions) lcfKey {
	return lcfKey{
		marketFP:        marketFingerprint(m),
		xi:              opts.Xi,
		seed:            opts.Seed,
		maxRounds:       opts.MaxRounds,
		strategy:        opts.Strategy,
		reference:       opts.Reference,
		solver:          opts.Appro.Solver,
		disallowRemote:  opts.Appro.DisallowRemote,
		congestionBlind: opts.Appro.CongestionBlind,
	}
}

// cfp is a 128-bit-state mixing hasher (FNV-1a paired with a
// rotate-multiply lane), mirroring the fingerprint scheme the gap warm
// states use.
type cfp struct{ a, b uint64 }

func newCFP() cfp {
	return cfp{a: 14695981039346656037, b: 0x9e3779b97f4a7c15}
}

func (h *cfp) word(w uint64) {
	h.a = (h.a ^ w) * 1099511628211
	h.b = bits.RotateLeft64(h.b^w, 29)*0xbf58476d1ce4e5b9 + 1
}

func (h *cfp) float(f float64) { h.word(math.Float64bits(f)) }
func (h *cfp) int(v int)       { h.word(uint64(v)) }
func (h *cfp) sum() uint64     { return h.a ^ (h.b * 1099511628211) }

// marketFingerprint hashes every market quantity the LCF pipeline reads:
// dimensions, per-cloudlet congestion coefficients, capacities and virtual
// slots, per-provider base-cost rows, remote costs and resource demands,
// and the congestion Level table up to the provider count. Any change that
// could alter the LCF outcome changes the fingerprint; hashing is O(n·nc)
// table reads — microseconds against the tens of milliseconds a solve
// costs.
func marketFingerprint(m *mec.Market) uint64 {
	h := newCFP()
	n := len(m.Providers)
	nc := m.Net.NumCloudlets()
	h.int(n)
	h.int(nc)
	for i := 0; i < nc; i++ {
		cl := &m.Net.Cloudlets[i]
		h.float(m.CongestionCoeff(i))
		h.float(cl.ComputeCap)
		h.float(cl.BandwidthCap)
	}
	for _, s := range m.VirtualSlots() {
		h.int(s)
	}
	for l := 0; l < n; l++ {
		p := &m.Providers[l]
		h.float(m.RemoteCost(l))
		h.float(p.ComputeDemand())
		h.float(p.BandwidthDemand())
		for i := 0; i < nc; i++ {
			h.float(m.BaseCost(l, i))
		}
	}
	for k := 1; k <= n; k++ {
		h.float(m.CongestionLevel(k))
	}
	return h.sum()
}

// cloneLCFResult deep-copies a result so cache entries and returned values
// never alias caller-visible slices (Reequilibrate mutates the placement it
// receives in place).
func cloneLCFResult(r *LCFResult) *LCFResult {
	c := *r
	c.Placement = append(mec.Placement(nil), r.Placement...)
	c.Coordinated = append([]int(nil), r.Coordinated...)
	c.Dynamics.Placement = append(mec.Placement(nil), r.Dynamics.Placement...)
	if r.Appro != nil {
		a := *r.Appro
		a.Placement = append(mec.Placement(nil), r.Appro.Placement...)
		a.VirtualSlots = append([]int(nil), r.Appro.VirtualSlots...)
		c.Appro = &a
	}
	return &c
}
