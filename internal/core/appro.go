// Package core implements the paper's contribution: Algorithm 1 (Appro), the
// approximation algorithm for service caching with non-selfish providers,
// and Algorithm 2 (LCF), the approximation-restricted Stackelberg strategy
// that coordinates the largest-cost providers and lets the rest play the
// congestion game selfishly.
package core

import (
	"fmt"
	"math"
	"sort"

	"mecache/internal/gap"
	"mecache/internal/mec"
	"mecache/internal/obs"
)

// Solver selects how Appro solves its GAP reduction.
type Solver int

// Solver kinds.
const (
	// SolverAuto picks Shmoys-Tardos for small reductions and the exact
	// transportation fast path for large ones.
	SolverAuto Solver = iota + 1
	// SolverTransport always uses the slotted min-cost-flow solver (exact
	// for the "one service per virtual cloudlet" reduction the paper
	// describes).
	SolverTransport
	// SolverShmoysTardos always uses the LP-rounding 2-approximation [34]
	// on the knapsack-shaped reduction.
	SolverShmoysTardos
)

func (s Solver) String() string {
	switch s {
	case SolverAuto:
		return "auto"
	case SolverTransport:
		return "transport"
	case SolverShmoysTardos:
		return "shmoys-tardos"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// autoThreshold is the items*virtual-bins size above which SolverAuto
// switches from the dense-LP Shmoys-Tardos path to the flow-based
// transportation path.
const autoThreshold = 3000

// ApproOptions configures Algorithm 1.
type ApproOptions struct {
	// Solver selects the GAP engine; zero value means SolverAuto.
	Solver Solver
	// DisallowRemote removes the "not to cache" strategy: every service
	// must be cached at some cloudlet (the literal Algorithm-1 setting).
	// The default (false) keeps the remote option, which both matches the
	// title's "to cache or not to cache" decision and keeps the reduction
	// feasible when cloudlet slots are scarce.
	DisallowRemote bool
	// CongestionBlind prices every virtual cloudlet of CL_i with the flat
	// Eq. 9 cost α_i + β_i + c_l^ins + c_i^bdw, exactly as Algorithm 1
	// states it. The default (false) instead prices the k-th virtual
	// cloudlet of CL_i with the marginal congestion it adds,
	// (α_i + β_i)·(2k−1), which keeps the reduction within the paper's
	// framework (the derivation "relies only on the non-decreasing of cost
	// with congestion levels") while making the GAP objective equal the
	// true social cost of the merged solution. The ablation benchmarks
	// compare the two.
	CongestionBlind bool
	// Trace receives decision events: a phase marker for the solve plus one
	// choice event per provider with its assigned strategy's Eq. 3 cost
	// broken out at the final loads. Nil disables tracing at zero cost.
	Trace obs.Tracer
	// State, when non-nil, carries the warm-start caches reused across
	// epoch solves (see EpochSolveState). The result is byte-identical with
	// or without it; warm paths only skip provably redundant work.
	State *EpochSolveState
}

// ApproResult is the outcome of Algorithm 1.
type ApproResult struct {
	// Placement assigns every provider a cloudlet or mec.Remote.
	Placement mec.Placement
	// SocialCost is Eq. (6) evaluated on Placement.
	SocialCost float64
	// ReducedCost is the congestion-free GAP objective of the solution
	// (cost function of Eq. 9), i.e. C' in the Lemma-2 analysis.
	ReducedCost float64
	// VirtualSlots is n_i per cloudlet (Eq. 7).
	VirtualSlots []int
	// SolverUsed records which GAP engine ran.
	SolverUsed Solver
}

// Appro is Algorithm 1: split every cloudlet CL_i into n_i virtual
// cloudlets (Eq. 7), reduce to a GAP instance whose costs ignore congestion
// (Eq. 9), solve it with the Shmoys-Tardos approximation (or the exact
// transportation fast path for the slotted shape), and merge the virtual
// cloudlets back into their real cloudlets.
func Appro(m *mec.Market, opts ApproOptions) (*ApproResult, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil market")
	}
	solver := opts.Solver
	if solver == 0 {
		solver = SolverAuto
	}
	n := len(m.Providers)
	slots := m.VirtualSlots()

	totalSlots := 0
	for _, s := range slots {
		totalSlots += s
	}
	if opts.DisallowRemote && totalSlots < n {
		return nil, fmt.Errorf("core: %d providers exceed %d virtual cloudlet slots and remote is disallowed", n, totalSlots)
	}

	if solver == SolverAuto {
		if n*(totalSlots+1) > autoThreshold {
			solver = SolverTransport
		} else {
			solver = SolverShmoysTardos
		}
	}

	var prevPatched uint64
	if opts.State != nil {
		prevPatched = opts.State.transport.Patched
	}
	var placement mec.Placement
	var err error
	switch solver {
	case SolverTransport:
		placement, err = approTransport(m, slots, opts)
	case SolverShmoysTardos:
		placement, err = approShmoysTardos(m, slots, opts)
	default:
		return nil, fmt.Errorf("core: unknown solver %v", solver)
	}
	if err != nil {
		return nil, err
	}
	if st := opts.State; st != nil {
		st.LastResultHit = false
		st.LastSolver = solver
		switch solver {
		case SolverTransport:
			// Warm = the reduction fingerprint matched exactly (solve
			// skipped) or the cached network was repriced in place.
			st.LastWarm = st.transport.LastWarm || st.transport.Patched > prevPatched
		case SolverShmoysTardos:
			st.LastWarm = st.rounding.LastWarm
		}
	}

	reduced := 0.0
	for l, s := range placement {
		reduced += reducedCost(m, l, s)
	}
	res := &ApproResult{
		Placement:    placement,
		SocialCost:   m.SocialCost(placement),
		ReducedCost:  reduced,
		VirtualSlots: slots,
		SolverUsed:   solver,
	}
	if opts.Trace != nil {
		opts.Trace.Emit(obs.Event{
			Kind: obs.KindPhase, SocialCost: res.SocialCost,
			Note: "appro solver=" + solver.String(),
		})
		loads := m.Loads(placement)
		for l, s := range placement {
			load := 0
			if s != mec.Remote {
				load = loads[s]
			}
			opts.Trace.Emit(obs.Event{
				Kind: obs.KindChoice, Provider: l, Strategy: s, From: mec.Remote,
				Load: load, Cost: m.Breakdown(l, s, load),
				Total: m.Breakdown(l, s, load).Total(),
			})
		}
	}
	return res, nil
}

// reducedCost is the Eq. 9 congestion-free cost of strategy s for provider
// l: α_i + β_i + c_l^ins + c_i^bdw plus the routing terms (folded into
// BaseCost), or the remote cost. Under a non-linear congestion model the
// flat surcharge is the single-tenant level (α_i+β_i)·Level(1).
func reducedCost(m *mec.Market, l, s int) float64 {
	if s == mec.Remote {
		return m.RemoteCost(l)
	}
	return m.CongestionCoeff(s)*m.CongestionLevel(1) + m.BaseCost(l, s)
}

// marginalCongestion is the social-cost increase of adding the k-th tenant
// to cloudlet i: coeff·(k·Level(k) − (k−1)·Level(k−1)). For the paper's
// proportional model this is (α_i+β_i)·(2k−1).
func marginalCongestion(m *mec.Market, i, k int) float64 {
	total := float64(k) * m.CongestionLevel(k)
	prev := float64(k-1) * m.CongestionLevel(k-1)
	return m.CongestionCoeff(i) * (total - prev)
}

// approTransport solves the slotted reduction exactly by min-cost flow:
// cloudlet CL_i offers n_i unit slots priced at the marginal congestion
// cost of each occupancy level (or the flat Eq. 9 surcharge when
// congestion-blind); an extra "remote" bin with n slots carries the
// not-to-cache option.
func approTransport(m *mec.Market, slots []int, opts ApproOptions) (mec.Placement, error) {
	n := len(m.Providers)
	nc := m.Net.NumCloudlets()
	bins := nc
	if !opts.DisallowRemote {
		bins++
	}
	base := make([][]float64, n)
	for l := 0; l < n; l++ {
		base[l] = make([]float64, bins)
		for i := 0; i < nc; i++ {
			base[l][i] = m.BaseCost(l, i)
		}
		if !opts.DisallowRemote {
			base[l][nc] = m.RemoteCost(l)
		}
	}
	binSlots := make([]int, bins)
	copy(binSlots, slots)
	if !opts.DisallowRemote {
		binSlots[nc] = n
	}
	marginal := func(bin, k int) float64 {
		if bin >= nc {
			return 0 // remote: no congestion
		}
		if opts.CongestionBlind {
			// Flat Eq. 9 surcharge: the single-tenant congestion level.
			return m.CongestionCoeff(bin) * m.CongestionLevel(1)
		}
		return marginalCongestion(m, bin, k)
	}
	var ts *gap.TransportState
	if opts.State != nil {
		ts = &opts.State.transport
	}
	sol, _, err := gap.SolveCongestionTransportWarm(base, binSlots, marginal, ts)
	if err != nil {
		return nil, fmt.Errorf("core: transport reduction: %w", err)
	}
	placement := make(mec.Placement, n)
	for l, b := range sol.Bin {
		if b == nc {
			placement[l] = mec.Remote
		} else {
			placement[l] = b
		}
	}
	return placement, nil
}

// approShmoysTardos solves the knapsack-shaped reduction with the
// LP-rounding approximation: every virtual cloudlet is a knapsack of
// capacity max{a_max, b_max} (any single service fits), item weights are
// the services' dominant resource demands. The k-th virtual cloudlet of a
// cloudlet carries that occupancy level's congestion surcharge (or the flat
// Eq. 9 one when congestion-blind).
func approShmoysTardos(m *mec.Market, slots []int, opts ApproOptions) (mec.Placement, error) {
	n := len(m.Providers)
	nc := m.Net.NumCloudlets()
	aMax, bMax := m.MaxDemands()
	capVC := math.Max(aMax, bMax)

	// Bin layout: all virtual cloudlets of CL_0, then CL_1, ...; optionally
	// a final remote bin big enough for everyone. slot is the occupancy
	// level (1-based) the virtual cloudlet represents.
	type binInfo struct {
		cloudlet int // -1 for remote
		slot     int
	}
	var binsMeta []binInfo
	for i := 0; i < nc; i++ {
		for k := 1; k <= slots[i]; k++ {
			binsMeta = append(binsMeta, binInfo{cloudlet: i, slot: k})
		}
	}
	if !opts.DisallowRemote {
		binsMeta = append(binsMeta, binInfo{cloudlet: -1})
	}
	bins := len(binsMeta)
	if bins == 0 {
		return nil, fmt.Errorf("core: no virtual cloudlets and remote disallowed")
	}

	ins := &gap.Instance{
		Cost:   make([][]float64, n),
		Weight: make([][]float64, n),
		Cap:    make([]float64, bins),
	}
	totalWeight := 0.0
	weights := make([]float64, n)
	for l := 0; l < n; l++ {
		p := &m.Providers[l]
		weights[l] = math.Max(p.ComputeDemand(), p.BandwidthDemand())
		totalWeight += weights[l]
	}
	for b := range binsMeta {
		if binsMeta[b].cloudlet >= 0 {
			ins.Cap[b] = capVC
		} else {
			ins.Cap[b] = totalWeight // remote holds everyone
		}
	}
	surcharge := func(i, k int) float64 {
		if opts.CongestionBlind {
			return m.CongestionCoeff(i) * m.CongestionLevel(1)
		}
		return marginalCongestion(m, i, k)
	}
	for l := 0; l < n; l++ {
		ins.Cost[l] = make([]float64, bins)
		ins.Weight[l] = make([]float64, bins)
		for b := range binsMeta {
			ins.Weight[l][b] = weights[l]
			if i := binsMeta[b].cloudlet; i >= 0 {
				ins.Cost[l][b] = m.BaseCost(l, i) + surcharge(i, binsMeta[b].slot)
			} else {
				ins.Cost[l][b] = m.RemoteCost(l)
			}
		}
	}
	var rs *gap.RoundingState
	if opts.State != nil {
		rs = &opts.State.rounding
	}
	sol, _, err := gap.SolveShmoysTardosWarm(ins, rs)
	if err != nil {
		return nil, fmt.Errorf("core: Shmoys-Tardos reduction: %w", err)
	}
	placement := make(mec.Placement, n)
	for l, b := range sol.Bin {
		if i := binsMeta[b].cloudlet; i >= 0 {
			placement[l] = i
		} else {
			placement[l] = mec.Remote
		}
	}
	return placement, nil
}

// ApproximationRatio returns the Lemma-2 guarantee 2·δ·κ for the market.
func ApproximationRatio(m *mec.Market) float64 {
	delta, kappa := m.DeltaKappa()
	return 2 * delta * kappa
}

// RankByCost orders provider indices by decreasing cost under pl (the
// Largest Cost First ranking of Algorithm 2, step 2). Costs come from a
// single ProviderCosts pass, so the ranking is O(N log N) instead of the
// O(N²) a per-provider placement rescan would cost.
func RankByCost(m *mec.Market, pl mec.Placement) []int {
	idx := make([]int, len(m.Providers))
	for l := range idx {
		idx[l] = l
	}
	costs := m.ProviderCosts(pl)
	sort.SliceStable(idx, func(a, b int) bool { return costs[idx[a]] > costs[idx[b]] })
	return idx
}
