package core

import (
	"math"
	"reflect"
	"testing"

	"mecache/internal/mec"
)

func lcfResultsEqual(t *testing.T, tag string, a, b *LCFResult) {
	t.Helper()
	if !reflect.DeepEqual(a.Placement, b.Placement) {
		t.Fatalf("%s: placements differ", tag)
	}
	if math.Float64bits(a.SocialCost) != math.Float64bits(b.SocialCost) {
		t.Fatalf("%s: social cost bits differ: %x vs %x",
			tag, math.Float64bits(a.SocialCost), math.Float64bits(b.SocialCost))
	}
	if !reflect.DeepEqual(a.Coordinated, b.Coordinated) {
		t.Fatalf("%s: coordinated sets differ", tag)
	}
	if math.Float64bits(a.CoordinatedCost) != math.Float64bits(b.CoordinatedCost) ||
		math.Float64bits(a.SelfishCost) != math.Float64bits(b.SelfishCost) {
		t.Fatalf("%s: group costs differ", tag)
	}
	if a.Dynamics.Rounds != b.Dynamics.Rounds || a.Dynamics.Moves != b.Dynamics.Moves ||
		a.Dynamics.Converged != b.Dynamics.Converged {
		t.Fatalf("%s: dynamics trajectory differs: rounds %d/%d moves %d/%d",
			tag, a.Dynamics.Rounds, b.Dynamics.Rounds, a.Dynamics.Moves, b.Dynamics.Moves)
	}
	if math.Float64bits(a.Appro.SocialCost) != math.Float64bits(b.Appro.SocialCost) ||
		math.Float64bits(a.Appro.ReducedCost) != math.Float64bits(b.Appro.ReducedCost) {
		t.Fatalf("%s: appro costs differ", tag)
	}
	if !reflect.DeepEqual(a.Appro.Placement, b.Appro.Placement) {
		t.Fatalf("%s: appro placements differ", tag)
	}
}

// TestEpochStateByteIdentity sweeps an epoch-like sequence (same market,
// varying seeds, both GAP engines) and requires the stateful solve to match
// the stateless one bit-for-bit at every step.
func TestEpochStateByteIdentity(t *testing.T) {
	for _, solver := range []Solver{SolverTransport, SolverShmoysTardos} {
		providers := 60
		if solver == SolverShmoysTardos {
			providers = 16 // keep the dense LP path tractable
		}
		m := genMarket(t, 11, 80, providers)
		var st EpochSolveState
		for epoch := uint64(0); epoch < 5; epoch++ {
			opts := LCFOptions{Xi: 0.6, Seed: 100 + epoch, Appro: ApproOptions{Solver: solver}}
			cold, err := LCF(m, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.State = &st
			warm, err := LCF(m, opts)
			if err != nil {
				t.Fatal(err)
			}
			lcfResultsEqual(t, solver.String(), cold, warm)
		}
		if st.LCFMisses == 0 {
			t.Fatalf("%s: result cache never consulted", solver)
		}
	}
}

// TestEpochStateResultCacheHit pins the full-result fast path: an identical
// repeat invocation is served from the cache, and mutating the returned
// placement (as Reequilibrate does) must not poison later hits.
func TestEpochStateResultCacheHit(t *testing.T) {
	m := genMarket(t, 7, 80, 50)
	var st EpochSolveState
	opts := LCFOptions{Xi: 0.7, Seed: 42, Appro: ApproOptions{Solver: SolverTransport}, State: &st}

	first, err := LCF(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.LCFHits != 0 || st.LCFMisses != 1 || st.LastResultHit {
		t.Fatalf("after cold call: hits=%d misses=%d lastHit=%v", st.LCFHits, st.LCFMisses, st.LastResultHit)
	}
	// Caller-side mutation of every returned slice.
	first.Placement[0] = mec.Remote
	first.Dynamics.Placement[1] = mec.Remote
	if len(first.Coordinated) > 0 {
		first.Coordinated[0] = -1
	}

	second, err := LCF(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.LCFHits != 1 || !st.LastResultHit || !st.LastWarm {
		t.Fatalf("after repeat: hits=%d lastHit=%v lastWarm=%v", st.LCFHits, st.LastResultHit, st.LastWarm)
	}
	if st.LastSolver != SolverTransport {
		t.Fatalf("LastSolver = %v", st.LastSolver)
	}
	cold, err := LCF(m, LCFOptions{Xi: 0.7, Seed: 42, Appro: ApproOptions{Solver: SolverTransport}})
	if err != nil {
		t.Fatal(err)
	}
	lcfResultsEqual(t, "cache-hit", cold, second)
}

// TestEpochStateMarketDeltaMisses: any market change flips the fingerprint,
// so the result cache misses and the fresh solve matches a stateless one.
// The GAP-level transport state still serves the changed reduction warm.
func TestEpochStateMarketDeltaMisses(t *testing.T) {
	m := genMarket(t, 19, 80, 45)
	var st EpochSolveState
	opts := LCFOptions{Xi: 0.5, Seed: 9, Appro: ApproOptions{Solver: SolverTransport}, State: &st}
	if _, err := LCF(m, opts); err != nil {
		t.Fatal(err)
	}
	// Grow the market: a copy of provider 0 attached elsewhere.
	p := m.Providers[0]
	p.AttachNode = m.Providers[1].AttachNode
	if _, err := m.AppendProvider(p); err != nil {
		t.Fatal(err)
	}
	warm, err := LCF(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.LCFHits != 0 || st.LCFMisses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2 (fingerprint should have changed)", st.LCFHits, st.LCFMisses)
	}
	cold, err := LCF(m, LCFOptions{Xi: 0.5, Seed: 9, Appro: ApproOptions{Solver: SolverTransport}})
	if err != nil {
		t.Fatal(err)
	}
	lcfResultsEqual(t, "delta", cold, warm)

	// And shrinking back must miss again rather than resurrect stale hits.
	if err := m.RemoveProvider(len(m.Providers) - 1); err != nil {
		t.Fatal(err)
	}
	warm2, err := LCF(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	cold2, err := LCF(m, LCFOptions{Xi: 0.5, Seed: 9, Appro: ApproOptions{Solver: SolverTransport}})
	if err != nil {
		t.Fatal(err)
	}
	lcfResultsEqual(t, "shrink", cold2, warm2)
}

// TestEpochStateOptionChangesMiss: every option in the key must
// differentiate cache entries.
func TestEpochStateOptionChangesMiss(t *testing.T) {
	m := genMarket(t, 23, 80, 40)
	base := LCFOptions{Xi: 0.5, Seed: 3, Appro: ApproOptions{Solver: SolverTransport}}
	variants := []LCFOptions{
		{Xi: 0.6, Seed: 3, Appro: ApproOptions{Solver: SolverTransport}},
		{Xi: 0.5, Seed: 4, Appro: ApproOptions{Solver: SolverTransport}},
		{Xi: 0.5, Seed: 3, MaxRounds: 500, Appro: ApproOptions{Solver: SolverTransport}},
		{Xi: 0.5, Seed: 3, Strategy: CoordRandom, Appro: ApproOptions{Solver: SolverTransport}},
		{Xi: 0.5, Seed: 3, Reference: true, Appro: ApproOptions{Solver: SolverTransport}},
		{Xi: 0.5, Seed: 3, Appro: ApproOptions{Solver: SolverTransport, CongestionBlind: true}},
	}
	for vi, v := range variants {
		var st EpochSolveState
		b := base
		b.State = &st
		if _, err := LCF(m, b); err != nil {
			t.Fatal(err)
		}
		v.State = &st
		got, err := LCF(m, v)
		if err != nil {
			t.Fatal(err)
		}
		if st.LCFHits != 0 {
			t.Fatalf("variant %d: spurious result-cache hit", vi)
		}
		v.State = nil
		cold, err := LCF(m, v)
		if err != nil {
			t.Fatal(err)
		}
		lcfResultsEqual(t, "variant", cold, got)
	}
}

// TestEpochStateWorkersIdentity: the sharded selfish round behind
// LCFOptions.Workers must not change the result, with or without a state.
func TestEpochStateWorkersIdentity(t *testing.T) {
	m := genMarket(t, 29, 80, 55)
	serial, err := LCF(m, LCFOptions{Xi: 0.4, Seed: 8, Appro: ApproOptions{Solver: SolverTransport}})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		var st EpochSolveState
		got, err := LCF(m, LCFOptions{
			Xi: 0.4, Seed: 8, Appro: ApproOptions{Solver: SolverTransport},
			State: &st, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		lcfResultsEqual(t, "workers", serial, got)
	}
}

// TestEpochStateInvalidate drops every layer and forces a cold solve.
func TestEpochStateInvalidate(t *testing.T) {
	m := genMarket(t, 31, 80, 40)
	var st EpochSolveState
	opts := LCFOptions{Xi: 0.5, Seed: 6, Appro: ApproOptions{Solver: SolverTransport}, State: &st}
	if _, err := LCF(m, opts); err != nil {
		t.Fatal(err)
	}
	st.Invalidate()
	got, err := LCF(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.LCFHits != 0 || st.LCFMisses != 2 {
		t.Fatalf("hits=%d misses=%d after invalidate, want 0/2", st.LCFHits, st.LCFMisses)
	}
	cold, err := LCF(m, LCFOptions{Xi: 0.5, Seed: 6, Appro: ApproOptions{Solver: SolverTransport}})
	if err != nil {
		t.Fatal(err)
	}
	lcfResultsEqual(t, "invalidate", cold, got)
	hits, misses, _ := st.TransportStats()
	if hits+misses == 0 {
		t.Fatal("transport layer never consulted")
	}
}
