package core

import (
	"fmt"
	"sort"

	"mecache/internal/game"
	"mecache/internal/mec"
	"mecache/internal/obs"
	"mecache/internal/rng"
)

// Coordination selects which providers the leader coordinates — the
// Stackelberg design choice Algorithm 2 makes with Largest Cost First.
// The alternatives exist for the ablation study validating that choice.
type Coordination int

// Coordination strategies.
const (
	// CoordLargestCostFirst is the paper's LCF: coordinate the providers
	// whose caching cost under the Appro solution is largest, "to enlarge
	// the influence of coordinated network service providers".
	CoordLargestCostFirst Coordination = iota + 1
	// CoordSmallestCostFirst coordinates the cheapest providers instead
	// (the adversarial ablation).
	CoordSmallestCostFirst
	// CoordLargestDemandFirst coordinates the providers with the largest
	// dominant resource demand.
	CoordLargestDemandFirst
	// CoordRandom coordinates a uniform random subset.
	CoordRandom
)

func (c Coordination) String() string {
	switch c {
	case CoordLargestCostFirst:
		return "largest-cost-first"
	case CoordSmallestCostFirst:
		return "smallest-cost-first"
	case CoordLargestDemandFirst:
		return "largest-demand-first"
	case CoordRandom:
		return "random"
	default:
		return fmt.Sprintf("Coordination(%d)", int(c))
	}
}

// LCFOptions configures Algorithm 2.
type LCFOptions struct {
	// Xi is ξ, the fraction of providers the infrastructure provider
	// coordinates (the paper's experiments sweep 1-ξ, the selfish
	// fraction). Must be in [0, 1].
	Xi float64
	// Seed drives the randomized round-robin order of the best-response
	// dynamics, making runs reproducible.
	Seed uint64
	// MaxRounds bounds the dynamics (0 means the defensive default).
	MaxRounds int
	// Appro configures the inner Algorithm-1 call.
	Appro ApproOptions
	// Strategy selects the coordinated subset; the zero value is the
	// paper's Largest Cost First.
	Strategy Coordination
	// Trace receives decision events from the whole pipeline: the inner
	// Appro solve (unless Appro.Trace is set separately), the coordination
	// pick, every best-response move and round of the selfish providers,
	// and the final convergence. Nil disables tracing at zero cost.
	Trace obs.Tracer
	// Reference runs the inner best-response dynamics on the pre-engine
	// naive scan (game.Game.NaiveScan) — the differential-test and
	// benchmark-baseline hook; the result must be identical either way.
	Reference bool
	// State, when non-nil, warm-starts the solve from the previous epoch:
	// the GAP reduction caches revalidate against the market fingerprint,
	// and a fully identical invocation returns the cached LCF result
	// outright. Tracing bypasses the full-result cache (events must still
	// fire) but keeps the GAP-level reuse. Results are byte-identical with
	// or without a state.
	State *EpochSolveState
	// Workers, when > 1, runs the selfish best-response round sharded by
	// cloudlet-locality components (game.Game.Workers). The outcome is
	// bit-identical at every worker count.
	Workers int
}

// selectCoordinated applies the coordination strategy to pick which
// providers the leader pins to the Appro solution.
func selectCoordinated(m *mec.Market, approPl mec.Placement, k int, strategy Coordination, seed uint64) ([]int, error) {
	n := len(m.Providers)
	switch strategy {
	case CoordLargestCostFirst:
		return append([]int(nil), RankByCost(m, approPl)[:k]...), nil
	case CoordSmallestCostFirst:
		ranked := RankByCost(m, approPl)
		picked := make([]int, k)
		for i := 0; i < k; i++ {
			picked[i] = ranked[n-1-i]
		}
		return picked, nil
	case CoordLargestDemandFirst:
		idx := make([]int, n)
		for l := range idx {
			idx[l] = l
		}
		demand := func(l int) float64 {
			p := &m.Providers[l]
			if c, b := p.ComputeDemand(), p.BandwidthDemand(); c > b {
				return c
			}
			return p.BandwidthDemand()
		}
		sort.SliceStable(idx, func(a, b int) bool { return demand(idx[a]) > demand(idx[b]) })
		return idx[:k], nil
	case CoordRandom:
		return rng.New(seed^0xc00d).Choose(n, k), nil
	default:
		return nil, fmt.Errorf("core: unknown coordination strategy %v", strategy)
	}
}

// LCFResult is the outcome of Algorithm 2.
type LCFResult struct {
	// Placement is the final strategy profile: coordinated providers pinned
	// to their Appro strategies, selfish providers at a Nash equilibrium.
	Placement mec.Placement
	// SocialCost is Eq. (6) on Placement.
	SocialCost float64
	// Coordinated lists the providers selected by Largest Cost First.
	Coordinated []int
	// CoordinatedCost and SelfishCost split the social cost by group
	// (the quantities plotted in Figs. 2(b)/(c) and 3(b)/(c)).
	CoordinatedCost float64
	SelfishCost     float64
	// Appro is the inner Algorithm-1 result that restricted the strategy.
	Appro *ApproResult
	// Dynamics reports the best-response run of the selfish providers.
	Dynamics game.DynamicsResult
}

// LCF is Algorithm 2, the approximation-restricted Stackelberg strategy:
//
//  1. run Appro for the non-selfish problem;
//  2. select the ⌊ξ·|N|⌋ providers with the largest caching cost under the
//     approximate solution (Largest Cost First);
//  3. pin those providers to their Appro strategies;
//  4. let the remaining (1-ξ)·|N| selfish providers better-respond to a
//     Nash equilibrium of the congestion game.
func LCF(m *mec.Market, opts LCFOptions) (*LCFResult, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil market")
	}
	if opts.Xi < 0 || opts.Xi > 1 {
		return nil, fmt.Errorf("core: xi = %v outside [0,1]", opts.Xi)
	}

	st := opts.State
	useCache := st != nil && opts.Trace == nil && opts.Appro.Trace == nil
	var key lcfKey
	if useCache {
		key = lcfKeyOf(m, opts)
		if st.lcfValid && st.lcfKey == key {
			st.LCFHits++
			st.LastResultHit = true
			st.LastWarm = true
			st.LastSolver = st.lcfRes.Appro.SolverUsed
			return cloneLCFResult(st.lcfRes), nil
		}
		st.LCFMisses++
	}

	ao := opts.Appro
	if ao.Trace == nil {
		ao.Trace = opts.Trace
	}
	ao.State = st
	appro, err := Appro(m, ao)
	if err != nil {
		return nil, err
	}

	n := len(m.Providers)
	numCoordinated := int(opts.Xi * float64(n))
	strategy := opts.Strategy
	if strategy == 0 {
		strategy = CoordLargestCostFirst
	}
	coordinated, err := selectCoordinated(m, appro.Placement, numCoordinated, strategy, opts.Seed)
	if err != nil {
		return nil, err
	}
	if opts.Trace != nil {
		opts.Trace.Emit(obs.Event{
			Kind: obs.KindPhase,
			Note: fmt.Sprintf("lcf coordinate %d/%d strategy=%s", numCoordinated, n, strategy),
		})
	}

	g := game.New(m)
	g.Trace = opts.Trace
	g.NaiveScan = opts.Reference
	g.Workers = opts.Workers
	init := make(mec.Placement, n)
	for l := range init {
		init[l] = mec.Remote
	}
	for _, l := range coordinated {
		g.Pinned[l] = true
		init[l] = appro.Placement[l]
	}

	dyn, err := g.BestResponseDynamics(init, rng.New(opts.Seed), opts.MaxRounds)
	if err != nil {
		return nil, err
	}

	selfish := make([]int, 0, n-numCoordinated)
	for l := 0; l < n; l++ {
		if !g.Pinned[l] {
			selfish = append(selfish, l)
		}
	}
	if opts.Trace != nil {
		opts.Trace.Emit(obs.Event{
			Kind: obs.KindPhase, Round: dyn.Rounds,
			SocialCost: m.SocialCost(dyn.Placement),
			Note:       fmt.Sprintf("lcf converged rounds=%d moves=%d", dyn.Rounds, dyn.Moves),
		})
	}
	res := &LCFResult{
		Placement:       dyn.Placement,
		SocialCost:      m.SocialCost(dyn.Placement),
		Coordinated:     coordinated,
		CoordinatedCost: m.GroupCost(dyn.Placement, coordinated),
		SelfishCost:     m.GroupCost(dyn.Placement, selfish),
		Appro:           appro,
		Dynamics:        dyn,
	}
	if useCache {
		// Store a deep clone: callers mutate the returned placement in
		// place (Reequilibrate's failure and hysteresis fixups).
		st.lcfKey = key
		st.lcfRes = cloneLCFResult(res)
		st.lcfValid = true
	}
	return res, nil
}
