package core

import (
	"testing"

	"mecache/internal/workload"
)

func TestCoordinationStrategyNames(t *testing.T) {
	want := map[Coordination]string{
		CoordLargestCostFirst:   "largest-cost-first",
		CoordSmallestCostFirst:  "smallest-cost-first",
		CoordLargestDemandFirst: "largest-demand-first",
		CoordRandom:             "random",
	}
	for c, name := range want {
		if c.String() != name {
			t.Fatalf("%d.String() = %q, want %q", int(c), c.String(), name)
		}
	}
}

func TestAllStrategiesProduceValidResults(t *testing.T) {
	m := genMarket(t, 41, 100, 50)
	for _, st := range []Coordination{
		CoordLargestCostFirst, CoordSmallestCostFirst, CoordLargestDemandFirst, CoordRandom,
	} {
		res, err := LCF(m, LCFOptions{Xi: 0.5, Seed: 2, Strategy: st,
			Appro: ApproOptions{Solver: SolverTransport}})
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if got := len(res.Coordinated); got != 25 {
			t.Fatalf("%v coordinated %d providers, want 25", st, got)
		}
		if err := m.CheckCapacity(res.Placement, 0); err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		// Coordinated providers must sit at their Appro strategies.
		for _, l := range res.Coordinated {
			if res.Placement[l] != res.Appro.Placement[l] {
				t.Fatalf("%v: coordinated provider %d moved", st, l)
			}
		}
	}
	if _, err := LCF(m, LCFOptions{Xi: 0.5, Strategy: Coordination(99)}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestLargestCostFirstBeatsAdversarialChoice validates the paper's design
// choice: coordinating the largest-cost providers yields a lower average
// social cost than coordinating the smallest-cost ones.
func TestLargestCostFirstBeatsAdversarialChoice(t *testing.T) {
	const reps = 8
	var lcf, scf float64
	for rep := 0; rep < reps; rep++ {
		cfg := workload.Default(uint64(rep) + 700)
		cfg.NumProviders = 80
		m, err := workload.GenerateGTITM(200, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, err := LCF(m, LCFOptions{Xi: 0.5, Seed: uint64(rep), Strategy: CoordLargestCostFirst,
			Appro: ApproOptions{Solver: SolverTransport}})
		if err != nil {
			t.Fatal(err)
		}
		b, err := LCF(m, LCFOptions{Xi: 0.5, Seed: uint64(rep), Strategy: CoordSmallestCostFirst,
			Appro: ApproOptions{Solver: SolverTransport}})
		if err != nil {
			t.Fatal(err)
		}
		lcf += a.SocialCost
		scf += b.SocialCost
	}
	// Allow 1% slack: the advantage is an average-case property.
	if lcf > scf*1.01 {
		t.Fatalf("largest-cost-first averaged %v, worse than smallest-cost-first %v", lcf/reps, scf/reps)
	}
}

func TestRandomCoordinationDeterministicPerSeed(t *testing.T) {
	m := genMarket(t, 43, 80, 30)
	a, err := LCF(m, LCFOptions{Xi: 0.4, Seed: 9, Strategy: CoordRandom})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LCF(m, LCFOptions{Xi: 0.4, Seed: 9, Strategy: CoordRandom})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Coordinated {
		if a.Coordinated[i] != b.Coordinated[i] {
			t.Fatal("random coordination not reproducible for equal seeds")
		}
	}
}
