// Package plot renders experiment tables as self-contained SVG line charts
// (no external dependencies), so `mecbench -format svg` can regenerate the
// paper's figures as actual plots.
package plot

import (
	"fmt"
	"io"
	"math"

	"mecache/internal/experiments"
)

const (
	width   = 640.0
	height  = 420.0
	marginL = 70.0
	marginR = 20.0
	marginT = 48.0
	marginB = 64.0
)

// palette holds the series colors (colorblind-safe Okabe-Ito subset).
var palette = []string{"#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9"}

// SVG renders the table as a line chart.
func SVG(t *experiments.Table, w io.Writer) error {
	if len(t.X) == 0 {
		return fmt.Errorf("plot: table %q has no x values", t.Title)
	}
	xMin, xMax := minMax(t.X)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range t.Series {
		for i, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			e := 0.0
			if i < len(s.Err) && s.Err[i] > 0 {
				e = s.Err[i]
			}
			yMin = math.Min(yMin, y-e)
			yMax = math.Max(yMax, y+e)
		}
	}
	if math.IsInf(yMin, 1) {
		return fmt.Errorf("plot: table %q has no finite y values", t.Title)
	}
	// Anchor the y axis at zero for cost-style plots; pad the top.
	if yMin > 0 {
		yMin = 0
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	yMax += (yMax - yMin) * 0.08
	if xMax == xMin {
		xMax = xMin + 1
	}

	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	px := func(x float64) float64 { return marginL + (x-xMin)/(xMax-xMin)*plotW }
	py := func(y float64) float64 { return marginT + plotH - (y-yMin)/(yMax-yMin)*plotH }

	var b builder
	b.printf(`<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %g %g" font-family="sans-serif" font-size="12">`, width, height)
	b.printf(`<rect width="%g" height="%g" fill="white"/>`, width, height)
	b.printf(`<text x="%g" y="24" text-anchor="middle" font-size="15" font-weight="bold">%s</text>`,
		width/2, escape(t.Title))

	// Axes.
	b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`,
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`,
		marginL, marginT, marginL, marginT+plotH)

	// Ticks and grid.
	for _, xt := range niceTicks(xMin, xMax, 6) {
		x := px(xt)
		b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`, x, marginT+plotH, x, marginT+plotH+5)
		b.printf(`<text x="%g" y="%g" text-anchor="middle">%s</text>`, x, marginT+plotH+20, fmtTick(xt))
	}
	for _, yt := range niceTicks(yMin, yMax, 6) {
		y := py(yt)
		b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`, marginL, y, marginL+plotW, y)
		b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`, marginL-5, y, marginL, y)
		b.printf(`<text x="%g" y="%g" text-anchor="end" dominant-baseline="middle">%s</text>`, marginL-9, y, fmtTick(yt))
	}
	b.printf(`<text x="%g" y="%g" text-anchor="middle">%s</text>`,
		marginL+plotW/2, height-18, escape(t.XLabel))
	b.printf(`<text x="18" y="%g" text-anchor="middle" transform="rotate(-90 18 %g)">%s</text>`,
		marginT+plotH/2, marginT+plotH/2, escape(t.YLabel))

	// Series.
	for si, s := range t.Series {
		color := palette[si%len(palette)]
		var points string
		for i, y := range s.Y {
			if i >= len(t.X) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			points += fmt.Sprintf("%g,%g ", px(t.X[i]), py(y))
		}
		if points != "" {
			b.printf(`<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`, points, color)
			for i, y := range s.Y {
				if i >= len(t.X) || math.IsNaN(y) || math.IsInf(y, 0) {
					continue
				}
				x := px(t.X[i])
				// 95% confidence error bar with caps.
				if i < len(s.Err) && s.Err[i] > 0 {
					top, bot := py(y+s.Err[i]), py(y-s.Err[i])
					b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="1.3"/>`, x, top, x, bot, color)
					b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="1.3"/>`, x-4, top, x+4, top, color)
					b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="1.3"/>`, x-4, bot, x+4, bot, color)
				}
				b.printf(`<circle cx="%g" cy="%g" r="3" fill="%s"/>`, x, py(y), color)
			}
		}
		// Legend entry.
		lx := marginL + 12
		ly := marginT + 14 + float64(si)*18
		b.printf(`<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`, lx, ly, lx+22, ly, color)
		b.printf(`<text x="%g" y="%g" dominant-baseline="middle">%s</text>`, lx+28, ly+1, escape(s.Name))
	}
	b.printf(`</svg>`)
	b.printf("\n")
	if b.err != nil {
		return b.err
	}
	_, err := w.Write([]byte(b.String()))
	return err
}

// builder accumulates SVG fragments.
type builder struct {
	buf []byte
	err error
}

func (b *builder) printf(format string, args ...interface{}) {
	b.buf = append(b.buf, fmt.Sprintf(format, args...)...)
	b.buf = append(b.buf, '\n')
}

func (b *builder) String() string { return string(b.buf) }

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// niceTicks returns ~n round tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	if span <= 0 {
		return []float64{lo}
	}
	raw := span / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch frac := raw / mag; {
	case frac < 1.5:
		step = mag
	case frac < 3:
		step = 2 * mag
	case frac < 7:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	start := math.Ceil(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step*1e-9; v += step {
		// Clean floating noise like 0.30000000000000004.
		ticks = append(ticks, math.Round(v/step)*step)
	}
	return ticks
}

func fmtTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

func escape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
