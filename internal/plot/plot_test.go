package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mecache/internal/experiments"
)

func sampleTable() *experiments.Table {
	return &experiments.Table{
		Title: "Fig X(a) social cost", XLabel: "network size", YLabel: "cost ($)",
		X: []float64{50, 100, 150},
		Series: []experiments.Series{
			{Name: "LCF", Y: []float64{330, 340, 320}},
			{Name: "OffloadCache", Y: []float64{1100, 1200, 1000}},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := SVG(sampleTable(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "Fig X(a) social cost", "LCF", "OffloadCache", "network size"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatalf("expected 2 polylines, got %d", strings.Count(out, "<polyline"))
	}
	if strings.Count(out, "<circle") != 6 {
		t.Fatalf("expected 6 markers, got %d", strings.Count(out, "<circle"))
	}
}

func TestSVGEscapesMarkup(t *testing.T) {
	tb := sampleTable()
	tb.Title = `cost <&> latency`
	var buf bytes.Buffer
	if err := SVG(tb, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cost &lt;&amp;&gt; latency") {
		t.Fatal("title not escaped")
	}
}

func TestSVGSkipsNonFinite(t *testing.T) {
	tb := sampleTable()
	tb.Series[0].Y[1] = math.NaN()
	var buf bytes.Buffer
	if err := SVG(tb, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}

func TestSVGErrors(t *testing.T) {
	empty := &experiments.Table{Title: "empty"}
	if err := SVG(empty, &bytes.Buffer{}); err == nil {
		t.Fatal("empty table accepted")
	}
	allNaN := sampleTable()
	for i := range allNaN.Series {
		for j := range allNaN.Series[i].Y {
			allNaN.Series[i].Y[j] = math.NaN()
		}
	}
	if err := SVG(allNaN, &bytes.Buffer{}); err == nil {
		t.Fatal("all-NaN table accepted")
	}
}

func TestSVGConstantSeries(t *testing.T) {
	tb := &experiments.Table{
		Title: "flat", XLabel: "x", YLabel: "y",
		X:      []float64{1, 1},
		Series: []experiments.Series{{Name: "a", Y: []float64{5, 5}}},
	}
	var buf bytes.Buffer
	if err := SVG(tb, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 6)
	if len(ticks) < 4 || ticks[0] != 0 || ticks[len(ticks)-1] != 100 {
		t.Fatalf("ticks %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if got := niceTicks(5, 5, 4); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate ticks %v", got)
	}
}

func TestSVGErrorBars(t *testing.T) {
	tb := sampleTable()
	tb.Series[0].Err = []float64{10, 15, 10}
	var buf bytes.Buffer
	if err := SVG(tb, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 3 bars x 3 lines each = 9 extra line elements beyond axes/ticks/legend.
	if strings.Count(out, "stroke-width=\"1.3\"") != 9 {
		t.Fatalf("expected 9 error-bar segments, got %d", strings.Count(out, "stroke-width=\"1.3\""))
	}
}
