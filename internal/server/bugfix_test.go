package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mecache/internal/wal"
)

// TestQueuedExpiredCommandSkipsWAL pins the queued-expiry contract: a
// mutating command whose deadline fires while it is still queued must
// leave no trace — no WAL record, no market mutation — so its 503 means
// "certainly not applied". Before the claim CAS, the handler could return
// 503 while the loop, dequeuing moments later, still logged and applied
// the command behind the client's back.
func TestQueuedExpiredCommandSkipsWAL(t *testing.T) {
	cfg := testConfig(1)
	cfg.WALDir = filepath.Join(t.TempDir(), "wal")
	cfg.RequestTimeout = 100 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	admit(t, ts, drawProvider(cfg, s.View(), 7, 0)) // baseline: WAL record 1

	// Park the loop inside a command so the next admission expires while
	// still queued. The blocker carries no ctx, no WAL record, and a
	// buffered reply the test never reads.
	started := make(chan struct{})
	gate := make(chan struct{})
	s.cmds <- command{
		run: func(st *state) cmdResult {
			close(started)
			<-gate
			return cmdResult{status: http.StatusOK}
		},
		reply: make(chan cmdResult, 1),
	}
	<-started

	resp, data := postJSON(t, ts.URL+"/v1/providers", drawProvider(cfg, s.View(), 7, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued-expired admission: status %d, want 503: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "not applied") {
		t.Fatalf("queued-expired admission should state it was not applied: %s", data)
	}

	// Release the loop: it dequeues the abandoned command, loses the claim
	// race, and must skip it entirely.
	close(gate)

	second := admit(t, ts, drawProvider(cfg, s.View(), 7, 2)) // WAL record 2
	if second.Active != 2 {
		t.Fatalf("expired admission mutated the market: %d active, want 2", second.Active)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	// The durable history must hold exactly the two acknowledged
	// admissions, with contiguous LSNs: the expired command appended
	// nothing.
	l, err := wal.Open(cfg.WALDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var ops []string
	if _, err := l.Replay(func(payload []byte) error {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return err
		}
		ops = append(ops, fmt.Sprintf("%d:%s", rec.LSN, rec.Op))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(ops, ","), "1:admit,2:admit"; got != want {
		t.Fatalf("WAL holds %q, want %q (expired command must not be logged)", got, want)
	}
}

// TestStorageValidationCreatesNestedDirs pins the fail-fast half of boot
// validation: persistence paths with missing parents are created at New,
// so the first snapshot or WAL append can no longer be the first time a
// typo in -wal-dir surfaces.
func TestStorageValidationCreatesNestedDirs(t *testing.T) {
	base := t.TempDir()
	cfg := testConfig(1)
	cfg.WALDir = filepath.Join(base, "a", "b", "c", "wal")
	cfg.SnapshotPath = filepath.Join(base, "x", "y", "z", "snap.json")
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New with nested nonexistent dirs: %v", err)
	}
	for _, dir := range []string{cfg.WALDir, filepath.Dir(cfg.SnapshotPath)} {
		fi, err := os.Stat(dir)
		if err != nil || !fi.IsDir() {
			t.Errorf("New did not create %s: %v", dir, err)
		}
	}
	s.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cfg.SnapshotPath); err != nil {
		t.Errorf("final snapshot not written to pre-created dir: %v", err)
	}
}

// TestStorageValidationFailsFast pins the other half: an unusable
// persistence path is a structured startup error, not a latent
// first-write failure. A regular file in the directory chain makes the
// path unusable even for root (chmod-based unwritability is a no-op when
// tests run privileged).
func TestStorageValidationFailsFast(t *testing.T) {
	base := t.TempDir()
	blocker := filepath.Join(base, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(*Config)
		role   string
	}{
		{"wal dir through a file", func(c *Config) {
			c.WALDir = filepath.Join(blocker, "wal")
		}, "wal"},
		{"snapshot parent through a file", func(c *Config) {
			c.SnapshotPath = filepath.Join(blocker, "sub", "snap.json")
		}, "snapshot"},
		{"snapshot path is a directory", func(c *Config) {
			c.SnapshotPath = base
		}, "snapshot"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(1)
			tc.mutate(&cfg)
			_, err := New(cfg)
			if err == nil {
				t.Fatal("New accepted an unusable persistence path")
			}
			var se *StorageError
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *StorageError", err)
			}
			if se.Role != tc.role {
				t.Errorf("StorageError role %q, want %q", se.Role, tc.role)
			}
			if !strings.Contains(err.Error(), "unusable") {
				t.Errorf("error message %q should say the path is unusable", err)
			}
		})
	}
}
