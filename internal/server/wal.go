package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"mecache/internal/mec"
	"mecache/internal/obs"
	"mecache/internal/wal"
)

// Mutating command kinds recorded in the write-ahead log. Read-only
// requests and admin snapshots are never logged: replaying the mutating
// commands in order reproduces the market state exactly, because every
// placement decision is a deterministic function of command order (the
// epoch tie-break stream is seeded by Seed+epochs, itself replayed state).
const (
	opAdmit  = "admit"
	opDepart = "depart"
	opFail   = "fail"
	opRepair = "repair"
	opEpoch  = "epoch"
)

// walRecord is one mutating command, serialized as the WAL payload. LSN is
// the daemon-wide log sequence number: strictly increasing by one per
// logged command, carried in snapshots so recovery can skip records the
// snapshot already captured (which makes snapshot-then-compact crash-safe
// at every intermediate point).
type walRecord struct {
	LSN      uint64        `json:"lsn"`
	Op       string        `json:"op"`
	Provider *mec.Provider `json:"provider,omitempty"` // admit
	ID       int64         `json:"id"`                 // depart
	Cloudlet int           `json:"cloudlet"`           // fail, repair
}

// logCommand appends rec to the WAL (assigning the next LSN) and fsyncs
// per the configured policy. Only the event loop calls this, always BEFORE
// applying the command: when it fails, the command must not run, or a
// crash would silently lose an acknowledged mutation.
func (s *Server) logCommand(rec *walRecord) error {
	if s.wal == nil || rec == nil {
		return nil
	}
	rec.LSN = s.st.lsn + 1
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("encode wal record: %w", err)
	}
	if err := s.wal.Append(data); err != nil {
		s.mWALErrs.Inc()
		return err
	}
	s.st.lsn = rec.LSN
	return nil
}

// applyRecord dispatches a replayed command through the exact functions
// the live loop uses. Command-level failures (rejected admissions, departs
// of unknown ids, double fails) are part of the deterministic history —
// the live loop replied with an error and kept going, so replay does too.
// Only structurally impossible records (unknown op, admit without a
// provider) abort recovery: the log itself cannot be trusted then.
func (s *Server) applyRecord(st *state, rec walRecord) error {
	switch rec.Op {
	case opAdmit:
		if rec.Provider == nil {
			return fmt.Errorf("admit record without provider")
		}
		s.admitCmd(st, *rec.Provider)
	case opDepart:
		s.departCmd(st, rec.ID)
	case opFail:
		s.failCmd(st, rec.Cloudlet)
	case opRepair:
		s.repairCmd(st, rec.Cloudlet)
	case opEpoch:
		s.epochCmd(st)
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	return nil
}

// recoverWAL opens the log and replays its tail over the restored snapshot
// state. Records at or below the snapshot's LSN are skipped (the snapshot
// already contains their effects); the rest must form a gap-free sequence.
// A torn tail was truncated by the wal layer (logged and counted here); a
// gap or an interior-corrupt log is a hard startup error.
func (s *Server) recoverWAL() error {
	pol, err := wal.ParseSyncPolicy(s.cfg.walSyncOrDefault())
	if err != nil {
		return err
	}
	l, err := wal.Open(s.cfg.WALDir, wal.Options{
		Policy:       pol,
		SyncEvery:    s.cfg.WALSyncInterval,
		SegmentBytes: s.cfg.WALSegmentBytes,
		// The hooks fire inside Append, on the event-loop goroutine; the
		// last* fields let execCommand read the measured durations back as
		// wal_append/wal_fsync child spans of a traced command (they are
		// loop-owned scratch, so no lock is needed).
		OnAppend: func(sec float64) { s.hWALAppend.Observe(sec); s.lastAppendSec = sec },
		OnSync:   func(sec float64) { s.hWALSync.Observe(sec); s.lastSyncSec = sec },
	})
	if err != nil {
		return err
	}
	s.wal = l
	s.recovering = true
	defer func() { s.recovering = false }()

	start := time.Now()
	snapLSN := s.st.lsn
	skipped := 0
	stats, err := l.Replay(func(payload []byte) error {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("decode record: %w", err)
		}
		if rec.LSN <= snapLSN {
			skipped++
			return nil
		}
		if rec.LSN != s.st.lsn+1 {
			return fmt.Errorf("lsn gap: state at %d, next record %d", s.st.lsn, rec.LSN)
		}
		s.st.lsn = rec.LSN
		return s.applyRecord(&s.st, rec)
	})
	if err != nil {
		l.Close()
		s.wal = nil
		return fmt.Errorf("server: wal recovery: %w", err)
	}
	applied := stats.Records - skipped
	elapsed := time.Since(start)
	s.gRecoverySec.Set(elapsed.Seconds())
	s.gRecoveredRecs.Set(float64(applied))
	if stats.Truncated {
		s.mWALTruncations.Inc()
	}
	s.log.Info("wal recovery complete",
		"dir", s.cfg.WALDir, "segments", stats.Segments, "records", stats.Records,
		"skipped", skipped, "applied", applied, "snapshotLSN", snapLSN, "lsn", s.st.lsn,
		"tornTailTruncated", stats.Truncated, "tornBytes", stats.TornBytes,
		"durationMs", float64(elapsed.Microseconds())/1000)
	if s.ring.Enabled() && (applied > 0 || stats.Truncated) {
		s.ring.Add(obs.Trace{
			Kind:     "recovery",
			Start:    start,
			Duration: elapsed.Seconds(),
			Provider: -1,
			Chosen:   mec.Remote,
			Records:  applied,
		})
	}
	return nil
}

// compactWAL truncates the log after a successful snapshot: everything up
// to the current LSN is now durable in the snapshot, so the replay tail
// restarts empty. A compaction failure is not fatal — the LSN skip makes
// replaying already-snapshotted records harmless — but it is logged and
// counted, because a log that never compacts grows without bound.
func (s *Server) compactWAL() {
	if s.wal == nil {
		return
	}
	if err := s.wal.Reset(); err != nil {
		s.mWALErrs.Inc()
		s.log.Error("wal compaction failed", "dir", s.cfg.WALDir, "err", err)
	}
}

// closeWAL releases the log on shutdown (final fsync included).
func (s *Server) closeWAL() {
	if s.wal == nil {
		return
	}
	if err := s.wal.Close(); err != nil {
		s.log.Error("wal close failed", "dir", s.cfg.WALDir, "err", err)
	}
}

// shedResult is the overload reply: the bounded command queue is full, so
// instead of blocking the handler (and eventually every client) the daemon
// sheds the request with 429 and a Retry-After hint.
func shedResult(depth int) cmdResult {
	return cmdResult{
		status:     http.StatusTooManyRequests,
		retryAfter: 1,
		err:        fmt.Errorf("server: command queue full (%d queued); retry with backoff", depth),
	}
}
