package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mecache/internal/obs"
)

// spansResponse mirrors the GET /v1/debug/spans body.
type spansResponse struct {
	Enabled   bool       `json:"enabled"`
	Count     int        `json:"count"`
	Capacity  int        `json:"capacity"`
	HighWater uint64     `json:"highWater"`
	Recorded  uint64     `json:"recorded"`
	Spans     []obs.Span `json:"spans"`
}

// postTraced is postJSON plus a W3C traceparent header, the way a sampled
// mecload admission arrives.
func postTraced(t *testing.T, url, traceparent string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(http.MethodPost, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", traceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data := new(bytes.Buffer)
	if _, err := data.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, data.Bytes()
}

// spansByStage indexes one trace's spans by stage, failing on duplicates so
// each lifecycle phase appears exactly once per admission.
func spansByStage(t *testing.T, spans []obs.Span) map[string]obs.Span {
	t.Helper()
	m := make(map[string]obs.Span, len(spans))
	for _, sp := range spans {
		if _, dup := m[sp.Stage]; dup {
			t.Fatalf("stage %q recorded twice in one trace", sp.Stage)
		}
		m[sp.Stage] = sp
	}
	return m
}

// TestSpanDecompositionE2E pins the headline acceptance criterion of the
// span tracer (run under -race in CI): a fixed-seed admission that carries
// a traceparent decomposes into queue-wait, WAL-append, WAL-fsync, apply
// (with the best-response scan nested inside), and view-publish child
// spans, all under one root carrying the client's trace ID, and the direct
// children's durations sum to within the root span's duration — the
// intervals are sequential sub-phases of one handler window, so a sum that
// overshoots the root would mean the decomposition double-counts.
func TestSpanDecompositionE2E(t *testing.T) {
	cfg := testConfig(41)
	cfg.WALDir = filepath.Join(t.TempDir(), "wal")
	_, ts := startServer(t, cfg)
	var v View
	getJSON(t, ts.URL+"/v1/market", &v)

	const n = 6
	traces := make([]string, n)
	for i := 0; i < n; i++ {
		traces[i] = obs.MintTraceID(41, uint64(i))
		resp, data := postTraced(t, ts.URL+"/v1/providers",
			obs.FormatTraceparent(traces[i], uint64(i)+1), drawProvider(cfg, &v, 41, i))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("admit %d: status %d: %s", i, resp.StatusCode, data)
		}
	}

	for i, trace := range traces {
		var sr spansResponse
		getJSON(t, ts.URL+"/v1/debug/spans?n=0&trace="+trace, &sr)
		if !sr.Enabled {
			t.Fatal("span tracing disabled under DefaultConfig")
		}
		byStage := spansByStage(t, sr.Spans)

		root, ok := byStage[obs.StageRequest]
		if !ok {
			t.Fatalf("admission %d: no root request span in %d spans", i, len(sr.Spans))
		}
		if root.Parent != 0 {
			t.Fatalf("admission %d: root span has parent %d", i, root.Parent)
		}
		if root.Trace != trace {
			t.Fatalf("admission %d: root trace %s, want %s", i, root.Trace, trace)
		}

		children := []string{obs.StageQueueWait, obs.StageWALAppend, obs.StageWALFsync,
			obs.StageApply, obs.StagePublish}
		sum := 0.0
		for _, stage := range children {
			sp, ok := byStage[stage]
			if !ok {
				t.Fatalf("admission %d: missing %s child span", i, stage)
			}
			if sp.Parent != root.ID {
				t.Fatalf("admission %d: %s has parent %d, want root %d", i, stage, sp.Parent, root.ID)
			}
			if sp.Trace != trace {
				t.Fatalf("admission %d: %s carries trace %s, want %s", i, stage, sp.Trace, trace)
			}
			if sp.Duration < 0 {
				t.Fatalf("admission %d: %s duration %v negative", i, stage, sp.Duration)
			}
			sum += sp.Duration
		}
		// Tiny epsilon for float64 summation only: the intervals themselves
		// are disjoint by construction.
		if sum > root.Duration+1e-9 {
			t.Fatalf("admission %d: children sum %.9fs exceeds root %.9fs", i, sum, root.Duration)
		}

		apply := byStage[obs.StageApply]
		br, ok := byStage[obs.StageBestResponse]
		if !ok {
			t.Fatalf("admission %d: no best_response span", i)
		}
		if br.Parent != apply.ID {
			t.Fatalf("admission %d: best_response parent %d, want apply %d", i, br.Parent, apply.ID)
		}
		if br.Duration > apply.Duration+1e-9 {
			t.Fatalf("admission %d: best_response %.9fs exceeds apply %.9fs", i, br.Duration, apply.Duration)
		}
		// The scan's outcome rides on the span, so an operator reading a
		// trace sees the decision, not just its cost.
		found := false
		for _, a := range br.Attrs {
			if a.Key == "placement" {
				found = true
			}
		}
		if !found {
			t.Fatalf("admission %d: best_response span has no placement attr: %+v", i, br.Attrs)
		}
	}
}

// syncBuffer is a mutex-guarded log sink: the access log line is written
// after the response, so the client side can observe the response before
// the log write lands.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncBuffer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncBuffer) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestSpanLogCorrelation pins the log↔trace contract: a traced admission's
// access-log record and its root span carry the same trace ID, so an
// operator can pivot from a log line to the span breakdown and back.
func TestSpanLogCorrelation(t *testing.T) {
	logs := &syncBuffer{}
	logger, err := obs.NewLogger(logs, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(42)
	cfg.Logger = logger
	_, ts := startServer(t, cfg)
	var v View
	getJSON(t, ts.URL+"/v1/market", &v)

	trace := obs.MintTraceID(42, 7)
	resp, data := postTraced(t, ts.URL+"/v1/providers",
		obs.FormatTraceparent(trace, 1), drawProvider(cfg, &v, 42, 0))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit: status %d: %s", resp.StatusCode, data)
	}

	// The access log is written after the response; poll briefly for it.
	var record map[string]any
	deadline := time.Now().Add(5 * time.Second)
	for {
		record = nil
		for _, line := range strings.Split(logs.String(), "\n") {
			if line == "" {
				continue
			}
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("non-JSON log line %q: %v", line, err)
			}
			if rec["msg"] == "http request" && rec["route"] == "POST /v1/providers" {
				record = rec
			}
		}
		if record != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if record == nil {
		t.Fatalf("no access-log record for the admission in:\n%s", logs.String())
	}
	if got := record["trace"]; got != trace {
		t.Fatalf("access log carries trace %v, want %s", got, trace)
	}

	var sr spansResponse
	getJSON(t, ts.URL+"/v1/debug/spans?n=0&trace="+trace, &sr)
	byStage := spansByStage(t, sr.Spans)
	root, ok := byStage[obs.StageRequest]
	if !ok {
		t.Fatalf("no root span for trace %s", trace)
	}
	if root.Trace != trace {
		t.Fatalf("root span trace %s, want %s", root.Trace, trace)
	}
}

// TestSpansOffPlacementsIdentical pins the observer-effect contract at the
// HTTP level: the same seeded admission stream, traceparent headers
// included, reaches byte-identical placements whether span tracing is on
// or off — the tracer records decisions, it never makes them.
func TestSpansOffPlacementsIdentical(t *testing.T) {
	run := func(depth int) []byte {
		cfg := testConfig(43)
		cfg.SpanDepth = depth
		_, ts := startServer(t, cfg)
		var v View
		getJSON(t, ts.URL+"/v1/market", &v)
		var placements []int
		for i := 0; i < 10; i++ {
			trace := obs.MintTraceID(43, uint64(i))
			resp, data := postTraced(t, ts.URL+"/v1/providers",
				obs.FormatTraceparent(trace, uint64(i)+1), drawProvider(cfg, &v, 43, i))
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("admit %d: status %d: %s", i, resp.StatusCode, data)
			}
			var ar admitResponse
			if err := json.Unmarshal(data, &ar); err != nil {
				t.Fatal(err)
			}
			placements = append(placements, ar.Placement)
		}
		var final View
		getJSON(t, ts.URL+"/v1/market", &final)
		for _, pv := range final.Providers {
			placements = append(placements, pv.Placement)
		}
		out, err := json.Marshal(placements)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	on := run(256)
	off := run(0)
	if !bytes.Equal(on, off) {
		t.Fatalf("placements diverge with spans on/off:\n on: %s\noff: %s", on, off)
	}
}

// TestSpansEndpointFiltersAndValidation covers /v1/debug/spans: the trace
// and min_dur filters, the n clamp, parameter validation, and the disabled
// envelope.
func TestSpansEndpointFiltersAndValidation(t *testing.T) {
	cfg := testConfig(44)
	_, ts := startServer(t, cfg)
	var v View
	getJSON(t, ts.URL+"/v1/market", &v)
	traceA := obs.MintTraceID(44, 1)
	traceB := obs.MintTraceID(44, 2)
	for i, trace := range []string{traceA, traceB} {
		resp, data := postTraced(t, ts.URL+"/v1/providers",
			obs.FormatTraceparent(trace, 1), drawProvider(cfg, &v, 44, i))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("admit %d: status %d: %s", i, resp.StatusCode, data)
		}
	}

	var sr spansResponse
	getJSON(t, ts.URL+"/v1/debug/spans?n=0&trace="+traceA, &sr)
	if len(sr.Spans) == 0 {
		t.Fatal("trace filter returned nothing")
	}
	for _, sp := range sr.Spans {
		if sp.Trace != traceA {
			t.Fatalf("trace filter leaked span of trace %s", sp.Trace)
		}
	}
	if sr.Count != len(sr.Spans) || sr.Capacity != cfg.SpanDepth {
		t.Fatalf("envelope count=%d capacity=%d, want %d/%d", sr.Count, sr.Capacity, len(sr.Spans), cfg.SpanDepth)
	}
	if sr.HighWater == 0 || sr.Recorded == 0 {
		t.Fatalf("envelope highWater=%d recorded=%d, want both positive", sr.HighWater, sr.Recorded)
	}

	// n clamps the count; IDs come back newest-started first.
	getJSON(t, ts.URL+"/v1/debug/spans?n=2", &sr)
	if sr.Count != 2 || len(sr.Spans) != 2 {
		t.Fatalf("n=2 returned %d spans (count %d)", len(sr.Spans), sr.Count)
	}
	if sr.Spans[0].ID < sr.Spans[1].ID {
		t.Fatalf("spans not newest-first: %d then %d", sr.Spans[0].ID, sr.Spans[1].ID)
	}

	// An absurd min_dur filters everything out but keeps the envelope.
	getJSON(t, ts.URL+"/v1/debug/spans?n=0&min_dur=3600", &sr)
	if sr.Count != 0 || len(sr.Spans) != 0 {
		t.Fatalf("min_dur=3600 still returned %d spans", len(sr.Spans))
	}
	if !sr.Enabled || sr.Recorded == 0 {
		t.Fatalf("filtered-empty envelope lost its totals: %+v", sr)
	}

	for _, q := range []string{"?n=-1", "?n=x", "?min_dur=-1", "?min_dur=NaN", "?min_dur=x"} {
		if resp := getJSON(t, ts.URL+"/v1/debug/spans"+q, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}

	cfgOff := testConfig(45)
	cfgOff.SpanDepth = 0
	_, tsOff := startServer(t, cfgOff)
	var off spansResponse
	getJSON(t, tsOff.URL+"/v1/debug/spans", &off)
	if off.Enabled || len(off.Spans) != 0 {
		t.Fatalf("disabled tracing still serves spans: %+v", off)
	}
}

// TestTraceEnvelopeReportsCountAndCapacity is the regression for the
// /v1/debug/trace pagination gap: asking for more traces than the ring
// retains used to come back silently short — the envelope now states the
// effective count, the ring capacity, and the high-water total, so a
// client can tell "clamped" from "that is all there ever was".
func TestTraceEnvelopeReportsCountAndCapacity(t *testing.T) {
	cfg := testConfig(46)
	cfg.TraceDepth = 3
	_, ts := startServer(t, cfg)
	var v View
	getJSON(t, ts.URL+"/v1/market", &v)
	for i := 0; i < 5; i++ {
		admit(t, ts, drawProvider(cfg, &v, 46, i))
	}

	var tr struct {
		Enabled  bool            `json:"enabled"`
		Count    int             `json:"count"`
		Capacity int             `json:"capacity"`
		Total    uint64          `json:"total"`
		Traces   json.RawMessage `json:"traces"`
	}
	getJSON(t, ts.URL+"/v1/debug/trace?n=10", &tr)
	if tr.Count != 3 || tr.Capacity != 3 {
		t.Fatalf("count=%d capacity=%d after 5 admissions into depth 3, want 3/3", tr.Count, tr.Capacity)
	}
	if tr.Total != 5 {
		t.Fatalf("total=%d, want the high-water 5", tr.Total)
	}
}

// TestUntracedSpanGuardsZeroAllocs is the server-side half of the 0
// allocs/op contract (the obs half lives in the span ring's own tests):
// every guard an untraced admission passes through — the traceparent
// parse, the context lookup, the disabled-ring record, the loop's
// curTrace comparison — must allocate nothing, whether the ring is off or
// merely unsampled.
func TestUntracedSpanGuardsZeroAllocs(t *testing.T) {
	cfg := testConfig(47)
	cfg.SpanDepth = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, ok := obs.ParseTraceparent(""); ok {
			t.Fatal("empty traceparent parsed")
		}
		if tc := traceCtxFrom(ctx); tc != nil {
			t.Fatal("trace context on a bare context")
		}
		s.recordSpan(obs.Span{Stage: obs.StageApply, Duration: 1})
		if s.spans.StartID() != 0 {
			t.Fatal("disabled ring allocated an ID")
		}
		if s.curTrace != "" {
			t.Fatal("loop scratch trace set on an idle server")
		}
	})
	if allocs != 0 {
		t.Fatalf("untraced span guards allocated %.1f times per run, want 0", allocs)
	}

	// With the ring enabled but the request unsampled (no traceparent), the
	// same guards run and still must not allocate: sampling is the only
	// thing that costs.
	cfgOn := testConfig(48)
	s2, err := New(cfgOn)
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if !s2.spans.Enabled() {
			t.Fatal("spans unexpectedly disabled")
		}
		if _, _, ok := obs.ParseTraceparent(""); ok {
			t.Fatal("empty traceparent parsed")
		}
		if tc := traceCtxFrom(ctx); tc != nil {
			t.Fatal("trace context on a bare context")
		}
		if s2.curTrace != "" {
			t.Fatal("loop scratch trace set on an idle server")
		}
	})
	if allocs != 0 {
		t.Fatalf("unsampled span guards allocated %.1f times per run, want 0", allocs)
	}
}

// TestTracedEpochSpans drives a traced admin epoch and checks the solve
// lands as a child of the apply span, mirroring how admissions nest their
// best-response scan.
func TestTracedEpochSpans(t *testing.T) {
	cfg := testConfig(49)
	_, ts := startServer(t, cfg)
	var v View
	getJSON(t, ts.URL+"/v1/market", &v)
	for i := 0; i < 5; i++ {
		admit(t, ts, drawProvider(cfg, &v, 49, i))
	}
	trace := obs.MintTraceID(49, 99)
	resp, data := postTraced(t, ts.URL+"/v1/admin/epoch", obs.FormatTraceparent(trace, 1), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch: %d %s", resp.StatusCode, data)
	}

	var sr spansResponse
	getJSON(t, ts.URL+"/v1/debug/spans?n=0&trace="+trace, &sr)
	byStage := spansByStage(t, sr.Spans)
	root, ok := byStage[obs.StageRequest]
	if !ok {
		t.Fatal("no root span for the traced epoch")
	}
	apply, ok := byStage[obs.StageApply]
	if !ok || apply.Parent != root.ID {
		t.Fatalf("epoch apply span missing or misparented: %+v", apply)
	}
	solve, ok := byStage[obs.StageEpochSolve]
	if !ok {
		t.Fatal("no epoch_solve span")
	}
	if solve.Parent != apply.ID {
		t.Fatalf("epoch_solve parent %d, want apply %d", solve.Parent, apply.ID)
	}
	var rounds int64 = -1
	for _, a := range solve.Attrs {
		if a.Key == "rounds" {
			rounds = a.Int
		}
	}
	if rounds < 1 {
		t.Fatalf("epoch_solve rounds attr %d, want >= 1", rounds)
	}
}

// TestWALSegmentGaugesExported checks the WAL visibility satellite: a
// WAL-backed daemon exports segment count and active-segment size gauges,
// and a WAL-less daemon exports neither.
func TestWALSegmentGaugesExported(t *testing.T) {
	cfg := testConfig(50)
	cfg.WALDir = filepath.Join(t.TempDir(), "wal")
	_, ts := startServer(t, cfg)
	var v View
	getJSON(t, ts.URL+"/v1/market", &v)
	for i := 0; i < 3; i++ {
		admit(t, ts, drawProvider(cfg, &v, 50, i))
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	text := body.String()
	for _, series := range []string{"mecd_wal_segment_count", "mecd_wal_active_segment_bytes"} {
		if !strings.Contains(text, "# TYPE "+series+" gauge") {
			t.Fatalf("series %s missing from /metrics", series)
		}
	}
	if !strings.Contains(text, "mecd_wal_segment_count 1") {
		t.Fatal("single-segment daemon does not report mecd_wal_segment_count 1")
	}
	// Three appended admissions mean a non-empty active segment.
	var bytesVal float64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "mecd_wal_active_segment_bytes ") {
			fmt.Sscanf(line, "mecd_wal_active_segment_bytes %g", &bytesVal)
		}
	}
	if bytesVal <= 0 {
		t.Fatalf("mecd_wal_active_segment_bytes %v, want positive", bytesVal)
	}

	cfgOff := testConfig(51)
	_, tsOff := startServer(t, cfgOff)
	respOff, err := http.Get(tsOff.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	bodyOff := new(bytes.Buffer)
	bodyOff.ReadFrom(respOff.Body)
	respOff.Body.Close()
	if strings.Contains(bodyOff.String(), "mecd_wal_segment_count") {
		t.Fatal("WAL-less daemon exports mecd_wal_segment_count")
	}
}
