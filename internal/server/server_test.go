package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mecache/internal/fault"
	"mecache/internal/mec"
	"mecache/internal/rng"
)

// testConfig keeps the test network small so admissions are fast.
func testConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Size = 50
	return cfg
}

// startServer builds and starts a daemon plus an httptest front end.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Stop(ctx); err != nil {
			t.Errorf("stop: %v", err)
		}
	})
	return s, ts
}

// drawProvider derives the i-th reproducible provider for the server's
// network, the same way the load generator does.
func drawProvider(cfg Config, v *View, seed uint64, i int) mec.Provider {
	wl := cfg.Workload
	return wl.DrawProvider(rng.Substream(seed, uint64(i)), v.NumDCs, v.NumNodes)
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func admit(t *testing.T, ts *httptest.Server, p mec.Provider) admitResponse {
	t.Helper()
	resp, data := postJSON(t, ts.URL+"/v1/providers", p)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admit: status %d: %s", resp.StatusCode, data)
	}
	var ar admitResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	return ar
}

func TestConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"xi above one", func(c *Config) { c.Xi = 1.5 }},
		{"negative xi", func(c *Config) { c.Xi = -0.1 }},
		{"zero size", func(c *Config) { c.Size = 0 }},
		{"negative cap", func(c *Config) { c.MaxActive = -1 }},
		{"negative epoch", func(c *Config) { c.EpochInterval = -time.Second }},
		{"bad policy", func(c *Config) { c.Policy = fault.Policy(99) }},
		{"bad workload", func(c *Config) { c.Workload.Requests.Lo = 0 }},
	}
	for _, tc := range cases {
		cfg := testConfig(1)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s accepted by Validate", tc.name)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s accepted by New", tc.name)
		}
	}
}

func TestAdmitDepartLifecycle(t *testing.T) {
	cfg := testConfig(7)
	s, ts := startServer(t, cfg)

	var ids []int64
	for i := 0; i < 10; i++ {
		ar := admit(t, ts, drawProvider(cfg, s.View(), 100, i))
		if ar.Active != i+1 {
			t.Fatalf("admission %d reports %d active", i, ar.Active)
		}
		if ar.Placement < mec.Remote || ar.Placement >= s.View().NumCloudlets {
			t.Fatalf("admission %d placed at %d", i, ar.Placement)
		}
		ids = append(ids, ar.ID)
	}

	var pv struct {
		Providers  []ProviderView `json:"providers"`
		SocialCost float64        `json:"socialCost"`
	}
	if resp := getJSON(t, ts.URL+"/v1/placements", &pv); resp.StatusCode != http.StatusOK {
		t.Fatalf("placements status %d", resp.StatusCode)
	}
	if len(pv.Providers) != 10 {
		t.Fatalf("placements show %d providers, want 10", len(pv.Providers))
	}
	if pv.SocialCost <= 0 {
		t.Fatalf("social cost %v not positive", pv.SocialCost)
	}

	// Depart one from the middle; ids must remain addressable.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/providers/%d", ts.URL, ids[4]), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("depart status %d", resp.StatusCode)
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("double-depart status %d, want 404", resp2.StatusCode)
	}
	if v := s.View(); v.Active != 9 || v.Departed != 1 {
		t.Fatalf("view after departure: active %d departed %d", v.Active, v.Departed)
	}

	// Every remaining id still departs cleanly, down to the empty market.
	for _, id := range ids {
		if id == ids[4] {
			continue
		}
		req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/providers/%d", ts.URL, id), nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("depart %d status %d", id, resp.StatusCode)
		}
	}
	if v := s.View(); v.Active != 0 || v.SocialCost != 0 {
		t.Fatalf("drained view: active %d social %v", v.Active, v.SocialCost)
	}
	// The empty market admits again.
	admit(t, ts, drawProvider(cfg, s.View(), 200, 0))
}

func TestAdmitRejectsBadProviderAndCap(t *testing.T) {
	cfg := testConfig(9)
	cfg.MaxActive = 2
	s, ts := startServer(t, cfg)

	if resp, _ := postJSON(t, ts.URL+"/v1/providers", map[string]any{"requests": -5}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative-request provider got status %d", resp.StatusCode)
	}
	for i := 0; i < 2; i++ {
		admit(t, ts, drawProvider(cfg, s.View(), 7, i))
	}
	resp, _ := postJSON(t, ts.URL+"/v1/providers", drawProvider(cfg, s.View(), 7, 2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap admission got status %d, want 429", resp.StatusCode)
	}
	if v := s.View(); v.Rejected != 2 {
		t.Fatalf("rejected counter %d, want 2", v.Rejected)
	}
}

func TestEpochReequilibratesAndHealthz(t *testing.T) {
	cfg := testConfig(11)
	s, ts := startServer(t, cfg)
	for i := 0; i < 20; i++ {
		admit(t, ts, drawProvider(cfg, s.View(), 3, i))
	}
	before := s.View().SocialCost
	resp, data := postJSON(t, ts.URL+"/v1/admin/epoch", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch status %d: %s", resp.StatusCode, data)
	}
	var er struct {
		Epoch      uint64  `json:"epoch"`
		SocialCost float64 `json:"socialCost"`
	}
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.Epoch != 1 {
		t.Fatalf("epoch counter %d, want 1", er.Epoch)
	}
	if er.SocialCost > before {
		t.Fatalf("re-equilibration raised social cost %v -> %v", before, er.SocialCost)
	}
	var hz map[string]any
	if resp := getJSON(t, ts.URL+"/healthz", &hz); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if hz["status"] != "ok" {
		t.Fatalf("healthz body %v", hz)
	}
}

func TestFailoverAndRepair(t *testing.T) {
	cfg := testConfig(13)
	cfg.Policy = fault.PolicyWaitForRepair
	s, ts := startServer(t, cfg)
	for i := 0; i < 25; i++ {
		admit(t, ts, drawProvider(cfg, s.View(), 5, i))
	}
	postJSON(t, ts.URL+"/v1/admin/epoch", nil)

	// Find a populated cloudlet and fail it.
	v := s.View()
	target := -1
	for i, load := range v.Loads {
		if load > 0 {
			target = i
			break
		}
	}
	if target == -1 {
		t.Fatal("no cloudlet hosts a provider; market too small for the test")
	}
	resp, data := postJSON(t, ts.URL+"/v1/admin/fail", failRequest{Cloudlet: target})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fail status %d: %s", resp.StatusCode, data)
	}
	v = s.View()
	if v.Loads[target] != 0 {
		t.Fatalf("failed cloudlet still hosts %d services", v.Loads[target])
	}
	if len(v.FailedCloudlets) != 1 || v.FailedCloudlets[0] != target {
		t.Fatalf("failed set %v, want [%d]", v.FailedCloudlets, target)
	}
	if v.Failovers == 0 {
		t.Fatal("no failovers counted")
	}
	waiting := 0
	for _, p := range v.Providers {
		if p.Waiting {
			waiting++
		}
	}
	if waiting == 0 {
		t.Fatal("wait-for-repair policy parked nobody")
	}

	// An epoch must not re-place providers onto the failed cloudlet.
	postJSON(t, ts.URL+"/v1/admin/epoch", nil)
	if v := s.View(); v.Loads[target] != 0 {
		t.Fatalf("epoch re-populated failed cloudlet with %d services", v.Loads[target])
	}

	// Double fail conflicts; repair clears the mask and unparks providers.
	if resp, _ := postJSON(t, ts.URL+"/v1/admin/fail", failRequest{Cloudlet: target}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double fail status %d, want 409", resp.StatusCode)
	}
	resp, data = postJSON(t, ts.URL+"/v1/admin/fail", failRequest{Cloudlet: target, Repair: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair status %d: %s", resp.StatusCode, data)
	}
	v = s.View()
	if len(v.FailedCloudlets) != 0 {
		t.Fatalf("failed set %v after repair", v.FailedCloudlets)
	}
	for _, p := range v.Providers {
		if p.Waiting {
			t.Fatalf("provider %d still waiting after repair", p.ID)
		}
	}
}

// TestDeterministicSerialRuns is the acceptance criterion: same seed, same
// serial admission sequence, same manual epochs → byte-identical placements
// and social cost.
func TestDeterministicSerialRuns(t *testing.T) {
	run := func() []byte {
		cfg := testConfig(77)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			s.Stop(ctx)
		}()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		for i := 0; i < 40; i++ {
			admit(t, ts, drawProvider(cfg, s.View(), 9, i))
			if i%10 == 9 {
				postJSON(t, ts.URL+"/v1/admin/epoch", nil)
			}
		}
		resp, err := http.Get(ts.URL + "/v1/placements")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("fixed-seed runs diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "mecd.json")
	cfg := testConfig(21)
	cfg.SnapshotPath = snap
	cfg.Policy = fault.PolicyWaitForRepair

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts := httptest.NewServer(s1.Handler())
	for i := 0; i < 15; i++ {
		admit(t, ts, drawProvider(cfg, s1.View(), 4, i))
	}
	postJSON(t, ts.URL+"/v1/admin/epoch", nil)
	// Fail a populated cloudlet so waiting state is exercised too.
	for i, load := range s1.View().Loads {
		if load > 0 {
			postJSON(t, ts.URL+"/v1/admin/fail", failRequest{Cloudlet: i})
			break
		}
	}
	want := s1.View()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.View()
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("restored view differs:\n%s\nvs\n%s", wantJSON, gotJSON)
	}
	// The restored daemon keeps serving: admit one more and depart it.
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	ar := admit(t, ts2, drawProvider(cfg, s2.View(), 8, 0))
	if ar.Active != want.Active+1 {
		t.Fatalf("restored daemon reports %d active after admission, want %d", ar.Active, want.Active+1)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s2.Stop(ctx); err != nil {
			t.Fatal(err)
		}
	}()
}

func TestSnapshotRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "mecd.json")
	cfg := testConfig(23)
	cfg.SnapshotPath = snap
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	admit(t, ts, drawProvider(cfg, s.View(), 2, 0))
	postJSON(t, ts.URL+"/v1/admin/snapshot", nil)
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	data, err := readAndCorrupt(snap, `"version":1`, `"version":9`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("version-mismatched snapshot accepted")
	}
	_ = data
}

// readAndCorrupt rewrites the snapshot with old replaced by new.
func readAndCorrupt(path, old, new string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	mut := strings.Replace(string(data), old, new, 1)
	if mut == string(data) {
		return nil, fmt.Errorf("pattern %q not found in snapshot", old)
	}
	return data, os.WriteFile(path, []byte(mut), 0o644)
}

func TestConcurrentAdmissionsAndReads(t *testing.T) {
	cfg := testConfig(31)
	s, ts := startServer(t, cfg)
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < perWorker; i++ {
				p := cfg.Workload.DrawProvider(rng.Substream(uint64(w+1), uint64(i)), s.View().NumDCs, s.View().NumNodes)
				body, _ := json.Marshal(p)
				resp, err := client.Post(ts.URL+"/v1/providers", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					errs <- fmt.Errorf("worker %d admission %d: status %d: %s", w, i, resp.StatusCode, data)
					return
				}
				var ar admitResponse
				if err := json.Unmarshal(data, &ar); err != nil {
					errs <- err
					return
				}
				// Interleave reads and the occasional departure + epoch.
				if i%5 == 0 {
					if _, err := client.Get(ts.URL + "/v1/market"); err != nil {
						errs <- err
						return
					}
				}
				if i%7 == 0 {
					req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/providers/%d", ts.URL, ar.ID), nil)
					resp, err := client.Do(req)
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusNoContent {
						errs <- fmt.Errorf("worker %d depart %d: status %d", w, ar.ID, resp.StatusCode)
						return
					}
				}
				if w == 0 && i%10 == 9 {
					resp, _ := client.Post(ts.URL+"/v1/admin/epoch", "application/json", nil)
					if resp != nil {
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	v := s.View()
	if v.Accepted != workers*perWorker {
		t.Fatalf("accepted %d, want %d", v.Accepted, workers*perWorker)
	}
	wantActive := int(v.Accepted - v.Departed)
	if v.Active != wantActive {
		t.Fatalf("active %d, want %d", v.Active, wantActive)
	}
	if err := s.st.m.Validate(s.st.pl); err != nil {
		t.Fatalf("final placement invalid: %v", err)
	}
}

func TestStopRejectsLateCommands(t *testing.T) {
	cfg := testConfig(41)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	admit(t, ts, drawProvider(cfg, s.View(), 1, 0))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/providers", drawProvider(cfg, s.View(), 1, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-stop admission status %d, want 503", resp.StatusCode)
	}
	var hz map[string]any
	if resp := getJSON(t, ts.URL+"/healthz", &hz); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-stop healthz status %d, want 503", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	cfg := testConfig(51)
	s, ts := startServer(t, cfg)
	for i := 0; i < 5; i++ {
		admit(t, ts, drawProvider(cfg, s.View(), 6, i))
	}
	postJSON(t, ts.URL+"/v1/admin/epoch", nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`mecd_admissions_total{result="accepted"} 5`,
		"mecd_active_providers 5",
		"mecd_epochs_total 1",
		"# TYPE mecd_admission_seconds histogram",
		"mecd_admission_seconds_count 5",
		`mecd_cloudlet_load{cloudlet="0"}`,
		"mecd_social_cost ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestWorkloadConfigUnused ensures the daemon ignores NumProviders in its
// workload config (providers come from the API).
func TestWorkloadConfigUnused(t *testing.T) {
	cfg := testConfig(61)
	cfg.Workload.NumProviders = 0 // would fail workload validation if used raw
	if err := cfg.Validate(); err != nil {
		t.Fatalf("daemon config rejected: %v", err)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.View().Active != 0 {
		t.Fatal("fresh daemon not empty")
	}
}
