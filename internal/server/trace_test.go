package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mecache/internal/obs"
)

// traceResponse mirrors the GET /v1/debug/trace body.
type traceResponse struct {
	Enabled bool        `json:"enabled"`
	Total   uint64      `json:"total"`
	Traces  []obs.Trace `json:"traces"`
}

// TestAdmissionTraceReconstructsDecision pins the headline acceptance
// criterion of the observability layer: the trace of a fixed-seed admission
// must let an operator reconstruct the decision — the chosen strategy is
// the cost-argmin over the recorded candidates, every candidate's Eq. 3
// components sum to its recorded total bit-for-bit, and the choice matches
// what the admission API reported.
func TestAdmissionTraceReconstructsDecision(t *testing.T) {
	cfg := testConfig(11)
	_, ts := startServer(t, cfg)
	var v View
	getJSON(t, ts.URL+"/v1/market", &v)

	const n = 8
	responses := make([]admitResponse, n)
	for i := 0; i < n; i++ {
		responses[i] = admit(t, ts, drawProvider(cfg, &v, 11, i))
	}

	var tr traceResponse
	getJSON(t, ts.URL+"/v1/debug/trace?kind=admission&n="+fmt.Sprint(n), &tr)
	if !tr.Enabled {
		t.Fatal("tracing disabled under DefaultConfig")
	}
	if len(tr.Traces) != n || tr.Total != n {
		t.Fatalf("got %d traces (total %d), want %d", len(tr.Traces), tr.Total, n)
	}

	// Newest first: trace j corresponds to admission n-1-j.
	for j, trace := range tr.Traces {
		resp := responses[n-1-j]
		if trace.Provider != resp.ID {
			t.Fatalf("trace %d: provider %d, response id %d", j, trace.Provider, resp.ID)
		}
		if trace.Chosen != resp.Placement {
			t.Fatalf("trace %d: chosen %d, admitted placement %d", j, trace.Chosen, resp.Placement)
		}
		if trace.Cost != resp.Cost {
			t.Fatalf("trace %d: cost %v, admission response cost %v", j, trace.Cost, resp.Cost)
		}

		var choice *obs.Event
		argmin, minTotal := 0, 0.0
		candidates := 0
		for i := range trace.Events {
			e := &trace.Events[i]
			switch e.Kind {
			case obs.KindCandidate:
				// Eq. 3 decomposition: components must reproduce the scalar
				// total the scan compared, bitwise.
				if e.Cost.Total() != e.Total {
					t.Fatalf("trace %d candidate %d: components sum to %v, total %v",
						j, e.Strategy, e.Cost.Total(), e.Total)
				}
				if candidates == 0 || e.Total < minTotal ||
					(e.Total == minTotal && e.Strategy < argmin) {
					argmin, minTotal = e.Strategy, e.Total
				}
				candidates++
			case obs.KindChoice:
				if choice != nil {
					t.Fatalf("trace %d: multiple choice events", j)
				}
				choice = e
			}
		}
		if candidates < 2 {
			t.Fatalf("trace %d: only %d candidates recorded (want remote + cloudlets)", j, candidates)
		}
		if choice == nil {
			t.Fatalf("trace %d: no choice event", j)
		}
		// Candidates are emitted remote-first then in ascending base-cost
		// order — the same order the engine's scan visits — and exact cost
		// ties resolve to the lowest cloudlet index, so the index-tie-broken
		// argmin over the recorded events is exactly the recorded choice.
		if choice.Strategy != argmin {
			t.Fatalf("trace %d: choice %d is not the candidate argmin %d", j, choice.Strategy, argmin)
		}
		if choice.Strategy != trace.Chosen {
			t.Fatalf("trace %d: choice event %d != trace chosen %d", j, choice.Strategy, trace.Chosen)
		}
		if choice.Cost.Total() != choice.Total {
			t.Fatalf("trace %d: choice components sum to %v, total %v", j, choice.Cost.Total(), choice.Total)
		}
		if trace.EventsDropped != 0 {
			t.Fatalf("trace %d: dropped %d events on a tiny market", j, trace.EventsDropped)
		}
	}
}

// TestEpochTraceRecordsPipeline drives one admin epoch and checks its trace
// carries the LCF pipeline.
func TestEpochTraceRecordsPipeline(t *testing.T) {
	cfg := testConfig(12)
	_, ts := startServer(t, cfg)
	var v View
	getJSON(t, ts.URL+"/v1/market", &v)
	for i := 0; i < 5; i++ {
		admit(t, ts, drawProvider(cfg, &v, 12, i))
	}
	resp, data := postJSON(t, ts.URL+"/v1/admin/epoch", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch: %d %s", resp.StatusCode, data)
	}

	var tr traceResponse
	getJSON(t, ts.URL+"/v1/debug/trace?kind=epoch", &tr)
	if len(tr.Traces) != 1 {
		t.Fatalf("got %d epoch traces, want 1", len(tr.Traces))
	}
	trace := tr.Traces[0]
	if trace.Epoch != 1 || trace.Provider != -1 {
		t.Fatalf("bad epoch trace header: %+v", trace)
	}
	if trace.Rounds < 1 {
		t.Fatalf("epoch trace reports %d rounds", trace.Rounds)
	}
	var sawAppro, sawCoordination, sawConverged bool
	for _, e := range trace.Events {
		if e.Kind != obs.KindPhase {
			continue
		}
		switch {
		case strings.HasPrefix(e.Note, "appro"):
			sawAppro = true
		case strings.HasPrefix(e.Note, "lcf coordinate"):
			sawCoordination = true
		case strings.HasPrefix(e.Note, "lcf converged"):
			sawConverged = true
		}
	}
	if !sawAppro || !sawCoordination || !sawConverged {
		t.Fatalf("epoch trace misses pipeline phases: appro=%v coordination=%v converged=%v",
			sawAppro, sawCoordination, sawConverged)
	}
}

// TestTraceDisabledAndQueryValidation covers the off switch and parameter
// validation of the endpoint.
func TestTraceDisabledAndQueryValidation(t *testing.T) {
	cfg := testConfig(13)
	cfg.TraceDepth = 0
	_, ts := startServer(t, cfg)
	var tr traceResponse
	getJSON(t, ts.URL+"/v1/debug/trace", &tr)
	if tr.Enabled || len(tr.Traces) != 0 {
		t.Fatalf("disabled tracing still serves traces: %+v", tr)
	}

	cfg2 := testConfig(14)
	_, ts2 := startServer(t, cfg2)
	for _, q := range []string{"?n=-1", "?n=x", "?kind=bogus"} {
		if resp := getJSON(t, ts2.URL+"/v1/debug/trace"+q, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestTraceDepthEvictsOldest fills the ring past capacity and checks only
// the newest traces survive.
func TestTraceDepthEvictsOldest(t *testing.T) {
	cfg := testConfig(15)
	cfg.TraceDepth = 3
	_, ts := startServer(t, cfg)
	var v View
	getJSON(t, ts.URL+"/v1/market", &v)
	var last admitResponse
	for i := 0; i < 5; i++ {
		last = admit(t, ts, drawProvider(cfg, &v, 15, i))
	}
	var tr traceResponse
	getJSON(t, ts.URL+"/v1/debug/trace?n=0", &tr)
	if tr.Total != 5 || len(tr.Traces) != 3 {
		t.Fatalf("total %d retained %d, want 5/3", tr.Total, len(tr.Traces))
	}
	if tr.Traces[0].Provider != last.ID {
		t.Fatalf("newest trace is provider %d, want %d", tr.Traces[0].Provider, last.ID)
	}
}

// TestBuildInfoExposed checks the build-identity satellite: the gauge on
// /metrics and the same fields on /healthz.
func TestBuildInfoExposed(t *testing.T) {
	cfg := testConfig(16)
	_, ts := startServer(t, cfg)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "mecache_build_info{") {
		t.Fatal("mecache_build_info gauge missing from /metrics")
	}
	for _, label := range []string{"version=", "goversion=", "revision="} {
		if !strings.Contains(text, label) {
			t.Fatalf("build info label %q missing", label)
		}
	}
	for _, series := range []string{"go_goroutines", "mecd_http_requests_total", "mecd_http_request_seconds",
		"mecd_epoch_errors_total", "mecd_snapshot_errors_total", "mecd_epoch_lcf_rounds"} {
		if !strings.Contains(text, "# TYPE "+series+" ") {
			t.Fatalf("series %s missing from /metrics", series)
		}
	}

	var health map[string]json.RawMessage
	getJSON(t, ts.URL+"/healthz", &health)
	var build obs.BuildInfo
	if err := json.Unmarshal(health["build"], &build); err != nil {
		t.Fatalf("healthz build field: %v", err)
	}
	if build.GoVersion == "" || build.Version == "" || build.Revision == "" {
		t.Fatalf("healthz build info incomplete: %+v", build)
	}
}

// TestTracingPreservesPlacements pins determinism end to end at the daemon
// level: the same seed and admission sequence reaches identical placements
// with tracing enabled and disabled.
func TestTracingPreservesPlacements(t *testing.T) {
	run := func(depth int) []int {
		cfg := testConfig(17)
		cfg.TraceDepth = depth
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Stop(ctx); err != nil {
				t.Fatal(err)
			}
		}()
		v := s.View()
		placements := make([]int, 10)
		for i := range placements {
			p := drawProvider(cfg, v, 17, i)
			res := s.do(context.Background(), nil, func(st *state) cmdResult { return s.admitCmd(st, p) })
			if res.err != nil {
				t.Fatal(res.err)
			}
			placements[i] = res.body.(admitResponse).Placement
		}
		res := s.do(context.Background(), nil, func(st *state) cmdResult { return s.epochCmd(st) })
		if res.err != nil {
			t.Fatal(res.err)
		}
		final := s.View()
		for _, pv := range final.Providers {
			placements = append(placements, pv.Placement)
		}
		return placements
	}
	traced := run(64)
	untraced := run(0)
	if len(traced) != len(untraced) {
		t.Fatalf("placement streams differ in length: %d vs %d", len(traced), len(untraced))
	}
	for i := range traced {
		if traced[i] != untraced[i] {
			t.Fatalf("placement %d: traced %d != untraced %d", i, traced[i], untraced[i])
		}
	}
}
