package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"mecache/internal/game"
	"mecache/internal/mec"
)

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// StorageError reports a persistence path (snapshot directory or WAL
// directory) that cannot be used, detected at construction time. Failing
// at New keeps a misconfigured -snapshot or -wal-dir from surfacing only
// at the first write — by which point acknowledged mutations would already
// be at risk.
type StorageError struct {
	Role string // "snapshot" or "wal"
	Path string
	Err  error
}

func (e *StorageError) Error() string {
	return fmt.Sprintf("server: %s path %s unusable: %v", e.Role, e.Path, e.Err)
}

func (e *StorageError) Unwrap() error { return e.Err }

// ensureWritableDir creates dir (and any missing parents) and proves it is
// writable by creating and removing a probe file. writeSnapshot and
// wal.Append then cannot fail for directory reasons mid-flight.
func ensureWritableDir(role, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return &StorageError{Role: role, Path: dir, Err: err}
	}
	probe, err := os.CreateTemp(dir, ".mecd-probe-*")
	if err != nil {
		return &StorageError{Role: role, Path: dir, Err: fmt.Errorf("not writable: %w", err)}
	}
	name := probe.Name()
	if err := probe.Close(); err != nil {
		os.Remove(name)
		return &StorageError{Role: role, Path: dir, Err: err}
	}
	if err := os.Remove(name); err != nil {
		return &StorageError{Role: role, Path: dir, Err: err}
	}
	return nil
}

// validateStorage fails fast on unusable persistence paths: the snapshot's
// parent directory and the WAL directory are created if missing and
// probed for writability, and a SnapshotPath that names an existing
// directory is rejected before restore would misread it.
func (cfg Config) validateStorage() error {
	if cfg.SnapshotPath != "" {
		if fi, err := os.Stat(cfg.SnapshotPath); err == nil && fi.IsDir() {
			return &StorageError{Role: "snapshot", Path: cfg.SnapshotPath,
				Err: errors.New("is a directory, want a file path")}
		}
		if err := ensureWritableDir("snapshot", filepath.Dir(cfg.SnapshotPath)); err != nil {
			return err
		}
	}
	if cfg.WALDir != "" {
		if err := ensureWritableDir("wal", cfg.WALDir); err != nil {
			return err
		}
	}
	return nil
}

// snapCounters carries the monotone counters across restarts.
type snapCounters struct {
	Accepted   uint64  `json:"accepted"`
	Rejected   uint64  `json:"rejected"`
	Departed   uint64  `json:"departed"`
	Failovers  uint64  `json:"failovers"`
	Failbacks  uint64  `json:"failbacks"`
	Outages    uint64  `json:"outages"`
	Repairs    uint64  `json:"repairs"`
	Reconfigs  uint64  `json:"reconfigurations"`
	Suppressed uint64  `json:"migrationsSuppressed"`
	MigCost    float64 `json:"migrationCost"`
}

// snapshotFile is the JSON document written to SnapshotPath. The market
// (when present) embeds the full network via mec.Market's canonical
// marshaler, so a snapshot is self-contained: restore never regenerates the
// topology, which keeps hop distances and cost tables bit-identical.
type snapshotFile struct {
	Version int    `json:"version"`
	Seed    uint64 `json:"seed"`
	NextID  int64  `json:"nextID"`
	Epochs  uint64 `json:"epochs"`
	// LSN is the write-ahead-log sequence number of the last command this
	// snapshot contains. Recovery skips WAL records at or below it, which
	// makes snapshot-then-compact safe against a crash at any point in
	// between. Absent (0) in pre-WAL snapshots.
	LSN        uint64        `json:"lsn,omitempty"`
	Counters   snapCounters  `json:"counters"`
	Network    *mec.Network  `json:"network,omitempty"` // only when the market is empty
	Market     *mec.Market   `json:"market,omitempty"`
	IDs        []int64       `json:"ids"`
	Placement  mec.Placement `json:"placement"`
	Waiting    []bool        `json:"waiting"`
	WaitingFor []int         `json:"waitingFor"`
	Failed     []bool        `json:"failed"`
}

// writeSnapshot persists the loop-owned state atomically and durably:
// temp file, fsync, rename, fsync the directory. Without the fsyncs a
// power loss shortly after the rename could install an empty or garbage
// file — the rename survives in the directory, the data does not. Only the
// event loop calls this.
func (s *Server) writeSnapshot(st *state) error {
	f := snapshotFile{
		Version: snapshotVersion,
		Seed:    s.cfg.Seed,
		NextID:  st.nextID,
		Epochs:  st.epochs,
		LSN:     st.lsn,
		Counters: snapCounters{
			Accepted:   st.accepted,
			Rejected:   st.rejected,
			Departed:   st.departed,
			Failovers:  st.failovers,
			Failbacks:  st.failbacks,
			Outages:    st.outages,
			Repairs:    st.repairs,
			Reconfigs:  st.reconfigs,
			Suppressed: st.suppressed,
			MigCost:    st.migCost,
		},
		Market:     st.m,
		IDs:        st.ids,
		Placement:  st.pl,
		Waiting:    st.waiting,
		WaitingFor: st.waitingFor,
		Failed:     st.failed,
	}
	if st.m == nil {
		f.Network = s.net
	}
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("server: marshal snapshot: %w", err)
	}
	dir := filepath.Dir(s.cfg.SnapshotPath)
	tmp, err := os.CreateTemp(dir, ".mecd-snapshot-*")
	if err != nil {
		return fmt.Errorf("server: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("server: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("server: fsync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.cfg.SnapshotPath); err != nil {
		return fmt.Errorf("server: install snapshot: %w", err)
	}
	// Persist the rename itself: until the directory entry is flushed, the
	// old file (or nothing) is what a crash would leave behind.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("server: open snapshot dir: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("server: fsync snapshot dir: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("server: close snapshot dir: %w", err)
	}
	return nil
}

// restore loads SnapshotPath into the pre-Start state. A missing file means
// a fresh start; a corrupt or inconsistent one is a hard error (silently
// dropping persisted market state would be worse than refusing to boot).
func (s *Server) restore() error {
	data, err := os.ReadFile(s.cfg.SnapshotPath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: read snapshot: %w", err)
	}
	var f snapshotFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("server: decode snapshot %s: %w", s.cfg.SnapshotPath, err)
	}
	if f.Version != snapshotVersion {
		return fmt.Errorf("server: snapshot version %d, want %d", f.Version, snapshotVersion)
	}
	n := len(f.IDs)
	if len(f.Placement) != n || len(f.Waiting) != n || len(f.WaitingFor) != n {
		return fmt.Errorf("server: snapshot arrays disagree: %d ids, %d placements, %d waiting, %d waitingFor",
			n, len(f.Placement), len(f.Waiting), len(f.WaitingFor))
	}
	if f.Market != nil {
		if len(f.Market.Providers) != n {
			return fmt.Errorf("server: snapshot has %d providers but %d ids", len(f.Market.Providers), n)
		}
		if err := f.Market.Validate(f.Placement); err != nil {
			return fmt.Errorf("server: snapshot placement invalid: %w", err)
		}
		s.net = f.Market.Net
	} else {
		if n != 0 {
			return fmt.Errorf("server: snapshot has %d ids but no market", n)
		}
		if f.Network == nil {
			return fmt.Errorf("server: snapshot has neither market nor network")
		}
		s.net = f.Network
	}
	if len(f.Failed) != s.net.NumCloudlets() {
		return fmt.Errorf("server: snapshot failure mask covers %d cloudlets, network has %d",
			len(f.Failed), s.net.NumCloudlets())
	}
	// The waiting/waitingFor/failed triple has invariants the failback path
	// relies on; an inconsistent snapshot must not load silently, or the
	// next repair would consult garbage.
	for i := range f.Waiting {
		wf := f.WaitingFor[i]
		if wf < -1 || wf >= s.net.NumCloudlets() {
			return fmt.Errorf("server: snapshot waitingFor[%d] = %d outside [-1,%d)", i, wf, s.net.NumCloudlets())
		}
		if f.Waiting[i] != (wf != -1) {
			return fmt.Errorf("server: snapshot waiting[%d] = %v disagrees with waitingFor[%d] = %d",
				i, f.Waiting[i], i, wf)
		}
		if f.Waiting[i] && !f.Failed[wf] {
			return fmt.Errorf("server: snapshot provider %d waits for cloudlet %d, which is not failed", i, wf)
		}
	}
	byID := make(map[int64]int, n)
	for i, id := range f.IDs {
		if _, dup := byID[id]; dup {
			return fmt.Errorf("server: snapshot repeats provider id %d", id)
		}
		if id >= f.NextID {
			return fmt.Errorf("server: snapshot id %d not below nextID %d", id, f.NextID)
		}
		byID[id] = i
	}
	s.st = state{
		m:          f.Market,
		pl:         f.Placement,
		ids:        f.IDs,
		byID:       byID,
		waiting:    f.Waiting,
		waitingFor: f.WaitingFor,
		failed:     f.Failed,
		nextID:     f.NextID,
		epochs:     f.Epochs,
		lsn:        f.LSN,
		accepted:   f.Counters.Accepted,
		rejected:   f.Counters.Rejected,
		departed:   f.Counters.Departed,
		failovers:  f.Counters.Failovers,
		failbacks:  f.Counters.Failbacks,
		outages:    f.Counters.Outages,
		repairs:    f.Counters.Repairs,
		reconfigs:  f.Counters.Reconfigs,
		suppressed: f.Counters.Suppressed,
		migCost:    f.Counters.MigCost,
	}
	if n == 0 {
		s.st.ids = []int64{}
		s.st.pl = nil
		s.st.waiting = []bool{}
		s.st.waitingFor = []int{}
	} else {
		s.st.ls = game.NewLoadState(s.st.m)
		s.st.ls.Reset(s.st.pl)
	}
	return nil
}
