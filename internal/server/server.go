// Package server is the online serving subsystem: a long-running market
// daemon that admits and retires service providers over a JSON HTTP API,
// keeps their placements in a capacity-aware best-response state, and
// periodically re-equilibrates the whole market with the same LCF/Appro
// epoch step the dynamic-market simulator uses.
//
// Concurrency model: all market state lives behind a single-writer event
// loop. HTTP handlers never touch the state; they submit commands over a
// channel and wait for the reply. Reads (placements, market facts, health)
// are served lock-free from an immutable View republished by the loop after
// every mutation. This makes the daemon race-free by construction and keeps
// admissions strictly serialized, which is what makes fixed-seed runs
// reproduce byte-identical placements.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mecache/internal/fault"
	"mecache/internal/mec"
	"mecache/internal/metrics"
	"mecache/internal/obs"
	"mecache/internal/stats"
	"mecache/internal/topology"
	"mecache/internal/wal"
	"mecache/internal/workload"
)

// DefaultQueueDepth bounds the command queue when Config.QueueDepth is 0.
const DefaultQueueDepth = 256

// Config parameterizes the daemon.
type Config struct {
	// Seed drives topology generation and the per-epoch LCF tie-breaking
	// stream (epoch e uses Seed+e).
	Seed uint64
	// Topology overrides the generated network; nil generates a GT-ITM
	// topology of Size nodes, exactly as dynamic.New does.
	Topology *topology.Topology
	// Size is the GT-ITM node count when Topology is nil.
	Size int
	// Workload lays out cloudlets and data centers (its provider fields are
	// unused by the daemon: providers arrive over the API).
	Workload workload.Config
	// MaxActive caps concurrently active providers; 0 means unlimited.
	// Admissions beyond the cap are rejected with 429.
	MaxActive int
	// Xi is the capacity slack factor passed to the epoch re-equilibration.
	Xi float64
	// EpochInterval is the wall-clock period of the re-equilibration ticker;
	// 0 disables the ticker (epochs then run only via POST /v1/admin/epoch,
	// which is the deterministic mode).
	EpochInterval time.Duration
	// MigrationAware applies the dynamic simulator's hysteresis: an epoch
	// moves a cached provider only when the saving beats its re-instantiation
	// cost.
	MigrationAware bool
	// EpochWorkers widens the sharded best-response round inside each epoch
	// solve. Values <= 1 run serially; every width is bit-identical, so this
	// only trades cores for epoch latency. Negative is invalid.
	EpochWorkers int
	// Policy is the failover reaction applied by POST /v1/admin/fail.
	Policy fault.Policy
	// SnapshotPath, when non-empty, persists the market as JSON after every
	// epoch and on shutdown, and restores it on startup if the file exists.
	SnapshotPath string
	// Logger receives the daemon's structured log stream (request access
	// lines, epoch and snapshot failures). Nil discards everything, keeping
	// embedded and test use silent.
	Logger *slog.Logger
	// TraceDepth is how many completed decision traces (admissions and
	// epochs) the daemon retains for GET /v1/debug/trace. 0 disables
	// decision tracing entirely — admissions then run the untraced
	// best-response scan. Negative is invalid.
	TraceDepth int
	// SpanDepth is how many completed lifecycle spans the daemon retains
	// for GET /v1/debug/spans. A request carrying a W3C traceparent header
	// is decomposed into queue-wait, WAL-append, WAL-fsync, apply, and
	// view-publish child spans under one root, all sharing the header's
	// trace ID. 0 disables span tracing entirely — traceparent headers are
	// then ignored and the command path stays allocation-free. Negative is
	// invalid.
	SpanDepth int
	// WALDir, when non-empty, enables the write-ahead log: every mutating
	// command is logged (and fsynced per WALSync) before it applies, and
	// startup replays the log tail over the restored snapshot, so a crash
	// loses nothing that was acknowledged. Works with or without
	// SnapshotPath; snapshots compact the log.
	WALDir string
	// WALSync is the fsync policy: "always" (default; acknowledged
	// commands survive power loss), "interval" (fsync at most once per
	// WALSyncInterval; bounded loss), or "off" (the OS decides).
	WALSync string
	// WALSyncInterval spaces fsyncs under WALSync "interval".
	WALSyncInterval time.Duration
	// WALSegmentBytes rotates log segments at this size; 0 uses the wal
	// package default (64 MiB).
	WALSegmentBytes int64
	// QueueDepth bounds the command queue between HTTP handlers and the
	// event loop; a full queue sheds new commands with 429 + Retry-After
	// instead of blocking. 0 means DefaultQueueDepth; negative is invalid.
	QueueDepth int
	// RequestTimeout bounds how long a mutating request may wait in the
	// queue plus execute; expiry answers 503. 0 disables the deadline.
	RequestTimeout time.Duration
	// Tenant, when non-empty, labels every metric this daemon registers
	// with tenant="<Tenant>". The multi-tenant registry sets it so many
	// markets can share one exposition without series collisions; a bare
	// single-tenant daemon leaves it empty and keeps unlabeled series.
	Tenant string
	// Metrics, when non-nil, is an externally owned registry the daemon
	// registers its instruments into instead of creating its own. The
	// owner is then responsible for the process-wide series (runtime
	// gauges, build info), which must be registered exactly once no matter
	// how many tenants share the registry. Counters restored from a
	// snapshot are delta-primed, so re-registering after an eviction and
	// rehydration never double-counts.
	Metrics *metrics.Registry
}

// walSyncOrDefault maps the empty policy spelling to "always".
func (cfg Config) walSyncOrDefault() string {
	if cfg.WALSync == "" {
		return "always"
	}
	return cfg.WALSync
}

// DefaultConfig mirrors the paper's Section IV setup.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:       seed,
		Size:       150,
		Workload:   workload.Default(seed),
		Xi:         0.7,
		Policy:     fault.PolicyRemoteFallback,
		TraceDepth: 64,
		SpanDepth:  256,
	}
}

// Validate rejects non-finite or out-of-range parameters.
func (cfg Config) Validate() error {
	if math.IsNaN(cfg.Xi) || cfg.Xi < 0 || cfg.Xi > 1 {
		return fmt.Errorf("server: xi %v outside [0,1]", cfg.Xi)
	}
	if cfg.Topology == nil && cfg.Size <= 0 {
		return fmt.Errorf("server: topology size %d must be positive", cfg.Size)
	}
	if cfg.MaxActive < 0 {
		return fmt.Errorf("server: negative MaxActive %d", cfg.MaxActive)
	}
	if cfg.EpochWorkers < 0 {
		return fmt.Errorf("server: negative EpochWorkers %d", cfg.EpochWorkers)
	}
	if cfg.EpochInterval < 0 {
		return fmt.Errorf("server: negative epoch interval %v", cfg.EpochInterval)
	}
	if cfg.TraceDepth < 0 {
		return fmt.Errorf("server: negative TraceDepth %d", cfg.TraceDepth)
	}
	if cfg.SpanDepth < 0 {
		return fmt.Errorf("server: negative SpanDepth %d", cfg.SpanDepth)
	}
	if cfg.QueueDepth < 0 {
		return fmt.Errorf("server: negative QueueDepth %d", cfg.QueueDepth)
	}
	if cfg.RequestTimeout < 0 {
		return fmt.Errorf("server: negative RequestTimeout %v", cfg.RequestTimeout)
	}
	if cfg.WALSegmentBytes < 0 {
		return fmt.Errorf("server: negative WALSegmentBytes %d", cfg.WALSegmentBytes)
	}
	if cfg.WALDir != "" {
		pol, err := wal.ParseSyncPolicy(cfg.walSyncOrDefault())
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		if pol == wal.SyncInterval && cfg.WALSyncInterval <= 0 {
			return fmt.Errorf("server: WALSync interval needs a positive WALSyncInterval, got %v", cfg.WALSyncInterval)
		}
	}
	switch cfg.Policy {
	case fault.PolicyRemoteFallback, fault.PolicyReplace, fault.PolicyWaitForRepair:
	default:
		return fmt.Errorf("server: unknown failover policy %d", int(cfg.Policy))
	}
	wl := cfg.Workload
	wl.NumProviders = 1 // the daemon ignores provider counts
	if err := wl.Validate(); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return nil
}

// ProviderView is one provider's entry in the published View.
type ProviderView struct {
	ID        int64   `json:"id"`
	Placement int     `json:"placement"`
	Cost      float64 `json:"cost"`
	Waiting   bool    `json:"waiting,omitempty"`
}

// View is the immutable read-side of the daemon, republished by the event
// loop after every mutation. Handlers serve it without locks.
type View struct {
	Active          int            `json:"active"`
	SocialCost      float64        `json:"socialCost"`
	Providers       []ProviderView `json:"providers"`
	Loads           []int          `json:"loads"`
	FailedCloudlets []int          `json:"failedCloudlets"`
	NumCloudlets    int            `json:"numCloudlets"`
	NumDCs          int            `json:"numDCs"`
	NumNodes        int            `json:"numNodes"`
	Epochs          uint64         `json:"epochs"`
	Accepted        uint64         `json:"accepted"`
	Rejected        uint64         `json:"rejected"`
	Departed        uint64         `json:"departed"`
	Failovers       uint64         `json:"failovers"`
	Failbacks       uint64         `json:"failbacks"`
	Reconfigs       uint64         `json:"reconfigurations"`
	Suppressed      uint64         `json:"migrationsSuppressed"`
	MigrationCost   float64        `json:"migrationCost"`
	LastEpochError  string         `json:"lastEpochError,omitempty"`
}

// Server is the market daemon. Create with New, then Start, then serve
// Handler over any http.Server; Stop shuts the loop down and writes the
// final snapshot.
type Server struct {
	cfg Config
	net *mec.Network

	st       state
	cmds     chan command
	stopping chan struct{}
	killing  chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	killOnce sync.Once
	stopErr  error
	started  atomic.Bool

	// wal is the command log (nil without WALDir); recovering is true only
	// during the constructor's replay, gating snapshot writes and tracing
	// inside the replayed command functions.
	wal        *wal.Log
	recovering bool

	view atomic.Pointer[View]
	mux  *http.ServeMux

	log   *slog.Logger
	ring  *obs.Ring
	reqID atomic.Uint64

	// spans is the lifecycle-span ring behind GET /v1/debug/spans; spanSeq
	// mints trace IDs for spans with no client traceparent (background
	// epochs). The cur/last fields below are loop-owned scratch: execCommand
	// sets curTrace/curParent around a command function so admitCmd/epochCmd
	// can attach nested spans without widening every signature, and the WAL
	// OnAppend/OnSync hooks (which fire inside logCommand, on the loop
	// goroutine) drop their measured seconds into lastAppendSec/lastSyncSec
	// for the loop to read back as span durations.
	spans         *obs.SpanRing
	spanSeq       atomic.Uint64
	curTrace      string
	curParent     uint64
	lastAppendSec float64
	lastSyncSec   float64
	// inTickerEpoch marks that the background ticker is driving the current
	// epochCmd call; the ticker records the whole-epoch StageEpoch root span
	// itself, so epochCmd must not emit a second one. Loop-owned.
	inTickerEpoch bool
	// hStage maps span stage -> the mecd_span_seconds{stage=...} histogram
	// it feeds. recordSpan observes it from the same Span value it retains,
	// so the metric and the trace can never disagree.
	hStage map[string]*metrics.Histogram

	reg        *metrics.Registry
	mAccepted  *metrics.Counter
	mRejected  *metrics.Counter
	mDeparted  *metrics.Counter
	mOutages   *metrics.Counter
	mRepairs   *metrics.Counter
	mFailovers *metrics.Counter
	mFailbacks *metrics.Counter
	mEpochs    *metrics.Counter
	mReconfigs *metrics.Counter
	mEpochErrs *metrics.Counter
	mSnapErrs  *metrics.Counter
	mLatency   *metrics.Histogram
	hLCFRounds *metrics.Histogram
	hEpochMigr *metrics.Histogram
	gActive    *metrics.Gauge
	gSocial    *metrics.Gauge
	gLoads     []*metrics.Gauge

	mShed           *metrics.Counter
	mWALErrs        *metrics.Counter
	mWALTruncations *metrics.Counter
	hWALAppend      *metrics.Histogram
	hWALSync        *metrics.Histogram
	gRecoverySec    *metrics.Gauge
	gRecoveredRecs  *metrics.Gauge
}

// New builds the daemon: generates (or adopts) the physical network,
// restores the snapshot when one exists, and registers its metrics. The
// event loop is not running until Start.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Create-and-validate the persistence paths up front: a daemon whose
	// snapshot or WAL directory does not exist (or is not writable) must
	// refuse to boot, not fail at the first epoch snapshot hours later.
	if err := cfg.validateStorage(); err != nil {
		return nil, err
	}
	topo := cfg.Topology
	if topo == nil {
		var err error
		topo, err = topology.GTITM(cfg.Seed^0xdddd, cfg.Size)
		if err != nil {
			return nil, err
		}
	}
	// Lay out the physical side with a one-provider probe, exactly as the
	// dynamic simulator does; the probe provider itself is discarded.
	probe := cfg.Workload
	probe.NumProviders = 1
	pm, err := workload.Generate(topo, probe)
	if err != nil {
		return nil, err
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = DefaultQueueDepth
	}
	s := &Server{
		cfg:      cfg,
		net:      pm.Net,
		cmds:     make(chan command, depth),
		stopping: make(chan struct{}),
		killing:  make(chan struct{}),
		done:     make(chan struct{}),
		reg:      cfg.Metrics,
		log:      cfg.Logger,
		ring:     obs.NewRing(cfg.TraceDepth),
		spans:    obs.NewSpanRing(cfg.SpanDepth),
	}
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	if s.log == nil {
		s.log = obs.NopLogger()
	}
	s.st = state{
		byID:   make(map[int64]int),
		failed: make([]bool, s.net.NumCloudlets()),
	}
	if cfg.SnapshotPath != "" {
		if err := s.restore(); err != nil {
			return nil, err
		}
	}
	s.registerMetrics()
	if cfg.WALDir != "" {
		// Recovery replays the WAL tail through the same command functions
		// the live loop uses, so the metrics registered above keep counting
		// through the replay — a restart never zeroes the exported series.
		if err := s.recoverWAL(); err != nil {
			return nil, err
		}
	}
	s.buildMux()
	s.publish(&s.st)
	return s, nil
}

// labels extends an instrument's label pairs with the daemon's tenant
// label when one is configured, so every series a multi-tenant registry
// hosts is keyed by tenant while a bare daemon keeps its unlabeled names.
func (s *Server) labels(kv ...string) []string {
	if s.cfg.Tenant == "" {
		return kv
	}
	return append(kv, "tenant", s.cfg.Tenant)
}

func (s *Server) registerMetrics() {
	s.mAccepted = s.reg.Counter("mecd_admissions_total", "Provider admission outcomes.", s.labels("result", "accepted")...)
	s.mRejected = s.reg.Counter("mecd_admissions_total", "Provider admission outcomes.", s.labels("result", "rejected")...)
	s.mDeparted = s.reg.Counter("mecd_departures_total", "Providers retired via DELETE.", s.labels()...)
	s.mOutages = s.reg.Counter("mecd_outages_total", "Cloudlet failures injected.", s.labels()...)
	s.mRepairs = s.reg.Counter("mecd_repairs_total", "Cloudlet repairs applied.", s.labels()...)
	s.mFailovers = s.reg.Counter("mecd_failovers_total", "Providers displaced by cloudlet failures.", s.labels()...)
	s.mFailbacks = s.reg.Counter("mecd_failbacks_total", "Providers returned to a repaired cloudlet.", s.labels()...)
	s.mEpochs = s.reg.Counter("mecd_epochs_total", "Re-equilibration epochs run.", s.labels()...)
	s.mReconfigs = s.reg.Counter("mecd_reconfigurations_total", "Placement changes applied by epochs.", s.labels()...)
	s.mEpochErrs = s.reg.Counter("mecd_epoch_errors_total", "Background and snapshot-time epoch failures.", s.labels()...)
	s.mSnapErrs = s.reg.Counter("mecd_snapshot_errors_total", "Snapshot write failures.", s.labels()...)
	s.mLatency = s.reg.Histogram("mecd_admission_seconds", "End-to-end admission latency.", stats.LatencyBuckets(), s.labels()...)
	s.hLCFRounds = s.reg.Histogram("mecd_epoch_lcf_rounds", "Best-response convergence rounds per epoch.",
		[]float64{1, 2, 3, 5, 8, 13, 21, 34, 55}, s.labels()...)
	s.hEpochMigr = s.reg.Histogram("mecd_epoch_reconfigurations", "Placement changes per epoch.",
		[]float64{0, 1, 2, 5, 10, 20, 50, 100, 200}, s.labels()...)
	s.gActive = s.reg.Gauge("mecd_active_providers", "Currently active providers.", s.labels()...)
	s.gSocial = s.reg.Gauge("mecd_social_cost", "Social cost of the current placement.", s.labels()...)
	s.mShed = s.reg.Counter("mecd_cmds_shed_total", "Commands shed with 429 because the queue was full.", s.labels()...)
	// Rehydration re-registers this series and the closure is replaced, so
	// the scrape always reads the live instance's queue, never an evicted
	// one's.
	s.reg.GaugeFunc("mecd_cmd_queue_depth", "Commands waiting in the event-loop queue.",
		func() float64 { return float64(len(s.cmds)) }, s.labels()...)
	s.mWALErrs = s.reg.Counter("mecd_wal_errors_total", "WAL append, fsync, and compaction failures.", s.labels()...)
	s.mWALTruncations = s.reg.Counter("mecd_wal_truncations_total", "Torn WAL tails truncated during recovery.", s.labels()...)
	s.hWALAppend = s.reg.Histogram("mecd_wal_append_seconds", "WAL record append (write) latency.", stats.LatencyBuckets(), s.labels()...)
	s.hWALSync = s.reg.Histogram("mecd_wal_fsync_seconds", "WAL fsync latency.", stats.LatencyBuckets(), s.labels()...)
	s.gRecoverySec = s.reg.Gauge("mecd_wal_recovery_seconds", "Duration of the last startup WAL replay.", s.labels()...)
	s.gRecoveredRecs = s.reg.Gauge("mecd_wal_recovered_records", "Commands replayed by the last startup WAL recovery.", s.labels()...)
	if s.cfg.WALDir != "" {
		// Segment visibility: rotation and compaction are otherwise invisible
		// until someone lists the directory. registerMetrics runs before
		// recoverWAL opens the log, so the closures nil-check; rehydration on
		// a shared registry replaces them, like the queue-depth gauge above.
		s.reg.GaugeFunc("mecd_wal_segment_count", "Write-ahead log segment files on disk.",
			func() float64 {
				if s.wal == nil {
					return 0
				}
				return float64(s.wal.SegmentCount())
			}, s.labels()...)
		s.reg.GaugeFunc("mecd_wal_active_segment_bytes", "Bytes written to the active write-ahead log segment.",
			func() float64 {
				if s.wal == nil {
					return 0
				}
				return float64(s.wal.ActiveSegmentBytes())
			}, s.labels()...)
	}
	if s.spans.Enabled() {
		// One histogram per lifecycle stage, registered eagerly so the whole
		// family is visible on the first scrape. The stage set is the closed
		// list in internal/obs, so label cardinality is fixed at compile time.
		s.hStage = make(map[string]*metrics.Histogram, len(serverSpanStages))
		for _, stage := range serverSpanStages {
			s.hStage[stage] = s.reg.Histogram("mecd_span_seconds", SpanSecondsHelp,
				stats.LatencyBuckets(), s.labels("stage", stage)...)
		}
	}
	s.gLoads = make([]*metrics.Gauge, s.net.NumCloudlets())
	for i := range s.gLoads {
		s.gLoads[i] = s.reg.Gauge("mecd_cloudlet_load", "Services cached per cloudlet.", s.labels("cloudlet", strconv.Itoa(i))...)
	}
	// Prime the counters from restored state so a restart does not zero the
	// exported series. The priming is delta-based: on a shared registry the
	// instrument may already carry the tenant's lifetime count (eviction
	// followed by rehydration), and since snapshot counters and instruments
	// increment in lockstep, adding only the shortfall never double-counts.
	prime := func(c *metrics.Counter, v uint64) {
		if d := float64(v) - c.Value(); d > 0 {
			c.Add(d)
		}
	}
	prime(s.mAccepted, s.st.accepted)
	prime(s.mRejected, s.st.rejected)
	prime(s.mDeparted, s.st.departed)
	prime(s.mOutages, s.st.outages)
	prime(s.mRepairs, s.st.repairs)
	prime(s.mFailovers, s.st.failovers)
	prime(s.mFailbacks, s.st.failbacks)
	prime(s.mEpochs, s.st.epochs)
	prime(s.mReconfigs, s.st.reconfigs)
	if s.cfg.Metrics == nil {
		// Process-wide series belong to whoever owns the registry: a bare
		// daemon owns its own, a multi-tenant registry registers them once
		// for all tenants.
		metrics.RegisterRuntime(s.reg)
		b := obs.Build()
		s.reg.Gauge("mecache_build_info", "Build identity of the running binary; value is always 1.",
			"version", b.Version, "goversion", b.GoVersion, "revision", b.Revision).Set(1)
	}
}

// publish rebuilds the read View from loop-owned state and stores it
// atomically. Only the event loop (and New, before Start) calls this.
func (s *Server) publish(st *state) {
	v := &View{
		Active:        len(st.ids),
		NumCloudlets:  s.net.NumCloudlets(),
		NumDCs:        len(s.net.DCs),
		NumNodes:      s.net.Topo.N(),
		Epochs:        st.epochs,
		Accepted:      st.accepted,
		Rejected:      st.rejected,
		Departed:      st.departed,
		Failovers:     st.failovers,
		Failbacks:     st.failbacks,
		Reconfigs:     st.reconfigs,
		Suppressed:    st.suppressed,
		MigrationCost: st.migCost,

		LastEpochError: st.lastEpochErr,
	}
	if st.m != nil {
		costs := st.m.ProviderCosts(st.pl)
		v.SocialCost = st.m.SocialCost(st.pl)
		v.Loads = st.m.Loads(st.pl)
		v.Providers = make([]ProviderView, len(st.ids))
		for i, id := range st.ids {
			v.Providers[i] = ProviderView{ID: id, Placement: st.pl[i], Cost: costs[i], Waiting: st.waiting[i]}
		}
	} else {
		v.Loads = make([]int, s.net.NumCloudlets())
		v.Providers = []ProviderView{}
	}
	v.FailedCloudlets = []int{}
	for i, f := range st.failed {
		if f {
			v.FailedCloudlets = append(v.FailedCloudlets, i)
		}
	}
	s.view.Store(v)
	s.gActive.Set(float64(v.Active))
	s.gSocial.Set(v.SocialCost)
	for i, g := range s.gLoads {
		g.Set(float64(v.Loads[i]))
	}
}

// Start launches the event loop. Safe to call once; later calls are no-ops.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go s.loop()
}

// Stop shuts the event loop down, draining queued commands with 503s, and
// waits for the final snapshot write and WAL compaction (bounded by ctx).
func (s *Server) Stop(ctx context.Context) error {
	if !s.started.Load() {
		s.closeWAL()
		return nil
	}
	s.stopOnce.Do(func() { close(s.stopping) })
	select {
	case <-s.done:
		return s.stopErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Kill terminates the event loop abruptly: no final snapshot, no WAL
// compaction, queued commands answered with 503. It simulates a crash for
// chaos testing — the next New over the same SnapshotPath/WALDir must
// rebuild the identical state from the last snapshot plus the WAL tail.
// Kill waits for the loop to exit before returning.
func (s *Server) Kill() {
	if !s.started.Load() {
		s.closeWAL()
		return
	}
	s.killOnce.Do(func() { close(s.killing) })
	<-s.done
}

// View returns the current read snapshot.
func (s *Server) View() *View { return s.view.Load() }

// Registry exposes the daemon's metrics registry (for embedding extra
// instruments, e.g. by cmd/mecd).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	route("POST /v1/providers", s.handleAdmit)
	route("DELETE /v1/providers/{id}", s.handleDepart)
	route("GET /v1/placements", s.handlePlacements)
	route("GET /v1/market", s.handleMarket)
	route("GET /v1/debug/trace", s.handleTrace)
	route("GET /v1/debug/spans", s.handleSpans)
	route("POST /v1/admin/fail", s.handleFail)
	route("POST /v1/admin/epoch", s.handleEpoch)
	route("POST /v1/admin/snapshot", s.handleSnapshot)
	route("GET /healthz", s.handleHealthz)
	route("GET /metrics", s.handleMetrics)
	// Runtime profiling. pprof.Index dispatches /debug/pprof/{profile} to
	// the named profiles (heap, goroutine, block, ...), so the subtree
	// pattern covers them all; the handlers below need their own routes
	// because Index does not serve them.
	route("GET /debug/pprof/", pprof.Index)
	route("GET /debug/pprof/cmdline", pprof.Cmdline)
	route("GET /debug/pprof/profile", pprof.Profile)
	route("GET /debug/pprof/symbol", pprof.Symbol)
	route("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
}

// SpanSecondsHelp documents the mecd_span_seconds histogram family. The
// tenant registry registers its hydration/eviction stages into the same
// family, so the help text lives in one exported constant.
const SpanSecondsHelp = "Request lifecycle stage timings derived from completed spans."

// serverSpanStages is every stage this daemon's own span sites emit; the
// tenant lifecycle stages belong to the tenant registry.
var serverSpanStages = []string{
	obs.StageRequest, obs.StageQueueWait, obs.StageWALAppend, obs.StageWALFsync,
	obs.StageApply, obs.StagePublish, obs.StageBestResponse,
	obs.StageEpochSolve, obs.StageSnapshot, obs.StageEpoch,
}

// recordSpan retains a completed span and feeds its duration to the
// stage's mecd_span_seconds histogram in the same call — the metric and
// the trace are two views of one measurement, so they cannot disagree.
func (s *Server) recordSpan(sp obs.Span) {
	if !s.spans.Enabled() {
		return
	}
	s.spans.Record(sp)
	if h := s.hStage[sp.Stage]; h != nil {
		h.Observe(sp.Duration)
	}
}

// traceCtx carries one sampled request's trace identity from the HTTP
// middleware into the event loop. It exists only when span tracing is on
// AND the client sent a valid W3C traceparent header; every other request
// runs the span-free path (a nil *traceCtx everywhere), which is what
// keeps the untraced hot path at zero allocations.
type traceCtx struct {
	trace  string    // 32-hex trace ID adopted from the client's traceparent
	remote string    // the client's span ID (16 hex), kept as a root attr
	root   uint64    // daemon-side root span ID; parent of every child span
	enq    time.Time // when the command entered the queue (queue_wait start)
}

// traceCtxKey keys the traceCtx in a request context.
type traceCtxKey struct{}

// traceCtxFrom extracts the sampled-request trace context (nil when the
// request is untraced).
func traceCtxFrom(ctx context.Context) *traceCtx {
	if ctx == nil {
		return nil
	}
	tc, _ := ctx.Value(traceCtxKey{}).(*traceCtx)
	return tc
}

// statusWriter captures the response code for the access log and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the daemon's HTTP observability: a
// request id, per-route request counters and latency histograms, and one
// structured access-log line per request (warn on 4xx, error on 5xx).
// The route label is the registration pattern, so label cardinality is
// fixed at the route table, never influenced by request paths.
//
// When span tracing is on and the request carries a valid W3C traceparent
// header, the middleware adopts the header's trace ID, opens the root
// request span (closed when the handler returns), and plants a traceCtx in
// the request context for the command path to decompose the lifecycle into
// child spans. The access-log line then carries the same trace ID, which
// is the log↔trace correlation contract.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	lat := s.reg.Histogram("mecd_http_request_seconds", "HTTP request latency by route.",
		stats.LatencyBuckets(), s.labels("route", pattern)...)
	// Register the common-case series eagerly so every route is visible on
	// the first scrape, before it has served anything.
	ok := s.reg.Counter("mecd_http_requests_total", "HTTP requests by route and status code.",
		s.labels("route", pattern, "code", "200")...)
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.reqID.Add(1)
		start := time.Now()
		var tc *traceCtx
		if s.spans.Enabled() {
			if trace, remote, okTP := obs.ParseTraceparent(r.Header.Get("traceparent")); okTP {
				tc = &traceCtx{trace: trace, remote: remote, root: s.spans.StartID()}
				r = r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, tc))
			}
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start)
		lat.Observe(elapsed.Seconds())
		if sw.status == http.StatusOK {
			ok.Inc()
		} else {
			s.reg.Counter("mecd_http_requests_total", "HTTP requests by route and status code.",
				s.labels("route", pattern, "code", strconv.Itoa(sw.status))...).Inc()
		}
		if tc != nil {
			s.recordSpan(obs.Span{
				ID: tc.root, Trace: tc.trace, Stage: obs.StageRequest,
				Start: start, Duration: elapsed.Seconds(),
				Attrs: []obs.Attr{
					obs.String("route", pattern),
					obs.String("clientSpan", tc.remote),
					obs.Int64("status", int64(sw.status)),
				},
			})
		}
		lvl := slog.LevelDebug
		switch {
		case sw.status >= 500:
			lvl = slog.LevelError
		case sw.status >= 400:
			lvl = slog.LevelWarn
		}
		args := []any{
			"reqID", id, "route", pattern, "method", r.Method, "path", r.URL.Path,
			"status", sw.status, "durationMs", float64(elapsed.Microseconds())/1000,
		}
		if tc != nil {
			args = append(args, "trace", tc.trace)
		}
		s.log.Log(r.Context(), lvl, "http request", args...)
	}
}

// handleTrace serves the last-N decision traces, newest first. Query
// parameters: n caps the count (default 16), kind filters by trace kind
// ("admission" or "epoch").
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !s.ring.Enabled() {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false, "traces": []obs.Trace{}})
		return
	}
	n := 16
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad n: " + q})
			return
		}
		n = v
	}
	kind := r.URL.Query().Get("kind")
	switch kind {
	case "", "admission", "epoch", "recovery":
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad kind: " + kind})
		return
	}
	traces := s.ring.Snapshot(n, kind)
	if traces == nil {
		traces = []obs.Trace{}
	}
	// count and capacity expose the clamp: asking for n beyond the ring's
	// retention silently returns fewer traces, so the envelope states how
	// many actually came back and how many the ring could at most hold,
	// while total is the high-water sequence (traces ever added).
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":  true,
		"count":    len(traces),
		"capacity": s.ring.Cap(),
		"total":    s.ring.Total(),
		"traces":   traces,
	})
}

// handleSpans serves the last-N completed lifecycle spans, newest-started
// first. Query parameters: n caps the count (default 64; 0 means every
// retained span), trace keeps only one trace ID, min_dur keeps spans at
// least that many seconds long. The envelope mirrors /v1/debug/trace:
// count is the effective size after clamping and filtering, capacity the
// ring's retention, highWater the last span ID ever started, recorded the
// completed-span total.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if !s.spans.Enabled() {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false, "spans": []obs.Span{}})
		return
	}
	n := 64
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad n: " + q})
			return
		}
		n = v
	}
	minDur := 0.0
	if q := r.URL.Query().Get("min_dur"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || math.IsNaN(v) || v < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad min_dur: " + q})
			return
		}
		minDur = v
	}
	spans := s.spans.Snapshot(n, r.URL.Query().Get("trace"), minDur)
	if spans == nil {
		spans = []obs.Span{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":   true,
		"count":     len(spans),
		"capacity":  s.spans.Cap(),
		"highWater": s.spans.HighWater(),
		"recorded":  s.spans.Recorded(),
		"spans":     spans,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if v != nil {
		_ = json.NewEncoder(w).Encode(v)
	}
}

func writeResult(w http.ResponseWriter, res cmdResult) {
	if res.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(res.retryAfter))
	}
	if res.err != nil {
		writeJSON(w, res.status, map[string]string{"error": res.err.Error()})
		return
	}
	if res.status == http.StatusNoContent {
		w.WriteHeader(res.status)
		return
	}
	writeJSON(w, res.status, res.body)
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var p mec.Provider
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&p); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "decode provider: " + err.Error()})
		return
	}
	start := time.Now()
	res := s.do(r.Context(), &walRecord{Op: opAdmit, Provider: &p},
		func(st *state) cmdResult { return s.admitCmd(st, p) })
	s.mLatency.Observe(time.Since(start).Seconds())
	writeResult(w, res)
}

func (s *Server) handleDepart(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad provider id: " + err.Error()})
		return
	}
	writeResult(w, s.do(r.Context(), &walRecord{Op: opDepart, ID: id},
		func(st *state) cmdResult { return s.departCmd(st, id) }))
}

func (s *Server) handlePlacements(w http.ResponseWriter, _ *http.Request) {
	v := s.view.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"providers":  v.Providers,
		"socialCost": v.SocialCost,
		"epochs":     v.Epochs,
	})
}

func (s *Server) handleMarket(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.view.Load())
}

// failRequest is the body of POST /v1/admin/fail.
type failRequest struct {
	Cloudlet int  `json:"cloudlet"`
	Repair   bool `json:"repair"`
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "decode fail request: " + err.Error()})
		return
	}
	op := opFail
	if req.Repair {
		op = opRepair
	}
	writeResult(w, s.do(r.Context(), &walRecord{Op: op, Cloudlet: req.Cloudlet},
		func(st *state) cmdResult {
			if req.Repair {
				return s.repairCmd(st, req.Cloudlet)
			}
			return s.failCmd(st, req.Cloudlet)
		}))
}

func (s *Server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	writeResult(w, s.do(r.Context(), &walRecord{Op: opEpoch},
		func(st *state) cmdResult { return s.epochCmd(st) }))
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SnapshotPath == "" {
		writeJSON(w, http.StatusConflict, map[string]string{"error": "server: no snapshot path configured"})
		return
	}
	// Snapshots are not mutations and are never WAL-logged; a successful
	// one compacts the log, since its records are now in the snapshot.
	writeResult(w, s.do(r.Context(), nil, func(st *state) cmdResult {
		if err := s.writeSnapshot(st); err != nil {
			return errorf(http.StatusInternalServerError, "server: snapshot: %v", err)
		}
		s.compactWAL()
		return cmdResult{status: http.StatusOK, body: map[string]string{"path": s.cfg.SnapshotPath}}
	}))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	select {
	case <-s.done:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "stopped"})
		return
	default:
	}
	v := s.view.Load()
	body := map[string]any{"status": "ok", "active": v.Active, "epochs": v.Epochs, "build": obs.Build()}
	if v.LastEpochError != "" {
		body["lastEpochError"] = v.LastEpochError
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}
