package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"mecache/internal/dynamic"
	"mecache/internal/fault"
	"mecache/internal/game"
	"mecache/internal/mec"
	"mecache/internal/obs"
)

// state is the daemon's market state. It is owned exclusively by the event
// loop goroutine: every mutation arrives as a command over the channel, so
// no lock ever guards it. Reads go through the published View instead.
type state struct {
	// m is the live market over the active providers; nil while the market
	// is empty (mec.Market requires at least one provider).
	m  *mec.Market
	pl mec.Placement
	// ls mirrors pl's per-cloudlet loads and is delta-updated on every
	// placement change (setPl), so admissions, failovers, and epochs never
	// rebuild loads from the full placement. Nil whenever m is nil.
	ls *game.LoadState
	// ids maps market index -> public provider id; byID is the inverse.
	ids  []int64
	byID map[int64]int
	// waiting/waitingFor track providers parked by PolicyWaitForRepair.
	waiting    []bool
	waitingFor []int
	// failed mirrors which cloudlets are administratively down.
	failed []bool

	// lsn is the write-ahead log sequence number of the last logged
	// command (0 when nothing was ever logged). Snapshots carry it so
	// recovery can skip WAL records the snapshot already contains.
	lsn uint64

	nextID   int64
	epochs   uint64
	accepted uint64
	rejected uint64
	departed uint64

	failovers  uint64
	failbacks  uint64
	outages    uint64
	repairs    uint64
	reconfigs  uint64
	suppressed uint64
	migCost    float64

	// lastEpochErr records the most recent background-epoch failure for the
	// health endpoint; cleared by the next successful epoch.
	lastEpochErr string

	// solve carries the warm-start caches across this market's epochs
	// (reduction fingerprints, cached transport network, rounding
	// components, last LCF result). Loop-owned like everything else here;
	// epoch outcomes are byte-identical with or without it.
	solve dynamic.EpochSolveState
}

// setPl moves provider idx to strategy c, keeping the load state in
// lockstep with the placement. Every placement change funnels through here.
func (st *state) setPl(idx, c int) {
	if st.pl[idx] == c {
		return
	}
	st.ls.Move(idx, st.pl[idx], c)
	st.pl[idx] = c
}

// cmdResult is what a command hands back to its waiting HTTP handler.
type cmdResult struct {
	status int
	body   any
	err    error
	// retryAfter, when positive, becomes a Retry-After header (seconds):
	// the shed path's backoff hint.
	retryAfter int
}

// command pairs a state mutation with the channel its result travels back
// on. reply is buffered (size 1) so the loop never blocks on a handler.
// rec, when non-nil, is written to the WAL before run executes; ctx, when
// non-nil, lets the loop skip commands whose caller already gave up.
//
// claimed arbitrates the race between the loop dequeuing the command and
// the caller's deadline expiring while it is still queued: exactly one
// side wins the CAS. If the caller wins, the loop must skip the command
// entirely — no WAL append, no state mutation — so a deadline-expiry 503
// means "certainly not applied", never "maybe applied behind your back".
// If the loop wins, the caller waits for the real reply instead.
type command struct {
	ctx     context.Context
	rec     *walRecord
	run     func(st *state) cmdResult
	reply   chan cmdResult
	claimed *atomic.Bool
	// tc is the sampled request's trace context (nil for untraced
	// commands): the loop decomposes the command into queue-wait, WAL,
	// apply, and publish child spans under tc.root.
	tc *traceCtx
}

// abandoned reports whether the caller gave up on this command before the
// loop claimed it. The loop calls this exactly once per dequeued command;
// a true return means the command must leave no trace.
func (c *command) loopClaims() bool {
	return c.claimed == nil || c.claimed.CompareAndSwap(false, true)
}

// errorf builds an error result.
func errorf(status int, format string, args ...any) cmdResult {
	return cmdResult{status: status, err: fmt.Errorf(format, args...)}
}

// loop is the single writer. It applies commands in arrival order —
// writing each mutating command to the WAL before applying it — runs the
// re-equilibration epoch on the ticker, publishes a fresh read View after
// every mutation, and writes the final snapshot (compacting the WAL) on
// graceful shutdown. Kill skips the snapshot and compaction, leaving
// recovery to the snapshot + WAL-replay path — a crash, on purpose.
func (s *Server) loop() {
	defer func() {
		s.closeWAL()
		close(s.done)
	}()
	var tick <-chan time.Time
	if s.cfg.EpochInterval > 0 {
		t := time.NewTicker(s.cfg.EpochInterval)
		defer t.Stop()
		tick = t.C
	}
	// pending holds one batch's deferred replies; reused across wake-ups so
	// the steady state allocates nothing. tc rides along so traced commands
	// can attribute the batch's shared publish cost after it happens.
	type reply struct {
		ch  chan cmdResult
		res cmdResult
		tc  *traceCtx
	}
	pending := make([]reply, 0, cap(s.cmds)+1)
	for {
		select {
		case <-s.killing:
			// Simulated crash: answer queued commands, persist nothing.
			for {
				select {
				case c := <-s.cmds:
					c.reply <- errorf(http.StatusServiceUnavailable, "server: killed")
				default:
					return
				}
			}
		case <-s.stopping:
			// Drain commands that raced with shutdown so no handler hangs.
			for {
				select {
				case c := <-s.cmds:
					c.reply <- errorf(http.StatusServiceUnavailable, "server: shutting down")
				default:
					if s.cfg.SnapshotPath != "" {
						if s.stopErr = s.writeSnapshot(&s.st); s.stopErr != nil {
							s.mSnapErrs.Inc()
							s.log.Error("final snapshot failed", "path", s.cfg.SnapshotPath, "err", s.stopErr)
						} else {
							s.compactWAL()
						}
					}
					return
				}
			}
		case c := <-s.cmds:
			// Batched pass: apply the command and then drain the burst that
			// accumulated behind it, publishing the read View once for the
			// whole batch. N queued admissions mutate the same persistent
			// LoadState back to back and pay for one View rebuild (one
			// ProviderCosts/Loads walk) instead of N. Replies are held until
			// after the publish so an acknowledged admission is always
			// visible to the client's next read. The drain is bounded by the
			// queue capacity so stop, kill, and the epoch ticker are never
			// starved by a continuous stream.
			pending = pending[:0]
			pending = append(pending, reply{c.reply, s.execCommand(c), c.tc})
		drain:
			for len(pending) <= cap(s.cmds) {
				select {
				case c2 := <-s.cmds:
					pending = append(pending, reply{c2.reply, s.execCommand(c2), c2.tc})
				default:
					break drain
				}
			}
			pubStart := time.Now()
			s.publish(&s.st)
			pubDur := time.Since(pubStart).Seconds()
			for _, p := range pending {
				if p.tc != nil {
					// The View rebuild is batched, so every traced command in
					// the batch carries the same publish child span: that IS
					// the cost attribution — N commands shared one rebuild.
					s.recordSpan(obs.Span{
						Parent: p.tc.root, Trace: p.tc.trace, Stage: obs.StagePublish,
						Start: pubStart, Duration: pubDur,
					})
				}
				p.ch <- p.res
			}
		case <-tick:
			// Background epochs mutate state like any command, so they are
			// WAL-logged like any command; their position in the log fixes
			// their position in the deterministic replay order.
			//
			// No HTTP request carries a trace into a ticker epoch, so the
			// loop mints one: the trace ID derives from the seed and a local
			// counter (reproducible identity, like mecload's minting), the
			// root span is the whole epoch, and curTrace/curParent let
			// epochCmd attach its solve and snapshot children.
			var (
				epochTrace string
				epochRoot  uint64
				epochStart time.Time
			)
			if s.spans.Enabled() {
				epochTrace = obs.MintTraceID(s.cfg.Seed^0x5ead, s.spanSeq.Add(1))
				epochRoot = s.spans.StartID()
				s.curTrace, s.curParent = epochTrace, epochRoot
				epochStart = time.Now()
			}
			s.inTickerEpoch = true
			if err := s.logCommand(&walRecord{Op: opEpoch}); err != nil {
				s.st.lastEpochErr = err.Error()
				s.mEpochErrs.Inc()
				s.log.Error("background epoch not logged", "err", err)
			} else if res := s.epochCmd(&s.st); res.err != nil {
				// Background epochs have no caller to report to; surface the
				// failure on the health endpoint via the view, the log, and
				// the error counter.
				s.st.lastEpochErr = res.err.Error()
				s.mEpochErrs.Inc()
				s.log.Error("background epoch failed", "epoch", s.st.epochs, "err", res.err)
			}
			s.inTickerEpoch = false
			if epochRoot != 0 {
				s.curTrace, s.curParent = "", 0
				s.recordSpan(obs.Span{
					ID: epochRoot, Trace: epochTrace, Stage: obs.StageEpoch,
					Start: epochStart, Duration: time.Since(epochStart).Seconds(),
					Attrs: []obs.Attr{obs.Int64("epoch", int64(s.st.epochs))},
				})
			}
			s.publish(&s.st)
		}
	}
}

// execCommand applies one dequeued command — claim, deadline check, WAL
// append, run — and returns the reply to send after the batch publishes.
// It never publishes the View itself; the loop does that once per batch.
//
// For a traced command (c.tc non-nil) each phase becomes a child span of
// the request root: queue wait from the enqueue timestamp, the WAL write
// and fsync from the durations the OnAppend/OnSync hooks captured, and the
// command function as the apply span. curTrace/curParent are set around
// c.run so the command function can hang its own children (best-response,
// epoch solve) off the apply span without a signature change — safe
// because only the loop goroutine reads or writes them.
func (s *Server) execCommand(c command) cmdResult {
	if !c.loopClaims() {
		// The caller already gave up (deadline expired while queued) and
		// won the claim: the command must leave no trace — no WAL record,
		// no state mutation — so its 503 means "certainly not applied".
		return errorf(http.StatusServiceUnavailable, "server: abandoned before execution")
	}
	if c.ctx != nil && c.ctx.Err() != nil {
		// The deadline expired but the caller has not noticed yet: it will
		// lose the claim race and wait for this reply. Skipping here keeps
		// the same contract — an expired command is never logged or applied.
		return errorf(http.StatusServiceUnavailable,
			"server: deadline expired before execution (not applied): %v", c.ctx.Err())
	}
	tc := c.tc
	if tc != nil {
		now := time.Now()
		s.recordSpan(obs.Span{
			Parent: tc.root, Trace: tc.trace, Stage: obs.StageQueueWait,
			Start: tc.enq, Duration: now.Sub(tc.enq).Seconds(),
		})
		// Sentinel the hook outputs so only the phases this append actually
		// performed (a "off"-policy append never fsyncs) become spans.
		s.lastAppendSec, s.lastSyncSec = -1, -1
	}
	if err := s.logCommand(c.rec); err != nil {
		// The mutation is not durable, so it must not apply.
		s.log.Error("wal append failed", "op", c.rec.Op, "err", err)
		return errorf(http.StatusServiceUnavailable, "server: write-ahead log: %v", err)
	}
	if tc == nil {
		return c.run(&s.st)
	}
	if walDone := time.Now(); s.lastAppendSec >= 0 || s.lastSyncSec >= 0 {
		// The hooks measured durations, not timestamps; reconstruct the
		// starts by walking back from the append's end (write then fsync,
		// back to back inside wal.Append).
		if s.lastAppendSec >= 0 {
			start := walDone.Add(-time.Duration((s.lastAppendSec + math.Max(s.lastSyncSec, 0)) * float64(time.Second)))
			s.recordSpan(obs.Span{
				Parent: tc.root, Trace: tc.trace, Stage: obs.StageWALAppend,
				Start: start, Duration: s.lastAppendSec,
			})
		}
		if s.lastSyncSec >= 0 {
			start := walDone.Add(-time.Duration(s.lastSyncSec * float64(time.Second)))
			s.recordSpan(obs.Span{
				Parent: tc.root, Trace: tc.trace, Stage: obs.StageWALFsync,
				Start: start, Duration: s.lastSyncSec,
			})
		}
	}
	applyID := s.spans.StartID()
	s.curTrace, s.curParent = tc.trace, applyID
	applyStart := time.Now()
	res := c.run(&s.st)
	s.curTrace, s.curParent = "", 0
	s.recordSpan(obs.Span{
		ID: applyID, Parent: tc.root, Trace: tc.trace, Stage: obs.StageApply,
		Start: applyStart, Duration: time.Since(applyStart).Seconds(),
	})
	return res
}

// do submits a command and waits for its result, the caller's deadline, or
// shutdown. The queue is bounded: when it is full the command is shed
// immediately with 429 + Retry-After rather than blocking the handler —
// under overload the daemon degrades by refusing work it cannot absorb,
// never by queueing without bound.
//
// A 429 means the command was certainly not applied, and so does a 503
// for a deadline expiry: the claim CAS guarantees that when the deadline
// fires while the command is still queued, the loop will skip it without
// logging or applying it. If the loop claimed the command first, the
// caller waits for the real reply instead of reporting expiry.
func (s *Server) do(ctx context.Context, rec *walRecord, run func(st *state) cmdResult) cmdResult {
	if ctx != nil && s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	c := command{ctx: ctx, rec: rec, run: run, reply: make(chan cmdResult, 1), claimed: new(atomic.Bool)}
	if tc := traceCtxFrom(ctx); tc != nil {
		// Stamp the enqueue time here, not in the middleware: queue wait
		// starts when the command can first be dequeued, after decode and
		// validation, so the queue_wait span measures the queue, not the
		// handler's preamble.
		tc.enq = time.Now()
		c.tc = tc
	}
	select {
	case s.cmds <- c:
	case <-s.done:
		return errorf(http.StatusServiceUnavailable, "server: not running")
	default:
		s.mShed.Inc()
		return shedResult(cap(s.cmds))
	}
	var expired <-chan struct{}
	if ctx != nil {
		expired = ctx.Done()
	}
	select {
	case r := <-c.reply:
		return r
	case <-expired:
		if c.claimed.CompareAndSwap(false, true) {
			// We won the claim: the loop has not started this command and,
			// on dequeue, will drop it without a WAL append or mutation.
			return errorf(http.StatusServiceUnavailable,
				"server: deadline expired while queued (not applied): %v", ctx.Err())
		}
		// The loop claimed it first — it is executing right now, so the
		// authoritative reply is imminent. Returning it beats inventing an
		// ambiguous timeout for work that actually happened.
		select {
		case r := <-c.reply:
			return r
		case <-s.done:
			return errorf(http.StatusServiceUnavailable, "server: shut down mid-command")
		}
	case <-s.done:
		// The loop may have answered just before exiting.
		select {
		case r := <-c.reply:
			return r
		default:
			return errorf(http.StatusServiceUnavailable, "server: shut down while request was queued")
		}
	}
}

// admitResponse is the body returned by POST /v1/providers.
type admitResponse struct {
	ID         int64   `json:"id"`
	Placement  int     `json:"placement"`
	Cost       float64 `json:"cost"`
	SocialCost float64 `json:"socialCost"`
	Active     int     `json:"active"`
}

// admitCmd performs one online admission: append the provider to the
// market, then place it with a capacity-aware best response against the
// current congestion, never onto a failed cloudlet.
func (s *Server) admitCmd(st *state, p mec.Provider) cmdResult {
	if s.cfg.MaxActive > 0 && len(st.ids) >= s.cfg.MaxActive {
		st.rejected++
		s.mRejected.Inc()
		return errorf(http.StatusTooManyRequests, "server: %d active providers (cap %d)", len(st.ids), s.cfg.MaxActive)
	}
	var idx int
	if st.m == nil {
		m, err := mec.NewMarket(s.net, []mec.Provider{p})
		if err != nil {
			st.rejected++
			s.mRejected.Inc()
			return errorf(http.StatusBadRequest, "server: %v", err)
		}
		st.m, idx = m, 0
		st.pl = mec.Placement{mec.Remote}
		st.ls = game.NewLoadState(m)
	} else {
		i, err := st.m.AppendProvider(p)
		if err != nil {
			st.rejected++
			s.mRejected.Inc()
			return errorf(http.StatusBadRequest, "server: %v", err)
		}
		idx = i
		st.pl = append(st.pl, mec.Remote)
	}
	// The traced and untraced scans are the same algorithm — tracing only
	// records what the scan already computes — so enabling the ring never
	// changes a placement.
	// During WAL replay the ring stays quiet: recovery re-runs old
	// decisions, and re-tracing them would flood the ring with stale
	// entries (the traced and untraced scans place identically anyway).
	var rec *obs.Recorder
	started := time.Now()
	if s.ring.Enabled() && !s.recovering {
		rec = obs.NewRecorder(0)
	}
	// The equilibrium scan is the admission's hot core; a traced command
	// (curTrace set by execCommand) gets it as a child of the apply span.
	// Untraced admissions pay one string comparison — nothing is allocated,
	// which is what the alloc benchmarks assert.
	spanOn := s.curTrace != ""
	var brStart time.Time
	if spanOn {
		brStart = time.Now()
	}
	st.setPl(idx, dynamic.BestResponseWithLoads(st.ls, st.pl, idx, st.failed, tracer(rec)))
	if spanOn {
		s.recordSpan(obs.Span{
			Parent: s.curParent, Trace: s.curTrace, Stage: obs.StageBestResponse,
			Start: brStart, Duration: time.Since(brStart).Seconds(),
			Attrs: []obs.Attr{obs.Int64("placement", int64(st.pl[idx]))},
		})
	}
	id := st.nextID
	st.nextID++
	st.ids = append(st.ids, id)
	st.byID[id] = idx
	st.waiting = append(st.waiting, false)
	st.waitingFor = append(st.waitingFor, -1)
	st.accepted++
	s.mAccepted.Inc()
	resp := admitResponse{
		ID:         id,
		Placement:  st.pl[idx],
		Cost:       st.m.ProviderCost(st.pl, idx),
		SocialCost: st.m.SocialCost(st.pl),
		Active:     len(st.ids),
	}
	if rec != nil {
		s.ring.Add(obs.Trace{
			Kind:          "admission",
			Start:         started,
			Duration:      time.Since(started).Seconds(),
			Provider:      id,
			Chosen:        resp.Placement,
			Cost:          resp.Cost,
			SocialCost:    resp.SocialCost,
			Events:        rec.Events(),
			EventsDropped: rec.Dropped(),
		})
	}
	return cmdResult{status: http.StatusCreated, body: resp}
}

// tracer converts a possibly-nil *Recorder into the Tracer the algorithms
// accept, avoiding the classic typed-nil-in-interface trap: a nil *Recorder
// stored in an obs.Tracer would compare non-nil at the emission guards.
func tracer(rec *obs.Recorder) obs.Tracer {
	if rec == nil {
		return nil
	}
	return rec
}

// departCmd retires a provider: its cached instance is destroyed and the
// remaining providers shift down one market index.
func (s *Server) departCmd(st *state, id int64) cmdResult {
	idx, ok := st.byID[id]
	if !ok {
		return errorf(http.StatusNotFound, "server: no active provider %d", id)
	}
	if st.pl[idx] != mec.Remote {
		// Unwind the departing tenant's load before indices shift.
		st.setPl(idx, mec.Remote)
	}
	if len(st.ids) == 1 {
		st.m = nil
		st.pl = nil
		st.ls = nil
		st.ids = st.ids[:0]
		st.waiting = st.waiting[:0]
		st.waitingFor = st.waitingFor[:0]
		clear(st.byID)
	} else {
		if err := st.m.RemoveProvider(idx); err != nil {
			return errorf(http.StatusInternalServerError, "server: %v", err)
		}
		st.pl = append(st.pl[:idx], st.pl[idx+1:]...)
		st.ids = append(st.ids[:idx], st.ids[idx+1:]...)
		st.waiting = append(st.waiting[:idx], st.waiting[idx+1:]...)
		st.waitingFor = append(st.waitingFor[:idx], st.waitingFor[idx+1:]...)
		delete(st.byID, id)
		for j := idx; j < len(st.ids); j++ {
			st.byID[st.ids[j]] = j
		}
	}
	st.departed++
	s.mDeparted.Inc()
	return cmdResult{status: http.StatusNoContent}
}

// failCmd marks a cloudlet down and applies the failover policy to every
// provider cached there. Unlike the virtual-time simulator there is no
// detection-delay window: the admin call is the detection.
func (s *Server) failCmd(st *state, cloudlet int) cmdResult {
	if cloudlet < 0 || cloudlet >= len(st.failed) {
		return errorf(http.StatusBadRequest, "server: cloudlet %d outside [0,%d)", cloudlet, len(st.failed))
	}
	if st.failed[cloudlet] {
		return errorf(http.StatusConflict, "server: cloudlet %d already failed", cloudlet)
	}
	st.failed[cloudlet] = true
	st.outages++
	s.mOutages.Inc()
	hit := 0
	for idx := range st.pl {
		if st.pl[idx] != cloudlet {
			continue
		}
		hit++
		st.failovers++
		s.mFailovers.Inc()
		st.setPl(idx, mec.Remote) // the remote original absorbs the traffic
		switch s.cfg.Policy {
		case fault.PolicyRemoteFallback:
			// Stay remote.
		case fault.PolicyReplace:
			st.setPl(idx, dynamic.BestResponseWithLoads(st.ls, st.pl, idx, st.failed, nil))
		case fault.PolicyWaitForRepair:
			st.waiting[idx] = true
			st.waitingFor[idx] = cloudlet
		}
	}
	return cmdResult{status: http.StatusOK, body: map[string]any{
		"cloudlet": cloudlet, "failed": true, "providersAffected": hit,
	}}
}

// repairCmd brings a cloudlet back. Providers waiting for it fail back only
// when the saving over staying remote beats their re-instantiation cost —
// the same hysteresis the dynamic simulator applies.
func (s *Server) repairCmd(st *state, cloudlet int) cmdResult {
	if cloudlet < 0 || cloudlet >= len(st.failed) {
		return errorf(http.StatusBadRequest, "server: cloudlet %d outside [0,%d)", cloudlet, len(st.failed))
	}
	if !st.failed[cloudlet] {
		return errorf(http.StatusConflict, "server: cloudlet %d is not failed", cloudlet)
	}
	st.failed[cloudlet] = false
	st.repairs++
	s.mRepairs.Inc()
	back := 0
	for idx := range st.pl {
		if !st.waiting[idx] || st.waitingFor[idx] != cloudlet {
			continue
		}
		st.waiting[idx] = false
		st.waitingFor[idx] = -1
		if choice := dynamic.BestResponseWithLoads(st.ls, st.pl, idx, st.failed, nil); choice == cloudlet {
			// The waiter sits at Remote, so the load state excludes it and
			// joining makes the cloudlet's load Count+1.
			saving := st.m.RemoteCost(idx) - st.m.CostAt(idx, cloudlet, st.ls.Count(cloudlet)+1)
			if saving > st.m.Providers[idx].InstCost {
				st.setPl(idx, cloudlet)
				st.failbacks++
				s.mFailbacks.Inc()
				back++
			}
		}
	}
	return cmdResult{status: http.StatusOK, body: map[string]any{
		"cloudlet": cloudlet, "failed": false, "providersReturned": back,
	}}
}

// epochCmd is the slow-timescale control loop: one LCF/Appro
// re-equilibration over the active providers, reusing the exact epoch step
// of the dynamic-market simulator. Waiting providers are frozen and failed
// cloudlets masked, as in the simulator.
func (s *Server) epochCmd(st *state) cmdResult {
	st.epochs++
	s.mEpochs.Inc()
	if st.m == nil {
		return cmdResult{status: http.StatusOK, body: map[string]any{"epoch": st.epochs, "active": 0}}
	}
	var rec *obs.Recorder
	started := time.Now()
	if s.ring.Enabled() && !s.recovering {
		rec = obs.NewRecorder(0)
	}
	spanOn := s.curTrace != ""
	var epochStart, solveStart time.Time
	if spanOn {
		epochStart = time.Now()
		solveStart = epochStart
	}
	next, est, err := dynamic.Reequilibrate(st.m, st.pl, dynamic.EpochOptions{
		Xi:             s.cfg.Xi,
		Seed:           s.cfg.Seed + st.epochs,
		MigrationAware: s.cfg.MigrationAware,
		Frozen:         st.waiting,
		Failed:         st.failed,
		Trace:          tracer(rec),
		State:          &st.solve,
		Workers:        s.cfg.EpochWorkers,
	})
	if err != nil {
		return errorf(http.StatusInternalServerError, "server: epoch %d: %v", st.epochs, err)
	}
	if spanOn {
		warm := "miss"
		if est.WarmStart {
			warm = "hit"
		}
		s.recordSpan(obs.Span{
			Parent: s.curParent, Trace: s.curTrace, Stage: obs.StageEpochSolve,
			Start: solveStart, Duration: time.Since(solveStart).Seconds(),
			Attrs: []obs.Attr{
				obs.Int64("rounds", int64(est.Rounds)),
				obs.Int64("reconfigurations", int64(est.Reconfigurations)),
				obs.String("solver", est.Solver),
				obs.String("warm_start", warm),
				obs.Int64("shards", int64(est.Shards)),
			},
		})
	}
	for i := range next {
		st.setPl(i, next[i])
	}
	st.reconfigs += uint64(est.Reconfigurations)
	st.suppressed += uint64(est.MigrationsSuppressed)
	st.migCost += est.MigrationCost
	s.mReconfigs.Add(float64(est.Reconfigurations))
	s.hLCFRounds.Observe(float64(est.Rounds))
	s.hEpochMigr.Observe(float64(est.Reconfigurations))
	if rec != nil {
		s.ring.Add(obs.Trace{
			Kind:             "epoch",
			Start:            started,
			Duration:         time.Since(started).Seconds(),
			Provider:         -1,
			Chosen:           mec.Remote,
			SocialCost:       est.SocialCost,
			Epoch:            st.epochs,
			Rounds:           est.Rounds,
			Reconfigurations: est.Reconfigurations,
			Suppressed:       est.MigrationsSuppressed,
			Events:           rec.Events(),
			EventsDropped:    rec.Dropped(),
		})
	}
	if !s.recovering {
		s.log.Info("epoch complete",
			"epoch", st.epochs, "active", len(st.ids), "rounds", est.Rounds,
			"reconfigurations", est.Reconfigurations, "suppressed", est.MigrationsSuppressed,
			"socialCost", est.SocialCost)
	}
	st.lastEpochErr = ""
	// Replayed epochs never write snapshots: recovery is a read of history,
	// not new history.
	if s.cfg.SnapshotPath != "" && !s.recovering {
		var snapStart time.Time
		if spanOn {
			snapStart = time.Now()
		}
		if err := s.writeSnapshot(st); err != nil {
			s.mSnapErrs.Inc()
			s.log.Error("epoch snapshot failed", "epoch", st.epochs, "path", s.cfg.SnapshotPath, "err", err)
			return errorf(http.StatusInternalServerError, "server: epoch snapshot: %v", err)
		}
		s.compactWAL()
		if spanOn {
			s.recordSpan(obs.Span{
				Parent: s.curParent, Trace: s.curTrace, Stage: obs.StageSnapshot,
				Start: snapStart, Duration: time.Since(snapStart).Seconds(),
			})
		}
	}
	if spanOn && !s.inTickerEpoch {
		// Request-driven epochs get the same whole-epoch span the ticker
		// records for background ones (there, the ticker owns the root), so
		// mecd_span_seconds{stage="epoch"} covers every epoch either way.
		s.recordSpan(obs.Span{
			Parent: s.curParent, Trace: s.curTrace, Stage: obs.StageEpoch,
			Start: epochStart, Duration: time.Since(epochStart).Seconds(),
			Attrs: []obs.Attr{obs.Int64("epoch", int64(st.epochs))},
		})
	}
	return cmdResult{status: http.StatusOK, body: map[string]any{
		"epoch":            st.epochs,
		"active":           len(st.ids),
		"reconfigurations": est.Reconfigurations,
		"suppressed":       est.MigrationsSuppressed,
		"socialCost":       est.SocialCost,
	}}
}
