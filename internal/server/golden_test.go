package server

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenServerLog pins a fixed-seed daemon session: every admission's chosen
// placement plus market snapshots after departures, an outage/repair cycle,
// and an epoch. Byte-identical placements across refactors of the admission
// hot path are the acceptance criterion; regenerate with -update only for
// changes that are meant to alter results.
type goldenServerLog struct {
	Admissions []goldenAdmission `json:"admissions"`
	Phases     []goldenPhase     `json:"phases"`
}

type goldenAdmission struct {
	ID        int64 `json:"id"`
	Placement int   `json:"placement"`
}

type goldenPhase struct {
	Name       string `json:"name"`
	Placements []int  `json:"placements"`
	SocialCost string `json:"socialCost"` // %x formatting: exact bits, readable diff
}

func TestGoldenAdmissions(t *testing.T) {
	cfg := testConfig(21)
	cfg.MigrationAware = true
	_, ts := startServer(t, cfg)
	var v View
	getJSON(t, ts.URL+"/v1/market", &v)

	var log goldenServerLog
	snapshot := func(name string) {
		var view View
		getJSON(t, ts.URL+"/v1/market", &view)
		ph := goldenPhase{Name: name, SocialCost: fmt.Sprintf("%x", view.SocialCost)}
		for _, p := range view.Providers {
			ph.Placements = append(ph.Placements, p.Placement)
		}
		log.Phases = append(log.Phases, ph)
	}

	admit := func(i int) {
		p := drawProvider(cfg, &v, 77, i)
		resp, body := postJSON(t, ts.URL+"/v1/providers", p)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("admission %d: status %d: %s", i, resp.StatusCode, body)
		}
		var ar struct {
			ID        int64 `json:"id"`
			Placement int   `json:"placement"`
		}
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		log.Admissions = append(log.Admissions, goldenAdmission{ID: ar.ID, Placement: ar.Placement})
	}

	for i := 0; i < 30; i++ {
		admit(i)
	}
	snapshot("after-30-admissions")

	for _, id := range []int{3, 7, 11} {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+fmt.Sprintf("/v1/providers/%d", id), nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("delete %d: status %d", id, resp.StatusCode)
		}
	}
	snapshot("after-departures")

	if resp, body := postJSON(t, ts.URL+"/v1/admin/fail", map[string]any{"cloudlet": 0}); resp.StatusCode != http.StatusOK {
		t.Fatalf("fail: status %d: %s", resp.StatusCode, body)
	}
	snapshot("after-fail-0")
	if resp, body := postJSON(t, ts.URL+"/v1/admin/fail", map[string]any{"cloudlet": 0, "repair": true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("repair: status %d: %s", resp.StatusCode, body)
	}
	snapshot("after-repair-0")

	if resp, body := postJSON(t, ts.URL+"/v1/admin/epoch", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch: status %d: %s", resp.StatusCode, body)
	}
	snapshot("after-epoch")

	for i := 30; i < 40; i++ {
		admit(i)
	}
	snapshot("final")

	path := filepath.Join("testdata", "golden_admissions.json")
	if *update {
		data, err := json.MarshalIndent(log, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to generate): %v", err)
	}
	var want goldenServerLog
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(log, want) {
		gotJSON, _ := json.MarshalIndent(log, "", "  ")
		t.Fatalf("golden mismatch:\ngot:\n%s\nwant:\n%s", gotJSON, data)
	}
}
