package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// viewJSON canonicalizes a server's published state for byte-level
// comparison across crash/recovery boundaries.
func viewJSON(t *testing.T, s *Server) []byte {
	t.Helper()
	data, err := json.Marshal(s.View())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// driveMixedWorkload applies a deterministic command sequence touching every
// WAL op: admissions, a failure, more admissions, an epoch, a repair, and a
// departure. It returns nothing; the sequence is a pure function of the
// server's seed, so two servers driven by it converge to identical state.
func driveMixedWorkload(t *testing.T, s *Server, ts *httptest.Server, cfg Config) {
	t.Helper()
	v := s.View()
	var ids []int64
	for i := 0; i < 12; i++ {
		ids = append(ids, admit(t, ts, drawProvider(cfg, v, 7, i)).ID)
	}
	if resp, data := postJSON(t, ts.URL+"/v1/admin/fail", map[string]any{"cloudlet": 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("fail cloudlet: %d: %s", resp.StatusCode, data)
	}
	for i := 12; i < 14; i++ {
		admit(t, ts, drawProvider(cfg, s.View(), 7, i))
	}
	if resp, data := postJSON(t, ts.URL+"/v1/admin/epoch", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch: %d: %s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts.URL+"/v1/admin/fail", map[string]any{"cloudlet": 1, "repair": true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("repair cloudlet: %d: %s", resp.StatusCode, data)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/providers/"+jsonInt(ids[2]), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("depart: %d", resp.StatusCode)
	}
}

func jsonInt(id int64) string {
	data, _ := json.Marshal(id)
	return string(data)
}

// walSegments lists the segment files in a WAL directory, oldest first.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".wal") {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(segs)
	if len(segs) == 0 {
		t.Fatalf("no WAL segments in %s", dir)
	}
	return segs
}

// TestWALRecoveryMatchesNeverCrashedRun is the differential acceptance
// criterion: a daemon killed without a snapshot must recover from the WAL
// alone into state byte-identical both to its own pre-kill view and to a
// reference daemon that ran the same command sequence without crashing.
func TestWALRecoveryMatchesNeverCrashedRun(t *testing.T) {
	cfg := testConfig(5)
	cfg.WALDir = t.TempDir()

	crashed, ts := startServer(t, cfg)
	driveMixedWorkload(t, crashed, ts, cfg)
	want := viewJSON(t, crashed)
	ts.Close()
	crashed.Kill()

	recovered, _ := startServer(t, cfg)
	if got := viewJSON(t, recovered); string(got) != string(want) {
		t.Fatalf("recovered view diverged from pre-kill view:\n%s\nvs\n%s", got, want)
	}

	ref := testConfig(5) // same seed, no WAL: the never-crashed reference
	refSrv, refTS := startServer(t, ref)
	driveMixedWorkload(t, refSrv, refTS, ref)
	if got := viewJSON(t, refSrv); string(got) != string(want) {
		t.Fatalf("reference run diverged from crashed run:\n%s\nvs\n%s", got, want)
	}
}

// TestWALRecoveryTornTail kills a daemon, tears the last WAL frame the way
// a crash mid-write would, and asserts the next boot truncates the tear
// (counting it in mecd_wal_truncations_total) instead of refusing to start.
func TestWALRecoveryTornTail(t *testing.T) {
	cfg := testConfig(6)
	cfg.WALDir = t.TempDir()

	s, ts := startServer(t, cfg)
	v := s.View()
	for i := 0; i < 5; i++ {
		admit(t, ts, drawProvider(cfg, v, 9, i))
	}
	want := viewJSON(t, s)
	ts.Close()
	s.Kill()

	segs := walSegments(t, cfg.WALDir)
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Half a frame header: the length word of a record whose body never
	// reached the disk.
	if _, err := f.Write([]byte{0x2a, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, rts := startServer(t, cfg)
	if got := viewJSON(t, recovered); string(got) != string(want) {
		t.Fatalf("torn-tail recovery diverged:\n%s\nvs\n%s", got, want)
	}
	metrics := fetchMetrics(t, rts.URL)
	if !strings.Contains(metrics, "mecd_wal_truncations_total 1") {
		t.Fatalf("truncation not counted in /metrics:\n%s", grepLines(metrics, "wal"))
	}
}

// TestWALInteriorCorruptionRefusesBoot flips one byte inside a middle
// record. Unlike a torn tail this means acknowledged history is damaged, so
// the daemon must refuse to construct rather than silently skip it.
func TestWALInteriorCorruptionRefusesBoot(t *testing.T) {
	cfg := testConfig(7)
	cfg.WALDir = t.TempDir()

	s, ts := startServer(t, cfg)
	v := s.View()
	for i := 0; i < 6; i++ {
		admit(t, ts, drawProvider(cfg, v, 4, i))
	}
	ts.Close()
	s.Kill()

	segs := walSegments(t, cfg.WALDir)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Walk the frames ([len][crc][payload]) to find the third one (header +
	// two records in) and flip a payload byte there — interior damage, with
	// intact frames after it.
	off := 0
	for frame := 0; frame < 3; frame++ {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 8 + n
	}
	data[off+8+4] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := New(cfg); err == nil {
		t.Fatal("interior corruption booted anyway")
	} else if !strings.Contains(err.Error(), "wal recovery") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestSnapshotLSNSkipPreventsDoubleApply simulates the crash window between
// writing a snapshot and compacting the WAL: the snapshot carries LSN n,
// the log still holds records 1..n, and recovery must skip them all rather
// than admit every provider twice.
func TestSnapshotLSNSkipPreventsDoubleApply(t *testing.T) {
	cfg := testConfig(8)
	cfg.WALDir = t.TempDir()
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "snap.json")

	s, ts := startServer(t, cfg)
	v := s.View()
	for i := 0; i < 10; i++ {
		admit(t, ts, drawProvider(cfg, v, 3, i))
	}
	// Keep the pre-compaction log: these are the records the snapshot is
	// about to absorb.
	backup := map[string][]byte{}
	for _, seg := range walSegments(t, cfg.WALDir) {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		backup[seg] = data
	}
	if resp, data := postJSON(t, ts.URL+"/v1/admin/snapshot", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("admin snapshot: %d: %s", resp.StatusCode, data)
	}
	want := viewJSON(t, s)
	ts.Close()
	s.Kill()

	// Undo the compaction on disk, as if the crash hit before Reset's
	// deletions reached the directory.
	for seg, data := range backup {
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	recovered, _ := startServer(t, cfg)
	got := viewJSON(t, recovered)
	if string(got) != string(want) {
		t.Fatalf("LSN skip failed:\n%s\nvs\n%s", got, want)
	}
	if rv := recovered.View(); rv.Accepted != 10 || rv.Active != 10 {
		t.Fatalf("double apply: accepted %d active %d, want 10/10", rv.Accepted, rv.Active)
	}
}

// blockLoop parks the event loop inside a command until the returned
// release function is called. It waits until the loop is actually inside
// the command, so the caller knows the queue drains nowhere.
func blockLoop(t *testing.T, s *Server) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	entered := make(chan struct{})
	go s.do(context.Background(), nil, func(st *state) cmdResult {
		close(entered)
		<-gate
		return cmdResult{status: http.StatusOK}
	})
	<-entered
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }
}

// TestOverloadShedsWith429 saturates a depth-1 command queue while the loop
// is wedged and asserts POST /v1/providers is refused promptly with 429 +
// Retry-After — the acceptance criterion that a full queue sheds instead of
// hanging the client until its deadline.
func TestOverloadShedsWith429(t *testing.T) {
	cfg := testConfig(9)
	cfg.QueueDepth = 1
	s, ts := startServer(t, cfg)

	release := blockLoop(t, s)
	defer release()
	// Occupy the single queue slot.
	go s.do(context.Background(), nil, func(st *state) cmdResult {
		return cmdResult{status: http.StatusOK}
	})
	waitFor(t, func() bool { return len(s.cmds) == 1 })

	start := time.Now()
	resp, data := postJSON(t, ts.URL+"/v1/providers", drawProvider(cfg, s.View(), 2, 0))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue: status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shed took %v, want immediate", elapsed)
	}

	metrics := fetchMetrics(t, ts.URL)
	for _, metric := range []string{"mecd_cmds_shed_total 1", "mecd_cmd_queue_depth 1"} {
		if !strings.Contains(metrics, metric) {
			t.Errorf("missing %q in /metrics:\n%s", metric, grepLines(metrics, "cmd"))
		}
	}
}

// TestRequestDeadlineReturns503 wedges the loop and asserts a queued
// mutation comes back 503 once its per-request deadline expires, instead of
// waiting for the loop indefinitely.
func TestRequestDeadlineReturns503(t *testing.T) {
	cfg := testConfig(10)
	cfg.RequestTimeout = 100 * time.Millisecond
	s, ts := startServer(t, cfg)

	release := blockLoop(t, s)
	defer release()

	resp, data := postJSON(t, ts.URL+"/v1/providers", drawProvider(cfg, s.View(), 2, 0))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: status %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "deadline") {
		t.Fatalf("503 body does not mention the deadline: %s", data)
	}
}

// TestDoStopRaceAlwaysTerminal races a burst of do calls against Stop:
// every call must return a terminal result (never hang), the final snapshot
// Stop writes must be readable by restore, and no goroutine may leak.
func TestDoStopRaceAlwaysTerminal(t *testing.T) {
	cfg := testConfig(11)
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "snap.json")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()

	before := runtime.NumGoroutine()
	v := s.View()
	const callers = 32
	results := make(chan cmdResult, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := drawProvider(cfg, v, 13, i)
			results <- s.do(context.Background(), &walRecord{Op: opAdmit, Provider: &p}, func(st *state) cmdResult {
				return s.admitCmd(st, p)
			})
		}(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.status == 0 {
			t.Fatal("do returned a zero-status result during shutdown")
		}
	}

	// All caller goroutines must be gone: do never strands a waiter.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before })

	// Whatever prefix of the burst was applied, the final snapshot must
	// reload exactly.
	final := viewJSON(t, s)
	restored, err := New(cfg)
	if err != nil {
		t.Fatalf("final snapshot unreadable: %v", err)
	}
	if got := viewJSON(t, restored); string(got) != string(final) {
		t.Fatalf("restored state diverged from pre-stop view:\n%s\nvs\n%s", got, final)
	}
}

// waitFor polls cond for up to five seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// fetchMetrics returns the Prometheus text exposition from a test server.
func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
