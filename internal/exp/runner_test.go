package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The e2e tests drive real mecd/mecload child processes; TestMain builds
// them once for the whole package.
var testBins struct{ mecd, mecload string }

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "exp-test-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "exp test:", err)
		os.Exit(1)
	}
	testBins.mecd, testBins.mecload, err = BuildBinaries(dir, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exp test:", err)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func testRunner(t *testing.T, stamp string) *Runner {
	t.Helper()
	return &Runner{
		Mecd:         testBins.mecd,
		Mecload:      testBins.mecload,
		Out:          t.TempDir(),
		Stamp:        stamp,
		Parallel:     2,
		ComboTimeout: 2 * time.Minute,
		Logf:         t.Logf,
	}
}

// comboArtifacts is the uniform artifact set every executed combo leaves.
var comboArtifacts = []string{
	"config.json", "summary.json", "metrics.prom", "trace.json", "spans.json", "mecd.log", "mecload.log",
}

func readSummary(t *testing.T, path string) ([]byte, Summary) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return data, s
}

func TestRunnerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon children")
	}
	m := Matrix{
		Policies:   []string{"lcf", "selfish"},
		Sizes:      []int{30},
		Reps:       2,
		Seed:       42,
		Admissions: 12,
	}

	run := func(stamp string) (*Runner, *Index) {
		r := testRunner(t, stamp)
		idx, err := r.Run(m)
		if err != nil {
			t.Fatalf("run %s: %v", stamp, err)
		}
		return r, idx
	}
	r1, idx := run("run-a")
	if idx.OK != 4 || idx.Failed != 0 {
		t.Fatalf("index: %d ok %d failed, want 4/0", idx.OK, idx.Failed)
	}
	root1 := filepath.Join(r1.Out, r1.Stamp)

	// index.json and table.txt exist and the index round-trips.
	var onDisk Index
	data, err := os.ReadFile(filepath.Join(root1, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &onDisk); err != nil {
		t.Fatal(err)
	}
	if len(onDisk.Combos) != 4 || onDisk.Stamp != "run-a" {
		t.Fatalf("index.json: %d combos stamp %q", len(onDisk.Combos), onDisk.Stamp)
	}
	if _, err := os.Stat(filepath.Join(root1, "table.txt")); err != nil {
		t.Fatal(err)
	}

	for _, e := range onDisk.Combos {
		if e.Status != StatusOK {
			t.Errorf("combo %s: %s (%s)", e.Slug, e.Status, e.Error)
		}
		if e.Accepted == 0 {
			t.Errorf("combo %s accepted nothing", e.Slug)
		}
		for _, name := range append(comboArtifacts, "load-wave0.json") {
			if _, err := os.Stat(filepath.Join(root1, e.Dir, name)); err != nil {
				t.Errorf("combo %s: missing artifact %s", e.Slug, name)
			}
		}
		_, s := readSummary(t, filepath.Join(root1, e.Dir, "summary.json"))
		if s.Status != StatusOK || s.Slug != e.Slug {
			t.Errorf("combo %s summary: status %q slug %q", e.Slug, s.Status, s.Slug)
		}
		if len(s.Deterministic.Tenants) != 1 || s.Deterministic.Tenants[0].MarketSHA256 == "" {
			t.Errorf("combo %s summary misses the tenant market digest", e.Slug)
		}
		if s.WallClock.TotalSeconds <= 0 {
			t.Errorf("combo %s summary misses wall-clock totals", e.Slug)
		}
	}

	// A second run of the same matrix reproduces every summary byte for
	// byte once the wall-clock fields are stripped.
	r2, _ := run("run-b")
	root2 := filepath.Join(r2.Out, r2.Stamp)
	for _, e := range onDisk.Combos {
		d1, _ := readSummary(t, filepath.Join(root1, e.Dir, "summary.json"))
		d2, _ := readSummary(t, filepath.Join(root2, e.Dir, "summary.json"))
		c1, err := CanonicalSummary(d1)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := CanonicalSummary(d2)
		if err != nil {
			t.Fatal(err)
		}
		if string(c1) != string(c2) {
			t.Errorf("combo %s: canonical summaries differ across runs:\n%s\nvs\n%s", e.Slug, c1, c2)
		}
	}

	// Serial execution reproduces the parallel run too: determinism does
	// not depend on the worker count.
	r3 := testRunner(t, "run-serial")
	r3.Parallel = 1
	if _, err := r3.Run(m); err != nil {
		t.Fatal(err)
	}
	first := onDisk.Combos[0]
	d1, _ := readSummary(t, filepath.Join(root1, first.Dir, "summary.json"))
	d3, _ := readSummary(t, filepath.Join(r3.Out, r3.Stamp, first.Dir, "summary.json"))
	c1, _ := CanonicalSummary(d1)
	c3, _ := CanonicalSummary(d3)
	if string(c1) != string(c3) {
		t.Error("serial run diverged from the parallel run")
	}
}

// A combo whose daemon dies mid-run is recorded as failed with the uniform
// artifact set, and its siblings complete untouched.
func TestRunnerFailureIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon children")
	}
	m := Matrix{Sizes: []int{30}, Reps: 2, Seed: 42, Admissions: 12}
	victim := "lcf-s30-steady-f0-t1-r1"

	r := testRunner(t, "run-chaos")
	r.afterBoot = func(p Plan, d *daemon) error {
		if p.Slug == victim {
			d.kill()
		}
		return nil
	}
	idx, err := r.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if idx.OK != 1 || idx.Failed != 1 {
		t.Fatalf("index: %d ok %d failed, want 1/1", idx.OK, idx.Failed)
	}
	root := filepath.Join(r.Out, r.Stamp)
	for _, e := range idx.Combos {
		switch e.Slug {
		case victim:
			if e.Status != StatusFailed || e.Error == "" {
				t.Errorf("victim combo: status %q error %q", e.Status, e.Error)
			}
			// Failed combos still archive a config and a failure-shaped
			// summary, so the directory layout stays uniform.
			for _, name := range []string{"config.json", "summary.json", "mecd.log"} {
				if _, err := os.Stat(filepath.Join(root, e.Dir, name)); err != nil {
					t.Errorf("victim combo: missing artifact %s", name)
				}
			}
			_, s := readSummary(t, filepath.Join(root, e.Dir, "summary.json"))
			if s.Status != StatusFailed || s.Error == "" {
				t.Errorf("victim summary: status %q error %q", s.Status, s.Error)
			}
		default:
			if e.Status != StatusOK {
				t.Errorf("sibling combo %s: %s (%s)", e.Slug, e.Status, e.Error)
			}
		}
	}
}

// Assertion mode against a live daemon: boot one combo's worth of daemon
// through the runner and point AssertMetrics at it.
func TestAssertMetricsLive(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon children")
	}
	m := Matrix{Sizes: []int{30}, Seed: 7, Admissions: 10}
	r := testRunner(t, "run-assert")
	checked := false
	r.afterBoot = func(p Plan, d *daemon) error {
		checked = true
		return AssertMetrics(d.url, []string{
			"counter:mecd_admissions_total",
			"gauge:mecd_social_cost",
			"go_goroutines",
		})
	}
	idx, err := r.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("afterBoot hook never ran")
	}
	if idx.Failed != 0 {
		t.Fatalf("assertions against the live daemon failed: %+v", idx.Combos)
	}
}
