package exp

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"mecache/internal/rng"
)

// Matrix is a named-axis scenario grid. Expand turns it into the cross
// product of every axis, in row-major order (policies outermost, reps
// innermost), so combo order — and therefore index.json order — is a pure
// function of the matrix.
type Matrix struct {
	Policies   []string  `json:"policies"`
	Sizes      []int     `json:"sizes"`
	Loads      []string  `json:"loads"`
	FaultRates []float64 `json:"faultRates"`
	Tenants    []int     `json:"tenants"`
	Reps       int       `json:"reps"`

	// Seed is the matrix seed every combo derives its randomness from.
	Seed uint64 `json:"seed"`
	// Admissions is the per-combo admission budget.
	Admissions int `json:"admissions"`
}

// Defaults fills the axes a caller left empty with the single-cell
// defaults, so a Matrix zero value plus one axis is a valid sweep.
func (m *Matrix) Defaults() {
	if len(m.Policies) == 0 {
		m.Policies = []string{"lcf"}
	}
	if len(m.Sizes) == 0 {
		m.Sizes = []int{50}
	}
	if len(m.Loads) == 0 {
		m.Loads = []string{LoadSteady}
	}
	if len(m.FaultRates) == 0 {
		m.FaultRates = []float64{0}
	}
	if len(m.Tenants) == 0 {
		m.Tenants = []int{1}
	}
	if m.Reps <= 0 {
		m.Reps = 1
	}
	if m.Admissions <= 0 {
		m.Admissions = 100
	}
}

// Validate rejects axes the runner cannot execute.
func (m *Matrix) Validate() error {
	for _, p := range m.Policies {
		if _, err := ParsePolicy(p); err != nil {
			return err
		}
	}
	for _, s := range m.Sizes {
		if s < 10 {
			return fmt.Errorf("exp: topology size %d too small (need >= 10)", s)
		}
	}
	for _, l := range m.Loads {
		if _, err := ParseLoad(l); err != nil {
			return err
		}
	}
	for _, f := range m.FaultRates {
		if f < 0 || f >= 1 {
			return fmt.Errorf("exp: fault rate %v outside [0, 1)", f)
		}
	}
	for _, tn := range m.Tenants {
		if tn < 1 {
			return fmt.Errorf("exp: tenant count %d < 1", tn)
		}
	}
	if m.Reps < 1 {
		return fmt.Errorf("exp: reps %d < 1", m.Reps)
	}
	if m.Admissions < 1 {
		return fmt.Errorf("exp: admissions %d < 1", m.Admissions)
	}
	return nil
}

// Combo is one cell of the expanded matrix.
type Combo struct {
	Index     int     `json:"index"`
	Policy    Policy  `json:"policy"`
	Size      int     `json:"size"`
	Load      string  `json:"load"`
	FaultRate float64 `json:"faultRate"`
	Tenants   int     `json:"tenants"`
	Rep       int     `json:"rep"`

	// Seed is the matrix seed; the combo's own streams derive from it and
	// the slug, never from Index, so the same cell draws the same numbers
	// in any matrix that contains it.
	Seed uint64 `json:"seed"`
	// Admissions is this combo's admission budget.
	Admissions int `json:"admissions"`
}

// Expand returns every combo of the matrix in row-major axis order.
func (m *Matrix) Expand() ([]Combo, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var combos []Combo
	for _, pname := range m.Policies {
		p, err := ParsePolicy(pname)
		if err != nil {
			return nil, err
		}
		for _, size := range m.Sizes {
			for _, load := range m.Loads {
				for _, fr := range m.FaultRates {
					for _, tn := range m.Tenants {
						for rep := 0; rep < m.Reps; rep++ {
							combos = append(combos, Combo{
								Index:      len(combos),
								Policy:     p,
								Size:       size,
								Load:       load,
								FaultRate:  fr,
								Tenants:    tn,
								Rep:        rep,
								Seed:       m.Seed,
								Admissions: m.Admissions,
							})
						}
					}
				}
			}
		}
	}
	return combos, nil
}

// Slug is the combo's directory name and identity:
// <policy>-s<size>-<load>-f<rate>-t<tenants>-r<rep>. It omits nothing that
// distinguishes cells, so two combos collide only if they are the same cell.
func (c Combo) Slug() string {
	var b strings.Builder
	b.WriteString(c.Policy.Name)
	b.WriteString("-s")
	b.WriteString(strconv.Itoa(c.Size))
	b.WriteByte('-')
	b.WriteString(c.Load)
	b.WriteString("-f")
	b.WriteString(strconv.FormatFloat(c.FaultRate, 'g', -1, 64))
	b.WriteString("-t")
	b.WriteString(strconv.Itoa(c.Tenants))
	b.WriteString("-r")
	b.WriteString(strconv.Itoa(c.Rep))
	return b.String()
}

// Stream returns the combo's private random source: a substream of the
// matrix seed keyed by the slug hash. Cell-keyed (not index-keyed)
// derivation means shrinking or reordering the matrix never changes the
// numbers a surviving cell draws.
func (c Combo) Stream() *rng.Source {
	h := fnv.New64a()
	h.Write([]byte(c.Slug()))
	return rng.Substream(c.Seed, h.Sum64())
}

// Seeds returns the pre-boot draws of the combo stream — the daemon seed
// and the load seed — in the exact order NewPlan re-derives them. The
// runner needs the daemon seed before the DC count (and therefore the full
// plan) is knowable.
func (c Combo) Seeds() (daemonSeed, loadSeed uint64) {
	src := c.Stream()
	return src.Uint64(), src.Uint64()
}

// Plan is the fully derived execution plan for a combo: every seed and
// choice the runner needs, computed up front so the run itself makes no
// draws. The plan, not the runner, is the determinism boundary.
type Plan struct {
	Combo      Combo  `json:"combo"`
	Slug       string `json:"slug"`
	DaemonSeed uint64 `json:"daemonSeed"`
	LoadSeed   uint64 `json:"loadSeed"`
	// Waves is the admission budget split into serial load phases; a
	// manual epoch runs after each phase except under LoadSteady/LoadChurn
	// (single phase, no epoch).
	Waves []int `json:"waves"`
	// EpochAfterWave records whether a re-equilibration epoch follows each
	// wave (parallel to Waves).
	EpochAfterWave []bool `json:"epochAfterWave"`
	// FailCloudlets are the DC indices failed after the last wave, chosen
	// from the combo stream; empty when FaultRate is 0. The fault phase
	// then drives FaultAdmissions extra admissions through the degraded
	// market.
	FailCloudlets   []int `json:"failCloudlets,omitempty"`
	FaultAdmissions int   `json:"faultAdmissions,omitempty"`
}

// NewPlan derives the combo's plan. numDCs is the daemon's DC count (the
// fault axis fails DCs, which are always valid cloudlet indices).
func NewPlan(c Combo, numDCs int) (Plan, error) {
	if numDCs < 1 {
		return Plan{}, fmt.Errorf("exp: plan for %s: implausible DC count %d", c.Slug(), numDCs)
	}
	src := c.Stream()
	p := Plan{
		Combo:      c,
		Slug:       c.Slug(),
		DaemonSeed: src.Uint64(),
		LoadSeed:   src.Uint64(),
	}
	switch c.Load {
	case LoadWaves:
		// Four near-equal waves, each followed by a manual epoch: the
		// sweep exercises re-equilibration under growing population.
		waves := 4
		if c.Admissions < waves {
			waves = c.Admissions
		}
		base := c.Admissions / waves
		rem := c.Admissions % waves
		for i := 0; i < waves; i++ {
			n := base
			if i < rem {
				n++
			}
			p.Waves = append(p.Waves, n)
			p.EpochAfterWave = append(p.EpochAfterWave, true)
		}
	default: // steady, churn
		p.Waves = []int{c.Admissions}
		p.EpochAfterWave = []bool{false}
	}
	if c.FaultRate > 0 {
		k := int(c.FaultRate*float64(numDCs) + 0.5)
		if k < 1 {
			k = 1
		}
		if k > numDCs {
			k = numDCs
		}
		picks := src.Choose(numDCs, k)
		// Sorted for a canonical config echo; the choice set, not its
		// order, is what the market sees.
		for i := 1; i < len(picks); i++ {
			for j := i; j > 0 && picks[j] < picks[j-1]; j-- {
				picks[j], picks[j-1] = picks[j-1], picks[j]
			}
		}
		p.FailCloudlets = picks
		p.FaultAdmissions = c.Admissions / 4
		if p.FaultAdmissions < 1 {
			p.FaultAdmissions = 1
		}
	}
	return p, nil
}
