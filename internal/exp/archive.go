package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Combo statuses recorded in index.json.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// PhaseCounts is the deterministic outcome of one load phase.
type PhaseCounts struct {
	Name     string `json:"name"`
	N        int    `json:"n"`
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
}

// Deterministic is the reproducible section of a combo summary: re-running
// the same matrix cell with the same seed must reproduce it byte for byte,
// at any -parallel width, on any machine.
type Deterministic struct {
	Accepted uint64        `json:"accepted"`
	Rejected uint64        `json:"rejected"`
	Phases   []PhaseCounts `json:"phases"`
	// Metrics holds the post-run values of the allowlisted deterministic
	// families, summed across tenants (the result label kept as a suffix).
	Metrics map[string]float64 `json:"metrics"`
	Tenants []TenantSummary    `json:"tenants"`
}

// PhaseWallClock is the timing-dependent residue of one load phase.
type PhaseWallClock struct {
	Name           string  `json:"name"`
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	Throughput     float64 `json:"admissionsPerSecond"`
	P50Seconds     float64 `json:"p50Seconds"`
	P95Seconds     float64 `json:"p95Seconds"`
	P99Seconds     float64 `json:"p99Seconds"`
	Retries        uint64  `json:"retries"`
	Shed           uint64  `json:"shed"`
}

// EpochLatency is the wall-clock latency profile of whole-epoch solves,
// interpolated at scrape time from the daemon's
// mecd_span_seconds{stage="epoch"} histogram buckets (summed across
// tenants). Present only when at least one traced epoch ran.
type EpochLatency struct {
	Count       float64 `json:"count"`
	MeanSeconds float64 `json:"meanSeconds"`
	P50Seconds  float64 `json:"p50Seconds"`
	P95Seconds  float64 `json:"p95Seconds"`
	P99Seconds  float64 `json:"p99Seconds"`
}

// WallClock gathers every timing-dependent observation of a combo. It is
// the summary's single explicitly excluded field set: CanonicalSummary
// drops exactly this object, and nothing else, before comparing runs.
type WallClock struct {
	TotalSeconds  float64          `json:"totalSeconds"`
	ScrapeSeconds float64          `json:"scrapeSeconds"`
	Epoch         *EpochLatency    `json:"epoch,omitempty"`
	Phases        []PhaseWallClock `json:"phases,omitempty"`
}

// Summary is the per-combo summary.json document.
type Summary struct {
	Slug          string        `json:"slug"`
	Status        string        `json:"status"`
	Error         string        `json:"error,omitempty"`
	Config        Plan          `json:"config,omitempty"`
	Deterministic Deterministic `json:"deterministic,omitempty"`
	WallClock     WallClock     `json:"wallClock"`
}

// ComboResult is one combo's outcome as the runner hands it to the index.
type ComboResult struct {
	Slug          string        `json:"slug"`
	Combo         Combo         `json:"combo"`
	Status        string        `json:"status"`
	Error         string        `json:"error,omitempty"`
	Deterministic Deterministic `json:"deterministic,omitempty"`
	WallClock     WallClock     `json:"wallClock"`
}

// IndexEntry is one combo's row in index.json.
type IndexEntry struct {
	Slug       string  `json:"slug"`
	Dir        string  `json:"dir"`
	Status     string  `json:"status"`
	Error      string  `json:"error,omitempty"`
	Accepted   uint64  `json:"accepted"`
	Rejected   uint64  `json:"rejected"`
	SocialCost float64 `json:"socialCost"`
}

// Index is the top-level index.json document of one matrix run.
type Index struct {
	Stamp  string       `json:"stamp"`
	Matrix Matrix       `json:"matrix"`
	OK     int          `json:"ok"`
	Failed int          `json:"failed"`
	Combos []IndexEntry `json:"combos"`
}

func buildDeterministic(p Plan, loads []phaseRun, scrape scrapeResult) Deterministic {
	det := Deterministic{Metrics: scrape.metricSums, Tenants: scrape.tenants}
	for _, ph := range loads {
		det.Accepted += ph.out.Accepted
		det.Rejected += ph.out.Rejected
		det.Phases = append(det.Phases, PhaseCounts{
			Name: ph.name, N: ph.n, Accepted: ph.out.Accepted, Rejected: ph.out.Rejected,
		})
	}
	return det
}

func buildWallClock(started time.Time, loads []phaseRun, scrape scrapeResult) WallClock {
	wc := WallClock{
		TotalSeconds:  time.Since(started).Seconds(),
		ScrapeSeconds: scrape.elapsed,
		Epoch:         scrape.epoch,
	}
	for _, ph := range loads {
		wc.Phases = append(wc.Phases, PhaseWallClock{
			Name:           ph.name,
			ElapsedSeconds: ph.out.Elapsed,
			Throughput:     ph.out.Throughput,
			P50Seconds:     ph.out.Latency.P50,
			P95Seconds:     ph.out.Latency.P95,
			P99Seconds:     ph.out.Latency.P99,
			Retries:        ph.out.Retries,
			Shed:           ph.out.Shed,
		})
	}
	return wc
}

func buildIndex(m Matrix, stamp string, results []ComboResult) *Index {
	idx := &Index{Stamp: stamp, Matrix: m}
	for _, res := range results {
		e := IndexEntry{
			Slug:     res.Slug,
			Dir:      res.Slug,
			Status:   res.Status,
			Error:    res.Error,
			Accepted: res.Deterministic.Accepted,
			Rejected: res.Deterministic.Rejected,
		}
		for _, tn := range res.Deterministic.Tenants {
			e.SocialCost += tn.SocialCost
		}
		if res.Status == StatusOK {
			idx.OK++
		} else {
			idx.Failed++
		}
		idx.Combos = append(idx.Combos, e)
	}
	return idx
}

// renderTable renders the aggregate table (table.txt): one aligned row per
// combo with its headline deterministic numbers.
func renderTable(idx *Index) []byte {
	rows := [][]string{{"COMBO", "STATUS", "ACCEPTED", "REJECTED", "SOCIAL-COST"}}
	for _, e := range idx.Combos {
		cost := "-"
		if e.Status == StatusOK {
			cost = fmt.Sprintf("%.4f", e.SocialCost)
		}
		rows = append(rows, []string{
			e.Slug, e.Status, fmt.Sprint(e.Accepted), fmt.Sprint(e.Rejected), cost,
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// writeJSONAtomic marshals v (indented, stable field order) and writes it
// atomically.
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}

// writeFileAtomic writes data via a temp file in the target directory plus
// rename, so partially written artifacts are never observable.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WallClockExcludedFields is the explicit field set CanonicalSummary
// removes before byte comparison: exactly the top-level "wallClock" object
// every timing-dependent observation is confined to.
var WallClockExcludedFields = []string{"wallClock"}

// CanonicalSummary strips the wall-clock field set from a summary.json
// document and re-marshals it canonically (indented, keys sorted), so two
// runs of the same combo compare byte for byte.
func CanonicalSummary(data []byte) ([]byte, error) {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("exp: canonicalize summary: %w", err)
	}
	for _, f := range WallClockExcludedFields {
		delete(doc, f)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
