package exp

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
)

// BuildBinaries compiles cmd/mecd and cmd/mecload from the enclosing
// module into dir and returns their paths. The experiment driver calls it
// when no prebuilt binaries are passed, so `go run ./cmd/mecexp` works on
// a clean checkout; CI passes its race-built binaries instead.
func BuildBinaries(dir string, race bool) (mecd, mecload string, err error) {
	root, err := moduleRoot()
	if err != nil {
		return "", "", err
	}
	mecd = filepath.Join(dir, "mecd")
	mecload = filepath.Join(dir, "mecload")
	for bin, pkg := range map[string]string{mecd: "./cmd/mecd", mecload: "./cmd/mecload"} {
		args := []string{"build"}
		if race {
			args = append(args, "-race")
		}
		args = append(args, "-o", bin, pkg)
		cmd := exec.Command("go", args...)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			return "", "", fmt.Errorf("exp: go build %s: %v\n%s", pkg, err, out)
		}
	}
	return mecd, mecload, nil
}

// moduleRoot locates the enclosing Go module by walking up from the
// working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("exp: no go.mod above the working directory (pass -mecd/-mecload explicitly)")
		}
		dir = parent
	}
}
