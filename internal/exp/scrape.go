package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"mecache/internal/metrics"
)

// deterministicCounters is the explicit allowlist of metric families whose
// post-run values are pure functions of the combo (serial load, fixed
// seeds). Families outside the list — HTTP request counts inflated by
// readiness probes, latency histograms, runtime gauges — are archived raw
// in metrics.prom but never enter the deterministic summary.
var deterministicCounters = []string{
	"mecd_admissions_total",
	"mecd_departures_total",
	"mecd_epochs_total",
	"mecd_outages_total",
	"mecd_failovers_total",
	"mecd_failbacks_total",
	"mecd_reconfigurations_total",
	"mecd_social_cost",
	"mecd_active_providers",
	"mecd_wal_errors_total",
	"mecd_cmds_shed_total",
}

// TenantSummary is the deterministic end-state of one tenant's market.
type TenantSummary struct {
	Tenant          string  `json:"tenant"`
	Active          int     `json:"active"`
	SocialCost      float64 `json:"socialCost"`
	Accepted        uint64  `json:"accepted"`
	Rejected        uint64  `json:"rejected"`
	Departed        uint64  `json:"departed"`
	Epochs          uint64  `json:"epochs"`
	Failovers       uint64  `json:"failovers"`
	FailedCloudlets []int   `json:"failedCloudlets,omitempty"`
	// MarketSHA256 hashes the full /v1/market document — placements
	// included — so two runs agree on every decision or the digests split.
	MarketSHA256 string `json:"marketSHA256"`
}

// scrapeResult is everything pulled off a daemon after its load completed.
type scrapeResult struct {
	metricSums map[string]float64
	tenants    []TenantSummary
	epoch      *EpochLatency
	elapsed    float64
}

// marketView mirrors the deterministic slice of GET /v1/market.
type marketView struct {
	Active          int     `json:"active"`
	SocialCost      float64 `json:"socialCost"`
	Accepted        uint64  `json:"accepted"`
	Rejected        uint64  `json:"rejected"`
	Departed        uint64  `json:"departed"`
	Epochs          uint64  `json:"epochs"`
	Failovers       uint64  `json:"failovers"`
	FailedCloudlets []int   `json:"failedCloudlets"`
}

// scrapeDaemon archives the daemon's observable state: the raw /metrics
// exposition (validated by the strict parser, histogram invariants
// included) to metrics.prom, the last decision traces to trace.json, and
// the per-tenant market documents — hashed, so the deterministic summary
// pins every placement without storing them all.
func scrapeDaemon(url string, p Plan, comboDir string) (scrapeResult, error) {
	var res scrapeResult
	start := time.Now()

	raw, err := fetchRaw(url + "/metrics")
	if err != nil {
		return res, fmt.Errorf("scrape /metrics: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(comboDir, "metrics.prom"), raw); err != nil {
		return res, err
	}
	fams, err := metrics.ParseText(bytes.NewReader(raw))
	if err != nil {
		return res, fmt.Errorf("parse /metrics: %w", err)
	}
	// Every exported histogram must satisfy the scrape contract on the
	// live daemon, not just in renderer unit tests.
	for _, f := range fams {
		if f.Type == "histogram" {
			if _, _, err := metrics.CheckHistogram(f); err != nil {
				return res, fmt.Errorf("histogram invariants: %w", err)
			}
		}
	}
	res.epoch = epochLatencyFromFamilies(fams)
	res.metricSums = map[string]float64{}
	for _, name := range deterministicCounters {
		f, ok := metrics.FindFamily(fams, name)
		if !ok {
			continue
		}
		for _, s := range f.Samples {
			// Sum across tenants; keep the result label split so the
			// accepted/rejected breakdown survives aggregation.
			key := name
			if r := s.Labels["result"]; r != "" {
				key = name + ":" + r
			}
			res.metricSums[key] += s.Value
		}
	}

	traces := map[string]json.RawMessage{}
	for k := 0; k < p.Combo.Tenants; k++ {
		doc, err := fetchRaw(apiBase(url, p.Combo.Tenants, k) + "/debug/trace?n=64")
		if err != nil {
			return res, fmt.Errorf("scrape trace: %w", err)
		}
		traces[tenantID(p.Combo.Tenants, k)] = json.RawMessage(doc)
	}
	if err := writeJSONAtomic(filepath.Join(comboDir, "trace.json"), traces); err != nil {
		return res, err
	}

	// Lifecycle spans, one document per tenant. Span timings are wall clock
	// and span counts vary with retries, so spans.json is archive-only: none
	// of it feeds the deterministic summary, mirroring how metrics.prom
	// carries raw latency histograms the summary never reads.
	spans := map[string]json.RawMessage{}
	for k := 0; k < p.Combo.Tenants; k++ {
		doc, err := fetchRaw(apiBase(url, p.Combo.Tenants, k) + "/debug/spans?n=0")
		if err != nil {
			return res, fmt.Errorf("scrape spans: %w", err)
		}
		spans[tenantID(p.Combo.Tenants, k)] = json.RawMessage(doc)
	}
	if err := writeJSONAtomic(filepath.Join(comboDir, "spans.json"), spans); err != nil {
		return res, err
	}

	for k := 0; k < p.Combo.Tenants; k++ {
		doc, err := fetchRaw(apiBase(url, p.Combo.Tenants, k) + "/market")
		if err != nil {
			return res, fmt.Errorf("scrape market: %w", err)
		}
		var view marketView
		if err := json.Unmarshal(doc, &view); err != nil {
			return res, fmt.Errorf("decode market: %w", err)
		}
		sum := sha256.Sum256(doc)
		res.tenants = append(res.tenants, TenantSummary{
			Tenant:          tenantID(p.Combo.Tenants, k),
			Active:          view.Active,
			SocialCost:      view.SocialCost,
			Accepted:        view.Accepted,
			Rejected:        view.Rejected,
			Departed:        view.Departed,
			Epochs:          view.Epochs,
			Failovers:       view.Failovers,
			FailedCloudlets: view.FailedCloudlets,
			MarketSHA256:    hex.EncodeToString(sum[:]),
		})
	}
	res.elapsed = time.Since(start).Seconds()
	return res, nil
}

// epochLatencyFromFamilies derives the p50/p95/p99 of whole-epoch solves
// from the scraped mecd_span_seconds{stage="epoch"} histogram. Buckets are
// summed per upper bound across tenants — cumulativity survives addition
// because every tenant exports the same bucket layout — and quantiles are
// interpolated Prometheus-style (linear within the covering bucket; a rank
// landing in the +Inf bucket reports the highest finite bound). The result
// is wall clock, so it lives in wallClock.epoch and never touches the
// deterministic summary. Nil when no epoch span was ever recorded.
func epochLatencyFromFamilies(fams []metrics.Family) *EpochLatency {
	f, ok := metrics.FindFamily(fams, "mecd_span_seconds")
	if !ok {
		return nil
	}
	cum := map[float64]float64{}
	var bounds []float64
	var count, sum float64
	for _, s := range f.Samples {
		if s.Labels["stage"] != "epoch" {
			continue
		}
		switch s.Name {
		case "mecd_span_seconds_bucket":
			le, err := strconv.ParseFloat(s.Labels["le"], 64)
			if err != nil {
				continue
			}
			if _, seen := cum[le]; !seen {
				bounds = append(bounds, le)
			}
			cum[le] += s.Value
		case "mecd_span_seconds_count":
			count += s.Value
		case "mecd_span_seconds_sum":
			sum += s.Value
		}
	}
	if count == 0 || len(bounds) == 0 {
		return nil
	}
	sort.Float64s(bounds)
	quantile := func(p float64) float64 {
		rank := p * count
		prevCum, prevBound := 0.0, 0.0
		for _, b := range bounds {
			c := cum[b]
			if c >= rank {
				if math.IsInf(b, 1) {
					return prevBound
				}
				inBucket := c - prevCum
				if inBucket <= 0 {
					return b
				}
				return prevBound + (b-prevBound)*(rank-prevCum)/inBucket
			}
			prevCum, prevBound = c, b
		}
		return prevBound
	}
	return &EpochLatency{
		Count:       count,
		MeanSeconds: sum / count,
		P50Seconds:  quantile(0.50),
		P95Seconds:  quantile(0.95),
		P99Seconds:  quantile(0.99),
	}
}

// tenantID names tenant k the way mecload's round-robin fan-out does;
// single-tenant combos use the daemon's default tenant via the bare API.
func tenantID(tenants, k int) string {
	if tenants <= 1 {
		return "default"
	}
	return fmt.Sprintf("t%d", k)
}

func fetchRaw(url string) ([]byte, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	return io.ReadAll(resp.Body)
}
