package exp

import (
	"strings"
	"testing"

	"mecache/internal/metrics"
)

const assertExposition = `# HELP mecd_admissions_total Admission decisions.
# TYPE mecd_admissions_total counter
mecd_admissions_total{result="accepted",tenant="default"} 30
mecd_admissions_total{result="accepted",tenant="t1"} 12
mecd_admissions_total{result="rejected",tenant="default"} 2
# HELP mecd_social_cost Social cost of the current placement.
# TYPE mecd_social_cost gauge
mecd_social_cost{tenant="default"} 101.5
# HELP mecd_admission_seconds Admission latency.
# TYPE mecd_admission_seconds histogram
mecd_admission_seconds_bucket{le="0.1"} 4
mecd_admission_seconds_bucket{le="+Inf"} 5
mecd_admission_seconds_sum 0.7
mecd_admission_seconds_count 5
`

func parsedAssertFams(t *testing.T) []metrics.Family {
	t.Helper()
	fams, err := metrics.ParseText(strings.NewReader(assertExposition))
	if err != nil {
		t.Fatal(err)
	}
	return fams
}

func TestAssertionsHold(t *testing.T) {
	fams := parsedAssertFams(t)
	hold := []string{
		"mecd_admissions_total",
		"counter:mecd_admissions_total",
		"gauge:mecd_social_cost",
		"histogram:mecd_admission_seconds",
		`mecd_admissions_total{result="accepted"}`,
		`mecd_admissions_total{result="accepted"}==42`, // summed across tenants
		`mecd_admissions_total{result="accepted",tenant="t1"}==12`,
		`mecd_admissions_total{result="rejected"}<=2`,
		"mecd_social_cost>=100",
		"mecd_admission_seconds_count==5",
		`mecd_admission_seconds_bucket{le="+Inf"}==5`,
	}
	for _, expr := range hold {
		if err := CheckAssertions(fams, []string{expr}); err != nil {
			t.Errorf("assertion %q failed: %v", expr, err)
		}
	}
}

func TestAssertionsFail(t *testing.T) {
	fams := parsedAssertFams(t)
	fail := []string{
		"mecd_nope_total",
		"gauge:mecd_admissions_total", // wrong type
		"histogram:mecd_social_cost",
		`mecd_admissions_total{result="shed"}`,
		`mecd_admissions_total{result="accepted"}==30`, // forgets tenant t1
		"mecd_social_cost<=100",
		"mecd_admissions_total==oops",
		"",
	}
	for _, expr := range fail {
		if err := CheckAssertions(fams, []string{expr}); err == nil {
			t.Errorf("assertion %q held, want failure", expr)
		}
	}

	// Every failed expression surfaces in the joined error.
	err := CheckAssertions(fams, []string{"mecd_nope_total", "mecd_social_cost<=100", "mecd_admissions_total"})
	if err == nil {
		t.Fatal("joined assertions held")
	}
	for _, want := range []string{"mecd_nope_total", "mecd_social_cost"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error misses %q: %v", want, err)
		}
	}
}

func TestAssertionHistogramInvariants(t *testing.T) {
	broken := `# TYPE mecd_admission_seconds histogram
mecd_admission_seconds_bucket{le="0.1"} 9
mecd_admission_seconds_bucket{le="+Inf"} 5
mecd_admission_seconds_sum 0.7
mecd_admission_seconds_count 5
`
	fams, err := metrics.ParseText(strings.NewReader(broken))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAssertions(fams, []string{"histogram:mecd_admission_seconds"}); err == nil {
		t.Fatal("histogram assertion accepted decreasing cumulative counts")
	}
}
