// Package exp is the automated experiment-orchestration subsystem: it
// expands a named-axis scenario matrix (policy × topology size × load
// pattern × fault rate × tenants × seed reps) into combos, executes each
// combo against a freshly booted mecd child process, and archives the
// scraped results under results/<stamp>/<combo-slug>/.
//
// The subsystem exists so that every evaluation in this repository — the
// figure sweeps, the roadmap's pricing and online-workload scenarios, the
// CI smokes — is a one-command, re-runnable, machine-readable matrix run
// instead of a hand-maintained shell script.
//
// # Determinism contract
//
// A combo is a pure function of its cell coordinates and the matrix seed:
// its daemon seed, workload substreams, and fault choices derive from
// rng.Substream(matrixSeed, hash(slug)), the daemon child is booted with a
// fixed seed, and load is driven serially (one closed-loop worker), so the
// deterministic section of every summary.json is byte-identical across
// re-runs at any -parallel width. Wall-clock observations (latencies,
// throughput, durations) are confined to the summary's "wallClock" field,
// the one explicitly excluded field set — see CanonicalSummary.
package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Policy is a named daemon configuration an experiment sweeps over: the
// coordinated fraction ξ of the epoch step, migration-aware hysteresis,
// and the failover policy applied on cloudlet failures.
type Policy struct {
	Name           string  `json:"name"`
	Xi             float64 `json:"xi"`
	MigrationAware bool    `json:"migrationAware"`
	Failover       string  `json:"failover"`
}

// builtinPolicies is the policy axis vocabulary. Each entry maps to mecd
// flags; adding a market scenario (a pricing policy, an online caching
// strategy) means adding a preset here — the runner, archive layout, and
// CI never change.
var builtinPolicies = map[string]Policy{
	// The paper's operating point: LCF epochs with ξ = 0.7.
	"lcf": {Name: "lcf", Xi: 0.7, Failover: "remote-fallback"},
	// Fully coordinated epochs (ξ = 1): every provider re-decides.
	"coordinated": {Name: "coordinated", Xi: 1.0, Failover: "remote-fallback"},
	// Selfish dynamics (ξ = 0): no coordinated fraction at epochs.
	"selfish": {Name: "selfish", Xi: 0.0, Failover: "remote-fallback"},
	// LCF with migration-aware hysteresis suppressing marginal moves.
	"lcf-hysteresis": {Name: "lcf-hysteresis", Xi: 0.7, MigrationAware: true, Failover: "remote-fallback"},
	// LCF with the two non-default failover policies, for fault-rate sweeps.
	"lcf-replace": {Name: "lcf-replace", Xi: 0.7, Failover: "re-place"},
	"lcf-wait": {Name: "lcf-wait", Xi: 0.7, Failover: "wait-for-repair"},
}

// PolicyNames returns the known policy names, sorted.
func PolicyNames() []string {
	names := make([]string, 0, len(builtinPolicies))
	for n := range builtinPolicies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParsePolicy resolves a policy name to its preset.
func ParsePolicy(name string) (Policy, error) {
	p, ok := builtinPolicies[name]
	if !ok {
		return Policy{}, fmt.Errorf("exp: unknown policy %q (known: %s)", name, strings.Join(PolicyNames(), ", "))
	}
	return p, nil
}

// Load patterns the matrix can sweep. Each is a deterministic driving
// schedule for the combo's admission budget.
const (
	// LoadSteady submits the whole budget as one serial admission run.
	LoadSteady = "steady"
	// LoadChurn departs every provider right after admitting it, keeping
	// the active set small — the daemon's hot-path regime.
	LoadChurn = "churn"
	// LoadWaves splits the budget into four waves with a manual
	// re-equilibration epoch after each, exercising the LCF epoch step.
	LoadWaves = "waves"
)

// ParseLoad validates a load-pattern name.
func ParseLoad(name string) (string, error) {
	switch name {
	case LoadSteady, LoadChurn, LoadWaves:
		return name, nil
	}
	return "", fmt.Errorf("exp: unknown load pattern %q (known: %s, %s, %s)", name, LoadSteady, LoadChurn, LoadWaves)
}
