package exp

import (
	"math"
	"path/filepath"
	"testing"

	"mecache/internal/metrics"
)

func spanSample(name, stage, le string, v float64) metrics.Sample {
	labels := map[string]string{"stage": stage}
	if le != "" {
		labels["le"] = le
	}
	return metrics.Sample{Name: name, Labels: labels, Value: v}
}

// The epoch percentiles must sum buckets across tenants, ignore other
// stages, interpolate within the covering bucket, and clamp ranks landing
// in +Inf to the highest finite bound.
func TestEpochLatencyFromFamilies(t *testing.T) {
	fams := []metrics.Family{{
		Name: "mecd_span_seconds",
		Type: "histogram",
		Samples: []metrics.Sample{
			// Tenant t0.
			spanSample("mecd_span_seconds_bucket", "epoch", "0.1", 2),
			spanSample("mecd_span_seconds_bucket", "epoch", "0.5", 5),
			spanSample("mecd_span_seconds_bucket", "epoch", "+Inf", 5),
			spanSample("mecd_span_seconds_count", "epoch", "", 5),
			spanSample("mecd_span_seconds_sum", "epoch", "", 1.25),
			// Tenant t1.
			spanSample("mecd_span_seconds_bucket", "epoch", "0.1", 2),
			spanSample("mecd_span_seconds_bucket", "epoch", "0.5", 4),
			spanSample("mecd_span_seconds_bucket", "epoch", "+Inf", 5),
			spanSample("mecd_span_seconds_count", "epoch", "", 5),
			spanSample("mecd_span_seconds_sum", "epoch", "", 1.75),
			// Another stage entirely — must not leak into the epoch profile.
			spanSample("mecd_span_seconds_bucket", "apply", "0.1", 100),
			spanSample("mecd_span_seconds_bucket", "apply", "+Inf", 100),
			spanSample("mecd_span_seconds_count", "apply", "", 100),
			spanSample("mecd_span_seconds_sum", "apply", "", 0.5),
		},
	}}
	el := epochLatencyFromFamilies(fams)
	if el == nil {
		t.Fatal("expected an epoch latency profile")
	}
	if el.Count != 10 {
		t.Fatalf("count = %v, want 10", el.Count)
	}
	if math.Abs(el.MeanSeconds-0.3) > 1e-12 {
		t.Fatalf("mean = %v, want 0.3", el.MeanSeconds)
	}
	// rank 5 lands in the (0.1, 0.5] bucket holding observations 5..9:
	// 0.1 + 0.4*(5-4)/5.
	if math.Abs(el.P50Seconds-0.18) > 1e-12 {
		t.Fatalf("p50 = %v, want 0.18", el.P50Seconds)
	}
	// ranks 9.5 and 9.9 land in +Inf → highest finite bound.
	if el.P95Seconds != 0.5 || el.P99Seconds != 0.5 {
		t.Fatalf("p95/p99 = %v/%v, want 0.5/0.5", el.P95Seconds, el.P99Seconds)
	}
}

// A waves combo drives traced manual epochs, so its summary must carry the
// wall-clock epoch latency profile — and a sharded daemon (-epoch-workers)
// must reproduce the deterministic section of the serial run byte for byte.
func TestWavesComboEpochLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon children")
	}
	m := Matrix{
		Policies:   []string{"lcf"},
		Sizes:      []int{30},
		Loads:      []string{"waves"},
		Reps:       1,
		Seed:       9,
		Admissions: 12,
	}
	run := func(stamp string, epochWorkers int) ([]byte, Summary) {
		r := testRunner(t, stamp)
		r.EpochWorkers = epochWorkers
		idx, err := r.Run(m)
		if err != nil {
			t.Fatalf("run %s: %v", stamp, err)
		}
		if idx.OK != 1 || idx.Failed != 0 {
			t.Fatalf("run %s: %d ok %d failed", stamp, idx.OK, idx.Failed)
		}
		return readSummary(t, filepath.Join(r.Out, r.Stamp, idx.Combos[0].Dir, "summary.json"))
	}
	d1, s := run("waves-serial", 0)
	el := s.WallClock.Epoch
	if el == nil {
		t.Fatal("waves combo summary has no wallClock.epoch profile")
	}
	// Four waves → four traced manual epochs, every one observed.
	if el.Count < 4 {
		t.Fatalf("epoch count = %v, want >= 4", el.Count)
	}
	if !(el.P50Seconds >= 0) || !(el.P99Seconds >= el.P50Seconds) {
		t.Fatalf("implausible percentiles: %+v", el)
	}
	d2, _ := run("waves-sharded", 4)
	c1, err := CanonicalSummary(d1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CanonicalSummary(d2)
	if err != nil {
		t.Fatal(err)
	}
	if string(c1) != string(c2) {
		t.Fatalf("sharded daemon diverged from serial:\n%s\nvs\n%s", c1, c2)
	}
}

func TestEpochLatencyAbsent(t *testing.T) {
	if el := epochLatencyFromFamilies(nil); el != nil {
		t.Fatalf("no families: got %+v", el)
	}
	fams := []metrics.Family{{
		Name: "mecd_span_seconds",
		Type: "histogram",
		Samples: []metrics.Sample{
			spanSample("mecd_span_seconds_bucket", "apply", "+Inf", 3),
			spanSample("mecd_span_seconds_count", "apply", "", 3),
		},
	}}
	if el := epochLatencyFromFamilies(fams); el != nil {
		t.Fatalf("no epoch stage: got %+v", el)
	}
}
