package exp

import (
	"strings"
	"testing"
)

func TestMatrixExpandRowMajor(t *testing.T) {
	m := Matrix{
		Policies: []string{"lcf", "selfish"},
		Sizes:    []int{50},
		Loads:    []string{LoadSteady, LoadWaves},
		Reps:     2,
		Seed:     7,
	}
	m.Defaults()
	combos, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 2*1*2*1*1*2 {
		t.Fatalf("expanded %d combos, want 8", len(combos))
	}
	wantOrder := []string{
		"lcf-s50-steady-f0-t1-r0",
		"lcf-s50-steady-f0-t1-r1",
		"lcf-s50-waves-f0-t1-r0",
		"lcf-s50-waves-f0-t1-r1",
		"selfish-s50-steady-f0-t1-r0",
		"selfish-s50-steady-f0-t1-r1",
		"selfish-s50-waves-f0-t1-r0",
		"selfish-s50-waves-f0-t1-r1",
	}
	for i, c := range combos {
		if c.Index != i {
			t.Errorf("combo %d carries index %d", i, c.Index)
		}
		if c.Slug() != wantOrder[i] {
			t.Errorf("combo %d slug %q, want %q", i, c.Slug(), wantOrder[i])
		}
	}
}

func TestMatrixValidate(t *testing.T) {
	bad := []Matrix{
		{Policies: []string{"nope"}, Sizes: []int{50}, Loads: []string{"steady"}, FaultRates: []float64{0}, Tenants: []int{1}, Reps: 1, Admissions: 1},
		{Policies: []string{"lcf"}, Sizes: []int{5}, Loads: []string{"steady"}, FaultRates: []float64{0}, Tenants: []int{1}, Reps: 1, Admissions: 1},
		{Policies: []string{"lcf"}, Sizes: []int{50}, Loads: []string{"bursty"}, FaultRates: []float64{0}, Tenants: []int{1}, Reps: 1, Admissions: 1},
		{Policies: []string{"lcf"}, Sizes: []int{50}, Loads: []string{"steady"}, FaultRates: []float64{1.5}, Tenants: []int{1}, Reps: 1, Admissions: 1},
		{Policies: []string{"lcf"}, Sizes: []int{50}, Loads: []string{"steady"}, FaultRates: []float64{0}, Tenants: []int{0}, Reps: 1, Admissions: 1},
		{Policies: []string{"lcf"}, Sizes: []int{50}, Loads: []string{"steady"}, FaultRates: []float64{0}, Tenants: []int{1}, Reps: 0, Admissions: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("matrix %d validated, want error", i)
		}
	}
}

// The combo stream is keyed by the cell, not the index: the same cell must
// draw the same numbers in any matrix that contains it.
func TestComboStreamCellKeyed(t *testing.T) {
	small := Matrix{Policies: []string{"selfish"}, Seed: 3}
	small.Defaults()
	big := Matrix{Policies: []string{"lcf", "selfish", "coordinated"}, Loads: []string{LoadChurn, LoadSteady}, Seed: 3}
	big.Defaults()
	smallCombos, _ := small.Expand()
	bigCombos, _ := big.Expand()

	want := smallCombos[0]
	var got *Combo
	for i := range bigCombos {
		if bigCombos[i].Slug() == want.Slug() {
			got = &bigCombos[i]
		}
	}
	if got == nil {
		t.Fatalf("cell %s missing from the bigger matrix", want.Slug())
	}
	wd, wl := want.Seeds()
	gd, gl := got.Seeds()
	if wd != gd || wl != gl {
		t.Fatalf("same cell drew different seeds across matrices: (%d,%d) vs (%d,%d)", wd, wl, gd, gl)
	}

	other := Combo{Policy: want.Policy, Size: want.Size, Load: want.Load, Tenants: 1, Seed: 4, Admissions: want.Admissions}
	od, _ := other.Seeds()
	if od == wd {
		t.Fatal("different matrix seeds drew the same daemon seed")
	}
}

// Seeds must pre-draw exactly what NewPlan re-derives, in the same order.
func TestSeedsMatchPlan(t *testing.T) {
	m := Matrix{Policies: []string{"lcf"}, Loads: []string{LoadWaves}, FaultRates: []float64{0.3}, Seed: 11}
	m.Defaults()
	combos, _ := m.Expand()
	c := combos[0]
	d, l := c.Seeds()
	p, err := NewPlan(c, 12)
	if err != nil {
		t.Fatal(err)
	}
	if p.DaemonSeed != d || p.LoadSeed != l {
		t.Fatalf("Seeds()=(%d,%d) but plan derived (%d,%d)", d, l, p.DaemonSeed, p.LoadSeed)
	}
}

func TestNewPlanShape(t *testing.T) {
	m := Matrix{Loads: []string{LoadWaves}, FaultRates: []float64{0.25}, Seed: 5, Admissions: 100}
	m.Defaults()
	combos, _ := m.Expand()
	p, err := NewPlan(combos[0], 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Waves) != 4 {
		t.Fatalf("waves = %v, want 4 phases", p.Waves)
	}
	total := 0
	for i, n := range p.Waves {
		total += n
		if !p.EpochAfterWave[i] {
			t.Errorf("wave %d has no epoch under the waves load", i)
		}
	}
	if total != 100 {
		t.Fatalf("waves sum to %d, want the full budget 100", total)
	}
	if len(p.FailCloudlets) != 2 { // round(0.25 * 8)
		t.Fatalf("fail picks %v, want 2 of 8 DCs", p.FailCloudlets)
	}
	for i, cl := range p.FailCloudlets {
		if cl < 0 || cl >= 8 {
			t.Errorf("fail pick %d out of DC range", cl)
		}
		if i > 0 && p.FailCloudlets[i] <= p.FailCloudlets[i-1] {
			t.Errorf("fail picks not sorted unique: %v", p.FailCloudlets)
		}
	}
	if p.FaultAdmissions != 25 {
		t.Fatalf("fault admissions %d, want a quarter of the budget", p.FaultAdmissions)
	}

	// Same combo, same DC count: the plan is a pure function.
	p2, _ := NewPlan(combos[0], 8)
	if p.DaemonSeed != p2.DaemonSeed || p.LoadSeed != p2.LoadSeed {
		t.Fatal("plan seeds not reproducible")
	}
	for i := range p.FailCloudlets {
		if p.FailCloudlets[i] != p2.FailCloudlets[i] {
			t.Fatal("fault picks not reproducible")
		}
	}

	steady := combos[0]
	steady.Load = LoadSteady
	steady.FaultRate = 0
	ps, _ := NewPlan(steady, 8)
	if len(ps.Waves) != 1 || ps.Waves[0] != 100 || ps.EpochAfterWave[0] {
		t.Fatalf("steady plan %v/%v, want one epoch-free wave", ps.Waves, ps.EpochAfterWave)
	}
	if len(ps.FailCloudlets) != 0 {
		t.Fatal("fault-free combo planned cloudlet failures")
	}
}

func TestPolicyAxis(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("builtin policy %q does not parse: %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("policy %q parsed as %q", name, p.Name)
		}
	}
	if _, err := ParsePolicy("warmest-cache"); err == nil {
		t.Fatal("unknown policy parsed")
	}
	if _, err := ParseLoad("bursty"); err == nil {
		t.Fatal("unknown load parsed")
	}
}

func TestCanonicalSummary(t *testing.T) {
	a := []byte(`{"slug":"x","status":"ok","deterministic":{"accepted":3},"wallClock":{"totalSeconds":1.23}}`)
	b := []byte(`{"wallClock":{"totalSeconds":9.87,"phases":[{"name":"wave0"}]},"deterministic":{"accepted":3},"status":"ok","slug":"x"}`)
	ca, err := CanonicalSummary(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CanonicalSummary(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) != string(cb) {
		t.Fatalf("canonical forms differ:\n%s\nvs\n%s", ca, cb)
	}
	if strings.Contains(string(ca), "wallClock") {
		t.Fatal("canonical summary still carries the wall-clock fields")
	}
	if !strings.Contains(string(ca), `"accepted": 3`) {
		t.Fatal("canonical summary lost deterministic content")
	}
}
