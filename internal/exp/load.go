package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"mecache/internal/obs"
)

// loadOutput mirrors cmd/mecload's JSON summary document.
type loadOutput struct {
	Accepted   uint64  `json:"accepted"`
	Rejected   uint64  `json:"rejected"`
	Retries    uint64  `json:"retries"`
	Shed       uint64  `json:"shed"`
	Errors     uint64  `json:"errors"`
	Seed       uint64  `json:"seed"`
	StreamBase uint64  `json:"streamBase"`
	Elapsed    float64 `json:"elapsedSeconds"`
	Throughput float64 `json:"admissionsPerSecond"`
	Latency    struct {
		Count uint64  `json:"count"`
		Mean  float64 `json:"meanSeconds"`
		P50   float64 `json:"p50Seconds"`
		P95   float64 `json:"p95Seconds"`
		P99   float64 `json:"p99Seconds"`
	} `json:"latency"`
}

// epochTraceSalt XORs into the hi word of manual-epoch trace IDs so they
// can never collide with mecload's admission trace IDs, which are minted
// from the unsalted load seed.
const epochTraceSalt uint64 = 0x45504f4348 // "EPOCH"

// phaseRun is one executed load phase: its name ("wave0", "fault"), the
// admission budget, and the parsed mecload summary.
type phaseRun struct {
	name string
	n    int
	out  loadOutput
}

// drive executes the plan's load schedule against a booted daemon: each
// wave is one serial mecload child (its summary collected via -out, its
// logs appended to mecload.log), followed by a manual re-equilibration
// epoch where the plan says so; with a fault phase planned, the chosen
// cloudlets are failed on every tenant and the follow-up budget is driven
// through the degraded market on a disjoint substream range.
func (r *Runner) drive(p Plan, d *daemon, comboDir string, deadline time.Time) ([]phaseRun, error) {
	logFile, err := os.OpenFile(filepath.Join(comboDir, "mecload.log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	defer logFile.Close()

	var phases []phaseRun
	offset := uint64(0)
	epochPosts := uint64(0)
	for i, n := range p.Waves {
		name := fmt.Sprintf("wave%d", i)
		out, err := r.runLoad(p, d, comboDir, logFile, name, n, offset, deadline)
		if err != nil {
			return nil, err
		}
		phases = append(phases, phaseRun{name: name, n: n, out: out})
		offset += uint64(n)
		if p.EpochAfterWave[i] {
			for k := 0; k < p.Combo.Tenants; k++ {
				// Each manual epoch carries a traceparent so the daemon
				// records a whole-epoch span (the source of the wallClock
				// epoch percentiles). Safe for determinism: the trace ID is
				// a pure function of (LoadSeed, post index) — the seed's hi
				// word is salted so IDs stay disjoint from mecload's
				// admission traces — and tracing never changes a placement.
				epochPosts++
				tp := obs.FormatTraceparent(
					obs.MintTraceID(p.LoadSeed^epochTraceSalt, epochPosts), epochPosts)
				if err := postJSONTraced(apiBase(d.url, p.Combo.Tenants, k)+"/admin/epoch", struct{}{}, tp); err != nil {
					return nil, fmt.Errorf("epoch after %s: %w", name, err)
				}
			}
		}
	}

	if len(p.FailCloudlets) > 0 {
		for k := 0; k < p.Combo.Tenants; k++ {
			for _, cl := range p.FailCloudlets {
				if err := postJSON(apiBase(d.url, p.Combo.Tenants, k)+"/admin/fail",
					map[string]int{"cloudlet": cl}); err != nil {
					return nil, fmt.Errorf("fail cloudlet %d: %w", cl, err)
				}
			}
		}
		out, err := r.runLoad(p, d, comboDir, logFile, "fault", p.FaultAdmissions, offset, deadline)
		if err != nil {
			return nil, err
		}
		phases = append(phases, phaseRun{name: "fault", n: p.FaultAdmissions, out: out})
	}
	return phases, nil
}

// runLoad executes one mecload child for n admissions at the given
// substream offset and returns its parsed summary. The child writes its
// summary with -out (atomic temp+rename), so stdout never needs parsing;
// a child whose summary reports hard errors fails the phase, keeping the
// deterministic section of the combo summary trustworthy.
func (r *Runner) runLoad(p Plan, d *daemon, comboDir string, logFile *os.File, name string, n int, offset uint64, deadline time.Time) (loadOutput, error) {
	var out loadOutput
	outPath := filepath.Join(comboDir, "load-"+name+".json")
	args := []string{
		"-url", d.url,
		"-n", strconv.Itoa(n),
		"-c", strconv.Itoa(r.loadWorkers()),
		"-seed", strconv.FormatUint(p.LoadSeed, 10),
		"-stream-base", strconv.FormatUint(offset, 10),
		// Every 8th admission carries a traceparent, so each combo archive
		// gets real lifecycle spans. Safe for determinism: trace IDs are pure
		// functions of (seed, substream index), tracing never changes a
		// placement, and span timings are wall clock — which the summary
		// canonicalization already excludes.
		"-trace-sample", "8",
		"-out", outPath,
		"-log-format", "json",
	}
	if p.Combo.Load == LoadChurn {
		args = append(args, "-churn")
	}
	if p.Combo.Tenants > 1 {
		args = append(args, "-tenants", strconv.Itoa(p.Combo.Tenants))
	}
	cmd := exec.Command(r.Mecload, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		return out, fmt.Errorf("start mecload %s: %w", name, err)
	}
	waitc := make(chan error, 1)
	go func() { waitc <- cmd.Wait() }()
	select {
	case err := <-waitc:
		if err != nil {
			return out, fmt.Errorf("mecload %s: %w (see mecload.log)", name, err)
		}
	case <-time.After(time.Until(deadline)):
		cmd.Process.Kill()
		<-waitc
		return out, fmt.Errorf("mecload %s exceeded the combo deadline", name)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		return out, fmt.Errorf("mecload %s summary: %w", name, err)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return out, fmt.Errorf("mecload %s summary: %w", name, err)
	}
	if out.Errors > 0 {
		return out, fmt.Errorf("mecload %s reported %d hard errors", name, out.Errors)
	}
	return out, nil
}
