package exp

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"mecache/internal/metrics"
)

// Metric assertions are the structured replacement for CI's
// `curl /metrics | grep` smoke checks: the exposition is parsed with the
// strict text-format parser, then each expression is evaluated against the
// structured samples. Supported forms:
//
//	name                      the family exists with at least one sample
//	counter:name              the family exists with the given type
//	gauge:name                (counter, gauge, or histogram; histogram
//	histogram:name            additionally checks the scrape invariants)
//	name{k="v",...}           a sample carrying the label subset exists
//	name{k="v"}==N            the SUM of matching samples compares to N
//	name{k="v"}>=N            (==, >=, <=); name may be a family name or a
//	name{k="v"}<=N            histogram's _bucket/_sum/_count series
//
// Matching is label-subset, so an assertion written against
// result="accepted" keeps holding when new labels (a tenant, a shard) are
// added to the series.

// CheckAssertions evaluates every expression against parsed families and
// returns the join of all failures, one error per failed expression.
func CheckAssertions(fams []metrics.Family, exprs []string) error {
	var errs []error
	for _, expr := range exprs {
		if err := checkAssertion(fams, expr); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", expr, err))
		}
	}
	return errors.Join(errs...)
}

// AssertMetrics scrapes url's /metrics and evaluates the expressions.
func AssertMetrics(url string, exprs []string) error {
	raw, err := fetchRaw(strings.TrimSuffix(url, "/") + "/metrics")
	if err != nil {
		return err
	}
	fams, err := metrics.ParseText(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	return CheckAssertions(fams, exprs)
}

func checkAssertion(fams []metrics.Family, expr string) error {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return fmt.Errorf("empty assertion")
	}

	// Typed-family form: counter:/gauge:/histogram: prefix.
	for _, typ := range []string{"counter", "gauge", "histogram"} {
		if rest, ok := strings.CutPrefix(expr, typ+":"); ok {
			f, found := metrics.FindFamily(fams, rest)
			if !found {
				return fmt.Errorf("family %q not exposed", rest)
			}
			if f.Type != typ {
				return fmt.Errorf("family %q has type %s, want %s", rest, f.Type, typ)
			}
			if typ == "histogram" {
				if _, _, err := metrics.CheckHistogram(f); err != nil {
					return err
				}
			}
			return nil
		}
	}

	// Comparison suffix, if any. == before the single-char forms.
	sel, op, want := expr, "", 0.0
	for _, cand := range []string{"==", ">=", "<="} {
		if i := strings.LastIndex(expr, cand); i >= 0 {
			v, err := strconv.ParseFloat(strings.TrimSpace(expr[i+len(cand):]), 64)
			if err != nil {
				return fmt.Errorf("bad comparison value: %v", err)
			}
			sel, op, want = strings.TrimSpace(expr[:i]), cand, v
			break
		}
	}

	name, labels, err := parseSelector(sel)
	if err != nil {
		return err
	}
	sum, matched := 0.0, 0
	for _, f := range fams {
		for _, s := range f.Samples {
			if s.Name != name || !labelsMatch(s.Labels, labels) {
				continue
			}
			matched++
			sum += s.Value
		}
	}
	if matched == 0 {
		// A bare family name also matches a family that exists but has
		// no samples of its own name (pure histogram families expose only
		// suffixed series).
		if op == "" && len(labels) == 0 {
			if _, ok := metrics.FindFamily(fams, name); ok {
				return nil
			}
		}
		return fmt.Errorf("no sample matches %q", sel)
	}
	switch op {
	case "":
		return nil
	case "==":
		if sum != want {
			return fmt.Errorf("sum %v != %v (%d samples)", sum, want, matched)
		}
	case ">=":
		if sum < want {
			return fmt.Errorf("sum %v < %v (%d samples)", sum, want, matched)
		}
	case "<=":
		if sum > want {
			return fmt.Errorf("sum %v > %v (%d samples)", sum, want, matched)
		}
	}
	return nil
}

// parseSelector splits `name{k="v",...}` into its name and label pairs.
// Label values are plain quoted strings (no escape processing — assertion
// literals live in CI scripts, not arbitrary data).
func parseSelector(sel string) (string, map[string]string, error) {
	brace := strings.IndexByte(sel, '{')
	if brace < 0 {
		return sel, nil, nil
	}
	if !strings.HasSuffix(sel, "}") {
		return "", nil, fmt.Errorf("unterminated label block in %q", sel)
	}
	name := sel[:brace]
	labels := map[string]string{}
	body := sel[brace+1 : len(sel)-1]
	if strings.TrimSpace(body) == "" {
		return name, labels, nil
	}
	for _, pair := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return "", nil, fmt.Errorf("label without = in %q", pair)
		}
		v = strings.TrimSpace(v)
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return "", nil, fmt.Errorf("label value not quoted in %q", pair)
		}
		labels[strings.TrimSpace(k)] = v[1 : len(v)-1]
	}
	return name, labels, nil
}

func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}
