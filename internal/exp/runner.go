package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"mecache/internal/parallel"
)

// Runner executes an expanded matrix: one mecd child process per combo,
// driven by mecload child processes, scraped over HTTP, archived under
// Out/Stamp/<slug>/. Combos run independently — a combo whose daemon dies
// is recorded as failed in the index and its siblings are unaffected.
type Runner struct {
	// Mecd and Mecload are paths to the built binaries. BuildBinaries
	// produces them from the module source when the caller has none.
	Mecd    string
	Mecload string
	// Out is the results root; the run writes Out/Stamp/.
	Out string
	// Stamp names this run's directory (a timestamp in the CLI; fixed
	// strings in tests and re-runs).
	Stamp string
	// Parallel is the worker count for combo execution (internal/parallel
	// semantics: <1 = NumCPU, 1 = serial). Any width yields byte-identical
	// deterministic results.
	Parallel int
	// LoadWorkers is the mecload concurrency per combo. The default 1
	// (serial closed loop) is what makes final placements and summary
	// counts bit-reproducible; raise it only to trade determinism of
	// placements for speed.
	LoadWorkers int
	// EpochWorkers is the -epoch-workers width passed to every booted
	// daemon (<=1 = serial). Epoch results are bit-identical at every
	// width, so this knob trades cores for epoch latency without touching
	// the deterministic summary.
	EpochWorkers int
	// ComboTimeout bounds one combo end to end (default 5m).
	ComboTimeout time.Duration
	// Logf, when set, receives one progress line per combo.
	Logf func(format string, args ...any)

	// afterBoot is a test hook that runs right after a combo's daemon
	// becomes ready — tests use it to kill the child and prove failure
	// isolation. Never set in production paths.
	afterBoot func(p Plan, d *daemon) error
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

func (r *Runner) comboTimeout() time.Duration {
	if r.ComboTimeout > 0 {
		return r.ComboTimeout
	}
	return 5 * time.Minute
}

func (r *Runner) loadWorkers() int {
	if r.LoadWorkers > 0 {
		return r.LoadWorkers
	}
	return 1
}

// Run expands and executes the matrix, writes every per-combo artifact
// plus index.json and table.txt, and returns the index. The error is
// non-nil only for harness-level failures (bad matrix, unwritable results
// root); per-combo failures are data, not errors.
func (r *Runner) Run(m Matrix) (*Index, error) {
	m.Defaults()
	combos, err := m.Expand()
	if err != nil {
		return nil, err
	}
	if r.Stamp == "" {
		return nil, fmt.Errorf("exp: Runner.Stamp must be set")
	}
	if r.Mecd == "" || r.Mecload == "" {
		return nil, fmt.Errorf("exp: Runner needs mecd and mecload binary paths (see BuildBinaries)")
	}
	root := filepath.Join(r.Out, r.Stamp)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("exp: create results root: %w", err)
	}

	results := make([]ComboResult, len(combos))
	perr := parallel.Run(r.Parallel, len(combos), func(i int) error {
		results[i] = r.runCombo(root, combos[i])
		st := results[i].Status
		r.logf("combo %d/%d %s: %s", i+1, len(combos), combos[i].Slug(), st)
		return nil
	})
	if perr != nil {
		return nil, perr
	}

	idx := buildIndex(m, r.Stamp, results)
	if err := writeJSONAtomic(filepath.Join(root, "index.json"), idx); err != nil {
		return nil, err
	}
	if err := writeFileAtomic(filepath.Join(root, "table.txt"), renderTable(idx)); err != nil {
		return nil, err
	}
	return idx, nil
}

// daemon is one booted mecd child.
type daemon struct {
	cmd     *exec.Cmd
	url     string
	logFile *os.File
	waitc   chan error
}

// bootDaemon starts a mecd child for the plan with fresh snapshot/WAL
// directories under scratch, its log in comboDir/mecd.log, and waits for
// the readiness contract (-port-file appears only once /healthz serves
// 200).
func (r *Runner) bootDaemon(p Plan, scratch, comboDir string, deadline time.Time) (*daemon, error) {
	portFile := filepath.Join(scratch, "port")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-port-file", portFile,
		"-size", strconv.Itoa(p.Combo.Size),
		"-seed", strconv.FormatUint(p.DaemonSeed, 10),
		"-xi", strconv.FormatFloat(p.Combo.Policy.Xi, 'g', -1, 64),
		"-policy", p.Combo.Policy.Failover,
		"-snapshot", filepath.Join(scratch, "snap", "market.json"),
		"-wal-dir", filepath.Join(scratch, "wal"),
		"-log-format", "json",
	}
	if p.Combo.Policy.MigrationAware {
		args = append(args, "-migration-aware")
	}
	if r.EpochWorkers > 1 {
		args = append(args, "-epoch-workers", strconv.Itoa(r.EpochWorkers))
	}
	if p.Combo.Tenants > 1 {
		// Multi-tenant combos hydrate lazily: tenant t<k> exists the
		// moment mecload first addresses it.
		args = append(args, "-preload-tenants", "none")
	}
	logFile, err := os.Create(filepath.Join(comboDir, "mecd.log"))
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(r.Mecd, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return nil, fmt.Errorf("start mecd: %w", err)
	}
	d := &daemon{cmd: cmd, logFile: logFile, waitc: make(chan error, 1)}
	go func() { d.waitc <- cmd.Wait() }()

	for {
		if data, err := os.ReadFile(portFile); err == nil && len(data) > 0 {
			d.url = "http://" + string(data)
			return d, nil
		}
		select {
		case err := <-d.waitc:
			d.waitc <- err
			d.logFile.Close()
			return d, fmt.Errorf("mecd exited before serving: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			d.kill()
			return d, fmt.Errorf("mecd not ready before combo deadline")
		}
	}
}

// stop shuts the daemon down gracefully and requires a clean exit. The
// exit marker is put back on waitc so a later alive() check still sees the
// child as exited.
func (d *daemon) stop(timeout time.Duration) error {
	defer d.logFile.Close()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal mecd: %w", err)
	}
	select {
	case err := <-d.waitc:
		d.waitc <- err
		if err != nil {
			return fmt.Errorf("mecd exit: %w", err)
		}
		return nil
	case <-time.After(timeout):
		d.cmd.Process.Kill()
		err := <-d.waitc
		d.waitc <- err
		return fmt.Errorf("mecd did not exit within %v of SIGTERM", timeout)
	}
}

// kill tears the daemon down abruptly (error paths only).
func (d *daemon) kill() {
	d.cmd.Process.Kill()
	<-d.waitc
	d.waitc <- nil
	d.logFile.Close()
}

// alive reports whether the child has not exited yet.
func (d *daemon) alive() bool {
	select {
	case err := <-d.waitc:
		d.waitc <- err
		return false
	default:
		return true
	}
}

// runCombo executes one combo end to end and never returns a Go error:
// every failure is recorded in the result so sibling combos keep running.
func (r *Runner) runCombo(root string, c Combo) ComboResult {
	res := ComboResult{Slug: c.Slug(), Combo: c, Status: StatusFailed}
	started := time.Now()
	deadline := started.Add(r.comboTimeout())
	comboDir := filepath.Join(root, res.Slug)
	if err := os.MkdirAll(comboDir, 0o755); err != nil {
		res.Error = fmt.Sprintf("create combo dir: %v", err)
		return res
	}
	fail := func(format string, args ...any) ComboResult {
		res.Error = fmt.Sprintf(format, args...)
		res.WallClock.TotalSeconds = time.Since(started).Seconds()
		// Archive what exists even for failed combos: config.json plus a
		// failure-shaped summary.json, so the directory set is uniform.
		writeJSONAtomic(filepath.Join(comboDir, "config.json"), res.Combo)
		writeJSONAtomic(filepath.Join(comboDir, "summary.json"), Summary{
			Slug: res.Slug, Status: res.Status, Error: res.Error, WallClock: res.WallClock,
		})
		return res
	}

	scratch, err := os.MkdirTemp("", "mecexp-")
	if err != nil {
		return fail("create scratch dir: %v", err)
	}
	defer os.RemoveAll(scratch)

	// Seeds derive before boot; the fault picks need the DC count, so the
	// full plan derives right after the market facts are known.
	daemonSeed, _ := c.Seeds()
	d, err := r.bootDaemon(Plan{Combo: c, Slug: res.Slug, DaemonSeed: daemonSeed}, scratch, comboDir, deadline)
	if err != nil {
		return fail("boot: %v", err)
	}
	defer func() {
		if d.alive() {
			d.kill()
		}
	}()

	facts, err := fetchMarketFacts(d.url, c.Tenants)
	if err != nil {
		return fail("market facts: %v", err)
	}
	plan, err := NewPlan(c, facts.NumDCs)
	if err != nil {
		return fail("%v", err)
	}
	if err := writeJSONAtomic(filepath.Join(comboDir, "config.json"), plan); err != nil {
		return fail("write config.json: %v", err)
	}

	if r.afterBoot != nil {
		if err := r.afterBoot(plan, d); err != nil {
			return fail("afterBoot hook: %v", err)
		}
	}

	loads, err := r.drive(plan, d, comboDir, deadline)
	if err != nil {
		return fail("drive load: %v", err)
	}

	scrape, err := scrapeDaemon(d.url, plan, comboDir)
	if err != nil {
		return fail("scrape: %v", err)
	}

	if err := d.stop(30 * time.Second); err != nil {
		return fail("shutdown: %v", err)
	}

	res.Status = StatusOK
	res.Deterministic = buildDeterministic(plan, loads, scrape)
	res.WallClock = buildWallClock(started, loads, scrape)
	sum := Summary{
		Slug:          res.Slug,
		Status:        res.Status,
		Config:        plan,
		Deterministic: res.Deterministic,
		WallClock:     res.WallClock,
	}
	if err := writeJSONAtomic(filepath.Join(comboDir, "summary.json"), sum); err != nil {
		res.Status = StatusFailed
		res.Error = fmt.Sprintf("write summary.json: %v", err)
	}
	return res
}

// marketFacts is the slice of GET /v1/market the planner needs.
type marketFacts struct {
	NumDCs       int `json:"numDCs"`
	NumNodes     int `json:"numNodes"`
	NumCloudlets int `json:"numCloudlets"`
}

// apiBase returns the API prefix for tenant k of a combo with the given
// tenant count (the bare /v1 API when the combo is single-tenant).
func apiBase(url string, tenants, k int) string {
	if tenants <= 1 {
		return url + "/v1"
	}
	return fmt.Sprintf("%s/v1/t/t%d", url, k)
}

func fetchMarketFacts(url string, tenants int) (marketFacts, error) {
	var f marketFacts
	err := getJSON(apiBase(url, tenants, 0)+"/market", &f)
	if err != nil {
		return f, err
	}
	if f.NumDCs <= 0 || f.NumNodes <= 0 {
		return f, fmt.Errorf("implausible market: %d DCs, %d nodes", f.NumDCs, f.NumNodes)
	}
	return f, nil
}

func getJSON(url string, v any) error {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func postJSON(url string, body any) error {
	return postJSONTraced(url, body, "")
}

// postJSONTraced is postJSON carrying a W3C traceparent header. The manual
// epoch posts use it so each re-equilibration records a whole-epoch span and
// feeds the mecd_span_seconds{stage="epoch"} histogram the scrape
// summarizes into wallClock.epoch.
func postJSONTraced(url string, body any, traceparent string) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("POST %s: %d: %s", url, resp.StatusCode, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
