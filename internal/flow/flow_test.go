package flow

import (
	"math"
	"testing"
	"testing/quick"

	"mecache/internal/rng"
)

func mustArc(t *testing.T, g *Network, from, to, capacity int, cost float64) int {
	t.Helper()
	id, err := g.AddArc(from, to, capacity, cost)
	if err != nil {
		t.Fatalf("AddArc(%d,%d,%d,%v): %v", from, to, capacity, cost, err)
	}
	return id
}

func TestSimplePath(t *testing.T) {
	g := NewNetwork(3)
	mustArc(t, g, 0, 1, 5, 1)
	mustArc(t, g, 1, 2, 5, 2)
	res, err := g.MinCostFlow(0, 2, math.MaxInt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 5 || res.Cost != 15 {
		t.Fatalf("got flow=%d cost=%v, want 5/15", res.Flow, res.Cost)
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel paths; cheap one has capacity 3, expensive capacity 10.
	g := NewNetwork(4)
	mustArc(t, g, 0, 1, 3, 1)
	mustArc(t, g, 1, 3, 3, 1)
	mustArc(t, g, 0, 2, 10, 5)
	mustArc(t, g, 2, 3, 10, 5)
	res, err := g.MinCostFlow(0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 3 units at cost 2 each + 2 units at cost 10 each = 26.
	if res.Flow != 5 || res.Cost != 26 {
		t.Fatalf("got flow=%d cost=%v, want 5/26", res.Flow, res.Cost)
	}
}

func TestMaxFlowCap(t *testing.T) {
	g := NewNetwork(2)
	mustArc(t, g, 0, 1, 100, 1)
	res, err := g.MinCostFlow(0, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 7 || res.Cost != 7 {
		t.Fatalf("got flow=%d cost=%v, want 7/7", res.Flow, res.Cost)
	}
}

func TestArcFlowAccounting(t *testing.T) {
	g := NewNetwork(3)
	a1 := mustArc(t, g, 0, 1, 4, 1)
	a2 := mustArc(t, g, 1, 2, 4, 1)
	if _, err := g.MinCostFlow(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	if g.ArcFlow(a1) != 3 || g.ArcFlow(a2) != 3 {
		t.Fatalf("arc flows = %d,%d, want 3,3", g.ArcFlow(a1), g.ArcFlow(a2))
	}
}

func TestNegativeCosts(t *testing.T) {
	// A negative arc must be exploited (no negative cycles present).
	g := NewNetwork(4)
	mustArc(t, g, 0, 1, 1, 2)
	mustArc(t, g, 1, 3, 1, -5)
	mustArc(t, g, 0, 2, 1, 1)
	mustArc(t, g, 2, 3, 1, 1)
	res, err := g.MinCostFlow(0, 3, math.MaxInt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 || res.Cost != -1 {
		t.Fatalf("got flow=%d cost=%v, want 2/-1", res.Flow, res.Cost)
	}
}

func TestRerouteThroughResidual(t *testing.T) {
	// Classic case requiring flow cancellation on the middle arc.
	g := NewNetwork(4)
	mustArc(t, g, 0, 1, 1, 1)
	mustArc(t, g, 0, 2, 1, 10)
	mustArc(t, g, 1, 2, 1, 1)
	mustArc(t, g, 1, 3, 1, 10)
	mustArc(t, g, 2, 3, 1, 1)
	res, err := g.MinCostFlow(0, 3, math.MaxInt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 2 {
		t.Fatalf("flow = %d, want 2", res.Flow)
	}
	// min cost: path 0-1-2-3 (3) + path 0-2... cap used; optimal total is
	// 0-1-2-3 =1+1+1=3 and 0-2-3 uses residual? 0->2 cost 10 + 2->3 cap
	// exhausted -> must cancel: best total = (0-1-3: 11) + (0-2-3: 11) = 22
	// vs (0-1-2-3: 3)+(0-2,cancel 1-2,1-3: 10+(-1)+10=19) = 22. Both 22.
	if res.Cost != 22 {
		t.Fatalf("cost = %v, want 22", res.Cost)
	}
}

func TestUnreachableSink(t *testing.T) {
	g := NewNetwork(3)
	mustArc(t, g, 0, 1, 1, 1)
	res, err := g.MinCostFlow(0, 2, math.MaxInt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 0 || res.Cost != 0 {
		t.Fatalf("got flow=%d cost=%v, want 0/0", res.Flow, res.Cost)
	}
}

func TestValidation(t *testing.T) {
	g := NewNetwork(2)
	if _, err := g.AddArc(0, 5, 1, 1); err == nil {
		t.Fatal("out-of-range endpoint not rejected")
	}
	if _, err := g.AddArc(0, 1, -1, 1); err == nil {
		t.Fatal("negative capacity not rejected")
	}
	if _, err := g.AddArc(0, 1, 1, math.NaN()); err == nil {
		t.Fatal("NaN cost not rejected")
	}
	if _, err := g.MinCostFlow(0, 0, 1); err == nil {
		t.Fatal("s == t not rejected")
	}
	if _, err := g.MinCostFlow(0, 9, 1); err == nil {
		t.Fatal("out-of-range sink not rejected")
	}
}

func TestNegativeCycleDetected(t *testing.T) {
	g := NewNetwork(3)
	mustArc(t, g, 0, 1, 1, -1)
	mustArc(t, g, 1, 0, 1, -1)
	if _, err := g.MinCostFlow(0, 2, 1); err == nil {
		t.Fatal("negative cycle not detected")
	}
}

func TestAddNode(t *testing.T) {
	g := NewNetwork(1)
	v := g.AddNode()
	if v != 1 || g.N() != 2 {
		t.Fatalf("AddNode = %d (N=%d), want 1 (N=2)", v, g.N())
	}
	mustArc(t, g, 0, 1, 1, 0)
}

// TestTransportationMatchesLP: on random transportation instances the
// min-cost-flow optimum must be at least as good as any greedy feasible
// shipment and must ship the full demand when supply suffices.
func TestTransportationRandom(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		nSup := 1 + r.Intn(4)
		nDem := 1 + r.Intn(4)
		sup := make([]int, nSup)
		dem := make([]int, nDem)
		total := 0
		for i := range sup {
			sup[i] = 1 + r.Intn(5)
			total += sup[i]
		}
		left := total
		for j := range dem {
			if j == nDem-1 {
				dem[j] = left
			} else {
				dem[j] = r.Intn(left + 1)
				left -= dem[j]
			}
		}
		// Build network: src -> suppliers -> demands -> sink.
		g := NewNetwork(nSup + nDem + 2)
		src, sink := nSup+nDem, nSup+nDem+1
		for i := range sup {
			if _, err := g.AddArc(src, i, sup[i], 0); err != nil {
				return false
			}
		}
		for j := range dem {
			if _, err := g.AddArc(nSup+j, sink, dem[j], 0); err != nil {
				return false
			}
		}
		for i := range sup {
			for j := range dem {
				if _, err := g.AddArc(i, nSup+j, total, r.FloatRange(1, 10)); err != nil {
					return false
				}
			}
		}
		res, err := g.MinCostFlow(src, sink, math.MaxInt)
		if err != nil {
			return false
		}
		return res.Flow == total && res.Cost >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAssignmentOptimality compares min-cost flow against brute force on
// random n x n assignment problems.
func TestAssignmentOptimality(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(4) // 2..5
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = r.FloatRange(0, 10)
			}
		}
		g := NewNetwork(2*n + 2)
		src, sink := 2*n, 2*n+1
		for i := 0; i < n; i++ {
			if _, err := g.AddArc(src, i, 1, 0); err != nil {
				return false
			}
			if _, err := g.AddArc(n+i, sink, 1, 0); err != nil {
				return false
			}
			for j := 0; j < n; j++ {
				if _, err := g.AddArc(i, n+j, 1, cost[i][j]); err != nil {
					return false
				}
			}
		}
		res, err := g.MinCostFlow(src, sink, math.MaxInt)
		if err != nil || res.Flow != n {
			return false
		}
		best := bruteForceAssignment(cost)
		return math.Abs(res.Cost-best) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceAssignment enumerates all permutations.
func bruteForceAssignment(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			total := 0.0
			for i, j := range perm {
				total += cost[i][j]
			}
			if total < best {
				best = total
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func BenchmarkAssignment50(b *testing.B) {
	r := rng.New(1)
	n := 50
	for i := 0; i < b.N; i++ {
		g := NewNetwork(2*n + 2)
		src, sink := 2*n, 2*n+1
		for u := 0; u < n; u++ {
			_, _ = g.AddArc(src, u, 1, 0)
			_, _ = g.AddArc(n+u, sink, 1, 0)
			for v := 0; v < n; v++ {
				_, _ = g.AddArc(u, n+v, 1, r.FloatRange(0, 10))
			}
		}
		if _, err := g.MinCostFlow(src, sink, math.MaxInt); err != nil {
			b.Fatal(err)
		}
	}
}
