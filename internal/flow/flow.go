// Package flow implements integer-capacity min-cost max-flow via successive
// shortest paths with Johnson potentials (Bellman-Ford initialization, then
// Dijkstra per augmentation).
//
// It serves two roles in the mecache build: the exact fast path for the
// transportation-shaped LPs that the paper's virtual-cloudlet reduction
// produces (unit-size items into unit-slot bins), and the engine behind
// min-cost bipartite matching used by the Shmoys-Tardos rounding step.
package flow

import (
	"fmt"
	"math"
)

// arc is half of a residual arc pair; arc i and i^1 are mutual reverses.
type arc struct {
	to   int
	cap  int // residual capacity
	cost float64
}

// Network is a flow network with integer capacities and float64 costs.
// Nodes are dense integers [0, n).
//
// A Network owns its solver scratch (potentials, distances, predecessor
// arcs, and the Dijkstra frontier heap), so repeated MinCostFlow runs on
// the same Network — the epoch-solve warm path rebuilds the transport
// network in place every epoch via Reset — allocate nothing once the
// buffers have grown to size.
type Network struct {
	n     int
	arcs  []arc
	heads [][]int // heads[v] = indices into arcs leaving v

	// Solver scratch, reused across MinCostFlow calls.
	pot     []float64
	dist    []float64
	prevArc []int
	pq      []fpqItem
}

// NewNetwork returns an empty network with n nodes.
func NewNetwork(n int) *Network {
	return &Network{n: n, heads: make([][]int, n)}
}

// Reset clears the network back to n nodes and no arcs while keeping every
// underlying buffer, so a caller rebuilding the same-shaped network each
// epoch reuses the arc, adjacency, and solver scratch allocations.
func (g *Network) Reset(n int) {
	g.n = n
	g.arcs = g.arcs[:0]
	if n <= cap(g.heads) {
		g.heads = g.heads[:n]
	} else {
		g.heads = append(g.heads[:cap(g.heads)], make([][]int, n-cap(g.heads))...)
	}
	for i := range g.heads {
		g.heads[i] = g.heads[i][:0]
	}
}

// N returns the number of nodes.
func (g *Network) N() int { return g.n }

// AddNode appends a node and returns its index.
func (g *Network) AddNode() int {
	g.heads = append(g.heads, nil)
	g.n++
	return g.n - 1
}

// AddArc inserts a directed arc from->to with the given capacity and per-unit
// cost, and returns an arc ID usable with ArcFlow. Capacity must be
// non-negative; cost must be finite.
func (g *Network) AddArc(from, to, capacity int, cost float64) (int, error) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return 0, fmt.Errorf("flow: arc (%d,%d) endpoint out of range [0,%d)", from, to, g.n)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("flow: arc (%d,%d) has negative capacity %d", from, to, capacity)
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		return 0, fmt.Errorf("flow: arc (%d,%d) has invalid cost %v", from, to, cost)
	}
	id := len(g.arcs)
	g.arcs = append(g.arcs, arc{to: to, cap: capacity, cost: cost})
	g.arcs = append(g.arcs, arc{to: from, cap: 0, cost: -cost})
	g.heads[from] = append(g.heads[from], id)
	g.heads[to] = append(g.heads[to], id+1)
	return id, nil
}

// ArcFlow returns the flow currently routed on the arc returned by AddArc.
func (g *Network) ArcFlow(id int) int {
	return g.arcs[id^1].cap
}

// SetArcCost reprices the arc returned by AddArc (and its residual reverse)
// without touching its capacity or routed flow.
func (g *Network) SetArcCost(id int, cost float64) {
	g.arcs[id].cost = cost
	g.arcs[id^1].cost = -cost
}

// ResetUnitFlows drains all routed flow from a network whose every arc was
// added with capacity 1 — the transportation shape the epoch solve builds —
// restoring it to its just-built state so it can be re-solved without a
// rebuild. It must not be called on networks with non-unit arcs.
func (g *Network) ResetUnitFlows() {
	for id := 0; id < len(g.arcs); id += 2 {
		g.arcs[id].cap = 1
		g.arcs[id+1].cap = 0
	}
}

// Result summarizes a MinCostFlow run.
type Result struct {
	Flow int     // total units shipped source -> sink
	Cost float64 // total cost of the shipped flow
}

// scratch sizes the reusable solver buffers to the current node count.
func (g *Network) scratch() {
	if cap(g.dist) < g.n {
		g.dist = make([]float64, g.n)
		g.prevArc = make([]int, g.n)
		g.pot = make([]float64, g.n)
	}
	g.dist = g.dist[:g.n]
	g.prevArc = g.prevArc[:g.n]
	g.pot = g.pot[:g.n]
}

// MinCostFlow pushes up to maxFlow units (use math.MaxInt for max-flow) from
// s to t at minimum cost. Negative arc costs are allowed as long as the
// network has no negative-cost cycle reachable with positive capacity.
func (g *Network) MinCostFlow(s, t, maxFlow int) (Result, error) {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		return Result{}, fmt.Errorf("flow: terminal out of range: s=%d t=%d n=%d", s, t, g.n)
	}
	if s == t {
		return Result{}, fmt.Errorf("flow: source equals sink (%d)", s)
	}
	g.scratch()
	pot := g.pot
	if err := g.bellmanFordPotentials(s, pot); err != nil {
		return Result{}, err
	}

	var res Result
	dist, prevArc := g.dist, g.prevArc
	for res.Flow < maxFlow {
		if !g.dijkstra(s, t, pot, dist, prevArc) {
			break // no augmenting path left
		}
		// Update potentials with the new distances.
		for v := 0; v < g.n; v++ {
			if !math.IsInf(dist[v], 1) {
				pot[v] += dist[v]
			}
		}
		// Bottleneck along the path.
		push := maxFlow - res.Flow
		for v := t; v != s; {
			a := prevArc[v]
			if g.arcs[a].cap < push {
				push = g.arcs[a].cap
			}
			v = g.arcs[a^1].to
		}
		// Apply.
		for v := t; v != s; {
			a := prevArc[v]
			g.arcs[a].cap -= push
			g.arcs[a^1].cap += push
			res.Cost += float64(push) * g.arcs[a].cost
			v = g.arcs[a^1].to
		}
		res.Flow += push
	}
	return res, nil
}

// bellmanFordPotentials computes initial node potentials so that all reduced
// costs become non-negative. It fails on a negative-capacity-reachable
// negative cycle.
func (g *Network) bellmanFordPotentials(s int, pot []float64) error {
	for v := range pot {
		pot[v] = math.Inf(1)
	}
	pot[s] = 0
	for iter := 0; iter < g.n; iter++ {
		changed := false
		for v := 0; v < g.n; v++ {
			if math.IsInf(pot[v], 1) {
				continue
			}
			for _, id := range g.heads[v] {
				a := g.arcs[id]
				if a.cap > 0 && pot[v]+a.cost < pot[a.to]-1e-12 {
					pot[a.to] = pot[v] + a.cost
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter == g.n-1 {
			return fmt.Errorf("flow: negative-cost cycle detected")
		}
	}
	// Unreachable nodes keep potential 0 (they can never appear on an
	// augmenting path anyway, but Inf would poison arithmetic).
	for v := range pot {
		if math.IsInf(pot[v], 1) {
			pot[v] = 0
		}
	}
	return nil
}

type fpqItem struct {
	node int
	dist float64
}

// The frontier heap is a typed binary min-heap whose sift operations
// perform the exact comparison/swap sequence of container/heap over the
// old fpq (Less: strictly smaller dist), so the order equal-distance items
// pop in — and therefore every tie-broken augmenting path — is unchanged,
// while Push no longer boxes items through interface{}.

func fpqUp(q []fpqItem, j int) {
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !(q[j].dist < q[i].dist) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

func fpqDown(q []fpqItem, i, n int) {
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && q[j2].dist < q[j1].dist {
			j = j2 // = 2*i + 2  // right child
		}
		if !(q[j].dist < q[i].dist) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
}

// dijkstra fills dist/prevArc with reduced-cost shortest paths from s; it
// returns false when t is unreachable in the residual network.
func (g *Network) dijkstra(s, t int, pot, dist []float64, prevArc []int) bool {
	for v := range dist {
		dist[v] = math.Inf(1)
		prevArc[v] = -1
	}
	dist[s] = 0
	q := append(g.pq[:0], fpqItem{node: s, dist: 0})
	for len(q) > 0 {
		n := len(q) - 1
		q[0], q[n] = q[n], q[0]
		fpqDown(q, 0, n)
		it := q[n]
		q = q[:n]
		if it.dist > dist[it.node] {
			continue
		}
		for _, id := range g.heads[it.node] {
			a := g.arcs[id]
			if a.cap <= 0 {
				continue
			}
			rc := a.cost + pot[it.node] - pot[a.to]
			if rc < 0 && rc > -1e-9 {
				rc = 0 // floating-point slack from potential updates
			}
			if nd := it.dist + rc; nd < dist[a.to]-1e-15 {
				dist[a.to] = nd
				prevArc[a.to] = id
				q = append(q, fpqItem{node: a.to, dist: nd})
				fpqUp(q, len(q)-1)
			}
		}
	}
	g.pq = q[:0]
	return !math.IsInf(dist[t], 1)
}
