// Package parallel is the deterministic worker-pool execution layer behind
// every fan-out site in the repository: figure sweep points, repeated
// Monte-Carlo trials, and the randomized-restart Nash searches.
//
// The discipline that makes parallel runs reproducible is that a task is a
// pure function of its index: any randomness a task needs is drawn from an
// rng substream derived from (base seed, task index) — see rng.Substream —
// never from a stream shared with other tasks. Under that discipline the
// result slice is bit-for-bit identical for every worker count, GOMAXPROCS
// setting, and scheduling order, so "parallelism 1" is a debugging aid
// rather than a different algorithm.
//
// Errors are aggregated, not raced: every task runs to completion, failed
// task indices are recorded, and the joined error lists them in index
// order, deterministically.
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism option value to a worker count: values
// below 1 (the zero value of the option structs) mean one worker per CPU;
// anything else is returned unchanged. 1 is the exact legacy serial path.
func Workers(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// Run executes tasks 0..n-1 on a pool of at most Workers(workers)
// goroutines and returns the join of every task error, wrapped with its
// task index, in index order. With one worker (or one task) every task runs
// in the calling goroutine in index order — no goroutine is spawned.
//
// Tasks must be pure functions of their index (no shared mutable state, no
// shared rng stream); writing to distinct indices of a shared result slice
// is the intended collection pattern and is race-free.
func Run(workers, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = task(i)
		}
		return joinIndexed(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = task(i)
			}
		}()
	}
	wg.Wait()
	return joinIndexed(errs)
}

// joinIndexed wraps every non-nil error with its task index and joins them
// in index order.
func joinIndexed(errs []error) error {
	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("task %d: %w", i, err))
		}
	}
	return errors.Join(joined...)
}

// Map runs tasks 0..n-1 under Run and collects their results by index, so
// the output order never depends on scheduling. On any task error the
// results are discarded and the joined error is returned.
func Map[T any](workers, n int, task func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(workers, n, func(i int) error {
		v, err := task(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
