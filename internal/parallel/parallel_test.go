package parallel

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Fatalf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestRunExecutesEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 64} {
		const n = 200
		counts := make([]int32, n)
		err := Run(workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunZeroTasks(t *testing.T) {
	if err := Run(4, 0, func(int) error { t.Fatal("task called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMapIdenticalAcrossWorkerCounts(t *testing.T) {
	const n = 137
	square := func(i int) (int, error) { return i * i, nil }
	want, err := Map(1, n, square)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		got, err := Map(workers, n, square)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestErrorsAggregatedInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Run(workers, 10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: errors swallowed", workers)
		}
		msg := err.Error()
		i3 := strings.Index(msg, "task 3: boom 3")
		i7 := strings.Index(msg, "task 7: boom 7")
		if i3 < 0 || i7 < 0 || i3 > i7 {
			t.Fatalf("workers=%d: error not aggregated in index order: %q", workers, msg)
		}
	}
}

func TestMapDiscardsResultsOnError(t *testing.T) {
	out, err := Map(2, 4, func(i int) (int, error) {
		if i == 2 {
			return 0, fmt.Errorf("bad")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if out != nil {
		t.Fatalf("partial results returned: %v", out)
	}
}
