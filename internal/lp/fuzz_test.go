package lp

import (
	"math"
	"testing"

	"mecache/internal/rng"
)

// FuzzSolve drives the simplex with randomized LPs derived from the fuzz
// input: whatever the instance, Solve must terminate without panicking, and
// an Optimal result must be primal-feasible with duals satisfying strong
// duality.
func FuzzSolve(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(3))
	f.Add(uint64(42), uint8(1), uint8(5))
	f.Add(uint64(1<<60), uint8(6), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, mRaw uint8) {
		r := rng.New(seed)
		n := 1 + int(nRaw%6)
		m := 1 + int(mRaw%6)
		p := NewProblem(n)
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = r.FloatRange(-10, 10)
		}
		if err := p.SetObjective(obj); err != nil {
			t.Fatal(err)
		}
		var rhs []float64
		var rels []Relation
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = r.FloatRange(-5, 5)
			}
			rel := []Relation{LE, EQ, GE}[r.Intn(3)]
			b := r.FloatRange(-20, 20)
			if err := p.AddConstraint(row, rel, b); err != nil {
				t.Fatal(err)
			}
			rhs = append(rhs, b)
			rels = append(rels, rel)
		}
		sol, err := p.Solve()
		if err != nil {
			// Infeasible and unbounded are legitimate outcomes; pivot-limit
			// failures would also land here and are acceptable for fuzzed
			// degenerate inputs, as long as nothing panicked.
			return
		}
		if sol.Status != Optimal {
			t.Fatalf("nil error with status %v", sol.Status)
		}
		if !feasible(p, sol.X) {
			t.Fatalf("optimal solution infeasible: %v", sol.X)
		}
		dualObj := 0.0
		for i, y := range sol.Duals {
			dualObj += rhs[i] * y
			switch rels[i] {
			case LE:
				if y > 1e-6 {
					t.Fatalf("LE dual %d positive: %v", i, y)
				}
			case GE:
				if y < -1e-6 {
					t.Fatalf("GE dual %d negative: %v", i, y)
				}
			}
		}
		scale := math.Max(1, math.Abs(sol.Objective))
		if math.Abs(dualObj-sol.Objective) > 1e-5*scale {
			t.Fatalf("strong duality violated: dual %v primal %v", dualObj, sol.Objective)
		}
	})
}
