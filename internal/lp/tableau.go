package lp

import (
	"fmt"
	"math"
)

// tableau is a dense simplex tableau. Columns are laid out as
// [decision vars | slack/surplus vars | artificial vars]; each row also has
// a right-hand side. The reduced-cost row is stored separately in cost /
// objVal.
type tableau struct {
	rows           [][]float64 // m x totalVars coefficient matrix (basis-reduced)
	rhs            []float64   // m right-hand sides (always >= 0 after pivoting)
	cost           []float64   // reduced costs, length totalVars
	objVal         float64     // negated objective of the current basic solution
	basis          []int       // basis[r] = variable basic in row r
	initCol        []int       // initCol[r] = the identity column row r started with
	rowSign        []float64   // +1, or -1 when the input row was negated (rhs < 0)
	numDecision    int
	numSlack       int
	numArtificials int
	artStart       int // first artificial column
	maxPivots      int
}

func newTableau(p *Problem) *tableau {
	m := len(p.constraints)
	n := p.numVars

	// Count slack/surplus and artificial columns.
	numSlack, numArt := 0, 0
	for _, c := range p.constraints {
		rel, rhs := c.rel, c.rhs
		if rhs < 0 { // row will be negated; the relation flips
			rel = flip(rel)
		}
		switch rel {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}

	total := n + numSlack + numArt
	t := &tableau{
		rows:           make([][]float64, m),
		rhs:            make([]float64, m),
		cost:           make([]float64, total),
		basis:          make([]int, m),
		initCol:        make([]int, m),
		rowSign:        make([]float64, m),
		numDecision:    n,
		numSlack:       numSlack,
		numArtificials: numArt,
		artStart:       n + numSlack,
		maxPivots:      20000 + 200*(m+total),
	}

	slackCol := n
	artCol := t.artStart
	for r, c := range p.constraints {
		row := make([]float64, total)
		rhs := c.rhs
		rel := c.rel
		sign := 1.0
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			rel = flip(rel)
		}
		for j, v := range c.coeffs {
			row[j] = sign * v
		}
		switch rel {
		case LE:
			row[slackCol] = 1
			t.basis[r] = slackCol
			t.initCol[r] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[r] = artCol
			t.initCol[r] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[r] = artCol
			t.initCol[r] = artCol
			artCol++
		}
		t.rowSign[r] = sign
		t.rows[r] = row
		t.rhs[r] = rhs
	}
	return t
}

func flip(r Relation) Relation {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// setPhase1Objective prices the sum-of-artificials objective against the
// current (artificial) basis.
func (t *tableau) setPhase1Objective() {
	for j := range t.cost {
		t.cost[j] = 0
	}
	for j := t.artStart; j < len(t.cost); j++ {
		t.cost[j] = 1
	}
	t.objVal = 0
	// Price out basic artificials: reduced cost of a basic variable must be 0.
	for r, b := range t.basis {
		if b >= t.artStart {
			for j := range t.cost {
				t.cost[j] -= t.rows[r][j]
			}
			t.objVal -= t.rhs[r]
		}
	}
}

// setPhase2Objective installs the original objective (artificials get a
// prohibitive cost so they never re-enter) and prices it against the basis.
func (t *tableau) setPhase2Objective(c []float64) {
	for j := range t.cost {
		t.cost[j] = 0
	}
	copy(t.cost, c)
	// Artificial columns may still exist if rows were redundant; forbid them.
	for j := t.artStart; j < len(t.cost); j++ {
		t.cost[j] = math.Inf(1)
	}
	t.objVal = 0
	for r, b := range t.basis {
		cb := 0.0
		if b < t.numDecision {
			cb = c[b]
		} else if b >= t.artStart {
			cb = 0 // basic artificial at value 0 after phase 1
		}
		if cb != 0 {
			for j := range t.cost {
				if !math.IsInf(t.cost[j], 1) {
					t.cost[j] -= cb * t.rows[r][j]
				}
			}
			t.objVal -= cb * t.rhs[r]
		}
	}
}

// objectiveValue returns the objective of the current basic solution.
func (t *tableau) objectiveValue() float64 { return -t.objVal }

// iterate runs simplex pivots under Bland's rule until optimal or unbounded.
func (t *tableau) iterate() error {
	for pivots := 0; ; pivots++ {
		if pivots > t.maxPivots {
			return fmt.Errorf("lp: pivot limit %d exceeded (numerical cycling?)", t.maxPivots)
		}
		// Bland's rule: entering variable is the lowest-index column with a
		// negative reduced cost.
		enter := -1
		for j, cj := range t.cost {
			if !math.IsInf(cj, 1) && cj < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Ratio test; ties broken by the lowest basic-variable index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for r := range t.rows {
			a := t.rows[r][enter]
			if a > eps {
				ratio := t.rhs[r] / a
				if ratio < bestRatio-eps || (math.Abs(ratio-bestRatio) <= eps && (leave < 0 || t.basis[r] < t.basis[leave])) {
					bestRatio = ratio
					leave = r
				}
			}
		}
		if leave < 0 {
			return ErrUnbounded
		}
		t.pivot(leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	prow := t.rows[leave]
	pval := prow[enter]
	inv := 1 / pval
	for j := range prow {
		prow[j] *= inv
	}
	t.rhs[leave] *= inv
	prow[enter] = 1 // kill round-off on the pivot element

	for r := range t.rows {
		if r == leave {
			continue
		}
		f := t.rows[r][enter]
		if f == 0 {
			continue
		}
		row := t.rows[r]
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[enter] = 0
		t.rhs[r] -= f * t.rhs[leave]
		if t.rhs[r] < 0 && t.rhs[r] > -1e-12 {
			t.rhs[r] = 0
		}
	}
	f := t.cost[enter]
	if f != 0 && !math.IsInf(f, 1) {
		for j := range t.cost {
			if !math.IsInf(t.cost[j], 1) {
				t.cost[j] -= f * prow[j]
			}
		}
		t.cost[enter] = 0
		t.objVal -= f * t.rhs[leave]
	}
	t.basis[leave] = enter
}

// driveOutArtificials pivots zero-valued basic artificials out of the basis
// where possible; rows that are entirely zero over the non-artificial
// columns are redundant and left with their artificial basic at zero (phase
// 2 forbids artificials from increasing).
func (t *tableau) driveOutArtificials() {
	for r := range t.rows {
		if t.basis[r] < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[r][j]) > 1e-7 {
				t.pivot(r, j)
				break
			}
		}
	}
}

// duals recovers the dual prices y^T = c_B^T B^{-1} from the final
// tableau: each row's initial identity column holds the corresponding
// column of B^{-1}, and c_B reads the true objective (zero for slack and
// artificial variables). Rows that were negated during normalization flip
// their dual's sign back to the user's orientation.
func (t *tableau) duals(c []float64) []float64 {
	m := len(t.rows)
	cB := make([]float64, m)
	for r, b := range t.basis {
		if b < t.numDecision {
			cB[r] = c[b]
		}
	}
	y := make([]float64, m)
	for r := 0; r < m; r++ {
		col := t.initCol[r]
		v := 0.0
		for k := 0; k < m; k++ {
			if cB[k] != 0 {
				v += cB[k] * t.rows[k][col]
			}
		}
		y[r] = v * t.rowSign[r]
	}
	return y
}

// extract reads the first n variable values out of the basis.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for r, b := range t.basis {
		if b < n {
			v := t.rhs[r]
			if v < 0 && v > -1e-9 {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}
